#include "core/tuning_advisor.h"

#include <algorithm>
#include <cmath>

namespace bloomrf {

namespace {

/// Builds the delta ladder for an exact level at `target`: as many
/// bottom layers with delta = 7 as reasonable, then a transition with
/// decreasing deltas towards the exact layer (paper example: target 36
/// -> (7,7,7,7,4,2,2) bottom-first).
std::vector<uint8_t> BuildDeltaLadder(uint32_t target) {
  std::vector<uint8_t> deltas;
  uint32_t sevens = target >= 14 ? (target - 8) / 7 : target / 7;
  for (uint32_t i = 0; i < sevens; ++i) deltas.push_back(7);
  uint32_t rem = target - sevens * 7;
  while (rem > 0) {
    uint8_t step;
    if (rem >= 8) {
      step = 7;
    } else if (rem > 4) {
      step = static_cast<uint8_t>(rem / 2);
    } else if (rem > 2) {
      step = 2;
    } else {
      step = static_cast<uint8_t>(rem);
    }
    deltas.push_back(step);
    rem -= step;
  }
  return deltas;
}

double Score(const FprModelResult& model, const AdvisorParams& params,
             double* fpr_m, double* fpr_p) {
  *fpr_m = params.range_weights.empty()
               ? model.MaxFprUpToRange(params.max_range)
               : WeightedRangeFpr(model, params.range_weights);
  *fpr_p = model.point_fpr;
  const double weight = params.point_weight;
  return (*fpr_m) * (*fpr_m) + weight * weight * (*fpr_p) * (*fpr_p);
}

}  // namespace

AdvisorResult AdviseConfig(const AdvisorParams& params) {
  const uint32_t d = params.domain_bits;
  const uint64_t m = std::max<uint64_t>(params.total_bits, 256);
  const uint64_t n = std::max<uint64_t>(params.n, 2);

  AdvisorResult best;
  // Baseline candidate: basic, tuning-free bloomRF.
  {
    BloomRFConfig basic = BloomRFConfig::Basic(
        n, static_cast<double>(m) / static_cast<double>(n), d, 7);
    FprModelResult model = EvaluateFprModel(basic, n);
    best.config = basic;
    best.weighted_score = Score(model, params, &best.expected_range_fpr,
                                &best.expected_point_fpr);
  }

  // Exact-layer candidates: the lowest level whose exact bitmap fits in
  // 60% of the budget, and the next one up (Sect. 7 heuristic).
  uint32_t l_e = d;
  for (uint32_t l = 1; l <= d; ++l) {
    double bitmap = std::ldexp(1.0, static_cast<int>(d - l));
    if (bitmap < 0.6 * static_cast<double>(m)) {
      l_e = l;
      break;
    }
  }
  if (l_e >= d) return best;  // budget too small for any exact layer

  for (uint32_t candidate : {l_e, l_e + 1}) {
    if (candidate >= d || d - candidate > 40) continue;
    uint64_t m1 = uint64_t{1} << (d - candidate);
    if (m1 + 128 >= m) continue;
    uint64_t m_rest = m - m1;

    std::vector<uint8_t> deltas = BuildDeltaLadder(candidate);
    size_t k = deltas.size();
    if (k == 0) continue;

    BloomRFConfig cfg;
    cfg.domain_bits = d;
    cfg.delta = deltas;
    cfg.has_exact_layer = true;
    cfg.replicas.assign(k, 1);
    cfg.segment_of.assign(k, 0);
    // Mid segment (0): layers in the transition region (delta < 7);
    // bottom segment (1): the delta-7 layers. Replicate the hash of
    // the topmost non-exact layer (error correction for large DIs).
    bool has_mid = false;
    for (size_t i = 0; i < k; ++i) {
      if (deltas[i] < 7) {
        cfg.segment_of[i] = 0;
        has_mid = true;
      } else {
        cfg.segment_of[i] = 1;
      }
    }
    if (!has_mid) cfg.segment_of[k - 1] = 0;
    cfg.replicas[k - 1] = 2;

    // Sweep the mid/bottom split of the remaining budget.
    for (double frac : {0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50}) {
      uint64_t m_mid = std::max<uint64_t>(
          64, static_cast<uint64_t>(frac * static_cast<double>(m_rest)));
      if (m_mid + 64 > m_rest) continue;
      uint64_t m_bot = m_rest - m_mid;
      cfg.segment_bits = {m_mid, m_bot};
      if (!cfg.Validate().empty()) continue;
      FprModelResult model = EvaluateFprModel(cfg, n);
      double fpr_m, fpr_p;
      double score = Score(model, params, &fpr_m, &fpr_p);
      if (score < best.weighted_score) {
        best.config = cfg;
        best.weighted_score = score;
        best.expected_range_fpr = fpr_m;
        best.expected_point_fpr = fpr_p;
      }
    }
  }
  return best;
}

}  // namespace bloomrf

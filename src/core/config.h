// Configuration of a bloomRF filter.
//
// A filter is described by a ladder of layers (paper Sect. 3.1, Table 1).
// Layer i covers dyadic level l_i = sum_{j<i} delta[j]; its
// piecewise-monotone hash function keeps the low (delta[i]-1) bits of
// the level-l_i prefix as an in-word offset, so the word size of layer i
// is 2^(delta[i]-1) bits (Sect. 3.2). Layers are assigned to memory
// segments (Sect. 7 "Memory Management"); the optional *exact layer*
// stores dyadic level sum(delta) as a plain bitmap. Levels above the
// top stored level are treated as saturated and are not represented.

#ifndef BLOOMRF_CORE_CONFIG_H_
#define BLOOMRF_CORE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bloomrf {

/// How a layer derives the slots of its `replicas` hash functions.
/// The scheme is part of the serialized filter format: bits land in
/// different slots per scheme, so a stored block must be probed with
/// the scheme it was built under.
enum class HashScheme : uint8_t {
  /// Pre-format-2 layout: replica r hashes the word key independently
  /// with seed_base + r (one full Hash64 per replica). Kept so blocks
  /// serialized before the format bump still load and answer.
  kLegacyPerReplica = 0,
  /// Hash-once layout: one Hash64 per word key; replica r's slot is
  /// derived by Kirsch-Mitzenmacher double hashing, h + r * stride(h).
  /// Identical to the legacy layout when replicas == 1.
  kDoubleHash = 1,
};

struct BloomRFConfig {
  /// Domain size in bits (d). Keys live in [0, 2^d). 64 for the native
  /// uint64 domain; smaller values are used by tests for exhaustive
  /// ground-truth sweeps.
  uint32_t domain_bits = 64;

  /// Per-layer level distance, bottom layer first. delta[i] in [1, 7]
  /// (word sizes 1..64 bits). Basic bloomRF uses a constant delta = 7.
  std::vector<uint8_t> delta;

  /// Replicated hash functions per layer, r_i >= 1 (Sect. 7). Basic
  /// bloomRF uses 1 everywhere.
  std::vector<uint8_t> replicas;

  /// Memory segment per layer (index into segment_bits). Basic bloomRF
  /// uses a single shared segment.
  std::vector<uint8_t> segment_of;

  /// Bit size of each segment (m_j). Rounded up to multiples of 64 at
  /// construction.
  std::vector<uint64_t> segment_bits;

  /// If true, dyadic level sum(delta) is stored exactly as a bitmap of
  /// 2^(domain_bits - sum(delta)) bits (Sect. 7).
  bool has_exact_layer = false;

  /// Word-offset permutation defeating degenerate key distributions
  /// (Sect. 7 "Degenerate data distributions and PMHF"): a
  /// pseudo-random half of all words stores offsets in reverse order.
  bool permute_words = false;

  /// Seed for all layer hash functions.
  uint64_t seed = 0xb100f117e55eedULL;

  /// Replica slot derivation (see HashScheme). New filters default to
  /// the hash-once double-hashing scheme; Deserialize sets the legacy
  /// scheme for blocks written before the format bump.
  HashScheme hash_scheme = HashScheme::kDoubleHash;

  /// Probe caps: ranges that would require scanning more than this many
  /// words at the topmost layer (or bits of the exact bitmap) return a
  /// conservative positive instead.
  uint32_t max_top_layer_words = 4096;
  uint64_t max_exact_scan_bits = uint64_t{1} << 26;

  size_t num_layers() const { return delta.size(); }

  /// Dyadic level of layer i: l_i = sum_{j<i} delta[j].
  uint32_t LevelOfLayer(size_t i) const;

  /// Level of the boundary above the top hash layer (== exact layer's
  /// level when has_exact_layer).
  uint32_t TopLevel() const { return LevelOfLayer(delta.size()); }

  /// Number of bits of the exact bitmap (0 if no exact layer).
  uint64_t ExactBits() const;

  /// Total memory (segments + exact bitmap) in bits.
  uint64_t TotalBits() const;

  /// Returns an empty string if the configuration is well-formed, else
  /// a description of the first problem found.
  std::string Validate() const;

  /// Basic, tuning-free bloomRF (paper Sect. 3): constant `delta`,
  /// single segment of ~bits_per_key*n bits, one hash function per
  /// layer, no exact layer. k = ceil((d - floor(log2 n)) / delta),
  /// clamped to cover the domain at most once.
  static BloomRFConfig Basic(uint64_t n, double bits_per_key,
                             uint32_t domain_bits = 64, uint32_t delta = 7);

  std::string DebugString() const;
};

}  // namespace bloomrf

#endif  // BLOOMRF_CORE_CONFIG_H_

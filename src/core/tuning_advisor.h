// Tuning advisor (paper Sect. 7 "Tuning Advisor").
//
// Given the number of keys n, a total memory budget m (bits) and an
// approximate maximum query-range size R, the advisor selects a full
// bloomRF configuration: the delta vector, per-layer replica counts and
// segment assignment, the exact-layer level and the segment split
// (m1, m2, m3). Candidates are scored with the extended FPR model by
// the weighted norm fpr_w^2 = fpr_range^2 + C^2 * fpr_point^2.

#ifndef BLOOMRF_CORE_TUNING_ADVISOR_H_
#define BLOOMRF_CORE_TUNING_ADVISOR_H_

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/fpr_model.h"

namespace bloomrf {

struct AdvisorParams {
  uint64_t n = 0;            ///< number of keys
  uint64_t total_bits = 0;   ///< memory budget m
  double max_range = 1;      ///< approximate maximum query range R
  uint32_t domain_bits = 64;
  double point_weight = 2.0;  ///< C in fpr_w^2 = fpr_m^2 + C^2 fpr_p^2
  /// Measured range-width histogram: range_weights[l] is the observed
  /// frequency of query widths in [2^l, 2^{l+1}) (the workload
  /// sampler's buckets). When non-empty it replaces the single
  /// `max_range` scalar in scoring — candidates are judged by the
  /// width-weighted expectation of the per-level model FPR instead of
  /// the worst level up to R, so a workload of mostly-narrow ranges no
  /// longer pays for a rare wide one. A histogram with all mass in one
  /// bucket L scores identically to max_range = 2^L.
  std::vector<double> range_weights;
};

struct AdvisorResult {
  BloomRFConfig config;
  double expected_range_fpr = 1.0;
  double expected_point_fpr = 1.0;
  double weighted_score = 1.0;
};

/// Computes the best configuration for `params`. Falls back to basic
/// bloomRF when no exact-layer candidate fits the budget (small budgets
/// or small ranges); basic is also chosen when it scores better.
AdvisorResult AdviseConfig(const AdvisorParams& params);

}  // namespace bloomrf

#endif  // BLOOMRF_CORE_TUNING_ADVISOR_H_

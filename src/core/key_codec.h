// Order-preserving encodings of supported datatypes onto the uint64
// filter domain (paper Sect. 8 "Datatype support").
//
// bloomRF operates on unsigned integers; every other type is mapped to
// uint64 by a *monotone* coding phi, so that range queries on the
// original type become range queries on phi-images:
//   - signed 64-bit integers: offset-binary (flip the sign bit);
//   - IEEE-754 doubles/floats: sign-magnitude flip (the paper's map
//     phi: x + 2^(q+r) when the sign bit is clear, bitwise inverse
//     otherwise);
//   - variable-length strings: SuRF-Hash-style, first seven bytes in
//     the most-significant positions plus a one-byte hash of the whole
//     string (incl. length) in the least-significant byte — exact-ish
//     point queries, 7-byte-prefix range queries.

#ifndef BLOOMRF_CORE_KEY_CODEC_H_
#define BLOOMRF_CORE_KEY_CODEC_H_

#include <bit>
#include <cstdint>
#include <string_view>

namespace bloomrf {

/// Signed 64-bit integer -> ordered uint64 (monotone, bijective).
inline uint64_t OrderedFromInt64(int64_t v) {
  return static_cast<uint64_t>(v) ^ (uint64_t{1} << 63);
}

inline int64_t Int64FromOrdered(uint64_t u) {
  return static_cast<int64_t>(u ^ (uint64_t{1} << 63));
}

/// IEEE-754 double -> ordered uint64: monotone over all finite values
/// (and infinities); -0.0 orders just below +0.0; NaNs land at the
/// extremes. This is the paper's phi(x).
inline uint64_t OrderedFromDouble(double d) {
  uint64_t bits = std::bit_cast<uint64_t>(d);
  if (bits & (uint64_t{1} << 63)) return ~bits;
  return bits | (uint64_t{1} << 63);
}

inline double DoubleFromOrdered(uint64_t u) {
  if (u & (uint64_t{1} << 63)) return std::bit_cast<double>(u ^ (uint64_t{1} << 63));
  return std::bit_cast<double>(~u);
}

/// IEEE-754 float -> ordered uint64 (ordered uint32 widened into the
/// high half so dyadic levels keep their meaning).
inline uint64_t OrderedFromFloat(float f) {
  uint32_t bits = std::bit_cast<uint32_t>(f);
  uint32_t ordered =
      (bits & 0x80000000u) ? ~bits : (bits | 0x80000000u);
  return static_cast<uint64_t>(ordered) << 32;
}

/// Variable-length string -> uint64. The seven most significant bytes
/// hold the string prefix; the least significant byte holds a hash of
/// the full string including its length (used only by point queries).
uint64_t OrderedFromString(std::string_view s);

/// Inclusive uint64 bounds of all possible encodings of strings in the
/// lexicographic range [a, b]: the hash byte is widened to [0x00,0xFF].
uint64_t StringRangeLow(std::string_view a);
uint64_t StringRangeHigh(std::string_view b);

}  // namespace bloomrf

#endif  // BLOOMRF_CORE_KEY_CODEC_H_

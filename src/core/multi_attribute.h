// Dual-attribute bloomRF (paper Sect. 8 "Multi-Attribute bloomRF").
//
// Filters on two attributes simultaneously with reduced precision: each
// attribute is truncated monotonically to its 32 most significant bits,
// the pair is concatenated in both orders (<A,B> and <B,A>) and both
// tuples are inserted into one underlying bloomRF. Conjunctive
// predicates then become a single range probe:
//   A = a AND B = b        -> point probe of <A,B>
//   A in [a1,a2] AND B = b -> range probe of <B,A> (B fixed in the
//                             high half, A spans the low half)
//   A = a AND B in [b1,b2] -> range probe of <A,B>

#ifndef BLOOMRF_CORE_MULTI_ATTRIBUTE_H_
#define BLOOMRF_CORE_MULTI_ATTRIBUTE_H_

#include <cstdint>

#include "core/bloomrf.h"

namespace bloomrf {

class MultiAttributeBloomRF {
 public:
  /// `config` should be sized for 2n keys (each pair is inserted twice).
  explicit MultiAttributeBloomRF(BloomRFConfig config)
      : filter_(std::move(config)) {}

  /// Monotone precision reduction to 32 bits.
  static uint32_t Reduce(uint64_t v) { return static_cast<uint32_t>(v >> 32); }

  static uint64_t Concat(uint32_t high, uint32_t low) {
    return (static_cast<uint64_t>(high) << 32) | low;
  }

  void Insert(uint64_t a, uint64_t b) {
    uint32_t ra = Reduce(a);
    uint32_t rb = Reduce(b);
    filter_.Insert(Concat(ra, rb));  // <A,B>
    filter_.Insert(Concat(rb, ra));  // <B,A>
  }

  /// A = a AND B = b. Probes a short range because the reduction maps
  /// many exact values onto one reduced value.
  bool MayMatchPointPoint(uint64_t a, uint64_t b) const {
    return filter_.MayContain(Concat(Reduce(a), Reduce(b)));
  }

  /// A in [a_lo, a_hi] AND B = b.
  bool MayMatchRangePoint(uint64_t a_lo, uint64_t a_hi, uint64_t b) const {
    uint32_t rb = Reduce(b);
    return filter_.MayContainRange(Concat(rb, Reduce(a_lo)),
                                   Concat(rb, Reduce(a_hi)));
  }

  /// A = a AND B in [b_lo, b_hi].
  bool MayMatchPointRange(uint64_t a, uint64_t b_lo, uint64_t b_hi) const {
    uint32_t ra = Reduce(a);
    return filter_.MayContainRange(Concat(ra, Reduce(b_lo)),
                                   Concat(ra, Reduce(b_hi)));
  }

  const BloomRF& filter() const { return filter_; }
  uint64_t MemoryBits() const { return filter_.MemoryBits(); }

 private:
  BloomRF filter_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_CORE_MULTI_ATTRIBUTE_H_

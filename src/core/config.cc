#include "core/config.h"

#include <cmath>
#include <sstream>

namespace bloomrf {

uint32_t BloomRFConfig::LevelOfLayer(size_t i) const {
  uint32_t level = 0;
  for (size_t j = 0; j < i && j < delta.size(); ++j) level += delta[j];
  return level;
}

uint64_t BloomRFConfig::ExactBits() const {
  if (!has_exact_layer) return 0;
  uint32_t level = TopLevel();
  if (level >= domain_bits) return 1;
  return uint64_t{1} << (domain_bits - level);
}

uint64_t BloomRFConfig::TotalBits() const {
  uint64_t total = ExactBits();
  for (uint64_t m : segment_bits) total += m;
  return total;
}

std::string BloomRFConfig::Validate() const {
  if (domain_bits == 0 || domain_bits > 64) return "domain_bits must be 1..64";
  if (delta.empty()) return "at least one layer required";
  if (replicas.size() != delta.size() || segment_of.size() != delta.size()) {
    return "delta/replicas/segment_of size mismatch";
  }
  uint32_t level = 0;
  for (size_t i = 0; i < delta.size(); ++i) {
    if (delta[i] < 1 || delta[i] > 7) return "delta[i] must be in [1,7]";
    if (replicas[i] < 1) return "replicas[i] must be >= 1";
    if (segment_of[i] >= segment_bits.size()) return "segment_of out of range";
    level += delta[i];
  }
  if (LevelOfLayer(delta.size() - 1) >= domain_bits) {
    return "bottom k-1 layers already cover the domain";
  }
  for (size_t j = 0; j < segment_bits.size(); ++j) {
    if (segment_bits[j] < 64) return "segment smaller than 64 bits";
  }
  if (has_exact_layer && domain_bits > TopLevel() &&
      domain_bits - TopLevel() > 40) {
    return "exact bitmap larger than 2^40 bits";
  }
  return "";
}

BloomRFConfig BloomRFConfig::Basic(uint64_t n, double bits_per_key,
                                   uint32_t domain_bits, uint32_t delta) {
  BloomRFConfig cfg;
  cfg.domain_bits = domain_bits;
  if (n < 2) n = 2;
  uint32_t log2n = 0;
  while ((uint64_t{1} << (log2n + 1)) <= n && log2n + 1 < 63) ++log2n;
  uint32_t effective = domain_bits > log2n ? domain_bits - log2n : 1;
  uint32_t k = (effective + delta - 1) / delta;
  // The bottom layer must sit strictly below the domain top.
  uint32_t max_k = (domain_bits + delta - 1) / delta;
  if (k > max_k) k = max_k;
  if (k < 1) k = 1;
  while (k > 1 && (k - 1) * delta >= domain_bits) --k;
  cfg.delta.assign(k, static_cast<uint8_t>(delta));
  cfg.replicas.assign(k, 1);
  cfg.segment_of.assign(k, 0);
  uint64_t m = static_cast<uint64_t>(bits_per_key * static_cast<double>(n));
  m = (m + 63) & ~63ULL;
  if (m < 64) m = 64;
  cfg.segment_bits = {m};
  return cfg;
}

std::string BloomRFConfig::DebugString() const {
  std::ostringstream os;
  os << "BloomRFConfig{d=" << domain_bits << " k=" << delta.size()
     << " delta=[";
  for (size_t i = 0; i < delta.size(); ++i) {
    os << (i ? "," : "") << int{delta[i]};
  }
  os << "] r=[";
  for (size_t i = 0; i < replicas.size(); ++i) {
    os << (i ? "," : "") << int{replicas[i]};
  }
  os << "] seg=[";
  for (size_t i = 0; i < segment_of.size(); ++i) {
    os << (i ? "," : "") << int{segment_of[i]};
  }
  os << "] m=[";
  for (size_t j = 0; j < segment_bits.size(); ++j) {
    os << (j ? "," : "") << segment_bits[j];
  }
  os << "] exact=" << (has_exact_layer ? "yes" : "no");
  if (has_exact_layer) {
    os << "(level " << TopLevel() << ", " << ExactBits() << " bits)";
  }
  os << "}";
  return os.str();
}

}  // namespace bloomrf

// Lock-light query sampler feeding the adaptive filter planner
// (ROADMAP "workload-adaptive filter auto-tuning"; Proteus samples
// recent queries the same way before modeling its filter choice).
//
// Every Db read path calls Record*; the hot-path cost is one relaxed
// fetch_add, and only 1-in-2^period_log2 operations pay for the actual
// sample (a handful of relaxed stores). The collected state is
//  - the point/range operation mix,
//  - a log2 histogram of range widths (bucket l = widths in
//    [2^l, 2^{l+1})), replacing the single static max_range scalar the
//    tuning advisor used to be fed,
//  - a small ring of recently sampled keys (range anchors use lo) as a
//    coarse key-distribution sketch.
// Everything is relaxed atomics: concurrent readers never serialize on
// the sampler, and a Snapshot() taken mid-traffic is approximate in
// exactly the way a workload model can tolerate.

#ifndef BLOOMRF_CORE_WORKLOAD_SAMPLER_H_
#define BLOOMRF_CORE_WORKLOAD_SAMPLER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace bloomrf {

/// Plain (non-atomic) copy of the sampler state, safe to hand to the
/// planner or across threads.
struct WorkloadSnapshot {
  uint64_t ops = 0;            ///< total recorded operations
  uint64_t point_samples = 0;  ///< sampled point lookups
  uint64_t range_samples = 0;  ///< sampled range queries
  /// Bucket l counts sampled ranges of width in [2^l, 2^{l+1});
  /// bucket 64 is the full-domain overflow bucket.
  std::array<uint64_t, 65> range_width_log2{};
  /// Recently sampled keys (lo for ranges), newest-last not guaranteed.
  std::vector<uint64_t> sampled_keys;

  uint64_t total_samples() const { return point_samples + range_samples; }
  /// Fraction of sampled operations that were point lookups (1.0 when
  /// nothing was sampled — the conservative point-biased default).
  double point_fraction() const;
  /// Normalized range-width weights, trimmed after the last non-empty
  /// bucket; empty when no range was sampled. weights[l] is the
  /// fraction of sampled ranges with width in [2^l, 2^{l+1}).
  std::vector<double> RangeWeights() const;
  /// Upper bound of the widest sampled range bucket (2^{l+1} for the
  /// top non-empty bucket l), or 1 when no range was sampled.
  double MaxRangeWidth() const;
};

class WorkloadSampler {
 public:
  static constexpr size_t kKeyRing = 256;

  /// Samples 1 in 2^period_log2 operations (clamped to [0, 20]).
  explicit WorkloadSampler(uint32_t period_log2 = 6);

  /// O(1) amortized; one relaxed fetch_add on the non-sampled path.
  void RecordPoint(uint64_t key);
  void RecordRange(uint64_t lo, uint64_t hi);
  /// Batch variants: the op counter advances by the batch size and one
  /// element is sampled per period boundary the batch crosses, so a
  /// MultiGet of 1024 keys costs one fetch_add, not 1024.
  void RecordPoints(std::span<const uint64_t> keys);
  void RecordRanges(std::span<const uint64_t> los,
                    std::span<const uint64_t> his);

  WorkloadSnapshot Snapshot() const;

  /// Forgets all samples (the bench's phase boundary; a production
  /// caller would reset periodically for a sliding window).
  void Reset();

  uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }
  uint64_t period() const { return uint64_t{1} << period_log2_; }

 private:
  void SamplePoint(uint64_t key);
  void SampleRange(uint64_t lo, uint64_t hi);
  void PushKey(uint64_t key);

  uint32_t period_log2_;
  uint64_t mask_;  // period - 1
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> point_samples_{0};
  std::atomic<uint64_t> range_samples_{0};
  std::array<std::atomic<uint64_t>, 65> range_width_log2_{};
  std::atomic<uint64_t> key_seq_{0};  // ring write cursor
  std::array<std::atomic<uint64_t>, kKeyRing> keys_{};
};

}  // namespace bloomrf

#endif  // BLOOMRF_CORE_WORKLOAD_SAMPLER_H_

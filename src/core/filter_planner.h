// Filter planner: the decision half of the adaptive tuning loop.
//
// Consumes a WorkloadSnapshot (point/range mix + range-width
// histogram), a per-table key count and a bits-per-key budget, scores
// every candidate filter backend with the analytic models in
// core/fpr_model.h + core/tuning_advisor.h, and emits the backend name
// (a FilterRegistry key) plus its construction parameters. Proteus
// (Knorr et al., SIGMOD '22) is the template: sample recent queries,
// model the FPR of each candidate design, pick the cheapest.
//
// Candidates and their models:
//  - bloomrf        AdviseConfig over the measured range-width
//                   histogram (delta ladder, exact layer, replicas,
//                   segment split) — the paper's tuning advisor fed
//                   live weights instead of one static max_range;
//  - blocked_bloom  BasicPointFpr; range FPR 1 (cannot exclude
//                   ranges). One cache line per probe, so it carries
//                   the smallest probe-cost term — the pick for
//                   point-only workloads;
//  - bloom          same FPR model, k scattered cache lines per probe;
//  - rosetta        per-level Bloom ladder sized BottomHeavy; narrow
//                   ranges only — wide ranges blow its budget;
//  - prefix_bloom   one Bloom over keys + fixed-width prefixes; the
//                   prefix width is chosen from the histogram median.
//
// The planner also accepts measured per-backend feedback (false
// positives the LSM actually observed: filter said maybe, data block
// said no). When a backend's measured FPR exceeds its model's
// prediction, its score is scaled by the divergence — the loop's
// "distrust a model that reality contradicts" correction.

#ifndef BLOOMRF_CORE_FILTER_PLANNER_H_
#define BLOOMRF_CORE_FILTER_PLANNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "core/workload_sampler.h"

namespace bloomrf {

/// Measured probe outcomes of one backend, aggregated over the live
/// tables that carry it. "false" counts filter-passed probes the data
/// blocks then rejected; "negatives" are filter rejections (always
/// correct — the structures have no false negatives).
struct BackendObservation {
  std::string backend;  ///< FilterRegistry name, e.g. "bloomrf"
  uint64_t point_allowed = 0;
  uint64_t point_false = 0;
  uint64_t point_negatives = 0;
  uint64_t range_allowed = 0;
  uint64_t range_false = 0;
  uint64_t range_negatives = 0;

  /// Measured FPR over the probes that had a definite outcome; -1
  /// when fewer than `min_probes` outcomes were observed.
  double MeasuredPointFpr(uint64_t min_probes) const;
  double MeasuredRangeFpr(uint64_t min_probes) const;
};

struct FilterFeedback {
  std::vector<BackendObservation> backends;

  const BackendObservation* Find(std::string_view backend) const;
  BackendObservation* FindOrAdd(std::string_view backend);
};

struct PlannerOptions {
  double bits_per_key = 16.0;
  /// Below this many samples the snapshot is noise: build the fallback.
  uint64_t min_samples = 32;
  /// Advisor C for the bloomrf candidate (point-error weight).
  double point_weight = 2.0;
  std::string fallback_backend = "bloomrf";
  double fallback_max_range = 1 << 16;
  /// Feedback gates: ignore observations with fewer definite outcomes,
  /// and cap the distrust multiplier (measured/predicted FPR).
  uint64_t feedback_min_probes = 512;
  double distrust_cap = 16.0;
};

/// One planning decision: which backend the next SST should carry and
/// how to build it. `backend` is a FilterRegistry name; when
/// `has_bloomrf_config` is set the full advisor-tuned BloomRFConfig is
/// attached (the registry's scalar bits_per_key/max_range path cannot
/// express it).
struct FilterPlan {
  std::string backend = "bloomrf";
  double bits_per_key = 16.0;
  double max_range = 1 << 16;
  uint32_t prefix_level = 16;
  bool has_bloomrf_config = false;
  BloomRFConfig bloomrf_config;
  /// Model outputs for the chosen candidate (feedback-adjusted).
  double predicted_point_fpr = 1.0;
  double predicted_range_fpr = 1.0;
  double predicted_cost = 1.0;
  bool used_fallback = false;  ///< too few samples: fallback built
  std::string rationale;       ///< one human-readable line
  /// Every scored candidate with its feedback-adjusted cost (ascending
  /// is NOT guaranteed; the chosen backend holds the minimum).
  std::vector<std::pair<std::string, double>> candidate_costs;
};

/// Scores every candidate for `table_keys` keys under the sampled
/// workload and returns the cheapest. `feedback` may be null.
FilterPlan PlanFilter(const WorkloadSnapshot& snapshot, uint64_t table_keys,
                      const PlannerOptions& options,
                      const FilterFeedback* feedback = nullptr);

}  // namespace bloomrf

#endif  // BLOOMRF_CORE_FILTER_PLANNER_H_

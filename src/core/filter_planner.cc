#include "core/filter_planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "core/fpr_model.h"
#include "core/tuning_advisor.h"

namespace bloomrf {

namespace {

/// Relative cost of one filter probe, in "expected data-block reads"
/// units (a false positive costs ~1 block read + parse; a probe costs
/// nanoseconds). These terms only decide ties between candidates whose
/// model FPRs are equal — most visibly blocked_bloom (one cache line)
/// over bloom (k scattered lines) on point-only workloads.
constexpr double kEpsBlockedBloom = 2e-5;
constexpr double kEpsBloom = 1e-4;
constexpr double kEpsBloomRF = 2e-4;      // O(k) dyadic descent
constexpr double kEpsPrefixBloom = 5e-4;  // O(range/2^p) prefix probes
constexpr double kEpsRosetta = 1e-3;      // O(log R)..O(R) doubting

/// kMaxProbes of PrefixBloomFilter::MayContainRange: wider covers
/// answer "maybe" without probing.
constexpr double kPrefixBloomProbeCap = 1024;

uint32_t OptimalK(double bits_per_key) {
  return std::max<uint32_t>(
      1, static_cast<uint32_t>(std::lround(bits_per_key * std::log(2.0))));
}

struct Candidate {
  std::string backend;
  double point_fpr = 1.0;
  double range_fpr = 1.0;  // histogram-weighted
  double probe_eps = 0.0;
  bool viable = true;
};

/// Multiplies a model FPR by how badly reality has contradicted it for
/// this backend: measured/predicted, clamped to [1, cap]. A backend
/// whose model holds up keeps multiplier 1.
double Distrust(double measured, double predicted, double cap) {
  if (measured < 0 || predicted <= 0) return 1.0;
  return std::clamp(measured / predicted, 1.0, cap);
}

double CandidateCost(const Candidate& c, double p_point, double p_range,
                     const PlannerOptions& options,
                     const FilterFeedback* feedback) {
  if (!c.viable) return std::numeric_limits<double>::infinity();
  double point = c.point_fpr;
  double range = c.range_fpr;
  if (feedback != nullptr) {
    if (const BackendObservation* obs = feedback->Find(c.backend)) {
      point *= Distrust(obs->MeasuredPointFpr(options.feedback_min_probes),
                        c.point_fpr, options.distrust_cap);
      range *= Distrust(obs->MeasuredRangeFpr(options.feedback_min_probes),
                        c.range_fpr, options.distrust_cap);
    }
  }
  return p_point * std::min(1.0, point) + p_range * std::min(1.0, range) +
         c.probe_eps;
}

/// Weighted mean of per-bucket range FPRs given by `fpr_of_width`.
template <typename Fn>
double WeightedOver(const std::vector<double>& weights, Fn fpr_of_width) {
  if (weights.empty()) return 1.0;
  double fpr = 0;
  for (size_t l = 0; l < weights.size(); ++l) {
    if (weights[l] <= 0) continue;
    fpr += weights[l] *
           std::min(1.0, fpr_of_width(std::ldexp(1.0, static_cast<int>(l))));
  }
  return fpr;
}

}  // namespace

double BackendObservation::MeasuredPointFpr(uint64_t min_probes) const {
  uint64_t definite = point_false + point_negatives;
  if (definite < min_probes) return -1.0;
  return static_cast<double>(point_false) / static_cast<double>(definite);
}

double BackendObservation::MeasuredRangeFpr(uint64_t min_probes) const {
  uint64_t definite = range_false + range_negatives;
  if (definite < min_probes) return -1.0;
  return static_cast<double>(range_false) / static_cast<double>(definite);
}

const BackendObservation* FilterFeedback::Find(std::string_view backend) const {
  for (const BackendObservation& obs : backends) {
    if (obs.backend == backend) return &obs;
  }
  return nullptr;
}

BackendObservation* FilterFeedback::FindOrAdd(std::string_view backend) {
  for (BackendObservation& obs : backends) {
    if (obs.backend == backend) return &obs;
  }
  backends.emplace_back();
  backends.back().backend = std::string(backend);
  return &backends.back();
}

FilterPlan PlanFilter(const WorkloadSnapshot& snapshot, uint64_t table_keys,
                      const PlannerOptions& options,
                      const FilterFeedback* feedback) {
  FilterPlan plan;
  plan.bits_per_key = options.bits_per_key;

  const uint64_t n = std::max<uint64_t>(table_keys, 2);
  const uint64_t m = std::max<uint64_t>(
      256, static_cast<uint64_t>(options.bits_per_key *
                                 static_cast<double>(n)));
  const double bpk = static_cast<double>(m) / static_cast<double>(n);

  if (snapshot.total_samples() < options.min_samples) {
    plan.backend = options.fallback_backend;
    plan.max_range = options.fallback_max_range;
    plan.used_fallback = true;
    plan.rationale = "fallback: " + std::to_string(snapshot.total_samples()) +
                     " samples < min " + std::to_string(options.min_samples);
    return plan;
  }

  const double p_point = snapshot.point_fraction();
  const double p_range = 1.0 - p_point;
  const std::vector<double> weights = snapshot.RangeWeights();
  const double max_range = snapshot.MaxRangeWidth();

  std::vector<Candidate> candidates;

  // bloomRF: the tuning advisor over the measured width histogram.
  AdvisorResult advised;
  {
    AdvisorParams params;
    params.n = n;
    params.total_bits = m;
    params.max_range = max_range;
    params.domain_bits = 64;
    params.point_weight = options.point_weight;
    params.range_weights = weights;
    advised = AdviseConfig(params);
    Candidate c;
    c.backend = "bloomrf";
    c.point_fpr = advised.expected_point_fpr;
    c.range_fpr = weights.empty() ? 1.0 : advised.expected_range_fpr;
    c.probe_eps = kEpsBloomRF;
    candidates.push_back(std::move(c));
  }

  // Plain and cache-line-blocked Bloom: point probes only.
  {
    const double point = BasicPointFpr(n, m, OptimalK(bpk));
    Candidate blocked;
    blocked.backend = "blocked_bloom";
    blocked.point_fpr = point;
    blocked.probe_eps = kEpsBlockedBloom;
    candidates.push_back(std::move(blocked));
    Candidate bloom;
    bloom.backend = "bloom";
    bloom.point_fpr = point;
    bloom.probe_eps = kEpsBloom;
    candidates.push_back(std::move(bloom));
  }

  // Rosetta (BottomHeavy): every level above the bottom costs
  // ~log2(e) bits/key at FPR 1/2; whatever remains sizes the
  // bottom-level Bloom, whose FPR bounds both points and (through
  // doubting fan-in, roughly width * p_bottom) ranges.
  {
    Candidate c;
    c.backend = "rosetta";
    const double levels =
        std::ceil(std::log2(std::max(2.0, max_range))) + 1.0;
    const double bottom_bpk = bpk - std::log2(std::exp(1.0)) * (levels - 1.0);
    if (bottom_bpk < 1.0) {
      c.viable = false;  // the ladder alone exhausts the budget
    } else {
      const uint64_t m_bottom =
          static_cast<uint64_t>(bottom_bpk * static_cast<double>(n));
      const double p_bottom = BasicPointFpr(n, m_bottom, OptimalK(bottom_bpk));
      c.point_fpr = p_bottom;
      c.range_fpr =
          WeightedOver(weights, [&](double w) { return w * p_bottom; });
      c.probe_eps = kEpsRosetta;
    }
    candidates.push_back(std::move(c));
  }

  // Prefix Bloom at the histogram's weighted-median width: stores key
  // + prefix (2n insertions into the same m bits), probes
  // ~width/2^p + 1 prefixes per range, answers "maybe" beyond its
  // probe cap.
  uint32_t prefix_level = 16;
  {
    Candidate c;
    c.backend = "prefix_bloom";
    if (!weights.empty()) {
      double acc = 0;
      for (size_t l = 0; l < weights.size(); ++l) {
        acc += weights[l];
        if (acc >= 0.5) {
          prefix_level = static_cast<uint32_t>(l);
          break;
        }
      }
    }
    const double k2 = OptimalK(bpk / 2.0);
    const double per_probe = BasicPointFpr(2 * n, m, static_cast<uint32_t>(k2));
    c.point_fpr = per_probe;
    const double prefix_width = std::ldexp(1.0, static_cast<int>(prefix_level));
    c.range_fpr = WeightedOver(weights, [&](double w) {
      const double probes = w / prefix_width + 2.0;
      if (probes > kPrefixBloomProbeCap) return 1.0;  // cap: cannot exclude
      return probes * per_probe;
    });
    c.probe_eps = kEpsPrefixBloom;
    candidates.push_back(std::move(c));
  }

  size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  plan.candidate_costs.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double cost =
        CandidateCost(candidates[i], p_point, p_range, options, feedback);
    plan.candidate_costs.emplace_back(candidates[i].backend, cost);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }

  const Candidate& chosen = candidates[best];
  plan.backend = chosen.backend;
  plan.max_range = std::max(2.0, max_range);
  plan.prefix_level = prefix_level;
  plan.predicted_point_fpr = chosen.point_fpr;
  plan.predicted_range_fpr = chosen.range_fpr;
  plan.predicted_cost = best_cost;
  if (chosen.backend == "bloomrf") {
    plan.has_bloomrf_config = true;
    plan.bloomrf_config = advised.config;
  }
  char line[160];
  std::snprintf(line, sizeof(line),
                "%s: cost %.3g (point %.0f%% fpr %.3g, range %.0f%% fpr "
                "%.3g, max width %.3g)",
                chosen.backend.c_str(), best_cost, 100 * p_point,
                chosen.point_fpr, 100 * p_range, chosen.range_fpr, max_range);
  plan.rationale = line;
  return plan;
}

}  // namespace bloomrf

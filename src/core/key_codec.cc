#include "core/key_codec.h"

#include "util/hash.h"

namespace bloomrf {

namespace {

uint64_t SevenBytePrefix(std::string_view s) {
  uint64_t prefix = 0;
  for (size_t i = 0; i < 7; ++i) {
    uint8_t byte = i < s.size() ? static_cast<uint8_t>(s[i]) : 0;
    prefix = (prefix << 8) | byte;
  }
  return prefix;
}

}  // namespace

uint64_t OrderedFromString(std::string_view s) {
  uint64_t prefix = SevenBytePrefix(s);
  // Hash the *rest* of the string plus the length, as in SuRF-Hash:
  // identical 7-byte prefixes with different tails get distinct codes
  // with probability 255/256.
  std::string_view rest = s.size() > 7 ? s.substr(7) : std::string_view{};
  uint8_t tail = static_cast<uint8_t>(
      HashBytes(rest.data(), rest.size(), /*seed=*/s.size() * 0x9e37ULL));
  return (prefix << 8) | tail;
}

uint64_t StringRangeLow(std::string_view a) {
  return SevenBytePrefix(a) << 8;
}

uint64_t StringRangeHigh(std::string_view b) {
  return (SevenBytePrefix(b) << 8) | 0xff;
}

}  // namespace bloomrf

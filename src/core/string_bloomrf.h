// String-keyed bloomRF (paper Sect. 8 "Variable-length strings").
//
// Wraps a BloomRF behind the SuRF-Hash-style string coding of
// core/key_codec.h: the seven most significant bytes carry the string
// prefix (ordering), the least significant byte carries a hash of the
// tail and length (point precision). Range queries use only the
// 7-byte-prefix component, so strings sharing a 7-byte prefix are
// indistinguishable to range probes — the same trade-off the paper
// accepts.

#ifndef BLOOMRF_CORE_STRING_BLOOMRF_H_
#define BLOOMRF_CORE_STRING_BLOOMRF_H_

#include <string_view>

#include "core/bloomrf.h"
#include "core/key_codec.h"

namespace bloomrf {

class StringBloomRF {
 public:
  explicit StringBloomRF(BloomRFConfig config) : filter_(std::move(config)) {}

  void Insert(std::string_view key) {
    filter_.Insert(OrderedFromString(key));
  }

  /// Point membership: exact up to the 7-byte prefix + 8-bit tail hash.
  bool MayContain(std::string_view key) const {
    return filter_.MayContain(OrderedFromString(key));
  }

  /// Lexicographic range [lo, hi] (inclusive). The probe widens the
  /// hash byte, so precision is limited to the 7-byte prefix.
  bool MayContainRange(std::string_view lo, std::string_view hi) const {
    uint64_t lo_code = StringRangeLow(lo);
    uint64_t hi_code = StringRangeHigh(hi);
    if (lo_code > hi_code) return false;
    return filter_.MayContainRange(lo_code, hi_code);
  }

  /// All strings starting with `prefix` form one contiguous code range.
  bool MayContainPrefix(std::string_view prefix) const {
    std::string hi(prefix);
    // Extend with 0xFF bytes to the 7-byte horizon.
    while (hi.size() < 7) hi.push_back('\xff');
    return MayContainRange(prefix, hi);
  }

  const BloomRF& filter() const { return filter_; }
  uint64_t MemoryBits() const { return filter_.MemoryBits(); }

 private:
  BloomRF filter_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_CORE_STRING_BLOOMRF_H_

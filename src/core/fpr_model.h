// Analytic false-positive-rate models of bloomRF.
//
// - Basic closed-form bound (paper Sect. 5, eq. 6) for the tuning-free
//   single-segment filter.
// - Extended per-level recursion (paper Sect. 7 "Extended Model") for
//   arbitrary configurations with segments, replicas and an exact
//   layer. The recursion tracks, per dyadic level, the estimated
//   number of true-positive, false-positive and true-negative DIs under
//   a uniform key distribution, and derives fpr_l = fp_l/(fp_l+tn_l).
// - The Rosetta first-cut space model and the Goswami/Carter
//   theoretical lower bounds used in the Sect. 6 comparison (Fig. 8).

#ifndef BLOOMRF_CORE_FPR_MODEL_H_
#define BLOOMRF_CORE_FPR_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.h"

namespace bloomrf {

/// Closed-form range FPR bound of basic bloomRF (eq. 6):
/// eps <= 2 (1 - e^{-kn/m})^{k - log2(R)/delta}.
double BasicRangeFprBound(uint64_t n, uint64_t m, uint32_t k, uint32_t delta,
                          double range_size);

/// Point FPR of basic bloomRF: (1 - e^{-kn/m})^k.
double BasicPointFpr(uint64_t n, uint64_t m, uint32_t k);

struct FprModelResult {
  /// fpr per dyadic level, index 0..domain_bits (level 0 = points).
  std::vector<double> fpr_per_level;
  double point_fpr = 1.0;

  /// Max FPR over levels 0..floor(log2(R)) — the worst dyadic
  /// constituent of a range of size R.
  double MaxFprUpToRange(double range_size) const;
};

/// Range FPR of `model` under a measured range-width histogram:
/// weights[l] is the observed frequency of query widths in
/// [2^l, 2^{l+1}), and each bucket contributes its worst dyadic
/// constituent, MaxFprUpToRange(2^l). Weights are normalized
/// internally, so a histogram with all mass in bucket L reduces
/// exactly to MaxFprUpToRange(2^L) — the old single-max_range scoring.
/// Empty (or all-zero) weights return model.point_fpr, the width-1
/// degenerate.
double WeightedRangeFpr(const FprModelResult& model,
                        std::span<const double> weights);

/// Evaluates the extended model for `cfg` holding `n` keys. `C` models
/// the data-distribution scatter constant (Sect. 5/7; C = 1 for
/// uniform/normal/zipfian per the paper's Fig. 5 experiments).
FprModelResult EvaluateFprModel(const BloomRFConfig& cfg, uint64_t n,
                                double C = 1.0);

/// Rosetta first-cut solution space model (Sect. 6 / [29]): bits/key to
/// reach range-FPR eps at max range R: m/n ~= log2(e) * log2(R/eps).
double RosettaBitsPerKey(double range_size, double eps);

/// Goswami et al. range-emptiness lower bound (Sect. 6 / [20]),
/// maximized over the free parameter gamma > 1:
/// m/n >= log2(R^{1-gamma*eps}/eps) + log2(1 - 4nR/2^d (1 - 1/gamma) e).
double RangeLowerBoundBitsPerKey(double range_size, double eps, uint64_t n,
                                 uint32_t domain_bits);

/// Carter et al. point-query lower bound [7]: m/n >= log2(1/eps).
double PointLowerBoundBitsPerKey(double eps);

/// Bits/key basic bloomRF needs for range-FPR <= eps at max range R
/// (inverts eq. 6 numerically).
double BloomRFBitsPerKey(double range_size, double eps, uint64_t n,
                         uint32_t domain_bits, uint32_t delta = 7);

}  // namespace bloomrf

#endif  // BLOOMRF_CORE_FPR_MODEL_H_

#include "core/fpr_model.h"

#include <algorithm>
#include <cmath>

namespace bloomrf {

namespace {

double Pow2(uint32_t e) { return std::ldexp(1.0, static_cast<int>(e)); }

}  // namespace

double BasicPointFpr(uint64_t n, uint64_t m, uint32_t k) {
  double load = 1.0 - std::exp(-static_cast<double>(k) *
                               static_cast<double>(n) /
                               static_cast<double>(m));
  return std::pow(load, k);
}

double BasicRangeFprBound(uint64_t n, uint64_t m, uint32_t k, uint32_t delta,
                          double range_size) {
  double load = 1.0 - std::exp(-static_cast<double>(k) *
                               static_cast<double>(n) /
                               static_cast<double>(m));
  double exponent =
      static_cast<double>(k) - std::log2(std::max(1.0, range_size)) / delta;
  if (exponent <= 0) return 1.0;
  return std::min(1.0, 2.0 * std::pow(load, exponent));
}

double FprModelResult::MaxFprUpToRange(double range_size) const {
  uint32_t top = static_cast<uint32_t>(std::floor(
      std::log2(std::max(1.0, range_size))));
  double worst = 0;
  for (uint32_t l = 0; l <= top && l < fpr_per_level.size(); ++l) {
    worst = std::max(worst, fpr_per_level[l]);
  }
  return worst;
}

double WeightedRangeFpr(const FprModelResult& model,
                        std::span<const double> weights) {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return model.point_fpr;
  double fpr = 0;
  for (size_t l = 0; l < weights.size(); ++l) {
    if (weights[l] <= 0) continue;
    fpr += (weights[l] / total) *
           model.MaxFprUpToRange(std::ldexp(1.0, static_cast<int>(l)));
  }
  return fpr;
}

FprModelResult EvaluateFprModel(const BloomRFConfig& cfg, uint64_t n,
                                double C) {
  const uint32_t d = cfg.domain_bits;
  const size_t k = cfg.num_layers();
  FprModelResult result;
  result.fpr_per_level.assign(d + 1, 1.0);

  // Probability that a probed bit of segment j is zero:
  // p_j = (1 - C/m_j)^(k'_j * n), k'_j = total hash functions writing
  // into segment j.
  std::vector<double> seg_zero_prob(cfg.segment_bits.size(), 1.0);
  {
    std::vector<double> hashes(cfg.segment_bits.size(), 0.0);
    for (size_t i = 0; i < k; ++i) hashes[cfg.segment_of[i]] += cfg.replicas[i];
    for (size_t j = 0; j < cfg.segment_bits.size(); ++j) {
      double m = static_cast<double>(cfg.segment_bits[j]);
      seg_zero_prob[j] =
          std::exp(hashes[j] * static_cast<double>(n) * std::log1p(-C / m));
    }
  }

  const uint32_t top_level = std::min(cfg.TopLevel(), d);

  // True positives per level under a uniform key distribution.
  auto tp = [&](uint32_t level) {
    return std::min(static_cast<double>(n), Pow2(d - level));
  };

  // Levels above the stored boundary: saturated (everything potentially
  // positive) unless the boundary level is stored exactly.
  std::vector<double> fp(d + 1, 0.0), tn(d + 1, 0.0);
  for (uint32_t l = d; l > top_level; --l) {
    fp[l] = Pow2(d - l) - tp(l);
    tn[l] = 0.0;
    result.fpr_per_level[l] =
        fp[l] + tn[l] > 0 ? fp[l] / (fp[l] + tn[l]) : 0.0;
  }
  if (cfg.has_exact_layer) {
    fp[top_level] = 0.0;
    tn[top_level] = Pow2(d - top_level) - tp(top_level);
  } else {
    fp[top_level] = Pow2(d - top_level) - tp(top_level);
    tn[top_level] = 0.0;
  }
  result.fpr_per_level[top_level] =
      fp[top_level] + tn[top_level] > 0
          ? fp[top_level] / (fp[top_level] + tn[top_level])
          : 0.0;

  // Descend layer by layer. Levels in [l_i, l_{i+1}) are answered by
  // layer i's word: a DI on level l is tested with 2^(l - l_i) bits.
  for (size_t i = k; i-- > 0;) {
    uint32_t low = cfg.LevelOfLayer(i);
    uint32_t high = std::min(cfg.LevelOfLayer(i + 1), top_level);
    if (low >= high && !(i + 1 == k)) continue;
    double p = seg_zero_prob[cfg.segment_of[i]];
    double r = cfg.replicas[i];
    double one_bit_pos = std::pow(1.0 - p, r);  // all replicas set
    for (uint32_t l = high; l-- > low;) {
      uint32_t parent = high;
      double fp_pot =
          Pow2(parent - l) * (fp[parent] + tp(parent)) - tp(l);
      fp_pot = std::max(0.0, fp_pot);
      double bits = Pow2(l - low);
      double p_probe = 1.0 - std::pow(1.0 - one_bit_pos, bits);
      fp[l] = p_probe * fp_pot;
      tn[l] = Pow2(parent - l) * tn[parent] + (1.0 - p_probe) * fp_pot;
      double denom = fp[l] + tn[l];
      result.fpr_per_level[l] = denom > 0 ? fp[l] / denom : 0.0;
    }
  }
  result.point_fpr = result.fpr_per_level[0];
  return result;
}

double RosettaBitsPerKey(double range_size, double eps) {
  return std::log2(std::exp(1.0)) * std::log2(range_size / eps);
}

double RangeLowerBoundBitsPerKey(double range_size, double eps, uint64_t n,
                                 uint32_t domain_bits) {
  double best = 0.0;
  double domain = std::ldexp(1.0, static_cast<int>(domain_bits));
  for (double gamma = 1.0001; gamma < 64.0; gamma *= 1.05) {
    double term1 =
        std::log2(std::pow(range_size, 1.0 - gamma * eps) / eps);
    double inner = 1.0 - 4.0 * static_cast<double>(n) * range_size / domain *
                             (1.0 - 1.0 / gamma) * std::exp(1.0);
    if (inner <= 0) continue;
    double bound = term1 + std::log2(inner);
    best = std::max(best, bound);
  }
  return best;
}

double PointLowerBoundBitsPerKey(double eps) { return std::log2(1.0 / eps); }

double BloomRFBitsPerKey(double range_size, double eps, uint64_t n,
                         uint32_t domain_bits, uint32_t delta) {
  // Binary search on m/n: the bound (eq. 6) is monotone decreasing in m.
  double lo = 1.0, hi = 128.0;
  for (int iter = 0; iter < 60; ++iter) {
    double mid = (lo + hi) / 2;
    uint64_t m = static_cast<uint64_t>(mid * static_cast<double>(n));
    uint32_t log2n = static_cast<uint32_t>(std::log2(std::max<uint64_t>(2, n)));
    uint32_t k = (domain_bits > log2n ? domain_bits - log2n : 1);
    k = (k + delta - 1) / delta;
    if (k < 1) k = 1;
    double bound = BasicRangeFprBound(n, m, k, delta, range_size);
    if (bound > eps) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace bloomrf

#include "core/workload_sampler.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace bloomrf {

namespace {

/// Log2 bucket of a range [lo, hi]: floor(log2(hi - lo + 1)), with the
/// full-domain wrap (hi - lo + 1 == 0 in uint64) landing in bucket 64.
size_t WidthBucket(uint64_t lo, uint64_t hi) {
  if (hi <= lo) return 0;
  uint64_t width = hi - lo + 1;
  if (width == 0) return 64;  // [0, UINT64_MAX]
  return 63 - static_cast<size_t>(std::countl_zero(width));
}

}  // namespace

double WorkloadSnapshot::point_fraction() const {
  uint64_t total = total_samples();
  if (total == 0) return 1.0;
  return static_cast<double>(point_samples) / static_cast<double>(total);
}

std::vector<double> WorkloadSnapshot::RangeWeights() const {
  size_t top = range_width_log2.size();
  while (top > 0 && range_width_log2[top - 1] == 0) --top;
  if (top == 0) return {};
  uint64_t total = 0;
  for (size_t l = 0; l < top; ++l) total += range_width_log2[l];
  std::vector<double> weights(top, 0.0);
  for (size_t l = 0; l < top; ++l) {
    weights[l] =
        static_cast<double>(range_width_log2[l]) / static_cast<double>(total);
  }
  return weights;
}

double WorkloadSnapshot::MaxRangeWidth() const {
  for (size_t l = range_width_log2.size(); l-- > 0;) {
    if (range_width_log2[l] != 0) {
      return std::ldexp(1.0, static_cast<int>(std::min<size_t>(l + 1, 64)));
    }
  }
  return 1.0;
}

WorkloadSampler::WorkloadSampler(uint32_t period_log2)
    : period_log2_(std::min<uint32_t>(period_log2, 20)),
      mask_((uint64_t{1} << period_log2_) - 1) {}

void WorkloadSampler::PushKey(uint64_t key) {
  uint64_t seq = key_seq_.fetch_add(1, std::memory_order_relaxed);
  keys_[seq & (kKeyRing - 1)].store(key, std::memory_order_relaxed);
}

void WorkloadSampler::SamplePoint(uint64_t key) {
  point_samples_.fetch_add(1, std::memory_order_relaxed);
  PushKey(key);
}

void WorkloadSampler::SampleRange(uint64_t lo, uint64_t hi) {
  range_samples_.fetch_add(1, std::memory_order_relaxed);
  range_width_log2_[WidthBucket(lo, hi)].fetch_add(1,
                                                   std::memory_order_relaxed);
  PushKey(lo);
}

void WorkloadSampler::RecordPoint(uint64_t key) {
  uint64_t n = ops_.fetch_add(1, std::memory_order_relaxed);
  if ((n & mask_) != 0) return;
  SamplePoint(key);
}

void WorkloadSampler::RecordRange(uint64_t lo, uint64_t hi) {
  uint64_t n = ops_.fetch_add(1, std::memory_order_relaxed);
  if ((n & mask_) != 0) return;
  SampleRange(lo, hi);
}

void WorkloadSampler::RecordPoints(std::span<const uint64_t> keys) {
  if (keys.empty()) return;
  uint64_t n = ops_.fetch_add(keys.size(), std::memory_order_relaxed);
  // One sample per period boundary inside [n, n + keys.size()): the
  // batch contributes exactly as many samples as the same operations
  // issued one by one would have.
  uint64_t crossings =
      ((n + keys.size()) >> period_log2_) - (n >> period_log2_);
  for (uint64_t c = 0; c < crossings; ++c) {
    size_t at = static_cast<size_t>(
        std::min<uint64_t>(c << period_log2_, keys.size() - 1));
    SamplePoint(keys[at]);
  }
}

void WorkloadSampler::RecordRanges(std::span<const uint64_t> los,
                                   std::span<const uint64_t> his) {
  if (los.empty() || los.size() != his.size()) return;
  uint64_t n = ops_.fetch_add(los.size(), std::memory_order_relaxed);
  uint64_t crossings = ((n + los.size()) >> period_log2_) - (n >> period_log2_);
  for (uint64_t c = 0; c < crossings; ++c) {
    size_t at = static_cast<size_t>(
        std::min<uint64_t>(c << period_log2_, los.size() - 1));
    SampleRange(los[at], his[at]);
  }
}

WorkloadSnapshot WorkloadSampler::Snapshot() const {
  WorkloadSnapshot snap;
  snap.ops = ops_.load(std::memory_order_relaxed);
  snap.point_samples = point_samples_.load(std::memory_order_relaxed);
  snap.range_samples = range_samples_.load(std::memory_order_relaxed);
  for (size_t l = 0; l < snap.range_width_log2.size(); ++l) {
    snap.range_width_log2[l] =
        range_width_log2_[l].load(std::memory_order_relaxed);
  }
  uint64_t seq = key_seq_.load(std::memory_order_relaxed);
  size_t valid = static_cast<size_t>(std::min<uint64_t>(seq, kKeyRing));
  snap.sampled_keys.reserve(valid);
  for (size_t i = 0; i < valid; ++i) {
    snap.sampled_keys.push_back(keys_[i].load(std::memory_order_relaxed));
  }
  return snap;
}

void WorkloadSampler::Reset() {
  ops_.store(0, std::memory_order_relaxed);
  point_samples_.store(0, std::memory_order_relaxed);
  range_samples_.store(0, std::memory_order_relaxed);
  for (auto& bucket : range_width_log2_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  key_seq_.store(0, std::memory_order_relaxed);
}

}  // namespace bloomrf

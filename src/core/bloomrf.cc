#include "core/bloomrf.h"

#include <algorithm>
#include <cassert>

#include "util/coding.h"
#include "util/hash.h"
#include "util/simd.h"

namespace bloomrf {

namespace {

// Serialized format tags. V2 adds the hash-scheme byte (hash-once
// replica derivation); V1 blocks predate it and always probe with the
// legacy per-replica scheme.
constexpr uint32_t kFormatTagV1 = 0xb100f001;
constexpr uint32_t kFormatTagV2 = 0xb100f002;

// Replica r's slot from the base hash (kDoubleHash scheme). r == 0
// reduces to FastRange64(h, n), so single-replica layers lay out bits
// identically to the legacy scheme.
inline uint64_t SlotFromHash(uint64_t h, uint32_t r, uint64_t num_slots) {
  return FastRange64(h + r * DeriveStride(h), num_slots);
}

}  // namespace

BloomRF::BloomRF(BloomRFConfig config) : config_(std::move(config)) {
  std::string problem = config_.Validate();
  assert(problem.empty() && "invalid BloomRFConfig");
  if (!problem.empty()) {
    config_ = BloomRFConfig::Basic(1024, 10.0);
  }
  // Round segments up so every layer's word size divides the segment.
  for (uint64_t& m : config_.segment_bits) m = (m + 63) & ~63ULL;

  top_level_ = config_.TopLevel();
  uint64_t seed_state = config_.seed;
  perm_seed_ = SplitMix64(seed_state);

  segments_.resize(config_.segment_bits.size());
  for (size_t j = 0; j < segments_.size(); ++j) {
    segments_[j].Reset(config_.segment_bits[j]);
  }
  if (config_.has_exact_layer) {
    exact_.Reset(config_.ExactBits());
  }

  layers_.resize(config_.num_layers());
  for (size_t i = 0; i < layers_.size(); ++i) {
    Layer& layer = layers_[i];
    layer.level = config_.LevelOfLayer(i);
    layer.offset_bits = config_.delta[i] - 1;
    layer.word_bits = 1u << layer.offset_bits;
    layer.replicas = config_.replicas[i];
    layer.segment = config_.segment_of[i];
    layer.num_slots = config_.segment_bits[layer.segment] / layer.word_bits;
    layer.seed_base = SplitMix64(seed_state) + (uint64_t{i} << 32);
  }
}

uint64_t BloomRF::SlotOf(const Layer& layer, uint64_t word_key,
                         uint32_t replica) const {
  if (config_.hash_scheme == HashScheme::kLegacyPerReplica) {
    return FastRange64(Hash64(word_key, layer.seed_base + replica),
                       layer.num_slots);
  }
  return SlotFromHash(Hash64(word_key, layer.seed_base), replica,
                      layer.num_slots);
}

bool BloomRF::WordReversed(const Layer& layer, uint64_t word_key) const {
  if (!config_.permute_words || layer.word_bits == 1) return false;
  return Hash64(word_key, perm_seed_) & 1;
}

uint64_t BloomRF::WordIndexForKey(uint64_t key, size_t layer_idx,
                                  uint32_t replica) const {
  const Layer& layer = layers_[layer_idx];
  uint64_t word_key = Shr(key, layer.level + layer.offset_bits);
  return SlotOf(layer, word_key, replica);
}

void BloomRF::Insert(uint64_t key) {
  for (const Layer& layer : layers_) {
    uint64_t prefix = Shr(key, layer.level);
    uint64_t word_key = prefix >> layer.offset_bits;
    uint64_t offset = prefix & (layer.word_bits - 1);
    if (WordReversed(layer, word_key)) {
      offset = layer.word_bits - 1 - offset;
    }
    uint64_t bit = uint64_t{1} << offset;
    BitArray& seg = segments_[layer.segment];
    if (config_.hash_scheme == HashScheme::kDoubleHash) {
      uint64_t h = Hash64(word_key, layer.seed_base);
      for (uint32_t r = 0; r < layer.replicas; ++r) {
        seg.OrWord(SlotFromHash(h, r, layer.num_slots), layer.word_bits, bit);
      }
    } else {
      for (uint32_t r = 0; r < layer.replicas; ++r) {
        seg.OrWord(SlotOf(layer, word_key, r), layer.word_bits, bit);
      }
    }
  }
  if (config_.has_exact_layer) {
    exact_.SetBit(Shr(key, top_level_));
  }
}

uint64_t BloomRF::LoadWordAnd(const Layer& layer, uint64_t word_key) const {
  if (config_.hash_scheme == HashScheme::kDoubleHash) {
    return LoadWordAndFromHash(layer, Hash64(word_key, layer.seed_base));
  }
  const BitArray& seg = segments_[layer.segment];
  uint64_t word = seg.LoadWord(SlotOf(layer, word_key, 0), layer.word_bits);
  for (uint32_t r = 1; r < layer.replicas && word != 0; ++r) {
    word &= seg.LoadWord(SlotOf(layer, word_key, r), layer.word_bits);
  }
  return word;
}

uint64_t BloomRF::LoadWordAndFromHash(const Layer& layer,
                                      uint64_t hash) const {
  const BitArray& seg = segments_[layer.segment];
  uint64_t word =
      seg.LoadWord(SlotFromHash(hash, 0, layer.num_slots), layer.word_bits);
  for (uint32_t r = 1; r < layer.replicas && word != 0; ++r) {
    word &= seg.LoadWord(SlotFromHash(hash, r, layer.num_slots),
                         layer.word_bits);
  }
  return word;
}

bool BloomRF::TestPrefix(const Layer& layer, uint64_t p,
                         ProbeStats* stats) const {
  if (stats) ++stats->bit_probes;
  uint64_t word_key = p >> layer.offset_bits;
  return (LoadWordAnd(layer, word_key) >> ProbeOffsetFor(layer, p)) & 1ULL;
}

uint64_t BloomRF::WordMaskFor(const Layer& layer, uint64_t wk, uint64_t x,
                              uint64_t y) const {
  uint64_t base = wk << layer.offset_bits;
  uint64_t lo_off = (x > base) ? x - base : 0;
  uint64_t hi_off =
      std::min<uint64_t>(y - base, layer.word_bits - 1);
  if (WordReversed(layer, wk)) {
    uint64_t new_lo = layer.word_bits - 1 - hi_off;
    hi_off = layer.word_bits - 1 - lo_off;
    lo_off = new_lo;
  }
  uint64_t width = hi_off - lo_off + 1;
  return (width >= 64 ? ~0ULL : ((uint64_t{1} << width) - 1)) << lo_off;
}

bool BloomRF::TestPrefixRange(const Layer& layer, uint64_t x, uint64_t y,
                              uint64_t max_words, ProbeStats* stats) const {
  if (x > y) return false;
  uint64_t first_word = x >> layer.offset_bits;
  uint64_t last_word = y >> layer.offset_bits;
  if (last_word - first_word + 1 > max_words) return true;  // conservative
  for (uint64_t wk = first_word; wk <= last_word; ++wk) {
    if (stats) ++stats->word_probes;
    if (LoadWordAnd(layer, wk) & WordMaskFor(layer, wk, x, y)) return true;
  }
  return false;
}

bool BloomRF::MayContain(uint64_t key, ProbeStats* stats) const {
  if (config_.has_exact_layer && !exact_.TestBit(Shr(key, top_level_))) {
    if (stats) ++stats->bit_probes;
    return false;
  }
  for (size_t i = layers_.size(); i-- > 0;) {
    if (!TestPrefix(layers_[i], Shr(key, layers_[i].level), stats)) {
      return false;
    }
  }
  return true;
}

void BloomRF::MayContainBatch(std::span<const uint64_t> keys,
                              bool* out) const {
  if (keys.empty()) return;
  if (config_.hash_scheme == HashScheme::kLegacyPerReplica) {
    // Pre-bump blocks: the probe pass below derives replica slots from
    // the stored base hash, which only matches the hash-once layout.
    for (size_t i = 0; i < keys.size(); ++i) out[i] = MayContain(keys[i]);
    return;
  }
  // One probe slot per (layer, replica); the planning pass resolves
  // each slot of each key to a final (block index, bit mask) pair so
  // the probe pass is nothing but SIMD gather-tests.
  const size_t num_layers = layers_.size();
  std::vector<uint32_t> slot_base(num_layers);
  std::vector<const uint64_t*> seg_raw(num_layers);
  size_t num_slots = 0;
  for (size_t i = 0; i < num_layers; ++i) {
    slot_base[i] = static_cast<uint32_t>(num_slots);
    num_slots += layers_[i].replicas;
    seg_raw[i] = segments_[layers_[i].segment].raw_blocks();
  }
  const uint64_t* exact_raw =
      config_.has_exact_layer ? exact_.raw_blocks() : nullptr;
  // Lane-group layout: lanes of one (layer, replica) slot are adjacent
  // across keys, so a group of 4 keys feeds one gather.
  std::vector<uint64_t> idx(num_slots * kProbeStripe, 0);
  std::vector<uint64_t> msk(num_slots * kProbeStripe, 0);
  std::vector<uint64_t> exact_idx(kProbeStripe, 0);
  std::vector<uint64_t> exact_msk(kProbeStripe, 0);

  for (size_t base = 0; base < keys.size(); base += kProbeStripe) {
    const size_t stripe = std::min(kProbeStripe, keys.size() - base);
    if (stripe < kProbeStripe) {
      // Zero-pad the tail lanes: mask 0 never tests positive and block
      // 0 is always in bounds, so partial lane groups stay safe.
      std::fill(idx.begin(), idx.end(), 0);
      std::fill(msk.begin(), msk.end(), 0);
      std::fill(exact_idx.begin(), exact_idx.end(), 0);
      std::fill(exact_msk.begin(), exact_msk.end(), 0);
    }
    // Pass 1: hash every (key, layer) word key once, derive each
    // replica's final probe block, and start pulling it into cache.
    for (size_t j = 0; j < stripe; ++j) {
      uint64_t key = keys[base + j];
      if (exact_raw != nullptr) {
        uint64_t pos = Shr(key, top_level_);
        exact_idx[j] = pos >> 6;
        exact_msk[j] = uint64_t{1} << (pos & 63);
        exact_.PrefetchBit(pos);
      }
      for (size_t i = 0; i < num_layers; ++i) {
        const Layer& layer = layers_[i];
        uint64_t word_key = Shr(key, layer.level + layer.offset_bits);
        uint64_t h = Hash64(word_key, layer.seed_base);
        uint64_t offset = Shr(key, layer.level) & (layer.word_bits - 1);
        if (WordReversed(layer, word_key)) {
          offset = layer.word_bits - 1 - offset;
        }
        for (uint32_t r = 0; r < layer.replicas; ++r) {
          uint64_t bitpos =
              SlotFromHash(h, r, layer.num_slots) * layer.word_bits + offset;
          size_t lane = (slot_base[i] + r) * kProbeStripe + j;
          idx[lane] = bitpos >> 6;
          msk[lane] = uint64_t{1} << (bitpos & 63);
          segments_[layer.segment].PrefetchBlock(bitpos >> 6);
        }
      }
    }
    // Pass 2: the same tests the scalar MayContain runs (exact layer,
    // then layers top-down), 4 keys per SIMD lane group with
    // group-level early exit, on lines already in flight.
    for (size_t g = 0; g < stripe; g += 4) {
      uint32_t alive = 0xF;
      if (exact_raw != nullptr) {
        alive &= GatherTestNonzero4(exact_raw, &exact_idx[g], &exact_msk[g]);
      }
      for (size_t i = num_layers; alive != 0 && i-- > 0;) {
        for (uint32_t r = 0; r < layers_[i].replicas && alive != 0; ++r) {
          size_t lane = (slot_base[i] + r) * kProbeStripe + g;
          alive &= GatherTestNonzero4(seg_raw[i], &idx[lane], &msk[lane]);
        }
      }
      const size_t lanes = std::min<size_t>(4, stripe - g);
      for (size_t lane = 0; lane < lanes; ++lane) {
        out[base + g + lane] = (alive >> lane) & 1;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Lockstep batched range descent.
//
// All queries of a stripe descend the layer ladder together. At each
// layer the engine first PLANS every live query — the word keys a
// descent touches at a layer are a pure function of (lo, hi), the
// split state, and which endpoint paths are still alive, so planning
// hashes each word once, resolves every replica to a final (block,
// shift, mask) probe unit, and prefetches the block — then TESTS the
// compiled units on lines already in flight. Queries answered at a
// layer retire immediately, so no deeper layer is planned for them:
// the planned work tracks the scalar descent's early exits exactly,
// one layer behind at most.
//
// Rare shapes the unit encoding cannot hold (a range splitting at the
// exact layer, a top-layer middle scan wider than the unit buffer,
// more replicas than kRangeMaxRep) fall back to the scalar
// MayContainRange, so every answer matches the scalar probe bit for
// bit by construction.

namespace {

constexpr uint32_t kRangeMaxRep = 4;    // replica cap of a probe unit
constexpr uint32_t kRangeMaxUnits = 14;  // per (query, layer)

/// One compiled word test: AND the (right-shifted) replica blocks,
/// mask, test nonzero — exactly LoadWordAnd + mask of the scalar path.
struct RangeUnit {
  uint64_t mask;  // in-word mask, right-aligned
  uint32_t nrep;
  uint64_t blk[kRangeMaxRep];
  uint32_t shift[kRangeMaxRep];
};

enum RangeShape : uint8_t { kCover = 0, kSplitLayer = 1, kPhase2 = 2 };

struct RangeQuery {
  uint64_t lo, hi;
  uint32_t slot;  // index within the stripe (output position)
  bool split, left_alive, right_alive;
  // Current layer's compiled probes.
  const uint64_t* seg;
  uint32_t level;
  uint8_t shape;
  uint8_t n[4];  // group unit counts, in evaluation order
  RangeUnit units[kRangeMaxUnits];
};

inline bool RangeUnitHit(const RangeQuery& q, const RangeUnit& u) {
  uint64_t w = q.seg[u.blk[0]] >> u.shift[0];
  for (uint32_t r = 1; r < u.nrep && w != 0; ++r) {
    w &= q.seg[u.blk[r]] >> u.shift[r];
  }
  return (w & u.mask) != 0;
}

}  // namespace

void BloomRF::MayContainRangeBatch(std::span<const uint64_t> los,
                                   std::span<const uint64_t> his,
                                   bool* out) const {
  assert(los.size() == his.size());
  if (los.empty()) return;
  const size_t num_layers = layers_.size();

  RangeQuery queries[kRangeStripe];
  uint32_t alive[kRangeStripe];
  uint32_t fallback[kRangeStripe];

  // Emits the unit testing word `wk` against `in_mask` at `layer`;
  // false when the unit buffer or replica cap is exceeded (fallback).
  uint32_t emit_count = 0;
  auto emit = [&](RangeQuery& q, const Layer& layer, uint64_t wk,
                  uint64_t in_mask) {
    if (layer.replicas > kRangeMaxRep || emit_count >= kRangeMaxUnits) {
      return false;
    }
    RangeUnit& u = q.units[emit_count++];
    u.mask = in_mask;
    u.nrep = layer.replicas;
    const BitArray& seg = segments_[layer.segment];
    uint64_t h = config_.hash_scheme == HashScheme::kDoubleHash
                     ? Hash64(wk, layer.seed_base)
                     : 0;
    for (uint32_t r = 0; r < layer.replicas; ++r) {
      uint64_t slot = config_.hash_scheme == HashScheme::kDoubleHash
                          ? SlotFromHash(h, r, layer.num_slots)
                          : SlotOf(layer, wk, r);
      uint64_t bitbase = slot * layer.word_bits;
      u.blk[r] = bitbase >> 6;
      u.shift[r] = static_cast<uint32_t>(bitbase & 63);
      seg.PrefetchBlock(bitbase >> 6);
    }
    return true;
  };
  auto emit_bit = [&](RangeQuery& q, const Layer& layer, uint64_t p) {
    return emit(q, layer, p >> layer.offset_bits,
                uint64_t{1} << ProbeOffsetFor(layer, p));
  };

  // Plans layer `idx` of `q`. Returns: 0 planned, 1 answered (in
  // *answer), 2 fallback.
  auto plan_layer = [&](RangeQuery& q, size_t idx, bool* answer) -> int {
    const Layer& layer = layers_[idx];
    const uint32_t level = layer.level;
    const uint32_t parent_level = (idx + 1 < num_layers)
                                      ? layers_[idx + 1].level
                                      : top_level_;
    const uint64_t lp = Shr(q.lo, level);
    const uint64_t rp = Shr(q.hi, level);
    q.seg = segments_[layer.segment].raw_blocks();
    q.level = level;
    emit_count = 0;
    q.n[0] = q.n[1] = q.n[2] = q.n[3] = 0;
    if (!q.split) {
      if (lp == rp) {
        // Phase 1: single covering (Fig. 7).
        q.shape = kCover;
        if (!emit_bit(q, layer, lp)) return 2;
        q.n[0] = 1;
        return 0;
      }
      // The covering path splits within this layer's span. Middle
      // prefixes [lp+1, rp-1] are decomposition DIs; the scan is
      // capped when the parents already differ (topmost layer only).
      q.shape = kSplitLayer;
      uint64_t max_words = (Shr(q.lo, parent_level) == Shr(q.hi, parent_level))
                               ? 2
                               : config_.max_top_layer_words;
      if (rp - lp >= 2) {
        uint64_t x = lp + 1, y = rp - 1;
        uint64_t first_word = x >> layer.offset_bits;
        uint64_t last_word = y >> layer.offset_bits;
        if (last_word - first_word + 1 > max_words) {
          *answer = true;  // conservative, exactly like TestPrefixRange
          return 1;
        }
        if (last_word - first_word + 1 > kRangeMaxUnits - 2) return 2;
        for (uint64_t wk = first_word; wk <= last_word; ++wk) {
          if (!emit(q, layer, wk, WordMaskFor(layer, wk, x, y))) return 2;
        }
        q.n[0] = static_cast<uint8_t>(emit_count);
      }
      if (!emit_bit(q, layer, lp) || !emit_bit(q, layer, rp)) return 2;
      q.n[1] = 1;
      q.n[2] = 1;
      return 0;
    }
    // Phase 2: two independent key paths (see MayContainRange).
    q.shape = kPhase2;
    const uint32_t span = parent_level - level;
    if (q.left_alive) {
      uint64_t parent = Shr(q.lo, parent_level);
      uint64_t end = (parent << span) | ((uint64_t{1} << span) - 1);
      uint64_t start = (level == 0) ? lp : lp + 1;
      if (start <= end) {
        uint64_t first_word = start >> layer.offset_bits;
        uint64_t last_word = end >> layer.offset_bits;
        if (last_word - first_word + 1 > 4) {
          *answer = true;
          return 1;
        }
        for (uint64_t wk = first_word; wk <= last_word; ++wk) {
          if (!emit(q, layer, wk, WordMaskFor(layer, wk, start, end))) {
            return 2;
          }
        }
        q.n[0] = static_cast<uint8_t>(emit_count);
      }
      if (level != 0) {
        if (!emit_bit(q, layer, lp)) return 2;
        q.n[1] = 1;
      }
    }
    if (q.right_alive) {
      uint64_t parent = Shr(q.hi, parent_level);
      uint64_t start = parent << span;
      uint64_t end = (level == 0) ? rp : rp - 1;
      uint32_t before = emit_count;
      if (start <= end) {
        uint64_t first_word = start >> layer.offset_bits;
        uint64_t last_word = end >> layer.offset_bits;
        if (last_word - first_word + 1 > 4) {
          *answer = true;
          return 1;
        }
        for (uint64_t wk = first_word; wk <= last_word; ++wk) {
          if (!emit(q, layer, wk, WordMaskFor(layer, wk, start, end))) {
            return 2;
          }
        }
        q.n[2] = static_cast<uint8_t>(emit_count - before);
      }
      if (level != 0) {
        if (!emit_bit(q, layer, rp)) return 2;
        q.n[3] = 1;
      }
    }
    return 0;
  };

  // Tests the compiled units of `q`'s current layer, in scalar probe
  // order. Returns true when the query is answered (in *answer).
  auto test_layer = [](RangeQuery& q, bool* answer) {
    const RangeUnit* u = q.units;
    switch (q.shape) {
      case kCover:
        if (!RangeUnitHit(q, u[0])) {
          *answer = false;
          return true;
        }
        return false;
      case kSplitLayer: {
        for (uint32_t k = 0; k < q.n[0]; ++k) {
          if (RangeUnitHit(q, *u++)) {
            *answer = true;
            return true;
          }
        }
        q.left_alive = RangeUnitHit(q, *u++);
        q.right_alive = RangeUnitHit(q, *u++);
        if (q.level == 0) {
          *answer = q.left_alive || q.right_alive;
          return true;
        }
        if (!q.left_alive && !q.right_alive) {
          *answer = false;
          return true;
        }
        q.split = true;
        return false;
      }
      default: {  // kPhase2
        for (uint32_t k = 0; k < q.n[0]; ++k) {
          if (RangeUnitHit(q, *u++)) {
            *answer = true;
            return true;
          }
        }
        if (q.n[1] != 0) q.left_alive = RangeUnitHit(q, *u++);
        for (uint32_t k = 0; k < q.n[2]; ++k) {
          if (RangeUnitHit(q, *u++)) {
            *answer = true;
            return true;
          }
        }
        if (q.n[3] != 0) q.right_alive = RangeUnitHit(q, *u++);
        if (q.level == 0) {
          *answer = false;
          return true;
        }
        if (!q.left_alive && !q.right_alive) {
          *answer = false;
          return true;
        }
        return false;
      }
    }
  };

  for (size_t base = 0; base < los.size(); base += kRangeStripe) {
    const size_t stripe = std::min(kRangeStripe, los.size() - base);
    size_t n_alive = 0, n_fallback = 0;
    // Admission + exact-layer plan: the descent's first test is the
    // exact covering bit and needs no hashing. Point queries (lo ==
    // hi) join the lockstep as always-covering descents — the same
    // tests MayContain runs. Ranges splitting at the exact level are
    // the one exact-layer shape the units cannot express: fall back.
    for (size_t j = 0; j < stripe; ++j) {
      uint64_t lo = los[base + j], hi = his[base + j];
      if (lo > hi) {
        out[base + j] = false;
        continue;
      }
      if (config_.has_exact_layer) {
        uint64_t lp = Shr(lo, top_level_), rp = Shr(hi, top_level_);
        if (lp != rp) {
          fallback[n_fallback++] = static_cast<uint32_t>(j);
          continue;
        }
        exact_.PrefetchBit(lp);
      }
      RangeQuery& q = queries[n_alive];
      q.lo = lo;
      q.hi = hi;
      q.slot = static_cast<uint32_t>(j);
      q.split = false;
      q.left_alive = q.right_alive = true;
      alive[n_alive] = static_cast<uint32_t>(n_alive);
      ++n_alive;
    }
    if (config_.has_exact_layer) {
      size_t kept = 0;
      for (size_t a = 0; a < n_alive; ++a) {
        RangeQuery& q = queries[alive[a]];
        if (exact_.TestBit(Shr(q.lo, top_level_))) {
          alive[kept++] = alive[a];
        } else {
          out[base + q.slot] = false;
        }
      }
      n_alive = kept;
    }
    // Lockstep descent: plan a layer for every live query, then test
    // it on lines already in flight; retire answers between layers.
    for (size_t idx = num_layers; n_alive != 0 && idx-- > 0;) {
      size_t kept = 0;
      for (size_t a = 0; a < n_alive; ++a) {
        RangeQuery& q = queries[alive[a]];
        bool answer;
        switch (plan_layer(q, idx, &answer)) {
          case 0:
            alive[kept++] = alive[a];
            break;
          case 1:
            out[base + q.slot] = answer;
            break;
          default:
            fallback[n_fallback++] = q.slot;
        }
      }
      n_alive = kept;
      kept = 0;
      for (size_t a = 0; a < n_alive; ++a) {
        RangeQuery& q = queries[alive[a]];
        bool answer;
        if (test_layer(q, &answer)) {
          out[base + q.slot] = answer;
        } else {
          alive[kept++] = alive[a];
        }
      }
      n_alive = kept;
    }
    // Survivors passed every covering down to level 0: only point
    // queries (lo == hi) can get here — a full MayContain positive.
    for (size_t a = 0; a < n_alive; ++a) {
      out[base + queries[alive[a]].slot] = true;
    }
    for (size_t f = 0; f < n_fallback; ++f) {
      uint32_t j = fallback[f];
      out[base + j] = MayContainRange(los[base + j], his[base + j]);
    }
  }
}

bool BloomRF::ExactRangeProbe(uint64_t lp, uint64_t rp,
                              ProbeStats* stats) const {
  if (lp > rp) return false;
  if (rp - lp + 1 > config_.max_exact_scan_bits) return true;  // conservative
  if (stats) stats->word_probes += (rp - lp) / 64 + 1;
  return exact_.AnyInRange(lp, rp);
}

bool BloomRF::MayContainRange(uint64_t lo, uint64_t hi,
                              ProbeStats* stats) const {
  if (lo > hi) return false;
  if (lo == hi) return MayContain(lo, stats);

  // --- Top boundary: exact layer if present, otherwise levels at or
  // above TopLevel() are treated as saturated coverings.
  bool split = false;
  bool left_alive = true;
  bool right_alive = true;
  if (config_.has_exact_layer) {
    uint64_t lp = Shr(lo, top_level_);
    uint64_t rp = Shr(hi, top_level_);
    if (lp == rp) {
      if (!exact_.TestBit(lp)) return false;
      if (stats) ++stats->bit_probes;
    } else {
      // Middle DIs at the exact level lie fully inside [lo, hi].
      if (rp - lp >= 2 && ExactRangeProbe(lp + 1, rp - 1, stats)) return true;
      if (stats) stats->bit_probes += 2;
      left_alive = exact_.TestBit(lp);
      right_alive = exact_.TestBit(rp);
      if (!left_alive && !right_alive) return false;
      split = true;
    }
  }

  // --- Descend hash layers top to bottom (Algorithm 1).
  for (size_t idx = layers_.size(); idx-- > 0;) {
    const Layer& layer = layers_[idx];
    uint32_t level = layer.level;
    uint32_t parent_level =
        (idx + 1 < layers_.size()) ? layers_[idx + 1].level : top_level_;
    uint64_t lp = Shr(lo, level);
    uint64_t rp = Shr(hi, level);

    if (!split) {
      uint64_t parent_lp = Shr(lo, parent_level);
      uint64_t parent_rp = Shr(hi, parent_level);
      if (lp == rp) {
        // Phase 1: single covering (Fig. 7). A zero bit proves the
        // whole interval empty — early stop.
        if (!TestPrefix(layer, lp, stats)) return false;
        continue;
      }
      // The covering path splits within this layer's span. Middle
      // prefixes [lp+1, rp-1] are decomposition DIs: any set bit is a
      // positive. When the parents already differ (possible only at
      // the topmost stored layer), the scan is capped.
      uint64_t max_words =
          (parent_lp == parent_rp) ? 2 : config_.max_top_layer_words;
      if (rp - lp >= 2 &&
          TestPrefixRange(layer, lp + 1, rp - 1, max_words, stats)) {
        return true;
      }
      left_alive = TestPrefix(layer, lp, stats);
      right_alive = TestPrefix(layer, rp, stats);
      if (level == 0) return left_alive || right_alive;
      if (!left_alive && !right_alive) return false;
      split = true;
      continue;
    }

    // Phase 2: two independent key paths. Decomposition DIs of the
    // left path are the prefixes from lp(+1) to the end of the
    // left-parent covering; mirror-inverted for the right path. Each
    // range lies within one parent, hence spans at most two words.
    uint32_t span = parent_level - level;  // == delta of the layer above
    if (left_alive) {
      uint64_t parent = Shr(lo, parent_level);
      uint64_t end = (parent << span) | ((uint64_t{1} << span) - 1);
      uint64_t start = (level == 0) ? lp : lp + 1;
      if (start <= end && TestPrefixRange(layer, start, end, 4, stats)) {
        return true;
      }
      if (level != 0) left_alive = TestPrefix(layer, lp, stats);
    }
    if (right_alive) {
      uint64_t parent = Shr(hi, parent_level);
      uint64_t start = parent << span;
      // rp >= start always (start just clears rp's low `span` bits) and
      // rp >= 1 below a split, so `end` cannot underflow; the range is
      // empty exactly when rp == start at a non-bottom level.
      uint64_t end = (level == 0) ? rp : rp - 1;
      if (start <= end && TestPrefixRange(layer, start, end, 4, stats)) {
        return true;
      }
      if (level != 0) right_alive = TestPrefix(layer, rp, stats);
    }
    if (level == 0) return false;
    if (!left_alive && !right_alive) return false;
  }
  // The bottom layer always has level 0, so control cannot reach here;
  // stay conservative if it ever does.
  return true;
}

uint64_t BloomRF::MemoryBits() const {
  uint64_t total = config_.has_exact_layer ? exact_.size_bits() : 0;
  for (const BitArray& seg : segments_) total += seg.size_bits();
  return total;
}

std::vector<double> BloomRF::ZeroBitFractions() const {
  std::vector<double> fractions;
  for (const BitArray& seg : segments_) {
    fractions.push_back(
        1.0 - static_cast<double>(seg.CountOnes()) /
                  static_cast<double>(seg.size_bits()));
  }
  if (config_.has_exact_layer) {
    fractions.push_back(1.0 -
                        static_cast<double>(exact_.CountOnes()) /
                            static_cast<double>(exact_.size_bits()));
  }
  return fractions;
}

std::string BloomRF::Serialize() const {
  std::string out;
  // Legacy-scheme filters write the V1 layout byte for byte, so a
  // round trip through Deserialize preserves pre-bump blocks exactly.
  const bool legacy = config_.hash_scheme == HashScheme::kLegacyPerReplica;
  PutFixed32(&out, legacy ? kFormatTagV1 : kFormatTagV2);
  PutFixed32(&out, config_.domain_bits);
  PutFixed32(&out, static_cast<uint32_t>(config_.num_layers()));
  for (size_t i = 0; i < config_.num_layers(); ++i) {
    out.push_back(static_cast<char>(config_.delta[i]));
    out.push_back(static_cast<char>(config_.replicas[i]));
    out.push_back(static_cast<char>(config_.segment_of[i]));
  }
  PutFixed32(&out, static_cast<uint32_t>(config_.segment_bits.size()));
  for (uint64_t m : config_.segment_bits) PutFixed64(&out, m);
  out.push_back(config_.has_exact_layer ? 1 : 0);
  out.push_back(config_.permute_words ? 1 : 0);
  if (!legacy) {
    out.push_back(static_cast<char>(config_.hash_scheme));
  }
  PutFixed64(&out, config_.seed);
  for (const BitArray& seg : segments_) seg.SerializeTo(&out);
  if (config_.has_exact_layer) exact_.SerializeTo(&out);
  return out;
}

std::optional<BloomRF> BloomRF::Deserialize(std::string_view data) {
  // Every read is bounds-checked, and all bit-array sizes are validated
  // against the remaining payload BEFORE any allocation, so corrupt or
  // truncated input can neither over-read nor trigger huge allocations.
  size_t pos = 0;
  auto need = [&](uint64_t n) {
    return n <= data.size() && pos <= data.size() - static_cast<size_t>(n);
  };
  if (!need(12)) return std::nullopt;
  uint32_t tag = DecodeFixed32(data.data());
  if (tag != kFormatTagV1 && tag != kFormatTagV2) return std::nullopt;
  BloomRFConfig cfg;
  cfg.domain_bits = DecodeFixed32(data.data() + 4);
  uint32_t k = DecodeFixed32(data.data() + 8);
  pos = 12;
  if (k == 0 || k > 64 || !need(3 * uint64_t{k})) return std::nullopt;
  for (uint32_t i = 0; i < k; ++i) {
    cfg.delta.push_back(static_cast<uint8_t>(data[pos++]));
    cfg.replicas.push_back(static_cast<uint8_t>(data[pos++]));
    cfg.segment_of.push_back(static_cast<uint8_t>(data[pos++]));
  }
  if (!need(4)) return std::nullopt;
  uint32_t nseg = DecodeFixed32(data.data() + pos);
  pos += 4;
  if (nseg == 0 || nseg > 16 || !need(8 * uint64_t{nseg})) {
    return std::nullopt;
  }
  for (uint32_t j = 0; j < nseg; ++j) {
    cfg.segment_bits.push_back(DecodeFixed64(data.data() + pos));
    pos += 8;
  }
  if (!need(tag == kFormatTagV2 ? 11 : 10)) return std::nullopt;
  cfg.has_exact_layer = data[pos++] != 0;
  cfg.permute_words = data[pos++] != 0;
  if (tag == kFormatTagV2) {
    uint8_t scheme = static_cast<uint8_t>(data[pos++]);
    if (scheme > static_cast<uint8_t>(HashScheme::kDoubleHash)) {
      return std::nullopt;
    }
    cfg.hash_scheme = static_cast<HashScheme>(scheme);
  } else {
    cfg.hash_scheme = HashScheme::kLegacyPerReplica;
  }
  cfg.seed = DecodeFixed64(data.data() + pos);
  pos += 8;
  if (!cfg.Validate().empty()) return std::nullopt;

  // The payload must hold exactly the bit arrays the config describes
  // (segments rounded up to 64-bit blocks, as the constructor does).
  uint64_t expected_bytes = 0;
  for (uint64_t m : cfg.segment_bits) {
    if (m > (uint64_t{1} << 48)) return std::nullopt;  // absurd claim
    expected_bytes += ((m + 63) & ~63ULL) / 8;
  }
  if (cfg.has_exact_layer) {
    expected_bytes += ((cfg.ExactBits() + 63) & ~63ULL) / 8;
  }
  if (!need(expected_bytes) || data.size() - pos != expected_bytes) {
    return std::nullopt;
  }

  BloomRF filter(cfg);
  for (size_t j = 0; j < filter.segments_.size(); ++j) {
    uint64_t bytes = filter.segments_[j].size_bytes();
    if (!need(bytes) ||
        !filter.segments_[j].DeserializeFrom(filter.segments_[j].size_bits(),
                                             data.substr(pos, bytes))) {
      return std::nullopt;
    }
    pos += bytes;
  }
  if (cfg.has_exact_layer) {
    uint64_t bytes = filter.exact_.size_bytes();
    if (!need(bytes) ||
        !filter.exact_.DeserializeFrom(filter.exact_.size_bits(),
                                       data.substr(pos, bytes))) {
      return std::nullopt;
    }
    pos += bytes;
  }
  return filter;
}

}  // namespace bloomrf

// MultiAttributeBloomRF is header-only; this translation unit exists so
// the build exposes a stable object for the target.
#include "core/multi_attribute.h"

// bloomRF: a unified approximate point-range filter (paper Sect. 3-4).
//
// The filter is *online* (keys may be inserted while probes run) and
// never produces false negatives: if a key in the inserted set lies in
// the probed interval, MayContainRange returns true.
//
//   BloomRF filter(BloomRFConfig::Basic(/*n=*/1'000'000, /*bits_per_key=*/14));
//   filter.Insert(42);
//   filter.MayContain(42);              // true
//   filter.MayContainRange(40, 50);     // true
//   filter.MayContainRange(100, 4000);  // false with high probability
//
// Keys are unsigned 64-bit integers; use core/key_codec.h to map signed
// integers, floats/doubles and strings onto this domain while
// preserving order, and core/multi_attribute.h for dual-attribute
// filtering.

#ifndef BLOOMRF_CORE_BLOOMRF_H_
#define BLOOMRF_CORE_BLOOMRF_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "util/bit_array.h"

namespace bloomrf {

/// Optional probe-cost accounting (used by the Fig. 12.G breakdown
/// bench and by tests asserting the O(k) word-access bound).
struct ProbeStats {
  uint64_t bit_probes = 0;   // single-bit covering tests
  uint64_t word_probes = 0;  // word-mask decomposition tests
};

class BloomRF {
 public:
  /// Constructs an empty filter. `config` must validate (asserted in
  /// debug builds; a default Basic config is substituted otherwise).
  explicit BloomRF(BloomRFConfig config);

  BloomRF(BloomRF&&) = default;
  BloomRF& operator=(BloomRF&&) = default;

  /// Inserts a key. Thread-safe with respect to concurrent Insert and
  /// probe calls (relaxed atomics; see util/bit_array.h).
  void Insert(uint64_t key);

  /// Approximate point membership: false means definitely absent.
  bool MayContain(uint64_t key) const { return MayContain(key, nullptr); }
  bool MayContain(uint64_t key, ProbeStats* stats) const;

  /// Approximate range emptiness over the inclusive interval [lo, hi]:
  /// false means no inserted key lies in [lo, hi].
  bool MayContainRange(uint64_t lo, uint64_t hi) const {
    return MayContainRange(lo, hi, nullptr);
  }
  bool MayContainRange(uint64_t lo, uint64_t hi, ProbeStats* stats) const;

  /// Planned batch point probe: out[i] = MayContain(keys[i]), bit for
  /// bit. Runs in two passes per stripe of keys — a planning pass that
  /// hashes each word key once, derives every replica's final probe
  /// block by double hashing, and prefetches it; then a probe pass that
  /// executes the word tests 4 keys per SIMD lane group (util/simd.h),
  /// top-down with group-level early exit, on lines already in flight.
  void MayContainBatch(std::span<const uint64_t> keys, bool* out) const;

  /// Planned batch range probe: out[i] = MayContainRange(los[i],
  /// his[i]). The planning pass walks the full dyadic descent of every
  /// query without reading the filter — the word keys a descent can
  /// touch are a pure function of (lo, hi) and the layer ladder — and
  /// hashes each one once while prefetching all of its replica slots:
  /// both endpoint paths plus the interior TestPrefixRange word masks
  /// at every layer, not just the level-0 endpoints. The probe pass
  /// then runs the exact scalar descent (same early exits, same
  /// answers) consuming the precomputed hashes on lines already in
  /// flight. `los` and `his` must have equal length.
  void MayContainRangeBatch(std::span<const uint64_t> los,
                            std::span<const uint64_t> his, bool* out) const;

  const BloomRFConfig& config() const { return config_; }

  /// Total filter memory in bits (segments + exact bitmap).
  uint64_t MemoryBits() const;

  /// Fraction of zero bits per segment (index 0..S-1) and, last, the
  /// exact bitmap (present only with an exact layer). Used by the FPR
  /// model validation tests.
  std::vector<double> ZeroBitFractions() const;

  /// Serializes config + bit arrays into a string (LSM filter blocks).
  std::string Serialize() const;

  /// Reconstructs a filter from Serialize() output.
  static std::optional<BloomRF> Deserialize(std::string_view data);

  /// Raw 64-bit block of a segment (scatter statistics, Fig. 5).
  uint64_t SegmentBlock(size_t segment, uint64_t block) const {
    return segments_[segment].LoadBlock(block);
  }
  uint64_t SegmentBlocks(size_t segment) const {
    return segments_[segment].size_blocks();
  }

  /// The word index (within its segment) a key maps to on `layer` with
  /// replica `replica` — exposed for the PMHF scatter experiment.
  uint64_t WordIndexForKey(uint64_t key, size_t layer,
                           uint32_t replica) const;

 private:
  struct Layer {
    uint32_t level;      // l_i
    uint32_t offset_bits;  // delta_i - 1
    uint32_t word_bits;  // 2^(delta_i - 1)
    uint32_t replicas;
    uint32_t segment;
    uint64_t num_slots;  // segment_bits / word_bits
    uint64_t seed_base;  // replica r uses seed_base + r
  };

  static uint64_t Shr(uint64_t v, uint32_t s) { return s >= 64 ? 0 : v >> s; }

  uint64_t SlotOf(const Layer& layer, uint64_t word_key,
                  uint32_t replica) const;
  bool WordReversed(const Layer& layer, uint64_t word_key) const;

  /// Reads the AND of all replica words for `word_key` on `layer`.
  uint64_t LoadWordAnd(const Layer& layer, uint64_t word_key) const;

  /// Same, but from an already-computed base hash (hash-once scheme
  /// only) — the probe pass of the planned engine.
  uint64_t LoadWordAndFromHash(const Layer& layer, uint64_t hash) const;

  /// Keys per planning stripe: large enough that prefetches land
  /// before the probe pass reads them, small enough that the planned
  /// lines are still resident.
  static constexpr size_t kProbeStripe = 32;

  /// Queries per lockstep range stripe: a descent touches several
  /// cache lines per layer, so the stripe is sized for one layer's
  /// planned lines (stripe × ~10 lines) to stay L2-resident between
  /// the plan and probe passes.
  static constexpr size_t kRangeStripe = 32;

  /// In-word bit offset of prefix `p` at `layer`, with the PMHF word
  /// permutation applied — shared by the scalar probes and the batch
  /// planner so both test the same bit.
  uint64_t ProbeOffsetFor(const Layer& layer, uint64_t p) const {
    uint64_t offset = p & (layer.word_bits - 1);
    if (WordReversed(layer, p >> layer.offset_bits)) {
      offset = layer.word_bits - 1 - offset;
    }
    return offset;
  }

  /// In-word mask of the prefix range [x, y] restricted to word `wk`
  /// at `layer` (permutation applied). `wk` must cover part of [x, y].
  /// Shared by TestPrefixRange and the batch planner.
  uint64_t WordMaskFor(const Layer& layer, uint64_t wk, uint64_t x,
                       uint64_t y) const;

  /// Single-bit covering probe of prefix `p` at `layer`.
  bool TestPrefix(const Layer& layer, uint64_t p, ProbeStats* stats) const;

  /// Word-mask probe of the inclusive prefix range [x, y] at `layer`.
  /// `max_words` limits the scan width; beyond it the probe returns a
  /// conservative true.
  bool TestPrefixRange(const Layer& layer, uint64_t x, uint64_t y,
                       uint64_t max_words, ProbeStats* stats) const;

  bool ExactRangeProbe(uint64_t lp, uint64_t rp, ProbeStats* stats) const;

  BloomRFConfig config_;
  std::vector<Layer> layers_;  // bottom (level 0) first
  std::vector<BitArray> segments_;
  BitArray exact_;
  uint32_t top_level_ = 0;
  uint64_t perm_seed_ = 0;
};

}  // namespace bloomrf

#endif  // BLOOMRF_CORE_BLOOMRF_H_

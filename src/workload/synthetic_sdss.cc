#include "workload/synthetic_sdss.h"

#include <cmath>

#include "util/random.h"

namespace bloomrf {

std::vector<SdssRow> GenerateSdssRows(const SdssOptions& options) {
  std::vector<SdssRow> rows;
  rows.reserve(options.num_rows);
  Rng rng(options.seed);
  for (uint64_t i = 0; i < options.num_rows; ++i) {
    double run_value = static_cast<double>(options.mean_run) +
                       rng.NextGaussian() * options.run_sigma;
    if (run_value < 1) run_value = 1;
    uint64_t run = static_cast<uint64_t>(run_value);
    // ObjectIDs cluster by run (sky stripes), with normal scatter.
    double center = 0x1.0p62 + static_cast<double>(run) * 0x1.0p48;
    double id_value = center + rng.NextGaussian() * 0x1.0p47;
    if (id_value < 0) id_value = 0;
    if (id_value >= 0x1.0p64) id_value = 0x1.0p64 - 1;
    rows.push_back({static_cast<uint64_t>(id_value), run});
  }
  return rows;
}

}  // namespace bloomrf

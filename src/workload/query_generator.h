// Query workload generation (paper Sect. 9): point- and range-queries
// whose anchors follow a workload distribution (uniform / normal /
// zipfian) independent of the data distribution. By default queries
// are *empty* (worst case for filters, as in the paper); anchors that
// hit the dataset are re-drawn a bounded number of times.

#ifndef BLOOMRF_WORKLOAD_QUERY_GENERATOR_H_
#define BLOOMRF_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "workload/key_generator.h"

namespace bloomrf {

struct RangeQuery {
  uint64_t lo;
  uint64_t hi;
  bool empty;  // ground truth: no dataset key in [lo, hi]
};

struct QueryWorkload {
  std::vector<uint64_t> point_queries;  // all misses unless noted
  std::vector<RangeQuery> range_queries;
  uint64_t non_empty_ranges = 0;
};

/// Generates `num_queries` point misses and `num_queries` ranges of
/// exactly `range_size` elements each (hi = lo + range_size - 1).
/// At most `max_redraws` attempts are made to keep a query empty;
/// ranges that stay non-empty are kept and flagged (mirrors the
/// paper's note that ~1% of the largest ranges end up non-empty).
QueryWorkload MakeQueryWorkload(const Dataset& dataset, uint64_t num_queries,
                                uint64_t range_size, Distribution dist,
                                uint64_t seed, int max_redraws = 16);

}  // namespace bloomrf

#endif  // BLOOMRF_WORKLOAD_QUERY_GENERATOR_H_

#include "workload/query_generator.h"

namespace bloomrf {

QueryWorkload MakeQueryWorkload(const Dataset& dataset, uint64_t num_queries,
                                uint64_t range_size, Distribution dist,
                                uint64_t seed, int max_redraws) {
  QueryWorkload workload;
  Rng rng(seed);
  ZipfianGenerator zipf(uint64_t{1} << 40, 0.99, seed ^ 0x77);
  if (range_size < 1) range_size = 1;

  workload.point_queries.reserve(num_queries);
  for (uint64_t i = 0; i < num_queries; ++i) {
    uint64_t y = DrawKey(dist, rng, &zipf);
    for (int r = 0; r < max_redraws && dataset.Contains(y); ++r) {
      y = DrawKey(dist, rng, &zipf);
    }
    workload.point_queries.push_back(y);
  }

  workload.range_queries.reserve(num_queries);
  for (uint64_t i = 0; i < num_queries; ++i) {
    uint64_t lo = 0, hi = 0;
    bool empty = false;
    for (int r = 0; r < max_redraws && !empty; ++r) {
      lo = DrawKey(dist, rng, &zipf);
      if (lo > UINT64_MAX - (range_size - 1)) lo = UINT64_MAX - (range_size - 1);
      hi = lo + (range_size - 1);
      empty = !dataset.RangeNonEmpty(lo, hi);
    }
    if (!empty) ++workload.non_empty_ranges;
    workload.range_queries.push_back({lo, hi, empty});
  }
  return workload;
}

}  // namespace bloomrf

#include "workload/synthetic_kepler.h"

#include "util/random.h"

namespace bloomrf {

std::vector<double> GenerateKeplerFlux(const KeplerOptions& options) {
  std::vector<double> flux;
  flux.reserve(options.num_stars * options.samples_per_star);
  Rng rng(options.seed);
  for (uint64_t star = 0; star < options.num_stars; ++star) {
    // Per-star baseline: mean-shifted around 0 like the labelled
    // dataset (flux is normalized and centred), with star-to-star
    // variation of a few tenths.
    double baseline = rng.NextGaussian() * 0.3;
    double level = 0;
    for (uint64_t t = 0; t < options.samples_per_star; ++t) {
      // AR(1) autocorrelated noise.
      level = 0.98 * level + options.noise_sigma * rng.NextGaussian();
      double value = baseline + level;
      if (rng.NextDouble() < options.transit_probability) {
        value -= options.transit_depth * (0.5 + rng.NextDouble());
      }
      flux.push_back(value);
    }
  }
  return flux;
}

}  // namespace bloomrf

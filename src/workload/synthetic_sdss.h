// Synthetic stand-in for the Sloan Digital Sky Survey DR16 sample the
// paper uses for the multi-attribute experiment (Fig. 12.F; [42]).
//
// The paper extracts the ObjectID and Run columns and notes that
// "their values roughly follow a normal distribution". The generator
// reproduces that: Run is drawn from a discretized normal over a small
// range of observation runs, ObjectID from a wide normal over the
// 64-bit identifier space, with mild correlation between the two (runs
// image adjacent sky stripes, so identifiers cluster by run).

#ifndef BLOOMRF_WORKLOAD_SYNTHETIC_SDSS_H_
#define BLOOMRF_WORKLOAD_SYNTHETIC_SDSS_H_

#include <cstdint>
#include <vector>

namespace bloomrf {

struct SdssRow {
  uint64_t object_id;
  uint64_t run;
};

struct SdssOptions {
  uint64_t num_rows = 500000;
  uint64_t mean_run = 756;
  double run_sigma = 400;
  uint64_t seed = 0x5d55;
};

std::vector<SdssRow> GenerateSdssRows(const SdssOptions& options);

}  // namespace bloomrf

#endif  // BLOOMRF_WORKLOAD_SYNTHETIC_SDSS_H_

#include "workload/key_generator.h"

#include <algorithm>

namespace bloomrf {

bool Dataset::RangeNonEmpty(uint64_t lo, uint64_t hi) const {
  if (lo > hi) return false;
  auto it = std::lower_bound(sorted_keys.begin(), sorted_keys.end(), lo);
  return it != sorted_keys.end() && *it <= hi;
}

bool Dataset::Contains(uint64_t key) const {
  return std::binary_search(sorted_keys.begin(), sorted_keys.end(), key);
}

Dataset MakeDataset(uint64_t n, Distribution dist, uint64_t seed) {
  Dataset dataset;
  dataset.keys = GenerateDistinctKeys(n, dist, seed);
  dataset.sorted_keys = dataset.keys;
  std::sort(dataset.sorted_keys.begin(), dataset.sorted_keys.end());
  return dataset;
}

std::string MakeValue(uint64_t key, size_t value_size) {
  std::string value(value_size, '\0');
  for (size_t i = 0; i < value_size; ++i) {
    value[i] = static_cast<char>((key >> ((i % 8) * 8)) ^ (i * 131));
  }
  return value;
}

}  // namespace bloomrf

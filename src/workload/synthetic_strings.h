// Synthetic variable-length string keys for the Fig. 12 strings
// experiment: hierarchical, URL/path-like identifiers
// ("user042/album17/img00923") with shared prefixes and zipfian
// hotspots — the shape that separates trie-based filters (SuRF) from
// hash-based ones (bloomRF's 7-byte prefix coding).

#ifndef BLOOMRF_WORKLOAD_SYNTHETIC_STRINGS_H_
#define BLOOMRF_WORKLOAD_SYNTHETIC_STRINGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bloomrf {

struct StringDatasetOptions {
  uint64_t num_keys = 100000;
  uint64_t num_users = 2000;   // first path component fan-out
  uint64_t num_albums = 50;    // second component fan-out per user
  uint64_t seed = 0x57e1195;
};

/// Returns sorted unique keys.
std::vector<std::string> GenerateStringKeys(const StringDatasetOptions& opts);

}  // namespace bloomrf

#endif  // BLOOMRF_WORKLOAD_SYNTHETIC_STRINGS_H_

// Dataset generation for the evaluation workloads (paper Sect. 9):
// uniform / normal / zipfian key sets over the 64-bit domain, plus the
// YCSB-workload-E derivative (integer keys with 512-byte values,
// range-scan heavy).

#ifndef BLOOMRF_WORKLOAD_KEY_GENERATOR_H_
#define BLOOMRF_WORKLOAD_KEY_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace bloomrf {

/// A generated dataset: distinct keys plus a sorted copy for ground
/// truth and offline filter construction.
struct Dataset {
  std::vector<uint64_t> keys;         // insertion order
  std::vector<uint64_t> sorted_keys;  // ascending, unique

  /// True iff [lo, hi] contains at least one key (ground truth).
  bool RangeNonEmpty(uint64_t lo, uint64_t hi) const;
  bool Contains(uint64_t key) const;
};

Dataset MakeDataset(uint64_t n, Distribution dist, uint64_t seed);

/// Fixed-size value payload for the YCSB-E derivative (512 bytes in the
/// paper).
std::string MakeValue(uint64_t key, size_t value_size);

}  // namespace bloomrf

#endif  // BLOOMRF_WORKLOAD_KEY_GENERATOR_H_

#include "workload/synthetic_strings.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "util/random.h"

namespace bloomrf {

std::vector<std::string> GenerateStringKeys(
    const StringDatasetOptions& opts) {
  Rng rng(opts.seed);
  ZipfianGenerator user_zipf(opts.num_users, 0.9, opts.seed ^ 1);
  std::set<std::string> keys;
  char buffer[64];
  while (keys.size() < opts.num_keys) {
    uint64_t user = user_zipf.NextScrambled();
    uint64_t album = rng.Uniform(opts.num_albums);
    uint64_t img = rng.Uniform(1000000);
    std::snprintf(buffer, sizeof(buffer), "user%04llu/album%02llu/img%06llu",
                  static_cast<unsigned long long>(user),
                  static_cast<unsigned long long>(album),
                  static_cast<unsigned long long>(img));
    keys.insert(buffer);
  }
  return {keys.begin(), keys.end()};
}

}  // namespace bloomrf

// Synthetic stand-in for the NASA Kepler labelled time-series dataset
// the paper uses for its floating-point experiment (Fig. 12.D; [33]).
//
// The real dataset is normalized stellar flux: values cluster around a
// slowly drifting baseline near 1.0, with autocorrelated noise and
// occasional deep negative transit dips. The generator reproduces
// exactly that shape — an AR(1) process around a per-star baseline plus
// Bernoulli transit events — so the monotone float encoding and the
// filter's dyadic levels see the same clustered, signed, non-uniform
// value distribution the paper probes with range size 1e-3.

#ifndef BLOOMRF_WORKLOAD_SYNTHETIC_KEPLER_H_
#define BLOOMRF_WORKLOAD_SYNTHETIC_KEPLER_H_

#include <cstdint>
#include <vector>

namespace bloomrf {

struct KeplerOptions {
  uint64_t num_stars = 64;
  uint64_t samples_per_star = 3197;  // campaign-3 light-curve length
  double noise_sigma = 2e-4;
  double transit_probability = 0.004;
  double transit_depth = 0.02;
  uint64_t seed = 0x6e57a5;
};

/// Generates flux samples (positive and negative values appear, as in
/// the real labelled dataset which is mean-shifted).
std::vector<double> GenerateKeplerFlux(const KeplerOptions& options);

}  // namespace bloomrf

#endif  // BLOOMRF_WORKLOAD_SYNTHETIC_KEPLER_H_

// Concrete filter policies wiring every evaluated filter into the
// mini-LSM store.
//
// Serialization formats: bloomRF and Bloom have native bit-array
// serializations. Rosetta serializes its per-level Bloom filters.
// SuRF and fence pointers are rebuilt from the SST's key set at load
// time (their construction *is* the dominant cost the paper reports in
// Fig. 12.C, so the rebuild faithfully reproduces that behaviour); the
// filter block stores the raw keys, while MemoryBits() reports the
// logical structure size that bits/key accounting charges.

#include "lsm/filter_policy.h"

#include <algorithm>

#include "core/bloomrf.h"
#include "core/tuning_advisor.h"
#include "filters/bloom_filter.h"
#include "filters/fence_pointers.h"
#include "filters/prefix_bloom_filter.h"
#include "filters/rosetta.h"
#include "filters/surf/surf.h"
#include "util/coding.h"

namespace bloomrf {

namespace {

// ---------------------------------------------------------------- bloomRF

class BloomRFProbe : public FilterProbe {
 public:
  explicit BloomRFProbe(BloomRF filter) : filter_(std::move(filter)) {}
  bool KeyMayMatch(uint64_t key) const override {
    return filter_.MayContain(key);
  }
  bool RangeMayMatch(uint64_t lo, uint64_t hi) const override {
    return filter_.MayContainRange(lo, hi);
  }
  uint64_t MemoryBits() const override { return filter_.MemoryBits(); }

 private:
  BloomRF filter_;
};

class BloomRFPolicy : public FilterPolicy {
 public:
  BloomRFPolicy(double bits_per_key, double max_range)
      : bits_per_key_(bits_per_key), max_range_(max_range) {}

  std::string Name() const override { return "bloomRF"; }

  std::string CreateFilter(
      const std::vector<uint64_t>& keys) const override {
    AdvisorParams params;
    params.n = keys.size();
    params.total_bits =
        static_cast<uint64_t>(bits_per_key_ * static_cast<double>(keys.size()));
    params.max_range = max_range_;
    BloomRF filter(AdviseConfig(params).config);
    for (uint64_t k : keys) filter.Insert(k);
    return filter.Serialize();
  }

  std::unique_ptr<FilterProbe> LoadFilter(
      std::string_view data) const override {
    std::optional<BloomRF> filter = BloomRF::Deserialize(data);
    if (!filter) return nullptr;
    return std::make_unique<BloomRFProbe>(std::move(*filter));
  }

 private:
  double bits_per_key_;
  double max_range_;
};

// ------------------------------------------------------------------ Bloom

class BloomProbe : public FilterProbe {
 public:
  explicit BloomProbe(BloomFilter filter) : filter_(std::move(filter)) {}
  bool KeyMayMatch(uint64_t key) const override {
    return filter_.MayContain(key);
  }
  bool RangeMayMatch(uint64_t, uint64_t) const override { return true; }
  uint64_t MemoryBits() const override { return filter_.MemoryBits(); }

 private:
  BloomFilter filter_;
};

class BloomPolicy : public FilterPolicy {
 public:
  explicit BloomPolicy(double bits_per_key) : bits_per_key_(bits_per_key) {}
  std::string Name() const override { return "Bloom"; }

  std::string CreateFilter(
      const std::vector<uint64_t>& keys) const override {
    BloomFilter filter(keys.size(), bits_per_key_);
    for (uint64_t k : keys) filter.Insert(k);
    return filter.Serialize();
  }

  std::unique_ptr<FilterProbe> LoadFilter(
      std::string_view data) const override {
    std::optional<BloomFilter> filter = BloomFilter::Deserialize(data);
    if (!filter) return nullptr;
    return std::make_unique<BloomProbe>(std::move(*filter));
  }

 private:
  double bits_per_key_;
};

// ----------------------------------------------------------- Prefix Bloom

class PrefixBloomProbe : public FilterProbe {
 public:
  PrefixBloomProbe(PrefixBloomFilter filter) : filter_(std::move(filter)) {}
  bool KeyMayMatch(uint64_t key) const override {
    return filter_.MayContain(key);
  }
  bool RangeMayMatch(uint64_t lo, uint64_t hi) const override {
    return filter_.MayContainRange(lo, hi);
  }
  uint64_t MemoryBits() const override { return filter_.MemoryBits(); }

 private:
  PrefixBloomFilter filter_;
};

class PrefixBloomPolicy : public FilterPolicy {
 public:
  PrefixBloomPolicy(double bits_per_key, uint32_t prefix_level)
      : bits_per_key_(bits_per_key), prefix_level_(prefix_level) {}
  std::string Name() const override { return "PrefixBloom"; }

  std::string CreateFilter(
      const std::vector<uint64_t>& keys) const override {
    // Rebuild-from-keys serialization: prefix-Bloom state is cheap to
    // reconstruct and this keeps the format self-describing.
    std::string out;
    PutFixed32(&out, prefix_level_);
    PutFixed64(&out, keys.size());
    out.reserve(out.size() + keys.size() * 8);
    for (uint64_t k : keys) PutFixed64(&out, k);
    return out;
  }

  std::unique_ptr<FilterProbe> LoadFilter(
      std::string_view data) const override {
    if (data.size() < 12) return nullptr;
    uint32_t prefix_level = DecodeFixed32(data.data());
    uint64_t n = DecodeFixed64(data.data() + 4);
    if (data.size() != 12 + n * 8) return nullptr;
    PrefixBloomFilter filter(n, bits_per_key_, prefix_level);
    for (uint64_t i = 0; i < n; ++i) {
      filter.Insert(DecodeFixed64(data.data() + 12 + i * 8));
    }
    return std::make_unique<PrefixBloomProbe>(std::move(filter));
  }

 private:
  double bits_per_key_;
  uint32_t prefix_level_;
};

// ---------------------------------------------------------------- Rosetta

class RosettaProbe : public FilterProbe {
 public:
  explicit RosettaProbe(std::unique_ptr<Rosetta> filter)
      : filter_(std::move(filter)) {}
  bool KeyMayMatch(uint64_t key) const override {
    return filter_->MayContain(key);
  }
  bool RangeMayMatch(uint64_t lo, uint64_t hi) const override {
    return filter_->MayContainRange(lo, hi);
  }
  uint64_t MemoryBits() const override { return filter_->MemoryBits(); }

 private:
  std::unique_ptr<Rosetta> filter_;
};

class RosettaPolicy : public FilterPolicy {
 public:
  RosettaPolicy(double bits_per_key, uint64_t max_range)
      : bits_per_key_(bits_per_key), max_range_(max_range) {}
  std::string Name() const override { return "Rosetta"; }

  std::string CreateFilter(
      const std::vector<uint64_t>& keys) const override {
    std::string out;
    PutFixed64(&out, keys.size());
    out.reserve(out.size() + keys.size() * 8);
    for (uint64_t k : keys) PutFixed64(&out, k);
    return out;
  }

  std::unique_ptr<FilterProbe> LoadFilter(
      std::string_view data) const override {
    if (data.size() < 8) return nullptr;
    uint64_t n = DecodeFixed64(data.data());
    if (data.size() != 8 + n * 8) return nullptr;
    Rosetta::Options options;
    options.expected_keys = n;
    options.bits_per_key = bits_per_key_;
    options.max_range = max_range_;
    auto filter = std::make_unique<Rosetta>(options);
    for (uint64_t i = 0; i < n; ++i) {
      filter->Insert(DecodeFixed64(data.data() + 8 + i * 8));
    }
    return std::make_unique<RosettaProbe>(std::move(filter));
  }

 private:
  double bits_per_key_;
  uint64_t max_range_;
};

// ------------------------------------------------------------------- SuRF

class SurfProbe : public FilterProbe {
 public:
  explicit SurfProbe(Surf filter) : filter_(std::move(filter)) {}
  bool KeyMayMatch(uint64_t key) const override {
    return filter_.MayContain(key);
  }
  bool RangeMayMatch(uint64_t lo, uint64_t hi) const override {
    return filter_.MayContainRange(lo, hi);
  }
  uint64_t MemoryBits() const override { return filter_.MemoryBits(); }

 private:
  Surf filter_;
};

class SurfPolicy : public FilterPolicy {
 public:
  SurfPolicy(uint32_t suffix_type, uint32_t suffix_bits)
      : suffix_type_(static_cast<SurfSuffixType>(suffix_type)),
        suffix_bits_(suffix_bits) {}
  std::string Name() const override { return "SuRF"; }

  std::string CreateFilter(
      const std::vector<uint64_t>& keys) const override {
    // SuRF is offline: the (expensive) trie build happens here, and
    // the succinct LOUDS structure itself is stored; loading only
    // rebuilds rank/select directories.
    Surf::Options options;
    options.suffix_type = suffix_type_;
    options.suffix_bits = suffix_bits_;
    return Surf::BuildFromU64(keys, options).Serialize();
  }

  std::unique_ptr<FilterProbe> LoadFilter(
      std::string_view data) const override {
    std::optional<Surf> surf = Surf::Deserialize(data);
    if (!surf) return nullptr;
    return std::make_unique<SurfProbe>(std::move(*surf));
  }

 private:
  SurfSuffixType suffix_type_;
  uint32_t suffix_bits_;
};

// --------------------------------------------------------- Fence pointers

class FenceProbe : public FilterProbe {
 public:
  explicit FenceProbe(FencePointers filter) : filter_(std::move(filter)) {}
  bool KeyMayMatch(uint64_t key) const override {
    return filter_.MayContain(key);
  }
  bool RangeMayMatch(uint64_t lo, uint64_t hi) const override {
    return filter_.MayContainRange(lo, hi);
  }
  uint64_t MemoryBits() const override { return filter_.MemoryBits(); }

 private:
  FencePointers filter_;
};

class FencePolicy : public FilterPolicy {
 public:
  explicit FencePolicy(double bits_per_key) : bits_per_key_(bits_per_key) {}
  std::string Name() const override { return "FencePointers"; }

  std::string CreateFilter(
      const std::vector<uint64_t>& keys) const override {
    FencePointers fences(keys, bits_per_key_);
    std::string out;
    PutFixed64(&out, keys.size());
    for (uint64_t k : keys) PutFixed64(&out, k);
    return out;
  }

  std::unique_ptr<FilterProbe> LoadFilter(
      std::string_view data) const override {
    if (data.size() < 8) return nullptr;
    uint64_t n = DecodeFixed64(data.data());
    if (data.size() != 8 + n * 8) return nullptr;
    std::vector<uint64_t> keys;
    keys.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      keys.push_back(DecodeFixed64(data.data() + 8 + i * 8));
    }
    return std::make_unique<FenceProbe>(FencePointers(keys, bits_per_key_));
  }

 private:
  double bits_per_key_;
};

}  // namespace

std::unique_ptr<FilterPolicy> NewBloomRFPolicy(double bits_per_key,
                                               double max_range) {
  return std::make_unique<BloomRFPolicy>(bits_per_key, max_range);
}
std::unique_ptr<FilterPolicy> NewBloomPolicy(double bits_per_key) {
  return std::make_unique<BloomPolicy>(bits_per_key);
}
std::unique_ptr<FilterPolicy> NewPrefixBloomPolicy(double bits_per_key,
                                                   uint32_t prefix_level) {
  return std::make_unique<PrefixBloomPolicy>(bits_per_key, prefix_level);
}
std::unique_ptr<FilterPolicy> NewRosettaPolicy(double bits_per_key,
                                               uint64_t max_range) {
  return std::make_unique<RosettaPolicy>(bits_per_key, max_range);
}
std::unique_ptr<FilterPolicy> NewSurfPolicy(uint32_t suffix_type,
                                            uint32_t suffix_bits) {
  return std::make_unique<SurfPolicy>(suffix_type, suffix_bits);
}
std::unique_ptr<FilterPolicy> NewFencePointerPolicy(double bits_per_key) {
  return std::make_unique<FencePolicy>(bits_per_key);
}

}  // namespace bloomrf

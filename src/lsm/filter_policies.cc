// The one concrete FilterPolicy: a thin generic adapter over the
// FilterRegistry. Backend-specific wiring (construction, serialization
// framing, probe objects) lives behind the registry; what used to be
// seven hand-written policy/probe class pairs is now this file.

#include "lsm/filter_policy.h"

#include <utility>

#include "core/bloomrf.h"
#include "filters/bloomrf_filter.h"

namespace bloomrf {

namespace {

class RegistryFilterPolicy : public FilterPolicy {
 public:
  // Entry pointers are stable (map nodes, never erased), so the
  // backend is resolved once instead of per flush/probe.
  RegistryFilterPolicy(std::string_view name, FilterBuildParams params)
      : name_(name),
        entry_(FilterRegistry::Instance().Find(name)),
        params_(params) {}

  std::string Name() const override {
    return entry_ != nullptr ? entry_->display_name : name_;
  }

  std::string CreateFilter(
      const std::vector<uint64_t>& sorted_keys) const override {
    if (entry_ == nullptr) return "";
    // Sizing from the key count is the factory's job (see
    // OfflineViaOnline in builtin_filters.cc).
    std::unique_ptr<PointRangeFilter> filter =
        entry_->build_from_sorted_keys(sorted_keys, params_);
    if (filter == nullptr) return "";
    return FilterRegistry::Frame(entry_->name, filter->Serialize());
  }

  std::unique_ptr<PointRangeFilter> LoadFilter(
      std::string_view data) const override {
    // Blocks are self-describing: the framed name, not this policy's
    // configured backend, selects the deserializer.
    return FilterRegistry::Instance().Deserialize(data);
  }

 private:
  std::string name_;
  const FilterRegistry::Entry* entry_;  // null for unknown backends
  FilterBuildParams params_;
};

}  // namespace

AdaptiveFilterPolicy::AdaptiveFilterPolicy(AdaptiveFilterOptions options)
    : options_(std::move(options)) {
  last_plan_.backend = options_.fallback_backend;
  last_plan_.bits_per_key = options_.bits_per_key;
  last_plan_.max_range = options_.fallback_max_range;
  last_plan_.used_fallback = true;
  last_plan_.rationale = "no build yet";
}

std::string AdaptiveFilterPolicy::Name() const { return "adaptive"; }

std::string AdaptiveFilterPolicy::BuildFallback(
    const std::vector<uint64_t>& sorted_keys) const {
  const FilterRegistry::Entry* entry =
      FilterRegistry::Instance().Find(options_.fallback_backend);
  if (entry == nullptr) return "";
  FilterBuildParams params;
  params.bits_per_key = options_.bits_per_key;
  params.max_range = options_.fallback_max_range;
  std::unique_ptr<PointRangeFilter> filter =
      entry->build_from_sorted_keys(sorted_keys, params);
  if (filter == nullptr) return "";
  return FilterRegistry::Frame(entry->name, filter->Serialize());
}

std::string AdaptiveFilterPolicy::CreateFilter(
    const std::vector<uint64_t>& sorted_keys) const {
  return CreateFilter(sorted_keys, FilterBuildContext{});
}

std::string AdaptiveFilterPolicy::CreateFilter(
    const std::vector<uint64_t>& sorted_keys,
    const FilterBuildContext& context) const {
  PlannerOptions planner;
  planner.bits_per_key = options_.bits_per_key;
  planner.min_samples = options_.min_samples;
  planner.fallback_backend = options_.fallback_backend;
  planner.fallback_max_range = options_.fallback_max_range;
  planner.feedback_min_probes = options_.feedback_min_probes;
  planner.distrust_cap = options_.distrust_cap;

  FilterPlan plan;
  if (context.sampler == nullptr) {
    plan.backend = options_.fallback_backend;
    plan.bits_per_key = options_.bits_per_key;
    plan.max_range = options_.fallback_max_range;
    plan.used_fallback = true;
    plan.rationale = "fallback: no workload sampler wired";
  } else {
    // Plan from the actual key count, not the context hint: the filter
    // must be sized for what it stores.
    plan = PlanFilter(context.sampler->Snapshot(), sorted_keys.size(), planner,
                      context.feedback);
  }

  std::string block;
  if (plan.has_bloomrf_config) {
    // The advisor-tuned configuration cannot be expressed through the
    // registry's scalar FilterBuildParams; build the core type directly.
    BloomRF filter(plan.bloomrf_config);
    for (uint64_t key : sorted_keys) filter.Insert(key);
    block = FilterRegistry::Frame("bloomrf", filter.Serialize());
  } else {
    const FilterRegistry::Entry* entry =
        FilterRegistry::Instance().Find(plan.backend);
    if (entry != nullptr) {
      FilterBuildParams params;
      params.bits_per_key = plan.bits_per_key;
      params.max_range = plan.max_range;
      params.prefix_level = plan.prefix_level;
      std::unique_ptr<PointRangeFilter> filter =
          entry->build_from_sorted_keys(sorted_keys, params);
      if (filter != nullptr) {
        block = FilterRegistry::Frame(entry->name, filter->Serialize());
      }
    }
    if (block.empty() && plan.backend != options_.fallback_backend) {
      block = BuildFallback(sorted_keys);
      plan.used_fallback = true;
      plan.rationale += " (backend build failed; fallback built)";
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    last_plan_ = plan;
    if (plan.used_fallback) {
      ++fallback_builds_;
    } else {
      ++planned_builds_;
    }
  }
  return block;
}

std::unique_ptr<PointRangeFilter> AdaptiveFilterPolicy::LoadFilter(
    std::string_view data) const {
  return FilterRegistry::Instance().Deserialize(data);
}

FilterPlan AdaptiveFilterPolicy::LastPlan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_plan_;
}

uint64_t AdaptiveFilterPolicy::planned_builds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return planned_builds_;
}

uint64_t AdaptiveFilterPolicy::fallback_builds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fallback_builds_;
}

std::unique_ptr<AdaptiveFilterPolicy> NewAdaptiveFilterPolicy(
    AdaptiveFilterOptions options) {
  return std::make_unique<AdaptiveFilterPolicy>(std::move(options));
}

std::unique_ptr<FilterPolicy> NewRegistryPolicy(std::string_view name,
                                                FilterBuildParams params) {
  return std::make_unique<RegistryFilterPolicy>(name, params);
}

std::unique_ptr<FilterPolicy> NewBloomRFPolicy(double bits_per_key,
                                               double max_range) {
  FilterBuildParams params;
  params.bits_per_key = bits_per_key;
  params.max_range = max_range;
  return NewRegistryPolicy("bloomrf", params);
}

std::unique_ptr<FilterPolicy> NewBloomPolicy(double bits_per_key) {
  FilterBuildParams params;
  params.bits_per_key = bits_per_key;
  return NewRegistryPolicy("bloom", params);
}

std::unique_ptr<FilterPolicy> NewPrefixBloomPolicy(double bits_per_key,
                                                   uint32_t prefix_level) {
  FilterBuildParams params;
  params.bits_per_key = bits_per_key;
  params.prefix_level = prefix_level;
  return NewRegistryPolicy("prefix_bloom", params);
}

std::unique_ptr<FilterPolicy> NewRosettaPolicy(double bits_per_key,
                                               uint64_t max_range) {
  FilterBuildParams params;
  params.bits_per_key = bits_per_key;
  params.max_range = static_cast<double>(max_range);
  return NewRegistryPolicy("rosetta", params);
}

std::unique_ptr<FilterPolicy> NewSurfPolicy(uint32_t suffix_type,
                                            uint32_t suffix_bits) {
  FilterBuildParams params;
  params.suffix_type = suffix_type;
  params.suffix_bits = suffix_bits;
  return NewRegistryPolicy("surf", params);
}

std::unique_ptr<FilterPolicy> NewFencePointerPolicy(double bits_per_key) {
  FilterBuildParams params;
  params.bits_per_key = bits_per_key;
  return NewRegistryPolicy("fence_pointers", params);
}

std::unique_ptr<FilterPolicy> NewCuckooPolicy(uint32_t fingerprint_bits) {
  FilterBuildParams params;
  params.fingerprint_bits = fingerprint_bits;
  return NewRegistryPolicy("cuckoo", params);
}

}  // namespace bloomrf

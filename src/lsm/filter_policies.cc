// The one concrete FilterPolicy: a thin generic adapter over the
// FilterRegistry. Backend-specific wiring (construction, serialization
// framing, probe objects) lives behind the registry; what used to be
// seven hand-written policy/probe class pairs is now this file.

#include "lsm/filter_policy.h"

#include <utility>

namespace bloomrf {

namespace {

class RegistryFilterPolicy : public FilterPolicy {
 public:
  // Entry pointers are stable (map nodes, never erased), so the
  // backend is resolved once instead of per flush/probe.
  RegistryFilterPolicy(std::string_view name, FilterBuildParams params)
      : name_(name),
        entry_(FilterRegistry::Instance().Find(name)),
        params_(params) {}

  std::string Name() const override {
    return entry_ != nullptr ? entry_->display_name : name_;
  }

  std::string CreateFilter(
      const std::vector<uint64_t>& sorted_keys) const override {
    if (entry_ == nullptr) return "";
    // Sizing from the key count is the factory's job (see
    // OfflineViaOnline in builtin_filters.cc).
    std::unique_ptr<PointRangeFilter> filter =
        entry_->build_from_sorted_keys(sorted_keys, params_);
    if (filter == nullptr) return "";
    return FilterRegistry::Frame(entry_->name, filter->Serialize());
  }

  std::unique_ptr<PointRangeFilter> LoadFilter(
      std::string_view data) const override {
    // Blocks are self-describing: the framed name, not this policy's
    // configured backend, selects the deserializer.
    return FilterRegistry::Instance().Deserialize(data);
  }

 private:
  std::string name_;
  const FilterRegistry::Entry* entry_;  // null for unknown backends
  FilterBuildParams params_;
};

}  // namespace

std::unique_ptr<FilterPolicy> NewRegistryPolicy(std::string_view name,
                                                FilterBuildParams params) {
  return std::make_unique<RegistryFilterPolicy>(name, params);
}

std::unique_ptr<FilterPolicy> NewBloomRFPolicy(double bits_per_key,
                                               double max_range) {
  FilterBuildParams params;
  params.bits_per_key = bits_per_key;
  params.max_range = max_range;
  return NewRegistryPolicy("bloomrf", params);
}

std::unique_ptr<FilterPolicy> NewBloomPolicy(double bits_per_key) {
  FilterBuildParams params;
  params.bits_per_key = bits_per_key;
  return NewRegistryPolicy("bloom", params);
}

std::unique_ptr<FilterPolicy> NewPrefixBloomPolicy(double bits_per_key,
                                                   uint32_t prefix_level) {
  FilterBuildParams params;
  params.bits_per_key = bits_per_key;
  params.prefix_level = prefix_level;
  return NewRegistryPolicy("prefix_bloom", params);
}

std::unique_ptr<FilterPolicy> NewRosettaPolicy(double bits_per_key,
                                               uint64_t max_range) {
  FilterBuildParams params;
  params.bits_per_key = bits_per_key;
  params.max_range = static_cast<double>(max_range);
  return NewRegistryPolicy("rosetta", params);
}

std::unique_ptr<FilterPolicy> NewSurfPolicy(uint32_t suffix_type,
                                            uint32_t suffix_bits) {
  FilterBuildParams params;
  params.suffix_type = suffix_type;
  params.suffix_bits = suffix_bits;
  return NewRegistryPolicy("surf", params);
}

std::unique_ptr<FilterPolicy> NewFencePointerPolicy(double bits_per_key) {
  FilterBuildParams params;
  params.bits_per_key = bits_per_key;
  return NewRegistryPolicy("fence_pointers", params);
}

std::unique_ptr<FilterPolicy> NewCuckooPolicy(uint32_t fingerprint_bits) {
  FilterBuildParams params;
  params.fingerprint_bits = fingerprint_bits;
  return NewRegistryPolicy("cuckoo", params);
}

}  // namespace bloomrf

// Hash-sharded LSM engine: N independent Db shards behind one API.
//
// Keys are routed by a mixed hash of the key (Mix64 % num_shards), so
// each shard owns a disjoint key subset and runs its own memtable,
// seal/flush pipeline and SST set; all shards share one BlockCache and
// one FilterPolicy. Batch reads (MultiGet/ScanRange) fan out per shard
// on a small reusable ThreadPool and are reassembled in input order,
// so the planned batch probes of every shard run genuinely in
// parallel. Point Put/Get route directly with no pool hop.
//
// Because sharding is by hash, a key range spans all shards: ScanRange
// sends the whole batch to every shard and merges the per-shard rows
// (disjoint keys, so the merge is a sort) up to the limit.
//
// Every public method is safe from any number of client threads; the
// per-shard Db provides snapshot reads and serialized writes.

#ifndef BLOOMRF_LSM_SHARDED_DB_H_
#define BLOOMRF_LSM_SHARDED_DB_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace bloomrf {

struct ShardedDbOptions {
  std::string dir;  // shard i lives in dir/shard-i
  /// Shared by every shard. Null disables filter blocks.
  std::shared_ptr<FilterPolicy> filter_policy;
  size_t num_shards = 8;
  size_t block_size = 4096;
  /// Per-shard memtable budget (the engine holds up to num_shards of
  /// these in memory, plus sealed ones awaiting flush).
  uint64_t memtable_bytes = 8ull << 20;
  /// One cache shared across all shards; created with
  /// `block_cache_bytes` when null (0 disables caching).
  std::shared_ptr<BlockCache> block_cache;
  size_t block_cache_bytes = 32 << 20;
  bool background_flush = true;
  /// Per-shard write-ahead log (see DbOptions::wal): every shard logs
  /// its own writes and replays them on reopen. wal_dir, when set,
  /// holds per-shard subdirectories wal_dir/shard-i.
  bool wal = true;
  bool wal_fsync = false;
  std::string wal_dir;
  /// Filesystem seam shared by every shard (see DbOptions::env). Null
  /// = the process-wide POSIX Env.
  Env* env = nullptr;
  /// Per-shard background leveled compaction (see DbOptions). Each
  /// shard runs its own compaction thread over its own level tree.
  bool compaction = false;
  size_t l0_compaction_trigger = 4;
  uint64_t level_base_bytes = 8ull << 20;
  size_t level_size_multiplier = 8;
  size_t max_levels = 6;
  uint64_t manifest_rewrite_bytes = 1ull << 20;
  /// Per-shard compaction scheduler width (see
  /// DbOptions::compaction_threads). Each shard gets its own worker
  /// set; shards already parallelize across each other, so > 1 mainly
  /// helps skewed shards with deep trees.
  size_t compaction_threads = 1;
  /// Range-partitioned subcompactions per job (see
  /// DbOptions::max_subcompactions). All shards share ONE
  /// subcompaction pool sized for a single shard's fan-out, so
  /// concurrent shard compactions queue their ranges rather than
  /// oversubscribing the host.
  size_t max_subcompactions = 0;
  uint64_t subcompaction_min_bytes = 8ull << 20;
  /// Per-shard workload sampling for the adaptive filter loop (see
  /// DbOptions::sample_queries): each shard Db observes its own query
  /// stream with its own sampler, so shard-local flushes and
  /// compactions tune from shard-local traffic.
  bool sample_queries = false;
  uint32_t sampler_period_log2 = 6;
  /// Fan-out workers for batch APIs; 0 sizes the pool to num_shards.
  /// Callers of MultiGet/ScanRange also steal tasks while waiting, so
  /// even worker_threads == 0 with a 1-shard engine stays a plain
  /// inline call.
  size_t worker_threads = 0;
};

class ShardedDb {
 public:
  explicit ShardedDb(ShardedDbOptions options);

  size_t shard_of(uint64_t key) const {
    // Mix64 decorrelates the shard index from key order, so sequential
    // key ranges spread over all shards (and from the filters' own
    // hashes, which seed differently).
    return static_cast<size_t>(Mix64(key) % shards_.size());
  }

  bool Put(uint64_t key, std::string_view value) {
    return shards_[shard_of(key)]->Put(key, value);
  }
  bool Get(uint64_t key, std::string* value) {
    return shards_[shard_of(key)]->Get(key, value);
  }
  /// Deletes a key on its shard (tombstone semantics, see Db::Delete).
  bool Delete(uint64_t key) { return shards_[shard_of(key)]->Delete(key); }

  /// Batched write: entries are partitioned per shard and each shard's
  /// sub-batch runs Db::PutBatch (one WAL record + one memtable pass
  /// per shard) as one pool task, mirroring MultiGet's fan-out.
  /// Atomicity-of-logging holds per shard, not across shards.
  bool PutBatch(std::span<const KV> kvs);

  /// Batched delete, fanned out per shard like PutBatch: one delete
  /// WAL record + one memtable pass per shard, so recovery applies
  /// each shard's sub-batch all-or-nothing (per shard, not across
  /// shards).
  bool DeleteBatch(std::span<const uint64_t> keys);

  /// Batched point read, result[i] answering keys[i]. Keys are
  /// partitioned per shard, each shard's sub-batch runs Db::MultiGet
  /// (planned filter probes + block cache) as one pool task, and the
  /// answers are scattered back to input order.
  std::vector<std::optional<std::string>> MultiGet(
      std::span<const uint64_t> keys);

  /// Merged range scan over all shards (keys are hash-scattered, so
  /// every shard contributes to every range).
  std::vector<std::pair<uint64_t, std::string>> RangeScan(uint64_t lo,
                                                          uint64_t hi,
                                                          size_t limit = 1024);

  /// Batched range scan, result[i] answering [los[i], his[i]]. The
  /// whole batch goes to every shard in parallel (one planned
  /// RangeMultiProbe per SST per shard); per-range rows are merged
  /// across shards in key order up to `limit`.
  std::vector<std::vector<std::pair<uint64_t, std::string>>> ScanRange(
      std::span<const uint64_t> los, std::span<const uint64_t> his,
      size_t limit = 1024);

  /// Seals and drains every shard (in parallel). False if any flush
  /// failed.
  bool Flush();
  /// Drains already-queued background flushes on every shard.
  bool WaitForFlush();
  /// Waits until every shard's compaction triggers are satisfied (see
  /// Db::WaitForCompaction). False if any shard's compaction failed.
  bool WaitForCompaction();
  /// Manual full compaction of every shard (see Db::CompactAll). Works
  /// with background compaction on or off. The adaptive filter loop's
  /// "re-tune the whole tree now" lever.
  bool CompactAll();
  /// Manual compaction of [begin, end] on every shard (keys are
  /// hash-scattered, so the range touches all shards). See
  /// Db::CompactRange for the per-shard semantics.
  bool CompactRange(uint64_t begin, uint64_t end);

  size_t num_shards() const { return shards_.size(); }
  Db& shard(size_t i) { return *shards_[i]; }
  const Db& shard(size_t i) const { return *shards_[i]; }

  /// Sum of all shards' probe-cost counters.
  LsmStats TotalStats() const;
  void ResetStats();
  size_t num_tables() const;
  uint64_t filter_memory_bits() const;
  const std::shared_ptr<BlockCache>& block_cache() const {
    return options_.block_cache;
  }

 private:
  ShardedDbOptions options_;
  std::vector<std::unique_ptr<Db>> shards_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_SHARDED_DB_H_

// SST (sorted string table) writer of the mini-LSM store.
//
// File layout, format v3 (all offsets little-endian):
//   [data block  block_crc:fixed32]*  [index block]  [filter block]
//   [footer]
//   index entry  := last_key:fixed64 offset:fixed64 size:fixed64
//                   (size = block payload bytes, CRC excluded)
//   filter block := name:len-prefixed data:len-prefixed
//   footer       := index_off index_size filter_off filter_size
//                   num_tombstones:fixed64
//                   index_crc:fixed32 filter_crc:fixed32 magic_v3
// v3 (56-byte footer) adds deletes: a data-block entry's meta word
// packs a tombstone flag in its top bit (see lsm/block.h) and the
// footer counts the file's tombstones so the engine can report live
// tombstones without scanning. Every data block carries a trailing
// CRC-32C; the index and filter blocks are covered by footer CRCs, so
// TableReader::Open validates all metadata before serving a byte, and
// a flipped bit in a data block is detected at read time instead of
// returning garbage.
//
// Older formats are still read: v2 (magic kMagicV2, 48-byte footer,
// CRCs, no tombstones) and v1 (magic kMagicV1, 40-byte footer, no
// CRCs). Their meta word is a plain 32-bit value length, so pre-delete
// tables parse byte-identically to before the bump.
//
// Durability: WriteTo stages the file as `path.tmp`, fsyncs it,
// renames it into place and fsyncs the parent directory — a crash at
// any point leaves either no SST or a complete one, never a torn file
// under the final name.
//
// Filters are built over the full key set of the file ("full filter"
// placement, as in the paper's RocksDB integration with
// compaction-disabled block-based tables).

#ifndef BLOOMRF_LSM_TABLE_BUILDER_H_
#define BLOOMRF_LSM_TABLE_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lsm/block.h"
#include "lsm/env.h"
#include "lsm/filter_policy.h"

namespace bloomrf {

struct TableBuildStats {
  double filter_create_seconds = 0;
  uint64_t filter_block_bytes = 0;
  uint64_t data_bytes = 0;
  uint64_t num_entries = 0;
  uint64_t num_tombstones = 0;  // of num_entries, how many are deletes
  uint64_t file_bytes = 0;      // total bytes written
};

class TableBuilder {
 public:
  static constexpr uint64_t kMagicV1 = 0xb100f54b1e5ULL;
  static constexpr uint64_t kMagicV2 = 0xb100f54b1e52ULL;
  static constexpr uint64_t kMagicV3 = 0xb100f54b1e53ULL;
  /// Legacy alias; new code should name the version explicitly.
  static constexpr uint64_t kMagic = kMagicV1;

  /// `policy` may be null (no filter block). Does not take ownership.
  TableBuilder(const FilterPolicy* policy, size_t block_size)
      : policy_(policy), block_size_(block_size) {}

  /// Adds an entry; keys must arrive in strictly increasing order.
  /// A tombstone entry records a deletion (value ignored): it shadows
  /// the key in every older table and keeps the key in this table's
  /// filter — a reader must find the tombstone (and stop) rather than
  /// fall through to a stale value below.
  void Add(uint64_t key, std::string_view value, bool tombstone = false);

  /// Workload/feedback context handed to the policy at filter-build
  /// time. Optional; the default context makes context-aware policies
  /// fall back to their static behavior.
  void SetFilterContext(const FilterBuildContext& context) {
    context_ = context;
  }

  size_t num_entries() const { return keys_.size(); }
  /// Serialized bytes so far (data written + current block); the
  /// compaction uses it to split outputs near a target file size.
  size_t ApproximateBytes() const {
    return file_data_.size() + current_.SizeBytes();
  }

  /// Serializes the complete table and writes it durably through
  /// `env`: staged at `path.tmp`, fsynced, renamed to `path`, parent
  /// directory fsynced. False on any I/O failure (the tmp file is
  /// best-effort removed; `path` is never left torn).
  bool WriteTo(Env* env, const std::string& path, TableBuildStats* stats);
  /// Same through the default Env.
  bool WriteTo(const std::string& path, TableBuildStats* stats) {
    return WriteTo(Env::Default(), path, stats);
  }

 private:
  void FlushBlock();

  const FilterPolicy* policy_;
  FilterBuildContext context_;
  size_t block_size_;
  BlockBuilder current_;
  std::string file_data_;
  std::string index_;
  std::vector<uint64_t> keys_;
  uint64_t num_tombstones_ = 0;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_TABLE_BUILDER_H_

// SST (sorted string table) writer of the mini-LSM store.
//
// File layout (all offsets little-endian):
//   [data block]*  [index block]  [filter block]  [footer]
//   index entry  := last_key:fixed64 offset:fixed64 size:fixed64
//   filter block := name:len-prefixed data:len-prefixed
//   footer       := index_off index_size filter_off filter_size magic
//
// Filters are built over the full key set of the file ("full filter"
// placement, as in the paper's RocksDB integration with
// compaction-disabled block-based tables).

#ifndef BLOOMRF_LSM_TABLE_BUILDER_H_
#define BLOOMRF_LSM_TABLE_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lsm/block.h"
#include "lsm/filter_policy.h"

namespace bloomrf {

struct TableBuildStats {
  double filter_create_seconds = 0;
  uint64_t filter_block_bytes = 0;
  uint64_t data_bytes = 0;
  uint64_t num_entries = 0;
};

class TableBuilder {
 public:
  static constexpr uint64_t kMagic = 0xb100f54b1e5ULL;

  /// `policy` may be null (no filter block). Does not take ownership.
  TableBuilder(const FilterPolicy* policy, size_t block_size)
      : policy_(policy), block_size_(block_size) {}

  /// Adds an entry; keys must arrive in strictly increasing order.
  void Add(uint64_t key, std::string_view value);

  /// Serializes the complete table and writes it to `path`. Returns
  /// false on I/O failure.
  bool WriteTo(const std::string& path, TableBuildStats* stats);

 private:
  void FlushBlock();

  const FilterPolicy* policy_;
  size_t block_size_;
  BlockBuilder current_;
  std::string file_data_;
  std::string index_;
  std::vector<uint64_t> keys_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_TABLE_BUILDER_H_

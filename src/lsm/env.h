// Filesystem seam of the mini-LSM store, in the spirit of RocksDB's
// Env / FaultInjectionTestEnv.
//
// Every durable mutation of a Db directory — SST creation, MANIFEST
// appends, CURRENT swaps, file deletion — goes through an Env, so a
// test can interpose FaultInjectionEnv and fail (or "crash") at any
// individual call site. Read paths are not routed through Env: a
// simulated crash only affects the dying process's writes; the reopen
// that follows uses a fresh default Env, exactly like a real restart.
//
// Call sites are named "<kind>.<op>", where the kind is derived from
// the file name (sst / manifest / current / wal / file) and the op is
// the Env method (open, append, sync, close, rename, delete, dirsync).
// The mmap-backed WalWriter cannot route its byte path through
// WritableFile, so it polls InjectFault("wal.append") before each
// group commit instead; see the crash-model note on CrashAtOp for why
// WAL appends are exempt from crash simulation.

#ifndef BLOOMRF_LSM_ENV_H_
#define BLOOMRF_LSM_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace bloomrf {

/// Append-only output file. All methods return false on failure;
/// failure is sticky (the file is broken for its remaining lifetime).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual bool Append(std::string_view data) = 0;
  /// Forces appended bytes to stable storage (fdatasync).
  virtual bool Sync() = 0;
  /// Closes the descriptor; further Appends fail. Safe to call twice.
  virtual bool Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Creates (truncating) `path` for appending. Null on failure.
  virtual std::unique_ptr<WritableFile> NewWritableFile(
      const std::string& path) = 0;
  /// Atomic rename; the durability of the rename itself needs a
  /// SyncDir of the parent directory.
  virtual bool RenameFile(const std::string& from, const std::string& to) = 0;
  virtual bool DeleteFile(const std::string& path) = 0;
  /// fsyncs the directory so completed creates/renames/deletes inside
  /// it survive a power loss.
  virtual bool SyncDir(const std::string& dir) = 0;
  virtual bool FileExists(const std::string& path) = 0;

  /// Fault checkpoint for writers that bypass WritableFile (the
  /// mmap-backed WAL). True = the call site should fail now. The
  /// default Env never injects.
  virtual bool InjectFault(const char* site) {
    (void)site;
    return false;
  }

  /// Process-wide POSIX Env; never null, never deleted.
  static Env* Default();
};

/// Classifies a path into the fault-site kind used by
/// FaultInjectionEnv: "sst", "manifest", "current", "wal" or "file".
/// (A trailing ".tmp" is ignored, so an SST staged as 7.sst.tmp still
/// faults under "sst".)
std::string FaultKindForPath(const std::string& path);

/// Env wrapper that injects failures at named call sites and can
/// simulate a process crash at an exact operation index.
///
/// Site hooks — sites are "<kind>.<op>" (e.g. "sst.append",
/// "manifest.sync", "current.rename", "wal.delete", "file.dirsync");
/// a hook installed under the bare kind ("sst") matches every op on
/// such files:
///  - FailOnce / FailAlways / Heal: the site fails (no side effect)
///    the next N times it runs.
///  - FailAfterBytes: an append site writes exactly `bytes` more
///    bytes, then fails mid-call — a torn write; the site keeps
///    failing afterwards until healed.
///
/// Crash simulation — CrashAtOp(n) makes the n-th subsequent
/// environment operation (0-based, see op_count()) and every later
/// one fail: writes are dropped, renames and deletes are not
/// performed, exactly as if the process had been SIGKILLed at that
/// instruction with whatever had reached the page cache preserved.
/// "wal.*" sites are exempt from crash mode (not counted, never
/// crash-failed): WAL commits are memcpys into a shared mapping whose
/// pages survive a process kill, so a crashed run keeps its complete
/// WAL — torn-WAL-tail robustness is exercised separately by the WAL
/// fuzz suites. The torn variant makes the crashing operation, when
/// it is an append, write a prefix of its data first.
///
/// Thread-safe; one instance may back several Db objects.
class FaultInjectionEnv : public Env {
 public:
  /// Wraps `base` (default: Env::Default()).
  explicit FaultInjectionEnv(Env* base = nullptr);

  std::unique_ptr<WritableFile> NewWritableFile(
      const std::string& path) override;
  bool RenameFile(const std::string& from, const std::string& to) override;
  bool DeleteFile(const std::string& path) override;
  bool SyncDir(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  bool InjectFault(const char* site) override;

  void FailOnce(const std::string& site) { FailTimes(site, 1); }
  void FailTimes(const std::string& site, int times);
  void FailAlways(const std::string& site);
  /// The next append on `site` writes exactly `bytes`, then fails.
  void FailAfterBytes(const std::string& site, uint64_t bytes);
  void Heal(const std::string& site);
  void HealAll();

  /// Arms the crash: operation index `op` (and everything after) fails.
  void CrashAtOp(uint64_t op, bool torn = false);
  void ClearCrash();
  bool crashed() const;
  /// Operations executed so far (counted whether or not they failed;
  /// wal.* checkpoints excluded). Run a workload once against an
  /// un-armed instance to learn the matrix width.
  uint64_t op_count() const;

 private:
  friend class FaultInjectedFile;
  struct Rule {
    int fail_remaining = 0;       // >0: fail N times; -1: fail always
    int64_t byte_budget = -1;     // >=0: torn write after this many bytes
  };

  /// Central gate every operation passes through. Returns false when
  /// the op must fail; `write_allowance` (appends only) receives how
  /// many bytes may still land when the failure is a torn write.
  bool OpAllowed(const std::string& kind, const char* op,
                 uint64_t append_bytes, uint64_t* write_allowance);

  Env* const base_;
  mutable std::mutex mu_;
  std::map<std::string, Rule> rules_;
  uint64_t op_count_ = 0;
  int64_t crash_at_ = -1;  // armed when >= 0
  bool crash_torn_ = false;
  bool crashed_ = false;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_ENV_H_

// Write-ahead log of the mini-LSM store: group-commit writer + replay
// reader.
//
// Record format (little-endian):
//   crc:fixed32  length:fixed32  type:1  payload[length]
//   payload (type kBatch): count:fixed32 then count x
//     { key:fixed64 value_len:fixed32 value[value_len] }
//   payload (type kOpsBatch): count:fixed32 then count x
//     { key:fixed64 flags:1 [value_len:fixed32 value[value_len]] }
//     where flags bit 0 = tombstone (deletes carry no value bytes)
// kBatch is the pure-put record (the hot Put/PutBatch path, unchanged
// from pre-delete logs, so old logs replay byte-identically); kOpsBatch
// carries mixed Put/Delete batches. The CRC-32C covers type+payload,
// so recovery distinguishes a torn tail (truncated write at crash)
// from real data: replay stops at the first record that is short,
// fails its checksum, or has an unknown type, and everything before it
// is trusted.
//
// Group commit: writers encode their record and, under the writer
// mutex, either become the leader — which commits its own record
// straight from the caller's buffer when the queue is empty (the
// uncontended fast path), then drains anything that queued meanwhile
// as one append per group (plus one msync when fsync is on) and wakes
// the followers — or enqueue and wait on the commit sequence.
//
// The log file is mmap-backed on POSIX: committing a group is a
// memcpy into a shared mapping, which lands the bytes in the kernel
// page cache with no syscall — the same durability class as write()
// without fsync (a process crash loses nothing; dirty pages belong to
// the kernel, only a power loss can drop them), at a fraction of the
// per-record cost. wal_fsync upgrades each commit with an msync of
// the dirty range.
//
// One WalWriter serves exactly one log file; the Db rotates to a new
// file at every memtable seal and deletes files once their memtable's
// flush has durably completed.

#ifndef BLOOMRF_LSM_WAL_H_
#define BLOOMRF_LSM_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bloomrf {

class Env;
struct LsmStats;

// ---------------------------------------------------------------------
// Generic CRC-framed record log. The WAL defined this format; the
// MANIFEST reuses it verbatim (different record type byte), so both
// share one torn-tail-tolerant replay.
// ---------------------------------------------------------------------

/// Appends one `crc | length | type | payload` frame to *out. The
/// CRC-32C covers type+payload.
void AppendFramedRecord(char type, std::string_view payload,
                        std::string* out);

struct FramedReplayResult {
  uint64_t records = 0;  // intact records applied
  uint64_t bytes = 0;    // bytes consumed by intact records
  bool clean = true;     // false: stopped at a torn/corrupt tail
};

/// Walks the intact framed records of `data` in order, calling
/// `apply(type, payload)` per record; apply returning false (malformed
/// payload / unknown type) stops replay uncleanly at that record. An
/// all-zero tail (the preallocated remainder of an mmap-backed log
/// whose writer died before trimming) is a clean EOF; a torn or
/// corrupt tail stops replay uncleanly, trusting everything before it.
FramedReplayResult ReplayFramedRecords(
    std::string_view data,
    const std::function<bool(char, std::string_view)>& apply);

/// Reads the file at `path` fully, then replays it. A missing file
/// replays zero records cleanly.
FramedReplayResult ReplayFramedFile(
    const std::string& path,
    const std::function<bool(char, std::string_view)>& apply);

/// One write-path entry: the unit of Db::Put / Db::PutBatch. The view
/// must stay valid for the duration of the call that receives it.
struct KV {
  uint64_t key = 0;
  std::string_view value;
};

/// One generalized write-path operation: a put or a delete. The value
/// view must stay valid for the call that receives it (and is ignored
/// for deletes).
struct WriteOp {
  uint64_t key = 0;
  std::string_view value;
  bool is_delete = false;
};

/// Encodes one CRC-framed kBatch record covering all of `kvs`.
std::string WalEncodeRecord(std::span<const KV> kvs);
/// Same, into a caller-owned buffer (cleared first) — the hot write
/// path reuses a thread_local string to avoid an allocation per Put.
void WalEncodeRecordTo(std::span<const KV> kvs, std::string* record);
/// Encodes one CRC-framed kOpsBatch record covering all of `ops`
/// (mixed puts and deletes), into a caller-owned buffer.
void WalEncodeOpsTo(std::span<const WriteOp> ops, std::string* record);
/// Encodes one CRC-framed kOpsBatch record of pure deletes.
void WalEncodeDeletesTo(std::span<const uint64_t> keys, std::string* record);

struct WalReplayResult {
  uint64_t records = 0;   // intact records applied
  uint64_t entries = 0;   // key/value pairs applied
  uint64_t bytes = 0;     // file bytes consumed by intact records
  bool clean = true;      // false: stopped at a torn/corrupt tail
};

/// Replays every intact record of the log at `path` in order, calling
/// `apply(key, value, is_delete)` per entry (value is empty for
/// deletes). Tolerates (and reports) a corrupt or truncated tail; a
/// missing file replays zero records cleanly.
WalReplayResult WalReplay(
    const std::string& path,
    const std::function<void(uint64_t, std::string_view, bool)>& apply);

class WalWriter {
 public:
  /// Opens (truncating) the log file. `stats` may be null; when set,
  /// wal_appends / wal_synced_bytes / group_commit_batches and
  /// last_error are maintained on it. `fsync_on_commit` makes every
  /// group commit durable before Append returns. `env` is consulted
  /// only as a fault checkpoint ("wal.open" / "wal.append" sites) —
  /// the byte path stays the mmap below; null checks nothing.
  WalWriter(std::string path, bool fsync_on_commit, LsmStats* stats,
            Env* env = nullptr);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// True when the log file could not be opened; every Append fails.
  bool broken() const;

  /// Appends one encoded record through the group-commit protocol.
  /// Blocks until the record's group has been written (and synced when
  /// fsync_on_commit). Returns false when the write failed — the error
  /// is sticky for the writer's remaining lifetime (the Db rotates to
  /// a fresh file on the next seal).
  bool Append(std::string_view record);

  /// Forces any OS-buffered bytes down (no-op when fsync_on_commit).
  bool Sync();

  const std::string& path() const { return path_; }

 private:
  bool FileOk() const;
  /// Appends one group's bytes to the log (memcpy into the mapping,
  /// plus msync when fsync_on_commit) — called by the leader only.
  bool WriteBytes(const char* data, size_t n);
  /// Leader helper: drops `lock`, writes the group, retakes `lock`,
  /// publishes `batch_end` (or marks broken_) and wakes followers.
  void CommitGroup(std::unique_lock<std::mutex>& lock, const char* data,
                   size_t n, uint64_t batch_end);
#ifndef _WIN32
  /// (Re)maps the file at `new_size` preallocated bytes.
  bool Remap(size_t new_size);
#endif

  const std::string path_;
  const bool fsync_on_commit_;
  LsmStats* const stats_;
  Env* const env_;  // fault checkpoints only; may be null
  int fd_ = -1;
#ifndef _WIN32
  char* map_ = nullptr;   // shared file mapping (page-cache-backed)
  size_t map_size_ = 0;   // preallocated mapped bytes
  size_t offset_ = 0;     // bytes of committed records (leader-only)
#else
  std::FILE* file_ = nullptr;
#endif

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::string pending_;         // concatenated not-yet-written records
  uint64_t next_seq_ = 0;       // last enqueued record
  uint64_t committed_seq_ = 0;  // last record written (+synced) OK
  size_t waiters_ = 0;          // followers (and Sync) blocked on cv_
  bool leader_active_ = false;
  bool broken_ = false;         // sticky after an open/write/sync error
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_WAL_H_

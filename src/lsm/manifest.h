// Versioned MANIFEST of the mini-LSM store: the durable log of table
// edits that makes recovery independent of directory globbing.
//
// A MANIFEST-<n> file is a sequence of CRC-framed records in the WAL's
// exact frame format (crc | length | type | payload; see lsm/wal.h),
// with record type kManifestEditRecord. Each payload is one
// VersionEdit: a tagged list of
//   log number        (WAL files <= it are fully flushed, skippable)
//   next file number  (SST numbering floor after recovery)
//   added files       (level, file number, smallest/largest key,
//                      entry count, file bytes)
//   deleted files     (level, file number)
// Replaying the edits in order rebuilds the level structure; a torn or
// corrupt tail is tolerated exactly like WAL replay (everything before
// it is trusted), which is safe because an edit missing from the
// MANIFEST implies its flush never reported success, so the covering
// WAL file was never deleted.
//
// The CURRENT file names the live manifest ("MANIFEST-<n>\n") and is
// swapped atomically (write CURRENT.tmp, fsync, rename, fsync dir);
// recovery reads CURRENT first, falls back to the highest-numbered
// manifest on disk, and finally to a legacy *.sst import.

#ifndef BLOOMRF_LSM_MANIFEST_H_
#define BLOOMRF_LSM_MANIFEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lsm/env.h"

namespace bloomrf {

inline constexpr char kManifestEditRecord = 2;

/// One SST's manifest metadata. Key bounds are inclusive.
struct FileMeta {
  uint64_t file_number = 0;
  uint64_t smallest = 0;
  uint64_t largest = 0;
  uint64_t entries = 0;
  uint64_t file_bytes = 0;
};

/// One atomic mutation of the table tree.
struct VersionEdit {
  bool has_log_number = false;
  uint64_t log_number = 0;
  bool has_next_file_number = false;
  uint64_t next_file_number = 0;
  std::vector<std::pair<uint32_t, FileMeta>> added;     // (level, meta)
  std::vector<std::pair<uint32_t, uint64_t>> deleted;   // (level, file)

  void SetLogNumber(uint64_t n) {
    has_log_number = true;
    log_number = n;
  }
  void SetNextFileNumber(uint64_t n) {
    has_next_file_number = true;
    next_file_number = n;
  }

  /// Serializes the edit as one manifest record payload.
  std::string Encode() const;
  /// Parses a payload; false on any malformed byte (the caller treats
  /// the record as corruption and stops replay there).
  static bool Decode(std::string_view payload, VersionEdit* edit);
};

/// Accumulated result of replaying a manifest.
struct ManifestState {
  /// levels[0] = L0 in add order (oldest first); deeper levels in add
  /// order too — the writer emits them sorted by smallest key.
  std::vector<std::vector<FileMeta>> levels;
  uint64_t log_number = 0;
  uint64_t next_file_number = 0;
  uint64_t edits = 0;   // intact edits applied
  bool clean = true;    // false: stopped at a torn/corrupt tail

  /// Applies one decoded edit; false when it is inconsistent with the
  /// accumulated state (deleting an absent file).
  bool Apply(const VersionEdit& edit);
};

std::string ManifestFileName(const std::string& dir, uint64_t number);
std::string CurrentFileName(const std::string& dir);

/// Replays the manifest at `path` into *state (state starts fresh).
/// Missing file = clean empty state with zero edits.
void ManifestReplay(const std::string& path, ManifestState* state);

/// Reads CURRENT; returns the manifest number it names, or 0 when the
/// file is missing or malformed.
uint64_t ReadCurrentManifestNumber(const std::string& dir);

/// Durably points CURRENT at MANIFEST-<number>: writes CURRENT.tmp,
/// fsyncs it, renames over CURRENT and fsyncs the directory — atomic
/// with respect to a crash at any step.
bool SetCurrentFile(Env* env, const std::string& dir, uint64_t number);

/// Appending writer for one MANIFEST-<n> file. Every Append is synced
/// before it reports success (an edit the caller acts on — publishing
/// a Version, deleting a WAL — must survive a crash). Errors are
/// sticky; the Db recovers by rewriting a fresh manifest.
class ManifestWriter {
 public:
  /// Creates (truncating) MANIFEST-<number> through `env`.
  ManifestWriter(Env* env, const std::string& dir, uint64_t number);

  /// False when the file could not be created or a write failed.
  bool ok() const { return file_ != nullptr && !broken_; }
  bool Append(const VersionEdit& edit);

  uint64_t number() const { return number_; }
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  const uint64_t number_;
  const std::string path_;
  std::unique_ptr<WritableFile> file_;
  uint64_t bytes_written_ = 0;
  bool broken_ = false;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_MANIFEST_H_

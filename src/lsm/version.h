// Immutable snapshot of a Db's complete readable state: the active
// memtable, the sealed (flush-pending) memtables, and the SST reader
// set, newest last in both lists.
//
// A Version is never mutated after construction (the active MemTable's
// *contents* grow — it is internally locked — but which object is
// active only changes by publishing a new Version). State changes
// build a new Version from the current one (WithSealedActive /
// WithFlushed) and publish it through VersionSet's atomically-swapped
// shared_ptr, so a reader takes one snapshot (Current()) and runs
// lock-free against a stable memtable/table list while writers seal
// and the background flush thread installs freshly written SSTs.
// Because sealing swaps the active memtable and records it as sealed
// in a single publication, no read interleaving can miss or
// double-count a memtable. Readers holding an old Version keep its
// memtables and tables alive through shared ownership; nothing is torn
// down under them.
//
// Mutators must externally serialize their read-modify-publish
// sequences (Db uses one version mutex); VersionSet makes the
// publication itself atomic so readers never observe a partially
// updated pointer. The swap is guarded by a tiny internal mutex rather
// than std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic uses a
// lock-bit protocol ThreadSanitizer cannot model (false positives even
// on a plain store/load pair), and a pointer copy under an
// uncontended mutex costs the same handful of atomic ops.

#ifndef BLOOMRF_LSM_VERSION_H_
#define BLOOMRF_LSM_VERSION_H_

#include <memory>
#include <mutex>
#include <vector>

#include "lsm/memtable.h"
#include "lsm/table_reader.h"

namespace bloomrf {

class Version {
 public:
  /// Base version: fresh empty active memtable, nothing else.
  Version() : active_(std::make_shared<MemTable>()) {}

  /// The memtable currently absorbing writes (newest data of all).
  const std::shared_ptr<MemTable>& active() const { return active_; }
  /// Sealed memtables awaiting (or having failed) flush, oldest
  /// first. Every sealed memtable is newer than every table.
  const std::vector<std::shared_ptr<const MemTable>>& sealed() const {
    return sealed_;
  }
  /// L0 SST readers, oldest first (append order = flush order).
  const std::vector<std::shared_ptr<const TableReader>>& tables() const {
    return tables_;
  }

  /// New Version whose active memtable is `fresh` and whose sealed
  /// list gains the previously active memtable — the seal step, as one
  /// atomic publication.
  std::shared_ptr<const Version> WithSealedActive(
      std::shared_ptr<MemTable> fresh) const;

  /// New Version with the sealed entry `flushed` removed (compared by
  /// address; a no-op removal is fine) and `table` appended.
  std::shared_ptr<const Version> WithFlushed(
      const MemTable* flushed, std::shared_ptr<const TableReader> table) const;

 private:
  struct Raw {};  // tag: the With* builders fill every field themselves
  explicit Version(Raw) {}

  std::shared_ptr<MemTable> active_;
  std::vector<std::shared_ptr<const MemTable>> sealed_;
  std::vector<std::shared_ptr<const TableReader>> tables_;
};

/// Holder of the current Version: readers copy the pointer in one
/// short critical section and then run lock-free on the snapshot;
/// Publish() atomically swaps it.
class VersionSet {
 public:
  VersionSet() : current_(std::make_shared<const Version>()) {}

  std::shared_ptr<const Version> Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  void Publish(std::shared_ptr<const Version> v) {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(v);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Version> current_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_VERSION_H_

// Immutable snapshot of a Db's complete readable state: the active
// memtable, the sealed (flush-pending) memtables, and the leveled SST
// tree.
//
// Table precedence (newest data first): active memtable, sealed
// memtables newest-first, L0 newest-first (flush order, files may
// overlap), then L1, L2, ... — each deeper level is a sorted run of
// disjoint key ranges, so within a level at most one file can contain
// a given key and order inside the level carries no recency meaning.
//
// A Version is never mutated after construction (the active MemTable's
// *contents* grow — it is internally locked — but which object is
// active only changes by publishing a new Version). State changes
// build a new Version from the current one (WithSealedActive /
// WithFlushed / WithCompaction) and publish it through VersionSet's
// atomically-swapped shared_ptr, so a reader takes one snapshot
// (Current()) and runs lock-free against a stable memtable/table tree
// while writers seal, the flush thread installs L0 tables and the
// compaction thread replaces whole input sets in one publication.
// Readers holding an old Version keep its memtables and tables alive
// through shared ownership; nothing is torn down under them (POSIX
// keeps unlinked-but-open SSTs readable, so obsolete-file deletion
// after a compaction commit cannot hurt a reader either).
//
// Mutators must externally serialize their read-modify-publish
// sequences (Db uses one version mutex); VersionSet makes the
// publication itself atomic so readers never observe a partially
// updated pointer. The swap is guarded by a tiny internal mutex rather
// than std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic uses a
// lock-bit protocol ThreadSanitizer cannot model (false positives even
// on a plain store/load pair), and a pointer copy under an
// uncontended mutex costs the same handful of atomic ops.

#ifndef BLOOMRF_LSM_VERSION_H_
#define BLOOMRF_LSM_VERSION_H_

#include <memory>
#include <mutex>
#include <vector>

#include "lsm/memtable.h"
#include "lsm/table_reader.h"

namespace bloomrf {

class Version {
 public:
  using TableList = std::vector<std::shared_ptr<const TableReader>>;

  /// Base version: fresh empty active memtable, one empty level.
  Version() : active_(std::make_shared<MemTable>()), levels_(1) {}

  /// The memtable currently absorbing writes (newest data of all).
  const std::shared_ptr<MemTable>& active() const { return active_; }
  /// Sealed memtables awaiting (or having failed) flush, oldest
  /// first. Every sealed memtable is newer than every table.
  const std::vector<std::shared_ptr<const MemTable>>& sealed() const {
    return sealed_;
  }
  /// levels()[0] = L0 in flush order (oldest first, files may
  /// overlap); levels()[i>=1] = a sorted run (by min_key) of disjoint
  /// files. Always at least one level.
  const std::vector<TableList>& levels() const { return levels_; }

  size_t table_count() const {
    size_t n = 0;
    for (const auto& level : levels_) n += level.size();
    return n;
  }
  /// Sum of the level's on-disk file sizes (compaction pressure).
  uint64_t level_bytes(size_t level) const {
    if (level >= levels_.size()) return 0;
    uint64_t bytes = 0;
    for (const auto& table : levels_[level]) bytes += table->file_size();
    return bytes;
  }

  /// New Version whose active memtable is `fresh` and whose sealed
  /// list gains the previously active memtable — the seal step, as one
  /// atomic publication.
  std::shared_ptr<const Version> WithSealedActive(
      std::shared_ptr<MemTable> fresh) const;

  /// New Version with the sealed entry `flushed` removed (compared by
  /// address; a no-op removal is fine) and `table` appended to L0.
  std::shared_ptr<const Version> WithFlushed(
      const MemTable* flushed, std::shared_ptr<const TableReader> table) const;

  /// New Version with the compaction inputs (located by file number
  /// across all levels) removed and `outputs` merged into
  /// `output_level`, which is kept sorted by min_key. Non-input files
  /// keep their relative order, so L0 files that were flushed while
  /// the compaction ran retain their recency position.
  std::shared_ptr<const Version> WithCompaction(
      const std::vector<uint64_t>& input_files, size_t output_level,
      TableList outputs) const;

  /// Recovery constructor: a Version holding exactly `levels` (plus a
  /// fresh active memtable).
  static std::shared_ptr<const Version> FromLevels(
      std::vector<TableList> levels);

 private:
  struct Raw {};  // tag: the With* builders fill every field themselves
  explicit Version(Raw) {}

  std::shared_ptr<MemTable> active_;
  std::vector<std::shared_ptr<const MemTable>> sealed_;
  std::vector<TableList> levels_;
};

/// Holder of the current Version: readers copy the pointer in one
/// short critical section and then run lock-free on the snapshot;
/// Publish() atomically swaps it.
class VersionSet {
 public:
  VersionSet() : current_(std::make_shared<const Version>()) {}

  std::shared_ptr<const Version> Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  void Publish(std::shared_ptr<const Version> v) {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(v);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Version> current_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_VERSION_H_

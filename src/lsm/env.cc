#include "lsm/env.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace bloomrf {

namespace {

#ifndef _WIN32

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(int fd) : fd_(fd) {}
  ~PosixWritableFile() override { Close(); }

  bool Append(std::string_view data) override {
    if (fd_ < 0) return false;
    size_t done = 0;
    while (done < data.size()) {
      ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) return false;
      done += static_cast<size_t>(n);
    }
    return true;
  }

  bool Sync() override {
    if (fd_ < 0) return false;
#ifdef __linux__
    return ::fdatasync(fd_) == 0;
#else
    return ::fsync(fd_) == 0;
#endif
  }

  bool Close() override {
    if (fd_ < 0) return true;
    int fd = fd_;
    fd_ = -1;
    return ::close(fd) == 0;
  }

 private:
  int fd_;
};

#else  // _WIN32

class StdioWritableFile : public WritableFile {
 public:
  explicit StdioWritableFile(std::FILE* f) : file_(f) {}
  ~StdioWritableFile() override { Close(); }

  bool Append(std::string_view data) override {
    if (file_ == nullptr) return false;
    return std::fwrite(data.data(), 1, data.size(), file_) == data.size();
  }
  bool Sync() override {
    return file_ != nullptr && std::fflush(file_) == 0;
  }
  bool Close() override {
    if (file_ == nullptr) return true;
    std::FILE* f = file_;
    file_ = nullptr;
    return std::fclose(f) == 0;
  }

 private:
  std::FILE* file_;
};

#endif

class PosixEnv : public Env {
 public:
  std::unique_ptr<WritableFile> NewWritableFile(
      const std::string& path) override {
#ifndef _WIN32
    int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) return nullptr;
    return std::make_unique<PosixWritableFile>(fd);
#else
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return nullptr;
    return std::make_unique<StdioWritableFile>(f);
#endif
  }

  bool RenameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    return !ec;
  }

  bool DeleteFile(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::remove(path, ec) && !ec;
  }

  bool SyncDir(const std::string& dir) override {
#ifndef _WIN32
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return false;
    bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
#else
    (void)dir;
    return true;  // no directory handles to sync with stdio fallback
#endif
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }
};

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // leaked: outlives every Db
  return env;
}

std::string FaultKindForPath(const std::string& path) {
  std::string_view name(path);
  size_t slash = name.find_last_of("/\\");
  if (slash != std::string_view::npos) name.remove_prefix(slash + 1);
  if (EndsWith(name, ".tmp")) name.remove_suffix(4);
  if (EndsWith(name, ".sst")) return "sst";
  if (StartsWith(name, "MANIFEST-")) return "manifest";
  if (name == "CURRENT") return "current";
  if (StartsWith(name, "wal-") && EndsWith(name, ".log")) return "wal";
  return "file";
}

// ---------------------------------------------------------------------
// FaultInjectionEnv
// ---------------------------------------------------------------------

/// WritableFile wrapper routing every call through the fault gate.
/// The site kind is fixed at open time from the file's path. Not in an
/// anonymous namespace: FaultInjectionEnv befriends it by name.
class FaultInjectedFile : public WritableFile {
 public:
  FaultInjectedFile(FaultInjectionEnv* env, std::string kind,
                    std::unique_ptr<WritableFile> base)
      : env_(env), kind_(std::move(kind)), base_(std::move(base)) {}

  bool Append(std::string_view data) override;
  bool Sync() override;
  bool Close() override;

 private:
  FaultInjectionEnv* const env_;
  const std::string kind_;
  std::unique_ptr<WritableFile> base_;
  bool broken_ = false;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectionEnv::FailTimes(const std::string& site, int times) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_[site] = Rule{times, -1};
}

void FaultInjectionEnv::FailAlways(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_[site] = Rule{-1, -1};
}

void FaultInjectionEnv::FailAfterBytes(const std::string& site,
                                       uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_[site] = Rule{-1, static_cast<int64_t>(bytes)};
}

void FaultInjectionEnv::Heal(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.erase(site);
}

void FaultInjectionEnv::HealAll() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
}

void FaultInjectionEnv::CrashAtOp(uint64_t op, bool torn) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_ = static_cast<int64_t>(op);
  crash_torn_ = torn;
  crashed_ = false;
  op_count_ = 0;
}

void FaultInjectionEnv::ClearCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_ = -1;
  crashed_ = false;
}

bool FaultInjectionEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t FaultInjectionEnv::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_count_;
}

bool FaultInjectionEnv::OpAllowed(const std::string& kind, const char* op,
                                  uint64_t append_bytes,
                                  uint64_t* write_allowance) {
  if (write_allowance != nullptr) *write_allowance = 0;
  std::lock_guard<std::mutex> lock(mu_);

  // Crash simulation. WAL sites are exempt (see header): their bytes
  // live in the page cache of the "killed" process and survive.
  if (kind != "wal") {
    const uint64_t index = op_count_++;
    if (crashed_) return false;
    if (crash_at_ >= 0 && index >= static_cast<uint64_t>(crash_at_)) {
      crashed_ = true;
      if (crash_torn_ && write_allowance != nullptr && append_bytes > 0) {
        // The dying write lands a prefix: half the data, at least one
        // byte, never all of it.
        *write_allowance = std::max<uint64_t>(1, append_bytes / 2);
      }
      return false;
    }
  }

  // Site hooks: exact "<kind>.<op>" first, then the bare kind.
  const std::string site = kind + "." + op;
  for (const std::string* key : {&site, &kind}) {
    auto it = rules_.find(*key);
    if (it == rules_.end()) continue;
    Rule& rule = it->second;
    if (rule.byte_budget >= 0) {
      // Torn-write budget: appends drain it; the append that would
      // exceed it writes the remainder and fails; every op on the
      // site fails once the budget is gone.
      if (append_bytes > 0 &&
          static_cast<int64_t>(append_bytes) <= rule.byte_budget) {
        rule.byte_budget -= static_cast<int64_t>(append_bytes);
        return true;
      }
      if (write_allowance != nullptr) {
        *write_allowance = static_cast<uint64_t>(rule.byte_budget);
      }
      rule.byte_budget = 0;
      return false;
    }
    if (rule.fail_remaining != 0) {
      if (rule.fail_remaining > 0) --rule.fail_remaining;
      return false;
    }
  }
  return true;
}

bool FaultInjectedFile::Append(std::string_view data) {
  if (broken_) return false;
  uint64_t allowance = 0;
  if (!env_->OpAllowed(kind_, "append", data.size(), &allowance)) {
    if (allowance > 0) {
      base_->Append(data.substr(0, std::min<size_t>(allowance, data.size())));
    }
    broken_ = true;
    return false;
  }
  return base_->Append(data);
}

bool FaultInjectedFile::Sync() {
  if (broken_) return false;
  if (!env_->OpAllowed(kind_, "sync", 0, nullptr)) {
    broken_ = true;
    return false;
  }
  return base_->Sync();
}

bool FaultInjectedFile::Close() {
  if (broken_) return base_->Close(), false;
  if (!env_->OpAllowed(kind_, "close", 0, nullptr)) {
    base_->Close();
    broken_ = true;
    return false;
  }
  return base_->Close();
}

std::unique_ptr<WritableFile> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  std::string kind = FaultKindForPath(path);
  if (!OpAllowed(kind, "open", 0, nullptr)) return nullptr;
  auto base = base_->NewWritableFile(path);
  if (base == nullptr) return nullptr;
  return std::make_unique<FaultInjectedFile>(this, std::move(kind),
                                             std::move(base));
}

bool FaultInjectionEnv::RenameFile(const std::string& from,
                                   const std::string& to) {
  // Classified by destination: the CURRENT swap renames CURRENT.tmp ->
  // CURRENT and must fault as "current.rename".
  if (!OpAllowed(FaultKindForPath(to), "rename", 0, nullptr)) return false;
  return base_->RenameFile(from, to);
}

bool FaultInjectionEnv::DeleteFile(const std::string& path) {
  if (!OpAllowed(FaultKindForPath(path), "delete", 0, nullptr)) return false;
  return base_->DeleteFile(path);
}

bool FaultInjectionEnv::SyncDir(const std::string& dir) {
  if (!OpAllowed("file", "dirsync", 0, nullptr)) return false;
  return base_->SyncDir(dir);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);  // read-side: never faulted
}

bool FaultInjectionEnv::InjectFault(const char* site) {
  // Split "<kind>.<op>" back apart so wal sites share the crash
  // exemption and rule lookup of every other op.
  std::string s(site);
  size_t dot = s.find('.');
  std::string kind = dot == std::string::npos ? s : s.substr(0, dot);
  std::string op = dot == std::string::npos ? "op" : s.substr(dot + 1);
  return !OpAllowed(kind, op.c_str(), 0, nullptr);
}

}  // namespace bloomrf

// Mini-LSM key-value store: the system substrate standing in for the
// paper's RocksDB v6.3.6 integration (Sect. 9, "Integration in
// RocksDB").
//
// Behaviour mirrored from the paper's setup:
//  - compaction disabled: flushed SSTs accumulate at level 0 and every
//    read consults all of them, newest first;
//  - one full filter block per SST, built through a pluggable
//    FilterPolicy extended with range information (RangeMayMatch);
//  - probe-cost accounting (filter time, I/O wait, deserialization)
//    for the Fig. 12.G breakdown.
//
// Threading model (see README "Storage engine threading model"):
//  - Get/MultiGet/RangeScan/ScanRange/RangeMayMatch are safe from any
//    number of threads concurrently with writers. Each read takes one
//    snapshot of the current immutable Version (active memtable +
//    sealed memtables + SST readers, published through an atomically-
//    swapped shared_ptr) and runs lock-free against that stable list.
//  - Put from multiple threads is serialized by an internal write
//    mutex. When the active memtable fills it is sealed into the
//    current Version and handed to a background flush thread
//    (DbOptions::background_flush, default on), so writers never block
//    on SST fwrite. Flush()/WaitForFlush() drain pending flushes; the
//    destructor drains too.
//
//   DbOptions options;
//   options.dir = "/tmp/db";
//   options.filter_policy = NewBloomRFPolicy(22.0, 1e6);
//   Db db(options);
//   db.Put(42, "value");
//   db.Flush();
//   std::string v;
//   db.Get(42, &v);
//   auto rows = db.RangeScan(40, 50, 100);

#ifndef BLOOMRF_LSM_DB_H_
#define BLOOMRF_LSM_DB_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "lsm/block_cache.h"
#include "lsm/filter_policy.h"
#include "lsm/memtable.h"
#include "lsm/table_reader.h"
#include "lsm/version.h"

namespace bloomrf {

struct DbOptions {
  std::string dir;
  /// Null disables filter blocks entirely.
  std::shared_ptr<FilterPolicy> filter_policy;
  size_t block_size = 4096;
  uint64_t memtable_bytes = 64ull << 20;
  /// Shared LRU cache of parsed data blocks. Null creates a private
  /// cache of `block_cache_bytes` (pass an instance to share across Db
  /// objects); block_cache_bytes == 0 disables caching entirely.
  std::shared_ptr<BlockCache> block_cache;
  size_t block_cache_bytes = 4 << 20;
  /// Sealed memtables are written to SSTs by a background thread;
  /// writers never wait on file I/O. Off = the sealing Put (or Flush
  /// call) writes the SST synchronously, as before this option.
  bool background_flush = true;
  /// Test-only failure injection: when set and returning true, the
  /// next SST write fails as if the disk did. Exercises the
  /// failed-flush retry path without an unwritable filesystem.
  std::function<bool()> flush_fault;
};

struct DbFlushStats {
  double filter_create_seconds = 0;
  uint64_t filter_block_bytes = 0;
  uint64_t sst_files = 0;
};

class Db {
 public:
  explicit Db(DbOptions options);
  /// Drains pending background flushes, then joins the flush thread.
  ~Db();

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  /// Inserts/overwrites a key in the active memtable; seals the
  /// memtable for flushing when it exceeds its budget. With background
  /// flush the SST write happens off-thread and Put returns
  /// immediately; the sealed data stays readable throughout. A sealing
  /// Put returns false when an earlier background flush has failed
  /// (nothing is lost — the data stays buffered and the seal triggers
  /// a retry); non-sealing Puts always succeed.
  bool Put(uint64_t key, std::string_view value);

  /// Point read: active memtable, then the snapshot Version (sealed
  /// memtables newest-first, then L0 tables newest-first through their
  /// filters).
  bool Get(uint64_t key, std::string* value);

  /// Batched point read: result[i] holds keys[i]'s value, or nullopt
  /// when absent. Equivalent to N Get calls but: each table's filter
  /// is probed once per batch via the planned MayContainBatch, keys
  /// surviving the filter are grouped so every data block is read and
  /// parsed once, and repeated blocks are served from the shared LRU
  /// block cache.
  std::vector<std::optional<std::string>> MultiGet(
      std::span<const uint64_t> keys);

  /// Returns up to `limit` entries with keys in [lo, hi], merged over
  /// the memtables and all SSTs (newest value wins on duplicates).
  std::vector<std::pair<uint64_t, std::string>> RangeScan(uint64_t lo,
                                                          uint64_t hi,
                                                          size_t limit = 1024);

  /// Batched range scan: result[i] holds the RangeScan(los[i], his[i],
  /// limit) rows. Equivalent to N RangeScan calls but each table's
  /// filter answers the whole batch through one planned
  /// MayContainRangeBatch (TableReader::RangeMultiProbe), and only the
  /// ranges the filter cannot exclude touch data blocks — served
  /// through the shared block cache, so overlapping ranges parse each
  /// block once. `los` and `his` must have equal length.
  std::vector<std::vector<std::pair<uint64_t, std::string>>> ScanRange(
      std::span<const uint64_t> los, std::span<const uint64_t> his,
      size_t limit = 1024);

  /// True iff some entry may exist in [lo, hi] — the pure filter-path
  /// probe used by the FPR experiments (no block reads on negatives).
  bool RangeMayMatch(uint64_t lo, uint64_t hi);

  /// Seals the active memtable (no-op when empty) and waits until
  /// every sealed memtable has been flushed to an L0 SST. Returns
  /// false if a flush failed; the failed memtable's data stays
  /// readable from the Version's sealed list, and every Flush()/
  /// WaitForFlush() call retries it (in seal order, so SSTs always
  /// install oldest-first) until one succeeds.
  bool Flush();

  /// Waits for already-queued flushes only (does not seal the active
  /// memtable), retrying a previously failed one first. Returns false
  /// while the queue cannot drain.
  bool WaitForFlush();

  const LsmStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  /// Snapshot of flush-side counters. Exact after Flush()/
  /// WaitForFlush(); may lag mid-flight flushes otherwise.
  DbFlushStats flush_stats() const;
  size_t num_tables() const { return versions_.Current()->tables().size(); }
  uint64_t filter_memory_bits() const;
  const std::shared_ptr<BlockCache>& block_cache() const {
    return options_.block_cache;
  }

 private:
  /// Seals the active memtable into the current Version (one atomic
  /// publication swaps in a fresh active and records the old one as
  /// sealed) and appends it to the flush queue — drained by the
  /// background worker, or inline when background_flush is off.
  /// Caller holds write_mu_.
  bool SealActiveLocked();
  /// Writes one sealed memtable to an SST and swaps it for the new
  /// table in the Version. The sealed memtable stays in the Version on
  /// failure.
  bool FlushSealed(const std::shared_ptr<const MemTable>& sealed);
  std::shared_ptr<const TableReader> WriteSst(const MemTable& mem);
  /// Synchronous-mode drain: flushes queued memtables front to back,
  /// stopping (and keeping the failed one at the front for the next
  /// call) on the first failure.
  bool DrainQueueInline();
  void FlushWorker();

  DbOptions options_;

  // Write path: one writer at a time appends to the active memtable
  // and decides sealing; the MemTable itself is internally locked so
  // readers can probe it concurrently.
  std::mutex write_mu_;

  // Read-state publication. version_mu_ serializes read-modify-publish
  // sequences (seal on the write path, install on the flush thread);
  // readers go straight to versions_.Current().
  std::mutex version_mu_;
  VersionSet versions_;

  // Flush pipeline, all guarded by flush_mu_. Sealed memtables drain
  // strictly front to back — a memtable leaves the queue only once its
  // SST is installed (or at shutdown after a final failed retry) — so
  // tables always install in seal order and the Version invariant
  // "every sealed memtable is newer than every table" holds even
  // across failed flushes.
  std::mutex flush_mu_;
  std::condition_variable flush_work_cv_;  // wakes the worker
  std::condition_variable flush_done_cv_;  // wakes Flush()/WaitForFlush()
  std::deque<std::shared_ptr<const MemTable>> flush_queue_;
  // Set when the queue-front flush failed; the worker parks instead of
  // hot-looping, and stays set (every drain call reports false) until
  // a Flush()/WaitForFlush() triggers a retry that succeeds.
  bool flush_error_ = false;
  bool stop_ = false;
  std::mutex inline_drain_mu_;  // serializes sync-mode DrainQueueInline
  std::thread flush_thread_;

  std::atomic<uint64_t> next_file_number_{1};
  LsmStats stats_;
  mutable std::mutex flush_stats_mu_;
  DbFlushStats flush_stats_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_DB_H_

// Mini-LSM key-value store: the system substrate standing in for the
// paper's RocksDB v6.3.6 integration (Sect. 9, "Integration in
// RocksDB").
//
// Behaviour mirrored from the paper's setup:
//  - compaction disabled: flushed SSTs accumulate at level 0 and every
//    read consults all of them, newest first;
//  - one full filter block per SST, built through a pluggable
//    FilterPolicy extended with range information (RangeMayMatch);
//  - probe-cost accounting (filter time, I/O wait, deserialization)
//    for the Fig. 12.G breakdown.
//
// Threading model (see README "Write path & durability"):
//  - Get/MultiGet/RangeScan/ScanRange/RangeMayMatch are safe from any
//    number of threads concurrently with writers. Each read takes one
//    snapshot of the current immutable Version (active memtable +
//    sealed memtables + SST readers, published through an atomically-
//    swapped shared_ptr) and runs lock-free against that stable list.
//  - Put/PutBatch from multiple threads run concurrently: the memtable
//    is an arena-backed concurrent skiplist (CAS-spliced inserts), the
//    WAL batches all concurrent appends into one group-commit write,
//    and the only serialization writers share is a shared_mutex read
//    lock around the seal swap (writers among themselves are
//    lock-free; sealing takes the lock exclusively for one pointer
//    swap + WAL rotation).
//  - Durability: with DbOptions::wal every Put is logged before it is
//    applied; reopening a Db replays the log tail into a fresh
//    memtable and re-opens the existing SSTs, so a crash loses at most
//    the records after the last group commit (none with wal_fsync).
//
//   DbOptions options;
//   options.dir = "/tmp/db";
//   options.filter_policy = NewBloomRFPolicy(22.0, 1e6);
//   Db db(options);
//   db.Put(42, "value");
//   db.Flush();
//   std::string v;
//   db.Get(42, &v);
//   auto rows = db.RangeScan(40, 50, 100);

#ifndef BLOOMRF_LSM_DB_H_
#define BLOOMRF_LSM_DB_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "lsm/block_cache.h"
#include "lsm/filter_policy.h"
#include "lsm/memtable.h"
#include "lsm/table_reader.h"
#include "lsm/version.h"
#include "lsm/wal.h"

namespace bloomrf {

struct DbOptions {
  std::string dir;
  /// Null disables filter blocks entirely.
  std::shared_ptr<FilterPolicy> filter_policy;
  size_t block_size = 4096;
  uint64_t memtable_bytes = 64ull << 20;
  /// Shared LRU cache of parsed data blocks. Null creates a private
  /// cache of `block_cache_bytes` (pass an instance to share across Db
  /// objects); block_cache_bytes == 0 disables caching entirely.
  std::shared_ptr<BlockCache> block_cache;
  size_t block_cache_bytes = 4 << 20;
  /// Sealed memtables are written to SSTs by a background thread;
  /// writers never wait on file I/O. Off = the sealing Put (or Flush
  /// call) writes the SST synchronously, as before this option.
  bool background_flush = true;
  /// Write-ahead log: every Put/PutBatch is group-committed to a
  /// CRC-framed log before it is applied, the log rotates at each
  /// memtable seal and is deleted once that memtable's flush has
  /// completed, and opening a Db replays any surviving logs. Off =
  /// the pre-WAL behaviour (a crash loses the memtable).
  bool wal = true;
  /// fdatasync every group commit before Append returns. Off (default)
  /// leaves the OS page cache between commit and disk: a process crash
  /// loses nothing, a power loss can lose the last commits.
  bool wal_fsync = false;
  /// Directory for wal-*.log files; empty = `dir` (set it to place the
  /// log on a separate device).
  std::string wal_dir;
  /// Test-only failure injection: when set and returning true, the
  /// next SST write fails as if the disk did. Exercises the
  /// failed-flush retry path without an unwritable filesystem.
  std::function<bool()> flush_fault;
};

struct DbFlushStats {
  double filter_create_seconds = 0;
  uint64_t filter_block_bytes = 0;
  uint64_t sst_files = 0;
};

/// What Db's constructor found and replayed from a previous life of
/// the same directory. Immutable after open.
struct DbRecoveryStats {
  uint64_t tables_loaded = 0;        // existing SSTs re-opened
  uint64_t wal_files_replayed = 0;
  uint64_t wal_records_replayed = 0;
  uint64_t wal_entries_replayed = 0;  // key/value pairs re-applied
  bool wal_clean = true;  // false: replay stopped at a torn/corrupt tail
};

class Db {
 public:
  explicit Db(DbOptions options);
  /// Drains pending background flushes, syncs the WAL, then joins the
  /// flush thread. Unflushed memtable data stays recoverable from the
  /// WAL (when enabled).
  ~Db();

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  /// Inserts/overwrites a key in the active memtable; seals the
  /// memtable for flushing when it exceeds its budget. Safe from any
  /// number of threads concurrently (lock-free skiplist insert behind
  /// a shared seal lock). Returns false when the WAL append failed or
  /// a (possibly earlier, background) flush failed — the data stays
  /// readable in memory either way; see stats().last_error().
  bool Put(uint64_t key, std::string_view value);

  /// Atomicity-of-logging batch write: all of `kvs` go into one WAL
  /// record (one group-commit participant, so recovery applies all or
  /// none of the batch) and one memtable pass. The entries land
  /// individually — concurrent readers may observe a prefix.
  bool PutBatch(std::span<const KV> kvs);

  /// Point read: active memtable, then the snapshot Version (sealed
  /// memtables newest-first, then L0 tables newest-first through their
  /// filters).
  bool Get(uint64_t key, std::string* value);

  /// Batched point read: result[i] holds keys[i]'s value, or nullopt
  /// when absent. Equivalent to N Get calls but: each table's filter
  /// is probed once per batch via the planned MayContainBatch, keys
  /// surviving the filter are grouped so every data block is read and
  /// parsed once, and repeated blocks are served from the shared LRU
  /// block cache.
  std::vector<std::optional<std::string>> MultiGet(
      std::span<const uint64_t> keys);

  /// Returns up to `limit` entries with keys in [lo, hi], merged over
  /// the memtables and all SSTs (newest value wins on duplicates).
  std::vector<std::pair<uint64_t, std::string>> RangeScan(uint64_t lo,
                                                          uint64_t hi,
                                                          size_t limit = 1024);

  /// Batched range scan: result[i] holds the RangeScan(los[i], his[i],
  /// limit) rows. Equivalent to N RangeScan calls but each table's
  /// filter answers the whole batch through one planned
  /// MayContainRangeBatch (TableReader::RangeMultiProbe), and only the
  /// ranges the filter cannot exclude touch data blocks — served
  /// through the shared block cache, so overlapping ranges parse each
  /// block once. `los` and `his` must have equal length.
  std::vector<std::vector<std::pair<uint64_t, std::string>>> ScanRange(
      std::span<const uint64_t> los, std::span<const uint64_t> his,
      size_t limit = 1024);

  /// True iff some entry may exist in [lo, hi] — the pure filter-path
  /// probe used by the FPR experiments (no block reads on negatives).
  bool RangeMayMatch(uint64_t lo, uint64_t hi);

  /// Seals the active memtable (no-op when empty) and waits until
  /// every sealed memtable has been flushed to an L0 SST. Returns
  /// false if a flush failed; the failed memtable's data stays
  /// readable from the Version's sealed list, and every Flush()/
  /// WaitForFlush() call retries it (in seal order, so SSTs always
  /// install oldest-first) until one succeeds.
  bool Flush();

  /// Waits for already-queued flushes only (does not seal the active
  /// memtable), retrying a previously failed one first. Returns false
  /// while the queue cannot drain.
  bool WaitForFlush();

  const LsmStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  /// Snapshot of flush-side counters. Exact after Flush()/
  /// WaitForFlush(); may lag mid-flight flushes otherwise.
  DbFlushStats flush_stats() const;
  /// What open() recovered from the directory (SSTs + WAL replay).
  const DbRecoveryStats& recovery_stats() const { return recovery_stats_; }
  size_t num_tables() const { return versions_.Current()->tables().size(); }
  uint64_t filter_memory_bits() const;
  const std::shared_ptr<BlockCache>& block_cache() const {
    return options_.block_cache;
  }

 private:
  struct QueuedFlush {
    std::shared_ptr<const MemTable> mem;
    /// Highest WAL number containing this memtable's data; logs up to
    /// it are obsolete once the flush durably completes (rotation
    /// guarantees every newer memtable only touches higher numbers).
    uint64_t max_log = 0;
  };

  std::string WalDirPath() const {
    return options_.wal_dir.empty() ? options_.dir : options_.wal_dir;
  }
  /// Loads pre-existing SSTs (file-number order = seal order) and
  /// replays surviving WAL files into the fresh active memtable.
  void Recover();
  /// Opens the next wal-<n>.log and makes it current. Caller holds
  /// seal_mu_ exclusively (or is the constructor).
  void RotateWal();
  /// Removes wal files numbered <= `max_log`.
  void DeleteLogsThrough(uint64_t max_log);
  /// Seals the active memtable into the current Version (one atomic
  /// publication swaps in a fresh active and records the old one as
  /// sealed), rotates the WAL, and queues the flush. `force` seals any
  /// non-empty memtable; otherwise only one still over budget (a
  /// concurrent sealer may have won).
  bool SealActive(bool force);
  /// Writes one sealed memtable to an SST and swaps it for the new
  /// table in the Version. The sealed memtable stays in the Version on
  /// failure.
  bool FlushSealed(const QueuedFlush& entry);
  std::shared_ptr<const TableReader> WriteSst(const MemTable& mem);
  /// Synchronous-mode drain: flushes queued memtables front to back,
  /// stopping (and keeping the failed one at the front for the next
  /// call) on the first failure.
  bool DrainQueueInline();
  void FlushWorker();

  DbOptions options_;

  // Write path. Writers take seal_mu_ shared — among themselves they
  // are lock-free (concurrent skiplist inserts, group-committed WAL
  // appends). Sealing takes it exclusive for the active-memtable swap
  // and WAL rotation, which is what keeps "record in log N" and
  // "entry in memtable sealed with max_log >= N" in lockstep.
  std::shared_mutex seal_mu_;
  std::shared_ptr<MemTable> active_;   // == versions_.Current()->active()
  std::unique_ptr<WalWriter> wal_;     // null when options_.wal is off
  uint64_t next_wal_number_ = 1;       // guarded by seal_mu_
  uint64_t active_max_log_ = 0;        // guarded by seal_mu_

  // Read-state publication. version_mu_ serializes read-modify-publish
  // sequences (seal on the write path, install on the flush thread);
  // readers go straight to versions_.Current().
  std::mutex version_mu_;
  VersionSet versions_;

  // Flush pipeline, all guarded by flush_mu_. Sealed memtables drain
  // strictly front to back — a memtable leaves the queue only once its
  // SST is installed (or at shutdown after a final failed retry) — so
  // tables always install in seal order and the Version invariant
  // "every sealed memtable is newer than every table" holds even
  // across failed flushes.
  std::mutex flush_mu_;
  std::condition_variable flush_work_cv_;  // wakes the worker
  std::condition_variable flush_done_cv_;  // wakes Flush()/WaitForFlush()
  std::deque<QueuedFlush> flush_queue_;
  // Set when the queue-front flush failed; the worker parks instead of
  // hot-looping, and stays set (every drain call reports false) until
  // a Flush()/WaitForFlush() triggers a retry that succeeds.
  bool flush_error_ = false;
  bool stop_ = false;
  std::mutex inline_drain_mu_;  // serializes sync-mode DrainQueueInline
  std::thread flush_thread_;

  std::atomic<uint64_t> next_file_number_{1};
  LsmStats stats_;
  DbRecoveryStats recovery_stats_;
  mutable std::mutex flush_stats_mu_;
  DbFlushStats flush_stats_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_DB_H_

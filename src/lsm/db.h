// Mini-LSM key-value store: the system substrate standing in for the
// paper's RocksDB v6.3.6 integration (Sect. 9, "Integration in
// RocksDB").
//
// Behaviour mirrored from the paper's setup:
//  - compaction disabled: flushed SSTs accumulate at level 0 and every
//    read consults all of them, newest first;
//  - one full filter block per SST, built through a pluggable
//    FilterPolicy extended with range information (RangeMayMatch);
//  - probe-cost accounting (filter time, I/O wait, deserialization)
//    for the Fig. 12.G breakdown.
//
//   DbOptions options;
//   options.dir = "/tmp/db";
//   options.filter_policy = NewBloomRFPolicy(22.0, 1e6);
//   Db db(options);
//   db.Put(42, "value");
//   db.Flush();
//   std::string v;
//   db.Get(42, &v);
//   auto rows = db.RangeScan(40, 50, 100);

#ifndef BLOOMRF_LSM_DB_H_
#define BLOOMRF_LSM_DB_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "lsm/block_cache.h"
#include "lsm/filter_policy.h"
#include "lsm/memtable.h"
#include "lsm/table_reader.h"

namespace bloomrf {

struct DbOptions {
  std::string dir;
  /// Null disables filter blocks entirely.
  std::shared_ptr<FilterPolicy> filter_policy;
  size_t block_size = 4096;
  uint64_t memtable_bytes = 64ull << 20;
  /// Shared LRU cache of parsed data blocks. Null creates a private
  /// cache of `block_cache_bytes` (pass an instance to share across Db
  /// objects); block_cache_bytes == 0 disables caching entirely.
  std::shared_ptr<BlockCache> block_cache;
  size_t block_cache_bytes = 4 << 20;
};

struct DbFlushStats {
  double filter_create_seconds = 0;
  uint64_t filter_block_bytes = 0;
  uint64_t sst_files = 0;
};

class Db {
 public:
  explicit Db(DbOptions options);

  /// Inserts/overwrites a key in the memtable; flushes automatically
  /// when the memtable exceeds its budget.
  bool Put(uint64_t key, std::string_view value);

  /// Point read: memtable first, then L0 tables newest-first through
  /// their filters.
  bool Get(uint64_t key, std::string* value);

  /// Batched point read: result[i] holds keys[i]'s value, or nullopt
  /// when absent. Equivalent to N Get calls but: each table's filter
  /// is probed once per batch via the planned MayContainBatch, keys
  /// surviving the filter are grouped so every data block is read and
  /// parsed once, and repeated blocks are served from the shared LRU
  /// block cache.
  std::vector<std::optional<std::string>> MultiGet(
      std::span<const uint64_t> keys);

  /// Returns up to `limit` entries with keys in [lo, hi], merged over
  /// the memtable and all SSTs (newest value wins on duplicates).
  std::vector<std::pair<uint64_t, std::string>> RangeScan(uint64_t lo,
                                                          uint64_t hi,
                                                          size_t limit = 1024);

  /// Batched range scan: result[i] holds the RangeScan(los[i], his[i],
  /// limit) rows. Equivalent to N RangeScan calls but each table's
  /// filter answers the whole batch through one planned
  /// MayContainRangeBatch (TableReader::RangeMultiProbe), and only the
  /// ranges the filter cannot exclude touch data blocks — served
  /// through the shared block cache, so overlapping ranges parse each
  /// block once. `los` and `his` must have equal length.
  std::vector<std::vector<std::pair<uint64_t, std::string>>> ScanRange(
      std::span<const uint64_t> los, std::span<const uint64_t> his,
      size_t limit = 1024);

  /// True iff some entry may exist in [lo, hi] — the pure filter-path
  /// probe used by the FPR experiments (no block reads on negatives).
  bool RangeMayMatch(uint64_t lo, uint64_t hi);

  /// Flushes the memtable to a new L0 SST. No-op when empty.
  bool Flush();

  const LsmStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  const DbFlushStats& flush_stats() const { return flush_stats_; }
  size_t num_tables() const { return tables_.size(); }
  uint64_t filter_memory_bits() const;
  const std::shared_ptr<BlockCache>& block_cache() const {
    return options_.block_cache;
  }

 private:
  DbOptions options_;
  MemTable memtable_;
  std::vector<std::unique_ptr<TableReader>> tables_;  // newest last
  uint64_t next_file_number_ = 1;
  LsmStats stats_;
  DbFlushStats flush_stats_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_DB_H_

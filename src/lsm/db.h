// Mini-LSM key-value store: the system substrate standing in for the
// paper's RocksDB v6.3.6 integration (Sect. 9, "Integration in
// RocksDB").
//
// Behaviour mirrored from the paper's setup:
//  - compaction disabled by default: flushed SSTs accumulate at level
//    0 and every read consults all of them, newest first (the paper's
//    measurement configuration). DbOptions::compaction enables a
//    background leveled compaction (L0 by file count, deeper levels by
//    byte budget) that keeps read amplification bounded;
//  - one full filter block per SST, built through a pluggable
//    FilterPolicy extended with range information (RangeMayMatch);
//  - probe-cost accounting (filter time, I/O wait, deserialization)
//    for the Fig. 12.G breakdown.
//
// Threading model (see README "Write path & durability"):
//  - Get/MultiGet/RangeScan/ScanRange/RangeMayMatch are safe from any
//    number of threads concurrently with writers. Each read takes one
//    snapshot of the current immutable Version (active memtable +
//    sealed memtables + leveled SST tree, published through an
//    atomically-swapped shared_ptr) and runs lock-free against it.
//  - Put/PutBatch from multiple threads run concurrently: the memtable
//    is an arena-backed concurrent skiplist (CAS-spliced inserts), the
//    WAL batches all concurrent appends into one group-commit write,
//    and the only serialization writers share is a shared_mutex read
//    lock around the seal swap (writers among themselves are
//    lock-free; sealing takes the lock exclusively for one pointer
//    swap + WAL rotation).
//  - Durability: with DbOptions::wal every Put is logged before it is
//    applied. The durable table state lives in a versioned MANIFEST
//    (see lsm/manifest.h): every flush and compaction appends a synced
//    edit before its Version publishes, recovery replays CURRENT →
//    MANIFEST → WAL in that order, and an SST is fsynced and renamed
//    into place before the manifest references it — so a crash at any
//    instant loses at most the records after the last group commit
//    (none with wal_fsync) and never loses, duplicates or resurrects
//    a flushed key.
//  - Deletes are first-class tombstones: Delete/DeleteBatch log a
//    delete record, write a tombstone through the memtable, and the
//    tombstone rides flushes into v3 SSTs where it shadows every older
//    value of its key on all read paths. Compaction physically drops a
//    tombstone only when no level below its output can still hold the
//    key (see lsm/compaction.h TombstoneShadow) — so a deleted key can
//    never resurrect, not even across crashes or legacy-table imports.
//
//   DbOptions options;
//   options.dir = "/tmp/db";
//   options.filter_policy = NewBloomRFPolicy(22.0, 1e6);
//   Db db(options);
//   db.Put(42, "value");
//   db.Flush();
//   std::string v;
//   db.Get(42, &v);
//   auto rows = db.RangeScan(40, 50, 100);

#ifndef BLOOMRF_LSM_DB_H_
#define BLOOMRF_LSM_DB_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "lsm/block_cache.h"
#include "lsm/compaction.h"
#include "lsm/env.h"
#include "lsm/filter_policy.h"
#include "lsm/manifest.h"
#include "lsm/memtable.h"
#include "lsm/table_reader.h"
#include "lsm/version.h"
#include "lsm/wal.h"
#include "util/backoff.h"
#include "util/thread_pool.h"

namespace bloomrf {

struct DbOptions {
  std::string dir;
  /// Null disables filter blocks entirely.
  std::shared_ptr<FilterPolicy> filter_policy;
  size_t block_size = 4096;
  uint64_t memtable_bytes = 64ull << 20;
  /// Shared LRU cache of parsed data blocks. Null creates a private
  /// cache of `block_cache_bytes` (pass an instance to share across Db
  /// objects); block_cache_bytes == 0 disables caching entirely.
  std::shared_ptr<BlockCache> block_cache;
  size_t block_cache_bytes = 4 << 20;
  /// Sealed memtables are written to SSTs by a background thread;
  /// writers never wait on file I/O. Off = the sealing Put (or Flush
  /// call) writes the SST synchronously, as before this option.
  bool background_flush = true;
  /// Write-ahead log: every Put/PutBatch is group-committed to a
  /// CRC-framed log before it is applied, the log rotates at each
  /// memtable seal and is deleted once that memtable's flush has
  /// committed to the MANIFEST, and opening a Db replays any surviving
  /// logs newer than the manifest's flushed-through log number. Off =
  /// the pre-WAL behaviour (a crash loses the memtable).
  bool wal = true;
  /// fdatasync every group commit before Append returns. Off (default)
  /// leaves the OS page cache between commit and disk: a process crash
  /// loses nothing, a power loss can lose the last commits.
  bool wal_fsync = false;
  /// Directory for wal-*.log files; empty = `dir` (set it to place the
  /// log on a separate device).
  std::string wal_dir;
  /// Filesystem seam for every durable mutation: SST/MANIFEST/CURRENT
  /// creation, renames, deletions, directory syncs. Null = the
  /// process-wide POSIX Env. Tests pass a FaultInjectionEnv here to
  /// fail or "crash" any individual call site (see lsm/env.h).
  Env* env = nullptr;
  /// Background leveled compaction. Off (the paper's measurement
  /// setup) leaves every flushed SST at L0. On, a scheduler of
  /// compaction_threads workers merges L0 into L1 whenever L0 reaches
  /// l0_compaction_trigger files, and level i (>= 1) into level i+1
  /// whenever it exceeds level_base_bytes *
  /// level_size_multiplier^(i-1). Failed compactions retry with
  /// exponential backoff and never unpublish readable state (see
  /// stats().last_error()).
  bool compaction = false;
  size_t l0_compaction_trigger = 4;
  uint64_t level_base_bytes = 8ull << 20;
  size_t level_size_multiplier = 8;
  size_t max_levels = 6;
  /// Scheduler workers for background compaction: that many jobs on
  /// disjoint level pairs run concurrently (an L0->L1 merge while
  /// L2->L3 proceeds), each claiming its input + output levels so two
  /// jobs can never pick overlapping inputs. 1 = the serial behaviour.
  /// Also the default subcompaction fan-out.
  size_t compaction_threads = 1;
  /// Range-partitioned subcompactions: one large job's key space is
  /// split into up to this many disjoint ranges (cut at input-table
  /// boundary keys weighted by bytes), each merged on its own worker
  /// writing its own outputs, all committed in ONE manifest edit. 0 =
  /// match compaction_threads.
  size_t max_subcompactions = 0;
  /// Jobs with fewer total input bytes than this merge serially — the
  /// split bookkeeping would cost more than it buys. Tests lower it to
  /// force subcompactions on tiny trees.
  uint64_t subcompaction_min_bytes = 8ull << 20;
  /// Worker pool the subcompactions fan out on; pass one instance to
  /// share it across Dbs (ShardedDb hands every shard the same pool).
  /// Null creates a private pool sized to the subcompaction fan-out.
  /// The merging thread steals queued tasks while it waits, so even a
  /// 0-thread pool makes full progress.
  std::shared_ptr<ThreadPool> compaction_pool;
  /// The live MANIFEST is rewritten as a one-record snapshot once it
  /// grows past this many bytes (and on any append failure).
  uint64_t manifest_rewrite_bytes = 1ull << 20;
  /// Workload sampling for the adaptive filter loop: every read path
  /// (Get/MultiGet/RangeScan/ScanRange/RangeMayMatch) records a
  /// 1-in-2^sampler_period_log2 sample of its queries into a
  /// WorkloadSampler, which flush and compaction hand to the filter
  /// policy at build time. On automatically when the policy wants
  /// feedback (AdaptiveFilterPolicy); `sample_queries` forces it on
  /// for any policy. A non-null `workload_sampler` is used as-is
  /// (sharing one sampler across Dbs); null auto-creates one.
  bool sample_queries = false;
  std::shared_ptr<WorkloadSampler> workload_sampler;
  uint32_t sampler_period_log2 = 6;
};

struct DbFlushStats {
  double filter_create_seconds = 0;
  uint64_t filter_block_bytes = 0;
  uint64_t sst_files = 0;
};

/// What Db's constructor found and replayed from a previous life of
/// the same directory. Immutable after open.
struct DbRecoveryStats {
  uint64_t tables_loaded = 0;        // manifest-referenced SSTs re-opened
  uint64_t manifest_edits_replayed = 0;
  bool manifest_clean = true;  // false: manifest replay stopped at a torn tail
  /// True when the directory predates the MANIFEST: its *.sst files
  /// were imported into L0 by number order (one-shot; this open writes
  /// the first manifest).
  bool legacy_import = false;
  /// Manifest-referenced SSTs that failed open-time validation and
  /// were renamed aside as <name>.corrupt.
  uint64_t tables_quarantined = 0;
  uint64_t wal_files_replayed = 0;
  /// Logs at or below the manifest's flushed-through number: their
  /// data already lives in SSTs, so they are deleted without replay.
  uint64_t wal_files_skipped = 0;
  uint64_t wal_records_replayed = 0;
  uint64_t wal_entries_replayed = 0;  // key/value pairs re-applied
  bool wal_clean = true;  // false: replay stopped at a torn/corrupt tail
};

class Db {
 public:
  explicit Db(DbOptions options);
  /// Drains pending background flushes, parks the compaction thread,
  /// syncs the WAL, then joins both threads. Unflushed memtable data
  /// stays recoverable from the WAL (when enabled).
  ~Db();

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  /// Inserts/overwrites a key in the active memtable; seals the
  /// memtable for flushing when it exceeds its budget. Safe from any
  /// number of threads concurrently (lock-free skiplist insert behind
  /// a shared seal lock). Returns false when the WAL append failed or
  /// a (possibly earlier, background) flush failed — the data stays
  /// readable in memory either way; see stats().last_error().
  bool Put(uint64_t key, std::string_view value);

  /// Atomicity-of-logging batch write: all of `kvs` go into one WAL
  /// record (one group-commit participant, so recovery applies all or
  /// none of the batch) and one memtable pass. The entries land
  /// individually — concurrent readers may observe a prefix.
  bool PutBatch(std::span<const KV> kvs);

  /// Deletes a key: a tombstone is logged (delete record) and written
  /// through the memtable, shadowing every older value of the key on
  /// all read paths until compaction proves nothing deeper can hold
  /// the key and physically drops it. Deleting an absent key is legal
  /// (the tombstone is kept until the same proof). Same concurrency
  /// and error semantics as Put.
  bool Delete(uint64_t key);

  /// Batched delete: one WAL record (all-or-nothing on recovery), one
  /// memtable pass. Mirrors PutBatch.
  bool DeleteBatch(std::span<const uint64_t> keys);

  /// Mixed put/delete batch in one WAL record — recovery applies all
  /// of it or none. Ops apply in order (a later op on the same key
  /// wins).
  bool WriteBatch(std::span<const WriteOp> ops);

  /// Point read: active memtable, then the snapshot Version (sealed
  /// memtables newest-first, L0 newest-first, then each deeper level).
  /// The walk stops at the newest entry for the key — a tombstone
  /// there answers "absent" without consulting older sources.
  bool Get(uint64_t key, std::string* value);

  /// Batched point read: result[i] holds keys[i]'s value, or nullopt
  /// when absent. Equivalent to N Get calls but: each table's filter
  /// is probed once per batch via the planned MayContainBatch, keys
  /// surviving the filter are grouped so every data block is read and
  /// parsed once, and repeated blocks are served from the shared LRU
  /// block cache.
  std::vector<std::optional<std::string>> MultiGet(
      std::span<const uint64_t> keys);

  /// Returns up to `limit` entries with keys in [lo, hi], merged over
  /// the memtables and all SSTs (newest value wins on duplicates).
  std::vector<std::pair<uint64_t, std::string>> RangeScan(uint64_t lo,
                                                          uint64_t hi,
                                                          size_t limit = 1024);

  /// Batched range scan: result[i] holds the RangeScan(los[i], his[i],
  /// limit) rows. Equivalent to N RangeScan calls but each table's
  /// filter answers the whole batch through one planned
  /// MayContainRangeBatch (TableReader::RangeMultiProbe), and only the
  /// ranges the filter cannot exclude touch data blocks — served
  /// through the shared block cache, so overlapping ranges parse each
  /// block once. `los` and `his` must have equal length.
  std::vector<std::vector<std::pair<uint64_t, std::string>>> ScanRange(
      std::span<const uint64_t> los, std::span<const uint64_t> his,
      size_t limit = 1024);

  /// True iff some entry may exist in [lo, hi] — the pure filter-path
  /// probe used by the FPR experiments (no block reads on negatives).
  bool RangeMayMatch(uint64_t lo, uint64_t hi);

  /// Seals the active memtable (no-op when empty) and waits until
  /// every sealed memtable has been flushed to an L0 SST. Returns
  /// false if a flush failed; the failed memtable's data stays
  /// readable from the Version's sealed list, and every Flush()/
  /// WaitForFlush() call retries it (in seal order, so SSTs always
  /// install oldest-first) until one succeeds.
  bool Flush();

  /// Waits for already-queued flushes only (does not seal the active
  /// memtable), retrying a previously failed one first. Returns false
  /// while the queue cannot drain.
  bool WaitForFlush();

  /// Kicks the compaction scheduler and waits until the whole pipeline
  /// drains — every trigger satisfied, no queued pick, no in-flight
  /// job or subcompaction worker, no manual compaction — or a
  /// compaction fails (returns false then, after clearing the error so
  /// the call acts as a retry). No-op true when compaction is off.
  /// Never blocks indefinitely on a broken disk.
  bool WaitForCompaction();

  /// Manually compacts every table overlapping [begin, end] into one
  /// fresh run at the deepest level those tables populate. The input
  /// range grows to whole-file boundaries (a file straddling the edge
  /// is compacted entirely, and the growth iterates to a fixpoint), so
  /// level disjointness and newest-wins precedence survive. Runs on
  /// the caller's thread through the same subcompaction machinery as
  /// background jobs, after waiting out in-flight jobs (workers pause
  /// picking while a manual compaction holds the tree); safe with
  /// background compaction on or off. Each output is rebuilt through
  /// the filter policy with the current workload snapshot. True when
  /// there was nothing to do; false when a flush or the merge failed.
  bool CompactRange(uint64_t begin, uint64_t end);

  /// CompactRange over the whole key space — the "re-tune every table
  /// now" lever for the adaptive filter loop, and the full-merge used
  /// by the tombstone-purge tests (nothing ends below the output, so
  /// every tombstone drops).
  bool CompactAll();

  /// The sampler observing this Db's queries; null unless sampling is
  /// on (see DbOptions::sample_queries).
  const std::shared_ptr<WorkloadSampler>& workload_sampler() const {
    return options_.workload_sampler;
  }

  /// Aggregated filter probe outcomes of every live table, grouped by
  /// filter backend — the measured-FPR feedback the planner uses to
  /// distrust a diverging model.
  FilterFeedback CollectFilterFeedback() const;

  const LsmStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  /// Snapshot of flush-side counters. Exact after Flush()/
  /// WaitForFlush(); may lag mid-flight flushes otherwise.
  DbFlushStats flush_stats() const;
  /// What open() recovered from the directory (MANIFEST + SSTs + WAL).
  const DbRecoveryStats& recovery_stats() const { return recovery_stats_; }
  size_t num_tables() const { return versions_.Current()->table_count(); }
  /// File count per level of the current Version (index 0 = L0).
  std::vector<size_t> level_table_counts() const;
  uint64_t filter_memory_bits() const;
  const std::shared_ptr<BlockCache>& block_cache() const {
    return options_.block_cache;
  }

 private:
  struct QueuedFlush {
    std::shared_ptr<const MemTable> mem;
    /// Highest WAL number containing this memtable's data; logs up to
    /// it are obsolete once the flush durably completes (rotation
    /// guarantees every newer memtable only touches higher numbers).
    uint64_t max_log = 0;
  };

  std::string WalDirPath() const {
    return options_.wal_dir.empty() ? options_.dir : options_.wal_dir;
  }
  std::string SstPath(uint64_t file_number) const {
    return options_.dir + "/" + std::to_string(file_number) + ".sst";
  }
  /// Rebuilds the table tree from CURRENT → MANIFEST (falling back to
  /// the newest manifest on disk, then to a legacy *.sst import),
  /// quarantines unreadable tables, writes a fresh snapshot manifest
  /// for this life, and replays surviving WAL files into the fresh
  /// active memtable.
  void Recover();
  /// Opens the manifest-referenced tables into a level structure;
  /// shared by the CURRENT and fallback recovery paths.
  std::vector<Version::TableList> OpenTablesFromManifest(
      const ManifestState& state, uint64_t* max_file_seen);
  /// Renames an unreadable SST to <path>.corrupt so recovery does not
  /// retry it forever, and accounts it.
  void QuarantineTable(const std::string& path);
  /// Opens the next wal-<n>.log and makes it current. Caller holds
  /// seal_mu_ exclusively (or is the constructor).
  void RotateWal();
  /// Removes wal files numbered <= `max_log`.
  void DeleteLogsThrough(uint64_t max_log);
  /// Seals the active memtable into the current Version (one atomic
  /// publication swaps in a fresh active and records the old one as
  /// sealed), rotates the WAL, and queues the flush. `force` seals any
  /// non-empty memtable; otherwise only one still over budget (a
  /// concurrent sealer may have won).
  bool SealActive(bool force);
  /// Writes one sealed memtable to an SST, appends the manifest edit,
  /// and swaps the memtable for the new table in the Version. The
  /// sealed memtable stays in the Version on any failure.
  bool FlushSealed(const QueuedFlush& entry);
  /// Durably writes `mem` as a new SST through env_ and reopens it;
  /// fills *meta with its manifest metadata.
  std::shared_ptr<const TableReader> WriteSst(const MemTable& mem,
                                              FileMeta* meta);
  /// Recomputes the tombstones_live gauge (sum of v3 footer counts
  /// over the current Version's SSTs). Called after every publication
  /// that changes the table set.
  void UpdateTombstonesLive();
  /// Shared scan core: newest-first tombstone-aware merge over one
  /// Version snapshot, deepening its per-source budget until the
  /// result provably holds the first `limit` live rows of [lo, hi].
  std::vector<std::pair<uint64_t, std::string>> ScanVersion(
      const Version& version, uint64_t lo, uint64_t hi, size_t limit);
  /// Synchronous-mode drain: flushes queued memtables front to back,
  /// stopping (and keeping the failed one at the front for the next
  /// call) on the first failure.
  bool DrainQueueInline();
  void FlushWorker();

  /// Appends `edit` to the live manifest, or — when the manifest is
  /// broken, absent, or past its rewrite threshold — replaces it with
  /// a fresh one whose first record snapshots `post` (the Version the
  /// edit produces). Caller holds version_mu_. False means the edit is
  /// NOT durable and the caller must not publish the state change.
  bool AppendManifestEdit(const VersionEdit& edit, const Version& post);
  /// Writes MANIFEST-<next>, snapshots `v` into it, swaps CURRENT, and
  /// deletes the previous manifest. Caller holds version_mu_.
  bool WriteManifestSnapshotLocked(const Version& v);

  void MaybeScheduleCompaction();
  /// One subcompaction's private output state; folded into the job's
  /// single manifest edit only when every range succeeded.
  struct SubcompactionResult {
    Version::TableList outputs;        // in key order within the range
    std::vector<FileMeta> metas;
    std::vector<std::string> paths;    // for cleanup on job failure
    uint64_t bytes_written = 0;
    uint64_t tombstones_written = 0;
    uint64_t tombstones_dropped = 0;
    bool ok = false;
    std::string error;
  };
  /// DbOptions::max_subcompactions with its 0 = compaction_threads
  /// default resolved.
  size_t EffectiveSubcompactions() const;
  /// Merges `job`'s inputs restricted to keys in [lo, hi]: k-way merge
  /// (newest input wins duplicates), tombstones dropped per `shadow`,
  /// outputs split near the level's file-size target. Runs on a
  /// subcompaction worker; touches only atomics, the shared read-only
  /// job state, and its own `result`.
  void MergeRange(const CompactionJob& job, const TombstoneShadow& shadow,
                  const FilterBuildContext* build_ctx, uint64_t lo,
                  uint64_t hi, SubcompactionResult* result);
  /// Executes one job: splits it into range-partitioned subcompactions
  /// (PickSubcompactionRanges), merges them in parallel on the shared
  /// pool, and commits every output in ONE manifest edit + Version
  /// publication, then deletes the input files. False on any I/O
  /// failure — all outputs are removed, inputs stay published, the
  /// store remains fully readable.
  bool RunCompaction(const CompactionJob& job);
  void CompactionWorker();

  DbOptions options_;
  Env* env_ = nullptr;  // resolved: options_.env or Env::Default()
  /// Raw alias of options_.workload_sampler (hot-path access without a
  /// shared_ptr copy); null when sampling is off.
  WorkloadSampler* sampler_ = nullptr;

  // Write path. Writers take seal_mu_ shared — among themselves they
  // are lock-free (concurrent skiplist inserts, group-committed WAL
  // appends). Sealing takes it exclusive for the active-memtable swap
  // and WAL rotation, which is what keeps "record in log N" and
  // "entry in memtable sealed with max_log >= N" in lockstep.
  std::shared_mutex seal_mu_;
  std::shared_ptr<MemTable> active_;   // == versions_.Current()->active()
  std::unique_ptr<WalWriter> wal_;     // null when options_.wal is off
  uint64_t next_wal_number_ = 1;       // guarded by seal_mu_
  uint64_t active_max_log_ = 0;        // guarded by seal_mu_

  // Read-state publication. version_mu_ serializes read-modify-publish
  // sequences (seal on the write path, install on the flush thread,
  // replace on the compaction thread) and the manifest append that
  // makes each publication durable; readers go straight to
  // versions_.Current().
  std::mutex version_mu_;
  VersionSet versions_;

  // Manifest state, guarded by version_mu_ (every edit is appended in
  // the same critical section as the publication it describes).
  std::unique_ptr<ManifestWriter> manifest_;
  uint64_t next_manifest_number_ = 1;
  uint64_t manifest_rewrite_limit_ = 0;
  /// Highest WAL number whose data has fully reached manifest-committed
  /// SSTs; recovery skips logs at or below it.
  uint64_t flushed_through_log_ = 0;

  // Flush pipeline, all guarded by flush_mu_. Sealed memtables drain
  // strictly front to back — a memtable leaves the queue only once its
  // SST is installed (or at shutdown after a final failed retry) — so
  // tables always install in seal order and the Version invariant
  // "every sealed memtable is newer than every table" holds even
  // across failed flushes.
  std::mutex flush_mu_;
  std::condition_variable flush_work_cv_;  // wakes the worker
  std::condition_variable flush_done_cv_;  // wakes Flush()/WaitForFlush()
  std::deque<QueuedFlush> flush_queue_;
  // Set when the queue-front flush failed; the worker parks instead of
  // hot-looping, and stays set (every drain call reports false) until
  // a Flush()/WaitForFlush() triggers a retry that succeeds.
  bool flush_error_ = false;
  bool stop_ = false;
  std::mutex inline_drain_mu_;  // serializes sync-mode DrainQueueInline
  std::thread flush_thread_;

  // Compaction scheduler, guarded by compact_mu_. compaction_threads
  // workers each loop pick -> claim levels -> run -> release: a worker
  // re-picks from the freshest Version with the busy-level mask, so
  // concurrent jobs always work disjoint level pairs. compact_epoch_
  // increments on every job completion / manual handover — a worker
  // that found nothing pickable (levels busy) parks on it instead of
  // spinning. compact_requested_ clears only when nothing is pickable
  // AND nothing is in flight. A failed job sets compact_error_
  // (visible through WaitForCompaction) and its worker owns the
  // exponential-backoff retry while the others park.
  std::mutex compact_mu_;
  std::condition_variable compact_work_cv_;  // wakes the workers
  std::condition_variable compact_done_cv_;  // wakes WaitForCompaction
  bool compact_requested_ = false;
  bool compact_error_ = false;
  bool compact_stop_ = false;
  bool manual_compact_active_ = false;  // CompactRange holds the tree
  uint64_t compact_busy_levels_ = 0;    // claim bitmask of in-flight jobs
  size_t compact_inflight_ = 0;         // background jobs running
  uint64_t compact_epoch_ = 0;          // bumped on scheduler state change
  std::vector<std::thread> compact_threads_;
  CompactionConfig compact_cfg_;
  std::vector<uint64_t> compact_cursors_;  // guarded by compact_mu_
  Backoff compact_backoff_;                // guarded by compact_mu_
  /// Subcompaction fan-out pool (options_.compaction_pool or private);
  /// shared across every job of this Db, and across shards when the
  /// ShardedDb passes one pool in.
  std::shared_ptr<ThreadPool> subcompact_pool_;

  std::atomic<uint64_t> next_file_number_{1};
  LsmStats stats_;
  DbRecoveryStats recovery_stats_;
  mutable std::mutex flush_stats_mu_;
  DbFlushStats flush_stats_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_DB_H_

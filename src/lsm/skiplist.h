// Concurrent skiplist keyed by uint64, the ordered index inside the
// memtable (the paper's Problem 2 notes KV-stores absorb new data in a
// searched main-memory delta — HashSkipLists in RocksDB; this is that
// structure, grown a lock-free write path).
//
// Concurrency model:
//  - Inserts from any number of threads: nodes are spliced level by
//    level with CAS loops (bottom level first — a node is logically in
//    the list once its level-0 link lands; upper levels are shortcuts
//    that may trail briefly). Only insert/insert races need handling:
//    a loser whose key was inserted concurrently converts into an
//    overwrite of the winner's node.
//  - Readers are lock-free and never retry: next pointers are
//    acquire-loaded and only ever step forward (links are never
//    unlinked — nodes live as long as the arena), so iteration is
//    wait-free per step.
//  - Overwrites swap the node's value pointer atomically; readers see
//    either the old or the new complete value, never a mix.
//
// Nodes and values live in the caller's Arena; the list itself holds
// no owning state and is destroyed by dropping the arena with it.

#ifndef BLOOMRF_LSM_SKIPLIST_H_
#define BLOOMRF_LSM_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdint>

#include "util/arena.h"
#include "util/hash.h"

namespace bloomrf {

class SkipList {
 private:
  struct Node;  // defined below; Iterator refers to it

 public:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  explicit SkipList(Arena* arena)
      : arena_(arena), head_(NewNode(0, kMaxHeight)), max_height_(1) {
    for (int i = 0; i < kMaxHeight; ++i) {
      head_->next[i].store(nullptr, std::memory_order_relaxed);
    }
  }
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts `key` -> `value` (an arena-stable pointer, opaque to the
  /// list) or overwrites an existing node's value. Returns the
  /// previous value pointer on overwrite, nullptr on fresh insert.
  /// Safe against concurrent Insert and readers.
  const char* Insert(uint64_t key, const char* value) {
    Node* prev[kMaxHeight];
    Node* next[kMaxHeight];
    FindSplice(key, prev, next);
    if (next[0] != nullptr && next[0]->key == key) {
      return next[0]->value.exchange(value, std::memory_order_acq_rel);
    }

    int height = RandomHeight();
    int max_h = max_height_.load(std::memory_order_relaxed);
    while (height > max_h) {
      if (max_height_.compare_exchange_weak(max_h, height,
                                            std::memory_order_relaxed)) {
        break;
      }
      // max_h reloaded by compare_exchange; a taller list is fine —
      // the splice below starts from head_ at any height.
    }

    Node* node = NewNode(key, height);
    node->value.store(value, std::memory_order_relaxed);
    for (int level = 0; level < height; ++level) {
      for (;;) {
        node->next[level].store(next[level], std::memory_order_relaxed);
        // Release so the node's key/value/links are visible once any
        // thread reaches it through this link.
        if (prev[level]->next[level].compare_exchange_strong(
                next[level], node, std::memory_order_release,
                std::memory_order_relaxed)) {
          break;
        }
        // Splice moved under us: recompute this level from the old
        // prev (keys only ever get denser, prev is still <= key).
        FindSpliceForLevel(key, prev[level], level, &prev[level],
                           &next[level]);
        if (level == 0 && next[0] != nullptr && next[0]->key == key) {
          // A concurrent insert of the same key won the bottom level:
          // our node was never published, so turn into an overwrite of
          // the winner (the abandoned node stays in the arena).
          return next[0]->value.exchange(value, std::memory_order_acq_rel);
        }
      }
    }
    return nullptr;
  }

  /// Value pointer for `key`, or nullptr. Lock-free.
  const char* Get(uint64_t key) const {
    Node* node = FindGreaterOrEqual(key);
    if (node == nullptr || node->key != key) return nullptr;
    return node->value.load(std::memory_order_acquire);
  }

  /// Forward iterator over the bottom level; safe to use concurrently
  /// with inserts (sees some linearization of them).
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}
    bool Valid() const { return node_ != nullptr; }
    uint64_t key() const { return node_->key; }
    const char* value() const {
      return node_->value.load(std::memory_order_acquire);
    }
    void Next() { node_ = node_->Next(0); }
    void Seek(uint64_t key) { node_ = list_->FindGreaterOrEqual(key); }
    void SeekToFirst() { node_ = list_->head_->Next(0); }

   private:
    const SkipList* list_;
    Node* node_;
  };

 private:
  struct Node {
    uint64_t key;
    std::atomic<const char*> value;
    std::atomic<Node*> next[1];  // [height] links, allocated inline

    Node* Next(int level) {
      return next[level].load(std::memory_order_acquire);
    }
  };

  Node* NewNode(uint64_t key, int height) {
    char* mem = arena_->AllocateAligned(sizeof(Node) +
                                        (height - 1) * sizeof(node_link_t));
    Node* node = reinterpret_cast<Node*>(mem);
    node->key = key;
    node->value.store(nullptr, std::memory_order_relaxed);
    for (int i = 0; i < height; ++i) {
      new (&node->next[i]) std::atomic<Node*>(nullptr);
    }
    return node;
  }

  static int RandomHeight() {
    // Thread-local stream: heights need no cross-thread coordination,
    // only a 1/kBranching tail per level.
    thread_local uint64_t state =
        0x9e3779b97f4a7c15ULL ^
        reinterpret_cast<uintptr_t>(&state);
    uint64_t r = SplitMix64(state);
    int height = 1;
    while (height < kMaxHeight && (r & (kBranching - 1)) == 0) {
      ++height;
      r >>= 2;
    }
    return height;
  }

  /// First node at `level` after `start` with key >= `key` into *next,
  /// its predecessor into *prev. `start->key` must be < `key` (head_
  /// counts as -inf).
  void FindSpliceForLevel(uint64_t key, Node* start, int level, Node** prev,
                          Node** next) const {
    Node* p = start;
    for (;;) {
      Node* n = p->Next(level);
      if (n == nullptr || n->key >= key) {
        *prev = p;
        *next = n;
        return;
      }
      p = n;
    }
  }

  void FindSplice(uint64_t key, Node** prev, Node** next) const {
    int top = max_height_.load(std::memory_order_relaxed);
    Node* start = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      if (level >= top) {
        prev[level] = head_;
        next[level] = nullptr;
        continue;
      }
      FindSpliceForLevel(key, start, level, &prev[level], &next[level]);
      start = prev[level];
    }
  }

  Node* FindGreaterOrEqual(uint64_t key) const {
    Node* p = head_;
    int level = max_height_.load(std::memory_order_relaxed) - 1;
    for (;;) {
      Node* n = p->Next(level);
      if (n != nullptr && n->key < key) {
        p = n;
      } else if (level > 0) {
        --level;
      } else {
        return n;
      }
    }
  }

  using node_link_t = std::atomic<Node*>;

  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_SKIPLIST_H_

#include "lsm/manifest.h"

#include <algorithm>
#include <cstdio>

#include "lsm/wal.h"
#include "util/coding.h"

namespace bloomrf {

namespace {

// Edit payload tags. Fixed-width fields throughout: manifests are tiny
// next to the SSTs they describe, and fixed offsets decode with plain
// bounds checks.
constexpr char kTagLogNumber = 1;      // + fixed64
constexpr char kTagNextFile = 2;       // + fixed64
constexpr char kTagAddFile = 3;        // + fixed32 level, 5 x fixed64
constexpr char kTagDeleteFile = 4;     // + fixed32 level, fixed64 file

// A level index beyond this is a decode error, not a real tree.
constexpr uint32_t kMaxDecodableLevel = 64;

bool ReadFixed32(std::string_view data, size_t* at, uint32_t* out) {
  if (*at + 4 > data.size()) return false;
  *out = DecodeFixed32(data.data() + *at);
  *at += 4;
  return true;
}

bool ReadFixed64(std::string_view data, size_t* at, uint64_t* out) {
  if (*at + 8 > data.size()) return false;
  *out = DecodeFixed64(data.data() + *at);
  *at += 8;
  return true;
}

}  // namespace

std::string VersionEdit::Encode() const {
  std::string out;
  if (has_log_number) {
    out.push_back(kTagLogNumber);
    PutFixed64(&out, log_number);
  }
  if (has_next_file_number) {
    out.push_back(kTagNextFile);
    PutFixed64(&out, next_file_number);
  }
  for (const auto& [level, file] : deleted) {
    out.push_back(kTagDeleteFile);
    PutFixed32(&out, level);
    PutFixed64(&out, file);
  }
  for (const auto& [level, meta] : added) {
    out.push_back(kTagAddFile);
    PutFixed32(&out, level);
    PutFixed64(&out, meta.file_number);
    PutFixed64(&out, meta.smallest);
    PutFixed64(&out, meta.largest);
    PutFixed64(&out, meta.entries);
    PutFixed64(&out, meta.file_bytes);
  }
  return out;
}

bool VersionEdit::Decode(std::string_view payload, VersionEdit* edit) {
  *edit = VersionEdit{};
  size_t at = 0;
  while (at < payload.size()) {
    char tag = payload[at++];
    switch (tag) {
      case kTagLogNumber: {
        uint64_t n;
        if (!ReadFixed64(payload, &at, &n)) return false;
        edit->SetLogNumber(n);
        break;
      }
      case kTagNextFile: {
        uint64_t n;
        if (!ReadFixed64(payload, &at, &n)) return false;
        edit->SetNextFileNumber(n);
        break;
      }
      case kTagAddFile: {
        uint32_t level;
        FileMeta meta;
        if (!ReadFixed32(payload, &at, &level) ||
            !ReadFixed64(payload, &at, &meta.file_number) ||
            !ReadFixed64(payload, &at, &meta.smallest) ||
            !ReadFixed64(payload, &at, &meta.largest) ||
            !ReadFixed64(payload, &at, &meta.entries) ||
            !ReadFixed64(payload, &at, &meta.file_bytes)) {
          return false;
        }
        if (level > kMaxDecodableLevel || meta.smallest > meta.largest) {
          return false;
        }
        edit->added.emplace_back(level, meta);
        break;
      }
      case kTagDeleteFile: {
        uint32_t level;
        uint64_t file;
        if (!ReadFixed32(payload, &at, &level) ||
            !ReadFixed64(payload, &at, &file)) {
          return false;
        }
        if (level > kMaxDecodableLevel) return false;
        edit->deleted.emplace_back(level, file);
        break;
      }
      default:
        return false;  // unknown tag: corruption
    }
  }
  return true;
}

bool ManifestState::Apply(const VersionEdit& edit) {
  if (edit.has_log_number) log_number = std::max(log_number, edit.log_number);
  if (edit.has_next_file_number) {
    next_file_number = std::max(next_file_number, edit.next_file_number);
  }
  for (const auto& [level, file] : edit.deleted) {
    if (level >= levels.size()) return false;
    auto& files = levels[level];
    auto it = std::find_if(
        files.begin(), files.end(),
        [file = file](const FileMeta& m) { return m.file_number == file; });
    if (it == files.end()) return false;  // deleting an absent file
    files.erase(it);
  }
  for (const auto& [level, meta] : edit.added) {
    if (level >= levels.size()) levels.resize(level + 1);
    levels[level].push_back(meta);
  }
  ++edits;
  return true;
}

std::string ManifestFileName(const std::string& dir, uint64_t number) {
  return dir + "/MANIFEST-" + std::to_string(number);
}

std::string CurrentFileName(const std::string& dir) {
  return dir + "/CURRENT";
}

void ManifestReplay(const std::string& path, ManifestState* state) {
  *state = ManifestState{};
  FramedReplayResult framed = ReplayFramedFile(
      path, [state](char type, std::string_view payload) {
        if (type != kManifestEditRecord) return false;
        VersionEdit edit;
        if (!VersionEdit::Decode(payload, &edit)) return false;
        return state->Apply(edit);
      });
  state->clean = framed.clean;
}

uint64_t ReadCurrentManifestNumber(const std::string& dir) {
  std::FILE* f = std::fopen(CurrentFileName(dir).c_str(), "rb");
  if (f == nullptr) return 0;
  char buf[64];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  std::string_view content(buf, n);
  constexpr std::string_view kPrefix = "MANIFEST-";
  if (content.size() <= kPrefix.size() ||
      content.compare(0, kPrefix.size(), kPrefix) != 0) {
    return 0;
  }
  uint64_t number = 0;
  bool any = false;
  for (size_t i = kPrefix.size(); i < content.size(); ++i) {
    char c = content[i];
    if (c == '\n') break;
    if (c < '0' || c > '9') return 0;
    number = number * 10 + static_cast<uint64_t>(c - '0');
    any = true;
  }
  return any ? number : 0;
}

bool SetCurrentFile(Env* env, const std::string& dir, uint64_t number) {
  const std::string tmp = CurrentFileName(dir) + ".tmp";
  auto file = env->NewWritableFile(tmp);
  bool ok = file != nullptr &&
            file->Append("MANIFEST-" + std::to_string(number) + "\n") &&
            file->Sync() && file->Close();
  ok = ok && env->RenameFile(tmp, CurrentFileName(dir));
  ok = ok && env->SyncDir(dir);
  if (!ok) env->DeleteFile(tmp);  // best effort; stale tmp is harmless
  return ok;
}

ManifestWriter::ManifestWriter(Env* env, const std::string& dir,
                               uint64_t number)
    : number_(number), path_(ManifestFileName(dir, number)),
      file_(env->NewWritableFile(path_)) {}

bool ManifestWriter::Append(const VersionEdit& edit) {
  if (!ok()) return false;
  std::string record;
  AppendFramedRecord(kManifestEditRecord, edit.Encode(), &record);
  if (!file_->Append(record) || !file_->Sync()) {
    // Sticky: a partially appended record leaves a torn tail this
    // writer cannot safely append after. The Db rewrites a fresh
    // manifest (snapshot + CURRENT swap) to recover.
    broken_ = true;
    return false;
  }
  bytes_written_ += record.size();
  return true;
}

}  // namespace bloomrf

#include "lsm/table_reader.h"

#include <algorithm>

#include "lsm/block.h"
#include "lsm/table_builder.h"
#include "util/coding.h"
#include "util/timer.h"

namespace bloomrf {

namespace {

bool ReadAt(std::FILE* f, uint64_t offset, uint64_t size, std::string* out) {
  out->resize(size);
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) return false;
  return std::fread(out->data(), 1, size, f) == size;
}

}  // namespace

TableReader::~TableReader() {
  if (file_ != nullptr) std::fclose(file_);
}

std::unique_ptr<TableReader> TableReader::Open(const std::string& path,
                                               const FilterPolicy* policy,
                                               LsmStats* stats) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return nullptr;
  std::unique_ptr<TableReader> reader(new TableReader());
  reader->file_ = f;

  if (std::fseek(f, 0, SEEK_END) != 0) return nullptr;
  long file_size = std::ftell(f);
  if (file_size < 40) return nullptr;

  std::string footer;
  if (!ReadAt(f, static_cast<uint64_t>(file_size) - 40, 40, &footer)) {
    return nullptr;
  }
  uint64_t index_off = DecodeFixed64(footer.data());
  uint64_t index_size = DecodeFixed64(footer.data() + 8);
  uint64_t filter_off = DecodeFixed64(footer.data() + 16);
  uint64_t filter_size = DecodeFixed64(footer.data() + 24);
  if (DecodeFixed64(footer.data() + 32) != TableBuilder::kMagic) {
    return nullptr;
  }

  std::string index_data;
  if (!ReadAt(f, index_off, index_size, &index_data)) return nullptr;
  if (index_size % 24 != 0) return nullptr;
  for (size_t pos = 0; pos < index_data.size(); pos += 24) {
    reader->index_.push_back({DecodeFixed64(index_data.data() + pos),
                              DecodeFixed64(index_data.data() + pos + 8),
                              DecodeFixed64(index_data.data() + pos + 16)});
  }

  if (policy != nullptr && filter_size > 0) {
    std::string filter_data;
    if (!ReadAt(f, filter_off, filter_size, &filter_data)) return nullptr;
    Timer timer;
    // The block is registry-framed; a corrupt or unknown block loads as
    // null and the table falls back to scanning.
    reader->filter_ = policy->LoadFilter(filter_data);
    if (stats != nullptr) stats->deser_nanos += timer.ElapsedNanos();
  }

  // Min/max keys: first key of first block, last key of last block.
  if (!reader->index_.empty()) {
    std::string block;
    if (!reader->ReadBlockAt(0, &block, nullptr)) return nullptr;
    if (block.size() >= 8) reader->min_key_ = DecodeFixed64(block.data());
    reader->max_key_ = reader->index_.back().last_key;
  }
  return reader;
}

bool TableReader::ReadBlockAt(size_t index_pos, std::string* buffer,
                              LsmStats* stats) const {
  const IndexEntry& entry = index_[index_pos];
  Timer timer;
  bool ok = ReadAt(file_, entry.offset, entry.size, buffer);
  if (stats != nullptr) {
    stats->io_nanos += timer.ElapsedNanos();
    ++stats->blocks_read;
    stats->bytes_read += entry.size;
  }
  return ok;
}

int64_t TableReader::FindBlock(uint64_t key) const {
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const IndexEntry& e, uint64_t k) { return e.last_key < k; });
  if (it == index_.end()) return -1;
  return static_cast<int64_t>(it - index_.begin());
}

bool TableReader::Get(uint64_t key, std::string* value,
                      LsmStats* stats) const {
  if (filter_ != nullptr) {
    Timer timer;
    bool may_match = filter_->MayContain(key);
    if (stats != nullptr) {
      stats->filter_probe_nanos += timer.ElapsedNanos();
      ++stats->filter_probes;
      if (!may_match) ++stats->filter_negatives;
    }
    if (!may_match) return false;
  }
  int64_t block_idx = FindBlock(key);
  if (block_idx < 0) return false;
  std::string buffer;
  if (!ReadBlockAt(static_cast<size_t>(block_idx), &buffer, stats)) {
    return false;
  }
  std::vector<BlockEntry> entries;
  if (!ParseBlock(buffer, &entries)) return false;
  auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const BlockEntry& e, uint64_t k) { return e.key < k; });
  if (it == entries.end() || it->key != key) return false;
  if (value != nullptr) value->assign(it->value);
  return true;
}

bool TableReader::RangeScan(uint64_t lo, uint64_t hi, size_t limit,
                            std::vector<std::pair<uint64_t, std::string>>* out,
                            LsmStats* stats) const {
  if (filter_ != nullptr) {
    Timer timer;
    bool may_match = filter_->MayContainRange(lo, hi);
    if (stats != nullptr) {
      stats->filter_probe_nanos += timer.ElapsedNanos();
      ++stats->filter_probes;
      if (!may_match) ++stats->filter_negatives;
    }
    if (!may_match) return false;
  }
  int64_t block_idx = FindBlock(lo);
  std::string buffer;
  std::vector<BlockEntry> entries;
  for (size_t b = block_idx < 0 ? index_.size() : static_cast<size_t>(block_idx);
       b < index_.size(); ++b) {
    if (!ReadBlockAt(b, &buffer, stats)) break;
    if (!ParseBlock(buffer, &entries)) break;
    for (const BlockEntry& entry : entries) {
      if (entry.key < lo) continue;
      if (entry.key > hi) return true;
      if (out != nullptr) {
        if (out->size() >= limit) return true;
        out->emplace_back(entry.key, std::string(entry.value));
      }
    }
  }
  return true;
}

}  // namespace bloomrf

#include "lsm/table_reader.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "lsm/block.h"
#include "lsm/table_builder.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/timer.h"

namespace bloomrf {

namespace {

// Process-unique table ids namespace the shared block cache's keys.
std::atomic<uint64_t> g_next_table_id{1};

// File size via the 64-bit tell; -1 on error. Only called from Open,
// before any concurrent reader exists.
int64_t FileSize(std::FILE* f) {
#if defined(_WIN32)
  if (_fseeki64(f, 0, SEEK_END) != 0) return -1;
  return _ftelli64(f);
#else
  if (fseeko(f, 0, SEEK_END) != 0) return -1;
  return static_cast<int64_t>(ftello(f));
#endif
}

}  // namespace

// Positioned read, safe for concurrent callers. POSIX pread carries
// its own offset and touches no shared cursor (and takes 64-bit
// offsets, so SSTs past 2 GiB read correctly); the Windows fallback
// serializes the 64-bit seek + fread pair under io_mu_.
bool TableReader::ReadFileAt(uint64_t offset, uint64_t size,
                             std::string* out) const {
  out->resize(size);
#if defined(_WIN32)
  std::lock_guard<std::mutex> lock(io_mu_);
  if (_fseeki64(file_, static_cast<long long>(offset), SEEK_SET) != 0) {
    return false;
  }
  return std::fread(out->data(), 1, size, file_) == size;
#else
  int fd = fileno(file_);
  size_t done = 0;
  while (done < size) {
    ssize_t n = pread(fd, out->data() + done, size - done,
                      static_cast<off_t>(offset + done));
    if (n <= 0) return false;  // EOF or error; short SSTs are corrupt
    done += static_cast<size_t>(n);
  }
  return true;
#endif
}

TableReader::~TableReader() {
  if (file_ != nullptr) std::fclose(file_);
}

std::unique_ptr<TableReader> TableReader::Open(
    const std::string& path, const FilterPolicy* policy, LsmStats* stats,
    std::shared_ptr<BlockCache> cache, uint64_t file_number) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return nullptr;
  std::unique_ptr<TableReader> reader(new TableReader());
  reader->file_ = f;
  reader->cache_ = std::move(cache);
  reader->table_id_ = g_next_table_id.fetch_add(1, std::memory_order_relaxed);
  reader->path_ = path;
  reader->file_number_ = file_number;

  int64_t file_size = FileSize(f);
  if (file_size < 40) return nullptr;
  reader->file_size_ = static_cast<uint64_t>(file_size);

  // Footer dispatch on the trailing magic: v3 (56 bytes, tombstone
  // count + CRCs) first, then v2 (48 bytes, index/filter CRCs,
  // per-block CRCs), then legacy v1 (40 bytes, no checksums) — old
  // pre-delete tables stay readable and answer identically.
  uint64_t index_off, index_size, filter_off, filter_size;
  uint32_t index_crc = 0, filter_crc = 0;
  int version = 1;
  std::string footer;
  if (file_size >= 56) {
    if (!reader->ReadFileAt(reader->file_size_ - 56, 56, &footer)) {
      return nullptr;
    }
    if (DecodeFixed64(footer.data() + 48) == TableBuilder::kMagicV3) {
      version = 3;
    }
  }
  if (version == 1 && file_size >= 48) {
    if (!reader->ReadFileAt(reader->file_size_ - 48, 48, &footer)) {
      return nullptr;
    }
    if (DecodeFixed64(footer.data() + 40) == TableBuilder::kMagicV2) {
      version = 2;
    }
  }
  if (version == 3) {
    index_off = DecodeFixed64(footer.data());
    index_size = DecodeFixed64(footer.data() + 8);
    filter_off = DecodeFixed64(footer.data() + 16);
    filter_size = DecodeFixed64(footer.data() + 24);
    reader->num_tombstones_ = DecodeFixed64(footer.data() + 32);
    index_crc = DecodeFixed32(footer.data() + 40);
    filter_crc = DecodeFixed32(footer.data() + 44);
    reader->has_block_crc_ = true;
    reader->has_tombstone_flags_ = true;
  } else if (version == 2) {
    index_off = DecodeFixed64(footer.data());
    index_size = DecodeFixed64(footer.data() + 8);
    filter_off = DecodeFixed64(footer.data() + 16);
    filter_size = DecodeFixed64(footer.data() + 24);
    index_crc = DecodeFixed32(footer.data() + 32);
    filter_crc = DecodeFixed32(footer.data() + 36);
    reader->has_block_crc_ = true;
  } else {
    if (!reader->ReadFileAt(reader->file_size_ - 40, 40, &footer)) {
      return nullptr;
    }
    if (DecodeFixed64(footer.data() + 32) != TableBuilder::kMagicV1) {
      return nullptr;
    }
    index_off = DecodeFixed64(footer.data());
    index_size = DecodeFixed64(footer.data() + 8);
    filter_off = DecodeFixed64(footer.data() + 16);
    filter_size = DecodeFixed64(footer.data() + 24);
  }
  const bool has_crc = version >= 2;

  // Metadata bounds before any dependent read: a corrupt footer must
  // not direct reads past the file or allocate absurd buffers.
  if (index_off > reader->file_size_ ||
      index_size > reader->file_size_ - index_off ||
      filter_off > reader->file_size_ ||
      filter_size > reader->file_size_ - filter_off ||
      index_size % 24 != 0) {
    return nullptr;
  }

  std::string index_data;
  if (!reader->ReadFileAt(index_off, index_size, &index_data)) return nullptr;
  if (has_crc && Crc32c(index_data) != index_crc) return nullptr;
  const uint64_t block_overhead = has_crc ? 4 : 0;  // trailing per-block CRC
  uint64_t expected_offset = 0;
  for (size_t pos = 0; pos < index_data.size(); pos += 24) {
    IndexEntry entry{DecodeFixed64(index_data.data() + pos),
                     DecodeFixed64(index_data.data() + pos + 8),
                     DecodeFixed64(index_data.data() + pos + 16)};
    // Blocks are laid out contiguously with strictly increasing last
    // keys; anything else is corruption the read paths must never see.
    if (entry.offset != expected_offset || entry.size == 0 ||
        entry.size > index_off - entry.offset) {
      return nullptr;
    }
    if (!reader->index_.empty() &&
        entry.last_key <= reader->index_.back().last_key) {
      return nullptr;
    }
    expected_offset = entry.offset + entry.size + block_overhead;
    reader->index_.push_back(entry);
  }
  if (expected_offset != index_off) return nullptr;

  if (policy != nullptr && filter_size > 0) {
    std::string filter_data;
    if (!reader->ReadFileAt(filter_off, filter_size, &filter_data)) {
      return nullptr;
    }
    if (has_crc && Crc32c(filter_data) != filter_crc) return nullptr;
    // The block is registry-framed; a corrupt or unknown block loads as
    // null and the table falls back to scanning.
    if (stats != nullptr) {
      Timer timer;
      reader->filter_ = policy->LoadFilter(filter_data);
      stats->deser_nanos += timer.ElapsedNanos();
    } else {
      reader->filter_ = policy->LoadFilter(filter_data);
    }
    if (reader->filter_ != nullptr) {
      // Remember which backend the block carries: measured FP/TN
      // outcomes are aggregated per backend for the filter planner.
      std::string_view backend, payload;
      if (FilterRegistry::ParseFrame(filter_data, &backend, &payload)) {
        reader->filter_backend_ = std::string(backend);
      }
    }
  }

  // Min/max keys: first key of first block, last key of last block.
  if (!reader->index_.empty()) {
    std::string block;
    if (!reader->ReadBlockAt(0, &block, nullptr)) return nullptr;
    if (block.size() >= 8) reader->min_key_ = DecodeFixed64(block.data());
    reader->max_key_ = reader->index_.back().last_key;
  }
  return reader;
}

bool TableReader::ReadBlockAt(size_t index_pos, std::string* buffer,
                              LsmStats* stats) const {
  const IndexEntry& entry = index_[index_pos];
  // v2 blocks carry a trailing CRC-32C: read payload+4, verify, trim.
  const uint64_t physical = entry.size + (has_block_crc_ ? 4 : 0);
  bool ok;
  if (stats != nullptr) {
    Timer timer;
    ok = ReadFileAt(entry.offset, physical, buffer);
    stats->io_nanos += timer.ElapsedNanos();
    ++stats->blocks_read;
    stats->bytes_read += physical;
  } else {
    ok = ReadFileAt(entry.offset, physical, buffer);
  }
  if (ok && has_block_crc_) {
    uint32_t expected = DecodeFixed32(buffer->data() + entry.size);
    buffer->resize(entry.size);
    if (Crc32c(*buffer) != expected) {
      // Served as "block unreadable" (callers skip or stop), never as
      // garbage entries.
      if (stats != nullptr) {
        ++stats->block_crc_errors;
        stats->SetLastError("sst: block crc mismatch in " + path_);
      }
      return false;
    }
  }
  return ok;
}

std::shared_ptr<const CachedBlock> TableReader::GetBlock(
    size_t index_pos, LsmStats* stats) const {
  if (cache_ != nullptr) {
    auto cached = cache_->Lookup(table_id_, index_pos);
    if (cached != nullptr) {
      if (stats != nullptr) ++stats->block_cache_hits;
      return cached;
    }
    if (stats != nullptr) ++stats->block_cache_misses;
  }
  auto block = std::make_shared<CachedBlock>();
  if (!ReadBlockAt(index_pos, &block->raw, stats)) return nullptr;
  if (!ParseBlock(block->raw, &block->entries, has_tombstone_flags_)) {
    return nullptr;
  }
  if (cache_ != nullptr) cache_->Insert(table_id_, index_pos, block);
  return block;
}

int64_t TableReader::FindBlock(uint64_t key) const {
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const IndexEntry& e, uint64_t k) { return e.last_key < k; });
  if (it == index_.end()) return -1;
  return static_cast<int64_t>(it - index_.begin());
}

Lookup TableReader::Find(uint64_t key, std::string* value,
                         LsmStats* stats) const {
  const bool filtered = filter_ != nullptr;
  if (filtered) {
    bool may_match;
    if (stats != nullptr) {
      Timer timer;
      may_match = filter_->MayContain(key);
      stats->filter_probe_nanos += timer.ElapsedNanos();
      ++stats->filter_probes;
      if (!may_match) ++stats->filter_negatives;
    } else {
      may_match = filter_->MayContain(key);
    }
    if (!may_match) {
      // Filters have no false negatives: a rejection is a definite
      // true negative.
      pt_neg_.fetch_add(1, std::memory_order_relaxed);
      if (stats != nullptr) {
        ++stats->filter_true_negatives[LsmStats::StatsLevel(level_)];
      }
      return Lookup::kMiss;
    }
    pt_allowed_.fetch_add(1, std::memory_order_relaxed);
  }
  // The filter said "maybe"; if the data blocks now say "no", that
  // probe was a false positive. I/O errors (block == nullptr) get no
  // attribution — the outcome is unknown, not a model miss. A
  // tombstone hit is a CONFIRMED answer (the key is in the table),
  // never a false positive.
  auto false_positive = [&] {
    if (!filtered) return;
    pt_false_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) {
      ++stats->filter_false_positives[LsmStats::StatsLevel(level_)];
    }
  };
  int64_t block_idx = FindBlock(key);
  if (block_idx < 0) {
    false_positive();
    return Lookup::kMiss;
  }
  auto block = GetBlock(static_cast<size_t>(block_idx), stats);
  if (block == nullptr) return Lookup::kMiss;
  auto it = std::lower_bound(
      block->entries.begin(), block->entries.end(), key,
      [](const BlockEntry& e, uint64_t k) { return e.key < k; });
  if (it == block->entries.end() || it->key != key) {
    false_positive();
    return Lookup::kMiss;
  }
  if (it->tombstone) return Lookup::kTombstone;
  if (value != nullptr) value->assign(it->value);
  return Lookup::kHit;
}

size_t TableReader::MultiGet(std::span<const uint64_t> keys, Lookup* states,
                             std::string* values, LsmStats* stats) const {
  // Unresolved positions only: a DB chains the same arrays through its
  // tables newest-first, so keys resolved in a newer table (a hit OR a
  // tombstone — deletions shadow) are skipped.
  std::vector<uint32_t> pending;
  pending.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (states[i] == Lookup::kMiss) pending.push_back(static_cast<uint32_t>(i));
  }
  if (pending.empty()) return 0;

  // One batched (planned, prefetching) filter probe for the batch.
  std::vector<std::pair<int64_t, uint32_t>> by_block;
  size_t allowed = 0;
  const bool filtered = filter_ != nullptr;
  if (filtered) {
    std::vector<uint64_t> probe_keys;
    probe_keys.reserve(pending.size());
    for (uint32_t i : pending) probe_keys.push_back(keys[i]);
    auto may = std::make_unique<bool[]>(pending.size());
    bool* may_out = may.get();
    if (stats != nullptr) {
      Timer timer;
      filter_->MayContainBatch(probe_keys, may_out);
      stats->filter_probe_nanos += timer.ElapsedNanos();
      stats->filter_probes += pending.size();
    } else {
      filter_->MayContainBatch(probe_keys, may_out);
    }
    by_block.reserve(pending.size());
    for (size_t j = 0; j < pending.size(); ++j) {
      if (!may_out[j]) {
        if (stats != nullptr) {
          ++stats->filter_negatives;
          ++stats->filter_true_negatives[LsmStats::StatsLevel(level_)];
        }
        continue;
      }
      ++allowed;
      int64_t b = FindBlock(keys[pending[j]]);
      if (b >= 0) by_block.emplace_back(b, pending[j]);
    }
    pt_neg_.fetch_add(pending.size() - allowed, std::memory_order_relaxed);
    pt_allowed_.fetch_add(allowed, std::memory_order_relaxed);
  } else {
    by_block.reserve(pending.size());
    for (uint32_t i : pending) {
      int64_t b = FindBlock(keys[i]);
      if (b >= 0) by_block.emplace_back(b, i);
    }
  }

  // Visit each surviving block once for all of its keys.
  std::stable_sort(by_block.begin(), by_block.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t resolved = 0;
  std::shared_ptr<const CachedBlock> block;
  int64_t current = -1;
  for (const auto& [block_idx, i] : by_block) {
    if (block_idx != current) {
      block = GetBlock(static_cast<size_t>(block_idx), stats);
      current = block_idx;
    }
    if (block == nullptr) continue;
    auto it = std::lower_bound(
        block->entries.begin(), block->entries.end(), keys[i],
        [](const BlockEntry& e, uint64_t k) { return e.key < k; });
    if (it == block->entries.end() || it->key != keys[i]) continue;
    if (it->tombstone) {
      states[i] = Lookup::kTombstone;
    } else {
      states[i] = Lookup::kHit;
      if (values != nullptr) values[i].assign(it->value);
    }
    ++resolved;
  }
  if (filtered && allowed > resolved) {
    // Every allowed probe the data blocks did not confirm was a false
    // positive (conservatively including the rare unreadable block).
    // Tombstone hits confirm the filter — the key IS in the table.
    const uint64_t fp = allowed - resolved;
    pt_false_.fetch_add(fp, std::memory_order_relaxed);
    if (stats != nullptr) {
      stats->filter_false_positives[LsmStats::StatsLevel(level_)] += fp;
    }
  }
  return resolved;
}

size_t TableReader::MultiGet(std::span<const uint64_t> keys, bool* found,
                             std::string* values, LsmStats* stats) const {
  std::vector<Lookup> states(keys.size(), Lookup::kMiss);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (found[i]) states[i] = Lookup::kHit;
  }
  MultiGet(keys, states.data(), values, stats);
  size_t hits = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!found[i] && states[i] == Lookup::kHit) {
      found[i] = true;
      ++hits;
    }
  }
  return hits;
}

bool TableReader::RangeScan(uint64_t lo, uint64_t hi, size_t limit,
                            std::vector<ScanEntry>* out,
                            LsmStats* stats) const {
  const bool filtered = filter_ != nullptr;
  if (filtered) {
    bool may_match;
    if (stats != nullptr) {
      Timer timer;
      may_match = filter_->MayContainRange(lo, hi);
      stats->filter_probe_nanos += timer.ElapsedNanos();
      ++stats->filter_probes;
      if (!may_match) ++stats->filter_negatives;
    } else {
      may_match = filter_->MayContainRange(lo, hi);
    }
    if (!may_match) {
      rg_neg_.fetch_add(1, std::memory_order_relaxed);
      if (stats != nullptr) {
        ++stats->filter_true_negatives[LsmStats::StatsLevel(level_)];
      }
      return false;
    }
    rg_allowed_.fetch_add(1, std::memory_order_relaxed);
  }
  const size_t before = out != nullptr ? out->size() : 0;
  ScanBlocks(lo, hi, limit, out, stats);
  // Zero appended rows with headroom below `limit` means the blocks
  // definitively rejected a range the filter allowed (a tombstone row
  // still confirms the filter — the key is in the table). Probes
  // without an output vector (existence pre-checks) carry no outcome.
  if (filtered && out != nullptr && out->size() == before &&
      before < limit) {
    rg_false_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) {
      ++stats->filter_false_positives[LsmStats::StatsLevel(level_)];
    }
  }
  return true;
}

bool TableReader::RangeScan(uint64_t lo, uint64_t hi, size_t limit,
                            std::vector<std::pair<uint64_t, std::string>>* out,
                            LsmStats* stats) const {
  if (out == nullptr) {
    return RangeScan(lo, hi, limit,
                     static_cast<std::vector<ScanEntry>*>(nullptr), stats);
  }
  std::vector<ScanEntry> entries;
  bool allowed = RangeScan(lo, hi, limit, &entries, stats);
  for (ScanEntry& e : entries) {
    if (!e.tombstone) out->emplace_back(e.key, std::move(e.value));
  }
  return allowed;
}

void TableReader::RangeMultiProbe(std::span<const uint64_t> los,
                                  std::span<const uint64_t> his,
                                  bool* may_match, LsmStats* stats) const {
  assert(los.size() == his.size());
  if (filter_ == nullptr) {
    std::fill(may_match, may_match + los.size(), true);
    return;
  }
  if (stats != nullptr) {
    Timer timer;
    filter_->MayContainRangeBatch(los, his, may_match);
    stats->filter_probe_nanos += timer.ElapsedNanos();
    stats->filter_probes += los.size();
  } else {
    filter_->MayContainRangeBatch(los, his, may_match);
  }
  size_t negatives = 0;
  for (size_t i = 0; i < los.size(); ++i) {
    if (!may_match[i]) ++negatives;
  }
  rg_neg_.fetch_add(negatives, std::memory_order_relaxed);
  rg_allowed_.fetch_add(los.size() - negatives, std::memory_order_relaxed);
  if (stats != nullptr) {
    stats->filter_negatives += negatives;
    stats->filter_true_negatives[LsmStats::StatsLevel(level_)] += negatives;
  }
}

void TableReader::AccountRangeOutcome(bool any_rows, LsmStats* stats) const {
  if (filter_ == nullptr || any_rows) return;
  rg_false_.fetch_add(1, std::memory_order_relaxed);
  if (stats != nullptr) {
    ++stats->filter_false_positives[LsmStats::StatsLevel(level_)];
  }
}

TableReader::Iterator::Iterator(const TableReader& table, LsmStats* stats)
    : table_(table), stats_(stats) {
  LoadBlock(0);
}

TableReader::Iterator::Iterator(const TableReader& table, LsmStats* stats,
                                uint64_t start_key)
    : table_(table), stats_(stats) {
  const int64_t block = table.FindBlock(start_key);
  if (block < 0) {
    LoadBlock(table.index_.size());  // every key < start_key: end state
    return;
  }
  LoadBlock(static_cast<size_t>(block));
  // FindBlock guarantees this block's last key >= start_key, so the
  // target position is inside it (when the block loaded at all).
  while (block_ != nullptr && pos_ < block_->entries.size() &&
         block_->entries[pos_].key < start_key) {
    ++pos_;
  }
}

void TableReader::Iterator::LoadBlock(size_t block_idx) {
  block_.reset();
  block_idx_ = block_idx;
  pos_ = 0;
  if (block_idx >= table_.index_.size()) return;  // end of table
  // Direct read, not GetBlock: a full-table compaction sweep must not
  // wash the shared cache's hot read-path blocks out.
  auto block = std::make_shared<CachedBlock>();
  if (!table_.ReadBlockAt(block_idx, &block->raw, stats_) ||
      !ParseBlock(block->raw, &block->entries, table_.has_tombstone_flags_)) {
    ok_ = false;
    return;
  }
  block_ = std::move(block);
}

void TableReader::Iterator::Next() {
  if (!Valid()) return;
  if (++pos_ >= block_->entries.size()) LoadBlock(block_idx_ + 1);
}

void TableReader::ScanBlocks(uint64_t lo, uint64_t hi, size_t limit,
                             std::vector<ScanEntry>* out,
                             LsmStats* stats) const {
  int64_t block_idx = FindBlock(lo);
  for (size_t b = block_idx < 0 ? index_.size() : static_cast<size_t>(block_idx);
       b < index_.size(); ++b) {
    auto block = GetBlock(b, stats);
    if (block == nullptr) break;
    for (const BlockEntry& entry : block->entries) {
      if (entry.key < lo) continue;
      if (entry.key > hi) return;
      if (out != nullptr) {
        if (out->size() >= limit) return;
        out->push_back(
            {entry.key, std::string(entry.value), entry.tombstone});
      }
    }
  }
}

}  // namespace bloomrf

#include "lsm/block.h"

#include "util/coding.h"

namespace bloomrf {

void BlockBuilder::Add(uint64_t key, std::string_view value, bool tombstone) {
  PutFixed64(&buffer_, key);
  uint32_t meta = static_cast<uint32_t>(value.size());
  if (tombstone) meta |= kTombstoneBit;
  PutFixed32(&buffer_, meta);
  buffer_.append(value.data(), value.size());
  last_key_ = key;
  ++num_entries_;
}

std::string BlockBuilder::Finish() {
  std::string out = std::move(buffer_);
  buffer_.clear();
  num_entries_ = 0;
  last_key_ = 0;
  return out;
}

bool ParseBlock(std::string_view data, std::vector<BlockEntry>* entries,
                bool tombstone_flags) {
  entries->clear();
  size_t pos = 0;
  while (pos < data.size()) {
    if (pos + 12 > data.size()) return false;
    uint64_t key = DecodeFixed64(data.data() + pos);
    uint32_t meta = DecodeFixed32(data.data() + pos + 8);
    bool tombstone = false;
    uint32_t len = meta;
    if (tombstone_flags) {
      tombstone = (meta & BlockBuilder::kTombstoneBit) != 0;
      len = meta & ~BlockBuilder::kTombstoneBit;
    }
    pos += 12;
    if (pos + len > data.size()) return false;
    if (tombstone && len != 0) return false;  // tombstones carry no value
    entries->push_back({key, data.substr(pos, len), tombstone});
    pos += len;
  }
  return true;
}

}  // namespace bloomrf

#include "lsm/block.h"

#include "util/coding.h"

namespace bloomrf {

void BlockBuilder::Add(uint64_t key, std::string_view value) {
  PutFixed64(&buffer_, key);
  PutFixed32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(value.data(), value.size());
  last_key_ = key;
  ++num_entries_;
}

std::string BlockBuilder::Finish() {
  std::string out = std::move(buffer_);
  buffer_.clear();
  num_entries_ = 0;
  last_key_ = 0;
  return out;
}

bool ParseBlock(std::string_view data, std::vector<BlockEntry>* entries) {
  entries->clear();
  size_t pos = 0;
  while (pos < data.size()) {
    if (pos + 12 > data.size()) return false;
    uint64_t key = DecodeFixed64(data.data() + pos);
    uint32_t len = DecodeFixed32(data.data() + pos + 8);
    pos += 12;
    if (pos + len > data.size()) return false;
    entries->push_back({key, data.substr(pos, len)});
    pos += len;
  }
  return true;
}

}  // namespace bloomrf

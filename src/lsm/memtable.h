// In-memory write buffer of the mini-LSM store. The paper's Problem 2
// discussion notes that KV-stores absorb new data in a main-memory
// delta that is searched "otherwise" (HashSkipLists / HashLinkLists in
// RocksDB); this is that delta as an arena-backed concurrent skiplist:
// Put from any number of threads is lock-free (CAS-spliced inserts,
// one bump-pointer arena allocation per entry), Get/RangeScan never
// take a lock, and ApproximateBytes is a relaxed atomic so the flush
// threshold check costs one load.
//
// Overwrite semantics: a key's value pointer is swapped atomically;
// concurrent writers of the same key linearize on that swap (last one
// wins) and readers see a complete old or new value, never a mix.
// Byte accounting charges 8 + value bytes per live key and the size
// delta on overwrite — exact when quiesced, approximate (but never
// drifting) under concurrent overwrites of one key.
//
// Deletes are tombstones: Delete(key) publishes a value-state flag on
// the same atomic value pointer (the low bit, free because the arena
// returns 8-byte-aligned buffers) instead of a value. A tombstone is a
// first-class entry — it shadows older values in every lookup and
// scan, rides the flush into the SST, and is only physically dropped
// by compaction at the bottom-most level that can hold the key.

#ifndef BLOOMRF_LSM_MEMTABLE_H_
#define BLOOMRF_LSM_MEMTABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lsm/block.h"  // Lookup, ScanEntry
#include "lsm/skiplist.h"
#include "util/arena.h"
#include "util/coding.h"

namespace bloomrf {

class MemTable {
 public:
  MemTable() : rep_(std::make_unique<Rep>()) {}

  /// Inserts or overwrites. Lock-free; safe from any number of
  /// threads, concurrently with all readers.
  void Put(uint64_t key, std::string_view value) {
    Rep* rep = rep_.get();
    // Values are stored length-prefixed in the arena and published by
    // pointer; the buffer is immutable once linked.
    char* buf = rep->arena.AllocateAligned(4 + value.size());
    EncodeFixed32(buf, static_cast<uint32_t>(value.size()));
    std::memcpy(buf + 4, value.data(), value.size());
    const char* old = rep->list.Insert(key, buf);
    if (old == nullptr) {
      rep->bytes.fetch_add(8 + value.size(), std::memory_order_relaxed);
      rep->count.fetch_add(1, std::memory_order_relaxed);
    } else {
      int64_t delta = static_cast<int64_t>(value.size()) -
                      static_cast<int64_t>(ValueLen(old));
      rep->bytes.fetch_add(static_cast<uint64_t>(delta),
                           std::memory_order_relaxed);
      if (IsTombstone(old)) {
        rep->tombstones.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }

  /// Writes a tombstone for `key`: the atomic value pointer is swapped
  /// to the tagged sentinel, so readers racing the delete see either
  /// the complete old value or the deletion, never a mix. Same
  /// concurrency guarantees as Put.
  void Delete(uint64_t key) {
    Rep* rep = rep_.get();
    const char* old = rep->list.Insert(key, TombstonePointer());
    if (old == nullptr) {
      rep->bytes.fetch_add(8, std::memory_order_relaxed);
      rep->count.fetch_add(1, std::memory_order_relaxed);
      rep->tombstones.fetch_add(1, std::memory_order_relaxed);
    } else if (!IsTombstone(old)) {
      rep->bytes.fetch_sub(ValueLen(old), std::memory_order_relaxed);
      rep->tombstones.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Tri-state lookup: a tombstone is a definite "deleted here" that
  /// callers must not fall through to older sources.
  Lookup Find(uint64_t key, std::string* value) const {
    const char* v = rep_->list.Get(key);
    if (v == nullptr) return Lookup::kMiss;
    if (IsTombstone(v)) return Lookup::kTombstone;
    if (value != nullptr) value->assign(v + 4, DecodeFixed32(v));
    return Lookup::kHit;
  }

  /// Live-value lookup; a deleted key reads as absent. (Engine-internal
  /// walks use Find so tombstones can shadow older sources.)
  bool Get(uint64_t key, std::string* value) const {
    return Find(key, value) == Lookup::kHit;
  }

  /// Appends live entries in [lo, hi] (up to `limit` total in `out`),
  /// skipping tombstones — the caller sees only what a Get would.
  void RangeScan(uint64_t lo, uint64_t hi, size_t limit,
                 std::vector<std::pair<uint64_t, std::string>>* out) const {
    SkipList::Iterator it(&rep_->list);
    for (it.Seek(lo); it.Valid() && it.key() <= hi && out->size() < limit;
         it.Next()) {
      const char* v = it.value();
      if (IsTombstone(v)) continue;
      out->emplace_back(it.key(), std::string(v + 4, DecodeFixed32(v)));
    }
  }

  /// Merge-scan variant: appends entries in [lo, hi] INCLUDING
  /// tombstones (up to `limit` total), so a newest-first merge can let
  /// deletions shadow older live values.
  void ScanEntries(uint64_t lo, uint64_t hi, size_t limit,
                   std::vector<ScanEntry>* out) const {
    SkipList::Iterator it(&rep_->list);
    for (it.Seek(lo); it.Valid() && it.key() <= hi && out->size() < limit;
         it.Next()) {
      const char* v = it.value();
      if (IsTombstone(v)) {
        out->push_back({it.key(), std::string(), true});
      } else {
        out->push_back({it.key(), std::string(v + 4, DecodeFixed32(v)), false});
      }
    }
  }

  uint64_t ApproximateBytes() const {
    return rep_->bytes.load(std::memory_order_relaxed);
  }
  size_t size() const { return rep_->count.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }
  /// Tombstone entries currently live in this memtable (exact when
  /// quiesced, like the byte accounting).
  size_t tombstone_count() const {
    return rep_->tombstones.load(std::memory_order_relaxed);
  }
  /// Arena bytes actually reserved (>= ApproximateBytes; for memory
  /// accounting, not the flush threshold).
  size_t MemoryUsage() const { return rep_->arena.MemoryUsage(); }

  /// Copies all entries (tombstones included) in sorted order — the
  /// flush path, which writes deletions into the SST so they keep
  /// shadowing older tables. The sealed memtable no longer takes
  /// writes when this runs, so the copy is a consistent image.
  std::vector<ScanEntry> Snapshot() const {
    std::vector<ScanEntry> out;
    out.reserve(size());
    SkipList::Iterator it(&rep_->list);
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      const char* v = it.value();
      if (IsTombstone(v)) {
        out.push_back({it.key(), std::string(), true});
      } else {
        out.push_back({it.key(), std::string(v + 4, DecodeFixed32(v)), false});
      }
    }
    return out;
  }

  /// Drops every entry and releases the arena. NOT safe concurrently
  /// with any other call — callers must have exclusive access (the
  /// LSM never clears a shared memtable; it swaps in a fresh one).
  void Clear() { rep_ = std::make_unique<Rep>(); }

 private:
  struct Rep {
    Arena arena;
    SkipList list{&arena};
    std::atomic<uint64_t> bytes{0};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> tombstones{0};
  };

  /// The value-state flag lives in bit 0 of the published pointer:
  /// arena buffers are 8-byte aligned, so the bit is always free, and
  /// readers learn "value vs tombstone" from the same atomic load that
  /// hands them the pointer. All tombstones share one static sentinel
  /// (its zero length bytes make the accounting arithmetic uniform).
  static const char* TombstonePointer() {
    alignas(8) static const char kSentinel[4] = {0, 0, 0, 0};
    return reinterpret_cast<const char*>(
        reinterpret_cast<uintptr_t>(kSentinel) | 1);
  }
  static bool IsTombstone(const char* v) {
    return (reinterpret_cast<uintptr_t>(v) & 1) != 0;
  }
  /// Stored value length; 0 for tombstones (the sentinel's bytes).
  static uint32_t ValueLen(const char* v) {
    return DecodeFixed32(reinterpret_cast<const char*>(
        reinterpret_cast<uintptr_t>(v) & ~uintptr_t{1}));
  }

  static void EncodeFixed32(char* dst, uint32_t v) {
    std::memcpy(dst, &v, 4);
  }

  std::unique_ptr<Rep> rep_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_MEMTABLE_H_

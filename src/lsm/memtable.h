// In-memory write buffer of the mini-LSM store. The paper's Problem 2
// discussion notes that KV-stores absorb new data in a main-memory
// delta that is searched "otherwise" (HashSkipLists / HashLinkLists in
// RocksDB); a mutex-guarded ordered map reproduces that role here.

#ifndef BLOOMRF_LSM_MEMTABLE_H_
#define BLOOMRF_LSM_MEMTABLE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace bloomrf {

class MemTable {
 public:
  void Put(uint64_t key, std::string_view value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      entries_.emplace(key, std::string(value));
      bytes_ += 8 + value.size();
    } else {
      // Overwrite: charge the size delta, so repeated overwrites with
      // growing values still reach the flush threshold.
      bytes_ += value.size();
      bytes_ -= it->second.size();
      it->second.assign(value);
    }
  }

  bool Get(uint64_t key, std::string* value) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    if (value != nullptr) *value = it->second;
    return true;
  }

  /// Appends entries in [lo, hi] (up to `limit` total in `out`).
  void RangeScan(uint64_t lo, uint64_t hi, size_t limit,
                 std::vector<std::pair<uint64_t, std::string>>* out) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.lower_bound(lo);
         it != entries_.end() && it->first <= hi && out->size() < limit;
         ++it) {
      out->emplace_back(it->first, it->second);
    }
  }

  uint64_t ApproximateBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  bool empty() const { return size() == 0; }

  /// Copies all entries in sorted order (flush path). The memtable is
  /// cleared separately, only after the flush has durably succeeded.
  std::vector<std::pair<uint64_t, std::string>> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<uint64_t, std::string>> out;
    out.reserve(entries_.size());
    for (const auto& [k, v] : entries_) out.emplace_back(k, v);
    return out;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    bytes_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::string> entries_;
  uint64_t bytes_ = 0;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_MEMTABLE_H_

// In-memory write buffer of the mini-LSM store. The paper's Problem 2
// discussion notes that KV-stores absorb new data in a main-memory
// delta that is searched "otherwise" (HashSkipLists / HashLinkLists in
// RocksDB); this is that delta as an arena-backed concurrent skiplist:
// Put from any number of threads is lock-free (CAS-spliced inserts,
// one bump-pointer arena allocation per entry), Get/RangeScan never
// take a lock, and ApproximateBytes is a relaxed atomic so the flush
// threshold check costs one load.
//
// Overwrite semantics: a key's value pointer is swapped atomically;
// concurrent writers of the same key linearize on that swap (last one
// wins) and readers see a complete old or new value, never a mix.
// Byte accounting charges 8 + value bytes per live key and the size
// delta on overwrite — exact when quiesced, approximate (but never
// drifting) under concurrent overwrites of one key.

#ifndef BLOOMRF_LSM_MEMTABLE_H_
#define BLOOMRF_LSM_MEMTABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lsm/skiplist.h"
#include "util/arena.h"
#include "util/coding.h"

namespace bloomrf {

class MemTable {
 public:
  MemTable() : rep_(std::make_unique<Rep>()) {}

  /// Inserts or overwrites. Lock-free; safe from any number of
  /// threads, concurrently with all readers.
  void Put(uint64_t key, std::string_view value) {
    Rep* rep = rep_.get();
    // Values are stored length-prefixed in the arena and published by
    // pointer; the buffer is immutable once linked.
    char* buf = rep->arena.AllocateAligned(4 + value.size());
    EncodeFixed32(buf, static_cast<uint32_t>(value.size()));
    std::memcpy(buf + 4, value.data(), value.size());
    const char* old = rep->list.Insert(key, buf);
    if (old == nullptr) {
      rep->bytes.fetch_add(8 + value.size(), std::memory_order_relaxed);
      rep->count.fetch_add(1, std::memory_order_relaxed);
    } else {
      int64_t delta = static_cast<int64_t>(value.size()) -
                      static_cast<int64_t>(DecodeFixed32(old));
      rep->bytes.fetch_add(static_cast<uint64_t>(delta),
                           std::memory_order_relaxed);
    }
  }

  bool Get(uint64_t key, std::string* value) const {
    const char* v = rep_->list.Get(key);
    if (v == nullptr) return false;
    if (value != nullptr) value->assign(v + 4, DecodeFixed32(v));
    return true;
  }

  /// Appends entries in [lo, hi] (up to `limit` total in `out`).
  void RangeScan(uint64_t lo, uint64_t hi, size_t limit,
                 std::vector<std::pair<uint64_t, std::string>>* out) const {
    SkipList::Iterator it(&rep_->list);
    for (it.Seek(lo); it.Valid() && it.key() <= hi && out->size() < limit;
         it.Next()) {
      const char* v = it.value();
      out->emplace_back(it.key(), std::string(v + 4, DecodeFixed32(v)));
    }
  }

  uint64_t ApproximateBytes() const {
    return rep_->bytes.load(std::memory_order_relaxed);
  }
  size_t size() const { return rep_->count.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }
  /// Arena bytes actually reserved (>= ApproximateBytes; for memory
  /// accounting, not the flush threshold).
  size_t MemoryUsage() const { return rep_->arena.MemoryUsage(); }

  /// Copies all entries in sorted order (flush path). The sealed
  /// memtable no longer takes writes when this runs, so the copy is a
  /// consistent image.
  std::vector<std::pair<uint64_t, std::string>> Snapshot() const {
    std::vector<std::pair<uint64_t, std::string>> out;
    out.reserve(size());
    SkipList::Iterator it(&rep_->list);
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      const char* v = it.value();
      out.emplace_back(it.key(), std::string(v + 4, DecodeFixed32(v)));
    }
    return out;
  }

  /// Drops every entry and releases the arena. NOT safe concurrently
  /// with any other call — callers must have exclusive access (the
  /// LSM never clears a shared memtable; it swaps in a fresh one).
  void Clear() { rep_ = std::make_unique<Rep>(); }

 private:
  struct Rep {
    Arena arena;
    SkipList list{&arena};
    std::atomic<uint64_t> bytes{0};
    std::atomic<uint64_t> count{0};
  };

  static void EncodeFixed32(char* dst, uint32_t v) {
    std::memcpy(dst, &v, 4);
  }

  std::unique_ptr<Rep> rep_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_MEMTABLE_H_

// Filter-policy plugin interface of the mini-LSM store, mirroring the
// RocksDB integration described in paper Sect. 9: each SST file carries
// one serialized filter block; the policy is "extended to pass
// query-range information (lower/upper bounds) to the filter".
//
// A policy builds a filter over the sorted keys of an SST at flush time
// (CreateFilter) and reconstitutes a probe object from the stored
// filter block at open time (LoadFilter).

#ifndef BLOOMRF_LSM_FILTER_POLICY_H_
#define BLOOMRF_LSM_FILTER_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace bloomrf {

/// Probe side of a deserialized per-SST filter.
class FilterProbe {
 public:
  virtual ~FilterProbe() = default;
  virtual bool KeyMayMatch(uint64_t key) const = 0;
  virtual bool RangeMayMatch(uint64_t lo, uint64_t hi) const = 0;
  virtual uint64_t MemoryBits() const = 0;
};

class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;
  virtual std::string Name() const = 0;

  /// Builds and serializes a filter for one SST's sorted unique keys.
  virtual std::string CreateFilter(
      const std::vector<uint64_t>& sorted_keys) const = 0;

  /// Reconstructs the probe object from a filter block. Returns null
  /// on corruption (the table then probes nothing and scans).
  virtual std::unique_ptr<FilterProbe> LoadFilter(
      std::string_view data) const = 0;
};

/// Factory helpers for every policy used in the evaluation.
std::unique_ptr<FilterPolicy> NewBloomRFPolicy(double bits_per_key,
                                               double max_range);
std::unique_ptr<FilterPolicy> NewBloomPolicy(double bits_per_key);
std::unique_ptr<FilterPolicy> NewPrefixBloomPolicy(double bits_per_key,
                                                   uint32_t prefix_level);
std::unique_ptr<FilterPolicy> NewRosettaPolicy(double bits_per_key,
                                               uint64_t max_range);
std::unique_ptr<FilterPolicy> NewSurfPolicy(uint32_t suffix_type,
                                            uint32_t suffix_bits);
std::unique_ptr<FilterPolicy> NewFencePointerPolicy(double bits_per_key);

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_FILTER_POLICY_H_

// Filter-policy plugin interface of the mini-LSM store, mirroring the
// RocksDB integration described in paper Sect. 9: each SST file carries
// one serialized filter block; the policy is "extended to pass
// query-range information (lower/upper bounds) to the filter".
//
// A policy builds a filter over the sorted keys of an SST at flush time
// (CreateFilter) and reconstitutes a probe object from the stored
// filter block at open time (LoadFilter). Since the registry refactor
// there is exactly one policy implementation — a generic adapter that
// resolves the backend by FilterRegistry name — and the probe side IS
// the unified PointRangeFilter interface; filter blocks are
// registry-framed (`name | payload`), so any policy instance can load
// any backend's block.

#ifndef BLOOMRF_LSM_FILTER_POLICY_H_
#define BLOOMRF_LSM_FILTER_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "filters/filter.h"
#include "filters/registry.h"

namespace bloomrf {

class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;
  virtual std::string Name() const = 0;

  /// Builds and serializes (registry-framed) a filter for one SST's
  /// sorted unique keys. Returns "" when no filter can be built (e.g.
  /// unknown backend); the table then stores no filter block.
  virtual std::string CreateFilter(
      const std::vector<uint64_t>& sorted_keys) const = 0;

  /// Reconstructs the probe object from a filter block. Returns null
  /// on corruption (the table then probes nothing and scans).
  virtual std::unique_ptr<PointRangeFilter> LoadFilter(
      std::string_view data) const = 0;
};

/// The generic policy: backend selected by registry name ("bloomrf",
/// "rosetta", ...), construction tuned via `params`.
std::unique_ptr<FilterPolicy> NewRegistryPolicy(
    std::string_view name, FilterBuildParams params = {});

/// One-line shims for every backend used in the evaluation (legacy
/// spellings; all forward to NewRegistryPolicy).
std::unique_ptr<FilterPolicy> NewBloomRFPolicy(double bits_per_key,
                                               double max_range);
std::unique_ptr<FilterPolicy> NewBloomPolicy(double bits_per_key);
std::unique_ptr<FilterPolicy> NewPrefixBloomPolicy(double bits_per_key,
                                                   uint32_t prefix_level);
std::unique_ptr<FilterPolicy> NewRosettaPolicy(double bits_per_key,
                                               uint64_t max_range);
std::unique_ptr<FilterPolicy> NewSurfPolicy(uint32_t suffix_type,
                                            uint32_t suffix_bits);
std::unique_ptr<FilterPolicy> NewFencePointerPolicy(double bits_per_key);
std::unique_ptr<FilterPolicy> NewCuckooPolicy(uint32_t fingerprint_bits);

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_FILTER_POLICY_H_

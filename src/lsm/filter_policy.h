// Filter-policy plugin interface of the mini-LSM store, mirroring the
// RocksDB integration described in paper Sect. 9: each SST file carries
// one serialized filter block; the policy is "extended to pass
// query-range information (lower/upper bounds) to the filter".
//
// A policy builds a filter over the sorted keys of an SST at flush time
// (CreateFilter) and reconstitutes a probe object from the stored
// filter block at open time (LoadFilter). Since the registry refactor
// there is exactly one policy implementation — a generic adapter that
// resolves the backend by FilterRegistry name — and the probe side IS
// the unified PointRangeFilter interface; filter blocks are
// registry-framed (`name | payload`), so any policy instance can load
// any backend's block.

#ifndef BLOOMRF_LSM_FILTER_POLICY_H_
#define BLOOMRF_LSM_FILTER_POLICY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/filter_planner.h"
#include "core/workload_sampler.h"
#include "filters/filter.h"
#include "filters/registry.h"

namespace bloomrf {

/// Everything the LSM knows about the table being built that a policy
/// may want for filter selection. All pointers are borrowed for the
/// duration of the CreateFilter call; either may be null (the policy
/// must degrade to its static behavior).
struct FilterBuildContext {
  const WorkloadSampler* sampler = nullptr;  ///< recent-query sketch
  const FilterFeedback* feedback = nullptr;  ///< measured FPR per backend
  uint32_t level = 0;                        ///< output LSM level
  uint64_t table_keys = 0;                   ///< planned key count (hint)
};

class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;
  virtual std::string Name() const = 0;

  /// Builds and serializes (registry-framed) a filter for one SST's
  /// sorted unique keys. Returns "" when no filter can be built (e.g.
  /// unknown backend); the table then stores no filter block.
  virtual std::string CreateFilter(
      const std::vector<uint64_t>& sorted_keys) const = 0;

  /// Context-aware build used by the LSM write path. Static policies
  /// ignore the context; AdaptiveFilterPolicy plans from it.
  virtual std::string CreateFilter(const std::vector<uint64_t>& sorted_keys,
                                   const FilterBuildContext& /*context*/)
      const {
    return CreateFilter(sorted_keys);
  }

  /// True when the policy consumes workload samples and measured-FPR
  /// feedback; the Db then auto-creates a WorkloadSampler and collects
  /// per-table probe outcomes for it.
  virtual bool WantsQueryFeedback() const { return false; }

  /// Reconstructs the probe object from a filter block. Returns null
  /// on corruption (the table then probes nothing and scans).
  virtual std::unique_ptr<PointRangeFilter> LoadFilter(
      std::string_view data) const = 0;
};

struct AdaptiveFilterOptions {
  double bits_per_key = 16.0;
  /// Built verbatim while the sampler has fewer than `min_samples`
  /// observations (cold start, or sampling disabled).
  std::string fallback_backend = "bloomrf";
  double fallback_max_range = 1 << 16;
  uint64_t min_samples = 32;
  /// Feedback gates, forwarded to PlannerOptions.
  uint64_t feedback_min_probes = 512;
  double distrust_cap = 16.0;
};

/// The tentpole policy: re-plans the filter backend for every SST it
/// builds (flush and compaction outputs alike) from the live workload
/// snapshot plus measured false-positive feedback. Tables built under
/// different plans coexist in one tree — blocks are registry-framed, so
/// LoadFilter dispatches on the stored name.
class AdaptiveFilterPolicy : public FilterPolicy {
 public:
  explicit AdaptiveFilterPolicy(AdaptiveFilterOptions options = {});

  std::string Name() const override;
  std::string CreateFilter(
      const std::vector<uint64_t>& sorted_keys) const override;
  std::string CreateFilter(const std::vector<uint64_t>& sorted_keys,
                           const FilterBuildContext& context) const override;
  bool WantsQueryFeedback() const override { return true; }
  std::unique_ptr<PointRangeFilter> LoadFilter(
      std::string_view data) const override;

  /// The decision behind the most recent build (introspection/tests).
  FilterPlan LastPlan() const;
  uint64_t planned_builds() const;
  uint64_t fallback_builds() const;

 private:
  std::string BuildFallback(const std::vector<uint64_t>& sorted_keys) const;

  AdaptiveFilterOptions options_;
  mutable std::mutex mu_;  // guards the introspection state below
  mutable FilterPlan last_plan_;
  mutable uint64_t planned_builds_ = 0;
  mutable uint64_t fallback_builds_ = 0;
};

std::unique_ptr<AdaptiveFilterPolicy> NewAdaptiveFilterPolicy(
    AdaptiveFilterOptions options = {});

/// The generic policy: backend selected by registry name ("bloomrf",
/// "rosetta", ...), construction tuned via `params`.
std::unique_ptr<FilterPolicy> NewRegistryPolicy(
    std::string_view name, FilterBuildParams params = {});

/// One-line shims for every backend used in the evaluation (legacy
/// spellings; all forward to NewRegistryPolicy).
std::unique_ptr<FilterPolicy> NewBloomRFPolicy(double bits_per_key,
                                               double max_range);
std::unique_ptr<FilterPolicy> NewBloomPolicy(double bits_per_key);
std::unique_ptr<FilterPolicy> NewPrefixBloomPolicy(double bits_per_key,
                                                   uint32_t prefix_level);
std::unique_ptr<FilterPolicy> NewRosettaPolicy(double bits_per_key,
                                               uint64_t max_range);
std::unique_ptr<FilterPolicy> NewSurfPolicy(uint32_t suffix_type,
                                            uint32_t suffix_bits);
std::unique_ptr<FilterPolicy> NewFencePointerPolicy(double bits_per_key);
std::unique_ptr<FilterPolicy> NewCuckooPolicy(uint32_t fingerprint_bits);

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_FILTER_POLICY_H_

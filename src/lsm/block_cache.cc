#include "lsm/block_cache.h"

namespace bloomrf {

std::shared_ptr<const CachedBlock> BlockCache::Lookup(uint64_t table_id,
                                                      uint64_t block_idx) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(Key{table_id, block_idx});
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->block;
}

void BlockCache::Insert(uint64_t table_id, uint64_t block_idx,
                        std::shared_ptr<const CachedBlock> block) {
  if (block == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Key key{table_id, block_idx};
  auto it = index_.find(key);
  if (it != index_.end()) {
    charge_bytes_ -= it->second->block->ChargeBytes();
    charge_bytes_ += block->ChargeBytes();
    it->second->block = std::move(block);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    charge_bytes_ += block->ChargeBytes();
    lru_.push_front(Item{key, std::move(block)});
    index_[key] = lru_.begin();
  }
  EvictOverBudgetLocked();
}

void BlockCache::EvictOverBudgetLocked() {
  // Never evict the block just touched: a cache too small for a single
  // block would otherwise thrash to empty and callers would re-read
  // every access anyway.
  while (charge_bytes_ > capacity_bytes_ && lru_.size() > 1) {
    const Item& victim = lru_.back();
    charge_bytes_ -= victim.block->ChargeBytes();
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

size_t BlockCache::charge_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return charge_bytes_;
}

uint64_t BlockCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t BlockCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

uint64_t BlockCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace bloomrf

#include "lsm/version.h"

namespace bloomrf {

std::shared_ptr<const Version> Version::WithSealedActive(
    std::shared_ptr<MemTable> fresh) const {
  std::shared_ptr<Version> next(new Version(Raw{}));
  next->active_ = std::move(fresh);
  next->sealed_ = sealed_;
  next->sealed_.push_back(active_);
  next->tables_ = tables_;
  return next;
}

std::shared_ptr<const Version> Version::WithFlushed(
    const MemTable* flushed, std::shared_ptr<const TableReader> table) const {
  std::shared_ptr<Version> next(new Version(Raw{}));
  next->active_ = active_;
  next->sealed_.reserve(sealed_.size());
  for (const auto& mem : sealed_) {
    if (mem.get() != flushed) next->sealed_.push_back(mem);
  }
  next->tables_ = tables_;
  next->tables_.push_back(std::move(table));
  return next;
}

}  // namespace bloomrf

#include "lsm/version.h"

#include <algorithm>

namespace bloomrf {

std::shared_ptr<const Version> Version::WithSealedActive(
    std::shared_ptr<MemTable> fresh) const {
  std::shared_ptr<Version> next(new Version(Raw{}));
  next->active_ = std::move(fresh);
  next->sealed_ = sealed_;
  next->sealed_.push_back(active_);
  next->levels_ = levels_;
  return next;
}

std::shared_ptr<const Version> Version::WithFlushed(
    const MemTable* flushed, std::shared_ptr<const TableReader> table) const {
  std::shared_ptr<Version> next(new Version(Raw{}));
  next->active_ = active_;
  next->sealed_.reserve(sealed_.size());
  for (const auto& mem : sealed_) {
    if (mem.get() != flushed) next->sealed_.push_back(mem);
  }
  next->levels_ = levels_;
  next->levels_[0].push_back(std::move(table));
  return next;
}

std::shared_ptr<const Version> Version::WithCompaction(
    const std::vector<uint64_t>& input_files, size_t output_level,
    TableList outputs) const {
  std::shared_ptr<Version> next(new Version(Raw{}));
  next->active_ = active_;
  next->sealed_ = sealed_;
  next->levels_.resize(std::max(levels_.size(), output_level + 1));
  auto is_input = [&input_files](const std::shared_ptr<const TableReader>& t) {
    return std::find(input_files.begin(), input_files.end(),
                     t->file_number()) != input_files.end();
  };
  for (size_t level = 0; level < levels_.size(); ++level) {
    for (const auto& table : levels_[level]) {
      if (!is_input(table)) next->levels_[level].push_back(table);
    }
  }
  auto& target = next->levels_[output_level];
  target.insert(target.end(), std::make_move_iterator(outputs.begin()),
                std::make_move_iterator(outputs.end()));
  if (output_level > 0) {
    // Deeper levels are sorted disjoint runs; the outputs cover a key
    // range no surviving file of the level overlaps, so sorting by
    // min_key restores the run invariant.
    std::sort(target.begin(), target.end(),
              [](const auto& a, const auto& b) {
                return a->min_key() < b->min_key();
              });
  }
  return next;
}

std::shared_ptr<const Version> Version::FromLevels(
    std::vector<TableList> levels) {
  std::shared_ptr<Version> v(new Version(Raw{}));
  v->active_ = std::make_shared<MemTable>();
  if (levels.empty()) levels.resize(1);
  v->levels_ = std::move(levels);
  return v;
}

}  // namespace bloomrf

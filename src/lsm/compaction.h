// Leveled-compaction picking for the mini-LSM store.
//
// Shape (classic leveled, RocksDB-style): L0 holds whole flushed
// memtables and its files may overlap; every deeper level is a sorted
// run of disjoint files. When L0 reaches l0_trigger files, ALL of L0
// (plus the overlapping slice of L1) merges into L1; when level i>=1
// exceeds its byte budget (level_base_bytes * multiplier^(i-1)), one
// of its files (round-robin across the key space via a per-level
// cursor, so repeated compactions sweep the whole level) merges with
// the overlapping slice of level i+1.
//
// Picking is pure — it inspects an immutable Version and returns a
// job description; the Db's compaction scheduler executes the merge
// and commits it through the MANIFEST + Version publication. With
// several scheduler workers, each in-flight job claims its input and
// output levels (CompactionClaimBits) and picking skips claimed levels
// (`busy_levels`), so concurrent jobs always work disjoint level pairs
// and can never see each other's inputs.

#ifndef BLOOMRF_LSM_COMPACTION_H_
#define BLOOMRF_LSM_COMPACTION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lsm/version.h"

namespace bloomrf {

struct CompactionConfig {
  size_t l0_trigger = 4;
  uint64_t level_base_bytes = 8ull << 20;
  size_t level_multiplier = 8;
  size_t max_levels = 6;
};

/// Byte budget of level `i` (i >= 1) before it spills downward.
uint64_t LevelTargetBytes(const CompactionConfig& cfg, size_t level);

struct CompactionJob {
  size_t output_level = 1;
  /// Inputs in precedence order: inputs[0] is the newest source; on
  /// duplicate keys the earliest input's value wins.
  std::vector<std::shared_ptr<const TableReader>> inputs;
  /// The same files as (level, file_number) pairs, for the manifest
  /// edit and the Version replacement.
  std::vector<std::pair<uint32_t, uint64_t>> input_files;
};

/// Picks the most pressing job on `v` whose input AND output levels
/// are all free in the `busy_levels` bitmask (bit i = level i claimed
/// by an in-flight job), or nullopt when nothing eligible is over
/// budget. `cursors` must hold cfg.max_levels entries and persists
/// across calls (round-robin position per level).
std::optional<CompactionJob> PickCompaction(const Version& v,
                                            const CompactionConfig& cfg,
                                            std::vector<uint64_t>* cursors,
                                            uint64_t busy_levels = 0);

/// The level-claim bitmask of `job`: every input level plus the output
/// level. Two jobs may run concurrently iff their claims are disjoint
/// — then neither can touch (or re-pick) the other's files, and
/// neither can move data below the other's output level, which keeps
/// each job's TombstoneShadow snapshot conservative for its whole run.
uint64_t CompactionClaimBits(const CompactionJob& job);

/// Splits `job`'s key space into at most `max_subcompactions` disjoint
/// inclusive ranges covering [0, UINT64_MAX], cutting at input-table
/// boundary keys weighted by file bytes so each range holds a roughly
/// equal share of the merge work. Always returns at least one range;
/// returns exactly one when the job is too small to split.
std::vector<std::pair<uint64_t, uint64_t>> PickSubcompactionRanges(
    const CompactionJob& job, size_t max_subcompactions);

/// Decides whether a compaction may physically drop a tombstone.
///
/// A tombstone written to the job's output level is dead weight iff no
/// level BELOW the output can still hold an older value of its key —
/// then nothing remains for it to shadow. The shadow set is the key
/// bounds of every file at levels deeper than the output level,
/// EXCLUDING the job's own inputs (their content is being rewritten
/// into the output, so they shadow nothing afterwards; a whole-tree
/// merge like Db::CompactAll would otherwise see its own inputs as
/// deeper data and never drop a single tombstone).
///
/// Key-range bounds are a conservative over-approximation: a covered
/// key keeps its tombstone even if the deeper file happens not to
/// contain that exact key — never the reverse, so a kept tombstone is
/// at worst wasted bytes while a wrongly dropped one would resurrect
/// deleted data. Snapshotting the bounds at merge start stays safe
/// with concurrent jobs because jobs claim disjoint level sets: data
/// can only appear BELOW this job's output level by a job whose claim
/// includes a level on each side of the output — which would intersect
/// this job's claim — and a concurrent deeper job only rewrites keys
/// within its inputs' bounds, which the snapshot already covers.
/// Concurrent flushes only add L0 files, never below an output.
class TombstoneShadow {
 public:
  /// Shadow of `job` on version `v`: bounds of all files at levels
  /// strictly below job.output_level, minus job's inputs.
  static TombstoneShadow FromVersion(const Version& v,
                                     const CompactionJob& job);
  /// Direct construction from [min,max] bounds (tests / custom jobs).
  static TombstoneShadow FromBounds(
      std::vector<std::pair<uint64_t, uint64_t>> bounds);

  /// True when some deeper file's key range contains `key` — the
  /// tombstone must be kept.
  bool Covers(uint64_t key) const;

  size_t num_ranges() const { return bounds_.size(); }

 private:
  /// Deeper-file key ranges, merged and sorted by lo for binary search.
  std::vector<std::pair<uint64_t, uint64_t>> bounds_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_COMPACTION_H_

// Leveled-compaction picking for the mini-LSM store.
//
// Shape (classic leveled, RocksDB-style): L0 holds whole flushed
// memtables and its files may overlap; every deeper level is a sorted
// run of disjoint files. When L0 reaches l0_trigger files, ALL of L0
// (plus the overlapping slice of L1) merges into L1; when level i>=1
// exceeds its byte budget (level_base_bytes * multiplier^(i-1)), one
// of its files (round-robin across the key space via a per-level
// cursor, so repeated compactions sweep the whole level) merges with
// the overlapping slice of level i+1.
//
// Picking is pure — it inspects an immutable Version and returns a
// job description; the Db's compaction thread executes the merge and
// commits it through the MANIFEST + Version publication.

#ifndef BLOOMRF_LSM_COMPACTION_H_
#define BLOOMRF_LSM_COMPACTION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lsm/version.h"

namespace bloomrf {

struct CompactionConfig {
  size_t l0_trigger = 4;
  uint64_t level_base_bytes = 8ull << 20;
  size_t level_multiplier = 8;
  size_t max_levels = 6;
};

/// Byte budget of level `i` (i >= 1) before it spills downward.
uint64_t LevelTargetBytes(const CompactionConfig& cfg, size_t level);

struct CompactionJob {
  size_t output_level = 1;
  /// Inputs in precedence order: inputs[0] is the newest source; on
  /// duplicate keys the earliest input's value wins.
  std::vector<std::shared_ptr<const TableReader>> inputs;
  /// The same files as (level, file_number) pairs, for the manifest
  /// edit and the Version replacement.
  std::vector<std::pair<uint32_t, uint64_t>> input_files;
};

/// Picks the most pressing job on `v`, or nullopt when the tree is in
/// shape. `cursors` must hold cfg.max_levels entries and persists
/// across calls (round-robin position per level).
std::optional<CompactionJob> PickCompaction(const Version& v,
                                            const CompactionConfig& cfg,
                                            std::vector<uint64_t>* cursors);

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_COMPACTION_H_

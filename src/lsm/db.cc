#include "lsm/db.h"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <map>
#include <system_error>

#include "lsm/table_builder.h"

namespace bloomrf {

Db::Db(DbOptions options) : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (options_.block_cache == nullptr && options_.block_cache_bytes > 0) {
    options_.block_cache =
        std::make_shared<BlockCache>(options_.block_cache_bytes);
  }
}

bool Db::Put(uint64_t key, std::string_view value) {
  memtable_.Put(key, value);
  if (memtable_.ApproximateBytes() >= options_.memtable_bytes) {
    return Flush();
  }
  return true;
}

bool Db::Flush() {
  if (memtable_.empty()) return true;
  auto entries = memtable_.Snapshot();
  TableBuilder builder(options_.filter_policy.get(), options_.block_size);
  for (const auto& [key, value] : entries) builder.Add(key, value);
  std::string path =
      options_.dir + "/" + std::to_string(next_file_number_++) + ".sst";
  TableBuildStats build_stats;
  // The memtable is cleared only once the SST is written and readable;
  // a failed flush keeps all data queryable in memory.
  if (!builder.WriteTo(path, &build_stats)) return false;
  auto reader = TableReader::Open(path, options_.filter_policy.get(), &stats_,
                                  options_.block_cache);
  if (reader == nullptr) return false;
  flush_stats_.filter_create_seconds += build_stats.filter_create_seconds;
  flush_stats_.filter_block_bytes += build_stats.filter_block_bytes;
  ++flush_stats_.sst_files;
  tables_.push_back(std::move(reader));
  memtable_.Clear();
  return true;
}

bool Db::Get(uint64_t key, std::string* value) {
  if (memtable_.Get(key, value)) return true;
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    if ((*it)->Get(key, value, &stats_)) return true;
  }
  return false;
}

std::vector<std::optional<std::string>> Db::MultiGet(
    std::span<const uint64_t> keys) {
  std::vector<std::optional<std::string>> result(keys.size());
  if (keys.empty()) return result;

  // Memtable first (newest data); it already indexes by key. Memtable
  // hits land in `result` directly and mark the key found, so the
  // table passes below skip it.
  auto found = std::make_unique<bool[]>(keys.size());
  size_t remaining = keys.size();
  std::string value;
  for (size_t i = 0; i < keys.size(); ++i) {
    found[i] = memtable_.Get(keys[i], &value);
    if (found[i]) {
      result[i] = value;
      --remaining;
    }
  }

  // Then the tables newest-first, chaining one found/values array pair
  // so each table only probes keys no newer source resolved.
  std::vector<std::string> values(keys.size());
  for (auto it = tables_.rbegin(); it != tables_.rend() && remaining > 0;
       ++it) {
    remaining -= (*it)->MultiGet(keys, found.get(), values.data(), &stats_);
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    if (found[i] && !result[i].has_value()) result[i] = std::move(values[i]);
  }
  return result;
}

std::vector<std::pair<uint64_t, std::string>> Db::RangeScan(uint64_t lo,
                                                            uint64_t hi,
                                                            size_t limit) {
  // Newest-first merge: the first writer of a key wins.
  std::map<uint64_t, std::string> merged;
  std::vector<std::pair<uint64_t, std::string>> chunk;
  memtable_.RangeScan(lo, hi, limit, &chunk);
  for (auto& [k, v] : chunk) merged.emplace(k, std::move(v));
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    chunk.clear();
    (*it)->RangeScan(lo, hi, limit, &chunk, &stats_);
    for (auto& [k, v] : chunk) merged.emplace(k, std::move(v));
  }
  std::vector<std::pair<uint64_t, std::string>> out;
  for (auto& [k, v] : merged) {
    if (out.size() >= limit) break;
    out.emplace_back(k, std::move(v));
  }
  return out;
}

std::vector<std::vector<std::pair<uint64_t, std::string>>> Db::ScanRange(
    std::span<const uint64_t> los, std::span<const uint64_t> his,
    size_t limit) {
  assert(los.size() == his.size());
  const size_t n = los.size();
  std::vector<std::vector<std::pair<uint64_t, std::string>>> results(n);
  if (n == 0) return results;

  // Newest-first merge per range, exactly like RangeScan: the first
  // writer of a key wins.
  std::vector<std::map<uint64_t, std::string>> merged(n);
  std::vector<std::pair<uint64_t, std::string>> chunk;
  for (size_t i = 0; i < n; ++i) {
    chunk.clear();
    memtable_.RangeScan(los[i], his[i], limit, &chunk);
    for (auto& [k, v] : chunk) merged[i].emplace(k, std::move(v));
  }

  // One batched filter probe per table; only ranges the filter cannot
  // exclude touch data blocks (cache-served via GetBlock).
  auto may_match = std::make_unique<bool[]>(n);
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    (*it)->RangeMultiProbe(los, his, may_match.get(), &stats_);
    for (size_t i = 0; i < n; ++i) {
      if (!may_match[i]) continue;
      chunk.clear();
      (*it)->ScanBlocks(los[i], his[i], limit, &chunk, &stats_);
      for (auto& [k, v] : chunk) merged[i].emplace(k, std::move(v));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    auto& out = results[i];
    for (auto& [k, v] : merged[i]) {
      if (out.size() >= limit) break;
      out.emplace_back(k, std::move(v));
    }
  }
  return results;
}

bool Db::RangeMayMatch(uint64_t lo, uint64_t hi) {
  std::vector<std::pair<uint64_t, std::string>> probe;
  memtable_.RangeScan(lo, hi, 1, &probe);
  if (!probe.empty()) return true;
  bool any = false;
  for (auto& table : tables_) {
    if (table->filter() != nullptr) {
      if (table->RangeScan(lo, hi, 0, nullptr, &stats_)) any = true;
    } else {
      if (lo <= table->max_key() && hi >= table->min_key()) any = true;
    }
  }
  return any;
}

uint64_t Db::filter_memory_bits() const {
  uint64_t total = 0;
  for (const auto& table : tables_) total += table->filter_memory_bits();
  return total;
}

}  // namespace bloomrf

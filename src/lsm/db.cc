#include "lsm/db.h"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <map>
#include <system_error>

#include "lsm/table_builder.h"

namespace bloomrf {

Db::Db(DbOptions options) : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (options_.block_cache == nullptr && options_.block_cache_bytes > 0) {
    options_.block_cache =
        std::make_shared<BlockCache>(options_.block_cache_bytes);
  }
  if (options_.background_flush) {
    flush_thread_ = std::thread([this] { FlushWorker(); });
  }
}

Db::~Db() {
  if (flush_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      stop_ = true;
    }
    flush_work_cv_.notify_all();
    flush_thread_.join();  // worker drains the queue before exiting
  }
}

bool Db::Put(uint64_t key, std::string_view value) {
  std::lock_guard<std::mutex> lock(write_mu_);
  // Only write_mu_ holders swap the active memtable, so this snapshot
  // stays the active one for the whole call.
  auto active = versions_.Current()->active();
  active->Put(key, value);
  if (active->ApproximateBytes() >= options_.memtable_bytes) {
    return SealActiveLocked();
  }
  return true;
}

bool Db::SealActiveLocked() {
  std::shared_ptr<const MemTable> sealed;
  {
    // One publication swaps in a fresh active memtable and records the
    // old one as sealed, so no reader interleaving can miss it.
    std::lock_guard<std::mutex> lock(version_mu_);
    auto current = versions_.Current();
    if (current->active()->empty()) return true;
    sealed = current->active();
    versions_.Publish(
        current->WithSealedActive(std::make_shared<MemTable>()));
  }
  bool pending_failure = false;
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_queue_.push_back(std::move(sealed));
    // A previously failed flush parks the worker; sealing counts as a
    // retry trigger too, so a Put-only application self-recovers once
    // the disk heals — and hears about the failure (return false)
    // instead of growing the queue silently forever.
    if (flush_error_) {
      flush_error_ = false;
      pending_failure = true;
    }
  }
  if (!options_.background_flush) return DrainQueueInline();
  flush_work_cv_.notify_one();
  return !pending_failure;
}

std::shared_ptr<const TableReader> Db::WriteSst(const MemTable& mem) {
  if (options_.flush_fault && options_.flush_fault()) return nullptr;
  auto entries = mem.Snapshot();
  TableBuilder builder(options_.filter_policy.get(), options_.block_size);
  for (const auto& [key, value] : entries) builder.Add(key, value);
  std::string path =
      options_.dir + "/" +
      std::to_string(next_file_number_.fetch_add(1, std::memory_order_relaxed)) +
      ".sst";
  TableBuildStats build_stats;
  if (!builder.WriteTo(path, &build_stats)) return nullptr;
  std::shared_ptr<const TableReader> reader = TableReader::Open(
      path, options_.filter_policy.get(), &stats_, options_.block_cache);
  if (reader == nullptr) return nullptr;
  {
    std::lock_guard<std::mutex> lock(flush_stats_mu_);
    flush_stats_.filter_create_seconds += build_stats.filter_create_seconds;
    flush_stats_.filter_block_bytes += build_stats.filter_block_bytes;
    ++flush_stats_.sst_files;
  }
  return reader;
}

bool Db::FlushSealed(const std::shared_ptr<const MemTable>& sealed) {
  // The sealed memtable is dropped from the Version only once the SST
  // is written and readable; a failed flush keeps the data queryable
  // from the Version's sealed list.
  auto table = WriteSst(*sealed);
  if (table == nullptr) return false;
  std::lock_guard<std::mutex> lock(version_mu_);
  versions_.Publish(
      versions_.Current()->WithFlushed(sealed.get(), std::move(table)));
  return true;
}

bool Db::DrainQueueInline() {
  // One inline drainer at a time: without this, two sync-mode Flush
  // callers could both write the queue-front memtable's SST.
  std::lock_guard<std::mutex> drain_lock(inline_drain_mu_);
  std::unique_lock<std::mutex> lock(flush_mu_);
  while (!flush_queue_.empty()) {
    auto sealed = flush_queue_.front();  // stays queued until success
    lock.unlock();
    bool ok = FlushSealed(sealed);
    lock.lock();
    if (!ok) return false;  // retried (in order) by the next drain call
    flush_queue_.pop_front();
  }
  return true;
}

void Db::FlushWorker() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  for (;;) {
    // Park while idle — and also after a failure, instead of
    // hot-looping against a broken disk: only a drain call (which
    // clears flush_error_) or shutdown triggers the retry.
    flush_work_cv_.wait(lock, [this] {
      return stop_ || (!flush_queue_.empty() && !flush_error_);
    });
    if (flush_queue_.empty()) {
      if (stop_) return;
      continue;
    }
    if (flush_error_ && !stop_) continue;  // parked until a retry trigger
    flush_error_ = false;                  // shutdown: one final retry
    auto sealed = flush_queue_.front();  // stays queued until success
    lock.unlock();
    bool ok = FlushSealed(sealed);
    lock.lock();
    if (ok) {
      flush_queue_.pop_front();
    } else {
      flush_error_ = true;
      // Shutdown cannot wait for the disk to heal: give this memtable
      // up so the destructor's join terminates (it has no way to
      // report; the last drain already returned false).
      if (stop_) flush_queue_.pop_front();
    }
    flush_done_cv_.notify_all();
  }
}

bool Db::Flush() {
  bool sealed_ok;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    sealed_ok = SealActiveLocked();
  }
  return WaitForFlush() && sealed_ok;
}

bool Db::WaitForFlush() {
  if (!options_.background_flush) return DrainQueueInline();
  std::unique_lock<std::mutex> lock(flush_mu_);
  if (flush_error_) {
    // One retry per drain call; the flag comes back if it fails again.
    flush_error_ = false;
    flush_work_cv_.notify_all();
  }
  flush_done_cv_.wait(lock,
                      [this] { return flush_queue_.empty() || flush_error_; });
  return !flush_error_;
}

bool Db::Get(uint64_t key, std::string* value) {
  auto version = versions_.Current();
  if (version->active()->Get(key, value)) return true;
  const auto& sealed = version->sealed();
  for (auto it = sealed.rbegin(); it != sealed.rend(); ++it) {
    if ((*it)->Get(key, value)) return true;
  }
  const auto& tables = version->tables();
  for (auto it = tables.rbegin(); it != tables.rend(); ++it) {
    if ((*it)->Get(key, value, &stats_)) return true;
  }
  return false;
}

std::vector<std::optional<std::string>> Db::MultiGet(
    std::span<const uint64_t> keys) {
  std::vector<std::optional<std::string>> result(keys.size());
  if (keys.empty()) return result;

  auto version = versions_.Current();

  // Memtables first (newest data); they already index by key. Hits
  // land in `result` directly and mark the key found, so the table
  // passes below skip it.
  auto found = std::make_unique<bool[]>(keys.size());
  size_t remaining = keys.size();
  std::string value;
  for (size_t i = 0; i < keys.size(); ++i) {
    found[i] = version->active()->Get(keys[i], &value);
    if (found[i]) {
      result[i] = value;
      --remaining;
    }
  }
  const auto& sealed = version->sealed();
  for (auto it = sealed.rbegin(); it != sealed.rend() && remaining > 0; ++it) {
    for (size_t i = 0; i < keys.size(); ++i) {
      if (found[i]) continue;
      if ((*it)->Get(keys[i], &value)) {
        found[i] = true;
        result[i] = value;
        --remaining;
      }
    }
  }

  // Then the tables newest-first, chaining one found/values array pair
  // so each table only probes keys no newer source resolved.
  std::vector<std::string> values(keys.size());
  const auto& tables = version->tables();
  for (auto it = tables.rbegin(); it != tables.rend() && remaining > 0; ++it) {
    remaining -= (*it)->MultiGet(keys, found.get(), values.data(), &stats_);
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    if (found[i] && !result[i].has_value()) result[i] = std::move(values[i]);
  }
  return result;
}

std::vector<std::pair<uint64_t, std::string>> Db::RangeScan(uint64_t lo,
                                                            uint64_t hi,
                                                            size_t limit) {
  auto version = versions_.Current();

  // Newest-first merge: the first writer of a key wins.
  std::map<uint64_t, std::string> merged;
  std::vector<std::pair<uint64_t, std::string>> chunk;
  version->active()->RangeScan(lo, hi, limit, &chunk);
  for (auto& [k, v] : chunk) merged.emplace(k, std::move(v));
  const auto& sealed = version->sealed();
  for (auto it = sealed.rbegin(); it != sealed.rend(); ++it) {
    chunk.clear();
    (*it)->RangeScan(lo, hi, limit, &chunk);
    for (auto& [k, v] : chunk) merged.emplace(k, std::move(v));
  }
  const auto& tables = version->tables();
  for (auto it = tables.rbegin(); it != tables.rend(); ++it) {
    chunk.clear();
    (*it)->RangeScan(lo, hi, limit, &chunk, &stats_);
    for (auto& [k, v] : chunk) merged.emplace(k, std::move(v));
  }
  std::vector<std::pair<uint64_t, std::string>> out;
  for (auto& [k, v] : merged) {
    if (out.size() >= limit) break;
    out.emplace_back(k, std::move(v));
  }
  return out;
}

std::vector<std::vector<std::pair<uint64_t, std::string>>> Db::ScanRange(
    std::span<const uint64_t> los, std::span<const uint64_t> his,
    size_t limit) {
  assert(los.size() == his.size());
  const size_t n = los.size();
  std::vector<std::vector<std::pair<uint64_t, std::string>>> results(n);
  if (n == 0) return results;

  auto version = versions_.Current();

  // Newest-first merge per range, exactly like RangeScan: the first
  // writer of a key wins.
  std::vector<std::map<uint64_t, std::string>> merged(n);
  std::vector<std::pair<uint64_t, std::string>> chunk;
  for (size_t i = 0; i < n; ++i) {
    chunk.clear();
    version->active()->RangeScan(los[i], his[i], limit, &chunk);
    for (auto& [k, v] : chunk) merged[i].emplace(k, std::move(v));
  }
  const auto& sealed = version->sealed();
  for (auto it = sealed.rbegin(); it != sealed.rend(); ++it) {
    for (size_t i = 0; i < n; ++i) {
      chunk.clear();
      (*it)->RangeScan(los[i], his[i], limit, &chunk);
      for (auto& [k, v] : chunk) merged[i].emplace(k, std::move(v));
    }
  }

  // One batched filter probe per table; only ranges the filter cannot
  // exclude touch data blocks (cache-served via GetBlock).
  auto may_match = std::make_unique<bool[]>(n);
  const auto& tables = version->tables();
  for (auto it = tables.rbegin(); it != tables.rend(); ++it) {
    (*it)->RangeMultiProbe(los, his, may_match.get(), &stats_);
    for (size_t i = 0; i < n; ++i) {
      if (!may_match[i]) continue;
      chunk.clear();
      (*it)->ScanBlocks(los[i], his[i], limit, &chunk, &stats_);
      for (auto& [k, v] : chunk) merged[i].emplace(k, std::move(v));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    auto& out = results[i];
    for (auto& [k, v] : merged[i]) {
      if (out.size() >= limit) break;
      out.emplace_back(k, std::move(v));
    }
  }
  return results;
}

bool Db::RangeMayMatch(uint64_t lo, uint64_t hi) {
  auto version = versions_.Current();
  std::vector<std::pair<uint64_t, std::string>> probe;
  version->active()->RangeScan(lo, hi, 1, &probe);
  if (!probe.empty()) return true;
  for (const auto& mem : version->sealed()) {
    probe.clear();
    mem->RangeScan(lo, hi, 1, &probe);
    if (!probe.empty()) return true;
  }
  bool any = false;
  for (const auto& table : version->tables()) {
    if (table->filter() != nullptr) {
      if (table->RangeScan(lo, hi, 0, nullptr, &stats_)) any = true;
    } else {
      if (lo <= table->max_key() && hi >= table->min_key()) any = true;
    }
  }
  return any;
}

DbFlushStats Db::flush_stats() const {
  std::lock_guard<std::mutex> lock(flush_stats_mu_);
  return flush_stats_;
}

uint64_t Db::filter_memory_bits() const {
  uint64_t total = 0;
  for (const auto& table : versions_.Current()->tables()) {
    total += table->filter_memory_bits();
  }
  return total;
}

}  // namespace bloomrf

#include "lsm/db.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <system_error>
#include <unordered_set>

#include "lsm/table_builder.h"

namespace bloomrf {

namespace {

/// Parses "<stem><number><suffix>" names, e.g. wal-12.log or 7.sst.
bool ParseNumberedFile(const std::string& name, const std::string& stem,
                       const std::string& suffix, uint64_t* number) {
  if (name.size() <= stem.size() + suffix.size()) return false;
  if (name.compare(0, stem.size(), stem) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  std::string digits =
      name.substr(stem.size(), name.size() - stem.size() - suffix.size());
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *number = value;
  return true;
}

/// All files in `dir` matching stem/suffix, sorted by number.
std::vector<std::pair<uint64_t, std::string>> ListNumberedFiles(
    const std::string& dir, const std::string& stem,
    const std::string& suffix) {
  std::vector<std::pair<uint64_t, std::string>> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t number;
    if (ParseNumberedFile(entry.path().filename().string(), stem, suffix,
                          &number)) {
      files.emplace_back(number, entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// All SSTs of the current Version in read precedence order: L0
/// newest-first (flush order reversed), then each deeper level. Within
/// a deeper level the files are disjoint, so their order carries no
/// recency meaning.
std::vector<const TableReader*> TablesNewestFirst(const Version& v) {
  std::vector<const TableReader*> out;
  const auto& levels = v.levels();
  out.reserve(v.table_count());
  for (auto it = levels[0].rbegin(); it != levels[0].rend(); ++it) {
    out.push_back(it->get());
  }
  for (size_t level = 1; level < levels.size(); ++level) {
    for (const auto& table : levels[level]) out.push_back(table.get());
  }
  return out;
}

}  // namespace

Db::Db(DbOptions options) : options_(std::move(options)) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (!options_.wal_dir.empty()) {
    std::filesystem::create_directories(options_.wal_dir, ec);
  }
  if (options_.block_cache == nullptr && options_.block_cache_bytes > 0) {
    options_.block_cache =
        std::make_shared<BlockCache>(options_.block_cache_bytes);
  }
  // Sampling is on when asked for explicitly or implied by an adaptive
  // policy; a caller-supplied sampler is honored either way.
  const bool wants_sampling =
      options_.sample_queries ||
      (options_.filter_policy != nullptr &&
       options_.filter_policy->WantsQueryFeedback());
  if (options_.workload_sampler == nullptr && wants_sampling) {
    options_.workload_sampler =
        std::make_shared<WorkloadSampler>(options_.sampler_period_log2);
  }
  sampler_ = options_.workload_sampler.get();
  compact_cfg_.l0_trigger = std::max<size_t>(2, options_.l0_compaction_trigger);
  compact_cfg_.level_base_bytes = std::max<uint64_t>(1, options_.level_base_bytes);
  compact_cfg_.level_multiplier =
      std::max<size_t>(2, options_.level_size_multiplier);
  compact_cfg_.max_levels =
      std::min<size_t>(64, std::max<size_t>(2, options_.max_levels));
  compact_cursors_.assign(compact_cfg_.max_levels, 0);
  subcompact_pool_ = options_.compaction_pool;
  if (subcompact_pool_ == nullptr) {
    // The merging thread itself works one range (TaskGroup::Wait
    // steals), so a fan-out of N needs N-1 pool workers.
    const size_t subs = EffectiveSubcompactions();
    subcompact_pool_ = std::make_shared<ThreadPool>(subs > 1 ? subs - 1 : 0);
  }
  Recover();
  active_ = versions_.Current()->active();
  if (options_.wal) RotateWal();
  if (options_.background_flush) {
    flush_thread_ = std::thread([this] { FlushWorker(); });
  }
  if (options_.compaction) {
    const size_t workers = std::max<size_t>(1, options_.compaction_threads);
    compact_threads_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      compact_threads_.emplace_back([this] { CompactionWorker(); });
    }
  }
}

Db::~Db() {
  if (flush_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      stop_ = true;
    }
    flush_work_cv_.notify_all();
    flush_thread_.join();  // worker drains the queue before exiting
  }
  if (!compact_threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(compact_mu_);
      compact_stop_ = true;
    }
    compact_work_cv_.notify_all();
    // Every worker finishes its in-flight job (subcompactions
    // included — the job blocks on its TaskGroup) before exiting, so
    // nothing leaks and no half-committed state survives.
    for (std::thread& worker : compact_threads_) worker.join();
    compact_threads_.clear();
  }
  if (wal_ != nullptr) {
    if (active_->empty()) {
      // Clean close with nothing unflushed: zero records went into the
      // current log since its rotation (appends and memtable inserts
      // travel together), so it is empty — remove the litter.
      std::string path = wal_->path();
      wal_.reset();
      env_->DeleteFile(path);
    } else {
      // Push any OS-buffered WAL bytes down so a clean close is
      // recoverable even without wal_fsync.
      wal_->Sync();
    }
  }
}

void Db::QuarantineTable(const std::string& path) {
  env_->RenameFile(path, path + ".corrupt");
  ++stats_.tables_quarantined;
  ++recovery_stats_.tables_quarantined;
  stats_.SetLastError("recover: quarantined unreadable " + path);
}

std::vector<Version::TableList> Db::OpenTablesFromManifest(
    const ManifestState& state, uint64_t* max_file_seen) {
  std::vector<Version::TableList> levels(
      std::max<size_t>(1, state.levels.size()));
  for (size_t level = 0; level < state.levels.size(); ++level) {
    for (const FileMeta& meta : state.levels[level]) {
      *max_file_seen = std::max(*max_file_seen, meta.file_number);
      std::string path = SstPath(meta.file_number);
      auto reader =
          TableReader::Open(path, options_.filter_policy.get(), &stats_,
                            options_.block_cache, meta.file_number);
      if (reader == nullptr) {
        // A manifest-referenced SST was fsynced before the manifest
        // record existed, so this is real corruption (or deletion by
        // hand), not a torn flush: move it aside and keep serving the
        // rest of the tree.
        QuarantineTable(path);
        continue;
      }
      reader->set_level(static_cast<uint32_t>(level));
      levels[level].push_back(std::move(reader));
      ++recovery_stats_.tables_loaded;
    }
  }
  return levels;
}

void Db::Recover() {
  // Transient staging litter from a previous life (crash between a
  // tmp-file write and its rename) is never referenced by anything:
  // delete it before it can shadow real files.
  {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(options_.dir, ec)) {
      if (entry.path().extension() == ".tmp") {
        env_->DeleteFile(entry.path().string());
      }
    }
  }

  // Manifest first: CURRENT names the live one; a missing or torn
  // CURRENT falls back to the newest manifest holding any decodable
  // edits; a directory with neither gets its *.sst files imported at
  // L0 by number order (pre-MANIFEST layout, one-shot).
  ManifestState state;
  bool have_manifest = false;
  uint64_t manifest_number = ReadCurrentManifestNumber(options_.dir);
  uint64_t max_manifest_seen = manifest_number;
  if (manifest_number != 0 &&
      env_->FileExists(ManifestFileName(options_.dir, manifest_number))) {
    ManifestReplay(ManifestFileName(options_.dir, manifest_number), &state);
    have_manifest = true;
  }
  auto manifests = ListNumberedFiles(options_.dir, "MANIFEST-", "");
  if (!manifests.empty()) {
    max_manifest_seen = std::max(max_manifest_seen, manifests.back().first);
  }
  if (!have_manifest) {
    for (auto it = manifests.rbegin(); it != manifests.rend(); ++it) {
      ManifestState candidate;
      ManifestReplay(it->second, &candidate);
      if (candidate.edits > 0) {
        state = std::move(candidate);
        manifest_number = it->first;
        have_manifest = true;
        break;
      }
    }
  }
  recovery_stats_.manifest_edits_replayed = state.edits;
  recovery_stats_.manifest_clean = state.clean;

  uint64_t max_file = 0;
  std::vector<Version::TableList> levels;
  if (have_manifest) {
    levels = OpenTablesFromManifest(state, &max_file);
    // SSTs on disk but absent from the manifest were written durably
    // and then orphaned by a crash before their manifest edit landed;
    // their WAL files survived (deletion follows the edit), so the
    // data returns through replay below. Remove the orphans — but keep
    // their numbers burned so a reused number can never pair a stale
    // file with a new manifest entry.
    std::unordered_set<uint64_t> referenced;
    for (const auto& level : state.levels) {
      for (const FileMeta& meta : level) referenced.insert(meta.file_number);
    }
    for (const auto& [number, path] :
         ListNumberedFiles(options_.dir, "", ".sst")) {
      max_file = std::max(max_file, number);
      if (referenced.count(number) == 0) env_->DeleteFile(path);
    }
  } else {
    auto ssts = ListNumberedFiles(options_.dir, "", ".sst");
    levels.resize(1);
    for (const auto& [number, path] : ssts) {
      recovery_stats_.legacy_import = true;
      max_file = std::max(max_file, number);
      auto reader =
          TableReader::Open(path, options_.filter_policy.get(), &stats_,
                            options_.block_cache, number);
      if (reader == nullptr) {
        // Legacy torn SST from a crash mid-flush: its WAL was never
        // deleted, so the data comes back through replay below.
        QuarantineTable(path);
        continue;
      }
      levels[0].push_back(std::move(reader));
      ++recovery_stats_.tables_loaded;
    }
  }
  {
    std::lock_guard<std::mutex> lock(version_mu_);
    versions_.Publish(Version::FromLevels(std::move(levels)));
  }
  UpdateTombstonesLive();
  next_file_number_.store(std::max(state.next_file_number, max_file + 1),
                          std::memory_order_relaxed);
  flushed_through_log_ = state.log_number;
  next_manifest_number_ = max_manifest_seen + 1;

  // Every open starts a fresh snapshot manifest, so recovery work
  // (quarantines, orphan cleanup, legacy import) is captured durably
  // and old manifests never grow without bound. Failure (unwritable
  // directory) is tolerated: the store runs, flushes will keep failing
  // until the disk heals, and last_error says why.
  {
    std::lock_guard<std::mutex> lock(version_mu_);
    if (WriteManifestSnapshotLocked(*versions_.Current())) {
      for (const auto& [number, path] : manifests) {
        if (number != manifest_->number()) env_->DeleteFile(path);
      }
    }
  }

  // WAL replay: logs the manifest proved flushed are deleted unread; a
  // crash between a flush's manifest commit and its log deletion just
  // leaves them here for us. Every surviving newer log replays oldest
  // first into the fresh active memtable, so overwrites re-apply in
  // original order and the memtable ends bit-identical to the
  // pre-crash one.
  auto logs = ListNumberedFiles(WalDirPath(), "wal-", ".log");
  uint64_t max_log = state.log_number;
  auto* active = versions_.Current()->active().get();
  for (const auto& [number, path] : logs) {
    if (number <= state.log_number) {
      env_->DeleteFile(path);
      ++recovery_stats_.wal_files_skipped;
      continue;
    }
    max_log = std::max(max_log, number);
    WalReplayResult replay = WalReplay(
        path, [active](uint64_t key, std::string_view value, bool is_delete) {
          if (is_delete) {
            active->Delete(key);
          } else {
            active->Put(key, value);
          }
        });
    ++recovery_stats_.wal_files_replayed;
    recovery_stats_.wal_records_replayed += replay.records;
    recovery_stats_.wal_entries_replayed += replay.entries;
    recovery_stats_.wal_clean &= replay.clean;
  }
  // The replayed data is only covered by the logs it came from: keep
  // them until the memtable holding it flushes (active_max_log_ rides
  // into the next seal's max_log).
  next_wal_number_ = max_log + 1;
  active_max_log_ = max_log;
}

bool Db::WriteManifestSnapshotLocked(const Version& v) {
  const uint64_t number = next_manifest_number_++;
  auto writer = std::make_unique<ManifestWriter>(env_, options_.dir, number);
  VersionEdit snap;
  snap.SetLogNumber(flushed_through_log_);
  snap.SetNextFileNumber(next_file_number_.load(std::memory_order_relaxed));
  const auto& levels = v.levels();
  for (size_t level = 0; level < levels.size(); ++level) {
    for (const auto& table : levels[level]) {
      FileMeta meta;
      meta.file_number = table->file_number();
      meta.smallest = table->min_key();
      meta.largest = table->max_key();
      meta.file_bytes = table->file_size();
      snap.added.emplace_back(static_cast<uint32_t>(level), meta);
    }
  }
  if (!writer->ok() || !writer->Append(snap) ||
      !SetCurrentFile(env_, options_.dir, number)) {
    env_->DeleteFile(ManifestFileName(options_.dir, number));
    stats_.SetLastError("manifest: snapshot rewrite failed");
    // Back off the size trigger so a persistently failing rewrite is
    // not re-attempted on every subsequent edit; a broken live
    // manifest still forces a retry each time.
    if (manifest_ != nullptr && manifest_->ok()) {
      manifest_rewrite_limit_ = std::max<uint64_t>(
          manifest_rewrite_limit_ * 2, manifest_->bytes_written() * 2);
    }
    return false;
  }
  const uint64_t old_number = manifest_ != nullptr ? manifest_->number() : 0;
  manifest_ = std::move(writer);
  manifest_rewrite_limit_ = std::max<uint64_t>(
      options_.manifest_rewrite_bytes, manifest_->bytes_written() + 1);
  ++stats_.manifest_rewrites;
  if (old_number != 0) {
    env_->DeleteFile(ManifestFileName(options_.dir, old_number));
  }
  return true;
}

bool Db::AppendManifestEdit(const VersionEdit& edit, const Version& post) {
  if (manifest_ != nullptr && manifest_->ok() &&
      manifest_->bytes_written() < manifest_rewrite_limit_) {
    if (manifest_->Append(edit)) {
      ++stats_.manifest_appends;
      return true;
    }
    stats_.SetLastError("manifest: append failed on " + manifest_->path());
  }
  // Broken or oversized: self-heal by starting a fresh manifest whose
  // one record snapshots the post-edit state.
  return WriteManifestSnapshotLocked(post);
}

void Db::RotateWal() {
  uint64_t number = next_wal_number_++;
  wal_ = std::make_unique<WalWriter>(
      WalDirPath() + "/wal-" + std::to_string(number) + ".log",
      options_.wal_fsync, &stats_, env_);
  active_max_log_ = number;
}

void Db::DeleteLogsThrough(uint64_t max_log) {
  if (max_log == 0) return;
  for (const auto& [number, path] :
       ListNumberedFiles(WalDirPath(), "wal-", ".log")) {
    if (number <= max_log) env_->DeleteFile(path);
  }
}

bool Db::Put(uint64_t key, std::string_view value) {
  KV kv{key, value};
  return PutBatch({&kv, 1});
}

bool Db::Delete(uint64_t key) { return DeleteBatch({&key, 1}); }

bool Db::DeleteBatch(std::span<const uint64_t> keys) {
  if (keys.empty()) return true;
  bool ok = true;
  uint64_t bytes;
  {
    // Same discipline as PutBatch: log + apply under one shared hold
    // of the seal lock so the delete record and its tombstones stay in
    // the same memtable generation.
    std::shared_lock<std::shared_mutex> seal_lock(seal_mu_);
    if (wal_ != nullptr) {
      thread_local std::string record;
      WalEncodeDeletesTo(keys, &record);
      ok = wal_->Append(record);
    }
    for (uint64_t key : keys) active_->Delete(key);
    bytes = active_->ApproximateBytes();
  }
  if (bytes >= options_.memtable_bytes) {
    if (!SealActive(/*force=*/false)) ok = false;
  }
  return ok;
}

bool Db::WriteBatch(std::span<const WriteOp> ops) {
  if (ops.empty()) return true;
  bool ok = true;
  uint64_t bytes;
  {
    std::shared_lock<std::shared_mutex> seal_lock(seal_mu_);
    if (wal_ != nullptr) {
      thread_local std::string record;
      WalEncodeOpsTo(ops, &record);
      ok = wal_->Append(record);
    }
    for (const WriteOp& op : ops) {
      if (op.is_delete) {
        active_->Delete(op.key);
      } else {
        active_->Put(op.key, op.value);
      }
    }
    bytes = active_->ApproximateBytes();
  }
  if (bytes >= options_.memtable_bytes) {
    if (!SealActive(/*force=*/false)) ok = false;
  }
  return ok;
}

bool Db::PutBatch(std::span<const KV> kvs) {
  if (kvs.empty()) return true;
  bool ok = true;
  uint64_t bytes;
  {
    // Shared section: writers run concurrently with each other; only
    // the seal swap excludes them. Logging and inserting under the
    // same shared hold pins the record to the memtable generation —
    // rotation can never slip between them.
    std::shared_lock<std::shared_mutex> seal_lock(seal_mu_);
    if (wal_ != nullptr) {
      // Reused per thread so the hot path does not allocate a fresh
      // record buffer on every Put.
      thread_local std::string record;
      WalEncodeRecordTo(kvs, &record);
      ok = wal_->Append(record);
    }
    for (const KV& kv : kvs) active_->Put(kv.key, kv.value);
    bytes = active_->ApproximateBytes();
  }
  if (bytes >= options_.memtable_bytes) {
    if (!SealActive(/*force=*/false)) ok = false;
  }
  return ok;
}

bool Db::SealActive(bool force) {
  QueuedFlush entry;
  {
    std::unique_lock<std::shared_mutex> seal_lock(seal_mu_);
    if (active_->empty()) return true;
    if (!force && active_->ApproximateBytes() < options_.memtable_bytes) {
      return true;  // a concurrent sealer won; fresh memtable in place
    }
    auto fresh = std::make_shared<MemTable>();
    {
      // One publication swaps in the fresh active memtable and records
      // the old one as sealed, so no reader interleaving can miss it.
      std::lock_guard<std::mutex> lock(version_mu_);
      versions_.Publish(versions_.Current()->WithSealedActive(fresh));
    }
    entry.mem = active_;
    entry.max_log = active_max_log_;
    active_ = std::move(fresh);
    if (options_.wal) RotateWal();
  }
  bool pending_failure = false;
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_queue_.push_back(std::move(entry));
    // A previously failed flush parks the worker; sealing counts as a
    // retry trigger too, so a Put-only application self-recovers once
    // the disk heals — and hears about the failure (return false)
    // instead of growing the queue silently forever.
    if (flush_error_) {
      flush_error_ = false;
      pending_failure = true;
    }
  }
  if (!options_.background_flush) return DrainQueueInline();
  flush_work_cv_.notify_one();
  return !pending_failure;
}

std::shared_ptr<const TableReader> Db::WriteSst(const MemTable& mem,
                                                FileMeta* meta) {
  auto entries = mem.Snapshot();
  TableBuilder builder(options_.filter_policy.get(), options_.block_size);
  FilterFeedback feedback;
  if (sampler_ != nullptr) {
    // Hand the policy what the loop has learned: the live workload
    // sketch and the measured FPR of every backend currently serving.
    feedback = CollectFilterFeedback();
    FilterBuildContext ctx;
    ctx.sampler = sampler_;
    ctx.feedback = &feedback;
    ctx.level = 0;
    ctx.table_keys = entries.size();
    builder.SetFilterContext(ctx);
  }
  for (const ScanEntry& e : entries) builder.Add(e.key, e.value, e.tombstone);
  const uint64_t file_number =
      next_file_number_.fetch_add(1, std::memory_order_relaxed);
  const std::string path = SstPath(file_number);
  TableBuildStats build_stats;
  // WriteTo stages path.tmp, fsyncs, renames and fsyncs the directory:
  // the SST is durable before any manifest record can reference it.
  if (!builder.WriteTo(env_, path, &build_stats)) {
    stats_.SetLastError("flush: cannot write " + path);
    return nullptr;
  }
  std::unique_ptr<TableReader> opened =
      TableReader::Open(path, options_.filter_policy.get(), &stats_,
                        options_.block_cache, file_number);
  if (opened == nullptr) {
    stats_.SetLastError("flush: cannot reopen " + path);
    env_->DeleteFile(path);
    return nullptr;
  }
  opened->set_level(0);  // flush outputs land at L0
  std::shared_ptr<const TableReader> reader = std::move(opened);
  meta->file_number = file_number;
  meta->smallest = reader->min_key();
  meta->largest = reader->max_key();
  meta->entries = build_stats.num_entries;
  meta->file_bytes = build_stats.file_bytes;
  stats_.tombstones_written += build_stats.num_tombstones;
  {
    std::lock_guard<std::mutex> lock(flush_stats_mu_);
    flush_stats_.filter_create_seconds += build_stats.filter_create_seconds;
    flush_stats_.filter_block_bytes += build_stats.filter_block_bytes;
    ++flush_stats_.sst_files;
  }
  return reader;
}

bool Db::FlushSealed(const QueuedFlush& entry) {
  // The sealed memtable is dropped from the Version only once the SST
  // is written AND its manifest edit is durable; a failed flush keeps
  // the data queryable from the Version's sealed list (and its WAL on
  // disk).
  FileMeta meta;
  auto table = WriteSst(*entry.mem, &meta);
  if (table == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(version_mu_);
    auto next = versions_.Current()->WithFlushed(entry.mem.get(), table);
    VersionEdit edit;
    edit.SetLogNumber(std::max(flushed_through_log_, entry.max_log));
    edit.SetNextFileNumber(next_file_number_.load(std::memory_order_relaxed));
    edit.added.emplace_back(0, meta);
    // Advance before the append so a self-healing snapshot rewrite
    // inside AppendManifestEdit records the post-flush log coverage.
    const uint64_t prev_flushed = flushed_through_log_;
    flushed_through_log_ = std::max(flushed_through_log_, entry.max_log);
    if (!AppendManifestEdit(edit, *next)) {
      // The flush is not durable without its edit: a crash now would
      // orphan the SST while recovery replays the WAL — fine — but
      // deleting the WAL below would not be. Undo and retry later.
      flushed_through_log_ = prev_flushed;
      env_->DeleteFile(table->path());
      return false;
    }
    versions_.Publish(std::move(next));
  }
  UpdateTombstonesLive();
  // The memtable's data now lives in a manifest-committed SST: every
  // log up to its rotation point is obsolete (newer memtables only
  // touch newer logs, by the rotation-under-exclusive-seal invariant).
  DeleteLogsThrough(entry.max_log);
  MaybeScheduleCompaction();
  return true;
}

bool Db::DrainQueueInline() {
  // One inline drainer at a time: without this, two sync-mode Flush
  // callers could both write the queue-front memtable's SST.
  std::lock_guard<std::mutex> drain_lock(inline_drain_mu_);
  std::unique_lock<std::mutex> lock(flush_mu_);
  while (!flush_queue_.empty()) {
    QueuedFlush entry = flush_queue_.front();  // queued until success
    lock.unlock();
    bool ok = FlushSealed(entry);
    lock.lock();
    if (!ok) return false;  // retried (in order) by the next drain call
    flush_queue_.pop_front();
  }
  return true;
}

void Db::FlushWorker() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  for (;;) {
    // Park while idle — and also after a failure, instead of
    // hot-looping against a broken disk: only a drain call (which
    // clears flush_error_) or shutdown triggers the retry.
    flush_work_cv_.wait(lock, [this] {
      return stop_ || (!flush_queue_.empty() && !flush_error_);
    });
    if (flush_queue_.empty()) {
      if (stop_) return;
      continue;
    }
    if (flush_error_ && !stop_) continue;  // parked until a retry trigger
    flush_error_ = false;                  // shutdown: one final retry
    QueuedFlush entry = flush_queue_.front();  // queued until success
    lock.unlock();
    bool ok = FlushSealed(entry);
    lock.lock();
    if (ok) {
      flush_queue_.pop_front();
    } else {
      flush_error_ = true;
      // Shutdown cannot wait for the disk to heal: give this memtable
      // up so the destructor's join terminates. With the WAL on
      // nothing is lost — its log survives (deletion only follows a
      // successful flush) and the next open replays it.
      if (stop_) flush_queue_.pop_front();
    }
    flush_done_cv_.notify_all();
  }
}

bool Db::Flush() {
  bool sealed_ok = SealActive(/*force=*/true);
  return WaitForFlush() && sealed_ok;
}

bool Db::WaitForFlush() {
  if (!options_.background_flush) return DrainQueueInline();
  std::unique_lock<std::mutex> lock(flush_mu_);
  if (flush_error_) {
    // One retry per drain call; the flag comes back if it fails again.
    flush_error_ = false;
    flush_work_cv_.notify_all();
  }
  flush_done_cv_.wait(lock,
                      [this] { return flush_queue_.empty() || flush_error_; });
  return !flush_error_;
}

void Db::MaybeScheduleCompaction() {
  if (compact_threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    compact_requested_ = true;
  }
  compact_work_cv_.notify_all();
}

size_t Db::EffectiveSubcompactions() const {
  if (options_.max_subcompactions > 0) return options_.max_subcompactions;
  return std::max<size_t>(1, options_.compaction_threads);
}

void Db::MergeRange(const CompactionJob& job, const TombstoneShadow& shadow,
                    const FilterBuildContext* build_ctx, uint64_t lo,
                    uint64_t hi, SubcompactionResult* result) {
  // k-way merge over the inputs restricted to [lo, hi]: the smallest
  // pending key wins each step, ties resolved to the lowest input
  // index (newest source — the job orders inputs newest first), and
  // every iterator holding the winning key advances, which is what
  // drops the shadowed duplicates. The ranges partition the key space,
  // so every version of a key is merged by exactly one subcompaction
  // and per-key semantics are identical to the serial merge.
  std::vector<TableReader::Iterator> inputs;
  inputs.reserve(job.inputs.size());
  for (const auto& table : job.inputs) {
    inputs.emplace_back(*table, &stats_, lo);
  }

  // Split outputs near half the level's base budget so deeper levels
  // hold several disjoint files and later compactions can pick them
  // one at a time.
  const uint64_t target_file_bytes =
      std::max<uint64_t>(1, compact_cfg_.level_base_bytes / 2);
  std::unique_ptr<TableBuilder> builder;

  auto finish_output = [&]() -> bool {
    const uint64_t file_number =
        next_file_number_.fetch_add(1, std::memory_order_relaxed);
    const std::string path = SstPath(file_number);
    const uint64_t entries = builder->num_entries();
    TableBuildStats build_stats;
    if (!builder->WriteTo(env_, path, &build_stats)) {
      result->error = "compact: cannot write " + path;
      return false;
    }
    result->tombstones_written += build_stats.num_tombstones;
    result->paths.push_back(path);
    auto reader =
        TableReader::Open(path, options_.filter_policy.get(), &stats_,
                          options_.block_cache, file_number);
    if (reader == nullptr) {
      result->error = "compact: cannot reopen " + path;
      return false;
    }
    reader->set_level(static_cast<uint32_t>(job.output_level));
    FileMeta meta;
    meta.file_number = file_number;
    meta.smallest = reader->min_key();
    meta.largest = reader->max_key();
    meta.entries = entries;
    meta.file_bytes = build_stats.file_bytes;
    result->metas.push_back(meta);
    result->outputs.push_back(std::move(reader));
    result->bytes_written += build_stats.file_bytes;
    builder.reset();
    return true;
  };

  for (;;) {
    size_t winner = inputs.size();
    uint64_t min_key = 0;
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (!inputs[i].ok()) {
        result->error = "compact: input read error";
        return;
      }
      if (!inputs[i].Valid()) continue;
      if (winner == inputs.size() || inputs[i].key() < min_key) {
        winner = i;
        min_key = inputs[i].key();
      }
    }
    if (winner == inputs.size() || min_key > hi) break;
    const bool tombstone = inputs[winner].tombstone();
    if (tombstone && !shadow.Covers(min_key)) {
      // Bottom-most eligible level for this key: nothing below the
      // output can hold an older value, so the deletion has finished
      // its job and the key disappears physically.
      ++result->tombstones_dropped;
    } else {
      if (builder == nullptr) {
        builder = std::make_unique<TableBuilder>(options_.filter_policy.get(),
                                                 options_.block_size);
        if (build_ctx != nullptr) builder->SetFilterContext(*build_ctx);
      }
      builder->Add(min_key, inputs[winner].value(), tombstone);
    }
    for (auto& input : inputs) {
      while (input.Valid() && input.key() == min_key) input.Next();
    }
    if (builder != nullptr &&
        builder->ApproximateBytes() >= target_file_bytes) {
      if (!finish_output()) return;
    }
  }
  if (builder != nullptr && builder->num_entries() > 0) {
    if (!finish_output()) return;
  }
  result->ok = true;
}

bool Db::RunCompaction(const CompactionJob& job) {
  const auto start_time = std::chrono::steady_clock::now();
  ++stats_.compactions_inflight;
  struct InflightGauge {
    std::atomic<uint64_t>& gauge;
    ~InflightGauge() { --gauge; }
  } inflight_gauge{stats_.compactions_inflight};

  // Tombstone lifecycle: a winning tombstone still shadows (the
  // merge's duplicate-dropping buries the older values), and is itself
  // dropped from the output iff no level below the output can hold its
  // key. One snapshot of the shadow bounds serves every subcompaction
  // of the job — see TombstoneShadow for why the snapshot stays
  // conservative under concurrent disjoint-level jobs.
  const TombstoneShadow shadow =
      TombstoneShadow::FromVersion(*versions_.Current(), job);
  uint64_t bytes_read = 0;
  for (const auto& table : job.inputs) bytes_read += table->file_size();

  // Re-tuning seam of the adaptive loop: every compaction output is
  // rebuilt through the policy with the workload sketch and measured
  // FPRs as they stand now, so the tree's filters follow the workload
  // as compaction naturally rewrites tables. One feedback snapshot is
  // shared read-only across the subcompactions.
  FilterFeedback feedback;
  FilterBuildContext build_ctx;
  if (sampler_ != nullptr) {
    feedback = CollectFilterFeedback();
    build_ctx.sampler = sampler_;
    build_ctx.feedback = &feedback;
    build_ctx.level = static_cast<uint32_t>(job.output_level);
  }
  const FilterBuildContext* ctx = sampler_ != nullptr ? &build_ctx : nullptr;

  // Range-partition the job: each range merges on its own worker
  // (the calling thread steals one), writes its own outputs, and all
  // outputs commit below in ONE manifest edit. Small jobs stay serial.
  size_t fan_out = EffectiveSubcompactions();
  if (bytes_read < options_.subcompaction_min_bytes) fan_out = 1;
  const auto ranges = PickSubcompactionRanges(job, fan_out);
  std::vector<SubcompactionResult> results(ranges.size());
  if (ranges.size() == 1) {
    MergeRange(job, shadow, ctx, 0, UINT64_MAX, &results[0]);
  } else {
    TaskGroup group(subcompact_pool_.get());
    for (size_t i = 0; i < ranges.size(); ++i) {
      group.Submit([this, &job, &shadow, ctx, &ranges, &results, i] {
        MergeRange(job, shadow, ctx, ranges[i].first, ranges[i].second,
                   &results[i]);
      });
    }
    group.Wait();
    stats_.subcompactions_run += ranges.size();
  }

  auto fail = [&](const std::string& msg) {
    stats_.SetLastError(msg);
    ++stats_.compaction_failures;
    for (const auto& result : results) {
      for (const auto& path : result.paths) env_->DeleteFile(path);
    }
    return false;
  };
  for (const auto& result : results) {
    if (!result.ok) {
      return fail(result.error.empty() ? "compact: subcompaction failed"
                                       : result.error);
    }
  }

  // Fold in range order: the ranges are ascending and disjoint, so the
  // concatenated outputs are key-sorted — which the manifest edit must
  // preserve (recovery rebuilds each level in edit order).
  Version::TableList outputs;
  std::vector<FileMeta> output_meta;
  uint64_t bytes_written = 0;
  uint64_t tombstones_written = 0;
  uint64_t tombstones_dropped = 0;
  for (auto& result : results) {
    for (auto& table : result.outputs) outputs.push_back(std::move(table));
    output_meta.insert(output_meta.end(), result.metas.begin(),
                       result.metas.end());
    bytes_written += result.bytes_written;
    tombstones_written += result.tombstones_written;
    tombstones_dropped += result.tombstones_dropped;
  }

  // Commit: one manifest edit (deletes + adds) made durable before the
  // Version swap publishes it. Input files are unlinked only after the
  // publication; readers holding an older Version keep them open (and
  // POSIX keeps unlinked-but-open files readable).
  std::vector<uint64_t> input_numbers;
  input_numbers.reserve(job.input_files.size());
  for (const auto& [level, number] : job.input_files) {
    input_numbers.push_back(number);
  }
  {
    std::lock_guard<std::mutex> lock(version_mu_);
    auto next = versions_.Current()->WithCompaction(
        input_numbers, job.output_level, outputs);
    VersionEdit edit;
    edit.SetNextFileNumber(next_file_number_.load(std::memory_order_relaxed));
    edit.deleted = job.input_files;
    for (const FileMeta& meta : output_meta) {
      edit.added.emplace_back(static_cast<uint32_t>(job.output_level), meta);
    }
    if (!AppendManifestEdit(edit, *next)) {
      return fail("compact: manifest append failed");
    }
    versions_.Publish(std::move(next));
  }
  UpdateTombstonesLive();
  ++stats_.compactions;
  stats_.tombstones_written += tombstones_written;
  stats_.tombstones_dropped += tombstones_dropped;
  stats_.compaction_bytes_read += bytes_read;
  stats_.compaction_bytes_written += bytes_written;
  const size_t bucket =
      LsmStats::StatsLevel(static_cast<uint32_t>(job.output_level));
  stats_.compaction_bytes_read_level[bucket] += bytes_read;
  stats_.compaction_bytes_written_level[bucket] += bytes_written;
  stats_.compaction_micros_level[bucket] += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_time)
          .count());
  for (const auto& table : job.inputs) env_->DeleteFile(table->path());
  return true;
}

void Db::CompactionWorker() {
  // One of N identical scheduler workers: pick a job whose level pair
  // is unclaimed, claim it, run it unlocked, release. Workers with
  // nothing pickable park on the epoch counter, which every completion
  // (and the manual-compaction handover) bumps — so a claim release
  // that frees a pickable level pair wakes them without busy-spinning.
  std::unique_lock<std::mutex> lock(compact_mu_);
  while (!compact_stop_) {
    if (!compact_requested_ || compact_error_ || manual_compact_active_) {
      const uint64_t seen = compact_epoch_;
      compact_work_cv_.wait(lock, [this, seen] {
        return compact_stop_ || compact_epoch_ != seen ||
               (compact_requested_ && !compact_error_ &&
                !manual_compact_active_);
      });
      continue;
    }
    auto job = PickCompaction(*versions_.Current(), compact_cfg_,
                              &compact_cursors_, compact_busy_levels_);
    if (!job.has_value()) {
      if (compact_inflight_ == 0) {
        // Nothing pickable and nothing running: the tree is drained.
        compact_requested_ = false;
        compact_done_cv_.notify_all();
        continue;
      }
      // In-flight jobs may uncover new work (or new free levels) when
      // they finish; park until one does.
      const uint64_t seen = compact_epoch_;
      compact_work_cv_.wait(lock, [this, seen] {
        return compact_stop_ || compact_epoch_ != seen;
      });
      continue;
    }
    const uint64_t claim = CompactionClaimBits(*job);
    compact_busy_levels_ |= claim;
    ++compact_inflight_;
    lock.unlock();
    const bool ok = RunCompaction(*job);
    lock.lock();
    compact_busy_levels_ &= ~claim;
    --compact_inflight_;
    ++compact_epoch_;
    if (ok) {
      compact_backoff_.Reset();
      // Re-pick from the freshest Version: this job's output may have
      // pushed the next level over budget, and a flush that landed
      // mid-job is folded into the next pick.
      compact_requested_ = true;
      compact_work_cv_.notify_all();
      compact_done_cv_.notify_all();
      continue;
    }
    if (compact_stop_) break;
    // Sticky error: waiters see it, other workers park. This worker
    // owns the backoff retry timer; expiry clears the error and
    // re-requests work.
    compact_error_ = true;
    compact_work_cv_.notify_all();
    compact_done_cv_.notify_all();
    compact_work_cv_.wait_for(lock, compact_backoff_.Next(), [this] {
      return compact_stop_ || !compact_error_;
    });
    if (!compact_stop_ && compact_error_) {
      compact_error_ = false;
      compact_requested_ = true;
      compact_work_cv_.notify_all();
    }
  }
}

bool Db::WaitForCompaction() {
  if (compact_threads_.empty()) return true;
  std::unique_lock<std::mutex> lock(compact_mu_);
  compact_error_ = false;  // this call doubles as the retry trigger
  compact_requested_ = true;
  compact_work_cv_.notify_all();
  // Drained means: no pending request, no job in flight on any worker
  // (subcompaction workers finish inside their job's RunCompaction),
  // and no manual CompactRange holding the tree.
  compact_done_cv_.wait(lock, [this] {
    return compact_error_ ||
           (!compact_requested_ && compact_inflight_ == 0 &&
            !manual_compact_active_);
  });
  return !compact_error_;
}

bool Db::CompactRange(uint64_t begin, uint64_t end) {
  if (begin > end) return true;
  if (!Flush()) return false;

  // Take the manual slot: concurrent CompactRange calls serialize on
  // it, background workers stop picking while it is held, and we wait
  // out their in-flight jobs so the Version we snapshot is the one the
  // merge runs against.
  {
    std::unique_lock<std::mutex> lock(compact_mu_);
    compact_done_cv_.wait(lock, [this] { return !manual_compact_active_; });
    manual_compact_active_ = true;
    ++compact_epoch_;
    compact_work_cv_.notify_all();
    compact_done_cv_.wait(lock, [this] { return compact_inflight_ == 0; });
  }

  auto version = versions_.Current();
  const auto& levels = version->levels();

  // Fixpoint expansion to whole-file boundaries: a file overlapping
  // [lo, hi] pulls its own bounds into the range, which may overlap
  // further files, and so on. Without it the output (clamped at the
  // deepest level) could overlap non-input files there, or bury newer
  // un-compacted values under older ones.
  uint64_t lo = begin, hi = end;
  std::vector<std::vector<char>> take(levels.size());
  for (size_t level = 0; level < levels.size(); ++level) {
    take[level].assign(levels[level].size(), 0);
  }
  bool grew = true;
  while (grew) {
    grew = false;
    for (size_t level = 0; level < levels.size(); ++level) {
      for (size_t i = 0; i < levels[level].size(); ++i) {
        if (take[level][i]) continue;
        const auto& table = levels[level][i];
        if (table->max_key() < lo || table->min_key() > hi) continue;
        take[level][i] = 1;
        if (table->min_key() < lo) {
          lo = table->min_key();
          grew = true;
        }
        if (table->max_key() > hi) {
          hi = table->max_key();
          grew = true;
        }
      }
    }
  }

  // Inputs in read precedence order (L0 newest-first, then L1+ in key
  // order): the merge resolves duplicate keys to the lowest index.
  CompactionJob job;
  size_t deepest = 0;
  for (size_t i = levels[0].size(); i-- > 0;) {
    if (!take[0][i]) continue;
    job.inputs.push_back(levels[0][i]);
    job.input_files.emplace_back(0, levels[0][i]->file_number());
  }
  for (size_t level = 1; level < levels.size(); ++level) {
    for (size_t i = 0; i < levels[level].size(); ++i) {
      if (!take[level][i]) continue;
      job.inputs.push_back(levels[level][i]);
      job.input_files.emplace_back(static_cast<uint32_t>(level),
                                   levels[level][i]->file_number());
      deepest = level;
    }
  }
  // Everything lands at the deepest input level (floor L1 — L0 files
  // overlap), capped at the tree depth, so a full-range call digs the
  // data all the way down and maximizes tombstone drops.
  job.output_level =
      std::min(std::max<size_t>(1, deepest), compact_cfg_.max_levels - 1);

  bool ok = true;
  if (!job.inputs.empty()) ok = RunCompaction(job);

  // Hand the tree back: bump the epoch so parked workers re-check, and
  // re-request a background pass over the reshaped tree.
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    manual_compact_active_ = false;
    ++compact_epoch_;
    if (!compact_threads_.empty()) compact_requested_ = true;
  }
  compact_work_cv_.notify_all();
  compact_done_cv_.notify_all();
  return ok;
}

bool Db::CompactAll() { return CompactRange(0, UINT64_MAX); }

FilterFeedback Db::CollectFilterFeedback() const {
  FilterFeedback feedback;
  auto version = versions_.Current();
  for (const TableReader* table : TablesNewestFirst(*version)) {
    if (table->filter() == nullptr || table->filter_backend().empty()) {
      continue;
    }
    TableReader::FilterOutcomes o = table->filter_outcomes();
    BackendObservation* obs = feedback.FindOrAdd(table->filter_backend());
    obs->point_allowed += o.point_allowed;
    obs->point_false += o.point_false;
    obs->point_negatives += o.point_negatives;
    obs->range_allowed += o.range_allowed;
    obs->range_false += o.range_false;
    obs->range_negatives += o.range_negatives;
  }
  return feedback;
}

bool Db::Get(uint64_t key, std::string* value) {
  if (sampler_ != nullptr) sampler_->RecordPoint(key);
  auto version = versions_.Current();
  // Newest-first walk; the FIRST entry found for the key decides. A
  // tombstone is a definite "deleted" — falling through to an older
  // source would resurrect the key.
  switch (version->active()->Find(key, value)) {
    case Lookup::kHit: return true;
    case Lookup::kTombstone: return false;
    case Lookup::kMiss: break;
  }
  const auto& sealed = version->sealed();
  for (auto it = sealed.rbegin(); it != sealed.rend(); ++it) {
    switch ((*it)->Find(key, value)) {
      case Lookup::kHit: return true;
      case Lookup::kTombstone: return false;
      case Lookup::kMiss: break;
    }
  }
  for (const TableReader* table : TablesNewestFirst(*version)) {
    // Leveled compaction leaves L1+ files key-disjoint, so most tables
    // can't contain the key at all — skip them before the filter probe
    // or read amplification grows with file count instead of shrinking.
    if (key < table->min_key() || key > table->max_key()) continue;
    switch (table->Find(key, value, &stats_)) {
      case Lookup::kHit: return true;
      case Lookup::kTombstone: return false;
      case Lookup::kMiss: break;
    }
  }
  return false;
}

std::vector<std::optional<std::string>> Db::MultiGet(
    std::span<const uint64_t> keys) {
  std::vector<std::optional<std::string>> result(keys.size());
  if (keys.empty()) return result;
  if (sampler_ != nullptr) sampler_->RecordPoints(keys);

  auto version = versions_.Current();

  // Memtables first (newest data); they already index by key. A hit
  // lands in `result` directly; a tombstone marks the key resolved
  // (absent) so no older source below can resurrect it.
  std::vector<Lookup> states(keys.size(), Lookup::kMiss);
  size_t remaining = keys.size();
  std::string value;
  for (size_t i = 0; i < keys.size(); ++i) {
    states[i] = version->active()->Find(keys[i], &value);
    if (states[i] == Lookup::kHit) result[i] = value;
    if (states[i] != Lookup::kMiss) --remaining;
  }
  const auto& sealed = version->sealed();
  for (auto it = sealed.rbegin(); it != sealed.rend() && remaining > 0; ++it) {
    for (size_t i = 0; i < keys.size(); ++i) {
      if (states[i] != Lookup::kMiss) continue;
      states[i] = (*it)->Find(keys[i], &value);
      if (states[i] == Lookup::kHit) result[i] = value;
      if (states[i] != Lookup::kMiss) --remaining;
    }
  }

  // Then the tables newest-first, chaining one states/values array
  // pair so each table only probes keys no newer source resolved (a
  // tombstone resolves just like a hit). Tables whose key range misses
  // the whole batch are skipped outright.
  const auto [lo_it, hi_it] = std::minmax_element(keys.begin(), keys.end());
  const uint64_t batch_lo = *lo_it;
  const uint64_t batch_hi = *hi_it;
  std::vector<std::string> values(keys.size());
  for (const TableReader* table : TablesNewestFirst(*version)) {
    if (remaining == 0) break;
    if (batch_hi < table->min_key() || batch_lo > table->max_key()) continue;
    remaining -= table->MultiGet(keys, states.data(), values.data(), &stats_);
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    if (states[i] == Lookup::kHit && !result[i].has_value()) {
      result[i] = std::move(values[i]);
    }
  }
  return result;
}

std::vector<std::pair<uint64_t, std::string>> Db::ScanVersion(
    const Version& version, uint64_t lo, uint64_t hi, size_t limit) {
  // Newest-first merge over every source, tombstones included: the
  // first writer of a key wins, and a winning tombstone (nullopt)
  // erases the key from the result.
  //
  // Correctness under per-source limits: each source is asked for
  // scan_limit + 1 entries. A source that fills that budget is
  // TRUNCATED — beyond its last returned key it may hold entries we
  // have not seen, so the merge is only trustworthy up to the minimum
  // such key (`cover`). Tombstones make the naive "first `limit`
  // merged rows" wrong: deletions consume a newer source's budget, so
  // an older source's rows past the newer source's truncation point
  // could win the merge unshadowed. If the covered prefix holds fewer
  // than `limit` live rows while some source was truncated, the scan
  // re-runs with a doubled budget until the prefix is proven complete.
  std::vector<std::pair<uint64_t, std::string>> out;
  if (limit == 0) return out;
  size_t scan_limit = limit;
  for (;;) {
    std::map<uint64_t, std::optional<std::string>> merged;
    uint64_t cover = hi;
    bool truncated = false;
    auto absorb = [&](std::vector<ScanEntry>& chunk) {
      if (chunk.size() > scan_limit) {
        truncated = true;
        cover = std::min(cover, chunk.back().key);
      }
      for (ScanEntry& e : chunk) {
        merged.emplace(e.key, e.tombstone
                                  ? std::nullopt
                                  : std::optional<std::string>(
                                        std::move(e.value)));
      }
    };
    std::vector<ScanEntry> chunk;
    version.active()->ScanEntries(lo, hi, scan_limit + 1, &chunk);
    absorb(chunk);
    const auto& sealed = version.sealed();
    for (auto it = sealed.rbegin(); it != sealed.rend(); ++it) {
      chunk.clear();
      (*it)->ScanEntries(lo, hi, scan_limit + 1, &chunk);
      absorb(chunk);
    }
    for (const TableReader* table : TablesNewestFirst(version)) {
      chunk.clear();
      table->RangeScan(lo, hi, scan_limit + 1, &chunk, &stats_);
      absorb(chunk);
    }
    for (auto& [k, v] : merged) {
      if (k > cover) break;
      if (!v.has_value()) continue;  // deleted: the tombstone won
      out.emplace_back(k, std::move(*v));
      if (out.size() >= limit) return out;
    }
    if (!truncated || cover >= hi) return out;  // prefix proven complete
    out.clear();
    scan_limit *= 2;
  }
}

std::vector<std::pair<uint64_t, std::string>> Db::RangeScan(uint64_t lo,
                                                            uint64_t hi,
                                                            size_t limit) {
  if (sampler_ != nullptr) sampler_->RecordRange(lo, hi);
  auto version = versions_.Current();
  return ScanVersion(*version, lo, hi, limit);
}

std::vector<std::vector<std::pair<uint64_t, std::string>>> Db::ScanRange(
    std::span<const uint64_t> los, std::span<const uint64_t> his,
    size_t limit) {
  assert(los.size() == his.size());
  const size_t n = los.size();
  std::vector<std::vector<std::pair<uint64_t, std::string>>> results(n);
  if (n == 0) return results;
  if (sampler_ != nullptr) sampler_->RecordRanges(los, his);

  auto version = versions_.Current();
  if (limit == 0) return results;

  // Newest-first tombstone-aware merge per range, exactly like
  // ScanVersion: the first writer of a key wins, a winning tombstone
  // erases the key, and each source's truncation bounds how far the
  // merge can be trusted (see ScanVersion).
  const size_t scan_limit = limit;
  std::vector<std::map<uint64_t, std::optional<std::string>>> merged(n);
  std::vector<uint64_t> cover(his.begin(), his.end());
  std::vector<char> truncated(n, 0);
  auto absorb = [&](size_t i, std::vector<ScanEntry>& chunk) {
    if (chunk.size() > scan_limit) {
      truncated[i] = 1;
      cover[i] = std::min(cover[i], chunk.back().key);
    }
    for (ScanEntry& e : chunk) {
      merged[i].emplace(e.key, e.tombstone ? std::nullopt
                                           : std::optional<std::string>(
                                                 std::move(e.value)));
    }
  };
  std::vector<ScanEntry> chunk;
  for (size_t i = 0; i < n; ++i) {
    chunk.clear();
    version->active()->ScanEntries(los[i], his[i], scan_limit + 1, &chunk);
    absorb(i, chunk);
  }
  const auto& sealed = version->sealed();
  for (auto it = sealed.rbegin(); it != sealed.rend(); ++it) {
    for (size_t i = 0; i < n; ++i) {
      chunk.clear();
      (*it)->ScanEntries(los[i], his[i], scan_limit + 1, &chunk);
      absorb(i, chunk);
    }
  }

  // One batched filter probe per table; only ranges the filter cannot
  // exclude touch data blocks (cache-served via GetBlock).
  auto may_match = std::make_unique<bool[]>(n);
  for (const TableReader* table : TablesNewestFirst(*version)) {
    table->RangeMultiProbe(los, his, may_match.get(), &stats_);
    for (size_t i = 0; i < n; ++i) {
      if (!may_match[i]) continue;
      chunk.clear();
      table->ScanBlocks(los[i], his[i], scan_limit + 1, &chunk, &stats_);
      // Close the loop on the allowed probe: an empty block scan means
      // the filter's "maybe" was a false positive (a tombstone row
      // still confirms it — the key is in the table).
      table->AccountRangeOutcome(!chunk.empty(), &stats_);
      absorb(i, chunk);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    auto& out = results[i];
    for (auto& [k, v] : merged[i]) {
      if (k > cover[i]) break;
      if (!v.has_value()) continue;  // deleted: the tombstone won
      out.emplace_back(k, std::move(*v));
      if (out.size() >= limit) break;
    }
    if (out.size() < limit && truncated[i] && cover[i] < his[i]) {
      // The covered prefix ran dry before `limit` live rows while some
      // source was truncated: finish this range through the deepening
      // scalar scan (rare — needs > limit entries per source with
      // enough of them tombstoned).
      out = ScanVersion(*version, los[i], his[i], limit);
    }
  }
  return results;
}

bool Db::RangeMayMatch(uint64_t lo, uint64_t hi) {
  if (sampler_ != nullptr) sampler_->RecordRange(lo, hi);
  auto version = versions_.Current();
  std::vector<std::pair<uint64_t, std::string>> probe;
  version->active()->RangeScan(lo, hi, 1, &probe);
  if (!probe.empty()) return true;
  for (const auto& mem : version->sealed()) {
    probe.clear();
    mem->RangeScan(lo, hi, 1, &probe);
    if (!probe.empty()) return true;
  }
  bool any = false;
  for (const TableReader* table : TablesNewestFirst(*version)) {
    if (table->filter() != nullptr) {
      if (table->RangeScan(lo, hi, 0, static_cast<std::vector<ScanEntry>*>(nullptr),
                           &stats_)) {
        any = true;
      }
    } else {
      if (lo <= table->max_key() && hi >= table->min_key()) any = true;
    }
  }
  return any;
}

void Db::UpdateTombstonesLive() {
  uint64_t total = 0;
  auto version = versions_.Current();
  for (const TableReader* table : TablesNewestFirst(*version)) {
    total += table->num_tombstones();
  }
  stats_.tombstones_live.store(total, std::memory_order_relaxed);
}

DbFlushStats Db::flush_stats() const {
  std::lock_guard<std::mutex> lock(flush_stats_mu_);
  return flush_stats_;
}

std::vector<size_t> Db::level_table_counts() const {
  auto version = versions_.Current();
  std::vector<size_t> counts;
  counts.reserve(version->levels().size());
  for (const auto& level : version->levels()) counts.push_back(level.size());
  return counts;
}

uint64_t Db::filter_memory_bits() const {
  uint64_t total = 0;
  auto version = versions_.Current();
  for (const TableReader* table : TablesNewestFirst(*version)) {
    total += table->filter_memory_bits();
  }
  return total;
}

}  // namespace bloomrf

#include "lsm/db.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <system_error>

#include "lsm/table_builder.h"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace bloomrf {

namespace {

/// Parses "<stem><number><suffix>" names, e.g. wal-12.log or 7.sst.
bool ParseNumberedFile(const std::string& name, const std::string& stem,
                       const std::string& suffix, uint64_t* number) {
  if (name.size() <= stem.size() + suffix.size()) return false;
  if (name.compare(0, stem.size(), stem) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  std::string digits =
      name.substr(stem.size(), name.size() - stem.size() - suffix.size());
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *number = value;
  return true;
}

/// All files in `dir` matching stem/suffix, sorted by number.
std::vector<std::pair<uint64_t, std::string>> ListNumberedFiles(
    const std::string& dir, const std::string& stem,
    const std::string& suffix) {
  std::vector<std::pair<uint64_t, std::string>> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t number;
    if (ParseNumberedFile(entry.path().filename().string(), stem, suffix,
                          &number)) {
      files.emplace_back(number, entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Forces file contents to stable storage (durable-flush requirement
/// before the covering WAL may be deleted when wal_fsync is on).
bool SyncFile(const std::string& path) {
#ifndef _WIN32
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
#ifdef __linux__
  bool ok = ::fdatasync(fd) == 0;
#else
  bool ok = ::fsync(fd) == 0;
#endif
  ::close(fd);
  return ok;
#else
  return true;  // stdio writes were already flushed at fclose
#endif
}

}  // namespace

Db::Db(DbOptions options) : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (!options_.wal_dir.empty()) {
    std::filesystem::create_directories(options_.wal_dir, ec);
  }
  if (options_.block_cache == nullptr && options_.block_cache_bytes > 0) {
    options_.block_cache =
        std::make_shared<BlockCache>(options_.block_cache_bytes);
  }
  active_ = versions_.Current()->active();
  Recover();
  if (options_.wal) RotateWal();
  if (options_.background_flush) {
    flush_thread_ = std::thread([this] { FlushWorker(); });
  }
}

Db::~Db() {
  if (flush_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      stop_ = true;
    }
    flush_work_cv_.notify_all();
    flush_thread_.join();  // worker drains the queue before exiting
  }
  if (wal_ != nullptr) {
    if (active_->empty()) {
      // Clean close with nothing unflushed: zero records went into the
      // current log since its rotation (appends and memtable inserts
      // travel together), so it is empty — remove the litter.
      std::string path = wal_->path();
      wal_.reset();
      std::error_code ec;
      std::filesystem::remove(path, ec);
    } else {
      // Push any OS-buffered WAL bytes down so a clean close is
      // recoverable even without wal_fsync.
      wal_->Sync();
    }
  }
}

void Db::Recover() {
  // SSTs first: file-number order is seal order (flushes install
  // strictly oldest-first), so appending in that order rebuilds the
  // newest-last table list readers expect.
  auto ssts = ListNumberedFiles(options_.dir, "", ".sst");
  std::shared_ptr<const Version> version = versions_.Current();
  uint64_t max_sst = 0;
  for (const auto& [number, path] : ssts) {
    max_sst = std::max(max_sst, number);
    auto reader =
        TableReader::Open(path, options_.filter_policy.get(), &stats_,
                          options_.block_cache);
    if (reader == nullptr) {
      // Torn SST from a crash mid-flush: its WAL was never deleted, so
      // the data comes back through replay below.
      stats_.SetLastError("recover: skipping unreadable " + path);
      continue;
    }
    version = version->WithFlushed(nullptr, std::move(reader));
    ++recovery_stats_.tables_loaded;
  }
  if (recovery_stats_.tables_loaded > 0) {
    std::lock_guard<std::mutex> lock(version_mu_);
    versions_.Publish(version);
  }
  next_file_number_.store(max_sst + 1, std::memory_order_relaxed);

  // WAL replay: every surviving log, oldest first, into the fresh
  // active memtable. Overwrites re-apply in original order, so the
  // memtable ends bit-identical to the pre-crash one (and shadows the
  // SSTs it may partially duplicate, with identical values).
  auto logs = ListNumberedFiles(WalDirPath(), "wal-", ".log");
  uint64_t max_log = 0;
  for (const auto& [number, path] : logs) {
    max_log = std::max(max_log, number);
    WalReplayResult replay =
        WalReplay(path, [this](uint64_t key, std::string_view value) {
          active_->Put(key, value);
        });
    ++recovery_stats_.wal_files_replayed;
    recovery_stats_.wal_records_replayed += replay.records;
    recovery_stats_.wal_entries_replayed += replay.entries;
    recovery_stats_.wal_clean &= replay.clean;
  }
  // The replayed data is only covered by the logs it came from: keep
  // them until the memtable holding it flushes (active_max_log_ rides
  // into the next seal's max_log).
  next_wal_number_ = max_log + 1;
  active_max_log_ = max_log;
}

void Db::RotateWal() {
  uint64_t number = next_wal_number_++;
  wal_ = std::make_unique<WalWriter>(
      WalDirPath() + "/wal-" + std::to_string(number) + ".log",
      options_.wal_fsync, &stats_);
  active_max_log_ = number;
}

void Db::DeleteLogsThrough(uint64_t max_log) {
  if (max_log == 0) return;
  std::error_code ec;
  for (const auto& [number, path] :
       ListNumberedFiles(WalDirPath(), "wal-", ".log")) {
    if (number <= max_log) std::filesystem::remove(path, ec);
  }
}

bool Db::Put(uint64_t key, std::string_view value) {
  KV kv{key, value};
  return PutBatch({&kv, 1});
}

bool Db::PutBatch(std::span<const KV> kvs) {
  if (kvs.empty()) return true;
  bool ok = true;
  uint64_t bytes;
  {
    // Shared section: writers run concurrently with each other; only
    // the seal swap excludes them. Logging and inserting under the
    // same shared hold pins the record to the memtable generation —
    // rotation can never slip between them.
    std::shared_lock<std::shared_mutex> seal_lock(seal_mu_);
    if (wal_ != nullptr) {
      // Reused per thread so the hot path does not allocate a fresh
      // record buffer on every Put.
      thread_local std::string record;
      WalEncodeRecordTo(kvs, &record);
      ok = wal_->Append(record);
    }
    for (const KV& kv : kvs) active_->Put(kv.key, kv.value);
    bytes = active_->ApproximateBytes();
  }
  if (bytes >= options_.memtable_bytes) {
    if (!SealActive(/*force=*/false)) ok = false;
  }
  return ok;
}

bool Db::SealActive(bool force) {
  QueuedFlush entry;
  {
    std::unique_lock<std::shared_mutex> seal_lock(seal_mu_);
    if (active_->empty()) return true;
    if (!force && active_->ApproximateBytes() < options_.memtable_bytes) {
      return true;  // a concurrent sealer won; fresh memtable in place
    }
    auto fresh = std::make_shared<MemTable>();
    {
      // One publication swaps in the fresh active memtable and records
      // the old one as sealed, so no reader interleaving can miss it.
      std::lock_guard<std::mutex> lock(version_mu_);
      versions_.Publish(versions_.Current()->WithSealedActive(fresh));
    }
    entry.mem = active_;
    entry.max_log = active_max_log_;
    active_ = std::move(fresh);
    if (options_.wal) RotateWal();
  }
  bool pending_failure = false;
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_queue_.push_back(std::move(entry));
    // A previously failed flush parks the worker; sealing counts as a
    // retry trigger too, so a Put-only application self-recovers once
    // the disk heals — and hears about the failure (return false)
    // instead of growing the queue silently forever.
    if (flush_error_) {
      flush_error_ = false;
      pending_failure = true;
    }
  }
  if (!options_.background_flush) return DrainQueueInline();
  flush_work_cv_.notify_one();
  return !pending_failure;
}

std::shared_ptr<const TableReader> Db::WriteSst(const MemTable& mem) {
  if (options_.flush_fault && options_.flush_fault()) {
    stats_.SetLastError("flush: injected fault");
    return nullptr;
  }
  auto entries = mem.Snapshot();
  TableBuilder builder(options_.filter_policy.get(), options_.block_size);
  for (const auto& [key, value] : entries) builder.Add(key, value);
  std::string path =
      options_.dir + "/" +
      std::to_string(next_file_number_.fetch_add(1, std::memory_order_relaxed)) +
      ".sst";
  TableBuildStats build_stats;
  if (!builder.WriteTo(path, &build_stats)) {
    stats_.SetLastError("flush: cannot write " + path);
    return nullptr;
  }
  // Durable before the covering WAL becomes deletable: match the WAL's
  // own durability level (page cache by default, disk with wal_fsync).
  if (options_.wal && options_.wal_fsync && !SyncFile(path)) {
    stats_.SetLastError("flush: cannot sync " + path);
    return nullptr;
  }
  std::shared_ptr<const TableReader> reader = TableReader::Open(
      path, options_.filter_policy.get(), &stats_, options_.block_cache);
  if (reader == nullptr) {
    stats_.SetLastError("flush: cannot reopen " + path);
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(flush_stats_mu_);
    flush_stats_.filter_create_seconds += build_stats.filter_create_seconds;
    flush_stats_.filter_block_bytes += build_stats.filter_block_bytes;
    ++flush_stats_.sst_files;
  }
  return reader;
}

bool Db::FlushSealed(const QueuedFlush& entry) {
  // The sealed memtable is dropped from the Version only once the SST
  // is written and readable; a failed flush keeps the data queryable
  // from the Version's sealed list.
  auto table = WriteSst(*entry.mem);
  if (table == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(version_mu_);
    versions_.Publish(
        versions_.Current()->WithFlushed(entry.mem.get(), std::move(table)));
  }
  // The memtable's data now lives in an installed SST: every log up to
  // its rotation point is obsolete (newer memtables only touch newer
  // logs, by the rotation-under-exclusive-seal invariant).
  DeleteLogsThrough(entry.max_log);
  return true;
}

bool Db::DrainQueueInline() {
  // One inline drainer at a time: without this, two sync-mode Flush
  // callers could both write the queue-front memtable's SST.
  std::lock_guard<std::mutex> drain_lock(inline_drain_mu_);
  std::unique_lock<std::mutex> lock(flush_mu_);
  while (!flush_queue_.empty()) {
    QueuedFlush entry = flush_queue_.front();  // queued until success
    lock.unlock();
    bool ok = FlushSealed(entry);
    lock.lock();
    if (!ok) return false;  // retried (in order) by the next drain call
    flush_queue_.pop_front();
  }
  return true;
}

void Db::FlushWorker() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  for (;;) {
    // Park while idle — and also after a failure, instead of
    // hot-looping against a broken disk: only a drain call (which
    // clears flush_error_) or shutdown triggers the retry.
    flush_work_cv_.wait(lock, [this] {
      return stop_ || (!flush_queue_.empty() && !flush_error_);
    });
    if (flush_queue_.empty()) {
      if (stop_) return;
      continue;
    }
    if (flush_error_ && !stop_) continue;  // parked until a retry trigger
    flush_error_ = false;                  // shutdown: one final retry
    QueuedFlush entry = flush_queue_.front();  // queued until success
    lock.unlock();
    bool ok = FlushSealed(entry);
    lock.lock();
    if (ok) {
      flush_queue_.pop_front();
    } else {
      flush_error_ = true;
      // Shutdown cannot wait for the disk to heal: give this memtable
      // up so the destructor's join terminates. With the WAL on
      // nothing is lost — its log survives (deletion only follows a
      // successful flush) and the next open replays it.
      if (stop_) flush_queue_.pop_front();
    }
    flush_done_cv_.notify_all();
  }
}

bool Db::Flush() {
  bool sealed_ok = SealActive(/*force=*/true);
  return WaitForFlush() && sealed_ok;
}

bool Db::WaitForFlush() {
  if (!options_.background_flush) return DrainQueueInline();
  std::unique_lock<std::mutex> lock(flush_mu_);
  if (flush_error_) {
    // One retry per drain call; the flag comes back if it fails again.
    flush_error_ = false;
    flush_work_cv_.notify_all();
  }
  flush_done_cv_.wait(lock,
                      [this] { return flush_queue_.empty() || flush_error_; });
  return !flush_error_;
}

bool Db::Get(uint64_t key, std::string* value) {
  auto version = versions_.Current();
  if (version->active()->Get(key, value)) return true;
  const auto& sealed = version->sealed();
  for (auto it = sealed.rbegin(); it != sealed.rend(); ++it) {
    if ((*it)->Get(key, value)) return true;
  }
  const auto& tables = version->tables();
  for (auto it = tables.rbegin(); it != tables.rend(); ++it) {
    if ((*it)->Get(key, value, &stats_)) return true;
  }
  return false;
}

std::vector<std::optional<std::string>> Db::MultiGet(
    std::span<const uint64_t> keys) {
  std::vector<std::optional<std::string>> result(keys.size());
  if (keys.empty()) return result;

  auto version = versions_.Current();

  // Memtables first (newest data); they already index by key. Hits
  // land in `result` directly and mark the key found, so the table
  // passes below skip it.
  auto found = std::make_unique<bool[]>(keys.size());
  size_t remaining = keys.size();
  std::string value;
  for (size_t i = 0; i < keys.size(); ++i) {
    found[i] = version->active()->Get(keys[i], &value);
    if (found[i]) {
      result[i] = value;
      --remaining;
    }
  }
  const auto& sealed = version->sealed();
  for (auto it = sealed.rbegin(); it != sealed.rend() && remaining > 0; ++it) {
    for (size_t i = 0; i < keys.size(); ++i) {
      if (found[i]) continue;
      if ((*it)->Get(keys[i], &value)) {
        found[i] = true;
        result[i] = value;
        --remaining;
      }
    }
  }

  // Then the tables newest-first, chaining one found/values array pair
  // so each table only probes keys no newer source resolved.
  std::vector<std::string> values(keys.size());
  const auto& tables = version->tables();
  for (auto it = tables.rbegin(); it != tables.rend() && remaining > 0; ++it) {
    remaining -= (*it)->MultiGet(keys, found.get(), values.data(), &stats_);
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    if (found[i] && !result[i].has_value()) result[i] = std::move(values[i]);
  }
  return result;
}

std::vector<std::pair<uint64_t, std::string>> Db::RangeScan(uint64_t lo,
                                                            uint64_t hi,
                                                            size_t limit) {
  auto version = versions_.Current();

  // Newest-first merge: the first writer of a key wins.
  std::map<uint64_t, std::string> merged;
  std::vector<std::pair<uint64_t, std::string>> chunk;
  version->active()->RangeScan(lo, hi, limit, &chunk);
  for (auto& [k, v] : chunk) merged.emplace(k, std::move(v));
  const auto& sealed = version->sealed();
  for (auto it = sealed.rbegin(); it != sealed.rend(); ++it) {
    chunk.clear();
    (*it)->RangeScan(lo, hi, limit, &chunk);
    for (auto& [k, v] : chunk) merged.emplace(k, std::move(v));
  }
  const auto& tables = version->tables();
  for (auto it = tables.rbegin(); it != tables.rend(); ++it) {
    chunk.clear();
    (*it)->RangeScan(lo, hi, limit, &chunk, &stats_);
    for (auto& [k, v] : chunk) merged.emplace(k, std::move(v));
  }
  std::vector<std::pair<uint64_t, std::string>> out;
  for (auto& [k, v] : merged) {
    if (out.size() >= limit) break;
    out.emplace_back(k, std::move(v));
  }
  return out;
}

std::vector<std::vector<std::pair<uint64_t, std::string>>> Db::ScanRange(
    std::span<const uint64_t> los, std::span<const uint64_t> his,
    size_t limit) {
  assert(los.size() == his.size());
  const size_t n = los.size();
  std::vector<std::vector<std::pair<uint64_t, std::string>>> results(n);
  if (n == 0) return results;

  auto version = versions_.Current();

  // Newest-first merge per range, exactly like RangeScan: the first
  // writer of a key wins.
  std::vector<std::map<uint64_t, std::string>> merged(n);
  std::vector<std::pair<uint64_t, std::string>> chunk;
  for (size_t i = 0; i < n; ++i) {
    chunk.clear();
    version->active()->RangeScan(los[i], his[i], limit, &chunk);
    for (auto& [k, v] : chunk) merged[i].emplace(k, std::move(v));
  }
  const auto& sealed = version->sealed();
  for (auto it = sealed.rbegin(); it != sealed.rend(); ++it) {
    for (size_t i = 0; i < n; ++i) {
      chunk.clear();
      (*it)->RangeScan(los[i], his[i], limit, &chunk);
      for (auto& [k, v] : chunk) merged[i].emplace(k, std::move(v));
    }
  }

  // One batched filter probe per table; only ranges the filter cannot
  // exclude touch data blocks (cache-served via GetBlock).
  auto may_match = std::make_unique<bool[]>(n);
  const auto& tables = version->tables();
  for (auto it = tables.rbegin(); it != tables.rend(); ++it) {
    (*it)->RangeMultiProbe(los, his, may_match.get(), &stats_);
    for (size_t i = 0; i < n; ++i) {
      if (!may_match[i]) continue;
      chunk.clear();
      (*it)->ScanBlocks(los[i], his[i], limit, &chunk, &stats_);
      for (auto& [k, v] : chunk) merged[i].emplace(k, std::move(v));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    auto& out = results[i];
    for (auto& [k, v] : merged[i]) {
      if (out.size() >= limit) break;
      out.emplace_back(k, std::move(v));
    }
  }
  return results;
}

bool Db::RangeMayMatch(uint64_t lo, uint64_t hi) {
  auto version = versions_.Current();
  std::vector<std::pair<uint64_t, std::string>> probe;
  version->active()->RangeScan(lo, hi, 1, &probe);
  if (!probe.empty()) return true;
  for (const auto& mem : version->sealed()) {
    probe.clear();
    mem->RangeScan(lo, hi, 1, &probe);
    if (!probe.empty()) return true;
  }
  bool any = false;
  for (const auto& table : version->tables()) {
    if (table->filter() != nullptr) {
      if (table->RangeScan(lo, hi, 0, nullptr, &stats_)) any = true;
    } else {
      if (lo <= table->max_key() && hi >= table->min_key()) any = true;
    }
  }
  return any;
}

DbFlushStats Db::flush_stats() const {
  std::lock_guard<std::mutex> lock(flush_stats_mu_);
  return flush_stats_;
}

uint64_t Db::filter_memory_bits() const {
  uint64_t total = 0;
  for (const auto& table : versions_.Current()->tables()) {
    total += table->filter_memory_bits();
  }
  return total;
}

}  // namespace bloomrf

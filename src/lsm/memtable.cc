// MemTable is header-only; this translation unit anchors the target.
#include "lsm/memtable.h"

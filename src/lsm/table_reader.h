// SST reader of the mini-LSM store, with per-probe cost accounting
// matching the breakdown the paper reports in Fig. 12.G (filter probe
// time, deserialization time, I/O wait, residual CPU).
//
// Reads go through an optional shared BlockCache: a data block is read
// and parsed at most once while it stays resident, and MultiGet
// batch-probes the filter (MayContainBatch) then visits each surviving
// block once for all keys that map to it.
//
// All read methods are const and safe to call from many threads at
// once: file access uses positioned reads (pread) so no seek state is
// shared, loaded filters are immutable, the block cache is internally
// locked, and stats counters are atomics.

#ifndef BLOOMRF_LSM_TABLE_READER_H_
#define BLOOMRF_LSM_TABLE_READER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "lsm/block.h"  // Lookup, ScanEntry
#include "lsm/block_cache.h"
#include "lsm/filter_policy.h"

namespace bloomrf {

/// Aggregated probe-cost counters (shared by DB across its tables).
/// Fields are relaxed atomics so concurrent readers can account into
/// one instance without tearing; copying takes a (non-atomic-as-a-
/// whole) field-by-field snapshot, which is exact whenever the copier
/// has quiesced the readers and merely approximate otherwise.
struct LsmStats {
  /// Levels with their own measured-FPR counters; deeper levels fold
  /// into the last bucket.
  static constexpr size_t kStatsLevels = 8;

  std::atomic<uint64_t> filter_probes{0};
  std::atomic<uint64_t> filter_negatives{0};
  // True false-positive accounting, per level: a probe the filter
  // allowed but the data blocks then rejected (false positive) vs a
  // probe the filter rejected (true negative — the structures have no
  // false negatives). measured FPR = fp / (fp + tn).
  std::atomic<uint64_t> filter_false_positives[kStatsLevels]{};
  std::atomic<uint64_t> filter_true_negatives[kStatsLevels]{};
  std::atomic<uint64_t> blocks_read{0};  // physical reads (cache misses incl.)
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> block_cache_hits{0};
  std::atomic<uint64_t> block_cache_misses{0};
  std::atomic<uint64_t> filter_probe_nanos{0};
  std::atomic<uint64_t> io_nanos{0};
  std::atomic<uint64_t> deser_nanos{0};
  // Write path: WAL records appended, bytes handed to write() (and
  // synced when wal_fsync is on), and physical group-commit writes —
  // appends/batches is the average group size under contention.
  std::atomic<uint64_t> wal_appends{0};
  std::atomic<uint64_t> wal_synced_bytes{0};
  std::atomic<uint64_t> group_commit_batches{0};
  // Maintenance path: background compactions completed/failed and the
  // bytes they moved; manifest edits appended and full snapshot
  // rewrites; tables quarantined (renamed aside as unreadable) at open
  // and data-block CRC mismatches caught at read time.
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> compaction_failures{0};
  std::atomic<uint64_t> compaction_bytes_read{0};
  std::atomic<uint64_t> compaction_bytes_written{0};
  std::atomic<uint64_t> manifest_appends{0};
  std::atomic<uint64_t> manifest_rewrites{0};
  std::atomic<uint64_t> tables_quarantined{0};
  std::atomic<uint64_t> block_crc_errors{0};
  // Delete path: tombstones written into SSTs (flush + compaction
  // outputs, cumulative), tombstones physically dropped by compaction
  // at the bottom-most eligible level (cumulative), and tombstones
  // currently live across the published version's SSTs (a gauge,
  // recomputed whenever the version changes).
  std::atomic<uint64_t> tombstones_written{0};
  std::atomic<uint64_t> tombstones_dropped{0};
  std::atomic<uint64_t> tombstones_live{0};
  // Parallel-compaction observability, attributed to the job's OUTPUT
  // level (folded into the same buckets as the FPR counters): bytes in
  // and out of each level's merges and the wall time they took, plus
  // the number of range-partitioned subcompaction workers run and the
  // jobs executing right now (a gauge — background jobs and manual
  // CompactRange both count).
  std::atomic<uint64_t> compaction_bytes_read_level[kStatsLevels]{};
  std::atomic<uint64_t> compaction_bytes_written_level[kStatsLevels]{};
  std::atomic<uint64_t> compaction_micros_level[kStatsLevels]{};
  std::atomic<uint64_t> subcompactions_run{0};
  std::atomic<uint64_t> compactions_inflight{0};

  LsmStats() = default;
  LsmStats(const LsmStats& o) { *this = o; }
  LsmStats& operator=(const LsmStats& o) {
    if (this == &o) return *this;
    filter_probes = o.filter_probes.load(std::memory_order_relaxed);
    filter_negatives = o.filter_negatives.load(std::memory_order_relaxed);
    for (size_t l = 0; l < kStatsLevels; ++l) {
      filter_false_positives[l] =
          o.filter_false_positives[l].load(std::memory_order_relaxed);
      filter_true_negatives[l] =
          o.filter_true_negatives[l].load(std::memory_order_relaxed);
    }
    blocks_read = o.blocks_read.load(std::memory_order_relaxed);
    bytes_read = o.bytes_read.load(std::memory_order_relaxed);
    block_cache_hits = o.block_cache_hits.load(std::memory_order_relaxed);
    block_cache_misses = o.block_cache_misses.load(std::memory_order_relaxed);
    filter_probe_nanos = o.filter_probe_nanos.load(std::memory_order_relaxed);
    io_nanos = o.io_nanos.load(std::memory_order_relaxed);
    deser_nanos = o.deser_nanos.load(std::memory_order_relaxed);
    wal_appends = o.wal_appends.load(std::memory_order_relaxed);
    wal_synced_bytes = o.wal_synced_bytes.load(std::memory_order_relaxed);
    group_commit_batches =
        o.group_commit_batches.load(std::memory_order_relaxed);
    compactions = o.compactions.load(std::memory_order_relaxed);
    compaction_failures =
        o.compaction_failures.load(std::memory_order_relaxed);
    compaction_bytes_read =
        o.compaction_bytes_read.load(std::memory_order_relaxed);
    compaction_bytes_written =
        o.compaction_bytes_written.load(std::memory_order_relaxed);
    manifest_appends = o.manifest_appends.load(std::memory_order_relaxed);
    manifest_rewrites = o.manifest_rewrites.load(std::memory_order_relaxed);
    tables_quarantined = o.tables_quarantined.load(std::memory_order_relaxed);
    block_crc_errors = o.block_crc_errors.load(std::memory_order_relaxed);
    tombstones_written = o.tombstones_written.load(std::memory_order_relaxed);
    tombstones_dropped = o.tombstones_dropped.load(std::memory_order_relaxed);
    tombstones_live = o.tombstones_live.load(std::memory_order_relaxed);
    for (size_t l = 0; l < kStatsLevels; ++l) {
      compaction_bytes_read_level[l] =
          o.compaction_bytes_read_level[l].load(std::memory_order_relaxed);
      compaction_bytes_written_level[l] =
          o.compaction_bytes_written_level[l].load(std::memory_order_relaxed);
      compaction_micros_level[l] =
          o.compaction_micros_level[l].load(std::memory_order_relaxed);
    }
    subcompactions_run = o.subcompactions_run.load(std::memory_order_relaxed);
    compactions_inflight =
        o.compactions_inflight.load(std::memory_order_relaxed);
    SetLastError(o.last_error());
    return *this;
  }

  /// Adds another instance's counters into this one (shard roll-up).
  void Accumulate(const LsmStats& o) {
    filter_probes += o.filter_probes.load(std::memory_order_relaxed);
    filter_negatives += o.filter_negatives.load(std::memory_order_relaxed);
    for (size_t l = 0; l < kStatsLevels; ++l) {
      filter_false_positives[l] +=
          o.filter_false_positives[l].load(std::memory_order_relaxed);
      filter_true_negatives[l] +=
          o.filter_true_negatives[l].load(std::memory_order_relaxed);
    }
    blocks_read += o.blocks_read.load(std::memory_order_relaxed);
    bytes_read += o.bytes_read.load(std::memory_order_relaxed);
    block_cache_hits += o.block_cache_hits.load(std::memory_order_relaxed);
    block_cache_misses += o.block_cache_misses.load(std::memory_order_relaxed);
    filter_probe_nanos += o.filter_probe_nanos.load(std::memory_order_relaxed);
    io_nanos += o.io_nanos.load(std::memory_order_relaxed);
    deser_nanos += o.deser_nanos.load(std::memory_order_relaxed);
    wal_appends += o.wal_appends.load(std::memory_order_relaxed);
    wal_synced_bytes += o.wal_synced_bytes.load(std::memory_order_relaxed);
    group_commit_batches +=
        o.group_commit_batches.load(std::memory_order_relaxed);
    compactions += o.compactions.load(std::memory_order_relaxed);
    compaction_failures +=
        o.compaction_failures.load(std::memory_order_relaxed);
    compaction_bytes_read +=
        o.compaction_bytes_read.load(std::memory_order_relaxed);
    compaction_bytes_written +=
        o.compaction_bytes_written.load(std::memory_order_relaxed);
    manifest_appends += o.manifest_appends.load(std::memory_order_relaxed);
    manifest_rewrites += o.manifest_rewrites.load(std::memory_order_relaxed);
    tables_quarantined +=
        o.tables_quarantined.load(std::memory_order_relaxed);
    block_crc_errors += o.block_crc_errors.load(std::memory_order_relaxed);
    tombstones_written += o.tombstones_written.load(std::memory_order_relaxed);
    tombstones_dropped += o.tombstones_dropped.load(std::memory_order_relaxed);
    tombstones_live += o.tombstones_live.load(std::memory_order_relaxed);
    for (size_t l = 0; l < kStatsLevels; ++l) {
      compaction_bytes_read_level[l] +=
          o.compaction_bytes_read_level[l].load(std::memory_order_relaxed);
      compaction_bytes_written_level[l] +=
          o.compaction_bytes_written_level[l].load(std::memory_order_relaxed);
      compaction_micros_level[l] +=
          o.compaction_micros_level[l].load(std::memory_order_relaxed);
    }
    subcompactions_run += o.subcompactions_run.load(std::memory_order_relaxed);
    compactions_inflight +=
        o.compactions_inflight.load(std::memory_order_relaxed);
    if (last_error().empty()) SetLastError(o.last_error());
  }

  /// Most recent write-path failure (WAL open/write, flush I/O) — why
  /// a Put returned false. Empty when nothing has failed. Sticky until
  /// Reset().
  std::string last_error() const {
    std::lock_guard<std::mutex> lock(err_mu_);
    return last_error_;
  }
  void SetLastError(std::string msg) {
    std::lock_guard<std::mutex> lock(err_mu_);
    last_error_ = std::move(msg);
  }

  /// Folds a table's level into the per-level counter bucket.
  static size_t StatsLevel(uint32_t level) {
    return level < kStatsLevels ? level : kStatsLevels - 1;
  }

  uint64_t total_filter_false_positives() const {
    uint64_t total = 0;
    for (size_t l = 0; l < kStatsLevels; ++l) {
      total += filter_false_positives[l].load(std::memory_order_relaxed);
    }
    return total;
  }
  uint64_t total_filter_true_negatives() const {
    uint64_t total = 0;
    for (size_t l = 0; l < kStatsLevels; ++l) {
      total += filter_true_negatives[l].load(std::memory_order_relaxed);
    }
    return total;
  }
  /// Measured FPR over all probes with a definite outcome; 0 when none.
  double measured_fpr() const {
    uint64_t fp = total_filter_false_positives();
    uint64_t tn = total_filter_true_negatives();
    return fp + tn > 0
               ? static_cast<double>(fp) / static_cast<double>(fp + tn)
               : 0.0;
  }

  void Reset() { *this = LsmStats{}; }

 private:
  mutable std::mutex err_mu_;
  std::string last_error_;
};

class TableReader {
 public:
  /// Opens `path` and validates its metadata before serving a byte:
  /// footer magic (v3 56-byte footer with tombstone count, v2 48-byte
  /// footer with index/filter CRCs, or the legacy v1 40-byte footer),
  /// index/filter bounds against the file size, index CRC and shape
  /// (strictly increasing last keys, contiguous block extents), filter
  /// CRC. Deserializes the filter
  /// block via `policy` (may be null). Returns null on any corruption
  /// — the Db quarantines such files. `cache`, when non-null, serves
  /// repeated block reads across all read paths of this table.
  /// `file_number` is the SST's manifest identity (0 when unknown).
  static std::unique_ptr<TableReader> Open(
      const std::string& path, const FilterPolicy* policy, LsmStats* stats,
      std::shared_ptr<BlockCache> cache = nullptr, uint64_t file_number = 0);

  ~TableReader();

  /// Tri-state point lookup: kHit fills `value` (when non-null),
  /// kTombstone means this table holds a deletion of the key — the
  /// caller must stop the newest-first walk and report "absent", never
  /// fall through to an older table. A tombstone hit confirms the
  /// filter's answer (the key IS in the table), so it is not counted
  /// as a false positive.
  Lookup Find(uint64_t key, std::string* value, LsmStats* stats) const;

  /// Live-value lookup: Find == kHit. `value` may be null (existence
  /// check only). A tombstoned key reads as absent — single-table
  /// callers only; engine walks use Find so deletions shadow.
  bool Get(uint64_t key, std::string* value, LsmStats* stats) const {
    return Find(key, value, stats) == Lookup::kHit;
  }

  /// Batched point lookup. For each i with states[i] == kMiss, probes
  /// keys[i]; on a hit sets states[i] = kHit and (if `values` is
  /// non-null) values[i]; on a tombstone sets states[i] = kTombstone
  /// (resolved: older tables must not override it). Keys already
  /// resolved are skipped, so a DB can chain the same arrays through
  /// tables newest-first. The filter is consulted once per batch via
  /// MayContainBatch, and each surviving data block is fetched and
  /// parsed once for all keys mapping to it. Returns the number of
  /// newly resolved keys (hits + tombstones).
  size_t MultiGet(std::span<const uint64_t> keys, Lookup* states,
                  std::string* values, LsmStats* stats) const;

  /// Live-value batched lookup over found flags; a tombstone resolves
  /// the key internally but leaves found[i] == false. Returns newly
  /// found (live) keys. Single-table callers only.
  size_t MultiGet(std::span<const uint64_t> keys, bool* found,
                  std::string* values, LsmStats* stats) const;

  /// Appends up to `limit` entries with keys in [lo, hi] to `out`,
  /// tombstones included (entry.tombstone == true) so a newest-first
  /// merge can let deletions shadow older tables. Returns true if the
  /// filter allowed the probe (for FPR counting).
  bool RangeScan(uint64_t lo, uint64_t hi, size_t limit,
                 std::vector<ScanEntry>* out, LsmStats* stats) const;

  /// Live-row variant: tombstoned keys are skipped (they consume no
  /// `limit` budget). Single-table callers only.
  bool RangeScan(uint64_t lo, uint64_t hi, size_t limit,
                 std::vector<std::pair<uint64_t, std::string>>* out,
                 LsmStats* stats) const;

  /// Batched range filter probe: may_match[i] holds this table's
  /// filter answer for [los[i], his[i]] (true when the table has no
  /// filter). One planned MayContainRangeBatch per call instead of N
  /// scalar descents — the filter-side half of Db::ScanRange.
  void RangeMultiProbe(std::span<const uint64_t> los,
                       std::span<const uint64_t> his, bool* may_match,
                       LsmStats* stats) const;

  /// The block-side half of RangeScan: scans data blocks for entries
  /// in [lo, hi] (tombstones included) without consulting the filter
  /// (callers already probed via RangeMultiProbe). Reads go through
  /// the shared block cache.
  void ScanBlocks(uint64_t lo, uint64_t hi, size_t limit,
                  std::vector<ScanEntry>* out, LsmStats* stats) const;

  uint64_t min_key() const { return min_key_; }
  uint64_t max_key() const { return max_key_; }
  /// Tombstone entries in this table, from the v3 footer (0 for v1/v2
  /// tables, which predate deletes).
  uint64_t num_tombstones() const { return num_tombstones_; }
  uint64_t filter_memory_bits() const {
    return filter_ ? filter_->MemoryBits() : 0;
  }
  const PointRangeFilter* filter() const { return filter_.get(); }
  uint64_t file_number() const { return file_number_; }
  uint64_t file_size() const { return file_size_; }
  const std::string& path() const { return path_; }

  /// LSM level of this table, for per-level stats attribution. Set
  /// once by the Db before the reader is shared (no synchronization).
  void set_level(uint32_t level) { level_ = level; }
  uint32_t level() const { return level_; }
  /// Registry name of the filter backend this table carries (parsed
  /// from the framed filter block); "" when the table has no filter.
  const std::string& filter_backend() const { return filter_backend_; }

  /// Lifetime probe outcomes of this table's filter, keyed for
  /// per-backend feedback aggregation (Db::CollectFilterFeedback).
  struct FilterOutcomes {
    uint64_t point_allowed = 0;
    uint64_t point_false = 0;
    uint64_t point_negatives = 0;
    uint64_t range_allowed = 0;
    uint64_t range_false = 0;
    uint64_t range_negatives = 0;
  };
  FilterOutcomes filter_outcomes() const {
    FilterOutcomes out;
    out.point_allowed = pt_allowed_.load(std::memory_order_relaxed);
    out.point_false = pt_false_.load(std::memory_order_relaxed);
    out.point_negatives = pt_neg_.load(std::memory_order_relaxed);
    out.range_allowed = rg_allowed_.load(std::memory_order_relaxed);
    out.range_false = rg_false_.load(std::memory_order_relaxed);
    out.range_negatives = rg_neg_.load(std::memory_order_relaxed);
    return out;
  }

  /// Closes the loop for a range probe the filter allowed: callers of
  /// RangeMultiProbe + ScanBlocks report whether any rows actually
  /// matched; an empty result means the filter answer was a false
  /// positive. No-op when the table has no filter.
  void AccountRangeOutcome(bool any_rows, LsmStats* stats) const;

  /// Sequential full-table cursor for compaction merges. Reads blocks
  /// directly (bypassing the shared cache, so a compaction sweep never
  /// evicts hot read-path blocks). `ok()` turns false if a block fails
  /// to read or checksum — the cursor then ends early and the caller
  /// must abort the merge.
  class Iterator {
   public:
    Iterator(const TableReader& table, LsmStats* stats);
    /// Bounded variant: positions the cursor on the first entry with
    /// key >= `start_key` (past the end when the table has none), so a
    /// range-partitioned subcompaction reads only the blocks its key
    /// range touches.
    Iterator(const TableReader& table, LsmStats* stats, uint64_t start_key);
    bool Valid() const {
      return block_ != nullptr && pos_ < block_->entries.size();
    }
    uint64_t key() const { return block_->entries[pos_].key; }
    std::string_view value() const { return block_->entries[pos_].value; }
    bool tombstone() const { return block_->entries[pos_].tombstone; }
    void Next();
    bool ok() const { return ok_; }

   private:
    void LoadBlock(size_t block_idx);

    const TableReader& table_;
    LsmStats* const stats_;
    std::shared_ptr<const CachedBlock> block_;
    size_t block_idx_ = 0;
    size_t pos_ = 0;
    bool ok_ = true;
  };

 private:
  TableReader() = default;

  struct IndexEntry {
    uint64_t last_key;
    uint64_t offset;
    uint64_t size;
  };

  /// Positioned read of [offset, offset+size) into `out`; thread-safe
  /// (pread on POSIX, io_mu_-guarded seek+read elsewhere).
  bool ReadFileAt(uint64_t offset, uint64_t size, std::string* out) const;
  bool ReadBlockAt(size_t index_pos, std::string* buffer,
                   LsmStats* stats) const;
  /// Cache-aware fetch: returns the parsed block at `index_pos` from
  /// the shared cache, reading and parsing (then caching) on a miss.
  /// Null on I/O error or corruption.
  std::shared_ptr<const CachedBlock> GetBlock(size_t index_pos,
                                              LsmStats* stats) const;
  /// Index position of the first block whose last_key >= key, or -1.
  int64_t FindBlock(uint64_t key) const;

  std::FILE* file_ = nullptr;
  /// Serializes seek+read on platforms without pread (Windows); unused
  /// on POSIX, where positioned reads need no shared cursor.
  mutable std::mutex io_mu_;
  std::vector<IndexEntry> index_;
  std::unique_ptr<PointRangeFilter> filter_;
  std::shared_ptr<BlockCache> cache_;
  uint64_t table_id_ = 0;  // process-unique cache-key namespace
  uint64_t min_key_ = 0;
  uint64_t max_key_ = 0;
  uint64_t file_number_ = 0;  // manifest identity (0 = unknown/legacy)
  uint64_t file_size_ = 0;
  uint64_t num_tombstones_ = 0;     // v3 footer count (0 for v1/v2)
  bool has_block_crc_ = false;      // v2+: data blocks carry trailing CRCs
  bool has_tombstone_flags_ = false;  // v3: entry meta packs tombstone bit
  uint32_t level_ = 0;          // LSM level (set before sharing)
  std::string filter_backend_;  // registry name from the framed block
  // Per-table probe outcomes (relaxed; read via filter_outcomes()).
  mutable std::atomic<uint64_t> pt_allowed_{0};
  mutable std::atomic<uint64_t> pt_false_{0};
  mutable std::atomic<uint64_t> pt_neg_{0};
  mutable std::atomic<uint64_t> rg_allowed_{0};
  mutable std::atomic<uint64_t> rg_false_{0};
  mutable std::atomic<uint64_t> rg_neg_{0};
  std::string path_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_TABLE_READER_H_

#include "lsm/compaction.h"

#include <algorithm>

namespace bloomrf {

namespace {

/// Appends every file of `level` overlapping [lo, hi] to the job
/// (inputs + input_files). Levels >= 1 are disjoint sorted runs, so
/// the overlap is a contiguous slice.
void AddOverlapping(const Version::TableList& level_files, uint32_t level,
                    uint64_t lo, uint64_t hi, CompactionJob* job) {
  for (const auto& table : level_files) {
    if (table->max_key() < lo || table->min_key() > hi) continue;
    job->inputs.push_back(table);
    job->input_files.emplace_back(level, table->file_number());
  }
}

}  // namespace

uint64_t LevelTargetBytes(const CompactionConfig& cfg, size_t level) {
  uint64_t target = cfg.level_base_bytes;
  for (size_t i = 1; i < level; ++i) target *= cfg.level_multiplier;
  return target;
}

std::optional<CompactionJob> PickCompaction(const Version& v,
                                            const CompactionConfig& cfg,
                                            std::vector<uint64_t>* cursors,
                                            uint64_t busy_levels) {
  const auto& levels = v.levels();
  if (cfg.max_levels < 2) return std::nullopt;  // nowhere to compact to
  const auto pair_free = [busy_levels](size_t level) {
    const uint64_t claim = (1ull << level) | (1ull << (level + 1));
    return (busy_levels & claim) == 0;
  };

  // L0 pressure: file count, since L0 files span the whole key range.
  // All of L0 goes at once (any subset could strand older values above
  // newer ones), newest first so the merge's precedence order matches
  // flush order, plus the slice of L1 the combined range overlaps.
  // When L0/L1 are claimed by a running job, pressure further down can
  // still be picked — that is the whole point of the multi-job
  // scheduler.
  if (levels[0].size() >= cfg.l0_trigger && pair_free(0)) {
    CompactionJob job;
    job.output_level = 1;
    uint64_t lo = UINT64_MAX, hi = 0;
    for (auto it = levels[0].rbegin(); it != levels[0].rend(); ++it) {
      job.inputs.push_back(*it);
      job.input_files.emplace_back(0, (*it)->file_number());
      lo = std::min(lo, (*it)->min_key());
      hi = std::max(hi, (*it)->max_key());
    }
    if (levels.size() > 1) AddOverlapping(levels[1], 1, lo, hi, &job);
    return job;
  }

  // Deeper levels: byte budget. One file per job — the one after the
  // level's cursor, wrapping, so successive jobs sweep the key space
  // instead of re-compacting one hot range.
  for (size_t level = 1; level < levels.size() && level + 1 < cfg.max_levels;
       ++level) {
    if (levels[level].empty()) continue;
    if (!pair_free(level)) continue;
    if (v.level_bytes(level) <= LevelTargetBytes(cfg, level)) continue;

    const uint64_t cursor =
        level < cursors->size() ? (*cursors)[level] : 0;
    const std::shared_ptr<const TableReader>* pick = nullptr;
    for (const auto& table : levels[level]) {  // sorted by min_key
      if (table->min_key() > cursor) {
        pick = &table;
        break;
      }
    }
    if (pick == nullptr) pick = &levels[level].front();  // wrap around
    if (level < cursors->size()) (*cursors)[level] = (*pick)->max_key();

    CompactionJob job;
    job.output_level = level + 1;
    job.inputs.push_back(*pick);
    job.input_files.emplace_back(static_cast<uint32_t>(level),
                                 (*pick)->file_number());
    if (level + 1 < levels.size()) {
      AddOverlapping(levels[level + 1], static_cast<uint32_t>(level + 1),
                     (*pick)->min_key(), (*pick)->max_key(), &job);
    }
    return job;
  }
  return std::nullopt;
}

uint64_t CompactionClaimBits(const CompactionJob& job) {
  uint64_t claim = 1ull << (job.output_level & 63);
  for (const auto& [level, number] : job.input_files) {
    claim |= 1ull << (level & 63);
  }
  return claim;
}

std::vector<std::pair<uint64_t, uint64_t>> PickSubcompactionRanges(
    const CompactionJob& job, size_t max_subcompactions) {
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  if (max_subcompactions <= 1 || job.inputs.size() < 2) {
    ranges.emplace_back(0, UINT64_MAX);
    return ranges;
  }

  // Candidate cut points: every input table's smallest and largest
  // key, each carrying half the table's bytes — the cheap stand-in for
  // a real key-density histogram. Sweeping them in key order and
  // cutting at equal weight fractions lands each range on a file
  // boundary of SOME input, which is where the merge work actually
  // divides.
  std::vector<std::pair<uint64_t, uint64_t>> points;  // (key, weight)
  points.reserve(job.inputs.size() * 2);
  uint64_t total_weight = 0;
  for (const auto& table : job.inputs) {
    const uint64_t weight = std::max<uint64_t>(1, table->file_size() / 2);
    points.emplace_back(table->min_key(), weight);
    points.emplace_back(table->max_key(), weight);
    total_weight += 2 * weight;
  }
  std::sort(points.begin(), points.end());

  std::vector<uint64_t> cuts;
  uint64_t accumulated = 0;
  size_t next_cut = 1;
  for (const auto& [key, weight] : points) {
    accumulated += weight;
    if (next_cut >= max_subcompactions) break;
    if (accumulated * max_subcompactions < next_cut * total_weight) continue;
    // A cut at `key` starts the next range there; key 0 or a repeat
    // would make an empty range.
    if (key != 0 && (cuts.empty() || key > cuts.back())) {
      cuts.push_back(key);
      ++next_cut;
    }
  }

  uint64_t lo = 0;
  for (uint64_t cut : cuts) {
    ranges.emplace_back(lo, cut - 1);
    lo = cut;
  }
  ranges.emplace_back(lo, UINT64_MAX);
  return ranges;
}

TombstoneShadow TombstoneShadow::FromVersion(const Version& v,
                                             const CompactionJob& job) {
  std::vector<std::pair<uint64_t, uint64_t>> bounds;
  const auto& levels = v.levels();
  for (size_t level = job.output_level + 1; level < levels.size(); ++level) {
    for (const auto& table : levels[level]) {
      bool is_input = false;
      for (const auto& [in_level, in_number] : job.input_files) {
        if (in_level == level && in_number == table->file_number()) {
          is_input = true;
          break;
        }
      }
      if (!is_input) bounds.emplace_back(table->min_key(), table->max_key());
    }
  }
  return FromBounds(std::move(bounds));
}

TombstoneShadow TombstoneShadow::FromBounds(
    std::vector<std::pair<uint64_t, uint64_t>> bounds) {
  TombstoneShadow shadow;
  std::sort(bounds.begin(), bounds.end());
  // Coalesce overlapping/adjacent ranges so Covers is one binary search
  // over disjoint intervals.
  for (const auto& [lo, hi] : bounds) {
    if (!shadow.bounds_.empty() && lo <= shadow.bounds_.back().second) {
      shadow.bounds_.back().second = std::max(shadow.bounds_.back().second, hi);
    } else {
      shadow.bounds_.emplace_back(lo, hi);
    }
  }
  return shadow;
}

bool TombstoneShadow::Covers(uint64_t key) const {
  // First interval with lo > key; the candidate is its predecessor.
  auto it = std::upper_bound(
      bounds_.begin(), bounds_.end(), key,
      [](uint64_t k, const std::pair<uint64_t, uint64_t>& b) {
        return k < b.first;
      });
  if (it == bounds_.begin()) return false;
  --it;
  return key <= it->second;
}

}  // namespace bloomrf

#include "lsm/wal.h"

#include <cstdio>
#include <cstring>

#include "lsm/env.h"
#include "lsm/table_reader.h"  // LsmStats
#include "util/coding.h"
#include "util/crc32c.h"

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace bloomrf {

namespace {
constexpr char kBatchRecord = 1;
// Mixed put/delete batches. (Type 2 is the MANIFEST's edit record —
// different file, but keeping the type space disjoint means a log
// byte-stream can never be mistaken for the other kind.)
constexpr char kOpsBatchRecord = 3;
constexpr uint8_t kOpDeleteFlag = 1;
constexpr size_t kHeaderSize = 4 + 4 + 1;  // crc, length, type
// A length beyond any plausible memtable keeps a garbage header from
// directing replay to allocate gigabytes.
constexpr uint32_t kMaxRecordPayload = 1u << 30;
// Initial mmap window; doubles on overflow. Small enough that the many
// short-lived logs of a busy store don't reserve much, large enough
// that a typical memtable's worth of records remaps only a few times.
constexpr size_t kInitialMapBytes = 64 << 10;
}  // namespace

void AppendFramedRecord(char type, std::string_view payload,
                        std::string* out) {
  uint32_t crc = Crc32c(&type, 1);
  crc = Crc32c(payload.data(), payload.size(), crc);
  char header[kHeaderSize];
  std::memcpy(header, &crc, 4);
  uint32_t length = static_cast<uint32_t>(payload.size());
  std::memcpy(header + 4, &length, 4);
  header[8] = type;
  out->append(header, kHeaderSize);
  out->append(payload);
}

FramedReplayResult ReplayFramedRecords(
    std::string_view data,
    const std::function<bool(char, std::string_view)>& apply) {
  FramedReplayResult result;
  size_t pos = 0;
  while (pos + kHeaderSize <= data.size()) {
    uint32_t crc = DecodeFixed32(data.data() + pos);
    uint32_t length = DecodeFixed32(data.data() + pos + 4);
    char type = data[pos + 8];
    if (crc == 0 && length == 0 && type == 0) {
      // All-zero header: the preallocated-but-never-written tail of an
      // mmap-backed log whose writer died before trimming it. Clean
      // end of log iff the whole remainder really is zero (no valid
      // record starts with a zero type byte).
      result.clean = data.find_first_not_of('\0', pos) == std::string_view::npos;
      return result;
    }
    // A length beyond any plausible record keeps a garbage header from
    // directing replay past the end (or allocating gigabytes upstream).
    if (length > kMaxRecordPayload ||
        pos + kHeaderSize + length > data.size()) {
      result.clean = false;  // torn tail or garbage header
      return result;
    }
    std::string_view payload(data.data() + pos + kHeaderSize, length);
    uint32_t actual = Crc32c(&type, 1);
    actual = Crc32c(payload.data(), payload.size(), actual);
    if (actual != crc) {
      result.clean = false;
      return result;
    }
    if (!apply(type, payload)) {
      result.clean = false;
      return result;
    }
    result.records += 1;
    pos += kHeaderSize + length;
    result.bytes = pos;
  }
  if (pos != data.size()) result.clean = false;  // trailing partial header
  return result;
}

FramedReplayResult ReplayFramedFile(
    const std::string& path,
    const std::function<bool(char, std::string_view)>& apply) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};  // nothing logged: clean empty replay
  std::string data;
  char buf[64 << 10];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);
  return ReplayFramedRecords(data, apply);
}

void WalEncodeRecordTo(std::span<const KV> kvs, std::string* record) {
  record->clear();
  size_t bytes = kHeaderSize + 4;
  for (const KV& kv : kvs) bytes += 12 + kv.value.size();
  record->reserve(bytes);
  // Header placeholder; crc and length are patched once the payload is
  // in place, so the record is built in a single buffer.
  record->append(8, '\0');
  record->push_back(kBatchRecord);
  PutFixed32(record, static_cast<uint32_t>(kvs.size()));
  for (const KV& kv : kvs) {
    PutFixed64(record, kv.key);
    PutLengthPrefixed(record, kv.value);
  }
  uint32_t crc = Crc32c(record->data() + 8, record->size() - 8);
  uint32_t length = static_cast<uint32_t>(record->size() - kHeaderSize);
  char* header = record->data();
  std::memcpy(header, &crc, 4);
  std::memcpy(header + 4, &length, 4);
}

std::string WalEncodeRecord(std::span<const KV> kvs) {
  std::string record;
  WalEncodeRecordTo(kvs, &record);
  return record;
}

void WalEncodeOpsTo(std::span<const WriteOp> ops, std::string* record) {
  record->clear();
  size_t bytes = kHeaderSize + 4;
  for (const WriteOp& op : ops) {
    bytes += 9 + (op.is_delete ? 0 : 4 + op.value.size());
  }
  record->reserve(bytes);
  record->append(8, '\0');
  record->push_back(kOpsBatchRecord);
  PutFixed32(record, static_cast<uint32_t>(ops.size()));
  for (const WriteOp& op : ops) {
    PutFixed64(record, op.key);
    record->push_back(
        static_cast<char>(op.is_delete ? kOpDeleteFlag : 0));
    if (!op.is_delete) PutLengthPrefixed(record, op.value);
  }
  uint32_t crc = Crc32c(record->data() + 8, record->size() - 8);
  uint32_t length = static_cast<uint32_t>(record->size() - kHeaderSize);
  char* header = record->data();
  std::memcpy(header, &crc, 4);
  std::memcpy(header + 4, &length, 4);
}

void WalEncodeDeletesTo(std::span<const uint64_t> keys, std::string* record) {
  record->clear();
  record->reserve(kHeaderSize + 4 + keys.size() * 9);
  record->append(8, '\0');
  record->push_back(kOpsBatchRecord);
  PutFixed32(record, static_cast<uint32_t>(keys.size()));
  for (uint64_t key : keys) {
    PutFixed64(record, key);
    record->push_back(static_cast<char>(kOpDeleteFlag));
  }
  uint32_t crc = Crc32c(record->data() + 8, record->size() - 8);
  uint32_t length = static_cast<uint32_t>(record->size() - kHeaderSize);
  char* header = record->data();
  std::memcpy(header, &crc, 4);
  std::memcpy(header + 4, &length, 4);
}

WalReplayResult WalReplay(
    const std::string& path,
    const std::function<void(uint64_t, std::string_view, bool)>& apply) {
  WalReplayResult result;
  FramedReplayResult framed = ReplayFramedFile(
      path, [&](char type, std::string_view payload) {
        if (type != kBatchRecord && type != kOpsBatchRecord) {
          return false;  // unknown type: garbage
        }
        // Validate the whole record before applying any of it: a
        // random tail can collide with the CRC, and half-applied
        // records would silently diverge from history (batch
        // all-or-nothing holds for mixed put/delete records too).
        if (payload.size() < 4) return false;
        uint32_t count = DecodeFixed32(payload.data());
        struct Entry {
          uint64_t key;
          std::string_view value;
          bool is_delete;
        };
        std::vector<Entry> batch;
        batch.reserve(count);
        size_t at = 4;
        for (uint32_t i = 0; i < count; ++i) {
          if (at + 8 > payload.size()) return false;
          uint64_t key = DecodeFixed64(payload.data() + at);
          at += 8;
          std::string_view value;
          bool is_delete = false;
          if (type == kOpsBatchRecord) {
            if (at + 1 > payload.size()) return false;
            uint8_t flags = static_cast<uint8_t>(payload[at]);
            if ((flags & ~kOpDeleteFlag) != 0) return false;  // garbage
            ++at;
            is_delete = (flags & kOpDeleteFlag) != 0;
          }
          if (!is_delete && !GetLengthPrefixed(payload, &at, &value)) {
            return false;
          }
          batch.push_back({key, value, is_delete});
        }
        if (at != payload.size()) return false;
        for (const Entry& e : batch) apply(e.key, e.value, e.is_delete);
        result.entries += batch.size();
        return true;
      });
  result.records = framed.records;
  result.bytes = framed.bytes;
  result.clean = framed.clean;
  return result;
}

// ---------------------------------------------------------------------
// WalWriter: mmap-backed on POSIX. Records are memcpy'd into a shared
// file mapping, which lands them in the kernel page cache with no
// syscall per commit — the same durability as write() without fsync (a
// process crash loses nothing; dirty pages belong to the kernel), at a
// fraction of the cost. wal_fsync upgrades each group commit with an
// msync of the dirty range. The file is preallocated (so ENOSPC
// surfaces as a clean open/grow error instead of a SIGBUS on fault)
// and trimmed to the bytes actually written when the writer closes.
// ---------------------------------------------------------------------

WalWriter::WalWriter(std::string path, bool fsync_on_commit, LsmStats* stats,
                     Env* env)
    : path_(std::move(path)), fsync_on_commit_(fsync_on_commit),
      stats_(stats), env_(env) {
  if (env_ != nullptr && env_->InjectFault("wal.open")) {
    broken_ = true;
    if (stats_ != nullptr) {
      stats_->SetLastError("wal: injected open fault on " + path_);
    }
    return;
  }
#ifndef _WIN32
  fd_ = ::open(path_.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd_ >= 0 && !Remap(kInitialMapBytes)) {
    ::close(fd_);
    fd_ = -1;
  }
#else
  // Windows fallback: buffered stdio, flushed per group commit.
  fd_ = -1;
  file_ = std::fopen(path_.c_str(), "wb");
#endif
  if (!FileOk()) {
    broken_ = true;
    if (stats_ != nullptr) {
      stats_->SetLastError("wal: cannot open " + path_);
    }
  }
}

WalWriter::~WalWriter() {
#ifndef _WIN32
  if (map_ != nullptr) ::munmap(map_, map_size_);
  if (fd_ >= 0) {
    // Trim the preallocated tail so the on-disk file is exactly the
    // records written (replay also tolerates the zero tail).
    if (::ftruncate(fd_, static_cast<off_t>(offset_)) != 0) {
      // Nothing useful to do; the zero tail stays and replay skips it.
    }
    ::close(fd_);
  }
#else
  if (file_ != nullptr) std::fclose(file_);
#endif
}

bool WalWriter::FileOk() const {
#ifndef _WIN32
  return fd_ >= 0 && map_ != nullptr;
#else
  return file_ != nullptr;
#endif
}

#ifndef _WIN32
bool WalWriter::Remap(size_t new_size) {
  if (map_ != nullptr) {
    ::munmap(map_, map_size_);
    map_ = nullptr;
  }
  // Reserve real blocks up front: a later page fault cannot fail with
  // SIGBUS on a full disk, and in fsync mode the size metadata is made
  // durable once here instead of on every commit.
#ifdef __linux__
  if (::posix_fallocate(fd_, 0, static_cast<off_t>(new_size)) != 0) {
    return false;
  }
#else
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) return false;
#endif
  if (fsync_on_commit_ && ::fsync(fd_) != 0) return false;
  int flags = MAP_SHARED;
#ifdef MAP_POPULATE
  // Prefault the window here instead of taking a minor fault on the
  // first record touching each page of the commit hot path.
  flags |= MAP_POPULATE;
#endif
  void* mem =
      ::mmap(nullptr, new_size, PROT_READ | PROT_WRITE, flags, fd_, 0);
  if (mem == MAP_FAILED) return false;
  map_ = static_cast<char*>(mem);
  map_size_ = new_size;
  return true;
}
#endif

bool WalWriter::WriteBytes(const char* data, size_t n) {
  // Fault checkpoint only — the bytes still travel through the mmap
  // below when allowed. Crash-mode envs never fail this site (page
  // cache survives a process kill); site hooks can.
  if (env_ != nullptr && env_->InjectFault("wal.append")) return false;
#ifndef _WIN32
  while (offset_ + n > map_size_) {
    size_t grown = map_size_ * 2;
    while (offset_ + n > grown) grown *= 2;
    if (!Remap(grown)) return false;
  }
  std::memcpy(map_ + offset_, data, n);
  const size_t begin = offset_;
  offset_ += n;
  if (fsync_on_commit_) {
    // msync wants a page-aligned start; round down to cover the whole
    // dirty range.
    const size_t page = 4096;
    size_t aligned = begin & ~(page - 1);
    if (::msync(map_ + aligned, offset_ - aligned, MS_SYNC) != 0) {
      return false;
    }
  }
#else
  if (std::fwrite(data, 1, n, file_) != n) return false;
  if (fsync_on_commit_ && std::fflush(file_) != 0) return false;
#endif
  if (stats_ != nullptr) {
    stats_->group_commit_batches.fetch_add(1, std::memory_order_relaxed);
    stats_->wal_synced_bytes.fetch_add(n, std::memory_order_relaxed);
  }
  return true;
}

bool WalWriter::broken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return broken_;
}

// Commits [data, data+n) as one group while the caller holds the
// leadership: unlocks for the copy, relocks, publishes `batch_end` (or
// marks the file broken) and wakes any blocked followers.
void WalWriter::CommitGroup(std::unique_lock<std::mutex>& lock,
                            const char* data, size_t n, uint64_t batch_end) {
  lock.unlock();
  bool ok = WriteBytes(data, n);
  lock.lock();
  if (ok) {
    committed_seq_ = batch_end;
  } else {
    // Sticky: this file is done for. The Db surfaces the error and
    // rotates to a fresh log at the next seal.
    broken_ = true;
    if (stats_ != nullptr) {
      stats_->SetLastError("wal: write failed on " + path_);
    }
  }
  if (waiters_ > 0) cv_.notify_all();
}

bool WalWriter::Append(std::string_view record) {
  std::unique_lock<std::mutex> lock(mu_);
  if (broken_) return false;

  if (leader_active_) {
    // A leader is mid-commit; it will pick our record up in its next
    // group (it drains until pending_ is empty before stepping down).
    pending_.append(record);
    const uint64_t my_seq = ++next_seq_;
    ++waiters_;
    cv_.wait(lock, [&] { return committed_seq_ >= my_seq || broken_; });
    --waiters_;
    bool ok = committed_seq_ >= my_seq;
    if (ok && stats_ != nullptr) {
      stats_->wal_appends.fetch_add(1, std::memory_order_relaxed);
    }
    return ok;
  }

  leader_active_ = true;
  uint64_t my_seq;
  if (pending_.empty()) {
    // Uncontended fast path: commit our own record straight from the
    // caller's buffer, skipping the queue copy entirely.
    my_seq = ++next_seq_;
    if (!fsync_on_commit_) {
      // The commit is just a memcpy into the mapping — cheaper than an
      // unlock/relock pair, so do it under the mutex. (With fsync on,
      // the msync dominates and the lock must be released so followers
      // can enqueue into the next group.)
      if (WriteBytes(record.data(), record.size())) {
        committed_seq_ = my_seq;
      } else {
        broken_ = true;
        if (stats_ != nullptr) {
          stats_->SetLastError("wal: write failed on " + path_);
        }
      }
      if (waiters_ > 0) cv_.notify_all();
    } else {
      CommitGroup(lock, record.data(), record.size(), my_seq);
    }
  } else {
    pending_.append(record);
    my_seq = ++next_seq_;
  }
  // Drain whatever queued while we were (or still are) committing.
  while (!broken_ && committed_seq_ < next_seq_) {
    std::string batch = std::move(pending_);
    pending_.clear();
    const uint64_t batch_end = next_seq_;
    CommitGroup(lock, batch.data(), batch.size(), batch_end);
  }
  bool ok = committed_seq_ >= my_seq;
  leader_active_ = false;
  if (waiters_ > 0) cv_.notify_all();
  if (ok && stats_ != nullptr) {
    stats_->wal_appends.fetch_add(1, std::memory_order_relaxed);
  }
  return ok;
}

bool WalWriter::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  if (broken_) return false;
  // Wait out any in-flight leader so the sync covers every committed
  // record.
  ++waiters_;
  cv_.wait(lock, [&] { return !leader_active_ || broken_; });
  --waiters_;
  if (broken_) return false;
#ifndef _WIN32
  // The mapping's dirty pages already belong to the page cache; msync
  // pushes them (and thus every committed record) to stable storage.
  return offset_ == 0 ||
         ::msync(map_, (offset_ + 4095) & ~size_t{4095}, MS_SYNC) == 0;
#else
  return std::fflush(file_) == 0;
#endif
}

}  // namespace bloomrf

// Shared LRU cache of parsed SST data blocks.
//
// The mini-LSM read path (Get/MultiGet/RangeScan) historically read
// and parsed a data block from disk on every access. The cache keeps
// recently used blocks — raw bytes plus their parsed entry vector —
// keyed by (table id, block index), so repeated reads of a hot block
// cost a hash lookup instead of an fread + parse. One cache instance
// is shared by all tables of a Db (DbOptions::block_cache can share it
// across Db instances too, mirroring RocksDB's shared block cache).
//
// Thread-safe: all operations take one internal mutex; cached blocks
// are immutable and handed out as shared_ptr, so readers keep a block
// alive even after eviction.

#ifndef BLOOMRF_LSM_BLOCK_CACHE_H_
#define BLOOMRF_LSM_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "lsm/block.h"

namespace bloomrf {

/// One cached data block: the raw bytes and the entries parsed from
/// them (entry string_views point into `raw`, which shared_ptr
/// ownership keeps stable).
struct CachedBlock {
  std::string raw;
  std::vector<BlockEntry> entries;

  size_t ChargeBytes() const {
    return raw.size() + entries.capacity() * sizeof(BlockEntry) +
           sizeof(CachedBlock);
  }
};

class BlockCache {
 public:
  /// `capacity_bytes` bounds the total charge of resident blocks;
  /// least-recently-used blocks are evicted past it.
  explicit BlockCache(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns the cached block or null; a hit refreshes LRU order.
  std::shared_ptr<const CachedBlock> Lookup(uint64_t table_id,
                                            uint64_t block_idx);

  /// Inserts (or replaces) a block and evicts LRU entries over budget.
  void Insert(uint64_t table_id, uint64_t block_idx,
              std::shared_ptr<const CachedBlock> block);

  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t charge_bytes() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  struct Key {
    uint64_t table_id;
    uint64_t block_idx;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Splittable mix of the two ids; table ids are small and dense.
      uint64_t h = k.table_id * 0x9e3779b97f4a7c15ULL + k.block_idx;
      h ^= h >> 32;
      return static_cast<size_t>(h * 0xff51afd7ed558ccdULL);
    }
  };
  struct Item {
    Key key;
    std::shared_ptr<const CachedBlock> block;
  };

  void EvictOverBudgetLocked();

  const size_t capacity_bytes_;
  mutable std::mutex mutex_;
  std::list<Item> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Item>::iterator, KeyHash> index_;
  size_t charge_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_BLOCK_CACHE_H_

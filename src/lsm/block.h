// Data-block format of the mini-LSM SST files.
//
// A block is a sorted run of (uint64 key, value) entries:
//   entry := key:fixed64  meta:fixed32  value_bytes
// In format v3 tables the meta word packs the value length in its low
// 31 bits and a tombstone flag (deletion marker, empty value) in the
// top bit; v1/v2 tables predate deletes, so their meta word is the
// full 32-bit value length and parses byte-identically to before.
// Blocks target Options::block_size bytes (RocksDB-style 4 KiB
// default); the index block stores each data block's last key.

#ifndef BLOOMRF_LSM_BLOCK_H_
#define BLOOMRF_LSM_BLOCK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bloomrf {

/// Tri-state point-lookup outcome shared by every read source
/// (memtable, SST): a tombstone is a definite answer — the key was
/// deleted by a write newer than anything in older sources — so
/// lookups stop there instead of falling through and resurrecting an
/// older value.
enum class Lookup : uint8_t {
  kMiss = 0,       // not in this source; keep looking in older ones
  kHit = 1,        // live value found
  kTombstone = 2,  // deleted here; the key is definitively absent
};

/// One merged-scan row: tombstones travel through range merges so they
/// can shadow older live values, and are dropped only at the edge of
/// the public API (or at compaction's bottom level).
struct ScanEntry {
  uint64_t key = 0;
  std::string value;
  bool tombstone = false;
};

class BlockBuilder {
 public:
  static constexpr uint32_t kTombstoneBit = 1u << 31;

  void Add(uint64_t key, std::string_view value, bool tombstone = false);

  size_t SizeBytes() const { return buffer_.size(); }
  size_t NumEntries() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }
  uint64_t last_key() const { return last_key_; }

  /// Returns the serialized block and resets the builder.
  std::string Finish();

 private:
  std::string buffer_;
  size_t num_entries_ = 0;
  uint64_t last_key_ = 0;
};

struct BlockEntry {
  uint64_t key;
  std::string_view value;  // points into the block's backing buffer
  bool tombstone = false;  // always false in pre-v3 tables
};

/// Parses a serialized block. Returns false on corruption.
/// `tombstone_flags` selects the v3 meta-word decoding (top bit =
/// tombstone); pre-v3 tables pass false and keep their original full
/// 32-bit length decoding.
bool ParseBlock(std::string_view data, std::vector<BlockEntry>* entries,
                bool tombstone_flags = false);

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_BLOCK_H_

// Data-block format of the mini-LSM SST files.
//
// A block is a sorted run of (uint64 key, value) entries:
//   entry := key:fixed64  value_len:fixed32  value_bytes
// Blocks target Options::block_size bytes (RocksDB-style 4 KiB
// default); the index block stores each data block's last key.

#ifndef BLOOMRF_LSM_BLOCK_H_
#define BLOOMRF_LSM_BLOCK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bloomrf {

class BlockBuilder {
 public:
  void Add(uint64_t key, std::string_view value);

  size_t SizeBytes() const { return buffer_.size(); }
  size_t NumEntries() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }
  uint64_t last_key() const { return last_key_; }

  /// Returns the serialized block and resets the builder.
  std::string Finish();

 private:
  std::string buffer_;
  size_t num_entries_ = 0;
  uint64_t last_key_ = 0;
};

struct BlockEntry {
  uint64_t key;
  std::string_view value;  // points into the block's backing buffer
};

/// Parses a serialized block. Returns false on corruption.
bool ParseBlock(std::string_view data, std::vector<BlockEntry>* entries);

}  // namespace bloomrf

#endif  // BLOOMRF_LSM_BLOCK_H_

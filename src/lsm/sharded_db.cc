#include "lsm/sharded_db.h"

#include <algorithm>
#include <cassert>

namespace bloomrf {

ShardedDb::ShardedDb(ShardedDbOptions options) : options_(std::move(options)) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.block_cache == nullptr && options_.block_cache_bytes > 0) {
    options_.block_cache =
        std::make_shared<BlockCache>(options_.block_cache_bytes);
  }
  // One subcompaction pool shared by every shard, sized for a single
  // shard's fan-out: shard compactions already run in parallel with
  // each other, so per-shard private pools would oversubscribe the
  // host num_shards-fold.
  std::shared_ptr<ThreadPool> compaction_pool;
  const size_t subs = options_.max_subcompactions > 0
                          ? options_.max_subcompactions
                          : std::max<size_t>(1, options_.compaction_threads);
  if (subs > 1) compaction_pool = std::make_shared<ThreadPool>(subs - 1);
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    DbOptions shard_options;
    shard_options.dir = options_.dir + "/shard-" + std::to_string(i);
    shard_options.filter_policy = options_.filter_policy;
    shard_options.block_size = options_.block_size;
    shard_options.memtable_bytes = options_.memtable_bytes;
    shard_options.block_cache = options_.block_cache;  // shared (may be null)
    shard_options.block_cache_bytes = options_.block_cache_bytes;
    shard_options.background_flush = options_.background_flush;
    shard_options.wal = options_.wal;
    shard_options.wal_fsync = options_.wal_fsync;
    if (!options_.wal_dir.empty()) {
      shard_options.wal_dir = options_.wal_dir + "/shard-" + std::to_string(i);
    }
    shard_options.env = options_.env;
    shard_options.compaction = options_.compaction;
    shard_options.l0_compaction_trigger = options_.l0_compaction_trigger;
    shard_options.level_base_bytes = options_.level_base_bytes;
    shard_options.level_size_multiplier = options_.level_size_multiplier;
    shard_options.max_levels = options_.max_levels;
    shard_options.manifest_rewrite_bytes = options_.manifest_rewrite_bytes;
    shard_options.compaction_threads = options_.compaction_threads;
    shard_options.max_subcompactions = options_.max_subcompactions;
    shard_options.subcompaction_min_bytes = options_.subcompaction_min_bytes;
    shard_options.compaction_pool = compaction_pool;
    // One sampler per shard (each shard Db creates its own): the
    // adaptive loop tunes shard-local filters from shard-local traffic.
    shard_options.sample_queries = options_.sample_queries;
    shard_options.sampler_period_log2 = options_.sampler_period_log2;
    shards_.push_back(std::make_unique<Db>(std::move(shard_options)));
  }
  size_t workers = options_.worker_threads > 0 ? options_.worker_threads
                                               : options_.num_shards;
  pool_ = std::make_unique<ThreadPool>(workers);
}

bool ShardedDb::PutBatch(std::span<const KV> kvs) {
  if (kvs.empty()) return true;
  if (shards_.size() == 1) return shards_[0]->PutBatch(kvs);

  // Partition per shard (KV views stay valid: they point into the
  // caller's batch for the whole call).
  std::vector<std::vector<KV>> sub(shards_.size());
  for (const KV& kv : kvs) sub[shard_of(kv.key)].push_back(kv);

  std::vector<char> ok(shards_.size(), 1);
  TaskGroup group(pool_.get());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (sub[s].empty()) continue;
    group.Submit([this, s, &sub, &ok] {
      ok[s] = shards_[s]->PutBatch(sub[s]) ? 1 : 0;
    });
  }
  group.Wait();
  return std::all_of(ok.begin(), ok.end(), [](char c) { return c != 0; });
}

bool ShardedDb::DeleteBatch(std::span<const uint64_t> keys) {
  if (keys.empty()) return true;
  if (shards_.size() == 1) return shards_[0]->DeleteBatch(keys);

  std::vector<std::vector<uint64_t>> sub(shards_.size());
  for (uint64_t key : keys) sub[shard_of(key)].push_back(key);

  std::vector<char> ok(shards_.size(), 1);
  TaskGroup group(pool_.get());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (sub[s].empty()) continue;
    group.Submit([this, s, &sub, &ok] {
      ok[s] = shards_[s]->DeleteBatch(sub[s]) ? 1 : 0;
    });
  }
  group.Wait();
  return std::all_of(ok.begin(), ok.end(), [](char c) { return c != 0; });
}

std::vector<std::optional<std::string>> ShardedDb::MultiGet(
    std::span<const uint64_t> keys) {
  std::vector<std::optional<std::string>> result(keys.size());
  if (keys.empty()) return result;
  if (shards_.size() == 1) return shards_[0]->MultiGet(keys);

  // Partition input positions per shard, keeping original order within
  // a shard so the scatter below is a linear walk.
  std::vector<std::vector<uint32_t>> idx(shards_.size());
  std::vector<std::vector<uint64_t>> sub(shards_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    size_t s = shard_of(keys[i]);
    idx[s].push_back(static_cast<uint32_t>(i));
    sub[s].push_back(keys[i]);
  }

  TaskGroup group(pool_.get());
  std::vector<std::vector<std::optional<std::string>>> answers(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (sub[s].empty()) continue;
    group.Submit([this, s, &sub, &answers] {
      answers[s] = shards_[s]->MultiGet(sub[s]);
    });
  }
  group.Wait();

  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t j = 0; j < idx[s].size(); ++j) {
      result[idx[s][j]] = std::move(answers[s][j]);
    }
  }
  return result;
}

std::vector<std::pair<uint64_t, std::string>> ShardedDb::RangeScan(
    uint64_t lo, uint64_t hi, size_t limit) {
  auto batches = ScanRange({&lo, 1}, {&hi, 1}, limit);
  return std::move(batches[0]);
}

std::vector<std::vector<std::pair<uint64_t, std::string>>>
ShardedDb::ScanRange(std::span<const uint64_t> los,
                     std::span<const uint64_t> his, size_t limit) {
  assert(los.size() == his.size());
  const size_t n = los.size();
  std::vector<std::vector<std::pair<uint64_t, std::string>>> results(n);
  if (n == 0) return results;
  if (shards_.size() == 1) return shards_[0]->ScanRange(los, his, limit);

  TaskGroup group(pool_.get());
  std::vector<std::vector<std::vector<std::pair<uint64_t, std::string>>>>
      per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    group.Submit([this, s, los, his, limit, &per_shard] {
      per_shard[s] = shards_[s]->ScanRange(los, his, limit);
    });
  }
  group.Wait();

  // Shards own disjoint key sets, so the per-range merge is a plain
  // sort of the concatenated rows. Each shard returned its own lowest
  // `limit` rows, so the union's lowest `limit` rows are all present.
  for (size_t i = 0; i < n; ++i) {
    auto& out = results[i];
    size_t total = 0;
    for (size_t s = 0; s < shards_.size(); ++s) total += per_shard[s][i].size();
    out.reserve(total);  // all rows are inserted before the sort+cut
    for (size_t s = 0; s < shards_.size(); ++s) {
      auto& rows = per_shard[s][i];
      out.insert(out.end(), std::make_move_iterator(rows.begin()),
                 std::make_move_iterator(rows.end()));
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (out.size() > limit) out.resize(limit);
  }
  return results;
}

bool ShardedDb::Flush() {
  // Seal + drain every shard in parallel: each shard's Flush waits for
  // its own background write, so running them on the pool overlaps the
  // SST I/O.
  std::vector<char> ok(shards_.size(), 1);
  TaskGroup group(pool_.get());
  for (size_t s = 0; s < shards_.size(); ++s) {
    group.Submit([this, s, &ok] { ok[s] = shards_[s]->Flush() ? 1 : 0; });
  }
  group.Wait();
  return std::all_of(ok.begin(), ok.end(), [](char c) { return c != 0; });
}

bool ShardedDb::WaitForFlush() {
  bool ok = true;
  for (auto& shard : shards_) ok &= shard->WaitForFlush();
  return ok;
}

bool ShardedDb::WaitForCompaction() {
  bool ok = true;
  for (auto& shard : shards_) ok &= shard->WaitForCompaction();
  return ok;
}

bool ShardedDb::CompactAll() {
  // Parallel like Flush: each shard's full merge is independent I/O.
  std::vector<char> ok(shards_.size(), 1);
  TaskGroup group(pool_.get());
  for (size_t s = 0; s < shards_.size(); ++s) {
    group.Submit([this, s, &ok] { ok[s] = shards_[s]->CompactAll() ? 1 : 0; });
  }
  group.Wait();
  return std::all_of(ok.begin(), ok.end(), [](char c) { return c != 0; });
}

bool ShardedDb::CompactRange(uint64_t begin, uint64_t end) {
  // Hash routing scatters every key range over all shards, so the
  // range compacts everywhere — each shard trims it to its own files
  // via the whole-file expansion in Db::CompactRange.
  std::vector<char> ok(shards_.size(), 1);
  TaskGroup group(pool_.get());
  for (size_t s = 0; s < shards_.size(); ++s) {
    group.Submit([this, s, begin, end, &ok] {
      ok[s] = shards_[s]->CompactRange(begin, end) ? 1 : 0;
    });
  }
  group.Wait();
  return std::all_of(ok.begin(), ok.end(), [](char c) { return c != 0; });
}

LsmStats ShardedDb::TotalStats() const {
  LsmStats total;
  for (const auto& shard : shards_) total.Accumulate(shard->stats());
  return total;
}

void ShardedDb::ResetStats() {
  for (auto& shard : shards_) shard->ResetStats();
}

size_t ShardedDb::num_tables() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->num_tables();
  return total;
}

uint64_t ShardedDb::filter_memory_bits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->filter_memory_bits();
  return total;
}

}  // namespace bloomrf

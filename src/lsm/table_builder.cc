#include "lsm/table_builder.h"

#include <cstdio>

#include "util/coding.h"
#include "util/timer.h"

namespace bloomrf {

void TableBuilder::Add(uint64_t key, std::string_view value) {
  current_.Add(key, value);
  keys_.push_back(key);
  if (current_.SizeBytes() >= block_size_) FlushBlock();
}

void TableBuilder::FlushBlock() {
  if (current_.empty()) return;
  uint64_t last = current_.last_key();
  std::string block = current_.Finish();
  PutFixed64(&index_, last);
  PutFixed64(&index_, file_data_.size());
  PutFixed64(&index_, block.size());
  file_data_ += block;
}

bool TableBuilder::WriteTo(const std::string& path, TableBuildStats* stats) {
  FlushBlock();
  uint64_t index_off = file_data_.size();
  uint64_t index_size = index_.size();
  file_data_ += index_;

  // The filter block is stored exactly as CreateFilter emits it: the
  // registry framing (`name | payload`) already makes it
  // self-describing. An empty result means no filter for this SST.
  std::string filter_block;
  double filter_seconds = 0;
  if (policy_ != nullptr) {
    Timer timer;
    filter_block = policy_->CreateFilter(keys_);
    filter_seconds = timer.ElapsedSeconds();
  }
  uint64_t filter_off = file_data_.size();
  uint64_t filter_size = filter_block.size();
  file_data_ += filter_block;

  PutFixed64(&file_data_, index_off);
  PutFixed64(&file_data_, index_size);
  PutFixed64(&file_data_, filter_off);
  PutFixed64(&file_data_, filter_size);
  PutFixed64(&file_data_, kMagic);

  if (stats != nullptr) {
    stats->filter_create_seconds = filter_seconds;
    stats->filter_block_bytes = filter_size;
    stats->data_bytes = index_off;
    stats->num_entries = keys_.size();
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(file_data_.data(), 1, file_data_.size(), f) ==
            file_data_.size();
  std::fclose(f);
  return ok;
}

}  // namespace bloomrf

#include "lsm/table_builder.h"

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/timer.h"

namespace bloomrf {

namespace {

std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of("/\\");
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void TableBuilder::Add(uint64_t key, std::string_view value, bool tombstone) {
  current_.Add(key, tombstone ? std::string_view() : value, tombstone);
  // Tombstoned keys go into the filter too: while the tombstone is
  // live, a lookup must reach it (and stop) instead of being filtered
  // straight through to a stale value in an older table.
  keys_.push_back(key);
  if (tombstone) ++num_tombstones_;
  if (current_.SizeBytes() >= block_size_) FlushBlock();
}

void TableBuilder::FlushBlock() {
  if (current_.empty()) return;
  uint64_t last = current_.last_key();
  std::string block = current_.Finish();
  PutFixed64(&index_, last);
  PutFixed64(&index_, file_data_.size());
  PutFixed64(&index_, block.size());  // payload size; trailing CRC excluded
  file_data_ += block;
  PutFixed32(&file_data_, Crc32c(block));
}

bool TableBuilder::WriteTo(Env* env, const std::string& path,
                           TableBuildStats* stats) {
  FlushBlock();
  uint64_t index_off = file_data_.size();
  uint64_t index_size = index_.size();
  file_data_ += index_;

  // The filter block is stored exactly as CreateFilter emits it: the
  // registry framing (`name | payload`) already makes it
  // self-describing. An empty result means no filter for this SST.
  std::string filter_block;
  double filter_seconds = 0;
  if (policy_ != nullptr) {
    Timer timer;
    filter_block = policy_->CreateFilter(keys_, context_);
    filter_seconds = timer.ElapsedSeconds();
  }
  uint64_t filter_off = file_data_.size();
  uint64_t filter_size = filter_block.size();
  file_data_ += filter_block;

  PutFixed64(&file_data_, index_off);
  PutFixed64(&file_data_, index_size);
  PutFixed64(&file_data_, filter_off);
  PutFixed64(&file_data_, filter_size);
  PutFixed64(&file_data_, num_tombstones_);
  PutFixed32(&file_data_, Crc32c(index_));
  PutFixed32(&file_data_, Crc32c(filter_block));
  PutFixed64(&file_data_, kMagicV3);

  if (stats != nullptr) {
    stats->filter_create_seconds = filter_seconds;
    stats->filter_block_bytes = filter_size;
    stats->data_bytes = index_off;
    stats->num_entries = keys_.size();
    stats->num_tombstones = num_tombstones_;
    stats->file_bytes = file_data_.size();
  }

  // Durable create: stage as .tmp, fsync the bytes, rename into place,
  // fsync the directory. A crash at any boundary leaves either no
  // visible SST (a .tmp leftover recovery deletes) or a complete one.
  const std::string tmp = path + ".tmp";
  auto file = env->NewWritableFile(tmp);
  bool ok = file != nullptr && file->Append(file_data_) && file->Sync() &&
            file->Close();
  ok = ok && env->RenameFile(tmp, path);
  ok = ok && env->SyncDir(DirName(path));
  if (!ok) env->DeleteFile(tmp);  // best effort
  return ok;
}

}  // namespace bloomrf

// Lock-free bit array used as the backing store of all Bloom-style
// filters in this library.
//
// bloomRF is an *online* structure (paper Sect. 1, Problem 2 and Fig. 12
// A/B): keys are inserted while lookups run concurrently. Bits are set
// with relaxed atomic fetch_or and read with relaxed atomic loads; a
// filter never produces false negatives for keys whose insertion
// happened-before the probe.
//
// The array is addressable at three granularities:
//  - single bits               (covering probes in bloomRF, plain BFs)
//  - aligned "words" of w bits (PMHF word probes, w in {1,2,...,64})
//  - raw 64-bit blocks         (serialization, scatter statistics)

#ifndef BLOOMRF_UTIL_BIT_ARRAY_H_
#define BLOOMRF_UTIL_BIT_ARRAY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "util/prefetch.h"

namespace bloomrf {

class BitArray {
 public:
  BitArray() = default;

  /// Creates a zeroed array of at least `nbits` bits (rounded up to a
  /// multiple of 64).
  explicit BitArray(uint64_t nbits) { Reset(nbits); }

  BitArray(BitArray&&) = default;
  BitArray& operator=(BitArray&&) = default;

  void Reset(uint64_t nbits);

  uint64_t size_bits() const { return nbits_; }
  uint64_t size_blocks() const { return nblocks_; }
  uint64_t size_bytes() const { return nblocks_ * 8; }

  /// Sets bit `pos` (thread-safe, relaxed).
  void SetBit(uint64_t pos) {
    blocks_[pos >> 6].fetch_or(1ULL << (pos & 63),
                               std::memory_order_relaxed);
  }

  /// Tests bit `pos` (thread-safe, relaxed).
  bool TestBit(uint64_t pos) const {
    return (blocks_[pos >> 6].load(std::memory_order_relaxed) >>
            (pos & 63)) &
           1ULL;
  }

  /// Reads the aligned word of `word_bits` bits at word index `idx`.
  /// `word_bits` must be a power of two in [1, 64]. The word is
  /// right-aligned in the returned value.
  uint64_t LoadWord(uint64_t idx, uint32_t word_bits) const {
    uint64_t bitpos = idx * word_bits;
    uint64_t block = blocks_[bitpos >> 6].load(std::memory_order_relaxed);
    if (word_bits == 64) return block;
    uint64_t mask = (1ULL << word_bits) - 1;
    return (block >> (bitpos & 63)) & mask;
  }

  /// ORs `bits` (right-aligned, at most `word_bits` wide) into the
  /// aligned word at word index `idx`.
  void OrWord(uint64_t idx, uint32_t word_bits, uint64_t bits) {
    uint64_t bitpos = idx * word_bits;
    blocks_[bitpos >> 6].fetch_or(bits << (bitpos & 63),
                                  std::memory_order_relaxed);
  }

  uint64_t LoadBlock(uint64_t block_idx) const {
    return blocks_[block_idx].load(std::memory_order_relaxed);
  }

  /// Read-only view of the backing 64-bit blocks for the SIMD gather
  /// kernels (util/simd.h). Reads through this pointer are plain loads
  /// of lock-free atomics — equivalent to the relaxed LoadBlock reads,
  /// so concurrent Insert keeps the no-false-negative contract.
  const uint64_t* raw_blocks() const {
    static_assert(sizeof(std::atomic<uint64_t>) == sizeof(uint64_t));
    static_assert(std::atomic<uint64_t>::is_always_lock_free);
    return reinterpret_cast<const uint64_t*>(blocks_.get());
  }

  /// Prefetch hints for the planned-probe engine: pull the 64-bit block
  /// a later TestBit/LoadWord will touch into cache ahead of use.
  void PrefetchBlock(uint64_t block_idx) const {
    PrefetchRead(&blocks_[block_idx]);
  }
  void PrefetchBit(uint64_t pos) const { PrefetchBlock(pos >> 6); }

  /// True iff any bit in the inclusive bit range [lo, hi] is set.
  bool AnyInRange(uint64_t lo, uint64_t hi) const;

  /// Number of set bits.
  uint64_t CountOnes() const;

  /// Appends the raw little-endian block contents to `dst`.
  void SerializeTo(std::string* dst) const;

  /// Restores from `data` (must hold exactly `nbits/8` rounded-up-to-8
  /// bytes for an array of `nbits` bits). Returns false on size
  /// mismatch.
  bool DeserializeFrom(uint64_t nbits, std::string_view data);

 private:
  uint64_t nbits_ = 0;
  uint64_t nblocks_ = 0;
  std::unique_ptr<std::atomic<uint64_t>[]> blocks_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_UTIL_BIT_ARRAY_H_

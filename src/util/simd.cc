#include "util/simd.h"

#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#define BLOOMRF_SIMD_X86 1
#if defined(__GNUC__) || defined(__clang__)
#include <immintrin.h>
#define BLOOMRF_SIMD_AVX2_KERNELS 1
#endif
#elif defined(__aarch64__)
#define BLOOMRF_SIMD_NEON_KERNELS 1
#include <arm_neon.h>
#endif

namespace bloomrf {

namespace {

// ------------------------------------------------------------- scalar

uint32_t GatherTestNonzero4Scalar(const uint64_t* base, const uint64_t* idx,
                                  const uint64_t* mask) {
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>((base[idx[i]] & mask[i]) != 0) << i;
  }
  return out;
}

uint32_t GatherTestNonzero8Scalar(const uint64_t* base, const uint64_t* idx,
                                  const uint64_t* mask) {
  return GatherTestNonzero4Scalar(base, idx, mask) |
         (GatherTestNonzero4Scalar(base, idx + 4, mask + 4) << 4);
}

// -------------------------------------------------------------- AVX2

#if defined(BLOOMRF_SIMD_AVX2_KERNELS)

// Compiled with the target attribute so the library builds without a
// global -mavx2; the dispatcher only installs these after
// __builtin_cpu_supports("avx2") confirms the ISA.
__attribute__((target("avx2"))) uint32_t GatherTestNonzero4Avx2(
    const uint64_t* base, const uint64_t* idx, const uint64_t* mask) {
  __m256i vidx =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
  __m256i gathered = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(base), vidx, 8);
  __m256i vmask =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask));
  __m256i zeroed =
      _mm256_cmpeq_epi64(_mm256_and_si256(gathered, vmask),
                         _mm256_setzero_si256());
  uint32_t zero_lanes = static_cast<uint32_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(zeroed)));
  return ~zero_lanes & 0xFu;
}

__attribute__((target("avx2"))) uint32_t GatherTestNonzero8Avx2(
    const uint64_t* base, const uint64_t* idx, const uint64_t* mask) {
  const long long* b = reinterpret_cast<const long long*>(base);
  __m256i g0 = _mm256_i64gather_epi64(
      b, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx)), 8);
  __m256i g1 = _mm256_i64gather_epi64(
      b, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + 4)), 8);
  __m256i zero = _mm256_setzero_si256();
  __m256i z0 = _mm256_cmpeq_epi64(
      _mm256_and_si256(
          g0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask))),
      zero);
  __m256i z1 = _mm256_cmpeq_epi64(
      _mm256_and_si256(
          g1,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + 4))),
      zero);
  uint32_t zero_lanes =
      static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(z0))) |
      (static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(z1)))
       << 4);
  return ~zero_lanes & 0xFFu;
}

#endif  // BLOOMRF_SIMD_AVX2_KERNELS

// -------------------------------------------------------------- NEON

#if defined(BLOOMRF_SIMD_NEON_KERNELS)

// AArch64 has no 64-bit gather; the loads stay scalar and the mask
// tests run two lanes at a time (vtstq: lane-wise (a & b) != 0).
uint32_t GatherTestNonzero4Neon(const uint64_t* base, const uint64_t* idx,
                                const uint64_t* mask) {
  uint64x2_t lo = {base[idx[0]], base[idx[1]]};
  uint64x2_t hi = {base[idx[2]], base[idx[3]]};
  uint64x2_t t0 = vtstq_u64(lo, vld1q_u64(mask));
  uint64x2_t t1 = vtstq_u64(hi, vld1q_u64(mask + 2));
  return static_cast<uint32_t>(vgetq_lane_u64(t0, 0) & 1) |
         (static_cast<uint32_t>(vgetq_lane_u64(t0, 1) & 1) << 1) |
         (static_cast<uint32_t>(vgetq_lane_u64(t1, 0) & 1) << 2) |
         (static_cast<uint32_t>(vgetq_lane_u64(t1, 1) & 1) << 3);
}

uint32_t GatherTestNonzero8Neon(const uint64_t* base, const uint64_t* idx,
                                const uint64_t* mask) {
  return GatherTestNonzero4Neon(base, idx, mask) |
         (GatherTestNonzero4Neon(base, idx + 4, mask + 4) << 4);
}

#endif  // BLOOMRF_SIMD_NEON_KERNELS

// --------------------------------------------------------- dispatcher

struct Dispatch {
  SimdLevel level;
  uint32_t (*gather_test4)(const uint64_t*, const uint64_t*,
                           const uint64_t*);
  uint32_t (*gather_test8)(const uint64_t*, const uint64_t*,
                           const uint64_t*);
};

Dispatch MakeDispatch(SimdLevel level) {
#if defined(BLOOMRF_SIMD_AVX2_KERNELS)
  if (level == SimdLevel::kAvx2 && DetectSimdLevel() == SimdLevel::kAvx2) {
    return {SimdLevel::kAvx2, &GatherTestNonzero4Avx2,
            &GatherTestNonzero8Avx2};
  }
#endif
#if defined(BLOOMRF_SIMD_NEON_KERNELS)
  if (level == SimdLevel::kNeon && DetectSimdLevel() == SimdLevel::kNeon) {
    return {SimdLevel::kNeon, &GatherTestNonzero4Neon,
            &GatherTestNonzero8Neon};
  }
#endif
  return {SimdLevel::kScalar, &GatherTestNonzero4Scalar,
          &GatherTestNonzero8Scalar};
}

SimdLevel StartupLevel() {
  const char* force = std::getenv("BLOOMRF_FORCE_SCALAR");
  if (force != nullptr && force[0] == '1') return SimdLevel::kScalar;
  return DetectSimdLevel();
}

Dispatch& ActiveDispatch() {
  static Dispatch dispatch = MakeDispatch(StartupLevel());
  return dispatch;
}

}  // namespace

SimdLevel DetectSimdLevel() {
#if defined(BLOOMRF_SIMD_AVX2_KERNELS)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#elif defined(BLOOMRF_SIMD_NEON_KERNELS)
  return SimdLevel::kNeon;
#endif
  return SimdLevel::kScalar;
}

SimdLevel ActiveSimdLevel() { return ActiveDispatch().level; }

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kScalar:
      return "scalar";
  }
  return "scalar";
}

void SetSimdLevelForTesting(SimdLevel level) {
  ActiveDispatch() = MakeDispatch(level);
}

void ClearSimdLevelForTesting() {
  ActiveDispatch() = MakeDispatch(StartupLevel());
}

uint32_t GatherTestNonzero4(const uint64_t* base, const uint64_t* idx,
                            const uint64_t* mask) {
  return ActiveDispatch().gather_test4(base, idx, mask);
}

uint32_t GatherTestNonzero8(const uint64_t* base, const uint64_t* idx,
                            const uint64_t* mask) {
  return ActiveDispatch().gather_test8(base, idx, mask);
}

}  // namespace bloomrf

// Succinct bitvector with rank/select support.
//
// Substrate for the SuRF baseline (LOUDS-Dense / LOUDS-Sparse
// navigation, paper [49]). Rank uses a two-level directory (cumulative
// popcount per 512-bit superblock plus per-64-bit-block bytes); select
// uses sampled positions refined by a directory walk. Construction is
// offline (SuRF is an offline filter, paper Problem 2), so the vector
// is immutable after Build().

#ifndef BLOOMRF_UTIL_BIT_VECTOR_H_
#define BLOOMRF_UTIL_BIT_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bloomrf {

class BitVector {
 public:
  BitVector() = default;

  /// Appends a bit (only valid before Build()).
  void PushBack(bool bit);

  /// Appends the low `n` bits of `bits`, LSB first.
  void AppendBits(uint64_t bits, uint32_t n);

  /// Sets bit `pos`, growing the vector if needed (pre-Build only).
  void SetBit(uint64_t pos);

  /// Grows the vector to at least `nbits` zero bits (pre-Build only).
  void EnsureSize(uint64_t nbits);

  /// Finalizes and builds the rank/select directories.
  void Build();

  uint64_t size() const { return nbits_; }

  bool Get(uint64_t pos) const {
    return (words_[pos >> 6] >> (pos & 63)) & 1ULL;
  }

  /// Number of 1-bits in [0, pos) — exclusive prefix rank.
  uint64_t Rank1(uint64_t pos) const;

  /// Number of 0-bits in [0, pos).
  uint64_t Rank0(uint64_t pos) const { return pos - Rank1(pos); }

  /// Position of the (i+1)-th 1-bit (0-based i). Requires i < ones().
  uint64_t Select1(uint64_t i) const;

  uint64_t ones() const { return total_ones_; }

  /// Position of the next 1-bit at or after `pos`, or size() if none.
  uint64_t NextOne(uint64_t pos) const;

  /// Position of the previous 1-bit at or before `pos`, or UINT64_MAX.
  uint64_t PrevOne(uint64_t pos) const;

  /// Approximate heap usage in bits (payload + directories).
  uint64_t SizeBits() const;

  /// Appends nbits + raw payload words; directories are rebuilt on
  /// load. Valid on built vectors only.
  void SerializeTo(std::string* dst) const;

  /// Restores from a SerializeTo() stream at `*pos`, advancing it.
  /// Returns false on truncation. The vector comes back Built().
  bool DeserializeFrom(std::string_view src, size_t* pos);

 private:
  static constexpr uint64_t kSuperBits = 512;
  static constexpr uint64_t kSelectSample = 256;

  std::vector<uint64_t> words_;
  uint64_t nbits_ = 0;
  uint64_t total_ones_ = 0;
  std::vector<uint64_t> super_rank_;    // cumulative ones before superblock
  std::vector<uint64_t> select_hints_;  // position of every kSelectSample-th 1
  bool built_ = false;
};

}  // namespace bloomrf

#endif  // BLOOMRF_UTIL_BIT_VECTOR_H_

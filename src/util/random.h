// Deterministic random number generation and the data/workload
// distributions used throughout the paper's evaluation (Sect. 9):
// uniform, normal and zipfian key distributions over the 64-bit domain.

#ifndef BLOOMRF_UTIL_RANDOM_H_
#define BLOOMRF_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/hash.h"

namespace bloomrf {

/// xoshiro256**-style generator seeded via SplitMix64. Deterministic for
/// a given seed; cheap enough for workload generation in benchmarks.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) {
    uint64_t s = seed;
    for (auto& word : state_) word = SplitMix64(s);
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return FastRange64(Next(), n); }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Standard normal via Box-Muller (one value per call; the spare is
  /// cached).
  double NextGaussian();

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0;
};

/// YCSB-style Zipfian generator over ranks [0, n). Precomputes zeta(n,
/// theta) once; Next() is O(1).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 0x5eed);

  /// Returns a rank in [0, n); rank 0 is the most popular.
  uint64_t Next();

  /// Scrambled variant: popular ranks are scattered over [0, n).
  uint64_t NextScrambled() { return FastRange64(Mix64(Next()), n_); }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double threshold_;
  Rng rng_;
};

/// Distribution shapes for keys and query anchors (paper Sect. 9).
enum class Distribution { kUniform, kNormal, kZipfian };

const char* DistributionName(Distribution d);

/// Draws one 64-bit value from `dist` over the full uint64 domain.
/// Normal: mean 2^63, sigma 2^59 (clamped). Zipfian: scrambled ranks
/// over 2^40 distinct anchors spread across the domain.
uint64_t DrawKey(Distribution dist, Rng& rng, ZipfianGenerator* zipf);

/// Generates `n` distinct keys from `dist` (sorted not guaranteed).
std::vector<uint64_t> GenerateDistinctKeys(uint64_t n, Distribution dist,
                                           uint64_t seed);

}  // namespace bloomrf

#endif  // BLOOMRF_UTIL_RANDOM_H_

#include "util/random.h"

#include <cmath>
#include <unordered_set>

namespace bloomrf {

double Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n, theta);
  double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
  threshold_ = 1.0 + std::pow(0.5, theta);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  // Cap the exact summation; the tail contribution is approximated by
  // the integral. Keeps construction O(1e6) even for n = 2^40.
  constexpr uint64_t kExact = 1000000;
  double sum = 0;
  uint64_t upto = n < kExact ? n : kExact;
  for (uint64_t i = 1; i <= upto; ++i) sum += 1.0 / std::pow(i, theta);
  if (n > upto && theta != 1.0) {
    sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
            std::pow(static_cast<double>(upto), 1.0 - theta)) /
           (1.0 - theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < threshold_) return 1;
  return static_cast<uint64_t>(static_cast<double>(n_) *
                               std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kNormal:
      return "normal";
    case Distribution::kZipfian:
      return "zipfian";
  }
  return "?";
}

uint64_t DrawKey(Distribution dist, Rng& rng, ZipfianGenerator* zipf) {
  switch (dist) {
    case Distribution::kUniform:
      return rng.Next();
    case Distribution::kNormal: {
      // Mean at domain center, sigma 2^59: spans a wide but clearly
      // non-uniform slice of the domain (paper uses normal data and
      // workload distributions without fixing parameters).
      double g = rng.NextGaussian();
      double v = 0x1.0p63 + g * 0x1.0p59;
      if (v < 0) v = 0;
      if (v >= 0x1.0p64) v = 0x1.0p64 - 1.0;
      return static_cast<uint64_t>(v);
    }
    case Distribution::kZipfian: {
      // Scrambled ranks mapped to sparse anchors: heavy skew onto a
      // small set of hot regions, spread over the whole domain.
      uint64_t rank = zipf->Next();
      return Mix64(rank) & ~0xffffULL;  // cluster keys within 2^16 blocks
    }
  }
  return 0;
}

std::vector<uint64_t> GenerateDistinctKeys(uint64_t n, Distribution dist,
                                           uint64_t seed) {
  Rng rng(seed);
  ZipfianGenerator zipf(uint64_t{1} << 40, 0.99, seed ^ 0x2f);
  std::unordered_set<uint64_t> seen;
  seen.reserve(n * 2);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  while (keys.size() < n) {
    uint64_t k = DrawKey(dist, rng, &zipf);
    if (dist == Distribution::kZipfian) {
      // Zipfian draws collide by design; disambiguate within the hot
      // block so the *data* stays clustered but keys are distinct.
      k |= rng.Next() & 0xffffULL;
    }
    if (seen.insert(k).second) keys.push_back(k);
  }
  return keys;
}

}  // namespace bloomrf

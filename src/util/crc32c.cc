#include "util/crc32c.h"

#include <array>

namespace bloomrf {
namespace {

// 8 tables of 256 entries: table[0] is the plain byte-at-a-time CRC-32C
// table, table[k] advances a CRC by one byte followed by k zero bytes,
// which lets the hot loop fold 8 input bytes per iteration.
struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
      }
      t[0][i] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t crc) {
  const auto& tb = tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 8) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[7][crc & 0xff] ^ tb.t[6][(crc >> 8) & 0xff] ^
          tb.t[5][(crc >> 16) & 0xff] ^ tb.t[4][crc >> 24] ^ tb.t[3][p[4]] ^
          tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

}  // namespace bloomrf

// Minimal wall-clock timing helper for benchmark harnesses.

#ifndef BLOOMRF_UTIL_TIMER_H_
#define BLOOMRF_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace bloomrf {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  uint64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_UTIL_TIMER_H_

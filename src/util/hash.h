// Hashing utilities shared by all filters.
//
// All filters in this library hash 64-bit machine words (keys are first
// mapped to an order-preserving uint64 representation, see
// core/key_codec.h). We provide a strong 64-bit finalizer (SplitMix64 /
// MurmurHash3 fmix64 family), seeded per-use-site, plus the
// Kirsch-Mitzenmacher double-hashing scheme used by the Bloom-filter
// baselines.

#ifndef BLOOMRF_UTIL_HASH_H_
#define BLOOMRF_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bloomrf {

/// MurmurHash3 fmix64 finalizer. Bijective mixer over uint64.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// SplitMix64 step: deterministically derives a stream of seeds.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seeded 64-bit hash of a 64-bit value.
inline uint64_t Hash64(uint64_t x, uint64_t seed) {
  return Mix64(x + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

/// 64-bit hash of arbitrary bytes (FNV-1a core + fmix64 finalizer).
uint64_t HashBytes(const void* data, size_t n, uint64_t seed);

inline uint64_t HashBytes(std::string_view s, uint64_t seed) {
  return HashBytes(s.data(), s.size(), seed);
}

/// Kirsch-Mitzenmacher double hashing: i-th probe position from two
/// base hashes. `h2 | 1` keeps the stride odd, so all positions are
/// reached when `m` is a power of two.
inline uint64_t DoubleHashProbe(uint64_t h1, uint64_t h2, uint32_t i) {
  return h1 + i * (h2 | 1);
}

/// Stride for hash-once double hashing: derives the second hash from
/// the first with a single multiply (odd constant, bijective mod 2^64)
/// so replica probes cost one Hash64 total instead of one per replica.
inline uint64_t DeriveStride(uint64_t h) {
  return (h * 0xff51afd7ed558ccdULL) | 1;
}

/// Fast alternative to `h % n` (Lemire's multiply-shift reduction).
/// Maps a full-range 64-bit hash uniformly onto [0, n).
inline uint64_t FastRange64(uint64_t hash, uint64_t n) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(hash) * n) >> 64);
}

}  // namespace bloomrf

#endif  // BLOOMRF_UTIL_HASH_H_

// Small reusable worker pool for shard-parallel fan-out.
//
// ShardedDb submits one task per shard for every MultiGet/ScanRange
// batch; spawning threads per call would dominate the batch cost, so a
// fixed set of workers drains a shared FIFO queue instead. Submitters
// get a TaskGroup to wait on, so several client threads can fan out
// over the same pool concurrently and each only blocks on its own
// tasks.
//
// Thread-safe: Submit may be called from any thread, including from a
// worker (tasks never block on other tasks here, so there is no
// deadlock through the queue). TaskGroup::Wait runs queued tasks on
// the calling thread while it waits, so a pool smaller than the fan-out
// (or a single-core host) still makes progress at full parallelism.

#ifndef BLOOMRF_UTIL_THREAD_POOL_H_
#define BLOOMRF_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bloomrf {

class ThreadPool;

/// Completion tracker for one submitter's batch of tasks. Reusable:
/// Wait() resets the group for the next round of Submit calls.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `fn` on the pool (or runs it inline when the pool has no
  /// workers) and counts it toward the next Wait().
  void Submit(std::function<void()> fn);

  /// Blocks until every task submitted since the last Wait() has
  /// finished. The calling thread steals queued tasks (its own or
  /// other groups') instead of idling.
  void Wait();

 private:
  friend class ThreadPool;
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;  // guarded by mu_
};

class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 makes every Submit run inline
  /// (useful to take the pool out of the picture in tests/benches).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Fire-and-forget task with no completion tracking.
  void Submit(std::function<void()> fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  friend class TaskGroup;
  struct Task {
    std::function<void()> fn;
    TaskGroup* group;  // null for untracked tasks
  };

  void Enqueue(Task task);
  /// Pops one task if available and runs it. Returns false when the
  /// queue was empty.
  bool RunOneTask();
  static void Finish(const Task& task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;  // guarded by mu_
  bool stop_ = false;       // guarded by mu_
  std::vector<std::thread> threads_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_UTIL_THREAD_POOL_H_

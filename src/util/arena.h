// Bump-pointer arena backing the memtable's skiplist nodes and values.
//
// Allocation is concurrent and mostly wait-free: the fast path is one
// fetch_add on the current chunk's offset; only installing a fresh
// chunk (every kChunkBytes of allocation) takes a mutex. Memory is
// owned in bulk and released all at once when the arena dies — exactly
// the lifetime of a memtable, which is sealed, flushed to an SST and
// dropped as a unit, so per-entry free() bookkeeping would be pure
// overhead.
//
// Pointers returned by AllocateAligned are stable for the arena's
// lifetime (chunks are never moved or reused), which is what lets
// skiplist nodes link to each other and publish value pointers with
// plain atomic stores.

#ifndef BLOOMRF_UTIL_ARENA_H_
#define BLOOMRF_UTIL_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace bloomrf {

class Arena {
 public:
  static constexpr size_t kChunkBytes = 256 << 10;

  Arena() { chunks_.reserve(8); }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// 8-byte-aligned allocation; never returns null (throws bad_alloc
  /// like operator new). Safe from any number of threads.
  char* AllocateAligned(size_t bytes) {
    bytes = (bytes + 7) & ~size_t{7};
    for (;;) {
      Chunk* chunk = head_.load(std::memory_order_acquire);
      if (chunk != nullptr) {
        size_t pos = chunk->used.fetch_add(bytes, std::memory_order_relaxed);
        if (pos + bytes <= chunk->capacity) return chunk->data + pos;
        // Lost the tail of this chunk (the fetch_add overshot); fall
        // through and install a successor. The overshoot only wastes
        // the chunk's final partial slot.
      }
      std::lock_guard<std::mutex> lock(grow_mu_);
      if (head_.load(std::memory_order_relaxed) == chunk) {
        size_t capacity = bytes > kChunkBytes ? bytes : kChunkBytes;
        auto fresh = std::make_unique<Chunk>(capacity);
        head_.store(fresh.get(), std::memory_order_release);
        memory_bytes_.fetch_add(capacity, std::memory_order_relaxed);
        chunks_.push_back(std::move(fresh));
      }
    }
  }

  /// Total bytes reserved from the system (not bytes handed out).
  size_t MemoryUsage() const {
    return memory_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Chunk {
    explicit Chunk(size_t cap) : data(new char[cap]), capacity(cap) {}
    ~Chunk() { delete[] data; }
    char* const data;
    const size_t capacity;
    std::atomic<size_t> used{0};
  };

  std::atomic<Chunk*> head_{nullptr};
  std::mutex grow_mu_;                 // guards chunks_ growth
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::atomic<size_t> memory_bytes_{0};
};

}  // namespace bloomrf

#endif  // BLOOMRF_UTIL_ARENA_H_

#include "util/bit_array.h"

#include <bit>
#include <cstring>

namespace bloomrf {

void BitArray::Reset(uint64_t nbits) {
  nbits_ = (nbits + 63) & ~63ULL;
  nblocks_ = nbits_ / 64;
  blocks_ = std::make_unique<std::atomic<uint64_t>[]>(nblocks_);
  for (uint64_t i = 0; i < nblocks_; ++i) {
    blocks_[i].store(0, std::memory_order_relaxed);
  }
}

bool BitArray::AnyInRange(uint64_t lo, uint64_t hi) const {
  if (lo > hi || lo >= nbits_) return false;
  if (hi >= nbits_) hi = nbits_ - 1;
  uint64_t first_block = lo >> 6;
  uint64_t last_block = hi >> 6;
  if (first_block == last_block) {
    uint64_t width = hi - lo + 1;
    uint64_t mask = (width == 64) ? ~0ULL : ((1ULL << width) - 1) << (lo & 63);
    return (LoadBlock(first_block) & mask) != 0;
  }
  uint64_t head_mask = ~0ULL << (lo & 63);
  if (LoadBlock(first_block) & head_mask) return true;
  for (uint64_t b = first_block + 1; b < last_block; ++b) {
    if (LoadBlock(b) != 0) return true;
  }
  uint64_t tail_width = (hi & 63) + 1;
  uint64_t tail_mask = (tail_width == 64) ? ~0ULL : (1ULL << tail_width) - 1;
  return (LoadBlock(last_block) & tail_mask) != 0;
}

uint64_t BitArray::CountOnes() const {
  uint64_t total = 0;
  for (uint64_t i = 0; i < nblocks_; ++i) {
    total += std::popcount(LoadBlock(i));
  }
  return total;
}

void BitArray::SerializeTo(std::string* dst) const {
  dst->reserve(dst->size() + size_bytes());
  for (uint64_t i = 0; i < nblocks_; ++i) {
    uint64_t block = LoadBlock(i);
    char buf[8];
    std::memcpy(buf, &block, 8);
    dst->append(buf, 8);
  }
}

bool BitArray::DeserializeFrom(uint64_t nbits, std::string_view data) {
  uint64_t rounded = (nbits + 63) & ~63ULL;
  if (data.size() != rounded / 8) return false;
  Reset(rounded);
  for (uint64_t i = 0; i < nblocks_; ++i) {
    uint64_t block;
    std::memcpy(&block, data.data() + i * 8, 8);
    blocks_[i].store(block, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace bloomrf

// CRC-32C (Castagnoli, reflected polynomial 0x82f63b78) — the checksum
// framing every WAL record so recovery can tell a torn tail from real
// data. Software slicing-by-8 table implementation; fast enough that
// the WAL write() dominates.

#ifndef BLOOMRF_UTIL_CRC32C_H_
#define BLOOMRF_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bloomrf {

/// CRC-32C of `data[0, n)`, continuing from `crc` (pass 0 to start).
uint32_t Crc32c(const void* data, size_t n, uint32_t crc = 0);

inline uint32_t Crc32c(std::string_view s, uint32_t crc = 0) {
  return Crc32c(s.data(), s.size(), crc);
}

}  // namespace bloomrf

#endif  // BLOOMRF_UTIL_CRC32C_H_

// Little-endian fixed-width and varint coding helpers for the LSM SST
// format and filter serialization (RocksDB-style).

#ifndef BLOOMRF_UTIL_CODING_H_
#define BLOOMRF_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace bloomrf {

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

/// Reads a length-prefixed slice at offset `*pos` of `src`; advances
/// `*pos`. Returns false on truncation.
inline bool GetLengthPrefixed(std::string_view src, size_t* pos,
                              std::string_view* out) {
  if (*pos + 4 > src.size()) return false;
  uint32_t len = DecodeFixed32(src.data() + *pos);
  *pos += 4;
  if (*pos + len > src.size()) return false;
  *out = src.substr(*pos, len);
  *pos += len;
  return true;
}

/// Encodes a uint64 key as 8 big-endian bytes so that byte-wise
/// lexicographic order equals numeric order (used as the LSM key format
/// and as SuRF input).
inline std::string EncodeKeyBigEndian(uint64_t key) {
  std::string s(8, '\0');
  for (int i = 7; i >= 0; --i) {
    s[i] = static_cast<char>(key & 0xff);
    key >>= 8;
  }
  return s;
}

inline uint64_t DecodeKeyBigEndian(std::string_view s) {
  uint64_t key = 0;
  for (size_t i = 0; i < 8 && i < s.size(); ++i) {
    key = (key << 8) | static_cast<uint8_t>(s[i]);
  }
  if (s.size() < 8) key <<= 8 * (8 - s.size());
  return key;
}

}  // namespace bloomrf

#endif  // BLOOMRF_UTIL_CODING_H_

#include "util/hash.h"

#include <cstring>

namespace bloomrf {

uint64_t HashBytes(const void* data, size_t n, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL ^ Mix64(seed + n);
  // Consume 8-byte chunks.
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    h = Mix64(h ^ chunk);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h = Mix64(h ^ tail ^ (static_cast<uint64_t>(n) << 56));
  }
  return Mix64(h);
}

}  // namespace bloomrf

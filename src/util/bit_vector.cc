#include "util/bit_vector.h"

#include <bit>
#include <cassert>
#include <cstring>

#include "util/coding.h"

namespace bloomrf {

void BitVector::PushBack(bool bit) {
  assert(!built_);
  if ((nbits_ & 63) == 0) words_.push_back(0);
  if (bit) words_.back() |= 1ULL << (nbits_ & 63);
  ++nbits_;
}

void BitVector::AppendBits(uint64_t bits, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) PushBack((bits >> i) & 1ULL);
}

void BitVector::SetBit(uint64_t pos) {
  assert(!built_);
  if (pos >= nbits_) {
    nbits_ = pos + 1;
    words_.resize((nbits_ + 63) / 64, 0);
  }
  words_[pos >> 6] |= 1ULL << (pos & 63);
}

void BitVector::EnsureSize(uint64_t nbits) {
  assert(!built_);
  if (nbits > nbits_) {
    nbits_ = nbits;
    words_.resize((nbits_ + 63) / 64, 0);
  }
}

void BitVector::Build() {
  built_ = true;
  words_.resize((nbits_ + 63) / 64, 0);
  // Clear any slack bits beyond nbits_ so popcounts are exact.
  if (nbits_ & 63) {
    words_.back() &= (1ULL << (nbits_ & 63)) - 1;
  }
  uint64_t nsuper = (nbits_ + kSuperBits - 1) / kSuperBits + 1;
  super_rank_.assign(nsuper, 0);
  total_ones_ = 0;
  select_hints_.clear();
  for (uint64_t w = 0; w < words_.size(); ++w) {
    if ((w % (kSuperBits / 64)) == 0) {
      super_rank_[w / (kSuperBits / 64)] = total_ones_;
    }
    uint64_t word = words_[w];
    while (word) {
      if (total_ones_ % kSelectSample == 0) {
        select_hints_.push_back(w * 64 + std::countr_zero(word));
      }
      word &= word - 1;
      ++total_ones_;
    }
  }
  super_rank_.back() = total_ones_;
}

uint64_t BitVector::Rank1(uint64_t pos) const {
  if (pos > nbits_) pos = nbits_;
  uint64_t super = pos / kSuperBits;
  uint64_t rank = super_rank_[super];
  uint64_t w = super * (kSuperBits / 64);
  uint64_t end_word = pos >> 6;
  for (; w < end_word; ++w) rank += std::popcount(words_[w]);
  if (pos & 63) {
    rank += std::popcount(words_[end_word] & ((1ULL << (pos & 63)) - 1));
  }
  return rank;
}

uint64_t BitVector::Select1(uint64_t i) const {
  assert(i < total_ones_);
  uint64_t pos = select_hints_[i / kSelectSample];
  uint64_t rank = (i / kSelectSample) * kSelectSample;
  // Walk words from the hint.
  uint64_t w = pos >> 6;
  uint64_t word = words_[w] & (~0ULL << (pos & 63));
  while (true) {
    uint64_t pc = std::popcount(word);
    if (rank + pc > i) break;
    rank += pc;
    word = words_[++w];
  }
  // i - rank zero-indexed 1-bit within `word`.
  uint64_t remaining = i - rank;
  while (remaining--) word &= word - 1;
  return w * 64 + std::countr_zero(word);
}

uint64_t BitVector::NextOne(uint64_t pos) const {
  if (pos >= nbits_) return nbits_;
  uint64_t w = pos >> 6;
  uint64_t word = words_[w] & (~0ULL << (pos & 63));
  while (word == 0) {
    if (++w >= words_.size()) return nbits_;
    word = words_[w];
  }
  uint64_t result = w * 64 + std::countr_zero(word);
  return result < nbits_ ? result : nbits_;
}

uint64_t BitVector::PrevOne(uint64_t pos) const {
  if (nbits_ == 0) return UINT64_MAX;
  if (pos >= nbits_) pos = nbits_ - 1;
  uint64_t w = pos >> 6;
  uint64_t mask = ((pos & 63) == 63) ? ~0ULL : ((1ULL << ((pos & 63) + 1)) - 1);
  uint64_t word = words_[w] & mask;
  while (word == 0) {
    if (w == 0) return UINT64_MAX;
    word = words_[--w];
  }
  return w * 64 + 63 - std::countl_zero(word);
}

uint64_t BitVector::SizeBits() const {
  return words_.size() * 64 + super_rank_.size() * 64 +
         select_hints_.size() * 64;
}

void BitVector::SerializeTo(std::string* dst) const {
  assert(built_);
  PutFixed64(dst, nbits_);
  for (uint64_t word : words_) PutFixed64(dst, word);
}

bool BitVector::DeserializeFrom(std::string_view src, size_t* pos) {
  if (*pos + 8 > src.size()) return false;
  uint64_t nbits = DecodeFixed64(src.data() + *pos);
  *pos += 8;
  uint64_t nwords = (nbits + 63) / 64;
  if (*pos + nwords * 8 > src.size()) return false;
  built_ = false;
  nbits_ = nbits;
  words_.resize(nwords);
  for (uint64_t w = 0; w < nwords; ++w) {
    words_[w] = DecodeFixed64(src.data() + *pos);
    *pos += 8;
  }
  Build();
  return true;
}

}  // namespace bloomrf

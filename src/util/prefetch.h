// Portable cache-prefetch hint used by the planned-probe engine.
//
// The batch probe paths (BloomRF::MayContainBatch and the per-backend
// overrides) are two-pass: a planning pass computes every memory
// coordinate a probe will touch and issues PrefetchRead for the
// containing cache line, then a probe pass executes the actual word
// tests. By the time the second pass runs, the lines of ~a stripe of
// keys are in flight, so the dependent loads that dominate the scalar
// path overlap instead of serializing.

#ifndef BLOOMRF_UTIL_PREFETCH_H_
#define BLOOMRF_UTIL_PREFETCH_H_

namespace bloomrf {

/// Hints the CPU to pull the cache line holding `addr` into a
/// read-shared level. A no-op on compilers without the builtin; probes
/// stay correct either way.
inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

}  // namespace bloomrf

#endif  // BLOOMRF_UTIL_PREFETCH_H_

// Runtime-dispatched SIMD word-test kernels for the planned probe
// engine.
//
// The batch probe paths are memory-planned (hash -> prefetch -> probe,
// see util/prefetch.h); this header vectorizes the probe pass itself:
// the fundamental operation of every Bloom-style filter in the library
// is "load a 64-bit block and test it against a mask", and the kernels
// below run 4 or 8 of those tests per call across independent keys.
//
// Dispatch is decided once per process, at the first kernel call:
//   - x86-64 with AVX2: 4-lane 64-bit gather + vectorized mask test
//   - AArch64:          NEON 2x64-bit lanes (no gather; vector test)
//   - anything else:    portable scalar loop
// The environment variable BLOOMRF_FORCE_SCALAR=1 forces the scalar
// kernels regardless of ISA; tests flip levels at runtime with
// SetSimdLevelForTesting to assert that every dispatch level produces
// bit-identical answers.
//
// All kernels are pure functions of the gathered memory words: a batch
// probe built on them answers exactly like the scalar loop it
// replaces, for every dispatch level.

#ifndef BLOOMRF_UTIL_SIMD_H_
#define BLOOMRF_UTIL_SIMD_H_

#include <cstdint>

namespace bloomrf {

enum class SimdLevel : uint8_t { kScalar = 0, kNeon = 1, kAvx2 = 2 };

/// ISA the kernels dispatch to (cached after the first call; honors
/// BLOOMRF_FORCE_SCALAR=1 and any test override).
SimdLevel ActiveSimdLevel();

/// What the hardware supports, ignoring environment and overrides.
SimdLevel DetectSimdLevel();

/// "avx2" | "neon" | "scalar" — the `simd` field of bench JSON output.
const char* SimdLevelName(SimdLevel level);

/// Test hooks: force a dispatch level process-wide / return to the
/// detected one. Not thread-safe against concurrent kernel calls; for
/// single-threaded test use only. Forcing a level the hardware lacks
/// (e.g. kAvx2 on ARM) silently falls back to scalar.
void SetSimdLevelForTesting(SimdLevel level);
void ClearSimdLevelForTesting();

/// 4-lane gather-test: returns a bitmask whose bit i (i in [0, 4)) is
/// set iff (base[idx[i]] & mask[i]) != 0. Lanes with mask == 0 always
/// report 0, so callers can pad partial groups with {idx = 0, mask = 0}
/// (idx must still be in bounds — 0 always is for non-empty arrays).
uint32_t GatherTestNonzero4(const uint64_t* base, const uint64_t* idx,
                            const uint64_t* mask);

/// 8-lane variant of GatherTestNonzero4 (bits 0..7).
uint32_t GatherTestNonzero8(const uint64_t* base, const uint64_t* idx,
                            const uint64_t* mask);

/// SWAR 16-bit lane equality: true iff any of the four 16-bit lanes of
/// `lanes` equals `v`. ISA-independent (SIMD-within-a-register); the
/// cuckoo batch kernel tests a whole 4-slot bucket per call. `v` must
/// be nonzero when 0 marks empty slots the caller wants excluded —
/// callers relying on that property pass validated fingerprints.
inline bool AnyLaneEq16(uint64_t lanes, uint16_t v) {
  constexpr uint64_t kLow = 0x0001000100010001ULL;
  constexpr uint64_t kHigh = 0x8000800080008000ULL;
  uint64_t x = lanes ^ (kLow * v);  // lane == v  <=>  lane of x == 0
  return ((x - kLow) & ~x & kHigh) != 0;
}

}  // namespace bloomrf

#endif  // BLOOMRF_UTIL_SIMD_H_

#include "util/thread_pool.h"

namespace bloomrf {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Tasks still queued at shutdown run on the destructing thread so
  // every TaskGroup::Wait() can complete.
  while (RunOneTask()) {
  }
}

void ThreadPool::Enqueue(Task task) {
  if (threads_.empty()) {
    task.fn();
    Finish(task);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::Submit(std::function<void()> fn) {
  Enqueue(Task{std::move(fn), nullptr});
}

bool ThreadPool::RunOneTask() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task.fn();
  Finish(task);
  return true;
}

void ThreadPool::Finish(const Task& task) {
  if (task.group == nullptr) return;
  TaskGroup* group = task.group;
  // Notify while holding mu_: the waiter cannot leave Wait() (and
  // destroy the group, cv included) until this thread has left
  // notify_all and released the lock.
  std::lock_guard<std::mutex> lock(group->mu_);
  --group->pending_;
  if (group->pending_ == 0) group->cv_.notify_all();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.fn();
    Finish(task);
  }
}

void TaskGroup::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Enqueue(ThreadPool::Task{std::move(fn), this});
}

void TaskGroup::Wait() {
  // Help drain the pool queue first: on hosts with fewer cores than
  // the fan-out (or when other groups saturate the workers) the waiter
  // contributes a lane instead of blocking.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_ == 0) return;
    }
    if (!pool_->RunOneTask()) break;  // queue empty: tasks in flight
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace bloomrf

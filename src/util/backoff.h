// Exponential backoff schedule for retrying failed background I/O
// (compaction, flush) without hot-looping against a broken disk.

#ifndef BLOOMRF_UTIL_BACKOFF_H_
#define BLOOMRF_UTIL_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace bloomrf {

class Backoff {
 public:
  explicit Backoff(std::chrono::milliseconds initial =
                       std::chrono::milliseconds(10),
                   std::chrono::milliseconds max =
                       std::chrono::milliseconds(2000))
      : initial_(initial), max_(max), next_(initial) {}

  /// The delay to sleep before the next retry; doubles per call up to
  /// the cap.
  std::chrono::milliseconds Next() {
    auto delay = next_;
    next_ = std::min(max_, next_ * 2);
    return delay;
  }

  void Reset() { next_ = initial_; }

  uint64_t failures() const { return failures_; }
  void RecordFailure() { ++failures_; }

 private:
  const std::chrono::milliseconds initial_;
  const std::chrono::milliseconds max_;
  std::chrono::milliseconds next_;
  uint64_t failures_ = 0;
};

}  // namespace bloomrf

#endif  // BLOOMRF_UTIL_BACKOFF_H_

// FilterRegistry: one name-keyed catalogue of every point/range filter
// backend, replacing the per-backend wiring the LSM policy layer and
// the benchmark harness used to duplicate.
//
// Each backend registers three factories:
//   - BuildFromSortedKeys: offline construction over an SST's sorted
//     unique keys (every backend),
//   - BuildOnline: incremental construction for streaming workloads
//     (null for offline-only structures such as SuRF, fence pointers),
//   - Deserialize: payload -> filter (the inverse of
//     PointRangeFilter::Serialize).
//
// Serialized blocks use a common length-prefixed framing
//   magic | len(name) | name | payload
// so any block round-trips through the registry regardless of which
// component stored it. Registration is either explicit
// (FilterRegistry::Instance().Register(...)) or via the
// BLOOMRF_REGISTER_FILTER macro at namespace scope.

#ifndef BLOOMRF_FILTERS_REGISTRY_H_
#define BLOOMRF_FILTERS_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "filters/filter.h"

namespace bloomrf {

/// Union of the per-backend construction knobs. Backends read the
/// fields they understand and ignore the rest; `expected_keys` is
/// filled from the key count on BuildFromSortedKeys.
struct FilterBuildParams {
  uint64_t expected_keys = 0;      ///< n, for sizing BuildOnline calls
                                   ///< (BuildFromSortedKeys sizes from
                                   ///< the key count itself)
  double bits_per_key = 16.0;      ///< space budget (most backends)
  double max_range = 1 << 16;      ///< R: largest supported query range
  uint32_t prefix_level = 16;      ///< prefix_bloom: bits dropped per key
  uint32_t suffix_type = 2;        ///< surf: 0 none, 1 hash, 2 real
  uint32_t suffix_bits = 8;        ///< surf suffix length
  uint32_t fingerprint_bits = 12;  ///< cuckoo fingerprint width
  uint64_t seed = 0;               ///< 0 = backend default seed
};

class FilterRegistry {
 public:
  using BuildFromSortedKeysFn = std::function<std::unique_ptr<PointRangeFilter>(
      const std::vector<uint64_t>& sorted_keys, const FilterBuildParams&)>;
  using BuildOnlineFn =
      std::function<std::unique_ptr<OnlineFilter>(const FilterBuildParams&)>;
  using DeserializeFn =
      std::function<std::unique_ptr<PointRangeFilter>(std::string_view payload)>;

  struct Entry {
    std::string name;          ///< registry key, e.g. "prefix_bloom"
    std::string display_name;  ///< canonical name, e.g. "PrefixBloom"
    bool supports_ranges = false;  ///< range probes can exclude intervals
    bool online = false;           ///< build_online available
    BuildFromSortedKeysFn build_from_sorted_keys;
    BuildOnlineFn build_online;  ///< null for offline-only backends
    DeserializeFn deserialize;
  };

  /// Global registry, pre-populated with the built-in backends.
  static FilterRegistry& Instance();

  /// Adds a backend. Returns false (and changes nothing) if the name or
  /// display name is already taken or the entry is incomplete.
  bool Register(Entry entry);

  /// Looks up a backend by registry key or display name; null if absent.
  const Entry* Find(std::string_view name) const;

  /// Sorted registry keys of all backends.
  std::vector<std::string> Names() const;

  /// Frames a payload as `magic | len(name) | name | payload`.
  static std::string Frame(std::string_view name, std::string_view payload);

  /// Splits a framed block; false on malformed framing.
  static bool ParseFrame(std::string_view framed, std::string_view* name,
                         std::string_view* payload);

  /// Serializes `filter` with framing, resolving the registry name via
  /// filter.Name(). Returns "" if the filter is not registered.
  std::string Serialize(const PointRangeFilter& filter) const;

  /// Reconstructs a filter from a framed block; null on unknown name or
  /// corrupt payload.
  std::unique_ptr<PointRangeFilter> Deserialize(std::string_view framed) const;

 private:
  FilterRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;         // key: name
  std::map<std::string, std::string, std::less<>> by_display_;  // display->name
};

/// Registers the built-in backends into `registry` (defined in
/// builtin_filters.cc). Called once by FilterRegistry::Instance()
/// while constructing the singleton, so built-ins are present — with
/// deterministic precedence — before any external registration runs.
void RegisterBuiltinFilters(FilterRegistry& registry);

/// Registers an external backend at static-initialization time:
///   BLOOMRF_REGISTER_FILTER(my_filter, MakeMyFilterEntry());
/// Collisions with existing names are rejected (and logged), never
/// silently replaced.
///
/// Linker caveat: a static initializer only runs if its object file is
/// linked into the binary. An otherwise-unreferenced TU inside a
/// static archive is dead-stripped and the registration silently never
/// happens — put the macro in a TU the binary already references (or
/// force-link it). In-tree backends avoid this entirely by registering
/// through RegisterBuiltinFilters in builtin_filters.cc.
#define BLOOMRF_REGISTER_FILTER(ident, ...)                        \
  namespace {                                                      \
  const bool bloomrf_filter_registered_##ident =                   \
      ::bloomrf::FilterRegistry::Instance().Register(__VA_ARGS__); \
  }

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_REGISTRY_H_

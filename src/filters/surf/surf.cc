#include "filters/surf/surf.h"

#include <algorithm>

#include "util/coding.h"

namespace bloomrf {

namespace {

/// Three-way comparison of a truncated stored prefix against a query
/// bound: -1 definitely smaller, +1 definitely larger, 0 cannot be
/// excluded (equal so far and the stored key may extend arbitrarily).
int ComparePrefix(const std::string& prefix, const std::string& bound) {
  size_t n = std::min(prefix.size(), bound.size());
  for (size_t i = 0; i < n; ++i) {
    uint8_t a = static_cast<uint8_t>(prefix[i]);
    uint8_t b = static_cast<uint8_t>(bound[i]);
    if (a < b) return -1;
    if (a > b) return 1;
  }
  if (prefix.size() > bound.size()) return 1;  // bound is a proper prefix
  return 0;
}

}  // namespace

Surf Surf::BuildFromU64(const std::vector<uint64_t>& sorted_keys,
                        const Options& options) {
  std::vector<std::string> byte_keys;
  byte_keys.reserve(sorted_keys.size());
  for (uint64_t k : sorted_keys) byte_keys.push_back(EncodeKeyBigEndian(k));
  // Fixed-width keys are already prefix-free: no terminator needed.
  Surf surf = BuildCore(byte_keys, options);
  surf.string_mode_ = false;
  return surf;
}

Surf Surf::BuildFromStrings(const std::vector<std::string>& sorted_keys,
                            const Options& options) {
  // Terminated copies make any unique sorted set prefix-free while
  // preserving order; queries append the same terminator.
  std::vector<std::string> keys;
  keys.reserve(sorted_keys.size());
  for (const std::string& s : sorted_keys) keys.push_back(s + '\0');
  Surf surf = BuildCore(keys, options);
  surf.string_mode_ = true;
  return surf;
}

Surf Surf::BuildCore(const std::vector<std::string>& keys,
                     const Options& options) {
  Surf surf;
  surf.options_ = options;

  SurfBuilder builder(options.suffix_type, options.suffix_bits);
  bool ok = builder.Build(keys);
  (void)ok;
  surf.num_keys_ = builder.num_keys();
  const auto& levels = builder.levels();
  surf.height_ = static_cast<uint32_t>(levels.size());

  // Dense cutoff: include top levels while their cumulative dense cost
  // stays below (total sparse cost) / ratio.
  uint64_t total_sparse_bits = 0;
  for (const auto& level : levels) total_sparse_bits += level.labels.size() * 10;
  uint64_t dense_budget =
      total_sparse_bits / std::max<uint32_t>(1, options.dense_size_ratio);
  uint64_t dense_cost = 0;
  uint32_t cutoff = 0;
  for (const auto& level : levels) {
    dense_cost += level.num_nodes * 512;
    if (dense_cost > dense_budget) break;
    ++cutoff;
  }
  surf.dense_levels_ = cutoff;

  for (uint32_t l = 0; l < surf.height_; ++l) {
    if (l < cutoff) {
      surf.dense_.emplace_back();
      surf.dense_.back().Encode(levels[l]);
    } else {
      surf.sparse_.emplace_back();
      surf.sparse_.back().Encode(levels[l]);
    }
    surf.suffixes_.push_back(levels[l].suffixes);
  }
  return surf;
}

bool Surf::EdgeHasChild(uint32_t level, uint64_t pos) const {
  if (LevelIsDense(level)) {
    return dense_[level].EdgeHasChild(pos / 256, static_cast<uint8_t>(pos % 256));
  }
  return sparse_[level - dense_levels_].EdgeHasChild(pos);
}

uint64_t Surf::ChildOrdinal(uint32_t level, uint64_t pos) const {
  if (LevelIsDense(level)) {
    return dense_[level].ChildOrdinal(pos / 256, static_cast<uint8_t>(pos % 256));
  }
  return sparse_[level - dense_levels_].ChildOrdinal(pos);
}

uint8_t Surf::EdgeLabel(uint32_t level, uint64_t pos) const {
  if (LevelIsDense(level)) return static_cast<uint8_t>(pos % 256);
  return sparse_[level - dense_levels_].Label(pos);
}

uint64_t Surf::SuffixValue(uint32_t level, uint64_t pos) const {
  uint64_t ordinal;
  if (LevelIsDense(level)) {
    ordinal =
        dense_[level].SuffixOrdinal(pos / 256, static_cast<uint8_t>(pos % 256));
  } else {
    ordinal = sparse_[level - dense_levels_].SuffixOrdinal(pos);
  }
  return suffixes_[level][ordinal];
}

bool Surf::FindEdgeGE(uint32_t level, uint64_t node, uint32_t c,
                      uint64_t* pos) const {
  if (LevelIsDense(level)) {
    int label = dense_[level].FindLabelGE(node, c);
    if (label < 0) return false;
    *pos = node * 256 + static_cast<uint64_t>(label);
    return true;
  }
  int64_t p = sparse_[level - dense_levels_].FindLabelGE(node, c);
  if (p < 0) return false;
  *pos = static_cast<uint64_t>(p);
  return true;
}

bool Surf::NextEdgeInNode(uint32_t level, uint64_t node, uint64_t pos,
                          uint64_t* next) const {
  if (LevelIsDense(level)) {
    uint32_t label = static_cast<uint32_t>(pos % 256);
    if (label == 255) return false;
    return FindEdgeGE(level, node, label + 1, next);
  }
  const LoudsSparseLevel& lvl = sparse_[level - dense_levels_];
  if (pos + 1 >= lvl.NodeEnd(node)) return false;
  *next = pos + 1;
  return true;
}

bool Surf::LookupBytes(const std::string& key) const {
  if (num_keys_ == 0) return false;
  uint64_t node = 0;
  for (uint32_t level = 0; level < height_; ++level) {
    if (level >= key.size()) return false;  // key shorter than any match
    uint8_t c = static_cast<uint8_t>(key[level]);
    uint64_t pos;
    if (!FindEdgeGE(level, node, c, &pos) || EdgeLabel(level, pos) != c) {
      return false;
    }
    if (EdgeHasChild(level, pos)) {
      node = ChildOrdinal(level, pos);
      continue;
    }
    // Terminal edge: the stored key agrees with `key` on the first
    // level+1 bytes; the suffix decides.
    switch (options_.suffix_type) {
      case SurfSuffixType::kNone:
        return true;
      case SurfSuffixType::kHash: {
        SurfBuilder builder(options_.suffix_type, options_.suffix_bits);
        return SuffixValue(level, pos) == builder.SuffixOf(key, level);
      }
      case SurfSuffixType::kReal:
        return SuffixValue(level, pos) ==
               SurfBuilder::RealBits(key, level + 1, options_.suffix_bits);
    }
  }
  return false;
}

Surf::SeekResult Surf::DescendLeftmostFromEdge(uint32_t level, uint64_t pos,
                                               std::string prefix) const {
  while (true) {
    prefix.push_back(static_cast<char>(EdgeLabel(level, pos)));
    if (!EdgeHasChild(level, pos)) {
      return {true, std::move(prefix), SuffixValue(level, pos)};
    }
    uint64_t node = ChildOrdinal(level, pos);
    ++level;
    uint64_t first;
    if (!FindEdgeGE(level, node, 0, &first)) {
      return {true, std::move(prefix), 0};  // defensive: malformed trie
    }
    pos = first;
  }
}

Surf::SeekResult Surf::DescendLeftmost(uint32_t level, uint64_t node,
                                       std::string prefix) const {
  uint64_t pos;
  if (!FindEdgeGE(level, node, 0, &pos)) return {};
  return DescendLeftmostFromEdge(level, pos, std::move(prefix));
}

Surf::SeekResult Surf::AdvanceAndDescend(std::vector<Frame>& frames,
                                         uint32_t level, uint64_t node,
                                         uint64_t pos,
                                         std::string prefix) const {
  uint64_t next;
  // pos == UINT64_MAX marks "no edge taken at this level": skip
  // straight to backtracking.
  if (pos != UINT64_MAX && NextEdgeInNode(level, node, pos, &next)) {
    return DescendLeftmostFromEdge(level, next, std::move(prefix));
  }
  while (!frames.empty()) {
    Frame frame = frames.back();
    frames.pop_back();
    --level;
    prefix.pop_back();
    if (NextEdgeInNode(level, frame.node, frame.pos, &next)) {
      return DescendLeftmostFromEdge(level, next, std::move(prefix));
    }
  }
  return {};
}

Surf::SeekResult Surf::SeekGE(const std::string& key) const {
  if (num_keys_ == 0) return {};
  std::vector<Frame> frames;
  std::string prefix;
  uint64_t node = 0;
  for (uint32_t level = 0; level < height_; ++level) {
    if (level >= key.size()) {
      // Query exhausted: every key in this subtree extends the shared
      // prefix and is therefore greater.
      return DescendLeftmost(level, node, std::move(prefix));
    }
    uint8_t c = static_cast<uint8_t>(key[level]);
    uint64_t pos;
    if (!FindEdgeGE(level, node, c, &pos)) {
      // Backtrack to the nearest ancestor with a following sibling.
      std::string p = prefix;
      return AdvanceAndDescend(frames, level, node,
                               /*pos=*/UINT64_MAX, std::move(p));
    }
    if (EdgeLabel(level, pos) != c) {
      return DescendLeftmostFromEdge(level, pos, std::move(prefix));
    }
    if (EdgeHasChild(level, pos)) {
      frames.push_back({node, pos});
      prefix.push_back(static_cast<char>(c));
      node = ChildOrdinal(level, pos);
      continue;
    }
    // Terminal matching the query prefix: the stored key agrees on
    // level+1 bytes and is truncated here — it may be >= or < key.
    uint64_t suffix = SuffixValue(level, pos);
    if (options_.suffix_type == SurfSuffixType::kReal) {
      uint64_t qbits =
          SurfBuilder::RealBits(key, level + 1, options_.suffix_bits);
      if (suffix < qbits) {
        // Real suffix proves the stored key smaller: advance.
        prefix.push_back(static_cast<char>(c));
        std::string p = prefix;
        p.pop_back();
        return AdvanceAndDescend(frames, level, node, pos, std::move(p));
      }
    }
    prefix.push_back(static_cast<char>(c));
    return {true, std::move(prefix), suffix};
  }
  return {};
}

bool Surf::RangeBytes(const std::string& lo, const std::string& hi) const {
  SeekResult successor = SeekGE(lo);
  if (!successor.found) return false;
  int cmp = ComparePrefix(successor.prefix, hi);
  if (cmp < 0) return true;
  if (cmp > 0) return false;
  // Equal over the common prefix; real suffix bits can still exclude.
  if (options_.suffix_type == SurfSuffixType::kReal &&
      successor.prefix.size() < hi.size()) {
    uint64_t hbits = SurfBuilder::RealBits(
        hi, static_cast<uint32_t>(successor.prefix.size()),
        options_.suffix_bits);
    if (successor.suffix > hbits) return false;
  }
  return true;
}

bool Surf::MayContain(uint64_t key) const {
  return LookupBytes(EncodeKeyBigEndian(key));
}

bool Surf::MayContainRange(uint64_t lo, uint64_t hi) const {
  if (lo > hi) return false;
  return RangeBytes(EncodeKeyBigEndian(lo), EncodeKeyBigEndian(hi));
}

bool Surf::MayContainString(std::string_view key) const {
  std::string k(key);
  if (string_mode_) k.push_back('\0');
  return LookupBytes(k);
}

bool Surf::MayContainStringRange(std::string_view lo,
                                 std::string_view hi) const {
  std::string l(lo), h(hi);
  if (string_mode_) {
    l.push_back('\0');
    h.push_back('\0');
  }
  if (l > h) return false;
  return RangeBytes(l, h);
}

std::string Surf::Serialize() const {
  std::string out;
  PutFixed32(&out, 0x50f5u);  // format tag
  out.push_back(static_cast<char>(options_.suffix_type));
  out.push_back(static_cast<char>(options_.suffix_bits));
  out.push_back(string_mode_ ? 1 : 0);
  PutFixed32(&out, height_);
  PutFixed32(&out, dense_levels_);
  PutFixed64(&out, num_keys_);
  for (const auto& level : dense_) level.SerializeTo(&out);
  for (const auto& level : sparse_) level.SerializeTo(&out);
  for (const auto& suffixes : suffixes_) {
    PutFixed64(&out, suffixes.size());
    for (uint64_t s : suffixes) PutFixed64(&out, s);
  }
  return out;
}

std::optional<Surf> Surf::Deserialize(std::string_view data) {
  size_t pos = 0;
  if (data.size() < 23 || DecodeFixed32(data.data()) != 0x50f5u) {
    return std::nullopt;
  }
  Surf surf;
  pos = 4;
  surf.options_.suffix_type =
      static_cast<SurfSuffixType>(static_cast<uint8_t>(data[pos++]));
  surf.options_.suffix_bits = static_cast<uint8_t>(data[pos++]);
  surf.string_mode_ = data[pos++] != 0;
  surf.height_ = DecodeFixed32(data.data() + pos);
  pos += 4;
  surf.dense_levels_ = DecodeFixed32(data.data() + pos);
  pos += 4;
  surf.num_keys_ = DecodeFixed64(data.data() + pos);
  pos += 8;
  if (surf.height_ > 4096 || surf.dense_levels_ > surf.height_) {
    return std::nullopt;
  }
  for (uint32_t l = 0; l < surf.dense_levels_; ++l) {
    surf.dense_.emplace_back();
    if (!surf.dense_.back().DeserializeFrom(data, &pos)) return std::nullopt;
  }
  for (uint32_t l = surf.dense_levels_; l < surf.height_; ++l) {
    surf.sparse_.emplace_back();
    if (!surf.sparse_.back().DeserializeFrom(data, &pos)) return std::nullopt;
  }
  for (uint32_t l = 0; l < surf.height_; ++l) {
    if (pos + 8 > data.size()) return std::nullopt;
    uint64_t count = DecodeFixed64(data.data() + pos);
    pos += 8;
    if (pos + count * 8 > data.size()) return std::nullopt;
    std::vector<uint64_t> suffixes;
    suffixes.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      suffixes.push_back(DecodeFixed64(data.data() + pos));
      pos += 8;
    }
    surf.suffixes_.push_back(std::move(suffixes));
  }
  return surf;
}

uint64_t Surf::MemoryBits() const {
  uint64_t total = 0;
  for (const auto& level : dense_) total += level.LogicalBits();
  for (const auto& level : sparse_) total += level.LogicalBits();
  if (options_.suffix_type != SurfSuffixType::kNone) {
    total += num_keys_ * options_.suffix_bits;
  }
  return total;
}

}  // namespace bloomrf

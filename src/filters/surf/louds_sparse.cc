#include "filters/surf/louds_sparse.h"

#include "util/coding.h"

namespace bloomrf {

void LoudsSparseLevel::Encode(const SurfBuilderLevel& level) {
  labels_ = level.labels;
  for (size_t i = 0; i < level.labels.size(); ++i) {
    if (level.has_child[i]) has_child_.SetBit(i);
    if (level.louds[i]) louds_.SetBit(i);
  }
  has_child_.EnsureSize(labels_.size());
  louds_.EnsureSize(labels_.size());
  has_child_.Build();
  louds_.Build();
}

void LoudsSparseLevel::SerializeTo(std::string* dst) const {
  PutFixed64(dst, labels_.size());
  dst->append(reinterpret_cast<const char*>(labels_.data()), labels_.size());
  has_child_.SerializeTo(dst);
  louds_.SerializeTo(dst);
}

bool LoudsSparseLevel::DeserializeFrom(std::string_view src, size_t* pos) {
  if (*pos + 8 > src.size()) return false;
  uint64_t count = DecodeFixed64(src.data() + *pos);
  *pos += 8;
  if (*pos + count > src.size()) return false;
  labels_.assign(src.begin() + *pos, src.begin() + *pos + count);
  *pos += count;
  return has_child_.DeserializeFrom(src, pos) &&
         louds_.DeserializeFrom(src, pos);
}

}  // namespace bloomrf

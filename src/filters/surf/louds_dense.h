// LOUDS-Dense level encoding for SuRF (paper [49]).
//
// Each node of a dense level occupies two 256-bit bitmaps: `labels`
// (which byte-labels exist) and `has_child` (which of those continue
// below). Edge position = node*256 + label. Child ordinals and suffix
// ordinals are rank queries over the bitmaps. Dense levels trade space
// for O(1) label lookup and are used for the top of the trie.

#ifndef BLOOMRF_FILTERS_SURF_LOUDS_DENSE_H_
#define BLOOMRF_FILTERS_SURF_LOUDS_DENSE_H_

#include <cstdint>

#include "filters/surf/surf_builder.h"
#include "util/bit_vector.h"

namespace bloomrf {

class LoudsDenseLevel {
 public:
  LoudsDenseLevel() = default;

  /// Encodes one builder level.
  void Encode(const SurfBuilderLevel& level);

  uint64_t num_nodes() const { return num_nodes_; }

  static constexpr uint64_t kFanout = 256;

  bool EdgeExists(uint64_t node, uint8_t label) const {
    return labels_.Get(node * kFanout + label);
  }
  bool EdgeHasChild(uint64_t node, uint8_t label) const {
    return has_child_.Get(node * kFanout + label);
  }

  /// Ordinal of the edge's child among all child edges of the level
  /// (== node ordinal on the next level).
  uint64_t ChildOrdinal(uint64_t node, uint8_t label) const {
    return has_child_.Rank1(node * kFanout + label);
  }

  /// Ordinal of the edge's suffix among all terminal edges of the level.
  uint64_t SuffixOrdinal(uint64_t node, uint8_t label) const {
    uint64_t pos = node * kFanout + label;
    return labels_.Rank1(pos) - has_child_.Rank1(pos);
  }

  /// Smallest existing label >= `label` in `node`, or -1.
  int FindLabelGE(uint64_t node, uint32_t label) const {
    if (label >= kFanout) return -1;
    uint64_t pos = labels_.NextOne(node * kFanout + label);
    if (pos >= (node + 1) * kFanout || pos >= labels_.size()) return -1;
    return static_cast<int>(pos - node * kFanout);
  }

  uint64_t SizeBits() const {
    return labels_.SizeBits() + has_child_.SizeBits();
  }

  /// Logical size per the paper's accounting: 2*256 bits per node.
  uint64_t LogicalBits() const { return num_nodes_ * 2 * kFanout; }

  void SerializeTo(std::string* dst) const;
  bool DeserializeFrom(std::string_view src, size_t* pos);

 private:
  BitVector labels_;
  BitVector has_child_;
  uint64_t num_nodes_ = 0;
};

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_SURF_LOUDS_DENSE_H_

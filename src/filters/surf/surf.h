// SuRF: practical range-query filtering with fast succinct tries
// (Zhang et al., SIGMOD'18; paper [49]) — the trie-based point-range
// filter baseline of the bloomRF evaluation.
//
// The filter is an *offline* structure (paper Problem 2): it is built
// once from the sorted key set. Keys are truncated at their
// distinguishing byte; the top levels of the trie are encoded
// LOUDS-Dense, the rest LOUDS-Sparse. Optional per-key suffixes control
// the point-FPR / space trade-off:
//   SuRF-Base (kNone)  — no suffix,
//   SuRF-Hash (kHash)  — h hashed key bits: point queries improve,
//   SuRF-Real (kReal)  — r real key bits: both point and range improve.
//
// Range queries position an iterator at the smallest stored key >= lo
// and compare its (truncated) reconstruction against hi; all
// approximation errors are one-sided (no false negatives).

#ifndef BLOOMRF_FILTERS_SURF_SURF_H_
#define BLOOMRF_FILTERS_SURF_SURF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "filters/filter.h"
#include "filters/surf/louds_dense.h"
#include "filters/surf/louds_sparse.h"
#include "filters/surf/surf_builder.h"

namespace bloomrf {

class Surf : public Filter {
 public:
  struct Options {
    SurfSuffixType suffix_type = SurfSuffixType::kHash;
    uint32_t suffix_bits = 8;
    /// Levels are LOUDS-Dense while their cumulative dense size stays
    /// below total-sparse-size / dense_size_ratio (SuRF's size-ratio
    /// heuristic).
    uint32_t dense_size_ratio = 16;
  };

  /// Builds from sorted unique uint64 keys (big-endian byte mapping).
  static Surf BuildFromU64(const std::vector<uint64_t>& sorted_keys,
                           const Options& options);

  /// Builds from sorted unique byte strings. A 0x00 terminator is
  /// appended internally so arbitrary unique sets become prefix-free.
  static Surf BuildFromStrings(const std::vector<std::string>& sorted_keys,
                               const Options& options);

  std::string Name() const override { return "SuRF"; }

  bool MayContain(uint64_t key) const override;
  bool MayContainRange(uint64_t lo, uint64_t hi) const override;

  bool MayContainString(std::string_view key) const;
  bool MayContainStringRange(std::string_view lo, std::string_view hi) const;

  /// Logical size per the paper's accounting: 512 bits per dense node,
  /// 10 bits per sparse edge, suffix_bits per key.
  uint64_t MemoryBits() const override;

  /// Serializes the succinct structure (LSM filter blocks); rank/
  /// select directories are rebuilt on load.
  std::string Serialize() const override;
  static std::optional<Surf> Deserialize(std::string_view data);

  uint64_t num_keys() const { return num_keys_; }
  uint32_t height() const { return height_; }
  uint32_t dense_levels() const { return dense_levels_; }

 private:
  struct SeekResult {
    bool found = false;
    std::string prefix;   // reconstructed truncated key (incl. terminal)
    uint64_t suffix = 0;  // stored suffix value of the leaf
  };
  struct Frame {
    uint64_t node;
    uint64_t pos;
  };

  Surf() = default;

  static Surf BuildCore(const std::vector<std::string>& keys,
                        const Options& options);

  bool LevelIsDense(uint32_t level) const { return level < dense_levels_; }

  // --- unified edge navigation (pos is dense node*256+label or sparse
  // edge index) ---
  bool EdgeHasChild(uint32_t level, uint64_t pos) const;
  uint64_t ChildOrdinal(uint32_t level, uint64_t pos) const;
  uint8_t EdgeLabel(uint32_t level, uint64_t pos) const;
  uint64_t SuffixValue(uint32_t level, uint64_t pos) const;
  /// Smallest edge with label >= c in node; returns false if none.
  bool FindEdgeGE(uint32_t level, uint64_t node, uint32_t c,
                  uint64_t* pos) const;
  /// Next edge after `pos` within `node`; false if `pos` was the last.
  bool NextEdgeInNode(uint32_t level, uint64_t node, uint64_t pos,
                      uint64_t* next) const;

  bool LookupBytes(const std::string& key) const;
  bool RangeBytes(const std::string& lo, const std::string& hi) const;

  SeekResult SeekGE(const std::string& key) const;
  SeekResult DescendLeftmost(uint32_t level, uint64_t node,
                             std::string prefix) const;
  SeekResult DescendLeftmostFromEdge(uint32_t level, uint64_t pos,
                                     std::string prefix) const;
  SeekResult AdvanceAndDescend(std::vector<Frame>& frames, uint32_t level,
                               uint64_t node, uint64_t pos,
                               std::string prefix) const;

  Options options_;
  uint32_t height_ = 0;
  uint32_t dense_levels_ = 0;
  std::vector<LoudsDenseLevel> dense_;
  std::vector<LoudsSparseLevel> sparse_;  // index = level - dense_levels_
  std::vector<std::vector<uint64_t>> suffixes_;  // per level, terminal order
  uint64_t num_keys_ = 0;
  bool string_mode_ = false;
};

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_SURF_SURF_H_

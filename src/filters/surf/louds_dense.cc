#include "filters/surf/louds_dense.h"

#include "util/coding.h"

namespace bloomrf {

void LoudsDenseLevel::Encode(const SurfBuilderLevel& level) {
  num_nodes_ = level.num_nodes;
  // Node ordinal advances on every louds bit.
  uint64_t node = 0;
  bool first = true;
  for (size_t i = 0; i < level.labels.size(); ++i) {
    if (level.louds[i]) {
      if (!first) ++node;
      first = false;
    }
    uint64_t pos = node * kFanout + level.labels[i];
    labels_.SetBit(pos);
    if (level.has_child[i]) has_child_.SetBit(pos);
  }
  // Both bitmaps span all nodes even when trailing bits are zero.
  labels_.EnsureSize(num_nodes_ * kFanout);
  has_child_.EnsureSize(num_nodes_ * kFanout);
  labels_.Build();
  has_child_.Build();
}

void LoudsDenseLevel::SerializeTo(std::string* dst) const {
  PutFixed64(dst, num_nodes_);
  labels_.SerializeTo(dst);
  has_child_.SerializeTo(dst);
}

bool LoudsDenseLevel::DeserializeFrom(std::string_view src, size_t* pos) {
  if (*pos + 8 > src.size()) return false;
  num_nodes_ = DecodeFixed64(src.data() + *pos);
  *pos += 8;
  return labels_.DeserializeFrom(src, pos) &&
         has_child_.DeserializeFrom(src, pos);
}

}  // namespace bloomrf

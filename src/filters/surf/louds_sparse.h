// LOUDS-Sparse level encoding for SuRF (paper [49]).
//
// Each edge of a sparse level costs one byte label plus two bits
// (has-child, louds). Node boundaries are recovered with select1 over
// the louds bits; child and suffix ordinals with rank1 over has-child.

#ifndef BLOOMRF_FILTERS_SURF_LOUDS_SPARSE_H_
#define BLOOMRF_FILTERS_SURF_LOUDS_SPARSE_H_

#include <cstdint>
#include <vector>

#include "filters/surf/surf_builder.h"
#include "util/bit_vector.h"

namespace bloomrf {

class LoudsSparseLevel {
 public:
  LoudsSparseLevel() = default;

  void Encode(const SurfBuilderLevel& level);

  uint64_t num_edges() const { return labels_.size(); }
  uint64_t num_nodes() const { return louds_.ones(); }

  uint8_t Label(uint64_t pos) const { return labels_[pos]; }
  bool EdgeHasChild(uint64_t pos) const { return has_child_.Get(pos); }

  uint64_t ChildOrdinal(uint64_t pos) const { return has_child_.Rank1(pos); }
  uint64_t SuffixOrdinal(uint64_t pos) const { return has_child_.Rank0(pos); }

  uint64_t NodeBegin(uint64_t node) const { return louds_.Select1(node); }
  uint64_t NodeEnd(uint64_t node) const {
    return node + 1 < louds_.ones() ? louds_.Select1(node + 1)
                                    : labels_.size();
  }

  /// Position of the smallest label >= `label` within `node`, or -1.
  /// Labels within a node are sorted (builder emits keys in order).
  int64_t FindLabelGE(uint64_t node, uint32_t label) const {
    uint64_t begin = NodeBegin(node);
    uint64_t end = NodeEnd(node);
    for (uint64_t p = begin; p < end; ++p) {
      if (labels_[p] >= label) return static_cast<int64_t>(p);
    }
    return -1;
  }

  /// Exact-label variant; -1 if absent.
  int64_t FindLabel(uint64_t node, uint8_t label) const {
    int64_t p = FindLabelGE(node, label);
    if (p < 0 || labels_[static_cast<uint64_t>(p)] != label) return -1;
    return p;
  }

  uint64_t SizeBits() const {
    return labels_.size() * 8 + has_child_.SizeBits() + louds_.SizeBits();
  }

  /// Logical size per the paper's accounting: 10 bits per edge.
  uint64_t LogicalBits() const { return labels_.size() * 10; }

  void SerializeTo(std::string* dst) const;
  bool DeserializeFrom(std::string_view src, size_t* pos);

 private:
  std::vector<uint8_t> labels_;
  BitVector has_child_;
  BitVector louds_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_SURF_LOUDS_SPARSE_H_

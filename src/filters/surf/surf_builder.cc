#include "filters/surf/surf_builder.h"

#include <algorithm>

#include "util/hash.h"

namespace bloomrf {

namespace {

uint32_t Lcp(const std::string& a, const std::string& b) {
  uint32_t n = static_cast<uint32_t>(std::min(a.size(), b.size()));
  for (uint32_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return n;
}

}  // namespace

uint64_t SurfBuilder::RealBits(const std::string& key, uint32_t from_byte,
                               uint32_t bits) {
  uint64_t value = 0;
  uint32_t taken = 0;
  for (uint32_t i = from_byte; taken < bits; ++i) {
    uint8_t byte = i < key.size() ? static_cast<uint8_t>(key[i]) : 0;
    uint32_t want = std::min<uint32_t>(8, bits - taken);
    value = (value << want) | (byte >> (8 - want));
    taken += want;
  }
  return value;
}

uint64_t SurfBuilder::SuffixOf(const std::string& key,
                               uint32_t terminal_level) const {
  switch (suffix_type_) {
    case SurfSuffixType::kNone:
      return 0;
    case SurfSuffixType::kHash:
      return HashBytes(key.data(), key.size(), 0x50f1) &
             ((uint64_t{1} << suffix_bits_) - 1);
    case SurfSuffixType::kReal:
      return RealBits(key, terminal_level + 1, suffix_bits_);
  }
  return 0;
}

bool SurfBuilder::Build(const std::vector<std::string>& keys) {
  levels_.clear();
  num_keys_ = keys.size();
  if (keys.empty()) return true;

  // Last emitted edge's full prefix per level, to detect node starts.
  std::vector<std::string> last_prefix_at_level;

  for (size_t i = 0; i < keys.size(); ++i) {
    const std::string& key = keys[i];
    if (key.empty()) return false;
    uint32_t lcp_prev = i > 0 ? Lcp(keys[i - 1], key) : 0;
    uint32_t lcp_next = i + 1 < keys.size() ? Lcp(key, keys[i + 1]) : 0;
    if (i > 0 && keys[i - 1] >= key) return false;        // not sorted/unique
    if (lcp_prev >= key.size() || lcp_next >= key.size()) {
      return false;  // key is a prefix of a neighbour: not prefix-free
    }
    uint32_t terminal = std::max(lcp_prev, lcp_next);

    for (uint32_t level = lcp_prev; level <= terminal; ++level) {
      if (level >= levels_.size()) {
        levels_.emplace_back();
        last_prefix_at_level.emplace_back("\x01");  // sentinel: no edge yet
      }
      SurfBuilderLevel& data = levels_[level];
      bool new_node =
          data.labels.empty() ||
          last_prefix_at_level[level].compare(0, level, key, 0, level) != 0;
      data.labels.push_back(static_cast<uint8_t>(key[level]));
      data.has_child.push_back(level < terminal);
      data.louds.push_back(new_node);
      if (new_node) ++data.num_nodes;
      if (level == terminal) {
        data.suffixes.push_back(SuffixOf(key, terminal));
      }
      last_prefix_at_level[level] = key.substr(0, level + 1);
    }
  }
  return true;
}

}  // namespace bloomrf

// Trie builder for the SuRF baseline (Zhang et al., SIGMOD'18; paper
// [49]).
//
// Consumes a sorted, unique, prefix-free set of byte-string keys and
// emits, per trie level, the raw label / has-child / louds sequences of
// a *truncated* trie: every key is stored only up to its distinguishing
// byte (the minimal depth separating it from both neighbours), plus an
// optional suffix (none / key hash / real key bits) that trades space
// for point-query precision — SuRF-Base / SuRF-Hash / SuRF-Real.
//
// The builder streams over the sorted keys once: key i contributes new
// edges exactly on levels [lcp(i-1,i), max(lcp(i-1,i), lcp(i,i+1))].

#ifndef BLOOMRF_FILTERS_SURF_SURF_BUILDER_H_
#define BLOOMRF_FILTERS_SURF_SURF_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bloomrf {

enum class SurfSuffixType { kNone, kHash, kReal };

struct SurfBuilderLevel {
  std::vector<uint8_t> labels;
  std::vector<bool> has_child;  // parallel to labels
  std::vector<bool> louds;      // 1 = first edge of its node
  std::vector<uint64_t> suffixes;  // one entry per terminal edge
  uint64_t num_nodes = 0;
};

class SurfBuilder {
 public:
  SurfBuilder(SurfSuffixType suffix_type, uint32_t suffix_bits)
      : suffix_type_(suffix_type), suffix_bits_(suffix_bits & 63) {}

  /// Builds level data from `keys` (sorted, unique, prefix-free,
  /// non-empty). Returns false on malformed input.
  bool Build(const std::vector<std::string>& keys);

  const std::vector<SurfBuilderLevel>& levels() const { return levels_; }
  uint64_t num_keys() const { return num_keys_; }

  /// Suffix value for `key` whose terminal label sits at byte index
  /// `terminal_level` (hash of the whole key, or the first suffix_bits
  /// real bits after the terminal byte, MSB-aligned into the low bits).
  uint64_t SuffixOf(const std::string& key, uint32_t terminal_level) const;

  /// Real-bits extraction for query-side comparisons.
  static uint64_t RealBits(const std::string& key, uint32_t from_byte,
                           uint32_t bits);

 private:
  SurfSuffixType suffix_type_;
  uint32_t suffix_bits_;
  std::vector<SurfBuilderLevel> levels_;
  uint64_t num_keys_ = 0;
};

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_SURF_SURF_BUILDER_H_

#include "filters/blocked_bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "filters/planned_gather.h"
#include "util/coding.h"

namespace bloomrf {

BlockedBloomFilter::BlockedBloomFilter(uint64_t expected_keys,
                                       double bits_per_key,
                                       uint32_t num_hashes, uint64_t seed)
    : seed_(seed) {
  uint64_t m = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(std::max<uint64_t>(expected_keys, 1)));
  m = std::max<uint64_t>(kLineBits,
                         (m + kLineBits - 1) & ~(kLineBits - 1));
  bits_.Reset(m);
  k_ = num_hashes != 0
           ? num_hashes
           : std::max<uint32_t>(
                 1, static_cast<uint32_t>(bits_per_key * std::log(2.0)));
}

void BlockedBloomFilter::Insert(uint64_t key) {
  uint64_t h1 = Hash64(key, seed_);
  uint64_t h2 = Hash64(key, seed_ ^ 0x5bd1e995);
  uint64_t line_base = LineOf(h1) * kLineBits;
  for (uint32_t i = 0; i < k_; ++i) {
    bits_.SetBit(line_base + (DoubleHashProbe(h2, h2 >> 32, i) &
                              (kLineBits - 1)));
  }
}

bool BlockedBloomFilter::MayContain(uint64_t key) const {
  uint64_t h1 = Hash64(key, seed_);
  uint64_t h2 = Hash64(key, seed_ ^ 0x5bd1e995);
  uint64_t line_base = LineOf(h1) * kLineBits;
  for (uint32_t i = 0; i < k_; ++i) {
    if (!bits_.TestBit(line_base + (DoubleHashProbe(h2, h2 >> 32, i) &
                                    (kLineBits - 1)))) {
      return false;
    }
  }
  return true;
}

void BlockedBloomFilter::MayContainBatch(std::span<const uint64_t> keys,
                                         bool* out) const {
  // Plan: one hash pair and ONE line prefetch per key — all k probe
  // blocks live in that line; probe: the shared SIMD lane-group
  // engine.
  RunPlannedGatherBatch(
      keys, out, bits_.raw_blocks(), k_,
      [&](uint64_t key, uint64_t* idx_col, uint64_t* msk_col) {
        uint64_t h1 = Hash64(key, seed_);
        uint64_t h2 = Hash64(key, seed_ ^ 0x5bd1e995);
        uint64_t line_base = LineOf(h1) * kLineBits;
        bits_.PrefetchBit(line_base);
        for (uint32_t i = 0; i < k_; ++i) {
          uint64_t pos =
              line_base + (DoubleHashProbe(h2, h2 >> 32, i) & (kLineBits - 1));
          idx_col[i * kPlannedGatherStripe] = pos >> 6;
          msk_col[i * kPlannedGatherStripe] = uint64_t{1} << (pos & 63);
        }
      });
}

std::string BlockedBloomFilter::Serialize() const {
  std::string out;
  PutFixed64(&out, bits_.size_bits());
  PutFixed32(&out, k_);
  PutFixed64(&out, seed_);
  bits_.SerializeTo(&out);
  return out;
}

std::optional<BlockedBloomFilter> BlockedBloomFilter::Deserialize(
    std::string_view data) {
  if (data.size() < 20) return std::nullopt;
  uint64_t nbits = DecodeFixed64(data.data());
  uint32_t k = DecodeFixed32(data.data() + 8);
  uint64_t seed = DecodeFixed64(data.data() + 12);
  if (k == 0 || k > 64 || nbits == 0 || nbits % kLineBits != 0 ||
      data.size() != 20 + nbits / 8) {
    return std::nullopt;
  }
  BlockedBloomFilter bf;
  bf.k_ = k;
  bf.seed_ = seed;
  if (!bf.bits_.DeserializeFrom(nbits, data.substr(20))) return std::nullopt;
  return bf;
}

}  // namespace bloomrf

#include "filters/fence_pointers.h"

#include <algorithm>

#include "util/coding.h"

namespace bloomrf {

FencePointers::FencePointers(const std::vector<uint64_t>& sorted_keys,
                             double bits_per_key) {
  if (sorted_keys.empty()) return;
  // bits/key budget: blocks of ceil(128 / bits_per_key) keys.
  uint64_t block = bits_per_key > 0
                       ? static_cast<uint64_t>(128.0 / bits_per_key + 0.999)
                       : sorted_keys.size();
  if (block < 1) block = 1;
  for (size_t i = 0; i < sorted_keys.size(); i += block) {
    size_t end = std::min(i + block, sorted_keys.size()) - 1;
    mins_.push_back(sorted_keys[i]);
    maxs_.push_back(sorted_keys[end]);
  }
}

bool FencePointers::MayContainRange(uint64_t lo, uint64_t hi) const {
  if (lo > hi || mins_.empty()) return false;
  // First block whose max >= lo.
  auto it = std::lower_bound(maxs_.begin(), maxs_.end(), lo);
  if (it == maxs_.end()) return false;
  size_t idx = static_cast<size_t>(it - maxs_.begin());
  return mins_[idx] <= hi;
}

std::string FencePointers::Serialize() const {
  std::string out;
  PutFixed64(&out, mins_.size());
  out.reserve(out.size() + mins_.size() * 16);
  for (size_t i = 0; i < mins_.size(); ++i) {
    PutFixed64(&out, mins_[i]);
    PutFixed64(&out, maxs_[i]);
  }
  return out;
}

std::optional<FencePointers> FencePointers::Deserialize(
    std::string_view data) {
  if (data.size() < 8) return std::nullopt;
  uint64_t n = DecodeFixed64(data.data());
  if (n > (data.size() - 8) / 16 || data.size() != 8 + n * 16) {
    return std::nullopt;
  }
  FencePointers fences;
  fences.mins_.reserve(n);
  fences.maxs_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t lo = DecodeFixed64(data.data() + 8 + i * 16);
    uint64_t hi = DecodeFixed64(data.data() + 16 + i * 16);
    if (lo > hi) return std::nullopt;
    if (i > 0 && fences.maxs_.back() > lo) return std::nullopt;  // unsorted
    fences.mins_.push_back(lo);
    fences.maxs_.push_back(hi);
  }
  return fences;
}

}  // namespace bloomrf

#include "filters/fence_pointers.h"

#include <algorithm>

namespace bloomrf {

FencePointers::FencePointers(const std::vector<uint64_t>& sorted_keys,
                             double bits_per_key) {
  if (sorted_keys.empty()) return;
  // bits/key budget: blocks of ceil(128 / bits_per_key) keys.
  uint64_t block = bits_per_key > 0
                       ? static_cast<uint64_t>(128.0 / bits_per_key + 0.999)
                       : sorted_keys.size();
  if (block < 1) block = 1;
  for (size_t i = 0; i < sorted_keys.size(); i += block) {
    size_t end = std::min(i + block, sorted_keys.size()) - 1;
    mins_.push_back(sorted_keys[i]);
    maxs_.push_back(sorted_keys[end]);
  }
}

bool FencePointers::MayContainRange(uint64_t lo, uint64_t hi) const {
  if (lo > hi || mins_.empty()) return false;
  // First block whose max >= lo.
  auto it = std::lower_bound(maxs_.begin(), maxs_.end(), lo);
  if (it == maxs_.end()) return false;
  size_t idx = static_cast<size_t>(it - maxs_.begin());
  return mins_[idx] <= hi;
}

}  // namespace bloomrf

// Cuckoo filter baseline (Fan et al., CoNEXT'14; paper Fig. 12.E).
//
// 4-way buckets of f-bit fingerprints with partial-key cuckoo hashing:
// the alternate bucket of a fingerprint is i ^ hash(fp). Supports
// deletion. The paper probes it at 95% target occupancy with varying
// fingerprint sizes to stay inside each space budget.

#ifndef BLOOMRF_FILTERS_CUCKOO_FILTER_H_
#define BLOOMRF_FILTERS_CUCKOO_FILTER_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "filters/filter.h"

namespace bloomrf {

class CuckooFilter : public OnlineFilter {
 public:
  /// Sizes the table for `expected_keys` at `target_occupancy` with
  /// `fingerprint_bits` in [2, 16].
  CuckooFilter(uint64_t expected_keys, uint32_t fingerprint_bits,
               double target_occupancy = 0.95, uint64_t seed = 0xc0c0);

  std::string Name() const override { return "Cuckoo"; }

  /// Returns silently on table overflow (tracked by failed_inserts());
  /// an overflowed slot would otherwise cause a false negative, so the
  /// filter records the key in a spill set semantics-free way: the
  /// victim fingerprint is kept and all probes of its buckets answer
  /// true.
  void Insert(uint64_t key) override;

  bool MayContain(uint64_t key) const override;

  /// Planned batch probe: computes fingerprint and both candidate
  /// buckets per key, prefetches the bucket slots, then tests all
  /// eight fingerprint lanes of a key's two buckets with the SWAR
  /// 16-bit-lane kernel (util/simd.h).
  void MayContainBatch(std::span<const uint64_t> keys,
                       bool* out) const override;

  bool MayContainRange(uint64_t, uint64_t) const override { return true; }

  /// Deletes one copy of `key`'s fingerprint; returns false if absent.
  bool Delete(uint64_t key);

  uint64_t MemoryBits() const override {
    return num_buckets_ * kSlotsPerBucket * fp_bits_;
  }

  uint64_t failed_inserts() const { return failed_inserts_; }
  double occupancy() const {
    return static_cast<double>(occupied_) /
           static_cast<double>(num_buckets_ * kSlotsPerBucket);
  }

  /// Serializes the fingerprint table verbatim (answers survive the
  /// round trip bit-exactly, including the saturation flag).
  std::string Serialize() const override;
  static std::optional<CuckooFilter> Deserialize(std::string_view data);

 private:
  CuckooFilter() : num_buckets_(0), fp_bits_(2), seed_(0) {}

  static constexpr uint32_t kSlotsPerBucket = 4;
  static constexpr uint32_t kMaxKicks = 500;

  uint16_t Fingerprint(uint64_t key) const;
  uint64_t IndexHash(uint64_t key) const;
  uint64_t AltIndex(uint64_t index, uint16_t fp) const;

  uint16_t& Slot(uint64_t bucket, uint32_t slot) {
    return table_[bucket * kSlotsPerBucket + slot];
  }
  uint16_t Slot(uint64_t bucket, uint32_t slot) const {
    return table_[bucket * kSlotsPerBucket + slot];
  }

  bool InsertFp(uint64_t bucket, uint16_t fp);
  bool BucketContains(uint64_t bucket, uint16_t fp) const;
  bool BucketDelete(uint64_t bucket, uint16_t fp);

  std::vector<uint16_t> table_;  // 0 == empty slot
  uint64_t num_buckets_;
  uint32_t fp_bits_;
  uint64_t seed_;
  uint64_t occupied_ = 0;
  uint64_t failed_inserts_ = 0;
  bool saturated_ = false;  // overflow: all probes answer true
};

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_CUCKOO_FILTER_H_

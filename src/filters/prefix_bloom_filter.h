// Classical Prefix Bloom filter baseline (paper Sect. 1, Fig. 9.D).
//
// Stores both the full key and its fixed-length prefix in one Bloom
// filter. Range queries probe every prefix covering the interval
// (capped), point queries probe the full key. Adequate for range
// filtering at one granularity but — as the paper argues — impractical
// as a general point-range filter.

#ifndef BLOOMRF_FILTERS_PREFIX_BLOOM_FILTER_H_
#define BLOOMRF_FILTERS_PREFIX_BLOOM_FILTER_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "filters/filter.h"
#include "util/bit_array.h"

namespace bloomrf {

class PrefixBloomFilter : public OnlineFilter {
 public:
  /// `prefix_level` is the number of key bits dropped to form the
  /// prefix (prefix = key >> prefix_level).
  PrefixBloomFilter(uint64_t expected_keys, double bits_per_key,
                    uint32_t prefix_level, uint64_t seed = 0xb100f);

  std::string Name() const override { return "PrefixBloom"; }

  void Insert(uint64_t key) override;
  bool MayContain(uint64_t key) const override;
  bool MayContainRange(uint64_t lo, uint64_t hi) const override;

  /// Planned batch probe over the full-key domain: hash once per key,
  /// prefetch all k probe blocks, then test.
  void MayContainBatch(std::span<const uint64_t> keys,
                       bool* out) const override;

  /// Planned batch range probe: the covering prefixes of every query
  /// are hashed and their probe blocks prefetched before the scalar
  /// prefix scans run on lines already in flight.
  void MayContainRangeBatch(std::span<const uint64_t> los,
                            std::span<const uint64_t> his,
                            bool* out) const override;

  uint64_t MemoryBits() const override { return bits_.size_bits(); }

  uint32_t prefix_level() const { return prefix_level_; }

  /// Serializes k, prefix level, seed and the bit array.
  std::string Serialize() const override;
  static std::optional<PrefixBloomFilter> Deserialize(std::string_view data);

 private:
  PrefixBloomFilter() : k_(1), prefix_level_(0), seed_(0) {}

  void InsertValue(uint64_t v, uint64_t domain_tag);
  bool TestValue(uint64_t v, uint64_t domain_tag) const;

  BitArray bits_;
  uint32_t k_;
  uint32_t prefix_level_;
  uint64_t seed_;
  static constexpr uint64_t kMaxProbes = 1024;
};

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_PREFIX_BLOOM_FILTER_H_

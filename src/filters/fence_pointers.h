// Fence pointers / min-max index baseline (ZoneMaps, BRIN; paper
// Sect. 1 and Fig. 9.D).
//
// Built offline from sorted keys: the key space is cut into blocks of
// fixed cardinality and only each block's [min, max] is kept. A probe
// is positive iff it intersects some block interval. Exact at block
// granularity, hence cheap but coarse: gaps inside a block are
// invisible.

#ifndef BLOOMRF_FILTERS_FENCE_POINTERS_H_
#define BLOOMRF_FILTERS_FENCE_POINTERS_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "filters/filter.h"

namespace bloomrf {

class FencePointers : public Filter {
 public:
  /// Builds from `sorted_keys` with a block size derived from the
  /// bits/key budget (each block costs 128 bits of fences).
  FencePointers(const std::vector<uint64_t>& sorted_keys,
                double bits_per_key);

  std::string Name() const override { return "FencePointers"; }

  bool MayContain(uint64_t key) const override {
    return MayContainRange(key, key);
  }

  bool MayContainRange(uint64_t lo, uint64_t hi) const override;

  uint64_t MemoryBits() const override { return mins_.size() * 128; }

  size_t num_blocks() const { return mins_.size(); }

  /// Serializes the [min, max] fence pairs.
  std::string Serialize() const override;
  static std::optional<FencePointers> Deserialize(std::string_view data);

 private:
  FencePointers() = default;

  std::vector<uint64_t> mins_;
  std::vector<uint64_t> maxs_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_FENCE_POINTERS_H_

#include "filters/rosetta.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/coding.h"

namespace bloomrf {

bool DyadicDecompose(uint64_t lo, uint64_t hi, uint32_t max_level,
                     uint64_t cap,
                     std::vector<std::pair<uint64_t, uint32_t>>* out) {
  out->clear();
  while (lo <= hi) {
    // Largest dyadic block starting at lo that fits in [lo, hi] and
    // respects max_level.
    uint32_t level = lo == 0 ? 63 : std::countr_zero(lo);
    level = std::min(level, max_level);
    while (level > 0 &&
           ((uint64_t{1} << level) - 1 > hi - lo)) {
      --level;
    }
    out->emplace_back(lo >> level, level);
    if (out->size() > cap) return false;
    uint64_t step = uint64_t{1} << level;
    if (hi - lo < step) break;  // would overflow / done
    lo += step;
    if (lo == 0) break;  // wrapped
  }
  return true;
}

Rosetta::Rosetta(const Options& options) : options_(options) {
  uint64_t n = std::max<uint64_t>(options.expected_keys, 1);
  double total_bits = options.bits_per_key * static_cast<double>(n);
  uint32_t num_levels =
      options.variant == Variant::kSingleLevel
          ? 1
          : 64 - std::countl_zero(std::max<uint64_t>(options.max_range, 2) - 1) + 1;
  num_levels = std::clamp<uint32_t>(num_levels, 1, 64);

  // Upper levels: FPR ~0.5 costs log2(e) ~ 1.44 bits/key, one hash.
  // When the budget cannot afford that for every level (huge R), the
  // per-level share shrinks so the total stays within budget.
  double budget_bpk = total_bits / static_cast<double>(n);
  double upper_bpk = 1.44;
  if (num_levels > 1) {
    upper_bpk = std::min(
        1.44, std::max(0.5, (budget_bpk - 2.0) /
                                static_cast<double>(num_levels - 1)));
  }
  std::vector<double> bpk(num_levels, 0.0);
  double upper_total = upper_bpk * static_cast<double>(num_levels - 1);
  double remaining = std::max(2.0, budget_bpk - upper_total);
  switch (options_.variant) {
    case Variant::kSingleLevel:
      bpk[0] = total_bits / static_cast<double>(n);
      break;
    case Variant::kFirstCut:
      for (uint32_t l = 1; l < num_levels; ++l) bpk[l] = upper_bpk;
      bpk[0] = remaining;
      break;
    case Variant::kBottomHeavy:
      for (uint32_t l = 1; l < num_levels; ++l) bpk[l] = upper_bpk;
      if (num_levels > 1) {
        bpk[0] = remaining * 0.75;
        bpk[1] += remaining * 0.25;
      } else {
        bpk[0] = remaining;
      }
      break;
    case Variant::kOptimized: {
      // Equal-marginal-benefit allocation: with the BF model
      // eps_l = c^(m_l/n), c = 0.6185, minimizing sum w_l * eps_l
      // subject to sum m_l = m gives m_l/n = base + 1.44 log2(w_l),
      // clipped at 0. Weights: every level contributes one probe per
      // decomposed query; the bottom level additionally absorbs all
      // doubting chains, so it is weighted by the level count.
      std::vector<double> weight(num_levels, 1.0);
      weight[0] = static_cast<double>(num_levels) * 2.0;
      double lo_base = -64, hi_base = 64;
      for (int iter = 0; iter < 60; ++iter) {
        double base = (lo_base + hi_base) / 2;
        double total = 0;
        for (uint32_t l = 0; l < num_levels; ++l) {
          total += std::max(0.0, base + 1.44 * std::log2(weight[l]));
        }
        (total > budget_bpk ? hi_base : lo_base) = base;
      }
      for (uint32_t l = 0; l < num_levels; ++l) {
        bpk[l] = std::max(0.0, lo_base + 1.44 * std::log2(weight[l]));
      }
      break;
    }
  }
  levels_.reserve(num_levels);
  for (uint32_t l = 0; l < num_levels; ++l) {
    uint32_t hashes = l == 0 ? 0 : 1;  // upper levels: single hash
    levels_.push_back(std::make_unique<BloomFilter>(
        n, std::max(1.0, bpk[l]), hashes, options_.seed + l));
  }
}

void Rosetta::Insert(uint64_t key) {
  for (size_t l = 0; l < levels_.size(); ++l) {
    levels_[l]->Insert(key >> l);
  }
}

bool Rosetta::MayContain(uint64_t key) const {
  return levels_[0]->MayContain(key);
}

bool Rosetta::Doubt(uint64_t prefix, uint32_t level,
                    uint64_t& probes) const {
  // Work cap: doubting fans out two children per level, so saturated
  // upper filters (tiny budgets, or a hostile deserialized block with
  // all-ones levels) would otherwise probe 2^level descendants. Past
  // the cap the filter answers a conservative true, preserving the
  // no-false-negative contract while bounding a query's probe count.
  // The counter is query-local, so concurrent probes stay independent.
  if (probes >= kMaxDoubtProbes) return true;
  ++probes;
  if (!levels_[level]->MayContain(prefix)) return false;
  if (level == 0) return true;
  return Doubt(prefix << 1, level - 1, probes) ||
         Doubt((prefix << 1) | 1, level - 1, probes);
}

bool Rosetta::DoubtDecomposition(
    const std::vector<std::pair<uint64_t, uint32_t>>& pieces) const {
  uint64_t probes = 0;
  bool result = false;
  for (const auto& [prefix, level] : pieces) {
    if (Doubt(prefix, level, probes)) {
      result = true;
      break;
    }
  }
  last_probes_ = probes;  // stats only; racy writes cannot affect probing
  return result;
}

bool Rosetta::MayContainRange(uint64_t lo, uint64_t hi) const {
  if (lo > hi) return false;
  uint32_t max_level = static_cast<uint32_t>(levels_.size()) - 1;
  std::vector<std::pair<uint64_t, uint32_t>> pieces;
  if (!DyadicDecompose(lo, hi, max_level, kMaxDecomposition, &pieces)) {
    last_probes_ = 0;  // answered without probing
    return true;  // range too large for the configured R: cannot exclude
  }
  return DoubtDecomposition(pieces);
}

void Rosetta::MayContainRangeBatch(std::span<const uint64_t> los,
                                   std::span<const uint64_t> his,
                                   bool* out) const {
  constexpr size_t kStripe = 32;
  // Doubting fans out unpredictably, but every query starts with one
  // Bloom probe per dyadic piece — those addresses are a pure function
  // of the interval. The planning pass decomposes each query ONCE,
  // prefetches the leading pieces' probe blocks, and the probe pass
  // doubts the stored decomposition on lines already in flight.
  constexpr size_t kPlanPieces = 8;
  const uint32_t max_level = static_cast<uint32_t>(levels_.size()) - 1;
  std::vector<std::pair<uint64_t, uint32_t>> pieces[kStripe];
  // 0 = decomposed (doubt pieces[j]), 1 = answered false, 2 = answered
  // true without probing (decomposition cap; clears last_probes_ like
  // the scalar path).
  uint8_t state[kStripe];
  for (size_t base = 0; base < los.size(); base += kStripe) {
    const size_t stripe = std::min(kStripe, los.size() - base);
    for (size_t j = 0; j < stripe; ++j) {
      uint64_t lo = los[base + j], hi = his[base + j];
      if (lo > hi) {
        state[j] = 1;
        continue;
      }
      if (!DyadicDecompose(lo, hi, max_level, kMaxDecomposition,
                           &pieces[j])) {
        state[j] = 2;
        continue;
      }
      state[j] = 0;
      size_t planned = std::min(pieces[j].size(), kPlanPieces);
      for (size_t p = 0; p < planned; ++p) {
        levels_[pieces[j][p].second]->PrefetchKey(pieces[j][p].first);
      }
    }
    for (size_t j = 0; j < stripe; ++j) {
      if (state[j] == 0) {
        out[base + j] = DoubtDecomposition(pieces[j]);
      } else {
        if (state[j] == 2) last_probes_ = 0;
        out[base + j] = state[j] == 2;
      }
    }
  }
}

uint64_t Rosetta::MemoryBits() const {
  uint64_t total = 0;
  for (const auto& bf : levels_) total += bf->MemoryBits();
  return total;
}

std::string Rosetta::Serialize() const {
  std::string out;
  PutFixed64(&out, options_.expected_keys);
  PutFixed64(&out, std::bit_cast<uint64_t>(options_.bits_per_key));
  PutFixed64(&out, options_.max_range);
  PutFixed32(&out, static_cast<uint32_t>(options_.variant));
  PutFixed64(&out, options_.seed);
  PutFixed32(&out, static_cast<uint32_t>(levels_.size()));
  for (const auto& bf : levels_) PutLengthPrefixed(&out, bf->Serialize());
  return out;
}

std::optional<Rosetta> Rosetta::Deserialize(std::string_view data) {
  if (data.size() < 40) return std::nullopt;
  Rosetta filter;
  filter.options_.expected_keys = DecodeFixed64(data.data());
  filter.options_.bits_per_key =
      std::bit_cast<double>(DecodeFixed64(data.data() + 8));
  filter.options_.max_range = DecodeFixed64(data.data() + 16);
  uint32_t variant = DecodeFixed32(data.data() + 24);
  if (variant > static_cast<uint32_t>(Variant::kSingleLevel)) {
    return std::nullopt;
  }
  filter.options_.variant = static_cast<Variant>(variant);
  filter.options_.seed = DecodeFixed64(data.data() + 28);
  uint32_t num_levels = DecodeFixed32(data.data() + 36);
  if (num_levels == 0 || num_levels > 64) return std::nullopt;
  size_t pos = 40;
  filter.levels_.reserve(num_levels);
  for (uint32_t l = 0; l < num_levels; ++l) {
    std::string_view blob;
    if (!GetLengthPrefixed(data, &pos, &blob)) return std::nullopt;
    std::optional<BloomFilter> bf = BloomFilter::Deserialize(blob);
    if (!bf) return std::nullopt;
    filter.levels_.push_back(std::make_unique<BloomFilter>(std::move(*bf)));
  }
  if (pos != data.size()) return std::nullopt;
  return filter;
}

}  // namespace bloomrf

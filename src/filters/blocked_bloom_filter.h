// Cache-line-blocked Bloom filter (RocksDB/Putze-et-al. style): each
// key hashes to one 512-bit cache line and all k probe bits live
// inside it, so a point probe costs exactly one memory access. The
// locality trades a little FPR (keys sharing a saturated line) for a
// probe path that batches perfectly: the planned engine prefetches one
// line per key and the SIMD lane-group kernel tests four keys per
// gather against blocks that are all L1-resident by then.

#ifndef BLOOMRF_FILTERS_BLOCKED_BLOOM_FILTER_H_
#define BLOOMRF_FILTERS_BLOCKED_BLOOM_FILTER_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "filters/filter.h"
#include "util/bit_array.h"
#include "util/hash.h"

namespace bloomrf {

class BlockedBloomFilter : public OnlineFilter {
 public:
  /// `num_hashes` == 0 derives k = round(ln 2 * bits_per_key) like the
  /// unblocked baseline.
  BlockedBloomFilter(uint64_t expected_keys, double bits_per_key,
                     uint32_t num_hashes = 0, uint64_t seed = 0xb10cb1);

  std::string Name() const override { return "BlockedBloom"; }

  void Insert(uint64_t key) override;
  bool MayContain(uint64_t key) const override;

  /// Planned batch probe: one line prefetch per key, then 4 keys per
  /// SIMD lane group per probe round.
  void MayContainBatch(std::span<const uint64_t> keys,
                       bool* out) const override;

  /// Point-only filter: ranges cannot be excluded.
  bool MayContainRange(uint64_t, uint64_t) const override { return true; }

  uint64_t MemoryBits() const override { return bits_.size_bits(); }

  uint32_t num_hashes() const { return k_; }
  uint64_t num_lines() const { return bits_.size_bits() / kLineBits; }

  /// Serializes k, seed and the bit array.
  std::string Serialize() const override;
  static std::optional<BlockedBloomFilter> Deserialize(std::string_view data);

 private:
  static constexpr uint64_t kLineBits = 512;

  BlockedBloomFilter() : k_(1), seed_(0) {}

  /// The cache line of `key` and its k in-line bit positions, shared
  /// by Insert, MayContain and the batch planner. Positions come from
  /// KM double hashing over a hash independent of the line choice.
  uint64_t LineOf(uint64_t h1) const {
    return FastRange64(h1, bits_.size_bits() / kLineBits);
  }

  BitArray bits_;
  uint32_t k_;
  uint64_t seed_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_BLOCKED_BLOOM_FILTER_H_

#include "filters/bloomrf_filter.h"

#include "core/tuning_advisor.h"

namespace bloomrf {

BloomRFFilter BloomRFFilter::Advised(uint64_t n, double bits_per_key,
                                     double max_range, uint32_t domain_bits,
                                     uint64_t seed) {
  AdvisorParams params;
  params.n = n;
  params.total_bits =
      static_cast<uint64_t>(bits_per_key * static_cast<double>(n));
  params.max_range = max_range;
  params.domain_bits = domain_bits;
  BloomRFConfig config = AdviseConfig(params).config;
  if (seed != 0) config.seed = seed;
  return BloomRFFilter(BloomRF(std::move(config)));
}

std::optional<BloomRFFilter> BloomRFFilter::Deserialize(
    std::string_view data) {
  std::optional<BloomRF> impl = BloomRF::Deserialize(data);
  if (!impl) return std::nullopt;
  return BloomRFFilter(std::move(*impl));
}

}  // namespace bloomrf

#include "filters/bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "util/coding.h"
#include "util/hash.h"

namespace bloomrf {

BloomFilter::BloomFilter(uint64_t expected_keys, double bits_per_key,
                         uint32_t num_hashes, uint64_t seed)
    : seed_(seed) {
  uint64_t m = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(std::max<uint64_t>(expected_keys, 1)));
  m = std::max<uint64_t>(64, (m + 63) & ~63ULL);
  bits_.Reset(m);
  k_ = num_hashes != 0
           ? num_hashes
           : std::max<uint32_t>(
                 1, static_cast<uint32_t>(bits_per_key * std::log(2.0)));
}

void BloomFilter::Insert(uint64_t key) {
  uint64_t h1 = Hash64(key, seed_);
  uint64_t h2 = Hash64(key, seed_ ^ 0x5bd1e995);
  for (uint32_t i = 0; i < k_; ++i) {
    bits_.SetBit(FastRange64(DoubleHashProbe(h1, h2, i), bits_.size_bits()));
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  uint64_t h1 = Hash64(key, seed_);
  uint64_t h2 = Hash64(key, seed_ ^ 0x5bd1e995);
  for (uint32_t i = 0; i < k_; ++i) {
    if (!bits_.TestBit(
            FastRange64(DoubleHashProbe(h1, h2, i), bits_.size_bits()))) {
      return false;
    }
  }
  return true;
}

void BloomFilter::MayContainBatch(std::span<const uint64_t> keys,
                                  bool* out) const {
  constexpr size_t kStripe = 32;
  uint64_t h1s[kStripe];
  uint64_t h2s[kStripe];
  for (size_t base = 0; base < keys.size(); base += kStripe) {
    const size_t stripe = std::min(kStripe, keys.size() - base);
    // Plan: hash each key once, start the loads of all k probe blocks.
    for (size_t j = 0; j < stripe; ++j) {
      h1s[j] = Hash64(keys[base + j], seed_);
      h2s[j] = Hash64(keys[base + j], seed_ ^ 0x5bd1e995);
      for (uint32_t i = 0; i < k_; ++i) {
        bits_.PrefetchBit(
            FastRange64(DoubleHashProbe(h1s[j], h2s[j], i), bits_.size_bits()));
      }
    }
    // Probe: same positions, early exit per key.
    for (size_t j = 0; j < stripe; ++j) {
      bool alive = true;
      for (uint32_t i = 0; alive && i < k_; ++i) {
        alive = bits_.TestBit(
            FastRange64(DoubleHashProbe(h1s[j], h2s[j], i), bits_.size_bits()));
      }
      out[base + j] = alive;
    }
  }
}

std::string BloomFilter::Serialize() const {
  std::string out;
  PutFixed64(&out, bits_.size_bits());
  PutFixed32(&out, k_);
  PutFixed64(&out, seed_);
  bits_.SerializeTo(&out);
  return out;
}

std::optional<BloomFilter> BloomFilter::Deserialize(std::string_view data) {
  if (data.size() < 20) return std::nullopt;
  uint64_t nbits = DecodeFixed64(data.data());
  uint32_t k = DecodeFixed32(data.data() + 8);
  uint64_t seed = DecodeFixed64(data.data() + 12);
  if (k == 0 || k > 64 || nbits == 0 || data.size() != 20 + nbits / 8) {
    return std::nullopt;
  }
  BloomFilter bf;
  bf.k_ = k;
  bf.seed_ = seed;
  if (!bf.bits_.DeserializeFrom(nbits, data.substr(20))) return std::nullopt;
  return bf;
}

}  // namespace bloomrf

#include "filters/bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "filters/planned_gather.h"
#include "util/coding.h"
#include "util/hash.h"

namespace bloomrf {

BloomFilter::BloomFilter(uint64_t expected_keys, double bits_per_key,
                         uint32_t num_hashes, uint64_t seed)
    : seed_(seed) {
  uint64_t m = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(std::max<uint64_t>(expected_keys, 1)));
  m = std::max<uint64_t>(64, (m + 63) & ~63ULL);
  bits_.Reset(m);
  k_ = num_hashes != 0
           ? num_hashes
           : std::max<uint32_t>(
                 1, static_cast<uint32_t>(bits_per_key * std::log(2.0)));
}

void BloomFilter::Insert(uint64_t key) {
  uint64_t h1 = Hash64(key, seed_);
  uint64_t h2 = Hash64(key, seed_ ^ 0x5bd1e995);
  for (uint32_t i = 0; i < k_; ++i) {
    bits_.SetBit(FastRange64(DoubleHashProbe(h1, h2, i), bits_.size_bits()));
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  uint64_t h1 = Hash64(key, seed_);
  uint64_t h2 = Hash64(key, seed_ ^ 0x5bd1e995);
  for (uint32_t i = 0; i < k_; ++i) {
    if (!bits_.TestBit(
            FastRange64(DoubleHashProbe(h1, h2, i), bits_.size_bits()))) {
      return false;
    }
  }
  return true;
}

void BloomFilter::MayContainBatch(std::span<const uint64_t> keys,
                                  bool* out) const {
  // Two planned regimes, both KM-hashing each key exactly once:
  //
  //  - Filter within reach of the cache hierarchy (<= 8 MB): resolve
  //    all k probe positions to (block, mask) pairs up front, prefetch
  //    every line, and test 4 keys per SIMD lane group with
  //    group-level early exit. Lines are cheap here; latency hiding
  //    and the vector word tests dominate.
  //
  //  - Memory-sized filter: planning cannot win by prefetching all k
  //    lines — the scalar loop's early exit reads barely half of them,
  //    so exhaustive prefetch pays more bandwidth than it hides
  //    latency (the 0.998x regression this PR fixes). Fall back to the
  //    scalar early-exit probe, keeping the stored hashes and a
  //    prefetch of each key's first probe line only: the line every
  //    query must read is in flight, and the exit path stays intact.
  constexpr uint64_t kFullPrefetchBytes = 8 << 20;
  const uint64_t* raw = bits_.raw_blocks();
  const uint64_t nbits = bits_.size_bits();

  if (bits_.size_bytes() > kFullPrefetchBytes) {
    constexpr size_t kStripe = kPlannedGatherStripe;
    uint64_t h1s[kStripe];
    uint64_t h2s[kStripe];
    for (size_t base = 0; base < keys.size(); base += kStripe) {
      const size_t stripe = std::min(kStripe, keys.size() - base);
      for (size_t j = 0; j < stripe; ++j) {
        h1s[j] = Hash64(keys[base + j], seed_);
        h2s[j] = Hash64(keys[base + j], seed_ ^ 0x5bd1e995);
        bits_.PrefetchBit(FastRange64(h1s[j], nbits));
      }
      for (size_t j = 0; j < stripe; ++j) {
        bool alive = true;
        for (uint32_t i = 0; alive && i < k_; ++i) {
          uint64_t pos = FastRange64(DoubleHashProbe(h1s[j], h2s[j], i), nbits);
          alive = (raw[pos >> 6] >> (pos & 63)) & 1;
        }
        out[base + j] = alive;
      }
    }
    return;
  }

  // Plan: hash once, store every round's block + mask, prefetch
  // everything; probe: the shared SIMD lane-group engine.
  RunPlannedGatherBatch(
      keys, out, raw, k_,
      [&](uint64_t key, uint64_t* idx_col, uint64_t* msk_col) {
        uint64_t h1 = Hash64(key, seed_);
        uint64_t h2 = Hash64(key, seed_ ^ 0x5bd1e995);
        for (uint32_t i = 0; i < k_; ++i) {
          uint64_t pos = FastRange64(DoubleHashProbe(h1, h2, i), nbits);
          idx_col[i * kPlannedGatherStripe] = pos >> 6;
          msk_col[i * kPlannedGatherStripe] = uint64_t{1} << (pos & 63);
          bits_.PrefetchBlock(pos >> 6);
        }
      });
}

std::string BloomFilter::Serialize() const {
  std::string out;
  PutFixed64(&out, bits_.size_bits());
  PutFixed32(&out, k_);
  PutFixed64(&out, seed_);
  bits_.SerializeTo(&out);
  return out;
}

std::optional<BloomFilter> BloomFilter::Deserialize(std::string_view data) {
  if (data.size() < 20) return std::nullopt;
  uint64_t nbits = DecodeFixed64(data.data());
  uint32_t k = DecodeFixed32(data.data() + 8);
  uint64_t seed = DecodeFixed64(data.data() + 12);
  if (k == 0 || k > 64 || nbits == 0 || data.size() != 20 + nbits / 8) {
    return std::nullopt;
  }
  BloomFilter bf;
  bf.k_ = k;
  bf.seed_ = seed;
  if (!bf.bits_.DeserializeFrom(nbits, data.substr(20))) return std::nullopt;
  return bf;
}

}  // namespace bloomrf

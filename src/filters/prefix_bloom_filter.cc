#include "filters/prefix_bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "util/coding.h"
#include "util/hash.h"

namespace bloomrf {

PrefixBloomFilter::PrefixBloomFilter(uint64_t expected_keys,
                                     double bits_per_key,
                                     uint32_t prefix_level, uint64_t seed)
    // Clamp below the key width: `key >> prefix_level_` must stay
    // defined, and Deserialize rejects levels >= 64.
    : prefix_level_(std::min<uint32_t>(prefix_level, 63)), seed_(seed) {
  uint64_t m = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(std::max<uint64_t>(expected_keys, 1)));
  m = std::max<uint64_t>(64, (m + 63) & ~63ULL);
  bits_.Reset(m);
  // Each key costs two insertions (full key + prefix): halve k.
  k_ = std::max<uint32_t>(
      1, static_cast<uint32_t>(bits_per_key * std::log(2.0) / 2.0));
}

void PrefixBloomFilter::InsertValue(uint64_t v, uint64_t domain_tag) {
  uint64_t h1 = Hash64(v, seed_ ^ domain_tag);
  uint64_t h2 = Hash64(v, seed_ ^ domain_tag ^ 0x5bd1e995);
  for (uint32_t i = 0; i < k_; ++i) {
    bits_.SetBit(FastRange64(DoubleHashProbe(h1, h2, i), bits_.size_bits()));
  }
}

bool PrefixBloomFilter::TestValue(uint64_t v, uint64_t domain_tag) const {
  uint64_t h1 = Hash64(v, seed_ ^ domain_tag);
  uint64_t h2 = Hash64(v, seed_ ^ domain_tag ^ 0x5bd1e995);
  for (uint32_t i = 0; i < k_; ++i) {
    if (!bits_.TestBit(
            FastRange64(DoubleHashProbe(h1, h2, i), bits_.size_bits()))) {
      return false;
    }
  }
  return true;
}

void PrefixBloomFilter::Insert(uint64_t key) {
  InsertValue(key, /*domain_tag=*/1);
  InsertValue(key >> prefix_level_, /*domain_tag=*/2);
}

bool PrefixBloomFilter::MayContain(uint64_t key) const {
  return TestValue(key, 1);
}

void PrefixBloomFilter::MayContainBatch(std::span<const uint64_t> keys,
                                        bool* out) const {
  constexpr size_t kStripe = 32;
  constexpr uint64_t kFullKeyTag = 1;  // domain tag of MayContain probes
  uint64_t h1s[kStripe];
  uint64_t h2s[kStripe];
  for (size_t base = 0; base < keys.size(); base += kStripe) {
    const size_t stripe = std::min(kStripe, keys.size() - base);
    for (size_t j = 0; j < stripe; ++j) {
      h1s[j] = Hash64(keys[base + j], seed_ ^ kFullKeyTag);
      h2s[j] = Hash64(keys[base + j], seed_ ^ kFullKeyTag ^ 0x5bd1e995);
      for (uint32_t i = 0; i < k_; ++i) {
        bits_.PrefetchBit(
            FastRange64(DoubleHashProbe(h1s[j], h2s[j], i), bits_.size_bits()));
      }
    }
    for (size_t j = 0; j < stripe; ++j) {
      bool alive = true;
      for (uint32_t i = 0; alive && i < k_; ++i) {
        alive = bits_.TestBit(
            FastRange64(DoubleHashProbe(h1s[j], h2s[j], i), bits_.size_bits()));
      }
      out[base + j] = alive;
    }
  }
}

bool PrefixBloomFilter::MayContainRange(uint64_t lo, uint64_t hi) const {
  if (lo > hi) return false;
  uint64_t lp = lo >> prefix_level_;
  uint64_t rp = hi >> prefix_level_;
  if (rp - lp + 1 > kMaxProbes) return true;  // cannot exclude cheaply
  for (uint64_t p = lp;; ++p) {
    if (TestValue(p, 2)) return true;
    if (p == rp) break;
  }
  return false;
}

void PrefixBloomFilter::MayContainRangeBatch(std::span<const uint64_t> los,
                                             std::span<const uint64_t> his,
                                             bool* out) const {
  constexpr size_t kStripe = 32;
  // A range scan stops at its first positive prefix, so only the
  // leading prefixes are worth pulling in ahead of time.
  constexpr uint64_t kPlanPrefixes = 4;
  for (size_t base = 0; base < los.size(); base += kStripe) {
    const size_t stripe = std::min(kStripe, los.size() - base);
    for (size_t j = 0; j < stripe; ++j) {
      uint64_t lo = los[base + j], hi = his[base + j];
      if (lo > hi) continue;
      uint64_t lp = lo >> prefix_level_;
      uint64_t rp = hi >> prefix_level_;
      if (rp - lp + 1 > kMaxProbes) continue;  // answered without probing
      uint64_t last = rp - lp + 1 > kPlanPrefixes ? lp + kPlanPrefixes - 1
                                                  : rp;
      for (uint64_t p = lp;; ++p) {
        uint64_t h1 = Hash64(p, seed_ ^ 2);
        uint64_t h2 = Hash64(p, seed_ ^ 2 ^ 0x5bd1e995);
        for (uint32_t i = 0; i < k_; ++i) {
          bits_.PrefetchBit(
              FastRange64(DoubleHashProbe(h1, h2, i), bits_.size_bits()));
        }
        if (p == last) break;
      }
    }
    for (size_t j = 0; j < stripe; ++j) {
      out[base + j] = MayContainRange(los[base + j], his[base + j]);
    }
  }
}

std::string PrefixBloomFilter::Serialize() const {
  std::string out;
  PutFixed32(&out, k_);
  PutFixed32(&out, prefix_level_);
  PutFixed64(&out, seed_);
  PutFixed64(&out, bits_.size_bits());
  bits_.SerializeTo(&out);
  return out;
}

std::optional<PrefixBloomFilter> PrefixBloomFilter::Deserialize(
    std::string_view data) {
  if (data.size() < 24) return std::nullopt;
  uint32_t k = DecodeFixed32(data.data());
  uint32_t prefix_level = DecodeFixed32(data.data() + 4);
  uint64_t seed = DecodeFixed64(data.data() + 8);
  uint64_t nbits = DecodeFixed64(data.data() + 16);
  if (k == 0 || k > 64 || prefix_level >= 64 || nbits == 0 ||
      data.size() != 24 + nbits / 8) {
    return std::nullopt;
  }
  PrefixBloomFilter filter;
  filter.k_ = k;
  filter.prefix_level_ = prefix_level;
  filter.seed_ = seed;
  if (!filter.bits_.DeserializeFrom(nbits, data.substr(24))) {
    return std::nullopt;
  }
  return filter;
}

}  // namespace bloomrf

#include "filters/registry.h"

#include <algorithm>
#include <cstdio>

#include "util/coding.h"

namespace bloomrf {

namespace {
// Framing magic ("bloomRF filter block"); guards against feeding
// unframed payloads or foreign blobs into the registry.
constexpr uint32_t kFrameMagic = 0xb10ff11e;
constexpr size_t kMaxNameLen = 64;
}  // namespace

FilterRegistry& FilterRegistry::Instance() {
  // Built-ins are registered directly during construction of the
  // singleton (RegisterBuiltinFilters takes the registry by reference,
  // never re-entering Instance), so they are deterministically present
  // before any macro-based external registration can run.
  static FilterRegistry* registry = [] {
    static FilterRegistry r;
    RegisterBuiltinFilters(r);
    return &r;
  }();
  return *registry;
}

bool FilterRegistry::Register(Entry entry) {
  if (entry.name.empty() || entry.name.size() > kMaxNameLen ||
      entry.display_name.empty() || !entry.build_from_sorted_keys ||
      !entry.deserialize ||
      entry.online != static_cast<bool>(entry.build_online)) {
    std::fprintf(stderr,
                 "FilterRegistry: rejected incomplete entry '%s'\n",
                 entry.name.c_str());
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Names and display names share one lookup namespace (Find resolves
  // both), so collisions are rejected across the two maps as well.
  if (entries_.count(entry.name) > 0 ||
      by_display_.count(entry.display_name) > 0 ||
      by_display_.count(entry.name) > 0 ||
      entries_.count(entry.display_name) > 0) {
    std::fprintf(stderr,
                 "FilterRegistry: rejected colliding entry '%s' (%s)\n",
                 entry.name.c_str(), entry.display_name.c_str());
    return false;
  }
  by_display_.emplace(entry.display_name, entry.name);
  entries_.emplace(entry.name, std::move(entry));
  return true;
}

const FilterRegistry::Entry* FilterRegistry::Find(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) return &it->second;
  auto alias = by_display_.find(name);
  if (alias != by_display_.end()) {
    it = entries_.find(alias->second);
    if (it != entries_.end()) return &it->second;
  }
  return nullptr;
}

std::vector<std::string> FilterRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::string FilterRegistry::Frame(std::string_view name,
                                  std::string_view payload) {
  std::string out;
  out.reserve(8 + name.size() + payload.size());
  PutFixed32(&out, kFrameMagic);
  PutLengthPrefixed(&out, name);
  out.append(payload.data(), payload.size());
  return out;
}

bool FilterRegistry::ParseFrame(std::string_view framed,
                                std::string_view* name,
                                std::string_view* payload) {
  if (framed.size() < 8) return false;
  if (DecodeFixed32(framed.data()) != kFrameMagic) return false;
  size_t pos = 4;
  if (!GetLengthPrefixed(framed, &pos, name)) return false;
  if (name->empty() || name->size() > kMaxNameLen) return false;
  *payload = framed.substr(pos);
  return true;
}

std::string FilterRegistry::Serialize(const PointRangeFilter& filter) const {
  const Entry* entry = Find(filter.Name());
  if (entry == nullptr) return "";
  return Frame(entry->name, filter.Serialize());
}

std::unique_ptr<PointRangeFilter> FilterRegistry::Deserialize(
    std::string_view framed) const {
  std::string_view name, payload;
  if (!ParseFrame(framed, &name, &payload)) return nullptr;
  const Entry* entry = Find(name);
  if (entry == nullptr) return nullptr;
  return entry->deserialize(payload);
}

}  // namespace bloomrf

// Registry entries for every built-in point/range filter backend.
// Adding backend N+1 is a change to this file (in-tree backends list
// themselves in RegisterBuiltinFilters below; external code can use
// BLOOMRF_REGISTER_FILTER from any linked-in translation unit) —
// nothing else in the LSM, bench or example layers needs to know
// about it.

#include <algorithm>
#include <cstdint>
#include <memory>

#include "filters/blocked_bloom_filter.h"
#include "filters/bloom_filter.h"
#include "filters/bloomrf_filter.h"
#include "filters/cuckoo_filter.h"
#include "filters/fence_pointers.h"
#include "filters/prefix_bloom_filter.h"
#include "filters/registry.h"
#include "filters/rosetta.h"
#include "filters/surf/surf.h"

namespace bloomrf {
namespace {

// Populates an online filter from an already-sorted key set (the
// offline construction path of online-capable backends).
template <typename FilterT>
std::unique_ptr<FilterT> InsertAll(std::unique_ptr<FilterT> filter,
                                   const std::vector<uint64_t>& keys) {
  for (uint64_t k : keys) filter->Insert(k);
  return filter;
}

template <typename FilterT>
std::unique_ptr<PointRangeFilter> DeserializeAs(std::string_view payload) {
  auto restored = FilterT::Deserialize(payload);
  if (!restored) return nullptr;
  return std::make_unique<FilterT>(std::move(*restored));
}

// Offline construction of an online-capable backend: size for the key
// count, then insert the sorted set.
FilterRegistry::BuildFromSortedKeysFn OfflineViaOnline(
    FilterRegistry::BuildOnlineFn build_online) {
  return [build_online = std::move(build_online)](
             const std::vector<uint64_t>& keys,
             const FilterBuildParams& params) {
    FilterBuildParams sized = params;
    sized.expected_keys = keys.size();
    return InsertAll(build_online(sized), keys);
  };
}

// ---------------------------------------------------------------- bloomRF

FilterRegistry::Entry BloomRFEntry() {
  FilterRegistry::Entry entry;
  entry.name = "bloomrf";
  entry.display_name = "bloomRF";
  entry.supports_ranges = true;
  entry.online = true;
  entry.build_online = [](const FilterBuildParams& p) {
    return std::make_unique<BloomRFFilter>(BloomRFFilter::Advised(
        p.expected_keys, p.bits_per_key, p.max_range, /*domain_bits=*/64,
        p.seed));
  };
  entry.build_from_sorted_keys = OfflineViaOnline(entry.build_online);
  entry.deserialize = DeserializeAs<BloomRFFilter>;
  return entry;
}

// ------------------------------------------------------------------ Bloom

FilterRegistry::Entry BloomEntry() {
  FilterRegistry::Entry entry;
  entry.name = "bloom";
  entry.display_name = "Bloom";
  entry.supports_ranges = false;
  entry.online = true;
  entry.build_online = [](const FilterBuildParams& p) {
    return p.seed != 0 ? std::make_unique<BloomFilter>(p.expected_keys,
                                                       p.bits_per_key, 0,
                                                       p.seed)
                       : std::make_unique<BloomFilter>(p.expected_keys,
                                                       p.bits_per_key);
  };
  entry.build_from_sorted_keys = OfflineViaOnline(entry.build_online);
  entry.deserialize = DeserializeAs<BloomFilter>;
  return entry;
}

// ----------------------------------------------------------- Blocked Bloom

FilterRegistry::Entry BlockedBloomEntry() {
  FilterRegistry::Entry entry;
  entry.name = "blocked_bloom";
  entry.display_name = "BlockedBloom";
  entry.supports_ranges = false;
  entry.online = true;
  entry.build_online = [](const FilterBuildParams& p) {
    return p.seed != 0 ? std::make_unique<BlockedBloomFilter>(
                             p.expected_keys, p.bits_per_key, 0, p.seed)
                       : std::make_unique<BlockedBloomFilter>(
                             p.expected_keys, p.bits_per_key);
  };
  entry.build_from_sorted_keys = OfflineViaOnline(entry.build_online);
  entry.deserialize = DeserializeAs<BlockedBloomFilter>;
  return entry;
}

// ----------------------------------------------------------- Prefix Bloom

FilterRegistry::Entry PrefixBloomEntry() {
  FilterRegistry::Entry entry;
  entry.name = "prefix_bloom";
  entry.display_name = "PrefixBloom";
  entry.supports_ranges = true;
  entry.online = true;
  entry.build_online = [](const FilterBuildParams& p) {
    return p.seed != 0
               ? std::make_unique<PrefixBloomFilter>(
                     p.expected_keys, p.bits_per_key, p.prefix_level, p.seed)
               : std::make_unique<PrefixBloomFilter>(
                     p.expected_keys, p.bits_per_key, p.prefix_level);
  };
  entry.build_from_sorted_keys = OfflineViaOnline(entry.build_online);
  entry.deserialize = DeserializeAs<PrefixBloomFilter>;
  return entry;
}

// ----------------------------------------------------------------- Cuckoo

FilterRegistry::Entry CuckooEntry() {
  FilterRegistry::Entry entry;
  entry.name = "cuckoo";
  entry.display_name = "Cuckoo";
  entry.supports_ranges = false;
  entry.online = true;
  entry.build_online = [](const FilterBuildParams& p) {
    return p.seed != 0 ? std::make_unique<CuckooFilter>(p.expected_keys,
                                                        p.fingerprint_bits,
                                                        0.95, p.seed)
                       : std::make_unique<CuckooFilter>(p.expected_keys,
                                                        p.fingerprint_bits);
  };
  entry.build_from_sorted_keys = OfflineViaOnline(entry.build_online);
  entry.deserialize = DeserializeAs<CuckooFilter>;
  return entry;
}

// ---------------------------------------------------------------- Rosetta

FilterRegistry::Entry RosettaEntry() {
  FilterRegistry::Entry entry;
  entry.name = "rosetta";
  entry.display_name = "Rosetta";
  entry.supports_ranges = true;
  entry.online = true;
  entry.build_online = [](const FilterBuildParams& p) {
    Rosetta::Options options;
    options.expected_keys = p.expected_keys;
    options.bits_per_key = p.bits_per_key;
    // Clamp before the float->int cast: doubles at or above 2^63 (e.g.
    // a legacy NewRosettaPolicy(_, UINT64_MAX) call, which rounds up
    // to 2^64) would otherwise cast with undefined behavior.
    double r = std::max(1.0, p.max_range);
    options.max_range = r >= 9223372036854775808.0  // 2^63
                            ? UINT64_MAX
                            : static_cast<uint64_t>(r);
    if (p.seed != 0) options.seed = p.seed;
    return std::make_unique<Rosetta>(options);
  };
  entry.build_from_sorted_keys = OfflineViaOnline(entry.build_online);
  entry.deserialize = DeserializeAs<Rosetta>;
  return entry;
}

// ------------------------------------------------------------------- SuRF

FilterRegistry::Entry SurfEntry() {
  FilterRegistry::Entry entry;
  entry.name = "surf";
  entry.display_name = "SuRF";
  entry.supports_ranges = true;
  entry.online = false;  // offline-built succinct trie
  entry.build_from_sorted_keys = [](const std::vector<uint64_t>& keys,
                                    const FilterBuildParams& p) {
    Surf::Options options;
    options.suffix_type = static_cast<SurfSuffixType>(
        std::min<uint32_t>(p.suffix_type, 2));
    options.suffix_bits = p.suffix_bits;
    return std::make_unique<Surf>(Surf::BuildFromU64(keys, options));
  };
  entry.deserialize = DeserializeAs<Surf>;
  return entry;
}

// --------------------------------------------------------- Fence pointers

FilterRegistry::Entry FencePointersEntry() {
  FilterRegistry::Entry entry;
  entry.name = "fence_pointers";
  entry.display_name = "FencePointers";
  entry.supports_ranges = true;
  entry.online = false;  // built from the sorted key set
  entry.build_from_sorted_keys = [](const std::vector<uint64_t>& keys,
                                    const FilterBuildParams& p) {
    return std::make_unique<FencePointers>(keys, p.bits_per_key);
  };
  entry.deserialize = DeserializeAs<FencePointers>;
  return entry;
}

}  // namespace

// Called by FilterRegistry::Instance() while constructing the
// singleton: built-ins register directly (no static-init ordering
// involved) and therefore always win name collisions against
// macro-registered external backends.
void RegisterBuiltinFilters(FilterRegistry& registry) {
  registry.Register(BloomRFEntry());
  registry.Register(BloomEntry());
  registry.Register(BlockedBloomEntry());
  registry.Register(PrefixBloomEntry());
  registry.Register(CuckooEntry());
  registry.Register(RosettaEntry());
  registry.Register(SurfEntry());
  registry.Register(FencePointersEntry());
}

}  // namespace bloomrf

#include "filters/cuckoo_filter.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/coding.h"
#include "util/hash.h"
#include "util/prefetch.h"
#include "util/simd.h"

namespace bloomrf {

CuckooFilter::CuckooFilter(uint64_t expected_keys, uint32_t fingerprint_bits,
                           double target_occupancy, uint64_t seed)
    : fp_bits_(std::clamp<uint32_t>(fingerprint_bits, 2, 16)), seed_(seed) {
  double slots_needed =
      static_cast<double>(std::max<uint64_t>(expected_keys, 4)) /
      std::clamp(target_occupancy, 0.05, 1.0);
  uint64_t buckets = static_cast<uint64_t>(slots_needed / kSlotsPerBucket) + 1;
  num_buckets_ = std::bit_ceil(std::max<uint64_t>(buckets, 2));
  table_.assign(num_buckets_ * kSlotsPerBucket, 0);
}

uint16_t CuckooFilter::Fingerprint(uint64_t key) const {
  uint64_t h = Hash64(key, seed_ ^ 0xf1f1);
  uint16_t fp = static_cast<uint16_t>(h & ((1u << fp_bits_) - 1));
  return fp == 0 ? 1 : fp;  // 0 marks an empty slot
}

uint64_t CuckooFilter::IndexHash(uint64_t key) const {
  return Hash64(key, seed_) & (num_buckets_ - 1);
}

uint64_t CuckooFilter::AltIndex(uint64_t index, uint16_t fp) const {
  return (index ^ Hash64(fp, seed_ ^ 0xa17a)) & (num_buckets_ - 1);
}

bool CuckooFilter::InsertFp(uint64_t bucket, uint16_t fp) {
  for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
    if (Slot(bucket, s) == 0) {
      Slot(bucket, s) = fp;
      ++occupied_;
      return true;
    }
  }
  return false;
}

void CuckooFilter::Insert(uint64_t key) {
  uint16_t fp = Fingerprint(key);
  uint64_t i1 = IndexHash(key);
  uint64_t i2 = AltIndex(i1, fp);
  if (InsertFp(i1, fp) || InsertFp(i2, fp)) return;
  // Kick a random resident.
  uint64_t bucket = (Hash64(key, seed_ ^ 0x9) & 1) ? i2 : i1;
  uint16_t cur = fp;
  for (uint32_t kick = 0; kick < kMaxKicks; ++kick) {
    uint32_t victim = Hash64(bucket * 0x1007 + kick, seed_) % kSlotsPerBucket;
    std::swap(cur, Slot(bucket, victim));
    bucket = AltIndex(bucket, cur);
    if (InsertFp(bucket, cur)) return;
  }
  // Table effectively full: to preserve the no-false-negative contract
  // the filter degrades to answering true everywhere.
  ++failed_inserts_;
  saturated_ = true;
}

bool CuckooFilter::BucketContains(uint64_t bucket, uint16_t fp) const {
  for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
    if (Slot(bucket, s) == fp) return true;
  }
  return false;
}

bool CuckooFilter::MayContain(uint64_t key) const {
  if (saturated_) return true;
  uint16_t fp = Fingerprint(key);
  uint64_t i1 = IndexHash(key);
  return BucketContains(i1, fp) || BucketContains(AltIndex(i1, fp), fp);
}

void CuckooFilter::MayContainBatch(std::span<const uint64_t> keys,
                                   bool* out) const {
  if (saturated_) {
    std::fill(out, out + keys.size(), true);
    return;
  }
  constexpr size_t kStripe = 32;
  uint16_t fps[kStripe];
  uint64_t b1s[kStripe];
  uint64_t b2s[kStripe];
  for (size_t base = 0; base < keys.size(); base += kStripe) {
    const size_t stripe = std::min(kStripe, keys.size() - base);
    // Plan: both candidate buckets per key, prefetched up front (a
    // 4-slot bucket is 8 contiguous bytes — one line each).
    for (size_t j = 0; j < stripe; ++j) {
      fps[j] = Fingerprint(keys[base + j]);
      b1s[j] = IndexHash(keys[base + j]);
      b2s[j] = AltIndex(b1s[j], fps[j]);
      PrefetchRead(&table_[b1s[j] * kSlotsPerBucket]);
      PrefetchRead(&table_[b2s[j] * kSlotsPerBucket]);
    }
    // Probe: each 4-slot bucket is one 64-bit word of 16-bit lanes;
    // the SWAR kernel tests all four slots (eight per key) at once.
    // Fingerprints are nonzero, so empty slots can never match.
    for (size_t j = 0; j < stripe; ++j) {
      uint64_t bucket1, bucket2;
      std::memcpy(&bucket1, &table_[b1s[j] * kSlotsPerBucket],
                  sizeof bucket1);
      std::memcpy(&bucket2, &table_[b2s[j] * kSlotsPerBucket],
                  sizeof bucket2);
      out[base + j] =
          AnyLaneEq16(bucket1, fps[j]) || AnyLaneEq16(bucket2, fps[j]);
    }
  }
}

bool CuckooFilter::BucketDelete(uint64_t bucket, uint16_t fp) {
  for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
    if (Slot(bucket, s) == fp) {
      Slot(bucket, s) = 0;
      --occupied_;
      return true;
    }
  }
  return false;
}

bool CuckooFilter::Delete(uint64_t key) {
  uint16_t fp = Fingerprint(key);
  uint64_t i1 = IndexHash(key);
  return BucketDelete(i1, fp) || BucketDelete(AltIndex(i1, fp), fp);
}

std::string CuckooFilter::Serialize() const {
  std::string out;
  PutFixed32(&out, fp_bits_);
  PutFixed64(&out, seed_);
  PutFixed64(&out, num_buckets_);
  PutFixed64(&out, occupied_);
  PutFixed64(&out, failed_inserts_);
  out.push_back(saturated_ ? 1 : 0);
  out.reserve(out.size() + table_.size() * 2);
  for (uint16_t slot : table_) {
    out.push_back(static_cast<char>(slot & 0xff));
    out.push_back(static_cast<char>(slot >> 8));
  }
  return out;
}

std::optional<CuckooFilter> CuckooFilter::Deserialize(std::string_view data) {
  constexpr size_t kHeader = 37;
  if (data.size() < kHeader) return std::nullopt;
  uint32_t fp_bits = DecodeFixed32(data.data());
  uint64_t seed = DecodeFixed64(data.data() + 4);
  uint64_t num_buckets = DecodeFixed64(data.data() + 12);
  uint64_t occupied = DecodeFixed64(data.data() + 20);
  uint64_t failed = DecodeFixed64(data.data() + 28);
  bool saturated = data[36] != 0;
  if (fp_bits < 2 || fp_bits > 16 || num_buckets < 2 ||
      !std::has_single_bit(num_buckets) ||
      num_buckets > data.size() / (kSlotsPerBucket * 2)) {
    return std::nullopt;
  }
  uint64_t slots = num_buckets * kSlotsPerBucket;
  if (data.size() != kHeader + slots * 2) return std::nullopt;
  CuckooFilter filter;
  filter.fp_bits_ = fp_bits;
  filter.seed_ = seed;
  filter.num_buckets_ = num_buckets;
  filter.occupied_ = occupied;
  filter.failed_inserts_ = failed;
  filter.saturated_ = saturated;
  filter.table_.resize(slots);
  const char* p = data.data() + kHeader;
  uint64_t nonzero = 0;
  for (uint64_t i = 0; i < slots; ++i) {
    uint16_t fp = static_cast<uint16_t>(
        static_cast<uint8_t>(p[2 * i]) |
        (static_cast<uint16_t>(static_cast<uint8_t>(p[2 * i + 1])) << 8));
    if (fp >= (1u << fp_bits)) return std::nullopt;  // out-of-width fp
    if (fp != 0) ++nonzero;
    filter.table_[i] = fp;
  }
  // Invariants maintained by Insert/Delete: every successful insert
  // fills exactly one slot, and saturation is flagged iff an insert
  // failed. Reject counters a corrupt block cannot have produced.
  if (occupied != nonzero || (failed != 0) != saturated) {
    return std::nullopt;
  }
  return filter;
}

}  // namespace bloomrf

// Rosetta baseline (Luo et al., SIGMOD'20; paper [29], Sect. 6 and the
// whole evaluation).
//
// One Bloom filter per dyadic level: level l stores the prefixes
// key >> l for l = 0..L-1 where L = ceil(log2 R) + 1 covers the
// configured maximum range. Range queries decompose [lo, hi] into
// canonical dyadic intervals and probe each with *doubting*: a positive
// on level l is only believed after a positive descendant chain reaches
// the exact bottom-level filter, giving the characteristic
// O(log R)..O(R) probe cost the paper contrasts with bloomRF's O(k).
//
// Memory allocation variants (paper Sect. 6):
//  - kFirstCut (F): bottom level sized for the target FPR, every upper
//    level sized for FPR 1/(2 - eps) ~ 0.5 (log2(e) bits/key each);
//  - kBottomHeavy (V-like): upper levels at 0.5 FPR, the remaining
//    budget split 3:1 between the bottom two levels;
//  - kOptimized (O-like): per-level budgets from an equal-marginal-
//    benefit allocation under the standard BF FPR model, with the
//    bottom level weighted by its doubting fan-in;
//  - kSingleLevel (S): only the bottom filter; range probes enumerate
//    the interval (linear, capped).

#ifndef BLOOMRF_FILTERS_ROSETTA_H_
#define BLOOMRF_FILTERS_ROSETTA_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "filters/bloom_filter.h"
#include "filters/filter.h"

namespace bloomrf {

class Rosetta : public OnlineFilter {
 public:
  enum class Variant { kFirstCut, kBottomHeavy, kOptimized, kSingleLevel };

  struct Options {
    uint64_t expected_keys = 0;
    double bits_per_key = 16;
    uint64_t max_range = 64;  ///< R: largest supported query range
    Variant variant = Variant::kBottomHeavy;
    uint64_t seed = 0x705e77a;
  };

  explicit Rosetta(const Options& options);

  std::string Name() const override { return "Rosetta"; }

  void Insert(uint64_t key) override;
  bool MayContain(uint64_t key) const override;
  bool MayContainRange(uint64_t lo, uint64_t hi) const override;

  /// Planned batch range probe: decomposes every query up front and
  /// prefetches the root probe of each dyadic piece (the first Bloom
  /// test Doubt will run) before the scalar doubting descents execute.
  void MayContainRangeBatch(std::span<const uint64_t> los,
                            std::span<const uint64_t> his,
                            bool* out) const override;

  uint64_t MemoryBits() const override;

  size_t num_levels() const { return levels_.size(); }

  /// Total bottom-level Bloom probes of the last range query issued on
  /// this thread — exposes the doubting cost (Fig. 12.G style
  /// breakdowns).
  uint64_t last_probe_count() const { return last_probes_; }

  /// Serializes the options and every per-level Bloom filter.
  std::string Serialize() const override;
  static std::optional<Rosetta> Deserialize(std::string_view data);

 private:
  Rosetta() = default;

  bool Doubt(uint64_t prefix, uint32_t level, uint64_t& probes) const;

  /// Doubts an already-computed decomposition (shared by the scalar
  /// range probe and the planned batch, which decomposes once in its
  /// planning pass). Updates last_probes_.
  bool DoubtDecomposition(
      const std::vector<std::pair<uint64_t, uint32_t>>& pieces) const;

  Options options_;
  std::vector<std::unique_ptr<BloomFilter>> levels_;  // index = level
  mutable uint64_t last_probes_ = 0;
  static constexpr uint64_t kMaxDecomposition = 1ULL << 14;
  /// Per-query bound on doubting probes; beyond it range probes answer
  /// a conservative true (bounds hostile/saturated filters).
  static constexpr uint64_t kMaxDoubtProbes = 1ULL << 20;
};

/// Canonical dyadic decomposition of the inclusive interval [lo, hi]
/// into at most 2*64 (prefix, level) pairs with level <= max_level;
/// intervals wider than max_level split into multiple entries (capped
/// by `cap`; returns false if the cap is exceeded). Shared with tests.
bool DyadicDecompose(uint64_t lo, uint64_t hi, uint32_t max_level,
                     uint64_t cap,
                     std::vector<std::pair<uint64_t, uint32_t>>* out);

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_ROSETTA_H_

// bloomRF as a PointRangeFilter: a thin adapter over core/bloomrf.h so
// the unified filter stack (registry, LSM policy, benches) can treat
// bloomRF like every baseline. The core BloomRF class stays
// vtable-free for the hot standalone benchmarks.

#ifndef BLOOMRF_FILTERS_BLOOMRF_FILTER_H_
#define BLOOMRF_FILTERS_BLOOMRF_FILTER_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/bloomrf.h"
#include "filters/filter.h"

namespace bloomrf {

class BloomRFFilter : public OnlineFilter {
 public:
  explicit BloomRFFilter(BloomRF filter) : impl_(std::move(filter)) {}

  /// Advisor-tuned construction from the (n, space budget, max range)
  /// triple — the configuration path the LSM policy and benches use.
  /// `seed` == 0 keeps the advisor's default hash seed.
  static BloomRFFilter Advised(uint64_t n, double bits_per_key,
                               double max_range, uint32_t domain_bits = 64,
                               uint64_t seed = 0);

  std::string Name() const override { return "bloomRF"; }

  void Insert(uint64_t key) override { impl_.Insert(key); }
  bool MayContain(uint64_t key) const override {
    return impl_.MayContain(key);
  }
  bool MayContainRange(uint64_t lo, uint64_t hi) const override {
    return impl_.MayContainRange(lo, hi);
  }
  /// Planned batch probes: one virtual call per batch, then the core
  /// hash-once/prefetch engine (core/bloomrf.cc).
  void MayContainBatch(std::span<const uint64_t> keys,
                       bool* out) const override {
    impl_.MayContainBatch(keys, out);
  }
  void MayContainRangeBatch(std::span<const uint64_t> los,
                            std::span<const uint64_t> his,
                            bool* out) const override {
    impl_.MayContainRangeBatch(los, his, out);
  }

  uint64_t MemoryBits() const override { return impl_.MemoryBits(); }
  std::string Serialize() const override { return impl_.Serialize(); }

  static std::optional<BloomRFFilter> Deserialize(std::string_view data);

  const BloomRF& impl() const { return impl_; }
  BloomRF& impl() { return impl_; }

 private:
  BloomRF impl_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_BLOOMRF_FILTER_H_

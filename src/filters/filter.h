// Unified interface of all point/range filters in the library
// (bloomRF and the baselines of paper Sect. 9).
//
// Semantics: a filter answers approximate membership — `false` is
// definite ("no inserted key matches"), `true` may be a false positive.
// Point-only filters (plain Bloom, Cuckoo) answer every range probe
// with a conservative `true`.
//
// A PointRangeFilter carries the union of the standalone-filter and
// LSM-probe contracts: probing (point, range, batched), bits/key
// accounting, and serialization. Serialized payloads round-trip through
// the FilterRegistry (filters/registry.h), which frames them as
// `name | payload` so any stored filter block is self-describing.

#ifndef BLOOMRF_FILTERS_FILTER_H_
#define BLOOMRF_FILTERS_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace bloomrf {

class PointRangeFilter {
 public:
  virtual ~PointRangeFilter() = default;

  /// Canonical display name ("bloomRF", "Rosetta", ...). The registry
  /// additionally knows each filter under a stable lower-case key.
  virtual std::string Name() const = 0;

  /// Approximate point membership.
  virtual bool MayContain(uint64_t key) const = 0;

  /// Approximate emptiness of the inclusive interval [lo, hi].
  virtual bool MayContainRange(uint64_t lo, uint64_t hi) const = 0;

  /// Batched point probe for throughput-oriented callers: out[i] is the
  /// MayContain answer for keys[i]. The default loops; backends may
  /// override with interleaved/prefetched probes.
  virtual void MayContainBatch(std::span<const uint64_t> keys,
                               bool* out) const {
    for (size_t i = 0; i < keys.size(); ++i) out[i] = MayContain(keys[i]);
  }

  /// Batched range probe: out[i] is the MayContainRange answer for
  /// [los[i], his[i]]. `los` and `his` must have equal length. The
  /// default loops; bloomRF overrides with a planned (prefetching)
  /// probe.
  virtual void MayContainRangeBatch(std::span<const uint64_t> los,
                                    std::span<const uint64_t> his,
                                    bool* out) const {
    for (size_t i = 0; i < los.size(); ++i) {
      out[i] = MayContainRange(los[i], his[i]);
    }
  }

  /// Logical filter size in bits (what the paper's bits/key accounting
  /// charges).
  virtual uint64_t MemoryBits() const = 0;

  /// Serializes the filter payload (no name framing — see
  /// FilterRegistry::Serialize for the framed, self-describing form).
  virtual std::string Serialize() const = 0;
};

/// Transitional alias: the pre-registry codebase called this Filter.
using Filter = PointRangeFilter;

/// Filters supporting online insertion (bloomRF, Bloom variants,
/// Rosetta, Cuckoo). SuRF and fence pointers are offline-built.
class OnlineFilter : public PointRangeFilter {
 public:
  virtual void Insert(uint64_t key) = 0;
};

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_FILTER_H_

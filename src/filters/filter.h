// Common interface of all point/range filters in the evaluation
// (bloomRF and the baselines of paper Sect. 9).
//
// Semantics: a filter answers approximate membership — `false` is
// definite ("no inserted key matches"), `true` may be a false positive.
// Point-only filters (plain Bloom, Cuckoo) answer every range probe
// with a conservative `true`.

#ifndef BLOOMRF_FILTERS_FILTER_H_
#define BLOOMRF_FILTERS_FILTER_H_

#include <cstdint>
#include <string>

namespace bloomrf {

class Filter {
 public:
  virtual ~Filter() = default;

  virtual std::string Name() const = 0;

  /// Approximate point membership.
  virtual bool MayContain(uint64_t key) const = 0;

  /// Approximate emptiness of the inclusive interval [lo, hi].
  virtual bool MayContainRange(uint64_t lo, uint64_t hi) const = 0;

  /// Logical filter size in bits (what the paper's bits/key accounting
  /// charges).
  virtual uint64_t MemoryBits() const = 0;
};

/// Filters supporting online insertion (bloomRF, Bloom variants,
/// Rosetta, Cuckoo). SuRF and fence pointers are offline-built.
class OnlineFilter : public Filter {
 public:
  virtual void Insert(uint64_t key) = 0;
};

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_FILTER_H_

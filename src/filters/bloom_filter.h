// Standard Bloom filter baseline (paper Sect. 2), LevelDB/RocksDB-style
// full filter: k = round(ln 2 * bits_per_key) probes via
// Kirsch-Mitzenmacher double hashing over a single shared bit array.

#ifndef BLOOMRF_FILTERS_BLOOM_FILTER_H_
#define BLOOMRF_FILTERS_BLOOM_FILTER_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "filters/filter.h"
#include "util/bit_array.h"
#include "util/hash.h"

namespace bloomrf {

class BloomFilter : public OnlineFilter {
 public:
  /// `num_hashes` == 0 derives the optimal k = floor(ln2 * m/n) from
  /// the budget (floored, as RocksDB does).
  BloomFilter(uint64_t expected_keys, double bits_per_key,
              uint32_t num_hashes = 0, uint64_t seed = 0xb1003);

  std::string Name() const override { return "Bloom"; }

  void Insert(uint64_t key) override;
  bool MayContain(uint64_t key) const override;

  /// Planned batch probe, KM-hashing each key exactly once. Filters up
  /// to 8 MB resolve all k probe positions up front, prefetch every
  /// line, and test 4 keys per SIMD lane group; larger filters fall
  /// back to the scalar early-exit probe with only each key's first
  /// probe line prefetched (exhaustive prefetch costs more bandwidth
  /// than it hides latency there).
  void MayContainBatch(std::span<const uint64_t> keys,
                       bool* out) const override;

  /// Point-only filter: ranges cannot be excluded.
  bool MayContainRange(uint64_t, uint64_t) const override { return true; }

  uint64_t MemoryBits() const override { return bits_.size_bits(); }

  uint32_t num_hashes() const { return k_; }

  /// Starts pulling all k probe blocks of `key` into cache — the
  /// planning half of a future MayContain(key) (used by Rosetta's
  /// planned range batch to prefetch per-level probes).
  void PrefetchKey(uint64_t key) const {
    uint64_t h1 = Hash64(key, seed_);
    uint64_t h2 = Hash64(key, seed_ ^ 0x5bd1e995);
    for (uint32_t i = 0; i < k_; ++i) {
      bits_.PrefetchBit(
          FastRange64(DoubleHashProbe(h1, h2, i), bits_.size_bits()));
    }
  }

  /// Raw block access for the Fig. 5 scatter comparison.
  uint64_t Block(uint64_t i) const { return bits_.LoadBlock(i); }
  uint64_t Blocks() const { return bits_.size_blocks(); }

  /// Serializes k, seed and the bit array (LSM filter blocks).
  std::string Serialize() const override;
  static std::optional<BloomFilter> Deserialize(std::string_view data);

 private:
  BloomFilter() : k_(1), seed_(0) {}
  BitArray bits_;
  uint32_t k_;
  uint64_t seed_;
};

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_BLOOM_FILTER_H_

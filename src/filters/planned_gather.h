// Shared probe engine of the Bloom-family planned batch paths
// (filters/bloom_filter.cc small-filter regime, blocked_bloom): a
// planning callback resolves each key's probe rounds to (block index,
// bit mask) pairs and issues its prefetches; the engine then tests 4
// keys per SIMD lane group per round with group-level early exit, on
// lines already in flight. Keeping the stripe layout, tail-lane
// zero-padding and lane-group loop here means the contract ("mask 0
// never hits, block 0 is always in bounds") lives in exactly one
// place.

#ifndef BLOOMRF_FILTERS_PLANNED_GATHER_H_
#define BLOOMRF_FILTERS_PLANNED_GATHER_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "util/simd.h"

namespace bloomrf {

/// Keys per planning stripe: large enough that prefetches land before
/// the probe pass reads them, small enough that the planned lines are
/// still resident.
inline constexpr size_t kPlannedGatherStripe = 32;

/// Runs the plan-then-gather engine over `keys`, writing MayContain
/// answers to `out`. `plan(key, idx_col, msk_col)` must fill round i
/// of its key at `idx_col[i * kPlannedGatherStripe]` /
/// `msk_col[i * kPlannedGatherStripe]` (block index into `raw` and
/// right-aligned bit mask — a key passes iff every round's
/// `raw[idx] & msk` is nonzero) and issue whatever prefetches the
/// backend wants.
template <class PlanFn>
void RunPlannedGatherBatch(std::span<const uint64_t> keys, bool* out,
                           const uint64_t* raw, uint32_t rounds,
                           PlanFn&& plan) {
  constexpr size_t kStripe = kPlannedGatherStripe;
  std::vector<uint64_t> idx(rounds * kStripe, 0);
  std::vector<uint64_t> msk(rounds * kStripe, 0);
  for (size_t base = 0; base < keys.size(); base += kStripe) {
    const size_t stripe = std::min(kStripe, keys.size() - base);
    if (stripe < kStripe) {
      // Zero-pad the tail lanes: mask 0 never tests positive and block
      // 0 is always in bounds, so partial lane groups stay safe.
      std::fill(idx.begin(), idx.end(), 0);
      std::fill(msk.begin(), msk.end(), 0);
    }
    for (size_t j = 0; j < stripe; ++j) {
      plan(keys[base + j], &idx[j], &msk[j]);
    }
    for (size_t g = 0; g < stripe; g += 4) {
      uint32_t alive = 0xF;
      for (uint32_t i = 0; alive != 0 && i < rounds; ++i) {
        alive &= GatherTestNonzero4(raw, &idx[i * kStripe + g],
                                    &msk[i * kStripe + g]);
      }
      const size_t lanes = std::min<size_t>(4, stripe - g);
      for (size_t lane = 0; lane < lanes; ++lane) {
        out[base + g + lane] = (alive >> lane) & 1;
      }
    }
  }
}

}  // namespace bloomrf

#endif  // BLOOMRF_FILTERS_PLANNED_GATHER_H_

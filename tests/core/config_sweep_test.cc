// Exhaustive configuration sweep on a small domain: for every layer
// layout (delta vectors, replicas, segments, exact layer, permutation)
// the filter must agree with ground truth on *all* point queries and a
// dense sample of intervals — the strongest form of the one-sided-
// error property.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/bloomrf.h"
#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::GroundTruthRange;
using ::bloomrf::testing::RandomKeySet;

struct ConfigCase {
  std::string name;
  BloomRFConfig config;
};

std::vector<ConfigCase> SmallDomainConfigs() {
  std::vector<ConfigCase> cases;
  auto add = [&](std::string name, std::vector<uint8_t> delta,
                 std::vector<uint8_t> replicas,
                 std::vector<uint8_t> segment_of,
                 std::vector<uint64_t> segment_bits, bool exact,
                 bool permute) {
    BloomRFConfig cfg;
    cfg.domain_bits = 14;
    cfg.delta = std::move(delta);
    cfg.replicas = std::move(replicas);
    cfg.segment_of = std::move(segment_of);
    cfg.segment_bits = std::move(segment_bits);
    cfg.has_exact_layer = exact;
    cfg.permute_words = permute;
    ASSERT_TRUE(cfg.Validate().empty())
        << name << ": " << cfg.Validate();
    cases.push_back({std::move(name), std::move(cfg)});
  };

  add("uniform_delta3", {3, 3, 3, 3}, {1, 1, 1, 1}, {0, 0, 0, 0}, {2048},
      false, false);
  add("uniform_delta4", {4, 4, 4}, {1, 1, 1}, {0, 0, 0}, {2048}, false,
      false);
  add("mixed_ladder", {4, 3, 2, 2}, {1, 1, 1, 1}, {0, 0, 0, 0}, {2048},
      false, false);
  add("delta1_planar", {1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
      {1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, {0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
      {2048}, false, false);
  add("replicated_top", {4, 4, 4}, {1, 1, 3}, {0, 0, 0}, {2048}, false,
      false);
  add("two_segments", {4, 3, 3}, {1, 1, 2}, {1, 0, 0}, {1024, 1024}, false,
      false);
  add("exact_layer", {4, 4}, {1, 1}, {0, 0}, {1024}, true, false);
  add("exact_plus_ladder", {4, 3, 2}, {1, 2, 2}, {1, 0, 0}, {512, 1024},
      true, false);
  add("permuted", {4, 4, 4}, {1, 1, 1}, {0, 0, 0}, {2048}, false, true);
  add("permuted_exact", {4, 4}, {2, 1}, {0, 0}, {1024}, true, true);
  return cases;
}

class ConfigSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ConfigSweepTest, ExhaustivePointsAndSampledRanges) {
  std::vector<ConfigCase> cases;
  SmallDomainConfigs().swap(cases);
  const ConfigCase& test_case = cases[GetParam()];
  constexpr uint64_t kDomain = 1 << 14;

  auto keys = RandomKeySet(300, 999 + GetParam(), kDomain);
  BloomRF filter(test_case.config);
  for (uint64_t k : keys) filter.Insert(k);

  // Exhaustive points.
  for (uint64_t y = 0; y < kDomain; ++y) {
    if (keys.count(y)) {
      ASSERT_TRUE(filter.MayContain(y))
          << test_case.name << " point " << y;
    }
  }
  // Dense interval sample: all intervals starting at multiples of 11
  // with lengths 2^j and 2^j +- 1.
  for (uint64_t lo = 0; lo < kDomain; lo += 11) {
    for (uint32_t j = 0; j <= 14; j += 2) {
      for (int64_t adjust : {-1, 0, 1}) {
        int64_t len = static_cast<int64_t>(uint64_t{1} << j) + adjust;
        if (len < 1) continue;
        uint64_t hi = std::min<uint64_t>(kDomain - 1,
                                         lo + static_cast<uint64_t>(len) - 1);
        if (GroundTruthRange(keys, lo, hi)) {
          ASSERT_TRUE(filter.MayContainRange(lo, hi))
              << test_case.name << " [" << lo << "," << hi << "]";
        }
      }
    }
  }
}

const char* kConfigNames[] = {
    "uniform_delta3", "uniform_delta4",    "mixed_ladder",
    "delta1_planar",  "replicated_top",    "two_segments",
    "exact_layer",    "exact_plus_ladder", "permuted",
    "permuted_exact"};

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConfigSweepTest,
                         ::testing::Range<size_t>(0, 10),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return std::string(kConfigNames[info.param]);
                         });

}  // namespace
}  // namespace bloomrf

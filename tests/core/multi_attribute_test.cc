#include "core/multi_attribute.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"
#include "workload/synthetic_sdss.h"

namespace bloomrf {
namespace {

MultiAttributeBloomRF MakeFilter(uint64_t pairs, double bits_per_key = 18.0) {
  // Sized for 2x pairs: each pair inserts both orders.
  return MultiAttributeBloomRF(BloomRFConfig::Basic(pairs * 2, bits_per_key));
}

TEST(MultiAttributeTest, PointPointNoFalseNegatives) {
  auto filter = MakeFilter(10000);
  Rng rng(81);
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (int i = 0; i < 10000; ++i) {
    pairs.emplace_back(rng.Next(), rng.Next());
    filter.Insert(pairs.back().first, pairs.back().second);
  }
  for (auto& [a, b] : pairs) {
    EXPECT_TRUE(filter.MayMatchPointPoint(a, b));
  }
}

TEST(MultiAttributeTest, RangePointNoFalseNegatives) {
  auto filter = MakeFilter(10000);
  Rng rng(82);
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (int i = 0; i < 10000; ++i) {
    pairs.emplace_back(rng.Next(), rng.Next());
    filter.Insert(pairs.back().first, pairs.back().second);
  }
  for (auto& [a, b] : pairs) {
    uint64_t lo = a >= (uint64_t{1} << 40) ? a - (uint64_t{1} << 40) : 0;
    uint64_t hi = a <= UINT64_MAX - (uint64_t{1} << 40)
                      ? a + (uint64_t{1} << 40)
                      : UINT64_MAX;
    EXPECT_TRUE(filter.MayMatchRangePoint(lo, hi, b));
    EXPECT_TRUE(filter.MayMatchPointRange(a, b, hi >= b ? hi : b));
  }
}

TEST(MultiAttributeTest, ReductionIsMonotone) {
  EXPECT_LE(MultiAttributeBloomRF::Reduce(100),
            MultiAttributeBloomRF::Reduce(uint64_t{1} << 40));
  EXPECT_LT(MultiAttributeBloomRF::Reduce(uint64_t{1} << 40),
            MultiAttributeBloomRF::Reduce(uint64_t{1} << 50));
}

TEST(MultiAttributeTest, DiscriminatesUnrelatedPairs) {
  auto filter = MakeFilter(20000, 20.0);
  Rng rng(83);
  for (int i = 0; i < 20000; ++i) {
    // Attributes live in disjoint high-bit regions (1 and 2).
    uint64_t a = (uint64_t{1} << 62) | (rng.Next() >> 8);
    uint64_t b = (uint64_t{2} << 62) | (rng.Next() >> 8);
    filter.Insert(a, b);
  }
  // Queries with B from region 3 (never inserted) must mostly miss.
  // Vary B per query: after reduction each probe targets a distinct
  // <B,A> range.
  uint64_t fp = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t bogus_b = (uint64_t{3} << 62) | (rng.Next() >> 2);
    uint64_t a_lo = uint64_t{1} << 62;
    uint64_t a_hi = a_lo + (rng.Next() >> 24);
    if (filter.MayMatchRangePoint(a_lo, a_hi, bogus_b)) ++fp;
  }
  EXPECT_LT(fp, 1500u);
}

TEST(MultiAttributeTest, SdssShapedWorkload) {
  // The Fig. 12.F scenario: filter(Run, ObjectID) probed with
  // Run < 300 AND ObjectID = const.
  SdssOptions options;
  options.num_rows = 30000;
  auto rows = GenerateSdssRows(options);
  auto filter = MakeFilter(rows.size(), 20.0);
  for (const auto& row : rows) filter.Insert(row.run, row.object_id);
  // Every actual row with run < 300 must be found via its object id.
  for (const auto& row : rows) {
    if (row.run < 300) {
      EXPECT_TRUE(filter.MayMatchRangePoint(0, 299, row.object_id));
    }
  }
}

}  // namespace
}  // namespace bloomrf

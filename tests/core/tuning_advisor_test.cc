#include "core/tuning_advisor.h"

#include <gtest/gtest.h>

#include "core/bloomrf.h"
#include "tests/test_util.h"
#include "util/timer.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::RandomKeySet;

TEST(TuningAdvisorTest, ProducesValidConfigs) {
  for (double bpk : {10.0, 14.0, 18.0, 22.0}) {
    for (double range : {64.0, 1e4, 1e7, 1e10}) {
      AdvisorParams params;
      params.n = 1'000'000;
      params.total_bits = static_cast<uint64_t>(bpk * 1e6);
      params.max_range = range;
      AdvisorResult result = AdviseConfig(params);
      EXPECT_TRUE(result.config.Validate().empty())
          << bpk << " " << range << ": " << result.config.Validate();
      EXPECT_LE(result.expected_point_fpr, 1.0);
      EXPECT_LE(result.expected_range_fpr, 1.0);
    }
  }
}

TEST(TuningAdvisorTest, StaysWithinBudget) {
  AdvisorParams params;
  params.n = 500'000;
  params.total_bits = 16 * params.n;
  params.max_range = 1e9;
  AdvisorResult result = AdviseConfig(params);
  // Allow rounding slack of one 64-bit word per segment.
  EXPECT_LE(result.config.TotalBits(),
            params.total_bits + 64 * result.config.segment_bits.size());
}

TEST(TuningAdvisorTest, PaperExampleShape50MKeys) {
  // Sect. 7: n=50M, 14 bits/key, d=64 -> exact level around 36, delta
  // ladder (7,7,7,7,4,2,2)-like, replicated hash on the top layer.
  AdvisorParams params;
  params.n = 50'000'000;
  params.total_bits = 14 * params.n;
  params.max_range = 1e10;
  AdvisorResult result = AdviseConfig(params);
  ASSERT_TRUE(result.config.has_exact_layer);
  uint32_t exact_level = result.config.TopLevel();
  EXPECT_GE(exact_level, 34u);
  EXPECT_LE(exact_level, 38u);
  // Bottom layers use delta 7.
  EXPECT_EQ(result.config.delta[0], 7);
  // Exact bitmap obeys the <= 60% heuristic.
  EXPECT_LT(static_cast<double>(result.config.ExactBits()),
            0.6 * static_cast<double>(params.total_bits) + 1);
}

TEST(TuningAdvisorTest, SmallBudgetFallsBackToBasic) {
  AdvisorParams params;
  params.n = 1000;
  params.total_bits = 8 * params.n;  // too small for any exact bitmap
  params.max_range = 16;
  AdvisorResult result = AdviseConfig(params);
  EXPECT_TRUE(result.config.Validate().empty());
  EXPECT_EQ(result.config.segment_bits.size(),
            result.config.has_exact_layer ? 2u : 1u);
}

TEST(TuningAdvisorTest, LargerRangeTargetsShiftTradeoff) {
  AdvisorParams small;
  small.n = 1'000'000;
  small.total_bits = 18 * small.n;
  small.max_range = 64;
  AdvisorParams large = small;
  large.max_range = 1e10;
  double small_range_fpr = AdviseConfig(small).expected_range_fpr;
  double large_range_fpr = AdviseConfig(large).expected_range_fpr;
  // Larger ranges are strictly harder at equal budget.
  EXPECT_LE(small_range_fpr, large_range_fpr + 1e-12);
}

TEST(TuningAdvisorTest, AdvisedBeatsBasicOnLargeRanges) {
  // The whole point of Sect. 7: for R >= ~2^20 the segmented/exact
  // configuration should beat tuning-free basic bloomRF.
  auto keys = RandomKeySet(100000, 61);
  AdvisorParams params;
  params.n = keys.size();
  params.total_bits = 20 * keys.size();
  params.max_range = 1e9;
  AdvisorResult advised = AdviseConfig(params);
  ASSERT_TRUE(advised.config.has_exact_layer);

  BloomRFConfig basic = BloomRFConfig::Basic(keys.size(), 20.0);
  auto measure = [&](const BloomRFConfig& cfg) {
    BloomRF filter(cfg);
    for (uint64_t k : keys) filter.Insert(k);
    Rng rng(62);
    uint64_t fp = 0, neg = 0;
    for (int i = 0; i < 20000; ++i) {
      uint64_t lo = rng.Next();
      uint64_t hi = lo > UINT64_MAX - 1000000000 ? UINT64_MAX
                                                 : lo + 1000000000;
      auto it = keys.lower_bound(lo);
      if (it != keys.end() && *it <= hi) continue;
      ++neg;
      if (filter.MayContainRange(lo, hi)) ++fp;
    }
    return static_cast<double>(fp) / static_cast<double>(neg);
  };
  double advised_fpr = measure(advised.config);
  double basic_fpr = measure(basic);
  EXPECT_LT(advised_fpr, basic_fpr + 0.01);
}

TEST(TuningAdvisorTest, AdvisorIsFast) {
  // Paper: "The auto-tuning process is inexpensive, ~8ms".
  Timer timer;
  AdvisorParams params;
  params.n = 50'000'000;
  params.total_bits = 16 * params.n;
  params.max_range = 1e10;
  AdviseConfig(params);
  EXPECT_LT(timer.ElapsedSeconds(), 0.5);
}

}  // namespace
}  // namespace bloomrf

// The paper's worked examples (Figs. 2, 3, 4, 6, 7) pin down the
// *algebra* of prefix hashing and PMHF. Our hash functions differ from
// the didactic a_i + b_i*x of Fig. 3, so bit positions differ, but
// every structural property the figures demonstrate must hold:
//  - eq. (2): a prefix of a prefix is a prefix;
//  - eq. (4): equal level-l prefixes => equal code prefixes;
//  - PMHF in-word adjacency: prefixes differing only in the low
//    delta-1 bits of a level share a word with adjacent offsets;
//  - the Fig. 7 decomposition of I=[45,60] with d=16.

#include <gtest/gtest.h>

#include <set>

#include "core/bloomrf.h"
#include "util/random.h"
#include "filters/rosetta.h"  // DyadicDecompose shared helper

namespace bloomrf {
namespace {

TEST(WorkedExamplesTest, PrefixOfPrefixIdentity) {
  // eq. (2): y >> l == (y >> l') >> (l - l') for l > l'.
  uint64_t y = 0x0000000000101010ULL;  // key 42's pattern from Fig. 2
  for (uint32_t lp = 0; lp < 32; ++lp) {
    for (uint32_t l = lp; l < 40; ++l) {
      EXPECT_EQ(y >> l, (y >> lp) >> (l - lp));
    }
  }
}

TEST(WorkedExamplesTest, Figure3PrefixCorrespondence) {
  // Keys 42 and 43 share the prefix 0x002 on level 4 (d=16, delta=4);
  // prefix hashing (eq. 4) demands their codes agree on layers >= 1 —
  // observable as: inserting 42 makes every covering DI of 43 above
  // level 4 probe positive.
  BloomRF filter(BloomRFConfig::Basic(3, 10.0, 16, 4));
  filter.Insert(42);
  // [32,47] is the level-4 DI containing both 42 and 43 (prefix 0x002).
  EXPECT_TRUE(filter.MayContainRange(32, 47));
  // Keys 48..63 have level-4 prefix 0x003; with only {42} inserted the
  // DI [48,63] must be clean unless a hash collision occurred — accept
  // both, but the point query for 43 must be able to fail only at the
  // bottom layer. Check the paper's concrete claims instead:
  EXPECT_TRUE(filter.MayContain(42));
  EXPECT_TRUE(filter.MayContainRange(42, 43));  // word-shared probe
  EXPECT_TRUE(filter.MayContainRange(40, 47));
}

TEST(WorkedExamplesTest, Figure3IntroductoryExample) {
  // X = {42, 1414, 50000}, d=16, delta=4 (Fig. 3.B / Fig. 4).
  BloomRF filter(BloomRFConfig::Basic(3, 10.0, 16, 4));
  for (uint64_t k : {42u, 1414u, 50000u}) filter.Insert(k);
  EXPECT_TRUE(filter.MayContain(42));
  EXPECT_TRUE(filter.MayContain(1414));
  EXPECT_TRUE(filter.MayContain(50000));
  // [32,47] contains 42 -> positive (paper's example probe).
  EXPECT_TRUE(filter.MayContainRange(32, 47));
  // Fig. 4's [44,47] example yields negative in the paper; with our
  // hashes it must at minimum never report a false negative for the
  // occupied sibling range.
  EXPECT_TRUE(filter.MayContainRange(40, 43));
}

TEST(WorkedExamplesTest, PmhfInWordAdjacency) {
  // Keys sharing all bits except the low delta-1 bits of a layer map
  // to the same word with adjacent in-word offsets; observable via
  // WordIndexForKey equality.
  BloomRFConfig cfg = BloomRFConfig::Basic(1000, 14.0, 64, 7);
  BloomRF filter(cfg);
  uint64_t base = 0xabcdef0123456740ULL;  // low 6 bits zero
  for (uint64_t off = 0; off < 64; ++off) {
    EXPECT_EQ(filter.WordIndexForKey(base, 0, 0),
              filter.WordIndexForKey(base + off, 0, 0))
        << off;
  }
  // Crossing the word boundary must (almost surely) change the word.
  EXPECT_NE(filter.WordIndexForKey(base, 0, 0),
            filter.WordIndexForKey(base + 64, 0, 0));
}

TEST(WorkedExamplesTest, Figure7DecompositionOfI45to60) {
  // I=[45,60] decomposes into [45,45] [46,47] [48,55] [56,59] [60,60].
  std::vector<std::pair<uint64_t, uint32_t>> pieces;
  ASSERT_TRUE(DyadicDecompose(45, 60, /*max_level=*/16, 64, &pieces));
  // Expected canonical pieces as (prefix, level).
  std::vector<std::pair<uint64_t, uint32_t>> expected = {
      {45, 0},      // [45,45]
      {46 >> 1, 1}, // [46,47]
      {48 >> 3, 3}, // [48,55]
      {56 >> 2, 2}, // [56,59]
      {60, 0},      // [60,60]
  };
  EXPECT_EQ(pieces, expected);
}

TEST(WorkedExamplesTest, Figure7RangeProbeSemantics) {
  // With 45 inserted, [45,60] and all covering DIs must be positive.
  BloomRF filter(BloomRFConfig::Basic(8, 12.0, 16, 4));
  filter.Insert(45);
  EXPECT_TRUE(filter.MayContainRange(45, 60));
  EXPECT_TRUE(filter.MayContainRange(32, 47));   // J_4^l
  EXPECT_TRUE(filter.MayContainRange(0, 65535)); // J_16
  // With 60 inserted instead, the mirror path must fire.
  BloomRF filter2(BloomRFConfig::Basic(8, 12.0, 16, 4));
  filter2.Insert(60);
  EXPECT_TRUE(filter2.MayContainRange(45, 60));
  EXPECT_TRUE(filter2.MayContainRange(48, 63));  // J_4^r
}

TEST(WorkedExamplesTest, Figure6HierarchicalErrorCorrection) {
  // Higher layers correct lower-layer errors: an interval whose
  // bottom-layer word happens to collide is still rejected when its
  // covering bit on a higher layer is clean. Statistically: the FPR
  // of a multi-layer filter on mid-size ranges must beat a
  // single-layer filter of the same size.
  std::set<uint64_t> keys;
  Rng rng(77);
  while (keys.size() < 5000) keys.insert(rng.Uniform(uint64_t{1} << 32));

  auto fpr = [&](uint32_t domain_bits, uint32_t delta) {
    BloomRF filter(BloomRFConfig::Basic(keys.size(), 12.0, domain_bits, delta));
    for (uint64_t k : keys) filter.Insert(k);
    uint64_t fp = 0, neg = 0;
    Rng q(78);
    for (int i = 0; i < 20000; ++i) {
      uint64_t lo = q.Uniform(uint64_t{1} << 32);
      uint64_t hi = lo + 255;
      auto it = keys.lower_bound(lo);
      if (it != keys.end() && *it <= hi) continue;
      ++neg;
      if (filter.MayContainRange(lo, hi)) ++fp;
    }
    return static_cast<double>(fp) / static_cast<double>(neg);
  };
  // delta=7 (5 layers over 32-bit domain) vs delta 7 but domain treated
  // flat is not constructible; compare against near-planar delta with
  // fewer error-correcting layers above the range level.
  double layered = fpr(32, 4);  // ~7 layers; several above level 8
  EXPECT_LT(layered, 0.5);
}

}  // namespace
}  // namespace bloomrf

// bloomRF is an online, lock-free structure (paper Problem 2 and
// Fig. 12.A/B): lookups run concurrently with insertions. These tests
// pin the memory-visibility contract: a key inserted before a probe
// (happens-before via thread join or acquire/release flag) is always
// found, under concurrent writer load.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/bloomrf.h"
#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::RandomKeySet;

TEST(ConcurrencyTest, ParallelInsertsAllVisibleAfterJoin) {
  auto keyset = RandomKeySet(80000, 91);
  std::vector<uint64_t> keys(keyset.begin(), keyset.end());
  BloomRF filter(BloomRFConfig::Basic(keys.size(), 14.0));

  constexpr int kThreads = 8;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < keys.size(); i += kThreads) {
        filter.Insert(keys[i]);
      }
    });
  }
  for (auto& th : writers) th.join();
  for (uint64_t k : keys) ASSERT_TRUE(filter.MayContain(k)) << k;
}

TEST(ConcurrencyTest, ReadersNeverSeeFalseNegativesUnderLoad) {
  auto keyset = RandomKeySet(40000, 92);
  std::vector<uint64_t> keys(keyset.begin(), keyset.end());
  // First half pre-inserted; second half inserted while readers run.
  size_t half = keys.size() / 2;
  BloomRF filter(BloomRFConfig::Basic(keys.size(), 14.0));
  for (size_t i = 0; i < half; ++i) filter.Insert(keys[i]);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> false_negatives{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (size_t i = 0; i < half; ++i) {
          if (!filter.MayContain(keys[i])) {
            false_negatives.fetch_add(1);
          }
        }
      }
    });
  }
  std::thread writer([&] {
    for (size_t i = half; i < keys.size(); ++i) filter.Insert(keys[i]);
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(false_negatives.load(), 0u);
  for (uint64_t k : keys) ASSERT_TRUE(filter.MayContain(k));
}

TEST(ConcurrencyTest, ConcurrentRangeProbesDuringInserts) {
  auto keyset = RandomKeySet(20000, 93);
  std::vector<uint64_t> keys(keyset.begin(), keyset.end());
  BloomRF filter(BloomRFConfig::Basic(keys.size(), 16.0));
  size_t half = keys.size() / 2;
  for (size_t i = 0; i < half; ++i) filter.Insert(keys[i]);

  std::atomic<uint64_t> missed{0};
  std::thread writer([&] {
    for (size_t i = half; i < keys.size(); ++i) filter.Insert(keys[i]);
  });
  std::thread reader([&] {
    for (int round = 0; round < 3; ++round) {
      for (size_t i = 0; i < half; ++i) {
        uint64_t k = keys[i];
        uint64_t lo = k >= 500 ? k - 500 : 0;
        uint64_t hi = k <= UINT64_MAX - 500 ? k + 500 : UINT64_MAX;
        if (!filter.MayContainRange(lo, hi)) missed.fetch_add(1);
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(missed.load(), 0u);
}

}  // namespace
}  // namespace bloomrf

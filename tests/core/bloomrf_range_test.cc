// Property tests of the two-path range lookup (paper Sect. 4,
// Algorithm 1). The load-bearing invariant is one-sided error: for any
// configuration, key set and interval, a non-empty interval must probe
// positive. Parameterized sweeps cover deltas, budgets, domains,
// distributions and range sizes; an exhaustive small-domain case
// compares every interval against ground truth.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "core/bloomrf.h"
#include "core/tuning_advisor.h"
#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::GroundTruthRange;
using ::bloomrf::testing::RandomKeySet;
using ::bloomrf::testing::RangeEnd;

TEST(BloomRFRangeTest, EmptyFilterRejectsRanges) {
  BloomRF filter(BloomRFConfig::Basic(1000, 12.0));
  EXPECT_FALSE(filter.MayContainRange(0, UINT64_MAX / 2));
  EXPECT_FALSE(filter.MayContainRange(100, 200));
}

TEST(BloomRFRangeTest, InvertedBoundsAreEmpty) {
  BloomRF filter(BloomRFConfig::Basic(1000, 12.0));
  filter.Insert(150);
  EXPECT_FALSE(filter.MayContainRange(200, 100));
}

TEST(BloomRFRangeTest, PointRangeEqualsPointLookup) {
  auto keys = RandomKeySet(10000, 21);
  BloomRF filter(BloomRFConfig::Basic(keys.size(), 14.0));
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(22);
  for (int i = 0; i < 5000; ++i) {
    uint64_t y = rng.Next();
    EXPECT_EQ(filter.MayContainRange(y, y), filter.MayContain(y)) << y;
  }
}

TEST(BloomRFRangeTest, RangeCoveringKeyAlwaysPositive) {
  auto keys = RandomKeySet(20000, 23);
  BloomRF filter(BloomRFConfig::Basic(keys.size(), 14.0));
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(24);
  for (uint64_t k : keys) {
    uint64_t left = rng.Uniform(1 << 20);
    uint64_t right = rng.Uniform(1 << 20);
    uint64_t lo = k >= left ? k - left : 0;
    uint64_t hi = k <= UINT64_MAX - right ? k + right : UINT64_MAX;
    ASSERT_TRUE(filter.MayContainRange(lo, hi))
        << "key " << k << " in [" << lo << ", " << hi << "]";
  }
}

TEST(BloomRFRangeTest, ExhaustiveSmallDomainAllIntervals) {
  // d=10: check every one of the ~0.5M intervals against ground truth.
  constexpr uint64_t kDomain = 1 << 10;
  auto keys = RandomKeySet(40, 25, kDomain);
  BloomRF filter(BloomRFConfig::Basic(keys.size(), 14.0, 10, 3));
  for (uint64_t k : keys) filter.Insert(k);
  uint64_t fp = 0, negatives = 0;
  for (uint64_t lo = 0; lo < kDomain; ++lo) {
    for (uint64_t hi = lo; hi < kDomain; ++hi) {
      bool truth = GroundTruthRange(keys, lo, hi);
      bool answer = filter.MayContainRange(lo, hi);
      ASSERT_TRUE(answer || !truth)
          << "false negative on [" << lo << ", " << hi << "]";
      if (!truth) {
        ++negatives;
        if (answer) ++fp;
      }
    }
  }
  EXPECT_GT(negatives, 0u);
  EXPECT_LT(static_cast<double>(fp) / static_cast<double>(negatives), 0.9);
}

TEST(BloomRFRangeTest, FullDomainRangePositiveWhenNonEmpty) {
  BloomRF filter(BloomRFConfig::Basic(100, 14.0));
  filter.Insert(uint64_t{1} << 40);
  EXPECT_TRUE(filter.MayContainRange(0, UINT64_MAX));
}

TEST(BloomRFRangeTest, ConstantProbeCountAcrossRangeSizes) {
  // Paper claim: O(k) word accesses independent of |I| (Sect. 5).
  auto keys = RandomKeySet(100000, 26);
  BloomRFConfig cfg = BloomRFConfig::Basic(keys.size(), 16.0);
  BloomRF filter(cfg);
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(27);
  uint64_t k = cfg.num_layers();
  for (uint32_t log_range : {4u, 10u, 16u, 24u, 32u}) {
    uint64_t worst = 0;
    for (int i = 0; i < 200; ++i) {
      ProbeStats stats;
      uint64_t lo = rng.Next();
      filter.MayContainRange(lo, RangeEnd(lo, uint64_t{1} << log_range),
                             &stats);
      worst = std::max(worst, stats.bit_probes + stats.word_probes);
    }
    // <= ~6 probes per layer (2 coverings + 4 decomposition words).
    EXPECT_LE(worst, 6 * k + 8) << "log_range " << log_range;
  }
}

TEST(BloomRFRangeTest, LargerBudgetLowersRangeFpr) {
  auto keys = RandomKeySet(50000, 28);
  auto measure = [&](double bpk) {
    BloomRF filter(BloomRFConfig::Basic(keys.size(), bpk));
    for (uint64_t k : keys) filter.Insert(k);
    Rng rng(29);
    uint64_t fp = 0, negatives = 0;
    for (int i = 0; i < 20000; ++i) {
      uint64_t lo = rng.Next();
      uint64_t hi = RangeEnd(lo, 1 << 12);
      if (GroundTruthRange(keys, lo, hi)) continue;
      ++negatives;
      if (filter.MayContainRange(lo, hi)) ++fp;
    }
    return static_cast<double>(fp) / static_cast<double>(negatives);
  };
  double fpr10 = measure(10.0);
  double fpr22 = measure(22.0);
  EXPECT_LE(fpr22, fpr10);
}

// ---------------------------------------------------------------------
// Parameterized no-false-negative sweep: (delta, bits/key, distribution,
// log2 range size).
// ---------------------------------------------------------------------

using SweepParam = std::tuple<int, double, Distribution, int>;

class RangeSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RangeSweepTest, NoFalseNegativesAndBoundedFpr) {
  auto [delta, bits_per_key, dist, log_range] = GetParam();
  auto key_vec = GenerateDistinctKeys(20000, dist, 1000 + delta + log_range);
  std::set<uint64_t> keys(key_vec.begin(), key_vec.end());
  BloomRF filter(BloomRFConfig::Basic(keys.size(), bits_per_key, 64,
                                      static_cast<uint32_t>(delta)));
  for (uint64_t k : keys) filter.Insert(k);

  Rng rng(2000 + delta);
  ZipfianGenerator zipf(uint64_t{1} << 40, 0.99, 3000 + delta);
  uint64_t range = uint64_t{1} << log_range;
  uint64_t fp = 0, negatives = 0, positives = 0;
  for (int i = 0; i < 4000; ++i) {
    uint64_t lo = DrawKey(dist, rng, &zipf);
    uint64_t hi = RangeEnd(lo, range);
    bool truth = GroundTruthRange(keys, lo, hi);
    bool answer = filter.MayContainRange(lo, hi);
    ASSERT_TRUE(answer || !truth)
        << "false negative: delta=" << delta << " [" << lo << "," << hi << "]";
    if (truth) {
      ++positives;
    } else {
      ++negatives;
      if (answer) ++fp;
    }
  }
  // Also check keys directly: ranges anchored exactly on keys.
  int checked = 0;
  for (uint64_t k : keys) {
    if (++checked > 2000) break;
    ASSERT_TRUE(filter.MayContainRange(k, RangeEnd(k, range)));
    uint64_t lo = k >= range - 1 ? k - (range - 1) : 0;
    ASSERT_TRUE(filter.MayContainRange(lo, k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DeltaBudgetDistRange, RangeSweepTest,
    ::testing::Combine(::testing::Values(3, 5, 7),
                       ::testing::Values(12.0, 20.0),
                       ::testing::Values(Distribution::kUniform,
                                         Distribution::kNormal,
                                         Distribution::kZipfian),
                       ::testing::Values(6, 14, 26)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "delta" + std::to_string(std::get<0>(info.param)) + "_bpk" +
             std::to_string(static_cast<int>(std::get<1>(info.param))) + "_" +
             DistributionName(std::get<2>(info.param)) + "_r" +
             std::to_string(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------
// Advisor-produced (segmented, exact-layer) configurations.
// ---------------------------------------------------------------------

class AdvisedRangeTest : public ::testing::TestWithParam<double> {};

TEST_P(AdvisedRangeTest, NoFalseNegativesWithExactLayer) {
  double max_range = GetParam();
  auto keys = RandomKeySet(30000, 31);
  AdvisorParams params;
  params.n = keys.size();
  params.total_bits = 18 * keys.size();
  params.max_range = max_range;
  AdvisorResult advised = AdviseConfig(params);
  BloomRF filter(advised.config);
  for (uint64_t k : keys) filter.Insert(k);

  Rng rng(32);
  uint64_t range = static_cast<uint64_t>(max_range);
  for (int i = 0; i < 2000; ++i) {
    uint64_t lo = rng.Next();
    uint64_t hi = RangeEnd(lo, 1 + rng.Uniform(range));
    bool truth = GroundTruthRange(keys, lo, hi);
    ASSERT_TRUE(filter.MayContainRange(lo, hi) || !truth);
  }
  for (uint64_t k : keys) {
    ASSERT_TRUE(filter.MayContainRange(k, k));
  }
}

INSTANTIATE_TEST_SUITE_P(MaxRanges, AdvisedRangeTest,
                         ::testing::Values(1e3, 1e6, 1e9),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "R1e" + std::to_string(static_cast<int>(
                                              std::log10(info.param)));
                         });

}  // namespace
}  // namespace bloomrf

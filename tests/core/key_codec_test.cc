#include "core/key_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/random.h"

namespace bloomrf {
namespace {

TEST(Int64CodecTest, PreservesOrder) {
  std::vector<int64_t> values = {std::numeric_limits<int64_t>::min(),
                                 -1000000,
                                 -1,
                                 0,
                                 1,
                                 42,
                                 std::numeric_limits<int64_t>::max()};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(OrderedFromInt64(values[i]), OrderedFromInt64(values[i + 1]));
  }
}

TEST(Int64CodecTest, RoundTrips) {
  Rng rng(71);
  for (int i = 0; i < 100000; ++i) {
    int64_t v = static_cast<int64_t>(rng.Next());
    EXPECT_EQ(Int64FromOrdered(OrderedFromInt64(v)), v);
  }
}

TEST(DoubleCodecTest, PreservesOrderOnSpecialValues) {
  std::vector<double> values = {-std::numeric_limits<double>::infinity(),
                                -1e300,
                                -1.5,
                                -1e-300,
                                -0.0,
                                0.0,
                                1e-300,
                                1.5,
                                1e300,
                                std::numeric_limits<double>::infinity()};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    // -0.0 and +0.0 order adjacently (distinct codes).
    EXPECT_LT(OrderedFromDouble(values[i]), OrderedFromDouble(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(DoubleCodecTest, MonotoneOnRandomPairs) {
  Rng rng(72);
  for (int i = 0; i < 100000; ++i) {
    double a = (rng.NextDouble() - 0.5) * std::pow(10.0, rng.Uniform(20));
    double b = (rng.NextDouble() - 0.5) * std::pow(10.0, rng.Uniform(20));
    if (a == b) continue;
    EXPECT_EQ(a < b, OrderedFromDouble(a) < OrderedFromDouble(b))
        << a << " " << b;
  }
}

TEST(DoubleCodecTest, RoundTrips) {
  Rng rng(73);
  for (int i = 0; i < 100000; ++i) {
    double v = (rng.NextDouble() - 0.5) * 1e12;
    EXPECT_EQ(DoubleFromOrdered(OrderedFromDouble(v)), v);
  }
  EXPECT_EQ(DoubleFromOrdered(OrderedFromDouble(0.0)), 0.0);
  EXPECT_EQ(DoubleFromOrdered(OrderedFromDouble(-1.25)), -1.25);
}

TEST(DoubleCodecTest, RangeQuerySemantics) {
  // phi maps value ranges to code ranges: a value inside [a, b] has a
  // code inside [phi(a), phi(b)].
  Rng rng(74);
  for (int i = 0; i < 50000; ++i) {
    double a = (rng.NextDouble() - 0.5) * 100;
    double b = a + rng.NextDouble() * 10;
    double x = a + (b - a) * rng.NextDouble();
    EXPECT_GE(OrderedFromDouble(x), OrderedFromDouble(a));
    EXPECT_LE(OrderedFromDouble(x), OrderedFromDouble(b));
  }
}

TEST(FloatCodecTest, MonotoneAndHighAligned) {
  std::vector<float> values = {-1e30f, -1.0f, -1e-30f, 0.0f,
                               1e-30f, 1.0f,  1e30f};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(OrderedFromFloat(values[i]), OrderedFromFloat(values[i + 1]));
  }
  // Low 32 bits unused: dyadic levels below 32 are free.
  EXPECT_EQ(OrderedFromFloat(1.5f) & 0xffffffffULL, 0u);
}

TEST(StringCodecTest, PrefixOrderPreserved) {
  // 7-byte prefixes order strings; the hash byte only refines points.
  EXPECT_LT(StringRangeHigh("apple"), StringRangeLow("banana"));
  EXPECT_LT(StringRangeHigh("aaa"), StringRangeLow("aab"));
}

TEST(StringCodecTest, PointCodeWithinRangeBounds) {
  for (std::string s : {"", "a", "apple", "applesauce", "zzzzzzzzzz"}) {
    uint64_t code = OrderedFromString(s);
    EXPECT_GE(code, StringRangeLow(s)) << s;
    EXPECT_LE(code, StringRangeHigh(s)) << s;
  }
}

TEST(StringCodecTest, TailsDistinguishedByHashByte) {
  // Same 7-byte prefix, different tails: codes differ with high
  // probability (255/256 per pair; these specific pairs must differ).
  EXPECT_NE(OrderedFromString("applesauce"), OrderedFromString("applesXXX"));
  EXPECT_NE(OrderedFromString("applesa"), OrderedFromString("applesab"));
}

TEST(StringCodecTest, LengthIncludedInHash) {
  std::string a = "prefix_";   // exactly 7 chars: empty tail
  std::string b = "prefix_";
  b += '\0';                   // 8 chars: tail is one NUL byte
  EXPECT_NE(OrderedFromString(a), OrderedFromString(b));
}

}  // namespace
}  // namespace bloomrf

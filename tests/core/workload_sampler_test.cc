#include "core/workload_sampler.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace bloomrf {
namespace {

TEST(WorkloadSamplerTest, CountsPointAndRangeMix) {
  WorkloadSampler sampler(0);  // sample every operation
  for (int i = 0; i < 300; ++i) sampler.RecordPoint(i);
  for (int i = 0; i < 100; ++i) sampler.RecordRange(i, i + 7);
  WorkloadSnapshot snap = sampler.Snapshot();
  EXPECT_EQ(snap.ops, 400u);
  EXPECT_EQ(snap.point_samples, 300u);
  EXPECT_EQ(snap.range_samples, 100u);
  EXPECT_DOUBLE_EQ(snap.point_fraction(), 0.75);
}

TEST(WorkloadSamplerTest, WidthBucketsAreLog2) {
  WorkloadSampler sampler(0);
  sampler.RecordRange(10, 10);    // width 1 -> bucket 0
  sampler.RecordRange(10, 11);    // width 2 -> bucket 1
  sampler.RecordRange(10, 13);    // width 4 -> bucket 2
  sampler.RecordRange(0, 1023);   // width 1024 -> bucket 10
  sampler.RecordRange(100, 50);   // inverted -> width treated as 1
  WorkloadSnapshot snap = sampler.Snapshot();
  EXPECT_EQ(snap.range_width_log2[0], 2u);  // width-1 + inverted
  EXPECT_EQ(snap.range_width_log2[1], 1u);
  EXPECT_EQ(snap.range_width_log2[2], 1u);
  EXPECT_EQ(snap.range_width_log2[10], 1u);
  EXPECT_DOUBLE_EQ(snap.MaxRangeWidth(), 2048.0);  // 2^(10+1)

  std::vector<double> weights = snap.RangeWeights();
  ASSERT_EQ(weights.size(), 11u);  // trimmed after bucket 10
  EXPECT_DOUBLE_EQ(weights[0], 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(weights[10], 1.0 / 5.0);
}

TEST(WorkloadSamplerTest, EmptySnapshotDefaults) {
  WorkloadSampler sampler;
  WorkloadSnapshot snap = sampler.Snapshot();
  EXPECT_EQ(snap.total_samples(), 0u);
  EXPECT_DOUBLE_EQ(snap.point_fraction(), 1.0);  // point-biased default
  EXPECT_TRUE(snap.RangeWeights().empty());
  EXPECT_DOUBLE_EQ(snap.MaxRangeWidth(), 1.0);
}

TEST(WorkloadSamplerTest, SamplesOneInPeriod) {
  WorkloadSampler sampler(4);  // 1 in 16
  EXPECT_EQ(sampler.period(), 16u);
  for (int i = 0; i < 1600; ++i) sampler.RecordPoint(i);
  WorkloadSnapshot snap = sampler.Snapshot();
  EXPECT_EQ(snap.ops, 1600u);
  EXPECT_EQ(snap.point_samples, 100u);
}

TEST(WorkloadSamplerTest, BatchRecordCrossesPeriodsOnce) {
  WorkloadSampler sampler(4);  // period 16
  std::vector<uint64_t> keys(160);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  sampler.RecordPoints(keys);
  WorkloadSnapshot snap = sampler.Snapshot();
  // One batch advanced the counter by 160 = 10 period crossings.
  EXPECT_EQ(snap.ops, 160u);
  EXPECT_EQ(snap.point_samples, 10u);

  std::vector<uint64_t> los(32), his(32);
  for (size_t i = 0; i < los.size(); ++i) {
    los[i] = i * 100;
    his[i] = i * 100 + 63;  // width 64 -> bucket 6
  }
  sampler.RecordRanges(los, his);
  snap = sampler.Snapshot();
  EXPECT_EQ(snap.ops, 192u);
  EXPECT_EQ(snap.range_samples, 2u);  // 32 ops = 2 more crossings
  EXPECT_EQ(snap.range_width_log2[6], 2u);
}

TEST(WorkloadSamplerTest, KeyRingHoldsRecentKeys) {
  WorkloadSampler sampler(0);
  for (uint64_t i = 0; i < WorkloadSampler::kKeyRing + 50; ++i) {
    sampler.RecordPoint(i);
  }
  WorkloadSnapshot snap = sampler.Snapshot();
  EXPECT_EQ(snap.sampled_keys.size(), WorkloadSampler::kKeyRing);
}

TEST(WorkloadSamplerTest, ResetForgetsEverything) {
  WorkloadSampler sampler(0);
  for (int i = 0; i < 64; ++i) sampler.RecordRange(i, i + 100);
  sampler.Reset();
  WorkloadSnapshot snap = sampler.Snapshot();
  EXPECT_EQ(snap.ops, 0u);
  EXPECT_EQ(snap.total_samples(), 0u);
  EXPECT_TRUE(snap.RangeWeights().empty());
  EXPECT_TRUE(snap.sampled_keys.empty());
}

// Exercised under TSan in CI: concurrent writers plus a snapshotting
// reader must be race-free (all relaxed atomics, no locks).
TEST(WorkloadSamplerTest, ConcurrentRecordersAreRaceFree) {
  WorkloadSampler sampler(2);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sampler, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        if ((i & 3) == 0) {
          sampler.RecordRange(i, i + t * 100);
        } else {
          sampler.RecordPoint(i * kThreads + t);
        }
      }
    });
  }
  WorkloadSnapshot mid = sampler.Snapshot();  // racing snapshot is legal
  (void)mid;
  for (auto& thread : threads) thread.join();
  WorkloadSnapshot snap = sampler.Snapshot();
  EXPECT_EQ(snap.ops, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_GT(snap.total_samples(), 0u);
}

}  // namespace
}  // namespace bloomrf

#include "core/config.h"

#include <gtest/gtest.h>

namespace bloomrf {
namespace {

TEST(ConfigTest, BasicDerivesLayerCount) {
  // Paper Sect. 3.2 "Random Scatter": 2M keys, d=64, delta=7 ->
  // k = ceil((64 - 21) / 7) = ceil(43/7) = 7... the paper uses
  // floor(log2 2M)=21 and reports k=6 with their rounding; our
  // formula gives ceil(43/7)=7. Verify the formula we document.
  BloomRFConfig cfg = BloomRFConfig::Basic(2'000'000, 10.0, 64, 7);
  EXPECT_EQ(cfg.num_layers(), (64u - 20u + 6u) / 7u);
  EXPECT_EQ(cfg.delta.size(), cfg.replicas.size());
  EXPECT_EQ(cfg.delta.size(), cfg.segment_of.size());
  EXPECT_TRUE(cfg.Validate().empty()) << cfg.Validate();
}

TEST(ConfigTest, BasicSegmentSizedByBitsPerKey) {
  BloomRFConfig cfg = BloomRFConfig::Basic(1000, 14.0);
  EXPECT_GE(cfg.segment_bits[0], 14000u);
  EXPECT_LT(cfg.segment_bits[0], 14000u + 64);
}

TEST(ConfigTest, LevelsAreDeltaPrefixSums) {
  BloomRFConfig cfg;
  cfg.domain_bits = 64;
  cfg.delta = {7, 7, 4, 2};
  cfg.replicas = {1, 1, 1, 2};
  cfg.segment_of = {0, 0, 0, 0};
  cfg.segment_bits = {4096};
  EXPECT_EQ(cfg.LevelOfLayer(0), 0u);
  EXPECT_EQ(cfg.LevelOfLayer(1), 7u);
  EXPECT_EQ(cfg.LevelOfLayer(2), 14u);
  EXPECT_EQ(cfg.LevelOfLayer(3), 18u);
  EXPECT_EQ(cfg.TopLevel(), 20u);
  EXPECT_TRUE(cfg.Validate().empty()) << cfg.Validate();
}

TEST(ConfigTest, ExactBitsMatchesLevel) {
  BloomRFConfig cfg;
  cfg.domain_bits = 32;
  cfg.delta = {7, 7, 7};
  cfg.replicas = {1, 1, 1};
  cfg.segment_of = {0, 0, 0};
  cfg.segment_bits = {1024};
  cfg.has_exact_layer = true;
  // Exact level = 21, bitmap = 2^(32-21) = 2048 bits.
  EXPECT_EQ(cfg.ExactBits(), 2048u);
  EXPECT_EQ(cfg.TotalBits(), 1024u + 2048u);
}

TEST(ConfigTest, ValidateCatchesBadDelta) {
  BloomRFConfig cfg = BloomRFConfig::Basic(1000, 10.0);
  cfg.delta[0] = 8;
  EXPECT_FALSE(cfg.Validate().empty());
  cfg.delta[0] = 0;
  EXPECT_FALSE(cfg.Validate().empty());
}

TEST(ConfigTest, ValidateCatchesSizeMismatch) {
  BloomRFConfig cfg = BloomRFConfig::Basic(1000, 10.0);
  cfg.replicas.push_back(1);
  EXPECT_FALSE(cfg.Validate().empty());
}

TEST(ConfigTest, ValidateCatchesSegmentOutOfRange) {
  BloomRFConfig cfg = BloomRFConfig::Basic(1000, 10.0);
  cfg.segment_of[0] = 3;
  EXPECT_FALSE(cfg.Validate().empty());
}

TEST(ConfigTest, ValidateCatchesLayersBeyondDomain) {
  BloomRFConfig cfg;
  cfg.domain_bits = 16;
  cfg.delta = {7, 7, 7};  // bottom of layer 2 at level 14 < 16: ok
  cfg.replicas = {1, 1, 1};
  cfg.segment_of = {0, 0, 0};
  cfg.segment_bits = {1024};
  EXPECT_TRUE(cfg.Validate().empty());
  cfg.delta = {7, 7, 7, 7};  // layer 3 at level 21 >= 16: invalid
  cfg.replicas = {1, 1, 1, 1};
  cfg.segment_of = {0, 0, 0, 0};
  EXPECT_FALSE(cfg.Validate().empty());
}

TEST(ConfigTest, SmallDomainsClampLayers) {
  BloomRFConfig cfg = BloomRFConfig::Basic(16, 10.0, 8, 4);
  EXPECT_TRUE(cfg.Validate().empty()) << cfg.Validate();
  EXPECT_LT(cfg.LevelOfLayer(cfg.num_layers() - 1), 8u);
}

TEST(ConfigTest, DebugStringMentionsShape) {
  BloomRFConfig cfg = BloomRFConfig::Basic(1000, 10.0);
  std::string s = cfg.DebugString();
  EXPECT_NE(s.find("d=64"), std::string::npos);
  EXPECT_NE(s.find("delta="), std::string::npos);
}

}  // namespace
}  // namespace bloomrf

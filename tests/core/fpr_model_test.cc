// Validates the analytic FPR models (paper Sect. 5/6/7) against
// measured rates and against each other.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/bloomrf.h"
#include "core/fpr_model.h"
#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::GroundTruthRange;
using ::bloomrf::testing::RandomKeySet;
using ::bloomrf::testing::RangeEnd;

TEST(FprModelTest, PointFprMatchesBloomFormula) {
  // (1 - e^{-kn/m})^k at k=6, n=1e6, m=1.4e7.
  double fpr = BasicPointFpr(1000000, 14000000, 6);
  double load = 1.0 - std::exp(-6.0 * 1e6 / 1.4e7);
  EXPECT_NEAR(fpr, std::pow(load, 6), 1e-12);
}

TEST(FprModelTest, RangeBoundMonotoneInRangeSize) {
  double prev = 0;
  for (double r : {1.0, 16.0, 256.0, 65536.0, 1e9}) {
    double bound = BasicRangeFprBound(1000000, 16000000, 7, 7, r);
    EXPECT_GE(bound, prev) << r;
    prev = bound;
  }
}

TEST(FprModelTest, RangeBoundMonotoneInMemory) {
  double prev = 1.0;
  for (uint64_t m : {10000000ull, 16000000ull, 24000000ull, 40000000ull}) {
    double bound = BasicRangeFprBound(1000000, m, 7, 7, 16384.0);
    EXPECT_LE(bound, prev) << m;
    prev = bound;
  }
}

TEST(FprModelTest, SectionSixWorkedNumbers) {
  // Sect. 6: "Given 17 bits/key, basic bloomRF can handle ranges of
  // R=2^14 with an FPR of 1.5%", "with 22 bits/key basic bloomRF
  // covers R=2^21 with 2.5% FPR". Our constants differ slightly from
  // the paper's rounding; assert the right ballpark (within 2x).
  uint64_t n = 50'000'000;
  uint32_t k17 = (64 - 25 + 6) / 7;  // ceil((d - log2 n)/delta)
  double fpr17 = BasicRangeFprBound(n, 17 * n, k17, 7, std::pow(2.0, 14));
  EXPECT_GT(fpr17, 0.003);
  EXPECT_LT(fpr17, 0.045);
  double fpr22 = BasicRangeFprBound(n, 22 * n, k17, 7, std::pow(2.0, 21));
  EXPECT_GT(fpr22, 0.004);
  EXPECT_LT(fpr22, 0.06);
}

TEST(FprModelTest, ExtendedModelPredictsMeasuredPointFpr) {
  auto keys = RandomKeySet(50000, 51);
  BloomRFConfig cfg = BloomRFConfig::Basic(keys.size(), 14.0);
  FprModelResult model = EvaluateFprModel(cfg, keys.size());

  BloomRF filter(cfg);
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(52);
  uint64_t fp = 0, negatives = 0;
  for (int i = 0; i < 400000; ++i) {
    uint64_t y = rng.Next();
    if (keys.count(y)) continue;
    ++negatives;
    if (filter.MayContain(y)) ++fp;
  }
  double measured = static_cast<double>(fp) / static_cast<double>(negatives);
  // Model and measurement within 3x of each other (both are small).
  EXPECT_LT(model.point_fpr, measured * 3 + 1e-4);
  EXPECT_LT(measured, model.point_fpr * 3 + 1e-4);
}

TEST(FprModelTest, ExtendedModelPredictsMeasuredRangeFpr) {
  auto keys = RandomKeySet(50000, 53);
  BloomRFConfig cfg = BloomRFConfig::Basic(keys.size(), 16.0);
  FprModelResult model = EvaluateFprModel(cfg, keys.size());
  BloomRF filter(cfg);
  for (uint64_t k : keys) filter.Insert(k);

  Rng rng(54);
  constexpr uint64_t kRange = 1 << 14;
  uint64_t fp = 0, negatives = 0;
  for (int i = 0; i < 50000; ++i) {
    uint64_t lo = rng.Next();
    uint64_t hi = RangeEnd(lo, kRange);
    if (GroundTruthRange(keys, lo, hi)) continue;
    ++negatives;
    if (filter.MayContainRange(lo, hi)) ++fp;
  }
  double measured = static_cast<double>(fp) / static_cast<double>(negatives);
  double predicted = model.MaxFprUpToRange(kRange);
  EXPECT_LT(measured, predicted * 4 + 0.01);
}

TEST(FprModelTest, FprDecreasesWithLevelBelowTop) {
  BloomRFConfig cfg = BloomRFConfig::Basic(1000000, 16.0);
  FprModelResult model = EvaluateFprModel(cfg, 1000000);
  // Within the stored levels, lower levels have lower FPR (eq. 6
  // step-wise decrease).
  uint32_t top = cfg.TopLevel();
  for (uint32_t l = 1; l < top && l < 40; ++l) {
    // Tolerate small numerical wiggles within a layer's level span;
    // the paper's claim is the step-wise trend, not strictness.
    EXPECT_LE(model.fpr_per_level[l - 1], model.fpr_per_level[l] + 2e-3)
        << "level " << l;
  }
}

TEST(FprModelTest, ExactLayerZeroesItsLevel) {
  BloomRFConfig cfg;
  cfg.domain_bits = 64;
  cfg.delta = {7, 7, 7, 7, 7, 7};
  cfg.replicas = {1, 1, 1, 1, 1, 1};
  cfg.segment_of = {0, 0, 0, 0, 0, 0};
  cfg.segment_bits = {1 << 20};
  cfg.has_exact_layer = true;  // exact level 42
  FprModelResult model = EvaluateFprModel(cfg, 100000);
  EXPECT_EQ(model.fpr_per_level[42], 0.0);
  // Saturated levels above the exact layer stay at ~1.
  EXPECT_GT(model.fpr_per_level[43], 0.5);
}

TEST(FprModelTest, RosettaModelMatchesPaperExamples) {
  // Sect. 6: 2% FPR, R=2^6 -> ~17 bits/key; R=2^10 -> ~22; R=2^14 -> ~28.
  EXPECT_NEAR(RosettaBitsPerKey(64, 0.02), 16.8, 1.0);
  EXPECT_NEAR(RosettaBitsPerKey(1024, 0.02), 22.6, 1.0);
  EXPECT_NEAR(RosettaBitsPerKey(16384, 0.02), 28.3, 1.0);
}

TEST(FprModelTest, LowerBoundsAreBelowConstructions) {
  for (double eps : {0.001, 0.01, 0.02}) {
    for (double r : {16.0, 64.0}) {
      double lower = RangeLowerBoundBitsPerKey(r, eps, 1'000'000, 64);
      double rosetta = RosettaBitsPerKey(r, eps);
      double ours = BloomRFBitsPerKey(r, eps, 1'000'000, 64);
      EXPECT_LT(lower, rosetta) << eps << " " << r;
      EXPECT_LT(lower, ours + 1.0) << eps << " " << r;
    }
  }
}

TEST(FprModelTest, PointLowerBound) {
  EXPECT_NEAR(PointLowerBoundBitsPerKey(0.01), std::log2(100.0), 1e-9);
  EXPECT_NEAR(PointLowerBoundBitsPerKey(0.5), 1.0, 1e-9);
}

TEST(FprModelTest, BloomRFBitsPerKeyInvertsBound) {
  uint64_t n = 1'000'000;
  double bpk = BloomRFBitsPerKey(1 << 14, 0.02, n, 64);
  uint64_t m = static_cast<uint64_t>(bpk * n);
  uint32_t k = (64 - 19 + 6) / 7;
  double achieved = BasicRangeFprBound(n, m, k, 7, 1 << 14);
  EXPECT_LE(achieved, 0.021);
}

}  // namespace
}  // namespace bloomrf

// Degenerate data distributions (paper Sect. 7 "Degenerate data
// distributions and PMHF"): keys whose bits i*delta..(i+1)*delta-2 all
// equal the same value lambda make every PMHF set the same in-word
// offset, concentrating collisions on one bit per word. The
// permute_words option scatters half of the words in reverse order and
// must (a) preserve correctness and (b) not hurt on adversarial data.

#include <gtest/gtest.h>

#include <set>

#include "core/bloomrf.h"
#include "util/random.h"

namespace bloomrf {
namespace {

/// Generates the paper's adversarial distribution: in-word offset bits
/// pinned to `lambda` on the lower layers (delta=7 -> offset bits are
/// key bits [i*7, i*7+5] for layer i). Only the six bottom layers are
/// pinned so enough free bits remain to draw distinct keys; those
/// layers dominate the point FPR.
std::set<uint64_t> DegenerateKeys(size_t n, uint32_t delta, uint64_t lambda,
                                  uint64_t seed) {
  Rng rng(seed);
  std::set<uint64_t> keys;
  uint32_t offset_bits = delta - 1;
  uint64_t offset_mask = (uint64_t{1} << offset_bits) - 1;
  while (keys.size() < n) {
    uint64_t k = rng.Next();
    // Pin levels 0, 7, ..., 49: every layer of a 64-bit basic filter
    // for n <= ~2^15 keys; 16 bits stay free (2^16 distinct keys).
    for (uint32_t level = 0; level + delta <= 56; level += delta) {
      k &= ~(offset_mask << level);
      k |= (lambda & offset_mask) << level;
    }
    keys.insert(k);
  }
  return keys;
}

double PointFpr(const std::set<uint64_t>& keys, bool permute, uint64_t seed) {
  BloomRFConfig cfg = BloomRFConfig::Basic(keys.size(), 14.0, 64, 7);
  cfg.permute_words = permute;
  BloomRF filter(cfg);
  for (uint64_t k : keys) filter.Insert(k);
  // Probe with *the same degenerate distribution* (worst case: probes
  // collide on the same offsets).
  Rng rng(seed);
  std::set<uint64_t> probes = DegenerateKeys(20000, 7, 5, seed);
  uint64_t fp = 0, neg = 0;
  for (uint64_t y : probes) {
    if (keys.count(y)) continue;
    ++neg;
    if (filter.MayContain(y)) ++fp;
  }
  return static_cast<double>(fp) / static_cast<double>(neg);
}

TEST(DegenerateTest, PermutationPreservesCorrectness) {
  auto keys = DegenerateKeys(20000, 7, 5, 101);
  BloomRFConfig cfg = BloomRFConfig::Basic(keys.size(), 14.0, 64, 7);
  cfg.permute_words = true;
  BloomRF filter(cfg);
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) {
    ASSERT_TRUE(filter.MayContain(k));
    ASSERT_TRUE(filter.MayContainRange(k, k + 100 >= k ? k + 100 : k));
  }
}

TEST(DegenerateTest, RangesStillCorrectWithPermutation) {
  auto keys = DegenerateKeys(5000, 7, 3, 102);
  BloomRFConfig cfg = BloomRFConfig::Basic(keys.size(), 16.0, 64, 7);
  cfg.permute_words = true;
  BloomRF filter(cfg);
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(103);
  for (uint64_t k : keys) {
    uint64_t span = rng.Uniform(1 << 20);
    uint64_t lo = k >= span ? k - span : 0;
    uint64_t hi = k <= UINT64_MAX - span ? k + span : UINT64_MAX;
    ASSERT_TRUE(filter.MayContainRange(lo, hi));
  }
}

TEST(DegenerateTest, DegenerateDataInflatesPlainPmhfFpr) {
  // Sanity check that the adversarial generator really hurts: FPR on
  // degenerate data must far exceed the uniform-data FPR at the same
  // budget (14 bits/key uniform is < 1%).
  auto keys = DegenerateKeys(30000, 7, 5, 104);
  double plain = PointFpr(keys, /*permute=*/false, 105);
  EXPECT_GT(plain, 0.02);
}

TEST(DegenerateTest, PermutationMitigatesDegenerateDistribution) {
  auto keys = DegenerateKeys(30000, 7, 5, 106);
  double plain = PointFpr(keys, /*permute=*/false, 107);
  double permuted = PointFpr(keys, /*permute=*/true, 107);
  // Reversing half the words halves the offset concentration.
  EXPECT_LT(permuted, plain);
}

TEST(DegenerateTest, PermutationHarmlessOnUniformData) {
  Rng rng(108);
  std::set<uint64_t> keys;
  while (keys.size() < 30000) keys.insert(rng.Next());
  double plain = PointFpr(keys, false, 109);
  double permuted = PointFpr(keys, true, 109);
  EXPECT_NEAR(plain, permuted, 0.02);
}

}  // namespace
}  // namespace bloomrf

#include "core/string_bloomrf.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/random.h"
#include "workload/synthetic_strings.h"

namespace bloomrf {
namespace {

StringBloomRF MakeLoaded(const std::vector<std::string>& keys,
                         double bits_per_key = 16.0) {
  StringBloomRF filter(BloomRFConfig::Basic(keys.size(), bits_per_key));
  for (const auto& k : keys) filter.Insert(k);
  return filter;
}

TEST(StringBloomRFTest, PointNoFalseNegatives) {
  StringDatasetOptions options;
  options.num_keys = 20000;
  auto keys = GenerateStringKeys(options);
  auto filter = MakeLoaded(keys);
  for (const auto& k : keys) EXPECT_TRUE(filter.MayContain(k)) << k;
}

TEST(StringBloomRFTest, RangeNoFalseNegatives) {
  StringDatasetOptions options;
  options.num_keys = 10000;
  auto keys = GenerateStringKeys(options);
  auto filter = MakeLoaded(keys);
  for (const auto& k : keys) {
    EXPECT_TRUE(filter.MayContainRange(k, k)) << k;
    EXPECT_TRUE(filter.MayContainRange(k.substr(0, k.size() - 1), k + "zz"))
        << k;
  }
}

TEST(StringBloomRFTest, PrefixProbeCoversMembers) {
  std::vector<std::string> keys = {"alpha/1", "alpha/2", "beta/9"};
  auto filter = MakeLoaded(keys, 20.0);
  EXPECT_TRUE(filter.MayContainPrefix("alpha"));
  EXPECT_TRUE(filter.MayContainPrefix("beta"));
  EXPECT_TRUE(filter.MayContainPrefix("alp"));
}

TEST(StringBloomRFTest, DiscriminatesDistantStrings) {
  StringDatasetOptions options;
  options.num_keys = 20000;
  auto keys = GenerateStringKeys(options);
  auto filter = MakeLoaded(keys, 18.0);
  // Strings from a totally different namespace: mostly excluded.
  Rng rng(4);
  uint64_t fp = 0;
  for (int i = 0; i < 5000; ++i) {
    std::string probe = "zzz" + std::to_string(rng.Next());
    if (filter.MayContain(probe)) ++fp;
  }
  EXPECT_LT(fp, 500u);
  EXPECT_FALSE(filter.MayContainPrefix("zzz") &&
               filter.MayContainPrefix("yyy") &&
               filter.MayContainPrefix("xxx"));
}

TEST(StringBloomRFTest, SevenBytePrefixGranularityDocumented) {
  // Two strings sharing a 7-byte prefix are indistinguishable to range
  // probes: the range between them always answers true.
  std::vector<std::string> keys = {"sameprefix-A"};
  auto filter = MakeLoaded(keys, 20.0);
  EXPECT_TRUE(filter.MayContainRange("sameprefix-B", "sameprefix-C"));
}

TEST(StringBloomRFTest, InvertedRangeIsEmpty) {
  std::vector<std::string> keys = {"m"};
  auto filter = MakeLoaded(keys, 20.0);
  EXPECT_FALSE(filter.MayContainRange("z", "a"));
}

TEST(SyntheticStringsTest, SortedUniqueAndShaped) {
  StringDatasetOptions options;
  options.num_keys = 5000;
  auto keys = GenerateStringKeys(options);
  EXPECT_EQ(keys.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
  for (const auto& k : keys) {
    EXPECT_EQ(k.compare(0, 4, "user"), 0) << k;
    EXPECT_NE(k.find("/album"), std::string::npos) << k;
  }
}

TEST(SyntheticStringsTest, ZipfianUserSkew) {
  StringDatasetOptions options;
  options.num_keys = 20000;
  auto keys = GenerateStringKeys(options);
  std::map<std::string, int> per_user;
  for (const auto& k : keys) ++per_user[k.substr(0, 8)];
  int hottest = 0;
  for (auto& [user, count] : per_user) hottest = std::max(hottest, count);
  // Hot users own far more than the uniform share.
  EXPECT_GT(hottest, static_cast<int>(2 * options.num_keys /
                                      options.num_users));
}

}  // namespace
}  // namespace bloomrf

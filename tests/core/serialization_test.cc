#include <gtest/gtest.h>

#include "core/bloomrf.h"
#include "core/tuning_advisor.h"
#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::RandomKeySet;

TEST(SerializationTest, RoundTripBasic) {
  auto keys = RandomKeySet(5000, 41);
  BloomRF filter(BloomRFConfig::Basic(keys.size(), 14.0));
  for (uint64_t k : keys) filter.Insert(k);

  std::string data = filter.Serialize();
  auto restored = BloomRF::Deserialize(data);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->config().DebugString(), filter.config().DebugString());
  for (uint64_t k : keys) EXPECT_TRUE(restored->MayContain(k)) << k;

  // Identical answers on arbitrary probes, positive or negative.
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    uint64_t y = rng.Next();
    EXPECT_EQ(restored->MayContain(y), filter.MayContain(y)) << y;
    uint64_t hi = y | 0xffff;
    EXPECT_EQ(restored->MayContainRange(y, hi), filter.MayContainRange(y, hi));
  }
}

TEST(SerializationTest, RoundTripAdvisedConfigWithExactLayer) {
  auto keys = RandomKeySet(20000, 43);
  AdvisorParams params;
  params.n = keys.size();
  params.total_bits = 20 * keys.size();
  params.max_range = 1e9;
  BloomRF filter(AdviseConfig(params).config);
  ASSERT_TRUE(filter.config().has_exact_layer);
  for (uint64_t k : keys) filter.Insert(k);

  auto restored = BloomRF::Deserialize(filter.Serialize());
  ASSERT_TRUE(restored.has_value());
  Rng rng(44);
  for (int i = 0; i < 5000; ++i) {
    uint64_t lo = rng.Next();
    uint64_t hi = lo | 0xfffff;
    EXPECT_EQ(restored->MayContainRange(lo, hi),
              filter.MayContainRange(lo, hi));
  }
}

TEST(SerializationTest, SizeMatchesMemory) {
  BloomRF filter(BloomRFConfig::Basic(10000, 12.0));
  std::string data = filter.Serialize();
  // Header + bit arrays; header is small.
  EXPECT_GE(data.size() * 8, filter.MemoryBits());
  EXPECT_LT(data.size() * 8, filter.MemoryBits() + 1024);
}

TEST(SerializationTest, RejectsGarbage) {
  EXPECT_FALSE(BloomRF::Deserialize("").has_value());
  EXPECT_FALSE(BloomRF::Deserialize("garbage").has_value());
  EXPECT_FALSE(
      BloomRF::Deserialize(std::string(200, '\xff')).has_value());
}

TEST(SerializationTest, RejectsTruncation) {
  BloomRF filter(BloomRFConfig::Basic(1000, 12.0));
  std::string data = filter.Serialize();
  for (size_t cut : {data.size() - 1, data.size() / 2, size_t{13}}) {
    EXPECT_FALSE(BloomRF::Deserialize(data.substr(0, cut)).has_value())
        << cut;
  }
}

TEST(SerializationTest, PermutedWordsFlagSurvives) {
  BloomRFConfig cfg = BloomRFConfig::Basic(1000, 14.0);
  cfg.permute_words = true;
  BloomRF filter(cfg);
  auto keys = RandomKeySet(1000, 45);
  for (uint64_t k : keys) filter.Insert(k);
  auto restored = BloomRF::Deserialize(filter.Serialize());
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->config().permute_words);
  for (uint64_t k : keys) EXPECT_TRUE(restored->MayContain(k));
}

}  // namespace
}  // namespace bloomrf

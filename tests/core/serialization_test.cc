#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/bloomrf.h"
#include "core/tuning_advisor.h"
#include "tests/test_util.h"
#include "util/coding.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::RandomKeySet;

TEST(SerializationTest, RoundTripBasic) {
  auto keys = RandomKeySet(5000, 41);
  BloomRF filter(BloomRFConfig::Basic(keys.size(), 14.0));
  for (uint64_t k : keys) filter.Insert(k);

  std::string data = filter.Serialize();
  auto restored = BloomRF::Deserialize(data);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->config().DebugString(), filter.config().DebugString());
  for (uint64_t k : keys) EXPECT_TRUE(restored->MayContain(k)) << k;

  // Identical answers on arbitrary probes, positive or negative.
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    uint64_t y = rng.Next();
    EXPECT_EQ(restored->MayContain(y), filter.MayContain(y)) << y;
    uint64_t hi = y | 0xffff;
    EXPECT_EQ(restored->MayContainRange(y, hi), filter.MayContainRange(y, hi));
  }
}

TEST(SerializationTest, RoundTripAdvisedConfigWithExactLayer) {
  auto keys = RandomKeySet(20000, 43);
  AdvisorParams params;
  params.n = keys.size();
  params.total_bits = 20 * keys.size();
  params.max_range = 1e9;
  BloomRF filter(AdviseConfig(params).config);
  ASSERT_TRUE(filter.config().has_exact_layer);
  for (uint64_t k : keys) filter.Insert(k);

  auto restored = BloomRF::Deserialize(filter.Serialize());
  ASSERT_TRUE(restored.has_value());
  Rng rng(44);
  for (int i = 0; i < 5000; ++i) {
    uint64_t lo = rng.Next();
    uint64_t hi = lo | 0xfffff;
    EXPECT_EQ(restored->MayContainRange(lo, hi),
              filter.MayContainRange(lo, hi));
  }
}

TEST(SerializationTest, SizeMatchesMemory) {
  BloomRF filter(BloomRFConfig::Basic(10000, 12.0));
  std::string data = filter.Serialize();
  // Header + bit arrays; header is small.
  EXPECT_GE(data.size() * 8, filter.MemoryBits());
  EXPECT_LT(data.size() * 8, filter.MemoryBits() + 1024);
}

TEST(SerializationTest, RejectsGarbage) {
  EXPECT_FALSE(BloomRF::Deserialize("").has_value());
  EXPECT_FALSE(BloomRF::Deserialize("garbage").has_value());
  EXPECT_FALSE(
      BloomRF::Deserialize(std::string(200, '\xff')).has_value());
}

TEST(SerializationTest, RejectsTruncation) {
  BloomRF filter(BloomRFConfig::Basic(1000, 12.0));
  std::string data = filter.Serialize();
  for (size_t cut : {data.size() - 1, data.size() / 2, size_t{13}}) {
    EXPECT_FALSE(BloomRF::Deserialize(data.substr(0, cut)).has_value())
        << cut;
  }
}

TEST(SerializationTest, EveryTruncationRejected) {
  // Fuzz-ish sweep: every proper prefix of a serialized filter (with
  // exact layer, multiple segments where the advisor picks them) must
  // be rejected — never over-read, never crash.
  auto keys = RandomKeySet(500, 46);
  AdvisorParams params;
  params.n = keys.size();
  params.total_bits = 20 * keys.size();
  params.max_range = 1e9;
  BloomRF filter(AdviseConfig(params).config);
  for (uint64_t k : keys) filter.Insert(k);
  std::string data = filter.Serialize();
  ASSERT_TRUE(BloomRF::Deserialize(data).has_value());
  for (size_t cut = 0; cut < data.size(); ++cut) {
    ASSERT_FALSE(BloomRF::Deserialize(data.substr(0, cut)).has_value())
        << "prefix of length " << cut << " accepted";
  }
}

TEST(SerializationTest, TrailingGarbageRejected) {
  BloomRF filter(BloomRFConfig::Basic(1000, 12.0));
  std::string data = filter.Serialize();
  EXPECT_FALSE(BloomRF::Deserialize(data + '\0').has_value());
  EXPECT_FALSE(BloomRF::Deserialize(data + "extra").has_value());
}

TEST(SerializationTest, HeaderByteFlipsNeverCrash) {
  auto keys = RandomKeySet(300, 47);
  BloomRF filter(BloomRFConfig::Basic(keys.size(), 14.0));
  for (uint64_t k : keys) filter.Insert(k);
  std::string data = filter.Serialize();
  size_t header = std::min<size_t>(data.size(), 128);
  for (size_t i = 0; i < header; ++i) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xff}}) {
      std::string corrupt = data;
      corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
      auto restored = BloomRF::Deserialize(corrupt);
      if (restored.has_value()) {
        // A surviving parse must still be safe to probe.
        restored->MayContain(42);
        restored->MayContainRange(1, 1000);
      }
    }
  }
}

TEST(SerializationTest, HugeSegmentClaimRejectedWithoutAllocating) {
  // Hand-craft a header claiming a 2^50-bit segment with no payload:
  // must be rejected by the size pre-check, not by an allocation
  // attempt.
  std::string evil;
  PutFixed32(&evil, 0xb100f001);           // magic
  PutFixed32(&evil, 64);                   // domain_bits
  PutFixed32(&evil, 1);                    // one layer
  evil.push_back(7);                       // delta
  evil.push_back(1);                       // replicas
  evil.push_back(0);                       // segment_of
  PutFixed32(&evil, 1);                    // one segment
  PutFixed64(&evil, uint64_t{1} << 50);    // absurd segment_bits
  evil.push_back(0);                       // no exact layer
  evil.push_back(0);                       // no permutation
  PutFixed64(&evil, 0x5eed);               // seed
  EXPECT_FALSE(BloomRF::Deserialize(evil).has_value());
}

TEST(SerializationTest, LegacyFormatBlocksStillLoadAndAnswer) {
  // Filters serialized before the hash-once format bump carry the V1
  // tag and the per-replica hash layout. Building with the legacy
  // scheme reproduces that byte layout exactly; the deserialized
  // filter must keep the scheme and answer identically — scalar and
  // batched — including with replicas > 1, where the schemes place
  // bits differently.
  BloomRFConfig cfg = BloomRFConfig::Basic(2000, 16.0);
  cfg.hash_scheme = HashScheme::kLegacyPerReplica;
  cfg.replicas.assign(cfg.replicas.size(), 2);
  BloomRF filter(cfg);
  auto keys = RandomKeySet(2000, 48);
  for (uint64_t k : keys) filter.Insert(k);

  std::string data = filter.Serialize();
  ASSERT_GE(data.size(), 4u);
  EXPECT_EQ(DecodeFixed32(data.data()), 0xb100f001u);  // pre-bump tag

  auto restored = BloomRF::Deserialize(data);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->config().hash_scheme, HashScheme::kLegacyPerReplica);
  for (uint64_t k : keys) EXPECT_TRUE(restored->MayContain(k)) << k;

  Rng rng(49);
  std::vector<uint64_t> probes;
  for (int i = 0; i < 5000; ++i) probes.push_back(rng.Next());
  for (uint64_t k : keys) probes.push_back(k);
  auto batched = std::make_unique<bool[]>(probes.size());
  restored->MayContainBatch(probes, batched.get());
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(batched[i], filter.MayContain(probes[i])) << probes[i];
    uint64_t hi = probes[i] | 0xffff;
    EXPECT_EQ(restored->MayContainRange(probes[i], hi),
              filter.MayContainRange(probes[i], hi));
  }
}

TEST(SerializationTest, CurrentFormatCarriesHashScheme) {
  // New filters default to the hash-once scheme and serialize with the
  // V2 tag; the scheme survives the round trip.
  BloomRFConfig cfg = BloomRFConfig::Basic(1000, 14.0);
  ASSERT_EQ(cfg.hash_scheme, HashScheme::kDoubleHash);
  cfg.replicas.assign(cfg.replicas.size(), 2);
  BloomRF filter(cfg);
  auto keys = RandomKeySet(1000, 50);
  for (uint64_t k : keys) filter.Insert(k);

  std::string data = filter.Serialize();
  ASSERT_GE(data.size(), 4u);
  EXPECT_EQ(DecodeFixed32(data.data()), 0xb100f002u);

  auto restored = BloomRF::Deserialize(data);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->config().hash_scheme, HashScheme::kDoubleHash);
  for (uint64_t k : keys) EXPECT_TRUE(restored->MayContain(k)) << k;
  Rng rng(51);
  for (int i = 0; i < 5000; ++i) {
    uint64_t y = rng.Next();
    EXPECT_EQ(restored->MayContain(y), filter.MayContain(y)) << y;
  }
}

TEST(SerializationTest, PermutedWordsFlagSurvives) {
  BloomRFConfig cfg = BloomRFConfig::Basic(1000, 14.0);
  cfg.permute_words = true;
  BloomRF filter(cfg);
  auto keys = RandomKeySet(1000, 45);
  for (uint64_t k : keys) filter.Insert(k);
  auto restored = BloomRF::Deserialize(filter.Serialize());
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->config().permute_words);
  for (uint64_t k : keys) EXPECT_TRUE(restored->MayContain(k));
}

}  // namespace
}  // namespace bloomrf

#include "core/filter_planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/tuning_advisor.h"

namespace bloomrf {
namespace {

WorkloadSnapshot PointSnapshot(uint64_t samples) {
  WorkloadSnapshot snap;
  snap.ops = samples;
  snap.point_samples = samples;
  return snap;
}

WorkloadSnapshot RangeSnapshot(uint64_t samples, size_t width_bucket) {
  WorkloadSnapshot snap;
  snap.ops = samples;
  snap.range_samples = samples;
  snap.range_width_log2[width_bucket] = samples;
  return snap;
}

double CostOf(const FilterPlan& plan, const std::string& backend) {
  for (const auto& [name, cost] : plan.candidate_costs) {
    if (name == backend) return cost;
  }
  ADD_FAILURE() << backend << " not among scored candidates";
  return -1.0;
}

TEST(FilterPlannerTest, PurePointWorkloadPicksBlockedBloom) {
  // No range ever sampled: the range-incapable backend with the
  // cheapest probe and the model-best point FPR should win.
  PlannerOptions options;
  FilterPlan plan = PlanFilter(PointSnapshot(10'000), 100'000, options);
  EXPECT_EQ(plan.backend, "blocked_bloom");
  EXPECT_FALSE(plan.used_fallback);
  EXPECT_LT(plan.predicted_point_fpr, 0.01);
  EXPECT_EQ(plan.candidate_costs.size(), 5u);  // every backend scored
}

TEST(FilterPlannerTest, PureWideRangeWorkloadPicksRangeCapableBackend) {
  // All queries are ~2^30-wide ranges: point-only Blooms score range
  // FPR 1 and must lose to a genuinely range-capable design.
  PlannerOptions options;
  FilterPlan plan = PlanFilter(RangeSnapshot(10'000, 30), 100'000, options);
  EXPECT_NE(plan.backend, "blocked_bloom");
  EXPECT_NE(plan.backend, "bloom");
  EXPECT_LT(plan.predicted_range_fpr, 1.0);
  // The chosen backend holds the minimum scored cost.
  double best = CostOf(plan, plan.backend);
  for (const auto& [name, cost] : plan.candidate_costs) {
    EXPECT_GE(cost, best) << name;
  }
  EXPECT_LT(best, CostOf(plan, "blocked_bloom"));
}

TEST(FilterPlannerTest, BimodalWorkloadPicksBloomRF) {
  // Half points, half 2^16-wide ranges: bloomRF's dyadic design is the
  // only candidate strong on both sides (Rosetta's ladder blows the
  // 16-bit budget at this width; prefix Bloom halves its bits by
  // storing key + prefix).
  WorkloadSnapshot snap;
  snap.ops = 20'000;
  snap.point_samples = 10'000;
  snap.range_samples = 10'000;
  snap.range_width_log2[16] = 10'000;
  PlannerOptions options;
  FilterPlan plan = PlanFilter(snap, 100'000, options);
  EXPECT_EQ(plan.backend, "bloomrf");
  EXPECT_TRUE(plan.has_bloomrf_config);
  EXPECT_TRUE(plan.bloomrf_config.Validate().empty());
  EXPECT_LT(plan.predicted_point_fpr, 0.05);
  EXPECT_LT(plan.predicted_range_fpr, 0.5);
}

TEST(FilterPlannerTest, SingleBucketHistogramMatchesScalarMaxRange) {
  // The histogram-weighted advisor must reduce to the old scalar
  // behavior when all mass sits in one bucket L == log2(max_range).
  for (uint32_t bucket : {8u, 20u, 34u}) {
    AdvisorParams scalar;
    scalar.n = 1'000'000;
    scalar.total_bits = 16 * scalar.n;
    scalar.max_range = std::ldexp(1.0, static_cast<int>(bucket));
    AdvisorResult via_scalar = AdviseConfig(scalar);

    AdvisorParams weighted = scalar;
    weighted.max_range = 1.0;  // must be ignored when weights are set
    weighted.range_weights.assign(bucket + 1, 0.0);
    weighted.range_weights[bucket] = 1.0;
    AdvisorResult via_weights = AdviseConfig(weighted);

    EXPECT_DOUBLE_EQ(via_weights.expected_point_fpr,
                     via_scalar.expected_point_fpr)
        << "bucket " << bucket;
    EXPECT_DOUBLE_EQ(via_weights.expected_range_fpr,
                     via_scalar.expected_range_fpr)
        << "bucket " << bucket;
    EXPECT_DOUBLE_EQ(via_weights.weighted_score, via_scalar.weighted_score)
        << "bucket " << bucket;
  }
}

TEST(FilterPlannerTest, TooFewSamplesFallsBack) {
  PlannerOptions options;
  options.min_samples = 32;
  options.fallback_backend = "bloomrf";
  FilterPlan plan = PlanFilter(PointSnapshot(5), 100'000, options);
  EXPECT_TRUE(plan.used_fallback);
  EXPECT_EQ(plan.backend, "bloomrf");
  EXPECT_DOUBLE_EQ(plan.max_range, options.fallback_max_range);
  EXPECT_TRUE(plan.candidate_costs.empty());
}

TEST(FilterPlannerTest, MeasuredDivergenceDistrustsTheModel) {
  // Without feedback blocked_bloom wins the pure-point workload; with
  // measured FPR far above its model's prediction the planner must
  // abandon it for a backend reality has not contradicted.
  PlannerOptions options;
  WorkloadSnapshot snap = PointSnapshot(10'000);
  FilterPlan trusting = PlanFilter(snap, 100'000, options);
  ASSERT_EQ(trusting.backend, "blocked_bloom");

  FilterFeedback feedback;
  BackendObservation* obs = feedback.FindOrAdd("blocked_bloom");
  obs->point_allowed = 5'000;
  obs->point_false = 5'000;  // measured FPR ~0.33 vs model ~1e-4
  obs->point_negatives = 10'000;
  FilterPlan distrusting = PlanFilter(snap, 100'000, options, &feedback);
  EXPECT_NE(distrusting.backend, "blocked_bloom");
  EXPECT_GT(CostOf(distrusting, "blocked_bloom"),
            CostOf(trusting, "blocked_bloom"));
}

TEST(FilterPlannerTest, ObservationBelowProbeFloorIsIgnored) {
  PlannerOptions options;
  options.feedback_min_probes = 512;
  WorkloadSnapshot snap = PointSnapshot(10'000);
  FilterFeedback feedback;
  BackendObservation* obs = feedback.FindOrAdd("blocked_bloom");
  obs->point_false = 100;  // only 100 definite outcomes: noise
  FilterPlan plan = PlanFilter(snap, 100'000, options, &feedback);
  EXPECT_EQ(plan.backend, "blocked_bloom");
}

TEST(FilterPlannerTest, MeasuredFprNeedsEnoughProbes) {
  BackendObservation obs;
  obs.point_false = 10;
  obs.point_negatives = 10;
  EXPECT_LT(obs.MeasuredPointFpr(512), 0.0);  // under the floor
  EXPECT_DOUBLE_EQ(obs.MeasuredPointFpr(20), 0.5);
  obs.range_false = 0;
  obs.range_negatives = 1000;
  EXPECT_DOUBLE_EQ(obs.MeasuredRangeFpr(512), 0.0);
}

}  // namespace
}  // namespace bloomrf

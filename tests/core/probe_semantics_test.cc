// Probe-semantics edge cases of the two-path range algorithm: domain
// boundaries, conservative caps, early stopping, and the covering/
// decomposition accounting exposed through ProbeStats.

#include <gtest/gtest.h>

#include "core/bloomrf.h"
#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::RandomKeySet;

TEST(ProbeSemanticsTest, DomainBoundaryRanges) {
  BloomRF filter(BloomRFConfig::Basic(100, 16.0));
  filter.Insert(0);
  filter.Insert(UINT64_MAX);
  EXPECT_TRUE(filter.MayContainRange(0, 0));
  EXPECT_TRUE(filter.MayContainRange(UINT64_MAX, UINT64_MAX));
  EXPECT_TRUE(filter.MayContainRange(0, 1));
  EXPECT_TRUE(filter.MayContainRange(UINT64_MAX - 1, UINT64_MAX));
  EXPECT_TRUE(filter.MayContainRange(0, UINT64_MAX));
}

TEST(ProbeSemanticsTest, TopLayerCapIsConservativeTrueOnly) {
  // A tiny word cap forces huge spans to return true (never false):
  // the cap must not introduce false negatives elsewhere.
  BloomRFConfig cfg = BloomRFConfig::Basic(1000, 16.0);
  cfg.max_top_layer_words = 1;
  BloomRF filter(cfg);
  auto keys = RandomKeySet(1000, 501);
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) {
    ASSERT_TRUE(filter.MayContainRange(k, k));
    ASSERT_TRUE(filter.MayContainRange(0, UINT64_MAX));
  }
  // Small local ranges still resolve exactly (cap only affects spans
  // wider than one top-layer word).
  ProbeStats stats;
  uint64_t anchor = *keys.begin();
  filter.MayContainRange(anchor, anchor + 100, &stats);
  EXPECT_GT(stats.bit_probes + stats.word_probes, 0u);
}

TEST(ProbeSemanticsTest, EarlyStopOnDeadCovering) {
  // An empty filter kills the top covering immediately: exactly one
  // bit probe for any single-covering interval.
  BloomRF filter(BloomRFConfig::Basic(100000, 16.0));
  ProbeStats stats;
  EXPECT_FALSE(filter.MayContainRange(1000, 2000, &stats));
  EXPECT_LE(stats.bit_probes, 2u);
  EXPECT_EQ(stats.word_probes, 0u);
}

TEST(ProbeSemanticsTest, EarlyTrueStopsDescending) {
  // A range fully containing an inserted key hits a decomposition word
  // early; probes must stay well below the full-layer walk.
  BloomRFConfig cfg = BloomRFConfig::Basic(1000, 16.0);
  BloomRF filter(cfg);
  filter.Insert(uint64_t{1} << 32);
  ProbeStats stats;
  EXPECT_TRUE(filter.MayContainRange(0, UINT64_MAX, &stats));
  EXPECT_LE(stats.bit_probes + stats.word_probes,
            6 * cfg.num_layers() + 8);
}

TEST(ProbeSemanticsTest, PointProbeLayerOrderTopDown) {
  // The top layers saturate fastest, so negatives usually die high up:
  // average bit probes on misses must be far below k for a loaded
  // filter probed far from its keys.
  auto keys = RandomKeySet(100000, 502);
  BloomRFConfig cfg = BloomRFConfig::Basic(keys.size(), 12.0);
  BloomRF filter(cfg);
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(503);
  uint64_t total_probes = 0;
  constexpr int kQueries = 20000;
  for (int i = 0; i < kQueries; ++i) {
    ProbeStats stats;
    filter.MayContain(rng.Next(), &stats);
    total_probes += stats.bit_probes;
  }
  double avg = static_cast<double>(total_probes) / kQueries;
  EXPECT_LT(avg, static_cast<double>(cfg.num_layers()));
  EXPECT_GE(avg, 1.0);
}

TEST(ProbeSemanticsTest, ExactScanCapConservative) {
  BloomRFConfig cfg;
  cfg.domain_bits = 64;
  cfg.delta = {7, 7, 7, 7, 7, 7};
  cfg.replicas = {1, 1, 1, 1, 1, 1};
  cfg.segment_of = {0, 0, 0, 0, 0, 0};
  cfg.segment_bits = {1 << 16};
  cfg.has_exact_layer = true;
  cfg.max_exact_scan_bits = 4;  // absurdly small: force the cap
  ASSERT_TRUE(cfg.Validate().empty());
  BloomRF filter(cfg);
  // Empty filter + capped exact scan: wide ranges answer true
  // (conservative), narrow ones answer false (exactly probed).
  EXPECT_TRUE(filter.MayContainRange(0, UINT64_MAX / 2));
  EXPECT_FALSE(filter.MayContainRange(1000, 2000));
}

TEST(ProbeSemanticsTest, RangeSubsetMonotonicity) {
  // If the filter rejects an interval, it must reject all subsets.
  auto keys = RandomKeySet(20000, 504);
  BloomRF filter(BloomRFConfig::Basic(keys.size(), 14.0));
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(505);
  int checked = 0;
  for (int i = 0; i < 50000 && checked < 300; ++i) {
    uint64_t lo = rng.Next();
    uint64_t hi = lo + 0xffff > lo ? lo + 0xffff : lo;
    if (filter.MayContainRange(lo, hi)) continue;
    ++checked;
    for (int j = 0; j < 8; ++j) {
      uint64_t slo = lo + rng.Uniform(0x8000);
      uint64_t shi = slo + rng.Uniform(0x7fff);
      if (shi > hi) shi = hi;
      ASSERT_FALSE(filter.MayContainRange(slo, shi))
          << "[" << slo << "," << shi << "] inside rejected [" << lo << ","
          << hi << "]";
    }
  }
  EXPECT_GT(checked, 100);
}

TEST(ProbeSemanticsTest, StatsAccumulateAcrossCalls) {
  BloomRF filter(BloomRFConfig::Basic(1000, 16.0));
  filter.Insert(42);
  ProbeStats stats;
  filter.MayContain(42, &stats);
  uint64_t after_one = stats.bit_probes;
  filter.MayContain(42, &stats);
  EXPECT_EQ(stats.bit_probes, 2 * after_one);
}

}  // namespace
}  // namespace bloomrf

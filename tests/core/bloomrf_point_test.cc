#include <gtest/gtest.h>

#include <set>

#include "core/bloomrf.h"
#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::RandomKeySet;

TEST(BloomRFPointTest, EmptyFilterRejectsEverything) {
  BloomRF filter(BloomRFConfig::Basic(1000, 12.0));
  EXPECT_FALSE(filter.MayContain(0));
  EXPECT_FALSE(filter.MayContain(42));
  EXPECT_FALSE(filter.MayContain(UINT64_MAX));
}

TEST(BloomRFPointTest, NoFalseNegatives) {
  auto keys = RandomKeySet(50000, 11);
  BloomRF filter(BloomRFConfig::Basic(keys.size(), 12.0));
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) EXPECT_TRUE(filter.MayContain(k)) << k;
}

TEST(BloomRFPointTest, FprWithinBudget) {
  auto keys = RandomKeySet(100000, 12);
  BloomRF filter(BloomRFConfig::Basic(keys.size(), 14.0));
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(13);
  uint64_t fp = 0, negatives = 0;
  for (int i = 0; i < 200000; ++i) {
    uint64_t y = rng.Next();
    if (keys.count(y)) continue;
    ++negatives;
    if (filter.MayContain(y)) ++fp;
  }
  double fpr = static_cast<double>(fp) / static_cast<double>(negatives);
  EXPECT_LT(fpr, 0.02);  // 14 bits/key should be well under 2%
}

TEST(BloomRFPointTest, ExtremeKeysHandled) {
  BloomRF filter(BloomRFConfig::Basic(16, 16.0));
  for (uint64_t k : {uint64_t{0}, uint64_t{1}, UINT64_MAX, UINT64_MAX - 1,
                     uint64_t{1} << 63}) {
    filter.Insert(k);
    EXPECT_TRUE(filter.MayContain(k)) << k;
  }
}

TEST(BloomRFPointTest, SmallDomainExhaustive) {
  auto keys = RandomKeySet(100, 14, /*domain=*/1 << 12);
  BloomRF filter(BloomRFConfig::Basic(keys.size(), 12.0, 12, 3));
  for (uint64_t k : keys) filter.Insert(k);
  uint64_t fp = 0;
  for (uint64_t y = 0; y < (1 << 12); ++y) {
    bool truth = keys.count(y) > 0;
    bool answer = filter.MayContain(y);
    ASSERT_TRUE(answer || !truth) << "false negative at " << y;
    if (answer && !truth) ++fp;
  }
  EXPECT_LT(fp, (1 << 12) / 6);
}

TEST(BloomRFPointTest, ProbeStatsCountLayers) {
  BloomRFConfig cfg = BloomRFConfig::Basic(1000, 14.0);
  BloomRF filter(cfg);
  filter.Insert(42);
  ProbeStats stats;
  filter.MayContain(42, &stats);
  // A full positive probe touches every layer exactly once.
  EXPECT_EQ(stats.bit_probes, cfg.num_layers());
}

TEST(BloomRFPointTest, NegativeProbesStopEarly) {
  BloomRFConfig cfg = BloomRFConfig::Basic(1000, 14.0);
  BloomRF filter(cfg);
  filter.Insert(42);
  ProbeStats stats;
  filter.MayContain(0xdeadbeefdeadbeefULL, &stats);
  EXPECT_LE(stats.bit_probes, cfg.num_layers());
  EXPECT_GE(stats.bit_probes, 1u);
}

TEST(BloomRFPointTest, WithExactLayerNoFalseNegatives) {
  BloomRFConfig cfg;
  cfg.domain_bits = 64;
  cfg.delta = {7, 7, 7, 7, 7, 7};
  cfg.replicas = {1, 1, 1, 1, 1, 2};
  cfg.segment_of = {1, 1, 1, 1, 0, 0};
  cfg.segment_bits = {100000, 300000};
  cfg.has_exact_layer = true;  // exact level 42: 2^22 bits
  ASSERT_TRUE(cfg.Validate().empty()) << cfg.Validate();
  BloomRF filter(cfg);
  auto keys = RandomKeySet(20000, 15);
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) EXPECT_TRUE(filter.MayContain(k)) << k;
}

TEST(BloomRFPointTest, PermutedWordsNoFalseNegatives) {
  BloomRFConfig cfg = BloomRFConfig::Basic(5000, 14.0);
  cfg.permute_words = true;
  BloomRF filter(cfg);
  auto keys = RandomKeySet(5000, 16);
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) EXPECT_TRUE(filter.MayContain(k)) << k;
}

TEST(BloomRFPointTest, ReplicasReducePointFpr) {
  auto keys = RandomKeySet(30000, 17);
  auto measure = [&](uint8_t replicas) {
    BloomRFConfig cfg = BloomRFConfig::Basic(keys.size(), 16.0);
    for (auto& r : cfg.replicas) r = replicas;
    BloomRF filter(cfg);
    for (uint64_t k : keys) filter.Insert(k);
    Rng rng(18);
    uint64_t fp = 0;
    for (int i = 0; i < 100000; ++i) {
      uint64_t y = rng.Next();
      if (!keys.count(y) && filter.MayContain(y)) ++fp;
    }
    return fp;
  };
  // Doubling hash functions at this load factor must cut FPR.
  EXPECT_LT(measure(2), measure(1));
}

}  // namespace
}  // namespace bloomrf

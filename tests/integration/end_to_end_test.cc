// End-to-end integration: the full YCSB-E-style flow of the paper's
// Experiment 1 at miniature scale — dataset generation, LSM ingestion
// with filter blocks, empty point/range workloads, FPR and I/O
// accounting — plus cross-filter sanity on identical data.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "bench/lsm_bench_util.h"
#include "lsm/db.h"
#include "workload/key_generator.h"
#include "workload/query_generator.h"

namespace bloomrf {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_e2e_" + std::string(::testing::UnitTest::
        GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(EndToEndTest, Experiment1MiniatureBloomRF) {
  Dataset data = MakeDataset(40000, Distribution::kUniform, 301);
  QueryWorkload workload =
      MakeQueryWorkload(data, 2000, 100000, Distribution::kNormal, 302);
  bench::LsmRunResult result = bench::RunLsmWorkload(
      data, NewBloomRFPolicy(22.0, 1e5), workload, dir_, 64, 512 << 10);
  EXPECT_GT(result.sst_files, 1u);
  EXPECT_LT(result.range_fpr, 0.10);
  EXPECT_LT(result.point_fpr, 0.02);
  // Filters must have produced negatives (I/O skipped).
  EXPECT_GT(result.stats.filter_negatives, 0u);
  double bpk = static_cast<double>(result.filter_bits) /
               static_cast<double>(data.keys.size());
  EXPECT_GT(bpk, 20.0);
  EXPECT_LT(bpk, 24.0);
}

TEST_F(EndToEndTest, AllPoliciesAgreeOnNonEmptyRanges) {
  Dataset data = MakeDataset(10000, Distribution::kNormal, 303);
  QueryWorkload workload =
      MakeQueryWorkload(data, 500, 1000, Distribution::kNormal, 304);
  std::vector<std::shared_ptr<FilterPolicy>> policies = {
      NewBloomRFPolicy(20.0, 1e3), NewRosettaPolicy(20.0, 1 << 10),
      NewSurfPolicy(2, 8)};
  int idx = 0;
  for (auto& policy : policies) {
    std::string subdir = dir_ + "/v" + std::to_string(idx++);
    DbOptions options;
    options.dir = subdir;
    options.filter_policy = policy;
    options.memtable_bytes = 256 << 10;
    Db db(options);
    for (uint64_t k : data.keys) db.Put(k, "x");
    db.Flush();
    for (const RangeQuery& q : workload.range_queries) {
      if (!q.empty) {
        ASSERT_TRUE(db.RangeMayMatch(q.lo, q.hi))
            << "policy " << idx << " [" << q.lo << "," << q.hi << "]";
      }
    }
  }
}

TEST_F(EndToEndTest, SkewedWorkloadStaysRobust) {
  // Problem 3: zipfian data and workload must not blow up the FPR.
  Dataset data = MakeDataset(30000, Distribution::kZipfian, 305);
  QueryWorkload workload =
      MakeQueryWorkload(data, 2000, 1 << 14, Distribution::kZipfian, 306);
  bench::LsmRunResult result = bench::RunLsmWorkload(
      data, NewBloomRFPolicy(20.0, 1 << 14), workload, dir_, 64, 512 << 10);
  EXPECT_LT(result.range_fpr, 0.35);
  EXPECT_LT(result.point_fpr, 0.05);
}

TEST_F(EndToEndTest, ReopenedFiltersKeepWorking) {
  // Round-trip through the on-disk filter blocks: reopen SSTs fresh.
  Dataset data = MakeDataset(20000, Distribution::kUniform, 307);
  auto policy = std::shared_ptr<FilterPolicy>(NewBloomRFPolicy(18.0, 1e4));
  {
    DbOptions options;
    options.dir = dir_;
    options.filter_policy = policy;
    options.memtable_bytes = 256 << 10;
    Db db(options);
    for (uint64_t k : data.keys) db.Put(k, MakeValue(k, 32));
    db.Flush();
  }
  // Open the SST files directly through TableReader (the directory
  // also holds the MANIFEST and CURRENT files now).
  LsmStats stats;
  size_t tables = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() != ".sst") continue;
    auto reader = TableReader::Open(entry.path().string(), policy.get(),
                                    &stats);
    ASSERT_NE(reader, nullptr);
    ++tables;
    std::string value;
    // Spot-check membership via the fresh reader.
    for (size_t i = 0; i < data.keys.size(); i += 997) {
      uint64_t k = data.keys[i];
      if (k >= reader->min_key() && k <= reader->max_key()) {
        reader->Get(k, &value, &stats);
      }
    }
  }
  EXPECT_GT(tables, 0u);
  EXPECT_GT(stats.deser_nanos, 0u);
}

}  // namespace
}  // namespace bloomrf

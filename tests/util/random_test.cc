#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace bloomrf {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(5), b(6);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(3);
  double sum = 0, sum_sq = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kSamples;
  double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(ZipfianTest, RankZeroMostPopular) {
  ZipfianGenerator zipf(1000, 0.99, 4);
  std::map<uint64_t, uint64_t> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next()];
  // Rank 0 must dominate rank 10 which dominates rank 100.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator zipf(50, 0.99, 5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(), 50u);
}

TEST(ZipfianTest, LargeDomainConstructible) {
  // Zeta approximation keeps construction fast for 2^40 ranks.
  ZipfianGenerator zipf(uint64_t{1} << 40, 0.99, 6);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Next(), uint64_t{1} << 40);
}

TEST(GenerateDistinctKeysTest, CountsAndUniqueness) {
  for (Distribution dist : {Distribution::kUniform, Distribution::kNormal,
                            Distribution::kZipfian}) {
    auto keys = GenerateDistinctKeys(20000, dist, 7);
    std::set<uint64_t> unique(keys.begin(), keys.end());
    EXPECT_EQ(keys.size(), 20000u) << DistributionName(dist);
    EXPECT_EQ(unique.size(), 20000u) << DistributionName(dist);
  }
}

TEST(GenerateDistinctKeysTest, NormalIsCentered) {
  auto keys = GenerateDistinctKeys(20000, Distribution::kNormal, 8);
  // Most mass within mean +- 3 sigma = 2^63 +- 3*2^59.
  uint64_t center = uint64_t{1} << 63;
  uint64_t three_sigma = 3 * (uint64_t{1} << 59);
  size_t inside = 0;
  for (uint64_t k : keys) {
    if (k >= center - three_sigma && k <= center + three_sigma) ++inside;
  }
  EXPECT_GT(inside, keys.size() * 99 / 100);
}

TEST(GenerateDistinctKeysTest, ZipfianIsClustered) {
  auto keys = GenerateDistinctKeys(20000, Distribution::kZipfian, 9);
  // Zipfian keys concentrate in hot 2^16-aligned blocks: the hottest
  // block holds many distinct keys (uniform data: ~1 key per block).
  std::map<uint64_t, uint64_t> blocks;
  for (uint64_t k : keys) ++blocks[k >> 16];
  uint64_t hottest = 0;
  for (auto& [block, count] : blocks) hottest = std::max(hottest, count);
  EXPECT_GE(hottest, 20u);
  EXPECT_LT(blocks.size(), keys.size());
}

TEST(GenerateDistinctKeysTest, SeedsGiveDifferentSets) {
  auto a = GenerateDistinctKeys(1000, Distribution::kUniform, 1);
  auto b = GenerateDistinctKeys(1000, Distribution::kUniform, 2);
  EXPECT_NE(a, b);
}

TEST(DistributionNameTest, AllNamed) {
  EXPECT_STREQ(DistributionName(Distribution::kUniform), "uniform");
  EXPECT_STREQ(DistributionName(Distribution::kNormal), "normal");
  EXPECT_STREQ(DistributionName(Distribution::kZipfian), "zipfian");
}

}  // namespace
}  // namespace bloomrf

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace bloomrf {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    group.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  TaskGroup group(&pool);
  int count = 0;  // no atomics needed: everything runs on this thread
  for (int i = 0; i < 10; ++i) {
    group.Submit([&count] { ++count; });
  }
  group.Wait();
  EXPECT_EQ(count, 10);
}

TEST(ThreadPoolTest, GroupIsReusableAcrossRounds) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      group.Submit([&count] { count.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, WaiterStealsWhenPoolIsSmallerThanFanout) {
  // A 1-thread pool given tasks that each take a while: Wait() must
  // help run them rather than serialize behind the single worker.
  ThreadPool pool(1);
  TaskGroup group(&pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    group.Submit([&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ConcurrentGroupsDoNotCrossSignal) {
  // Two client threads fan out over the same pool; each must only wait
  // for its own tasks and see its own full count.
  ThreadPool pool(4);
  std::atomic<int> a{0}, b{0};
  std::thread ta([&] {
    TaskGroup group(&pool);
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < 10; ++i) group.Submit([&a] { a.fetch_add(1); });
      group.Wait();
      ASSERT_EQ(a.load() % 10, 0);
    }
  });
  std::thread tb([&] {
    TaskGroup group(&pool);
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < 10; ++i) group.Submit([&b] { b.fetch_add(1); });
      group.Wait();
      ASSERT_EQ(b.load() % 10, 0);
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load(), 200);
  EXPECT_EQ(b.load(), 200);
}

TEST(ThreadPoolTest, FireAndForgetCompletesBeforeDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 30; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // Destructor drains the queue.
  }
  EXPECT_EQ(count.load(), 30);
}

}  // namespace
}  // namespace bloomrf

#include "util/coding.h"

#include <gtest/gtest.h>

namespace bloomrf {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  PutFixed32(&s, 0xdeadbeef);
  PutFixed32(&s, 0);
  ASSERT_EQ(s.size(), 8u);
  EXPECT_EQ(DecodeFixed32(s.data()), 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed32(s.data() + 4), 0u);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  PutFixed64(&s, 0x0123456789abcdefULL);
  EXPECT_EQ(DecodeFixed64(s.data()), 0x0123456789abcdefULL);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string s;
  PutLengthPrefixed(&s, "hello");
  PutLengthPrefixed(&s, "");
  PutLengthPrefixed(&s, "world");
  size_t pos = 0;
  std::string_view out;
  ASSERT_TRUE(GetLengthPrefixed(s, &pos, &out));
  EXPECT_EQ(out, "hello");
  ASSERT_TRUE(GetLengthPrefixed(s, &pos, &out));
  EXPECT_EQ(out, "");
  ASSERT_TRUE(GetLengthPrefixed(s, &pos, &out));
  EXPECT_EQ(out, "world");
  EXPECT_FALSE(GetLengthPrefixed(s, &pos, &out));  // exhausted
}

TEST(CodingTest, LengthPrefixedRejectsTruncation) {
  std::string s;
  PutLengthPrefixed(&s, "hello");
  s.resize(s.size() - 2);
  size_t pos = 0;
  std::string_view out;
  EXPECT_FALSE(GetLengthPrefixed(s, &pos, &out));
}

TEST(CodingTest, BigEndianKeyPreservesOrder) {
  uint64_t values[] = {0,       1,          255,        256,
                       1ULL << 32, 1ULL << 63, UINT64_MAX - 1, UINT64_MAX};
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(EncodeKeyBigEndian(values[i]), EncodeKeyBigEndian(values[i + 1]))
        << values[i];
  }
}

TEST(CodingTest, BigEndianKeyRoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{42}, uint64_t{0xdeadbeef},
                     UINT64_MAX}) {
    EXPECT_EQ(DecodeKeyBigEndian(EncodeKeyBigEndian(v)), v);
  }
}

TEST(CodingTest, BigEndianShortSliceDecodesPadded) {
  // A 2-byte slice decodes as if zero-extended on the right.
  std::string full = EncodeKeyBigEndian(0xabcd000000000000ULL);
  EXPECT_EQ(DecodeKeyBigEndian(std::string_view(full).substr(0, 2)),
            0xabcd000000000000ULL);
}

}  // namespace
}  // namespace bloomrf

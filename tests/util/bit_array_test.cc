#include "util/bit_array.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace bloomrf {
namespace {

TEST(BitArrayTest, StartsZeroed) {
  BitArray bits(1000);
  for (uint64_t i = 0; i < 1000; ++i) EXPECT_FALSE(bits.TestBit(i));
  EXPECT_EQ(bits.CountOnes(), 0u);
}

TEST(BitArrayTest, RoundsUpTo64) {
  BitArray bits(1);
  EXPECT_EQ(bits.size_bits(), 64u);
  BitArray bits2(65);
  EXPECT_EQ(bits2.size_bits(), 128u);
}

TEST(BitArrayTest, SetAndTest) {
  BitArray bits(256);
  bits.SetBit(0);
  bits.SetBit(63);
  bits.SetBit(64);
  bits.SetBit(255);
  EXPECT_TRUE(bits.TestBit(0));
  EXPECT_TRUE(bits.TestBit(63));
  EXPECT_TRUE(bits.TestBit(64));
  EXPECT_TRUE(bits.TestBit(255));
  EXPECT_FALSE(bits.TestBit(1));
  EXPECT_FALSE(bits.TestBit(128));
  EXPECT_EQ(bits.CountOnes(), 4u);
}

TEST(BitArrayTest, WordAccessAllSizes) {
  for (uint32_t word_bits : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    BitArray bits(1024);
    uint64_t pattern = word_bits == 64 ? 0xdeadbeefcafef00dULL
                                       : ((1ULL << word_bits) - 1) & 0x5aa5;
    if (pattern == 0) pattern = 1;
    uint64_t idx = 1024 / word_bits - 1;  // last word
    bits.OrWord(idx, word_bits, pattern);
    EXPECT_EQ(bits.LoadWord(idx, word_bits), pattern) << word_bits;
    EXPECT_EQ(bits.LoadWord(0, word_bits), 0u) << word_bits;
  }
}

TEST(BitArrayTest, WordOrAccumulates) {
  BitArray bits(128);
  bits.OrWord(2, 8, 0b0001);
  bits.OrWord(2, 8, 0b1000);
  EXPECT_EQ(bits.LoadWord(2, 8), 0b1001u);
}

TEST(BitArrayTest, WordsMatchBits) {
  BitArray bits(512);
  bits.OrWord(3, 8, 1ULL << 5);  // word 3 of 8 bits = bits 24..31
  EXPECT_TRUE(bits.TestBit(24 + 5));
  EXPECT_EQ(bits.CountOnes(), 1u);
}

TEST(BitArrayTest, AnyInRangeSingleBlock) {
  BitArray bits(256);
  bits.SetBit(70);
  EXPECT_TRUE(bits.AnyInRange(70, 70));
  EXPECT_TRUE(bits.AnyInRange(64, 127));
  EXPECT_FALSE(bits.AnyInRange(0, 69));
  EXPECT_FALSE(bits.AnyInRange(71, 255));
}

TEST(BitArrayTest, AnyInRangeCrossBlocks) {
  BitArray bits(512);
  bits.SetBit(200);
  EXPECT_TRUE(bits.AnyInRange(0, 511));
  EXPECT_TRUE(bits.AnyInRange(199, 201));
  EXPECT_TRUE(bits.AnyInRange(128, 256));
  EXPECT_FALSE(bits.AnyInRange(0, 199));
  EXPECT_FALSE(bits.AnyInRange(201, 511));
}

TEST(BitArrayTest, AnyInRangeBoundaries) {
  BitArray bits(128);
  bits.SetBit(0);
  bits.SetBit(127);
  EXPECT_TRUE(bits.AnyInRange(0, 0));
  EXPECT_TRUE(bits.AnyInRange(127, 127));
  EXPECT_FALSE(bits.AnyInRange(1, 126));
  // Clamped out-of-range queries.
  EXPECT_TRUE(bits.AnyInRange(100, 100000));
  EXPECT_FALSE(bits.AnyInRange(128, 100000));
  EXPECT_FALSE(bits.AnyInRange(5, 4));
}

TEST(BitArrayTest, SerializeRoundTrip) {
  BitArray bits(320);
  for (uint64_t i = 0; i < 320; i += 7) bits.SetBit(i);
  std::string data;
  bits.SerializeTo(&data);
  EXPECT_EQ(data.size(), 320u / 8);

  BitArray restored;
  ASSERT_TRUE(restored.DeserializeFrom(320, data));
  for (uint64_t i = 0; i < 320; ++i) {
    EXPECT_EQ(restored.TestBit(i), bits.TestBit(i)) << i;
  }
}

TEST(BitArrayTest, DeserializeRejectsBadSize) {
  BitArray bits;
  EXPECT_FALSE(bits.DeserializeFrom(320, "short"));
}

TEST(BitArrayTest, ConcurrentSetsAreAllVisible) {
  BitArray bits(1 << 16);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bits, t] {
      for (uint64_t i = static_cast<uint64_t>(t); i < (1 << 16);
           i += kThreads) {
        bits.SetBit(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bits.CountOnes(), uint64_t{1} << 16);
}

}  // namespace
}  // namespace bloomrf

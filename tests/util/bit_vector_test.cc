#include "util/bit_vector.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace bloomrf {
namespace {

TEST(BitVectorTest, PushAndGet) {
  BitVector bv;
  bv.PushBack(true);
  bv.PushBack(false);
  bv.PushBack(true);
  bv.Build();
  EXPECT_EQ(bv.size(), 3u);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_TRUE(bv.Get(2));
  EXPECT_EQ(bv.ones(), 2u);
}

TEST(BitVectorTest, AppendBits) {
  BitVector bv;
  bv.AppendBits(0b1011, 4);
  bv.Build();
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(1));
  EXPECT_FALSE(bv.Get(2));
  EXPECT_TRUE(bv.Get(3));
}

TEST(BitVectorTest, SetBitGrows) {
  BitVector bv;
  bv.SetBit(100);
  bv.EnsureSize(200);
  bv.Build();
  EXPECT_EQ(bv.size(), 200u);
  EXPECT_TRUE(bv.Get(100));
  EXPECT_FALSE(bv.Get(99));
  EXPECT_EQ(bv.ones(), 1u);
}

TEST(BitVectorTest, RankAgainstNaive) {
  Rng rng(42);
  BitVector bv;
  std::vector<bool> naive;
  for (int i = 0; i < 5000; ++i) {
    bool bit = rng.Next() & 1;
    bv.PushBack(bit);
    naive.push_back(bit);
  }
  bv.Build();
  uint64_t rank = 0;
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(bv.Rank1(i), rank) << i;
    EXPECT_EQ(bv.Rank0(i), i - rank) << i;
    if (naive[i]) ++rank;
  }
  EXPECT_EQ(bv.Rank1(naive.size()), rank);
  EXPECT_EQ(bv.Rank1(naive.size() + 1000), rank);  // clamped
}

TEST(BitVectorTest, SelectAgainstNaive) {
  Rng rng(7);
  BitVector bv;
  std::vector<uint64_t> one_positions;
  for (uint64_t i = 0; i < 8000; ++i) {
    bool bit = rng.Uniform(5) == 0;
    bv.PushBack(bit);
    if (bit) one_positions.push_back(i);
  }
  bv.Build();
  ASSERT_EQ(bv.ones(), one_positions.size());
  for (size_t i = 0; i < one_positions.size(); ++i) {
    EXPECT_EQ(bv.Select1(i), one_positions[i]) << i;
  }
}

TEST(BitVectorTest, SelectRankInverse) {
  Rng rng(9);
  BitVector bv;
  for (int i = 0; i < 3000; ++i) bv.PushBack(rng.Next() & 1);
  bv.Build();
  for (uint64_t i = 0; i < bv.ones(); i += 17) {
    uint64_t pos = bv.Select1(i);
    EXPECT_TRUE(bv.Get(pos));
    EXPECT_EQ(bv.Rank1(pos), i);
  }
}

TEST(BitVectorTest, NextOnePrevOne) {
  BitVector bv;
  bv.EnsureSize(300);
  bv.SetBit(10);
  bv.SetBit(100);
  bv.SetBit(299);
  bv.Build();
  EXPECT_EQ(bv.NextOne(0), 10u);
  EXPECT_EQ(bv.NextOne(10), 10u);
  EXPECT_EQ(bv.NextOne(11), 100u);
  EXPECT_EQ(bv.NextOne(101), 299u);
  EXPECT_EQ(bv.NextOne(300), 300u);  // size() when none
  EXPECT_EQ(bv.PrevOne(299), 299u);
  EXPECT_EQ(bv.PrevOne(298), 100u);
  EXPECT_EQ(bv.PrevOne(9), UINT64_MAX);
}

TEST(BitVectorTest, DensePattern) {
  BitVector bv;
  for (int i = 0; i < 1024; ++i) bv.PushBack(true);
  bv.Build();
  EXPECT_EQ(bv.ones(), 1024u);
  EXPECT_EQ(bv.Rank1(512), 512u);
  EXPECT_EQ(bv.Select1(511), 511u);
}

TEST(BitVectorTest, EmptyVector) {
  BitVector bv;
  bv.Build();
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_EQ(bv.ones(), 0u);
  EXPECT_EQ(bv.Rank1(0), 0u);
  EXPECT_EQ(bv.NextOne(0), 0u);
}

TEST(BitVectorTest, SlackBitsClearedAtBuild) {
  BitVector bv;
  bv.PushBack(true);
  bv.PushBack(true);
  bv.Build();
  EXPECT_EQ(bv.ones(), 2u);  // no phantom bits from the backing word
}

}  // namespace
}  // namespace bloomrf

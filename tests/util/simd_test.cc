// The SIMD gather-test kernels must agree with the scalar fallback on
// every dispatch level the hardware offers, and the dispatcher must
// honor the test override.

#include "util/simd.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/random.h"

namespace bloomrf {
namespace {

TEST(SimdTest, LevelNamesAreStable) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kNeon), "neon");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdTest, OverrideForcesScalarAndClears) {
  SetSimdLevelForTesting(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  ClearSimdLevelForTesting();
  // Without BLOOMRF_FORCE_SCALAR in the test environment the active
  // level returns to the detected one.
  if (std::getenv("BLOOMRF_FORCE_SCALAR") == nullptr) {
    EXPECT_EQ(ActiveSimdLevel(), DetectSimdLevel());
  }
}

TEST(SimdTest, ForcingUnsupportedLevelFallsBackToScalar) {
#if defined(__x86_64__) || defined(_M_X64)
  SetSimdLevelForTesting(SimdLevel::kNeon);
#else
  SetSimdLevelForTesting(SimdLevel::kAvx2);
#endif
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  ClearSimdLevelForTesting();
}

TEST(SimdTest, GatherKernelsMatchScalarOnRandomData) {
  Rng rng(0x51bd);
  std::vector<uint64_t> blocks(4096);
  for (uint64_t& b : blocks) b = rng.Next();
  // Random lanes, plus zero-mask padding lanes and repeated indices.
  std::vector<uint64_t> idx(8), msk(8);
  for (int round = 0; round < 2000; ++round) {
    for (int lane = 0; lane < 8; ++lane) {
      idx[lane] = rng.Uniform(blocks.size());
      switch (rng.Uniform(4)) {
        case 0:
          msk[lane] = 0;  // padding lane: must never report a hit
          break;
        case 1:
          msk[lane] = uint64_t{1} << rng.Uniform(64);
          break;
        default:
          msk[lane] = rng.Next();
      }
    }
    idx[7] = idx[6];  // duplicate index in one group

    uint32_t expect4 = 0, expect8 = 0;
    for (int lane = 0; lane < 4; ++lane) {
      expect4 |= static_cast<uint32_t>((blocks[idx[lane]] & msk[lane]) != 0)
                 << lane;
    }
    for (int lane = 0; lane < 8; ++lane) {
      expect8 |= static_cast<uint32_t>((blocks[idx[lane]] & msk[lane]) != 0)
                 << lane;
    }

    SetSimdLevelForTesting(DetectSimdLevel());
    EXPECT_EQ(GatherTestNonzero4(blocks.data(), idx.data(), msk.data()),
              expect4);
    EXPECT_EQ(GatherTestNonzero8(blocks.data(), idx.data(), msk.data()),
              expect8);
    SetSimdLevelForTesting(SimdLevel::kScalar);
    EXPECT_EQ(GatherTestNonzero4(blocks.data(), idx.data(), msk.data()),
              expect4);
    EXPECT_EQ(GatherTestNonzero8(blocks.data(), idx.data(), msk.data()),
              expect8);
  }
  ClearSimdLevelForTesting();
}

TEST(SimdTest, AnyLaneEq16FindsEveryLaneAndNoGhosts) {
  Rng rng(0xc0de);
  for (int round = 0; round < 5000; ++round) {
    uint16_t lanes[4];
    for (uint16_t& l : lanes) l = static_cast<uint16_t>(rng.Next());
    uint64_t packed = 0;
    std::memcpy(&packed, lanes, sizeof packed);
    uint16_t probe = static_cast<uint16_t>(rng.Next());
    bool expect = false;
    for (uint16_t l : lanes) expect |= (l == probe);
    EXPECT_EQ(AnyLaneEq16(packed, probe), expect);
    // Every resident lane must be found.
    for (uint16_t l : lanes) {
      EXPECT_TRUE(AnyLaneEq16(packed, l));
    }
  }
}

}  // namespace
}  // namespace bloomrf

#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace bloomrf {
namespace {

TEST(Mix64Test, IsDeterministic) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_EQ(Mix64(0), Mix64(0));
}

TEST(Mix64Test, IsBijectiveOnSample) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 100000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 100000u);
}

TEST(Mix64Test, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  for (int bit = 0; bit < 64; bit += 7) {
    uint64_t a = Mix64(0x1234567890abcdefULL);
    uint64_t b = Mix64(0x1234567890abcdefULL ^ (1ULL << bit));
    int flipped = __builtin_popcountll(a ^ b);
    EXPECT_GT(flipped, 16) << "bit " << bit;
    EXPECT_LT(flipped, 48) << "bit " << bit;
  }
}

TEST(SplitMix64Test, ProducesDistinctStream) {
  uint64_t state = 7;
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(SplitMix64(state));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Hash64Test, SeedChangesOutput) {
  EXPECT_NE(Hash64(42, 1), Hash64(42, 2));
  EXPECT_EQ(Hash64(42, 1), Hash64(42, 1));
}

TEST(HashBytesTest, MatchesAcrossCalls) {
  std::string s = "hello world, this is a filter library";
  EXPECT_EQ(HashBytes(s, 1), HashBytes(s, 1));
  EXPECT_NE(HashBytes(s, 1), HashBytes(s, 2));
}

TEST(HashBytesTest, LengthMatters) {
  std::string a(8, 'x');
  std::string b(9, 'x');
  EXPECT_NE(HashBytes(a, 0), HashBytes(b, 0));
}

TEST(HashBytesTest, EmptyInputIsValid) {
  EXPECT_EQ(HashBytes(nullptr, 0, 5), HashBytes(nullptr, 0, 5));
}

TEST(HashBytesTest, TailBytesAreSignificant) {
  // Differences beyond the last full 8-byte chunk must change the hash.
  std::string a = "0123456789abcdeX";
  std::string b = "0123456789abcdeY";
  EXPECT_NE(HashBytes(a, 0), HashBytes(b, 0));
}

TEST(FastRange64Test, StaysInRange) {
  for (uint64_t n : {1ULL, 2ULL, 3ULL, 1000ULL, 1ULL << 40}) {
    for (uint64_t h : {0ULL, 1ULL, ~0ULL, 0x8000000000000000ULL}) {
      EXPECT_LT(FastRange64(h, n), n);
    }
  }
}

TEST(FastRange64Test, IsRoughlyUniform) {
  constexpr uint64_t kBuckets = 16;
  std::vector<uint64_t> counts(kBuckets, 0);
  for (uint64_t i = 0; i < 160000; ++i) {
    ++counts[FastRange64(Mix64(i), kBuckets)];
  }
  for (uint64_t c : counts) {
    EXPECT_GT(c, 9000u);
    EXPECT_LT(c, 11000u);
  }
}

TEST(DoubleHashProbeTest, OddStrideVisitsAllSlotsPow2) {
  // With an odd stride all 2^k residues are visited.
  uint64_t h1 = 12345, h2 = 6789;
  std::set<uint64_t> seen;
  for (uint32_t i = 0; i < 64; ++i) {
    seen.insert(DoubleHashProbe(h1, h2, i) % 64);
  }
  EXPECT_EQ(seen.size(), 64u);
}

}  // namespace
}  // namespace bloomrf

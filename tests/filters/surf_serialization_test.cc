// SuRF succinct-structure serialization round trips.

#include <gtest/gtest.h>

#include "filters/surf/surf.h"
#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::RandomKeySet;

Surf::Options Opt(SurfSuffixType type, uint32_t bits) {
  Surf::Options options;
  options.suffix_type = type;
  options.suffix_bits = bits;
  return options;
}

TEST(SurfSerializationTest, RoundTripAllSuffixTypes) {
  auto keyset = RandomKeySet(20000, 401);
  std::vector<uint64_t> keys(keyset.begin(), keyset.end());
  for (auto type : {SurfSuffixType::kNone, SurfSuffixType::kHash,
                    SurfSuffixType::kReal}) {
    Surf original = Surf::BuildFromU64(keys, Opt(type, 8));
    auto restored = Surf::Deserialize(original.Serialize());
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->height(), original.height());
    EXPECT_EQ(restored->dense_levels(), original.dense_levels());
    EXPECT_EQ(restored->num_keys(), original.num_keys());
    EXPECT_EQ(restored->MemoryBits(), original.MemoryBits());
    Rng rng(402);
    for (int i = 0; i < 30000; ++i) {
      uint64_t y = rng.Next();
      ASSERT_EQ(restored->MayContain(y), original.MayContain(y)) << y;
      uint64_t hi = y | 0xffffffULL;
      ASSERT_EQ(restored->MayContainRange(y, hi),
                original.MayContainRange(y, hi))
          << y;
    }
  }
}

TEST(SurfSerializationTest, RoundTripStrings) {
  std::vector<std::string> keys = {"alpha", "beta", "gamma", "gammaray"};
  Surf original =
      Surf::BuildFromStrings(keys, Opt(SurfSuffixType::kReal, 16));
  auto restored = Surf::Deserialize(original.Serialize());
  ASSERT_TRUE(restored.has_value());
  for (const auto& k : keys) {
    EXPECT_TRUE(restored->MayContainString(k)) << k;
  }
  EXPECT_EQ(restored->MayContainString("delta"),
            original.MayContainString("delta"));
  EXPECT_EQ(restored->MayContainStringRange("a", "b"),
            original.MayContainStringRange("a", "b"));
}

TEST(SurfSerializationTest, RejectsCorruption) {
  auto keyset = RandomKeySet(1000, 403);
  std::vector<uint64_t> keys(keyset.begin(), keyset.end());
  Surf original = Surf::BuildFromU64(keys, Opt(SurfSuffixType::kHash, 8));
  std::string blob = original.Serialize();
  EXPECT_FALSE(Surf::Deserialize("").has_value());
  EXPECT_FALSE(Surf::Deserialize("bogus").has_value());
  EXPECT_FALSE(
      Surf::Deserialize(blob.substr(0, blob.size() / 2)).has_value());
  EXPECT_FALSE(Surf::Deserialize(blob.substr(0, blob.size() - 4)).has_value());
}

TEST(SurfSerializationTest, EmptyFilterRoundTrips) {
  Surf empty = Surf::BuildFromU64({}, Opt(SurfSuffixType::kHash, 8));
  auto restored = Surf::Deserialize(empty.Serialize());
  ASSERT_TRUE(restored.has_value());
  EXPECT_FALSE(restored->MayContain(42));
}

}  // namespace
}  // namespace bloomrf

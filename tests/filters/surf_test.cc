#include "filters/surf/surf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "filters/surf/surf_builder.h"
#include "tests/test_util.h"
#include "util/bit_vector.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::GroundTruthRange;
using ::bloomrf::testing::RandomKeySet;
using ::bloomrf::testing::RangeEnd;

std::vector<uint64_t> SortedKeys(size_t n, uint64_t seed, uint64_t domain = 0) {
  auto keyset = RandomKeySet(n, seed, domain);
  return {keyset.begin(), keyset.end()};
}

Surf::Options Opt(SurfSuffixType type, uint32_t bits = 8) {
  Surf::Options options;
  options.suffix_type = type;
  options.suffix_bits = bits;
  return options;
}

// ----------------------------------------------------------------- builder

TEST(SurfBuilderTest, SingleKey) {
  SurfBuilder builder(SurfSuffixType::kNone, 0);
  ASSERT_TRUE(builder.Build({std::string("\x42", 1)}));
  ASSERT_EQ(builder.levels().size(), 1u);
  EXPECT_EQ(builder.levels()[0].labels.size(), 1u);
  EXPECT_EQ(builder.levels()[0].labels[0], 0x42);
  EXPECT_FALSE(builder.levels()[0].has_child[0]);
}

TEST(SurfBuilderTest, TruncatesAtDistinguishingByte) {
  // "aaaa" vs "aabb": distinguished at byte 2; trie depth 3.
  SurfBuilder builder(SurfSuffixType::kNone, 0);
  ASSERT_TRUE(builder.Build({"aaaa", "aabb"}));
  EXPECT_EQ(builder.levels().size(), 3u);
  EXPECT_EQ(builder.levels()[2].labels.size(), 2u);  // 'a' and 'b'
  EXPECT_EQ(builder.levels()[0].labels.size(), 1u);  // shared 'a'
}

TEST(SurfBuilderTest, NodeCountsConsistent) {
  auto keys = SortedKeys(5000, 41);
  std::vector<std::string> byte_keys;
  for (uint64_t k : keys) {
    std::string s(8, '\0');
    for (int i = 7; i >= 0; --i) {
      s[i] = static_cast<char>(k & 0xff);
      k >>= 8;
    }
    byte_keys.push_back(s);
  }
  SurfBuilder builder(SurfSuffixType::kNone, 0);
  ASSERT_TRUE(builder.Build(byte_keys));
  const auto& levels = builder.levels();
  // Child edges at level L == nodes at level L+1; terminals sum to n.
  uint64_t terminals = 0;
  for (size_t l = 0; l < levels.size(); ++l) {
    uint64_t children = 0;
    for (bool c : levels[l].has_child) children += c;
    terminals += levels[l].suffixes.size();
    if (l + 1 < levels.size()) {
      EXPECT_EQ(children, levels[l + 1].num_nodes) << l;
    } else {
      EXPECT_EQ(children, 0u);
    }
    // suffix count == terminal edge count
    EXPECT_EQ(levels[l].suffixes.size(),
              levels[l].labels.size() - children);
  }
  EXPECT_EQ(terminals, byte_keys.size());
}

TEST(SurfBuilderTest, RejectsUnsortedAndPrefixViolations) {
  SurfBuilder builder(SurfSuffixType::kNone, 0);
  EXPECT_FALSE(builder.Build({"b", "a"}));
  EXPECT_FALSE(builder.Build({"a", "a"}));
  EXPECT_FALSE(builder.Build({"a", "ab"}));  // not prefix-free
  EXPECT_FALSE(builder.Build({""}));
}

TEST(SurfBuilderTest, RealBitsExtraction) {
  std::string key = "\xAB\xCD";
  EXPECT_EQ(SurfBuilder::RealBits(key, 0, 8), 0xABu);
  EXPECT_EQ(SurfBuilder::RealBits(key, 0, 4), 0xAu);
  EXPECT_EQ(SurfBuilder::RealBits(key, 1, 8), 0xCDu);
  EXPECT_EQ(SurfBuilder::RealBits(key, 2, 8), 0u);  // past the end: zeros
  EXPECT_EQ(SurfBuilder::RealBits(key, 0, 12), 0xABCu);
}

// ------------------------------------------------------------------ point

class SurfPointTest : public ::testing::TestWithParam<SurfSuffixType> {};

TEST_P(SurfPointTest, NoFalseNegatives) {
  auto keys = SortedKeys(30000, 42);
  Surf surf = Surf::BuildFromU64(keys, Opt(GetParam()));
  for (uint64_t k : keys) ASSERT_TRUE(surf.MayContain(k)) << k;
}

TEST_P(SurfPointTest, RangeNoFalseNegatives) {
  auto keys = SortedKeys(20000, 43);
  std::set<uint64_t> keyset(keys.begin(), keys.end());
  Surf surf = Surf::BuildFromU64(keys, Opt(GetParam()));
  Rng rng(44);
  for (uint64_t k : keys) {
    uint64_t span = rng.Uniform(uint64_t{1} << 30);
    uint64_t lo = k >= span ? k - span : 0;
    ASSERT_TRUE(surf.MayContainRange(lo, RangeEnd(lo, 2 * span + 1)));
    ASSERT_TRUE(surf.MayContainRange(k, k));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSuffixTypes, SurfPointTest,
                         ::testing::Values(SurfSuffixType::kNone,
                                           SurfSuffixType::kHash,
                                           SurfSuffixType::kReal),
                         [](const auto& info) {
                           switch (info.param) {
                             case SurfSuffixType::kNone: return "Base";
                             case SurfSuffixType::kHash: return "Hash";
                             case SurfSuffixType::kReal: return "Real";
                           }
                           return "?";
                         });

TEST(SurfTest, HashSuffixCutsPointFpr) {
  auto keys = SortedKeys(50000, 45);
  std::set<uint64_t> keyset(keys.begin(), keys.end());
  auto fpr = [&](SurfSuffixType type) {
    Surf surf = Surf::BuildFromU64(keys, Opt(type, 8));
    Rng rng(46);
    uint64_t fp = 0, neg = 0;
    for (int i = 0; i < 100000; ++i) {
      uint64_t y = rng.Next();
      if (keyset.count(y)) continue;
      ++neg;
      if (surf.MayContain(y)) ++fp;
    }
    return static_cast<double>(fp) / static_cast<double>(neg);
  };
  double base = fpr(SurfSuffixType::kNone);
  double hash = fpr(SurfSuffixType::kHash);
  EXPECT_LT(hash, base / 4);
}

TEST(SurfTest, RealSuffixCutsRangeFpr) {
  auto keys = SortedKeys(50000, 47);
  std::set<uint64_t> keyset(keys.begin(), keys.end());
  auto range_fpr = [&](SurfSuffixType type) {
    Surf surf = Surf::BuildFromU64(keys, Opt(type, 8));
    Rng rng(48);
    uint64_t fp = 0, neg = 0;
    for (int i = 0; i < 30000; ++i) {
      uint64_t lo = rng.Next();
      uint64_t hi = RangeEnd(lo, uint64_t{1} << 30);
      if (GroundTruthRange(keyset, lo, hi)) continue;
      ++neg;
      if (surf.MayContainRange(lo, hi)) ++fp;
    }
    return static_cast<double>(fp) / static_cast<double>(neg);
  };
  double hash = range_fpr(SurfSuffixType::kHash);  // hash can't help ranges
  double real = range_fpr(SurfSuffixType::kReal);
  EXPECT_LT(real, hash / 2);
}

TEST(SurfTest, ExhaustiveSmallDomain) {
  auto keys = SortedKeys(60, 49, /*domain=*/1 << 16);
  std::set<uint64_t> keyset(keys.begin(), keys.end());
  Surf surf = Surf::BuildFromU64(keys, Opt(SurfSuffixType::kReal, 8));
  for (uint64_t y = 0; y < (1 << 16); ++y) {
    if (keyset.count(y)) ASSERT_TRUE(surf.MayContain(y)) << y;
  }
  Rng rng(50);
  for (int i = 0; i < 50000; ++i) {
    uint64_t lo = rng.Uniform(1 << 16);
    uint64_t hi = lo + rng.Uniform(1 << 10);
    bool truth = GroundTruthRange(keyset, lo, hi);
    ASSERT_TRUE(surf.MayContainRange(lo, hi) || !truth)
        << "[" << lo << "," << hi << "]";
  }
}

TEST(SurfTest, DenseLevelsActive) {
  auto keys = SortedKeys(100000, 51);
  Surf surf = Surf::BuildFromU64(keys, Opt(SurfSuffixType::kHash));
  EXPECT_GT(surf.dense_levels(), 0u);
  EXPECT_LT(surf.dense_levels(), surf.height());
}

TEST(SurfTest, DenseCutoffDoesNotChangeAnswers) {
  auto keys = SortedKeys(20000, 52);
  // dense budget = sparse size / ratio: a huge ratio forces all-sparse,
  // ratio 1 makes the top levels dense.
  Surf::Options sparse_only = Opt(SurfSuffixType::kHash);
  sparse_only.dense_size_ratio = 1000000;
  Surf::Options dense_heavy = Opt(SurfSuffixType::kHash);
  dense_heavy.dense_size_ratio = 1;
  Surf a = Surf::BuildFromU64(keys, sparse_only);
  Surf b = Surf::BuildFromU64(keys, dense_heavy);
  EXPECT_EQ(a.dense_levels(), 0u);
  EXPECT_GT(b.dense_levels(), 0u);
  Rng rng(53);
  for (int i = 0; i < 30000; ++i) {
    uint64_t y = rng.Next();
    ASSERT_EQ(a.MayContain(y), b.MayContain(y)) << y;
    uint64_t hi = RangeEnd(y, 1 << 16);
    ASSERT_EQ(a.MayContainRange(y, hi), b.MayContainRange(y, hi)) << y;
  }
}

TEST(SurfTest, StringApi) {
  std::vector<std::string> keys = {"app",    "apple", "applesauce", "banana",
                                   "band",   "bandana", "cat",      "catalog"};
  Surf surf = Surf::BuildFromStrings(keys, Opt(SurfSuffixType::kReal, 16));
  for (const auto& k : keys) {
    EXPECT_TRUE(surf.MayContainString(k)) << k;
  }
  EXPECT_FALSE(surf.MayContainString("dog"));
  EXPECT_FALSE(surf.MayContainString("ap"));
  EXPECT_TRUE(surf.MayContainStringRange("aa", "az"));
  EXPECT_TRUE(surf.MayContainStringRange("banana", "banana"));
  EXPECT_FALSE(surf.MayContainStringRange("ce", "cz"));
  EXPECT_FALSE(surf.MayContainStringRange("d", "z"));
}

TEST(SurfTest, EmptyAndSingletonSets) {
  Surf empty = Surf::BuildFromU64({}, Opt(SurfSuffixType::kHash));
  EXPECT_FALSE(empty.MayContain(42));
  EXPECT_FALSE(empty.MayContainRange(0, UINT64_MAX));

  // A singleton trie truncates to one byte; a full-width (56-bit) real
  // suffix restores exact range answers.
  Surf one = Surf::BuildFromU64({42}, Opt(SurfSuffixType::kReal, 56));
  EXPECT_TRUE(one.MayContain(42));
  EXPECT_TRUE(one.MayContainRange(0, 100));
  EXPECT_FALSE(one.MayContainRange(100, 200));
  EXPECT_FALSE(one.MayContainRange(0, 41));
}

TEST(SurfTest, AdjacentKeysAndBoundaries) {
  std::vector<uint64_t> keys = {0, 1, 2, UINT64_MAX - 1, UINT64_MAX};
  Surf surf = Surf::BuildFromU64(keys, Opt(SurfSuffixType::kReal));
  for (uint64_t k : keys) EXPECT_TRUE(surf.MayContain(k));
  EXPECT_TRUE(surf.MayContainRange(0, 0));
  EXPECT_TRUE(surf.MayContainRange(UINT64_MAX, UINT64_MAX));
  EXPECT_FALSE(surf.MayContainRange(10, 1000));
}

TEST(SurfTest, MemoryAccountingPlausible) {
  auto keys = SortedKeys(100000, 54);
  Surf surf = Surf::BuildFromU64(keys, Opt(SurfSuffixType::kHash, 8));
  double bits_per_key =
      static_cast<double>(surf.MemoryBits()) / static_cast<double>(keys.size());
  // SuRF-Hash with 8-bit suffixes: ~18-24 bits/key on random 64-bit
  // integers (paper Fig. 10-range).
  EXPECT_GT(bits_per_key, 10.0);
  EXPECT_LT(bits_per_key, 40.0);
}

}  // namespace
}  // namespace bloomrf

// Targeted tests of SuRF's lower-bound iterator (SeekGE) through the
// range API on crafted key sets: backtracking across nodes, leftmost
// descents, dense/sparse boundary crossings, and truncation semantics.

#include <gtest/gtest.h>

#include <vector>

#include "filters/surf/surf.h"
#include "util/coding.h"

namespace bloomrf {
namespace {

Surf Build(std::vector<uint64_t> keys, SurfSuffixType suffix_type,
           uint32_t suffix_bits = 56, uint32_t dense_ratio = 16) {
  Surf::Options options;
  options.suffix_type = suffix_type;
  options.suffix_bits = suffix_bits;
  options.dense_size_ratio = dense_ratio;
  return Surf::BuildFromU64(keys, options);
}

TEST(SurfIteratorTest, SuccessorWithinNode) {
  // Keys differ in the last byte only: one node at the bottom level.
  Surf surf = Build({0x1000, 0x1005, 0x100a}, SurfSuffixType::kReal);
  EXPECT_TRUE(surf.MayContainRange(0x1001, 0x1005));   // successor 0x1005
  EXPECT_FALSE(surf.MayContainRange(0x1001, 0x1004));  // gap
  EXPECT_TRUE(surf.MayContainRange(0x1006, 0x100a));
  EXPECT_FALSE(surf.MayContainRange(0x100b, 0x2000));  // past the last
}

TEST(SurfIteratorTest, BacktrackToAncestorSibling) {
  // Successor of a probe inside the left subtree lies in the right
  // subtree: requires popping to the root and descending leftmost.
  Surf surf = Build({0x0100000000000000ULL, 0x0200000000000000ULL},
                    SurfSuffixType::kReal);
  // Probe between the two top-level branches.
  EXPECT_TRUE(
      surf.MayContainRange(0x0100000000000001ULL, 0x0200000000000000ULL));
  EXPECT_FALSE(
      surf.MayContainRange(0x0100000000000001ULL, 0x01ffffffffffffffULL));
}

TEST(SurfIteratorTest, MultiLevelBacktrack) {
  // Deep chain on the left, shallow key on the right: the successor
  // search must unwind several frames.
  std::vector<uint64_t> keys = {0x1111111111111111ULL,
                                0x1111111111111112ULL,
                                0x9000000000000000ULL};
  Surf surf = Build(keys, SurfSuffixType::kReal);
  EXPECT_TRUE(
      surf.MayContainRange(0x1111111111111113ULL, 0x9000000000000000ULL));
  EXPECT_FALSE(
      surf.MayContainRange(0x1111111111111113ULL, 0x8fffffffffffffffULL));
  EXPECT_TRUE(surf.MayContainRange(0, 0x1111111111111111ULL));
}

TEST(SurfIteratorTest, LeftmostDescentAfterMismatch) {
  // Probe label below the smallest edge label: descend leftmost.
  Surf surf = Build({0x5555000000000000ULL, 0x5555ff0000000000ULL},
                    SurfSuffixType::kReal);
  EXPECT_TRUE(surf.MayContainRange(0x5555000000000000ULL,
                                   0x5555000000000000ULL));
  EXPECT_TRUE(surf.MayContainRange(0x5554000000000000ULL,
                                   0x5555000000000001ULL));
  EXPECT_FALSE(surf.MayContainRange(0x5555000000000001ULL,
                                    0x5555fe0000000000ULL));
}

TEST(SurfIteratorTest, DenseSparseBoundaryConsistency) {
  // Force the cutoff into the middle of the trie and compare against
  // an all-sparse twin on adjacent probes around every key.
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 2000; ++i) {
    keys.push_back(i * 0x10203040506ULL + 17);
  }
  Surf mixed = Build(keys, SurfSuffixType::kReal, 16, /*dense_ratio=*/2);
  Surf sparse = Build(keys, SurfSuffixType::kReal, 16, /*dense_ratio=*/1000000);
  ASSERT_GT(mixed.dense_levels(), 0u);
  ASSERT_EQ(sparse.dense_levels(), 0u);
  for (uint64_t k : keys) {
    for (int64_t d : {-2, -1, 0, 1, 2}) {
      uint64_t lo = k + static_cast<uint64_t>(d);
      uint64_t hi = lo + 3;
      ASSERT_EQ(mixed.MayContainRange(lo, hi),
                sparse.MayContainRange(lo, hi))
          << k << " " << d;
      ASSERT_EQ(mixed.MayContain(lo), sparse.MayContain(lo)) << k << " " << d;
    }
  }
}

TEST(SurfIteratorTest, SeekExactlyAtKeyIsInclusive) {
  Surf surf = Build({500, 1000, 1500}, SurfSuffixType::kReal);
  EXPECT_TRUE(surf.MayContainRange(1000, 1000));
  EXPECT_TRUE(surf.MayContainRange(1000, 1001));
  EXPECT_TRUE(surf.MayContainRange(999, 1000));
}

TEST(SurfIteratorTest, TruncationConservatismWithoutSuffix) {
  // SuRF-Base truncates and keeps no suffix: probes that agree with a
  // stored key on the truncated prefix must answer true (conservative)
  // even when the actual key is absent.
  Surf surf = Build({0xAABB000000000000ULL, 0xAACC000000000000ULL},
                    SurfSuffixType::kNone, 0);
  // Stored paths truncate after the second byte (0xBB vs 0xCC).
  EXPECT_TRUE(surf.MayContain(0xAABB123456789ABCULL));  // same prefix: FP
  EXPECT_FALSE(surf.MayContain(0xAADD000000000000ULL));
  EXPECT_TRUE(surf.MayContainRange(0xAABB000000000001ULL,
                                   0xAABB000000000002ULL));  // conservative
}

TEST(SurfIteratorTest, FullDomainSweepAgainstGroundTruth) {
  std::vector<uint64_t> keys = {3, 9, 27, 81, 243, 729, 2187, 6561};
  Surf surf = Build(keys, SurfSuffixType::kReal);
  for (uint64_t lo = 0; lo < 7000; lo += 13) {
    for (uint64_t len : {1ULL, 5ULL, 50ULL, 500ULL}) {
      uint64_t hi = lo + len - 1;
      bool truth = false;
      for (uint64_t k : keys) truth |= (k >= lo && k <= hi);
      if (truth) {
        ASSERT_TRUE(surf.MayContainRange(lo, hi)) << lo << " " << hi;
      }
    }
  }
}

}  // namespace
}  // namespace bloomrf

// Cross-filter properties: every point-range filter in the library
// obeys the same one-sided-error contract, and their relative FPR
// ordering on characteristic workloads matches the paper's headline
// observations (Problem 1 / Experiment 1).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/bloomrf.h"
#include "core/tuning_advisor.h"
#include "filters/rosetta.h"
#include "filters/surf/surf.h"
#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::GroundTruthRange;
using ::bloomrf::testing::RandomKeySet;
using ::bloomrf::testing::RangeEnd;

struct Contenders {
  std::unique_ptr<BloomRF> bloomrf;
  std::unique_ptr<Rosetta> rosetta;
  std::unique_ptr<Surf> surf;
};

Contenders BuildAll(const std::set<uint64_t>& keys, double bits_per_key,
                    uint64_t max_range) {
  Contenders c;
  AdvisorParams params;
  params.n = keys.size();
  params.total_bits =
      static_cast<uint64_t>(bits_per_key * static_cast<double>(keys.size()));
  params.max_range = static_cast<double>(max_range);
  c.bloomrf = std::make_unique<BloomRF>(AdviseConfig(params).config);
  Rosetta::Options ropt;
  ropt.expected_keys = keys.size();
  ropt.bits_per_key = bits_per_key;
  ropt.max_range = max_range;
  c.rosetta = std::make_unique<Rosetta>(ropt);
  for (uint64_t k : keys) {
    c.bloomrf->Insert(k);
    c.rosetta->Insert(k);
  }
  Surf::Options sopt;
  sopt.suffix_type = SurfSuffixType::kReal;
  sopt.suffix_bits = 8;
  std::vector<uint64_t> sorted(keys.begin(), keys.end());
  c.surf = std::make_unique<Surf>(Surf::BuildFromU64(sorted, sopt));
  return c;
}

TEST(FilterComparisonTest, AllFiltersOneSidedError) {
  auto keys = RandomKeySet(20000, 61);
  Contenders c = BuildAll(keys, 18, 1 << 12);
  Rng rng(62);
  for (int i = 0; i < 3000; ++i) {
    uint64_t lo = rng.Next();
    uint64_t hi = RangeEnd(lo, 1 + rng.Uniform(1 << 12));
    if (!GroundTruthRange(keys, lo, hi)) continue;
    ASSERT_TRUE(c.bloomrf->MayContainRange(lo, hi));
    ASSERT_TRUE(c.rosetta->MayContainRange(lo, hi));
    ASSERT_TRUE(c.surf->MayContainRange(lo, hi));
  }
  int checked = 0;
  for (uint64_t k : keys) {
    if (++checked > 3000) break;
    ASSERT_TRUE(c.bloomrf->MayContain(k));
    ASSERT_TRUE(c.rosetta->MayContain(k));
    ASSERT_TRUE(c.surf->MayContain(k));
  }
}

double RangeFpr(const std::set<uint64_t>& keys, uint64_t range_size,
                uint64_t seed, auto&& probe) {
  Rng rng(seed);
  uint64_t fp = 0, neg = 0;
  for (int i = 0; i < 8000; ++i) {
    uint64_t lo = rng.Next();
    uint64_t hi = RangeEnd(lo, range_size);
    if (GroundTruthRange(keys, lo, hi)) continue;
    ++neg;
    if (probe(lo, hi)) ++fp;
  }
  return static_cast<double>(fp) / static_cast<double>(neg);
}

TEST(FilterComparisonTest, BloomRFCompetitiveOnMediumRanges) {
  // Experiment 1 shape: for medium ranges (2^10..2^20) at 22 bits/key
  // bloomRF beats Rosetta (whose doubting degrades) and SuRF-Real.
  auto keys = RandomKeySet(50000, 63);
  Contenders c = BuildAll(keys, 22, 1 << 16);
  uint64_t range = 1 << 16;
  double ours = RangeFpr(keys, range, 64,
                         [&](uint64_t lo, uint64_t hi) {
                           return c.bloomrf->MayContainRange(lo, hi);
                         });
  double rosetta = RangeFpr(keys, range, 64,
                            [&](uint64_t lo, uint64_t hi) {
                              return c.rosetta->MayContainRange(lo, hi);
                            });
  EXPECT_LE(ours, rosetta + 0.02);
}

TEST(FilterComparisonTest, SurfStrongOnVeryLargeRanges) {
  // Experiment 1: SuRF's trie excels at very large ranges (2^40+).
  auto keys = RandomKeySet(50000, 65);
  Contenders c = BuildAll(keys, 22, uint64_t{1} << 24);
  uint64_t huge = uint64_t{1} << 44;
  double surf = RangeFpr(keys, huge, 66,
                         [&](uint64_t lo, uint64_t hi) {
                           return c.surf->MayContainRange(lo, hi);
                         });
  EXPECT_LT(surf, 0.2);
}

TEST(FilterComparisonTest, MemoryBudgetsComparable) {
  auto keys = RandomKeySet(30000, 67);
  Contenders c = BuildAll(keys, 18, 1 << 10);
  double n = static_cast<double>(keys.size());
  EXPECT_LT(static_cast<double>(c.bloomrf->MemoryBits()) / n, 19.5);
  EXPECT_LT(static_cast<double>(c.rosetta->MemoryBits()) / n, 19.5);
}

}  // namespace
}  // namespace bloomrf

// Registry-parameterized round-trip tests: every registered backend
// must build from sorted keys, serialize through the common framing,
// deserialize back through the registry, and answer identically —
// with no false negatives — on both point and range probes.

#include "filters/registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::RandomKeySet;

// An external backend registered through the public macro, proving a
// new filter is a single-translation-unit change. It remembers nothing
// and answers true everywhere (trivially no false negatives).
class AlwaysTrueFilter : public PointRangeFilter {
 public:
  std::string Name() const override { return "AlwaysTrue"; }
  bool MayContain(uint64_t) const override { return true; }
  bool MayContainRange(uint64_t, uint64_t) const override { return true; }
  uint64_t MemoryBits() const override { return 1; }
  std::string Serialize() const override { return ""; }
};

FilterRegistry::Entry AlwaysTrueEntry() {
  FilterRegistry::Entry entry;
  entry.name = "always_true";
  entry.display_name = "AlwaysTrue";
  entry.build_from_sorted_keys = [](const std::vector<uint64_t>&,
                                    const FilterBuildParams&) {
    return std::make_unique<AlwaysTrueFilter>();
  };
  entry.deserialize = [](std::string_view payload)
      -> std::unique_ptr<PointRangeFilter> {
    if (!payload.empty()) return nullptr;
    return std::make_unique<AlwaysTrueFilter>();
  };
  return entry;
}

BLOOMRF_REGISTER_FILTER(always_true, AlwaysTrueEntry())

std::vector<uint64_t> SortedKeys(size_t n, uint64_t seed) {
  auto keyset = RandomKeySet(n, seed);
  return {keyset.begin(), keyset.end()};
}

FilterBuildParams TestParams() {
  FilterBuildParams params;
  params.bits_per_key = 18.0;
  params.max_range = 1 << 12;
  return params;
}

TEST(FilterRegistryTest, ListsAllBuiltinBackends) {
  auto names = FilterRegistry::Instance().Names();
  std::set<std::string> have(names.begin(), names.end());
  for (const char* expected :
       {"bloomrf", "bloom", "blocked_bloom", "prefix_bloom", "cuckoo",
        "rosetta", "surf", "fence_pointers"}) {
    EXPECT_EQ(have.count(expected), 1u) << expected;
  }
  EXPECT_GE(have.size(), 6u);
}

TEST(FilterRegistryTest, FindResolvesKeyAndDisplayName) {
  auto& registry = FilterRegistry::Instance();
  const auto* by_key = registry.Find("bloomrf");
  ASSERT_NE(by_key, nullptr);
  EXPECT_EQ(by_key->display_name, "bloomRF");
  EXPECT_EQ(registry.Find("bloomRF"), by_key);
  EXPECT_EQ(registry.Find("no_such_filter"), nullptr);
  // The macro-registered external backend resolves like a built-in.
  ASSERT_NE(registry.Find("always_true"), nullptr);
  EXPECT_EQ(registry.Find("always_true")->display_name, "AlwaysTrue");
}

TEST(FilterRegistryTest, RoundTripIdenticalAnswersEveryBackend) {
  auto& registry = FilterRegistry::Instance();
  auto keys = SortedKeys(5000, 301);
  for (const std::string& name : registry.Names()) {
    SCOPED_TRACE(name);
    const auto* entry = registry.Find(name);
    ASSERT_NE(entry, nullptr);
    auto built = entry->build_from_sorted_keys(keys, TestParams());
    ASSERT_NE(built, nullptr);
    EXPECT_EQ(built->Name(), entry->display_name);

    std::string framed = registry.Serialize(*built);
    ASSERT_FALSE(framed.empty());
    auto restored = registry.Deserialize(framed);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->Name(), entry->display_name);
    EXPECT_EQ(restored->MemoryBits(), built->MemoryBits());

    // No false negatives, before and after the round trip.
    for (uint64_t k : keys) {
      ASSERT_TRUE(built->MayContain(k)) << k;
      ASSERT_TRUE(restored->MayContain(k)) << k;
      uint64_t hi = k + 100 > k ? k + 100 : k;
      ASSERT_TRUE(built->MayContainRange(k, hi)) << k;
      ASSERT_TRUE(restored->MayContainRange(k, hi)) << k;
    }

    // Identical answers on arbitrary probes, positive or negative.
    Rng rng(302);
    for (int i = 0; i < 5000; ++i) {
      uint64_t y = rng.Next();
      ASSERT_EQ(restored->MayContain(y), built->MayContain(y)) << y;
      uint64_t hi = y + 1000 > y ? y + 1000 : y;
      ASSERT_EQ(restored->MayContainRange(y, hi),
                built->MayContainRange(y, hi))
          << y;
    }
  }
}

TEST(FilterRegistryTest, BatchProbeMatchesScalarProbe) {
  auto& registry = FilterRegistry::Instance();
  auto keys = SortedKeys(2000, 303);
  std::vector<uint64_t> probes = SortedKeys(512, 304);
  probes.insert(probes.end(), keys.begin(), keys.begin() + 256);
  std::vector<bool> expected(probes.size());
  auto got = std::make_unique<bool[]>(probes.size());
  for (const std::string& name : registry.Names()) {
    SCOPED_TRACE(name);
    auto built =
        registry.Find(name)->build_from_sorted_keys(keys, TestParams());
    ASSERT_NE(built, nullptr);
    for (size_t i = 0; i < probes.size(); ++i) {
      expected[i] = built->MayContain(probes[i]);
    }
    built->MayContainBatch(probes, got.get());
    for (size_t i = 0; i < probes.size(); ++i) {
      ASSERT_EQ(got[i], expected[i]) << i;
    }
  }
}

TEST(FilterRegistryTest, OnlineBuildHasNoFalseNegatives) {
  auto& registry = FilterRegistry::Instance();
  auto keys = SortedKeys(3000, 305);
  FilterBuildParams params = TestParams();
  params.expected_keys = keys.size();
  for (const std::string& name : registry.Names()) {
    SCOPED_TRACE(name);
    const auto* entry = registry.Find(name);
    if (!entry->online) {
      EXPECT_EQ(entry->build_online, nullptr);
      continue;
    }
    auto filter = entry->build_online(params);
    ASSERT_NE(filter, nullptr);
    for (uint64_t k : keys) filter->Insert(k);
    for (uint64_t k : keys) ASSERT_TRUE(filter->MayContain(k)) << k;
  }
}

TEST(FilterRegistryTest, FramingRejectsCorruptBlocks) {
  auto& registry = FilterRegistry::Instance();
  auto keys = SortedKeys(500, 306);
  auto built =
      registry.Find("bloomrf")->build_from_sorted_keys(keys, TestParams());
  std::string framed = registry.Serialize(*built);

  EXPECT_EQ(registry.Deserialize(""), nullptr);
  EXPECT_EQ(registry.Deserialize("garbage"), nullptr);
  for (size_t cut : {size_t{1}, size_t{4}, size_t{7}, framed.size() / 2,
                     framed.size() - 1}) {
    EXPECT_EQ(registry.Deserialize(framed.substr(0, cut)), nullptr) << cut;
  }
  // A frame naming an unregistered backend is rejected even with a
  // plausible payload.
  std::string_view name, payload;
  ASSERT_TRUE(FilterRegistry::ParseFrame(framed, &name, &payload));
  EXPECT_EQ(registry.Deserialize(
                FilterRegistry::Frame("not_registered", payload)),
            nullptr);
}

TEST(FilterRegistryTest, RegisterRejectsDuplicatesAndIncompleteEntries) {
  auto& registry = FilterRegistry::Instance();
  const auto* bloom = registry.Find("bloom");
  ASSERT_NE(bloom, nullptr);

  FilterRegistry::Entry dup = *bloom;  // same name
  EXPECT_FALSE(registry.Register(dup));

  FilterRegistry::Entry alias = *bloom;
  alias.name = "bloom_again";  // same display name
  EXPECT_FALSE(registry.Register(alias));

  FilterRegistry::Entry incomplete;
  incomplete.name = "incomplete";
  incomplete.display_name = "Incomplete";
  EXPECT_FALSE(registry.Register(incomplete));  // missing factories

  FilterRegistry::Entry inconsistent = *bloom;
  inconsistent.name = "bloom_inconsistent";
  inconsistent.display_name = "BloomInconsistent";
  inconsistent.online = true;
  inconsistent.build_online = nullptr;  // flag promises what's absent
  EXPECT_FALSE(registry.Register(inconsistent));

  // Keys and display names share Find's namespace: a key colliding
  // with an existing display name (or vice versa) would shadow it.
  FilterRegistry::Entry shadow = *bloom;
  shadow.name = "Bloom";  // collides with bloom's display name
  shadow.display_name = "ShadowBloom";
  EXPECT_FALSE(registry.Register(shadow));

  FilterRegistry::Entry shadow2 = *bloom;
  shadow2.name = "shadow_bloom";
  shadow2.display_name = "bloom";  // collides with bloom's key
  EXPECT_FALSE(registry.Register(shadow2));
}

}  // namespace
}  // namespace bloomrf

#include "filters/rosetta.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::GroundTruthRange;
using ::bloomrf::testing::RandomKeySet;
using ::bloomrf::testing::RangeEnd;

TEST(DyadicDecomposeTest, SinglePoint) {
  std::vector<std::pair<uint64_t, uint32_t>> pieces;
  ASSERT_TRUE(DyadicDecompose(42, 42, 16, 64, &pieces));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], std::make_pair(uint64_t{42}, 0u));
}

TEST(DyadicDecomposeTest, AlignedBlock) {
  std::vector<std::pair<uint64_t, uint32_t>> pieces;
  ASSERT_TRUE(DyadicDecompose(64, 127, 16, 64, &pieces));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], std::make_pair(uint64_t{1}, 6u));
}

TEST(DyadicDecomposeTest, CoversExactlyOnce) {
  Rng rng(31);
  for (int iter = 0; iter < 500; ++iter) {
    uint64_t lo = rng.Uniform(1 << 16);
    uint64_t hi = lo + rng.Uniform(1 << 12);
    std::vector<std::pair<uint64_t, uint32_t>> pieces;
    ASSERT_TRUE(DyadicDecompose(lo, hi, 20, 4096, &pieces));
    // Pieces tile [lo, hi] contiguously.
    uint64_t cursor = lo;
    for (auto [prefix, level] : pieces) {
      EXPECT_EQ(prefix << level, cursor);
      cursor += uint64_t{1} << level;
    }
    EXPECT_EQ(cursor, hi + 1);
  }
}

TEST(DyadicDecomposeTest, MaxLevelRespected) {
  std::vector<std::pair<uint64_t, uint32_t>> pieces;
  ASSERT_TRUE(DyadicDecompose(0, (1 << 12) - 1, 8, 4096, &pieces));
  EXPECT_EQ(pieces.size(), 16u);  // 2^12 split into 2^8-sized blocks
  for (auto [prefix, level] : pieces) EXPECT_LE(level, 8u);
}

TEST(DyadicDecomposeTest, CapReturnsFalse) {
  std::vector<std::pair<uint64_t, uint32_t>> pieces;
  EXPECT_FALSE(DyadicDecompose(0, (1 << 20) - 1, 2, 64, &pieces));
}

TEST(DyadicDecomposeTest, DomainExtremes) {
  std::vector<std::pair<uint64_t, uint32_t>> pieces;
  ASSERT_TRUE(DyadicDecompose(UINT64_MAX - 3, UINT64_MAX, 63, 64, &pieces));
  uint64_t total = 0;
  for (auto [prefix, level] : pieces) total += uint64_t{1} << level;
  EXPECT_EQ(total, 4u);
}

TEST(RosettaTest, PointNoFalseNegatives) {
  auto keys = RandomKeySet(30000, 32);
  Rosetta::Options options;
  options.expected_keys = keys.size();
  options.bits_per_key = 18;
  options.max_range = 256;
  Rosetta filter(options);
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) EXPECT_TRUE(filter.MayContain(k));
}

TEST(RosettaTest, RangeNoFalseNegatives) {
  auto keys = RandomKeySet(20000, 33);
  Rosetta::Options options;
  options.expected_keys = keys.size();
  options.bits_per_key = 20;
  options.max_range = 1 << 10;
  Rosetta filter(options);
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(34);
  for (uint64_t k : keys) {
    uint64_t span = rng.Uniform(1 << 10);
    uint64_t lo = k >= span ? k - span : 0;
    ASSERT_TRUE(filter.MayContainRange(lo, RangeEnd(lo, 1 + 2 * span)));
  }
}

TEST(RosettaTest, SmallRangeFprIsLowAtPaperBudget) {
  // Paper Sect. 6: Rosetta at ~17 bits/key handles R=2^6 with ~2% FPR.
  auto keys = RandomKeySet(50000, 35);
  Rosetta::Options options;
  options.expected_keys = keys.size();
  options.bits_per_key = 18;
  options.max_range = 64;
  Rosetta filter(options);
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(36);
  uint64_t fp = 0, neg = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t lo = rng.Next();
    uint64_t hi = RangeEnd(lo, 64);
    if (GroundTruthRange(keys, lo, hi)) continue;
    ++neg;
    if (filter.MayContainRange(lo, hi)) ++fp;
  }
  // Our bottom-heavy allocation is a simplification of Rosetta's
  // optimized variants; allow some slack over the paper's ~2%.
  EXPECT_LT(static_cast<double>(fp) / static_cast<double>(neg), 0.15);
}

TEST(RosettaTest, DoubtingCostGrowsWithRange) {
  // Rosetta's probe cost is logarithmic-to-linear in R (paper Sect. 6)
  // — the structural contrast to bloomRF's O(k).
  auto keys = RandomKeySet(20000, 37);
  Rosetta::Options options;
  options.expected_keys = keys.size();
  options.bits_per_key = 16;
  options.max_range = 1 << 14;
  Rosetta filter(options);
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(38);
  auto avg_probes = [&](uint64_t range) {
    uint64_t total = 0;
    for (int i = 0; i < 300; ++i) {
      uint64_t lo = rng.Next();
      filter.MayContainRange(lo, RangeEnd(lo, range));
      total += filter.last_probe_count();
    }
    return static_cast<double>(total) / 300.0;
  };
  double small = avg_probes(8);
  double large = avg_probes(1 << 14);
  EXPECT_GT(large, small * 1.5);
}

TEST(RosettaTest, RangesBeyondConfiguredRAreConservative) {
  Rosetta::Options options;
  options.expected_keys = 1000;
  options.bits_per_key = 16;
  options.max_range = 64;
  Rosetta filter(options);
  // Empty filter, but a range vastly exceeding R cannot be decomposed
  // within the cap: conservative positive.
  EXPECT_TRUE(filter.MayContainRange(0, UINT64_MAX / 2));
  // In-budget ranges on an empty filter are definite negatives.
  EXPECT_FALSE(filter.MayContainRange(1000, 1063));
}

TEST(RosettaTest, OptimizedVariantAllocatesBottomHeavy) {
  Rosetta::Options options;
  options.expected_keys = 100000;
  options.bits_per_key = 20;
  options.max_range = 1 << 8;
  options.variant = Rosetta::Variant::kOptimized;
  Rosetta filter(options);
  // Budget respected and the filter behaves correctly.
  EXPECT_LT(filter.MemoryBits(), 22 * options.expected_keys);
  auto keys = RandomKeySet(50000, 40);
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) {
    ASSERT_TRUE(filter.MayContain(k));
    ASSERT_TRUE(filter.MayContainRange(k, RangeEnd(k, 100)));
  }
}

TEST(RosettaTest, OptimizedBeatsFirstCutOnPoints) {
  auto keys = RandomKeySet(50000, 41);
  auto point_fpr = [&](Rosetta::Variant variant) {
    Rosetta::Options options;
    options.expected_keys = keys.size();
    options.bits_per_key = 16;
    options.max_range = 1 << 10;
    options.variant = variant;
    Rosetta filter(options);
    for (uint64_t k : keys) filter.Insert(k);
    Rng rng(42);
    uint64_t fp = 0, neg = 0;
    for (int i = 0; i < 100000; ++i) {
      uint64_t y = rng.Next();
      if (keys.count(y)) continue;
      ++neg;
      if (filter.MayContain(y)) ++fp;
    }
    return static_cast<double>(fp) / static_cast<double>(neg);
  };
  // The optimized allocation shifts bits to the bottom filter, the one
  // point queries (and doubting chains) hit.
  EXPECT_LE(point_fpr(Rosetta::Variant::kOptimized),
            point_fpr(Rosetta::Variant::kFirstCut) + 1e-6);
}

TEST(RosettaTest, VariantsAllCorrect) {
  auto keys = RandomKeySet(5000, 39);
  for (auto variant : {Rosetta::Variant::kFirstCut,
                       Rosetta::Variant::kBottomHeavy,
                       Rosetta::Variant::kOptimized,
                       Rosetta::Variant::kSingleLevel}) {
    Rosetta::Options options;
    options.expected_keys = keys.size();
    options.bits_per_key = 18;
    options.max_range = 128;
    options.variant = variant;
    Rosetta filter(options);
    for (uint64_t k : keys) filter.Insert(k);
    for (uint64_t k : keys) {
      ASSERT_TRUE(filter.MayContain(k));
      ASSERT_TRUE(filter.MayContainRange(k, RangeEnd(k, 100)));
    }
  }
}

TEST(RosettaTest, MemoryWithinBudget) {
  Rosetta::Options options;
  options.expected_keys = 100000;
  options.bits_per_key = 20;
  options.max_range = 1024;
  Rosetta filter(options);
  EXPECT_LT(filter.MemoryBits(), 22 * options.expected_keys);
  EXPECT_GT(filter.MemoryBits(), 16 * options.expected_keys);
}

}  // namespace
}  // namespace bloomrf

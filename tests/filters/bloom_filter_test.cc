#include "filters/bloom_filter.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::RandomKeySet;

TEST(BloomFilterTest, NoFalseNegatives) {
  auto keys = RandomKeySet(50000, 1);
  BloomFilter filter(keys.size(), 10.0);
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) EXPECT_TRUE(filter.MayContain(k));
}

TEST(BloomFilterTest, FprNearTheory) {
  auto keys = RandomKeySet(100000, 2);
  BloomFilter filter(keys.size(), 10.0);
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(3);
  uint64_t fp = 0, neg = 0;
  for (int i = 0; i < 300000; ++i) {
    uint64_t y = rng.Next();
    if (keys.count(y)) continue;
    ++neg;
    if (filter.MayContain(y)) ++fp;
  }
  double fpr = static_cast<double>(fp) / static_cast<double>(neg);
  // Theory for 10 bits/key, k=6: ~0.84%.
  EXPECT_GT(fpr, 0.002);
  EXPECT_LT(fpr, 0.025);
}

TEST(BloomFilterTest, DerivesOptimalK) {
  BloomFilter filter(1000, 10.0);
  EXPECT_EQ(filter.num_hashes(), 6u);  // floor(10 ln2) = 6, RocksDB-style
  BloomFilter filter16(1000, 16.0);
  EXPECT_EQ(filter16.num_hashes(), 11u);
}

TEST(BloomFilterTest, ExplicitKRespected) {
  BloomFilter filter(1000, 10.0, 3);
  EXPECT_EQ(filter.num_hashes(), 3u);
}

TEST(BloomFilterTest, RangesAlwaysPositive) {
  BloomFilter filter(100, 10.0);
  EXPECT_TRUE(filter.MayContainRange(0, 1));  // point-only filter
}

TEST(BloomFilterTest, MemoryMatchesBudget) {
  BloomFilter filter(100000, 12.0);
  EXPECT_GE(filter.MemoryBits(), 1200000u);
  EXPECT_LT(filter.MemoryBits(), 1200000u + 64);
}

TEST(BloomFilterTest, SerializeRoundTrip) {
  auto keys = RandomKeySet(10000, 4);
  BloomFilter filter(keys.size(), 12.0);
  for (uint64_t k : keys) filter.Insert(k);
  auto restored = BloomFilter::Deserialize(filter.Serialize());
  ASSERT_TRUE(restored.has_value());
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    uint64_t y = rng.Next();
    EXPECT_EQ(restored->MayContain(y), filter.MayContain(y));
  }
}

TEST(BloomFilterTest, DeserializeRejectsCorruption) {
  EXPECT_FALSE(BloomFilter::Deserialize("").has_value());
  EXPECT_FALSE(BloomFilter::Deserialize("too short").has_value());
  BloomFilter filter(100, 10.0);
  std::string data = filter.Serialize();
  EXPECT_FALSE(BloomFilter::Deserialize(data.substr(0, data.size() - 1))
                   .has_value());
}

}  // namespace
}  // namespace bloomrf

// The planned batch probes must be drop-in replacements for the scalar
// loops: for EVERY registered backend, MayContainBatch and
// MayContainRangeBatch agree answer-for-answer with MayContain /
// MayContainRange — including empty batches, odd (non-stripe-multiple)
// batch sizes, and duplicate keys within one batch.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "filters/registry.h"
#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::RandomKeySet;
using ::bloomrf::testing::RangeEnd;

class BatchProbeTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<PointRangeFilter> BuildFilter() {
    const FilterRegistry::Entry* entry =
        FilterRegistry::Instance().Find(GetParam());
    EXPECT_NE(entry, nullptr);
    auto key_set = RandomKeySet(3000, 0xba7c4);
    keys_.assign(key_set.begin(), key_set.end());  // sorted unique
    FilterBuildParams params;
    params.bits_per_key = 16.0;
    return entry->build_from_sorted_keys(keys_, params);
  }

  /// Inserted keys, near-misses, far misses, and duplicates.
  std::vector<uint64_t> MakeProbes(size_t n) const {
    Rng rng(0x9e3);
    std::vector<uint64_t> probes;
    probes.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      switch (i % 4) {
        case 0:
          probes.push_back(keys_[rng.Uniform(keys_.size())]);
          break;
        case 1:
          probes.push_back(keys_[rng.Uniform(keys_.size())] + 1);
          break;
        case 2:
          probes.push_back(rng.Next());
          break;
        default:  // duplicate of an earlier probe in the same batch
          probes.push_back(probes[rng.Uniform(probes.size())]);
      }
    }
    return probes;
  }

  std::vector<uint64_t> keys_;
};

TEST_P(BatchProbeTest, PointBatchMatchesScalar) {
  auto filter = BuildFilter();
  ASSERT_NE(filter, nullptr);
  // Sizes straddling the planning stripe (32), plus empty and odd.
  for (size_t batch_size : {0, 1, 3, 31, 32, 33, 100, 1001}) {
    std::vector<uint64_t> probes = MakeProbes(batch_size);
    auto out = std::make_unique<bool[]>(batch_size + 1);
    out[batch_size] = true;  // canary: batch must not write past size
    filter->MayContainBatch(probes, out.get());
    for (size_t i = 0; i < batch_size; ++i) {
      EXPECT_EQ(out[i], filter->MayContain(probes[i]))
          << GetParam() << " batch_size=" << batch_size << " i=" << i
          << " key=" << probes[i];
    }
    EXPECT_TRUE(out[batch_size]);
  }
}

TEST_P(BatchProbeTest, RangeBatchMatchesScalar) {
  auto filter = BuildFilter();
  ASSERT_NE(filter, nullptr);
  Rng rng(0x51ee);
  for (size_t batch_size : {0, 1, 33, 500}) {
    std::vector<uint64_t> los, his;
    for (size_t i = 0; i < batch_size; ++i) {
      uint64_t anchor = (i % 2 == 0) ? keys_[rng.Uniform(keys_.size())]
                                     : rng.Next();
      uint64_t width = uint64_t{1} << rng.Uniform(20);
      uint64_t lo = anchor - std::min(anchor, width / 2);
      los.push_back(lo);
      his.push_back(RangeEnd(lo, width));
    }
    auto out = std::make_unique<bool[]>(batch_size + 1);
    out[batch_size] = true;
    filter->MayContainRangeBatch(los, his, out.get());
    for (size_t i = 0; i < batch_size; ++i) {
      EXPECT_EQ(out[i], filter->MayContainRange(los[i], his[i]))
          << GetParam() << " batch_size=" << batch_size << " i=" << i
          << " [" << los[i] << ", " << his[i] << "]";
    }
    EXPECT_TRUE(out[batch_size]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BatchProbeTest,
    ::testing::ValuesIn(FilterRegistry::Instance().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace bloomrf

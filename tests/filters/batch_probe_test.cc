// The planned batch probes must be drop-in replacements for the scalar
// loops: for EVERY registered backend, MayContainBatch and
// MayContainRangeBatch agree answer-for-answer with MayContain /
// MayContainRange — including empty batches, odd (non-stripe-multiple)
// batch sizes, duplicate keys within one batch, adversarial intervals
// (lo == hi, full-domain, layer/segment straddles, inverted), and
// under every SIMD dispatch level (forced scalar must be bit-identical
// to the detected ISA's kernels).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "filters/registry.h"
#include "tests/test_util.h"
#include "util/simd.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::RandomKeySet;
using ::bloomrf::testing::RangeEnd;

class BatchProbeTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<PointRangeFilter> BuildFilter() {
    const FilterRegistry::Entry* entry =
        FilterRegistry::Instance().Find(GetParam());
    EXPECT_NE(entry, nullptr);
    auto key_set = RandomKeySet(3000, 0xba7c4);
    keys_.assign(key_set.begin(), key_set.end());  // sorted unique
    FilterBuildParams params;
    params.bits_per_key = 16.0;
    return entry->build_from_sorted_keys(keys_, params);
  }

  /// Inserted keys, near-misses, far misses, and duplicates.
  std::vector<uint64_t> MakeProbes(size_t n) const {
    Rng rng(0x9e3);
    std::vector<uint64_t> probes;
    probes.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      switch (i % 4) {
        case 0:
          probes.push_back(keys_[rng.Uniform(keys_.size())]);
          break;
        case 1:
          probes.push_back(keys_[rng.Uniform(keys_.size())] + 1);
          break;
        case 2:
          probes.push_back(rng.Next());
          break;
        default:  // duplicate of an earlier probe in the same batch
          probes.push_back(probes[rng.Uniform(probes.size())]);
      }
    }
    return probes;
  }

  std::vector<uint64_t> keys_;
};

TEST_P(BatchProbeTest, PointBatchMatchesScalar) {
  auto filter = BuildFilter();
  ASSERT_NE(filter, nullptr);
  // Sizes straddling the planning stripe (32), plus empty and odd.
  for (size_t batch_size : {0, 1, 3, 31, 32, 33, 100, 1001}) {
    std::vector<uint64_t> probes = MakeProbes(batch_size);
    auto out = std::make_unique<bool[]>(batch_size + 1);
    out[batch_size] = true;  // canary: batch must not write past size
    filter->MayContainBatch(probes, out.get());
    for (size_t i = 0; i < batch_size; ++i) {
      EXPECT_EQ(out[i], filter->MayContain(probes[i]))
          << GetParam() << " batch_size=" << batch_size << " i=" << i
          << " key=" << probes[i];
    }
    EXPECT_TRUE(out[batch_size]);
  }
}

TEST_P(BatchProbeTest, RangeBatchMatchesScalar) {
  auto filter = BuildFilter();
  ASSERT_NE(filter, nullptr);
  Rng rng(0x51ee);
  for (size_t batch_size : {0, 1, 33, 500}) {
    std::vector<uint64_t> los, his;
    for (size_t i = 0; i < batch_size; ++i) {
      uint64_t anchor = (i % 2 == 0) ? keys_[rng.Uniform(keys_.size())]
                                     : rng.Next();
      uint64_t width = uint64_t{1} << rng.Uniform(20);
      uint64_t lo = anchor - std::min(anchor, width / 2);
      los.push_back(lo);
      his.push_back(RangeEnd(lo, width));
    }
    auto out = std::make_unique<bool[]>(batch_size + 1);
    out[batch_size] = true;
    filter->MayContainRangeBatch(los, his, out.get());
    for (size_t i = 0; i < batch_size; ++i) {
      EXPECT_EQ(out[i], filter->MayContainRange(los[i], his[i]))
          << GetParam() << " batch_size=" << batch_size << " i=" << i
          << " [" << los[i] << ", " << his[i] << "]";
    }
    EXPECT_TRUE(out[batch_size]);
  }
}

// Intervals engineered against the dyadic descent: degenerate points,
// the full domain, spans straddling bloomRF layer boundaries (levels
// are multiples of the advisor's deltas — powers of two around key
// prefixes), saturating arithmetic at both domain ends, and inverted
// bounds. Every pair must answer exactly like the scalar probe.
TEST_P(BatchProbeTest, RangeBatchAdversarialIntervals) {
  auto filter = BuildFilter();
  ASSERT_NE(filter, nullptr);
  std::vector<uint64_t> los, his;
  auto add = [&](uint64_t lo, uint64_t hi) {
    los.push_back(lo);
    his.push_back(hi);
  };
  uint64_t present = keys_[keys_.size() / 2];
  uint64_t absent = present + 1;  // not in the sorted-unique key set
  // Degenerate single-point intervals.
  add(present, present);
  add(absent, absent);
  add(0, 0);
  add(UINT64_MAX, UINT64_MAX);
  // Full domain and half-domain splits.
  add(0, UINT64_MAX);
  add(0, UINT64_MAX / 2);
  add(UINT64_MAX / 2 + 1, UINT64_MAX);
  // Intervals straddling every power-of-two boundary around a present
  // key: these split the descent at each layer in turn.
  for (uint32_t level = 1; level < 64; ++level) {
    uint64_t boundary = (present >> level) << level;
    if (boundary == 0) break;
    add(boundary - 1, boundary);
    add(boundary - 1, boundary + 1);
    uint64_t width = uint64_t{1} << (level - 1);
    add(boundary - std::min(boundary, width), boundary + width);
  }
  // Saturating intervals at the domain ends.
  add(0, 1);
  add(UINT64_MAX - 1, UINT64_MAX);
  // Inverted bounds: definite negative, batch included.
  add(present + 1, present > 0 ? present - 1 : 0);
  add(UINT64_MAX, 0);
  // Duplicates of an earlier interval within the same batch.
  add(los[0], his[0]);
  add(los[4], his[4]);

  auto out = std::make_unique<bool[]>(los.size() + 1);
  out[los.size()] = true;  // canary
  filter->MayContainRangeBatch(los, his, out.get());
  for (size_t i = 0; i < los.size(); ++i) {
    EXPECT_EQ(out[i], filter->MayContainRange(los[i], his[i]))
        << GetParam() << " i=" << i << " [" << los[i] << ", " << his[i]
        << "]";
  }
  EXPECT_TRUE(out[los.size()]);

  // Empty batch: no output writes at all.
  out[0] = true;
  filter->MayContainRangeBatch({}, {}, out.get());
  EXPECT_TRUE(out[0]);
}

// The runtime SIMD dispatch must be invisible in the answers: probing
// the same batches under the forced-scalar kernels and under the
// detected ISA's kernels yields bit-identical outputs.
TEST_P(BatchProbeTest, ForcedScalarMatchesSimdDispatch) {
  auto filter = BuildFilter();
  ASSERT_NE(filter, nullptr);
  std::vector<uint64_t> probes = MakeProbes(1025);
  Rng rng(0xd15);
  std::vector<uint64_t> los, his;
  for (size_t i = 0; i < 257; ++i) {
    uint64_t anchor =
        (i % 2 == 0) ? keys_[rng.Uniform(keys_.size())] : rng.Next();
    uint64_t width = uint64_t{1} << rng.Uniform(24);
    uint64_t lo = anchor - std::min(anchor, width / 2);
    los.push_back(lo);
    his.push_back(RangeEnd(lo, width));
  }

  auto point_simd = std::make_unique<bool[]>(probes.size());
  auto point_scalar = std::make_unique<bool[]>(probes.size());
  auto range_simd = std::make_unique<bool[]>(los.size());
  auto range_scalar = std::make_unique<bool[]>(los.size());

  SetSimdLevelForTesting(DetectSimdLevel());
  filter->MayContainBatch(probes, point_simd.get());
  filter->MayContainRangeBatch(los, his, range_simd.get());
  SetSimdLevelForTesting(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  filter->MayContainBatch(probes, point_scalar.get());
  filter->MayContainRangeBatch(los, his, range_scalar.get());
  ClearSimdLevelForTesting();

  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(point_simd[i], point_scalar[i])
        << GetParam() << " key=" << probes[i];
  }
  for (size_t i = 0; i < los.size(); ++i) {
    ASSERT_EQ(range_simd[i], range_scalar[i])
        << GetParam() << " [" << los[i] << ", " << his[i] << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BatchProbeTest,
    ::testing::ValuesIn(FilterRegistry::Instance().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace bloomrf

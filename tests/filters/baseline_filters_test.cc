// Prefix-Bloom, fence-pointer and Cuckoo baselines.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "filters/cuckoo_filter.h"
#include "filters/fence_pointers.h"
#include "filters/prefix_bloom_filter.h"
#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::GroundTruthRange;
using ::bloomrf::testing::RandomKeySet;

// ------------------------------------------------------------ PrefixBloom

TEST(PrefixBloomTest, NoFalseNegatives) {
  auto keys = RandomKeySet(20000, 11);
  PrefixBloomFilter filter(keys.size(), 14.0, 16);
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) {
    EXPECT_TRUE(filter.MayContain(k));
    EXPECT_TRUE(filter.MayContainRange(k, k));
    EXPECT_TRUE(filter.MayContainRange(k & ~0xffffULL, k | 0xffffULL));
  }
}

TEST(PrefixBloomTest, WidePrefixRangesAreConservative) {
  PrefixBloomFilter filter(100, 14.0, 8);
  // Range spanning > kMaxProbes prefixes cannot be excluded.
  EXPECT_TRUE(filter.MayContainRange(0, UINT64_MAX));
}

TEST(PrefixBloomTest, ExcludesDistantRanges) {
  auto keys = RandomKeySet(5000, 12);
  PrefixBloomFilter filter(keys.size(), 18.0, 16);
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(13);
  uint64_t excluded = 0;
  for (int i = 0; i < 2000; ++i) {
    uint64_t lo = rng.Next();
    uint64_t hi = lo | 0xffff;  // one or two prefixes
    if (GroundTruthRange(keys, lo, hi)) continue;
    if (!filter.MayContainRange(lo, hi)) ++excluded;
  }
  EXPECT_GT(excluded, 1000u);  // most empty ranges are excluded
}

TEST(PrefixBloomTest, PointFprWorseThanRangeGranularity) {
  // The classic prefix-BF weakness (paper Problem 1 discussion):
  // points pay for the shared budget.
  auto keys = RandomKeySet(50000, 14);
  PrefixBloomFilter filter(keys.size(), 10.0, 24);
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(15);
  uint64_t fp = 0, neg = 0;
  for (int i = 0; i < 100000; ++i) {
    uint64_t y = rng.Next();
    if (keys.count(y)) continue;
    ++neg;
    if (filter.MayContain(y)) ++fp;
  }
  // Half the hash budget -> measurably worse than a dedicated BF.
  EXPECT_GT(static_cast<double>(fp) / static_cast<double>(neg), 0.005);
}

// --------------------------------------------------------- FencePointers

TEST(FencePointersTest, ExactAtBlockBoundaries) {
  std::vector<uint64_t> keys = {10, 20, 30, 40, 50, 60, 70, 80};
  FencePointers fences(keys, /*bits_per_key=*/32.0);  // blocks of 4
  ASSERT_EQ(fences.num_blocks(), 2u);
  EXPECT_TRUE(fences.MayContainRange(10, 15));
  EXPECT_TRUE(fences.MayContainRange(45, 55));
  EXPECT_FALSE(fences.MayContainRange(0, 9));
  EXPECT_FALSE(fences.MayContainRange(81, 1000));
  // Gap between blocks [40] and [50] is invisible only if it spans a
  // block boundary: [41,49] intersects block [50,80]? lower_bound on
  // max>=41 gives block0 (max 40)? no: block0 max=40 < 41, so block1
  // (min 50) -> 50 > 49 -> excluded.
  EXPECT_FALSE(fences.MayContainRange(41, 49));
  // Gap inside block0 (between 20 and 30) is invisible: false positive.
  EXPECT_TRUE(fences.MayContainRange(21, 29));
}

TEST(FencePointersTest, NoFalseNegativesOnRandomData) {
  auto keyset = RandomKeySet(20000, 16);
  std::vector<uint64_t> keys(keyset.begin(), keyset.end());
  FencePointers fences(keys, 2.0);
  for (uint64_t k : keys) {
    ASSERT_TRUE(fences.MayContain(k));
  }
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    uint64_t lo = rng.Next();
    uint64_t hi = lo | 0xffffffULL;
    if (GroundTruthRange(keyset, lo, hi)) {
      ASSERT_TRUE(fences.MayContainRange(lo, hi));
    }
  }
}

TEST(FencePointersTest, MemoryMatchesBlockCount) {
  auto keyset = RandomKeySet(1000, 18);
  std::vector<uint64_t> keys(keyset.begin(), keyset.end());
  FencePointers fences(keys, 1.0);  // 128 keys per block
  EXPECT_EQ(fences.num_blocks(), (keys.size() + 127) / 128);
  EXPECT_EQ(fences.MemoryBits(), fences.num_blocks() * 128);
}

TEST(FencePointersTest, EmptyInput) {
  FencePointers fences({}, 4.0);
  EXPECT_FALSE(fences.MayContain(0));
  EXPECT_FALSE(fences.MayContainRange(0, UINT64_MAX));
}

// ---------------------------------------------------------------- Cuckoo

TEST(CuckooFilterTest, NoFalseNegatives) {
  auto keys = RandomKeySet(100000, 19);
  CuckooFilter filter(keys.size(), 12);
  for (uint64_t k : keys) filter.Insert(k);
  EXPECT_EQ(filter.failed_inserts(), 0u);
  for (uint64_t k : keys) EXPECT_TRUE(filter.MayContain(k));
}

TEST(CuckooFilterTest, FprScalesWithFingerprintBits) {
  auto keys = RandomKeySet(50000, 20);
  auto fpr = [&](uint32_t bits) {
    CuckooFilter filter(keys.size(), bits);
    for (uint64_t k : keys) filter.Insert(k);
    Rng rng(21);
    uint64_t fp = 0, neg = 0;
    for (int i = 0; i < 200000; ++i) {
      uint64_t y = rng.Next();
      if (keys.count(y)) continue;
      ++neg;
      if (filter.MayContain(y)) ++fp;
    }
    return static_cast<double>(fp) / static_cast<double>(neg);
  };
  double f8 = fpr(8);
  double f12 = fpr(12);
  double f16 = fpr(16);
  EXPECT_GT(f8, f12);
  EXPECT_GT(f12, f16);
  EXPECT_LT(f16, 0.001);
}

TEST(CuckooFilterTest, DeleteRemovesKeys) {
  auto keyset = RandomKeySet(10000, 22);
  std::vector<uint64_t> keys(keyset.begin(), keyset.end());
  CuckooFilter filter(keys.size(), 16);
  for (uint64_t k : keys) filter.Insert(k);
  for (size_t i = 0; i < keys.size() / 2; ++i) {
    ASSERT_TRUE(filter.Delete(keys[i])) << i;
  }
  // Remaining keys still present.
  for (size_t i = keys.size() / 2; i < keys.size(); ++i) {
    EXPECT_TRUE(filter.MayContain(keys[i]));
  }
  // Deleted keys mostly gone (16-bit fingerprints: collisions rare).
  uint64_t still_present = 0;
  for (size_t i = 0; i < keys.size() / 2; ++i) {
    if (filter.MayContain(keys[i])) ++still_present;
  }
  EXPECT_LT(still_present, 50u);
}

TEST(CuckooFilterTest, DeleteAbsentReturnsFalse) {
  CuckooFilter filter(100, 12);
  filter.Insert(1);
  EXPECT_FALSE(filter.Delete(999999));
}

TEST(CuckooFilterTest, HighOccupancyStillCorrect) {
  // Push occupancy towards the 95% target the paper uses (Fig. 12.E).
  constexpr uint64_t kSlots = 4096 * 4;
  CuckooFilter filter(kSlots, 12, /*target_occupancy=*/1.0);
  Rng rng(23);
  std::vector<uint64_t> inserted;
  for (uint64_t i = 0; i < kSlots * 95 / 100; ++i) {
    uint64_t k = rng.Next();
    filter.Insert(k);
    inserted.push_back(k);
    if (filter.failed_inserts() > 0) break;
  }
  for (uint64_t k : inserted) EXPECT_TRUE(filter.MayContain(k));
}

TEST(CuckooFilterTest, OverflowDegradesToAlwaysTrue) {
  CuckooFilter filter(16, 8, 1.0);
  Rng rng(24);
  for (int i = 0; i < 4000; ++i) filter.Insert(rng.Next());
  if (filter.failed_inserts() > 0) {
    EXPECT_TRUE(filter.MayContain(0xdeadbeef));  // saturated: no FNs ever
  }
}

TEST(CuckooFilterTest, RangesAlwaysPositive) {
  CuckooFilter filter(100, 12);
  EXPECT_TRUE(filter.MayContainRange(5, 10));
}

}  // namespace
}  // namespace bloomrf

#include "lsm/skiplist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/arena.h"
#include "util/random.h"

namespace bloomrf {
namespace {

// Values are opaque pointers to the list; for the unit tests we store
// pointers into an arena-allocated copy of a string.
const char* MakeValue(Arena* arena, const std::string& s) {
  char* buf = arena->AllocateAligned(s.size() + 1);
  std::memcpy(buf, s.data(), s.size() + 1);
  return buf;
}

TEST(SkipListTest, InsertGetOrdered) {
  Arena arena;
  SkipList list(&arena);
  EXPECT_EQ(list.Get(1), nullptr);
  const uint64_t keys[] = {5, 1, 9, 3, 7};
  for (uint64_t k : keys) {
    EXPECT_EQ(list.Insert(k, MakeValue(&arena, "v" + std::to_string(k))),
              nullptr);
  }
  for (uint64_t k : keys) {
    ASSERT_NE(list.Get(k), nullptr);
    EXPECT_EQ(std::string(list.Get(k)), "v" + std::to_string(k));
  }
  EXPECT_EQ(list.Get(2), nullptr);
  EXPECT_EQ(list.Get(100), nullptr);

  SkipList::Iterator it(&list);
  std::vector<uint64_t> seen;
  for (it.SeekToFirst(); it.Valid(); it.Next()) seen.push_back(it.key());
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 3, 5, 7, 9}));
}

TEST(SkipListTest, OverwriteReturnsOldValue) {
  Arena arena;
  SkipList list(&arena);
  EXPECT_EQ(list.Insert(42, MakeValue(&arena, "old")), nullptr);
  const char* old = list.Insert(42, MakeValue(&arena, "new"));
  ASSERT_NE(old, nullptr);
  EXPECT_EQ(std::string(old), "old");
  EXPECT_EQ(std::string(list.Get(42)), "new");

  SkipList::Iterator it(&list);
  it.SeekToFirst();
  ASSERT_TRUE(it.Valid());
  it.Next();
  EXPECT_FALSE(it.Valid());  // still a single node
}

TEST(SkipListTest, SeekLandsOnLowerBound) {
  Arena arena;
  SkipList list(&arena);
  for (uint64_t k = 10; k <= 100; k += 10) {
    list.Insert(k, MakeValue(&arena, "x"));
  }
  SkipList::Iterator it(&list);
  it.Seek(35);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 40u);
  it.Seek(40);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 40u);
  it.Seek(101);
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, ExtremeKeys) {
  Arena arena;
  SkipList list(&arena);
  list.Insert(0, MakeValue(&arena, "zero"));
  list.Insert(UINT64_MAX, MakeValue(&arena, "max"));
  EXPECT_EQ(std::string(list.Get(0)), "zero");
  EXPECT_EQ(std::string(list.Get(UINT64_MAX)), "max");
  SkipList::Iterator it(&list);
  it.SeekToFirst();
  EXPECT_EQ(it.key(), 0u);
}

TEST(SkipListTest, LargeRandomMatchesStdMap) {
  Arena arena;
  SkipList list(&arena);
  std::map<uint64_t, std::string> model;
  Rng rng(991);
  for (int i = 0; i < 20000; ++i) {
    uint64_t key = rng.Next() % 5000;  // plenty of overwrites
    std::string value = "v" + std::to_string(i);
    model[key] = value;
    list.Insert(key, MakeValue(&arena, value));
  }
  SkipList::Iterator it(&list);
  auto mit = model.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it.key(), mit->first);
    EXPECT_EQ(std::string(it.value()), mit->second);
  }
  EXPECT_EQ(mit, model.end());
}

// Multi-writer stress: disjoint key stripes plus a deliberately shared
// stripe, concurrent with readers. Run under TSan in CI.
TEST(SkipListTest, ConcurrentInsertStress) {
  Arena arena;
  SkipList list(&arena);
  const int kThreads = 4;
  const uint64_t kPerThread = 4000;
  const uint64_t kShared = 512;  // all threads fight over [0, kShared)

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Continuously iterate and point-read while writers insert; the
    // invariants: iteration is strictly ordered, values are intact.
    while (!stop.load(std::memory_order_acquire)) {
      SkipList::Iterator it(&list);
      uint64_t prev = 0;
      bool first = true;
      for (it.SeekToFirst(); it.Valid(); it.Next()) {
        if (!first) ASSERT_GT(it.key(), prev);
        prev = it.key();
        first = false;
        ASSERT_NE(it.value(), nullptr);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // Private stripe, guaranteed-fresh keys.
        uint64_t own = 1'000'000 + static_cast<uint64_t>(t) * kPerThread + i;
        list.Insert(own, MakeValue(&arena, std::to_string(own)));
        // Shared stripe, guaranteed insert/insert and overwrite races.
        uint64_t shared = i % kShared;
        list.Insert(shared, MakeValue(&arena, std::to_string(shared)));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Every key present exactly once with an intact value.
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      uint64_t own = 1'000'000 + static_cast<uint64_t>(t) * kPerThread + i;
      ASSERT_NE(list.Get(own), nullptr) << own;
      EXPECT_EQ(std::string(list.Get(own)), std::to_string(own));
    }
  }
  size_t count = 0;
  uint64_t prev = 0;
  bool first = true;
  SkipList::Iterator it(&list);
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    if (!first) ASSERT_GT(it.key(), prev) << "duplicate or disorder";
    prev = it.key();
    first = false;
    ++count;
  }
  EXPECT_EQ(count, kShared + kThreads * kPerThread);
  for (uint64_t s = 0; s < kShared; ++s) {
    ASSERT_NE(list.Get(s), nullptr);
    // Any racing writer's value is acceptable; it must be one of them.
    EXPECT_EQ(std::string(list.Get(s)), std::to_string(s));
  }
}

}  // namespace
}  // namespace bloomrf

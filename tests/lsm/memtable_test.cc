#include "lsm/memtable.h"

#include <gtest/gtest.h>

#include <string>

namespace bloomrf {
namespace {

TEST(MemTableTest, ByteAccountingOnInsert) {
  MemTable mem;
  EXPECT_EQ(mem.ApproximateBytes(), 0u);
  mem.Put(1, "abcd");
  EXPECT_EQ(mem.ApproximateBytes(), 8u + 4u);
  mem.Put(2, "xy");
  EXPECT_EQ(mem.ApproximateBytes(), 8u + 4u + 8u + 2u);
}

// Regression: insert_or_assign of an existing key used to never adjust
// bytes_ for the new value size, so repeated overwrites with growing
// values dodged the flush threshold.
TEST(MemTableTest, ByteAccountingOnOverwrite) {
  MemTable mem;
  mem.Put(7, "aa");
  EXPECT_EQ(mem.ApproximateBytes(), 8u + 2u);
  mem.Put(7, std::string(100, 'b'));  // grows
  EXPECT_EQ(mem.ApproximateBytes(), 8u + 100u);
  mem.Put(7, "c");  // shrinks
  EXPECT_EQ(mem.ApproximateBytes(), 8u + 1u);
  EXPECT_EQ(mem.size(), 1u);
  std::string value;
  ASSERT_TRUE(mem.Get(7, &value));
  EXPECT_EQ(value, "c");
}

TEST(MemTableTest, GrowingOverwritesReachFlushThreshold) {
  // One key overwritten with ever-larger values must eventually cross
  // any fixed byte budget.
  MemTable mem;
  const uint64_t budget = 64 << 10;
  std::string value;
  for (size_t size = 1; mem.ApproximateBytes() < budget; size *= 2) {
    ASSERT_LE(size, budget * 4u) << "overwrites never grew bytes_";
    value.assign(size, 'v');
    mem.Put(42, value);
  }
  EXPECT_GE(mem.ApproximateBytes(), budget);
  EXPECT_EQ(mem.size(), 1u);
}

TEST(MemTableTest, ClearResetsBytes) {
  MemTable mem;
  mem.Put(1, "abc");
  mem.Put(1, "defgh");
  mem.Clear();
  EXPECT_EQ(mem.ApproximateBytes(), 0u);
  EXPECT_TRUE(mem.empty());
}

}  // namespace
}  // namespace bloomrf

// Crash-recovery tests: a "kill" is simulated by destroying the Db
// without Flush() — the active memtable's contents are dropped (only
// sealed memtables drain at shutdown) and survive solely in the WAL —
// plus, for torn-write cases, externally truncating or corrupting the
// log files the process left behind.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "lsm/sharded_db.h"
#include "workload/key_generator.h"

namespace bloomrf {
namespace {

class RecoveryTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_recovery_test_" + std::string(::testing::UnitTest::
        GetInstance()->current_test_info()->name());
    // Parameterized names contain '/', which would nest directories.
    for (char& c : dir_) {
      if (c == '/') c = '_';
    }
    dir_ = "/tmp/" + dir_.substr(5);
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DbOptions Options(uint64_t memtable_bytes = 1 << 20) {
    DbOptions options;
    options.dir = dir_;
    options.filter_policy = NewBloomRFPolicy(18.0, 1e6);
    options.memtable_bytes = memtable_bytes;
    options.background_flush = GetParam();
    return options;
  }

  std::vector<std::string> WalFiles() const {
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (entry.path().extension() == ".log") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  std::string dir_;
};

TEST_P(RecoveryTest, KillAfterPutRecoversEverything) {
  { // "Crash": no Flush, active memtable only survives in the log.
    Db db(Options());
    for (uint64_t k = 0; k < 500; ++k) {
      ASSERT_TRUE(db.Put(k, MakeValue(k, 24)));
    }
  }
  ASSERT_FALSE(WalFiles().empty());
  Db db(Options());
  EXPECT_EQ(db.recovery_stats().wal_records_replayed, 500u);
  EXPECT_EQ(db.recovery_stats().wal_entries_replayed, 500u);
  EXPECT_TRUE(db.recovery_stats().wal_clean);
  std::string value;
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(db.Get(k, &value)) << k;
    EXPECT_EQ(value, MakeValue(k, 24));
  }
}

TEST_P(RecoveryTest, KillMidRecordRecoversIntactPrefix) {
  {
    Db db(Options());
    for (uint64_t k = 0; k < 100; ++k) {
      ASSERT_TRUE(db.Put(k, std::string(16, 'x')));
    }
  }
  auto files = WalFiles();
  ASSERT_EQ(files.size(), 1u);
  // Tear the final record: the crash cut the last write() short.
  const uint64_t size = std::filesystem::file_size(files[0]);
  std::filesystem::resize_file(files[0], size - 7);

  Db db(Options());
  EXPECT_FALSE(db.recovery_stats().wal_clean);
  EXPECT_EQ(db.recovery_stats().wal_records_replayed, 99u);
  std::string value;
  for (uint64_t k = 0; k < 99; ++k) ASSERT_TRUE(db.Get(k, &value)) << k;
  EXPECT_FALSE(db.Get(99, &value));  // the torn record is gone
}

TEST_P(RecoveryTest, GarbageTailAfterKillIsIgnored) {
  {
    Db db(Options());
    for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(db.Put(k, "v"));
  }
  auto files = WalFiles();
  ASSERT_EQ(files.size(), 1u);
  {
    std::ofstream f(files[0], std::ios::binary | std::ios::app);
    std::string garbage = "not a wal record at all, definitely garbage";
    f.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }
  Db db(Options());
  EXPECT_FALSE(db.recovery_stats().wal_clean);
  EXPECT_EQ(db.recovery_stats().wal_records_replayed, 50u);
  std::string value;
  for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(db.Get(k, &value));
}

TEST_P(RecoveryTest, BatchIsAllOrNothingInRecovery) {
  {
    Db db(Options());
    ASSERT_TRUE(db.Put(1, "single"));
    std::vector<KV> batch;
    for (uint64_t k = 100; k < 110; ++k) batch.push_back({k, "batched"});
    ASSERT_TRUE(db.PutBatch(batch));
  }
  auto files = WalFiles();
  ASSERT_EQ(files.size(), 1u);
  // Cut into the middle of the batch record: since a batch is one
  // CRC-framed record, recovery must drop all ten entries, not five.
  std::filesystem::resize_file(files[0],
                               std::filesystem::file_size(files[0]) - 60);
  Db db(Options());
  EXPECT_FALSE(db.recovery_stats().wal_clean);
  std::string value;
  ASSERT_TRUE(db.Get(1, &value));
  for (uint64_t k = 100; k < 110; ++k) {
    EXPECT_FALSE(db.Get(k, &value)) << k;
  }
}

TEST_P(RecoveryTest, DeletedKeyStaysDeletedAcrossReplay) {
  { // Put, flush (key reaches an SST), delete, then "crash": the
    // tombstone survives only in the WAL and must shadow the SST.
    Db db(Options());
    for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(db.Put(k, "flushed"));
    ASSERT_TRUE(db.Flush());
    ASSERT_TRUE(db.Delete(42));
    ASSERT_TRUE(db.Delete(7));
    ASSERT_TRUE(db.Put(7, "reborn"));  // re-put AFTER the delete wins
  }
  Db db(Options());
  std::string value;
  EXPECT_FALSE(db.Get(42, &value)) << "deleted key resurrected by replay";
  ASSERT_TRUE(db.Get(7, &value));
  EXPECT_EQ(value, "reborn");
  for (uint64_t k = 0; k < 100; ++k) {
    if (k == 42) continue;
    ASSERT_TRUE(db.Get(k, &value)) << k;
  }
  // The tombstone must also hold against MultiGet and scans.
  std::vector<uint64_t> keys = {41, 42, 43};
  auto answers = db.MultiGet(keys);
  EXPECT_TRUE(answers[0].has_value());
  EXPECT_FALSE(answers[1].has_value());
  EXPECT_TRUE(answers[2].has_value());
  auto rows = db.RangeScan(40, 44, 16);
  ASSERT_EQ(rows.size(), 4u);  // 40 41 43 44
  for (const auto& [k, v] : rows) EXPECT_NE(k, 42u);
}

TEST_P(RecoveryTest, MixedPutDeleteBatchIsAllOrNothingInRecovery) {
  {
    Db db(Options());
    for (uint64_t k = 100; k < 110; ++k) ASSERT_TRUE(db.Put(k, "old"));
    ASSERT_TRUE(db.Put(1, "single"));
    // One mixed batch: five puts, five deletes, framed as ONE record.
    std::vector<std::string> held;
    held.reserve(5);
    std::vector<WriteOp> ops;
    for (uint64_t k = 200; k < 205; ++k) {
      held.push_back("new" + std::to_string(k));
      ops.push_back({k, held.back(), false});
    }
    for (uint64_t k = 100; k < 105; ++k) {
      ops.push_back({k, std::string_view(), true});
    }
    ASSERT_TRUE(db.WriteBatch(ops));
  }
  auto files = WalFiles();
  ASSERT_EQ(files.size(), 1u);
  // Cut into the middle of the batch record: recovery must drop the
  // WHOLE batch — five new puts AND five deletes — not a prefix.
  std::filesystem::resize_file(files[0],
                               std::filesystem::file_size(files[0]) - 30);
  Db db(Options());
  EXPECT_FALSE(db.recovery_stats().wal_clean);
  std::string value;
  ASSERT_TRUE(db.Get(1, &value));
  for (uint64_t k = 200; k < 205; ++k) {
    EXPECT_FALSE(db.Get(k, &value)) << "half-applied batch put " << k;
  }
  for (uint64_t k = 100; k < 110; ++k) {
    EXPECT_TRUE(db.Get(k, &value)) << "half-applied batch delete " << k;
  }
}

TEST_P(RecoveryTest, DeleteBatchSurvivesKillReopenIntact) {
  {
    Db db(Options());
    for (uint64_t k = 0; k < 64; ++k) ASSERT_TRUE(db.Put(k, "v"));
    std::vector<uint64_t> doomed;
    for (uint64_t k = 0; k < 64; k += 4) doomed.push_back(k);
    ASSERT_TRUE(db.DeleteBatch(doomed));
  }
  Db db(Options());
  std::string value;
  for (uint64_t k = 0; k < 64; ++k) {
    if (k % 4 == 0) {
      EXPECT_FALSE(db.Get(k, &value)) << "resurrected " << k;
    } else {
      ASSERT_TRUE(db.Get(k, &value)) << k;
    }
  }
}

TEST_P(RecoveryTest, FlushedDataComesBackFromSstsAndLogsGetDeleted) {
  {
    Db db(Options());
    for (uint64_t k = 0; k < 300; ++k) {
      ASSERT_TRUE(db.Put(k, MakeValue(k, 16)));
    }
    ASSERT_TRUE(db.Flush());
    // Flushed data's logs are obsolete and deleted; only the fresh
    // (empty) post-rotation log may remain, and the clean close
    // removes that one too.
    for (uint64_t k = 1000; k < 1100; ++k) {
      ASSERT_TRUE(db.Put(k, MakeValue(k, 16)));  // unflushed tail
    }
  }
  ASSERT_EQ(WalFiles().size(), 1u);  // only the post-flush log survived
  Db db(Options());
  EXPECT_GE(db.recovery_stats().tables_loaded, 1u);
  EXPECT_EQ(db.recovery_stats().wal_entries_replayed, 100u);
  std::string value;
  for (uint64_t k = 0; k < 300; ++k) ASSERT_TRUE(db.Get(k, &value)) << k;
  for (uint64_t k = 1000; k < 1100; ++k) ASSERT_TRUE(db.Get(k, &value)) << k;
}

TEST_P(RecoveryTest, CleanCloseLeavesNoWalFiles) {
  {
    Db db(Options());
    for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(db.Put(k, "v"));
    ASSERT_TRUE(db.Flush());
  }
  EXPECT_TRUE(WalFiles().empty());
  Db db(Options());
  EXPECT_EQ(db.recovery_stats().wal_files_replayed, 0u);
  EXPECT_GE(db.recovery_stats().tables_loaded, 1u);
  std::string value;
  for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(db.Get(k, &value));
}

TEST_P(RecoveryTest, OverwritesReplayInOriginalOrder) {
  {
    Db db(Options());
    ASSERT_TRUE(db.Put(5, "first"));
    ASSERT_TRUE(db.Put(5, "second"));
    ASSERT_TRUE(db.Put(5, "third"));
  }
  Db db(Options());
  std::string value;
  ASSERT_TRUE(db.Get(5, &value));
  EXPECT_EQ(value, "third");
}

TEST_P(RecoveryTest, SealedButUnflushedMemtableRecovers) {
  // Tiny memtable budget forces seals; with a permanently failing
  // flush the sealed data can never reach an SST, so after the "crash"
  // it must come back from the logs alone.
  {
    FaultInjectionEnv fenv;
    fenv.FailAlways("sst");
    DbOptions options = Options(/*memtable_bytes=*/4 << 10);
    options.env = &fenv;
    Db db(options);
    for (uint64_t k = 0; k < 400; ++k) db.Put(k, MakeValue(k, 64));
    // Puts may return false once a flush failed; the WAL still has
    // everything.
  }
  EXPECT_FALSE(WalFiles().empty());
  Db db(Options());
  EXPECT_EQ(db.recovery_stats().tables_loaded, 0u);
  std::string value;
  for (uint64_t k = 0; k < 400; ++k) {
    ASSERT_TRUE(db.Get(k, &value)) << k;
    EXPECT_EQ(value, MakeValue(k, 64));
  }
}

TEST_P(RecoveryTest, MultipleKillReopenCycles) {
  for (int cycle = 0; cycle < 3; ++cycle) {
    Db db(Options());
    std::string value;
    for (uint64_t k = 0; k < static_cast<uint64_t>(cycle) * 100; ++k) {
      ASSERT_TRUE(db.Get(k, &value)) << "cycle " << cycle << " key " << k;
    }
    for (uint64_t k = cycle * 100; k < (cycle + 1) * 100u; ++k) {
      ASSERT_TRUE(db.Put(k, MakeValue(k, 16)));
    }
  }
  Db db(Options());
  std::string value;
  for (uint64_t k = 0; k < 300; ++k) ASSERT_TRUE(db.Get(k, &value)) << k;
}

TEST_P(RecoveryTest, FsyncModeRoundTrips) {
  {
    DbOptions options = Options();
    options.wal_fsync = true;
    Db db(options);
    for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(db.Put(k, "durable"));
  }
  Db db(Options());
  std::string value;
  for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(db.Get(k, &value));
}

TEST_P(RecoveryTest, SeparateWalDirIsUsedAndReplayed) {
  const std::string wal_dir = dir_ + "_wal";
  std::filesystem::remove_all(wal_dir);
  {
    DbOptions options = Options();
    options.wal_dir = wal_dir;
    Db db(options);
    for (uint64_t k = 0; k < 64; ++k) ASSERT_TRUE(db.Put(k, "elsewhere"));
  }
  // The data dir holds no logs; the wal dir does.
  EXPECT_TRUE(WalFiles().empty());
  bool has_log = false;
  for (const auto& entry : std::filesystem::directory_iterator(wal_dir)) {
    has_log |= entry.path().extension() == ".log";
  }
  EXPECT_TRUE(has_log);
  {
    DbOptions options = Options();
    options.wal_dir = wal_dir;
    Db db(options);
    std::string value;
    for (uint64_t k = 0; k < 64; ++k) ASSERT_TRUE(db.Get(k, &value));
  }
  std::filesystem::remove_all(wal_dir);
}

TEST_P(RecoveryTest, WalOffMeansMemtableIsLost) {
  {
    DbOptions options = Options();
    options.wal = false;
    Db db(options);
    for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(db.Put(k, "volatile"));
  }
  EXPECT_TRUE(WalFiles().empty());
  DbOptions options = Options();
  options.wal = false;
  Db db(options);
  std::string value;
  EXPECT_FALSE(db.Get(0, &value));
}

TEST_P(RecoveryTest, ShardedPutBatchRecoversPerShard) {
  ShardedDbOptions options;
  options.dir = dir_;
  options.filter_policy = NewBloomRFPolicy(18.0, 1e6);
  options.num_shards = 4;
  options.background_flush = GetParam();
  {
    ShardedDb db(options);
    std::vector<KV> batch;
    std::vector<std::string> values;
    values.reserve(256);
    for (uint64_t k = 0; k < 256; ++k) {
      values.push_back(MakeValue(k, 20));
      batch.push_back({k, values.back()});
    }
    ASSERT_TRUE(db.PutBatch(batch));
    std::string value;
    for (uint64_t k = 0; k < 256; ++k) ASSERT_TRUE(db.Get(k, &value));
  }
  ShardedDb db(options);
  std::string value;
  for (uint64_t k = 0; k < 256; ++k) {
    ASSERT_TRUE(db.Get(k, &value)) << k;
    EXPECT_EQ(value, MakeValue(k, 20));
  }
}

INSTANTIATE_TEST_SUITE_P(BackgroundAndSync, RecoveryTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "BackgroundFlush"
                                             : "SyncFlush";
                         });

}  // namespace
}  // namespace bloomrf

// Leveled compaction: multi-level correctness across every registered
// filter backend, failure injection (a broken disk never unpublishes
// readable state), legacy import, and reopen-after-compaction.

#include "lsm/compaction.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "lsm/sharded_db.h"
#include "tests/test_util.h"
#include "workload/key_generator.h"

namespace bloomrf {
namespace {

class CompactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_compaction_test_" + std::string(::testing::UnitTest::
        GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Small memtables + tiny level budgets so a few thousand keys push
  /// files through several levels.
  DbOptions CompactingOptions(std::shared_ptr<FilterPolicy> policy,
                              const std::string& subdir = "") {
    DbOptions options;
    options.dir = subdir.empty() ? dir_ : subdir;
    options.filter_policy = std::move(policy);
    options.memtable_bytes = 8 << 10;
    options.compaction = true;
    options.l0_compaction_trigger = 2;
    options.level_base_bytes = 16 << 10;
    options.level_size_multiplier = 2;
    options.max_levels = 5;
    return options;
  }

  /// Full sweep of `db` against `expected`: every key via Get, the
  /// whole keyspace via RangeScan, row for row.
  void ExpectExactly(Db& db, const std::map<uint64_t, std::string>& expected) {
    std::string value;
    for (const auto& [k, v] : expected) {
      ASSERT_TRUE(db.Get(k, &value)) << "missing key " << k;
      EXPECT_EQ(value, v) << "wrong value for key " << k;
    }
    auto rows = db.RangeScan(0, ~0ull, expected.size() + 100);
    ASSERT_EQ(rows.size(), expected.size());
    auto it = expected.begin();
    for (size_t i = 0; i < rows.size(); ++i, ++it) {
      EXPECT_EQ(rows[i].first, it->first) << "row " << i;
      EXPECT_EQ(rows[i].second, it->second) << "row " << i;
    }
  }

  std::string dir_;
};

TEST_F(CompactionTest, CompactsIntoMultipleLevelsAndKeepsEveryKey) {
  std::map<uint64_t, std::string> expected;
  {
    Db db(CompactingOptions(NewBloomPolicy(10.0)));
    Dataset data = MakeDataset(6000, Distribution::kUniform, 501);
    // Several rounds of overwrites so newest-wins must survive the
    // merges; flush between rounds to spread versions across levels.
    for (int round = 0; round < 3; ++round) {
      for (size_t i = 0; i < data.keys.size(); i += (round + 1)) {
        uint64_t k = data.keys[i];
        std::string v = "r" + std::to_string(round) + "-" + std::to_string(k);
        ASSERT_TRUE(db.Put(k, v));
        expected[k] = v;
      }
      ASSERT_TRUE(db.Flush());
    }
    ASSERT_TRUE(db.WaitForCompaction());

    auto per_level = db.level_table_counts();
    size_t populated = 0;
    for (size_t n : per_level) populated += n > 0 ? 1 : 0;
    EXPECT_GE(populated, 2u) << "compaction never moved files off L0";
    EXPECT_GT(db.stats().compactions.load(), 0u);
    EXPECT_GT(db.stats().compaction_bytes_written.load(), 0u);

    ExpectExactly(db, expected);
  }
  // The compacted tree must come back identically from the MANIFEST.
  Db db(CompactingOptions(NewBloomPolicy(10.0)));
  EXPECT_FALSE(db.recovery_stats().legacy_import);
  EXPECT_GE(db.recovery_stats().tables_loaded, 1u);
  ExpectExactly(db, expected);
}

TEST_F(CompactionTest, EveryRegistryBackendSurvivesMultiLevelReads) {
  // Satellite: read correctness across all registered filter backends
  // after multi-level compaction — filters are rebuilt per output SST
  // and must stay false-negative-free at every level.
  std::vector<std::shared_ptr<FilterPolicy>> policies;
  for (const std::string& name : FilterRegistry::Instance().Names()) {
    policies.push_back(NewRegistryPolicy(name));
  }
  policies.push_back(nullptr);  // no filter: pure merge correctness
  ASSERT_GT(policies.size(), 1u);

  Dataset data = MakeDataset(2500, Distribution::kNormal, 502);
  int idx = 0;
  for (auto& policy : policies) {
    std::string subdir = dir_ + "/p" + std::to_string(idx++);
    Db db(CompactingOptions(policy, subdir));
    std::map<uint64_t, std::string> expected;
    for (int round = 0; round < 2; ++round) {
      for (uint64_t k : data.keys) {
        std::string v = std::to_string(k) + "@" + std::to_string(round);
        ASSERT_TRUE(db.Put(k, v));
        expected[k] = v;
      }
      ASSERT_TRUE(db.Flush());
    }
    ASSERT_TRUE(db.WaitForCompaction()) << "policy " << idx;
    std::string value;
    for (const auto& [k, v] : expected) {
      ASSERT_TRUE(db.Get(k, &value)) << "policy " << idx << " key " << k;
      ASSERT_EQ(value, v) << "policy " << idx;
    }
    // Ranges spanning level boundaries merge correctly.
    auto rows = db.RangeScan(data.sorted_keys.front(),
                             data.sorted_keys.back(), expected.size());
    ASSERT_EQ(rows.size(), expected.size()) << "policy " << idx;
  }
}

TEST_F(CompactionTest, FailedCompactionLeavesStoreReadable) {
  FaultInjectionEnv fenv;
  DbOptions options = CompactingOptions(NewBloomPolicy(10.0));
  options.env = &fenv;
  options.compaction = false;  // stage L0 without a racing compactor
  std::map<uint64_t, std::string> expected;
  {
    Db db(options);
    for (int round = 0; round < 4; ++round) {
      for (uint64_t k = 0; k < 300; ++k) {
        std::string v = "r" + std::to_string(round);
        ASSERT_TRUE(db.Put(k * 3 + round % 3, v));
        expected[k * 3 + round % 3] = v;
      }
      ASSERT_TRUE(db.Flush());
    }
  }

  // Reopen with compaction on and every SST write failing: the L0
  // pile is over the trigger, so the first pick fails immediately.
  options.compaction = true;
  fenv.FailAlways("sst.open");
  Db db(options);
  const size_t tables_before = db.num_tables();
  ASSERT_GE(tables_before, options.l0_compaction_trigger);
  EXPECT_FALSE(db.WaitForCompaction());
  EXPECT_GT(db.stats().compaction_failures.load(), 0u);
  EXPECT_FALSE(db.stats().last_error().empty());
  // Inputs stay published; nothing was unpublished or lost.
  EXPECT_EQ(db.num_tables(), tables_before);
  ExpectExactly(db, expected);
  // No half-written outputs left behind.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }

  // The disk heals: the same call now acts as a retry and drains the
  // backlog.
  fenv.HealAll();
  ASSERT_TRUE(db.WaitForCompaction());
  EXPECT_LT(db.num_tables(), tables_before);
  EXPECT_GT(db.stats().compactions.load(), 0u);
  ExpectExactly(db, expected);
}

TEST_F(CompactionTest, LegacyDirectoryImportsOnce) {
  // Satellite: a directory that predates the MANIFEST (simulated by
  // deleting it from a closed store) imports its *.sst files once and
  // writes the first manifest.
  std::map<uint64_t, std::string> expected;
  {
    DbOptions options;
    options.dir = dir_;
    options.filter_policy = NewBloomPolicy(10.0);
    options.memtable_bytes = 1 << 20;
    Db db(options);
    for (uint64_t k = 0; k < 800; ++k) {
      db.Put(k, "legacy-" + std::to_string(k));
      expected[k] = "legacy-" + std::to_string(k);
    }
    ASSERT_TRUE(db.Flush());
    for (uint64_t k = 0; k < 100; ++k) {
      db.Put(k, "newer");
      expected[k] = "newer";
    }
    ASSERT_TRUE(db.Flush());
  }
  std::filesystem::remove(CurrentFileName(dir_));
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().filename().string().rfind("MANIFEST-", 0) == 0) {
      std::filesystem::remove(entry.path());
    }
  }
  {
    DbOptions options;
    options.dir = dir_;
    options.filter_policy = NewBloomPolicy(10.0);
    Db db(options);
    EXPECT_TRUE(db.recovery_stats().legacy_import);
    EXPECT_GE(db.recovery_stats().tables_loaded, 2u);
    ExpectExactly(db, expected);  // import order preserves newest-wins
  }
  // The import is one-shot: the next life recovers from the manifest.
  DbOptions options;
  options.dir = dir_;
  options.filter_policy = NewBloomPolicy(10.0);
  Db db(options);
  EXPECT_FALSE(db.recovery_stats().legacy_import);
  ExpectExactly(db, expected);
}

TEST_F(CompactionTest, FullMergeDropsTombstonesAcrossEveryBackend) {
  // Bottom-level drop, per registered filter backend: a full manual
  // merge has no deeper level left that could hold the key, so every
  // tombstone must be dropped — and the deleted keys must STAY deleted
  // through the merge, the rebuilt filters, and a reopen.
  std::vector<std::shared_ptr<FilterPolicy>> policies;
  for (const std::string& name : FilterRegistry::Instance().Names()) {
    policies.push_back(NewRegistryPolicy(name));
  }
  policies.push_back(nullptr);  // no filter: pure merge correctness
  int idx = 0;
  for (auto& policy : policies) {
    SCOPED_TRACE("policy " + std::to_string(idx));
    std::string subdir = dir_ + "/p" + std::to_string(idx++);
    DbOptions options = CompactingOptions(policy, subdir);
    options.compaction = false;  // manual lever owns the tree
    std::map<uint64_t, std::string> expected;
    {
      Db db(options);
      for (uint64_t k = 0; k < 600; ++k) {
        ASSERT_TRUE(db.Put(k, "v" + std::to_string(k)));
        expected[k] = "v" + std::to_string(k);
      }
      ASSERT_TRUE(db.Flush());
      std::vector<uint64_t> doomed;
      for (uint64_t k = 0; k < 600; k += 3) doomed.push_back(k);
      ASSERT_TRUE(db.DeleteBatch(doomed));
      for (uint64_t k : doomed) expected.erase(k);
      ASSERT_TRUE(db.Flush());
      // The tombstones are now live in an L0 SST (and counted).
      EXPECT_EQ(db.stats().tombstones_written.load(), 200u);
      EXPECT_EQ(db.stats().tombstones_live.load(), 200u);

      ASSERT_TRUE(db.CompactAll());
      // Nothing deeper than the merge output exists: every tombstone
      // must be gone from the tree, not carried forever.
      EXPECT_EQ(db.stats().tombstones_dropped.load(), 200u);
      EXPECT_EQ(db.stats().tombstones_live.load(), 0u);
      ExpectExactly(db, expected);
      std::string value;
      for (uint64_t k = 0; k < 600; k += 3) {
        ASSERT_FALSE(db.Get(k, &value)) << "resurrected after merge: " << k;
      }
    }
    // The dropped tombstones stay dropped (and the keys stay deleted)
    // across a MANIFEST recovery.
    Db db(options);
    EXPECT_EQ(db.stats().tombstones_live.load(), 0u);
    ExpectExactly(db, expected);
  }
}

TEST_F(CompactionTest, TombstoneIsKeptWhileDeeperLevelsHoldTheKey) {
  // Must-keep side of the drop rule, under real background leveled
  // compaction: keys written early sink to deeper levels; deleting
  // them later puts tombstones in L0 whose first few compactions
  // CANNOT drop them (the deep live versions are not inputs). The
  // invariant at every step: a deleted key never comes back, and
  // while deeper levels still hold it, the tombstone stays live.
  DbOptions options = CompactingOptions(NewBloomPolicy(10.0));
  Db db(options);
  std::map<uint64_t, std::string> expected;
  // Sink several flushed generations so the tree has populated depth
  // (values sized so the data set outgrows the first level budgets).
  for (int round = 0; round < 4; ++round) {
    for (uint64_t k = 0; k < 1500; ++k) {
      std::string v = "r" + std::to_string(round) + "." + std::to_string(k) +
                      std::string(40, 'x');
      ASSERT_TRUE(db.Put(k, v));
      expected[k] = v;
    }
    ASSERT_TRUE(db.Flush());
    ASSERT_TRUE(db.WaitForCompaction());
  }
  auto per_level = db.level_table_counts();
  size_t populated = 0;
  for (size_t n : per_level) populated += n > 0 ? 1 : 0;
  ASSERT_GE(populated, 2u) << "tree never grew depth; test is vacuous";

  // Delete a slice of keys that live in the deep levels.
  std::vector<uint64_t> doomed;
  for (uint64_t k = 0; k < 1500; k += 4) doomed.push_back(k);
  ASSERT_TRUE(db.DeleteBatch(doomed));
  for (uint64_t k : doomed) expected.erase(k);
  ASSERT_TRUE(db.Flush());
  // Freshly flushed: the tombstones are live on disk.
  EXPECT_GE(db.stats().tombstones_live.load(), doomed.size());

  // Churn more writes (disjoint keys) through the tree so compaction
  // repeatedly rewrites the tombstone-carrying files.
  std::string value;
  for (int round = 0; round < 4; ++round) {
    for (uint64_t k = 10000; k < 10300; ++k) {
      std::string v = "f" + std::to_string(round) + "." + std::to_string(k);
      ASSERT_TRUE(db.Put(k, v));
      expected[k] = v;
    }
    ASSERT_TRUE(db.Flush());
    ASSERT_TRUE(db.WaitForCompaction());
    for (uint64_t k : doomed) {
      ASSERT_FALSE(db.Get(k, &value))
          << "round " << round << ": deleted key " << k
          << " resurrected mid-compaction";
    }
  }
  ExpectExactly(db, expected);
}

TEST_F(CompactionTest, CompactAllOverLegacyImportDoesNotResurrect) {
  // Small-fix satellite: a legacy-imported tree (no MANIFEST) holds
  // pre-delete values in older SSTs; the tombstone SST imports as
  // newer and must keep shadowing them through a full manual merge.
  std::map<uint64_t, std::string> expected;
  DbOptions options;
  options.dir = dir_;
  options.filter_policy = NewBloomPolicy(10.0);
  options.memtable_bytes = 1 << 20;
  {
    Db db(options);
    for (uint64_t k = 0; k < 500; ++k) {
      db.Put(k, "legacy-" + std::to_string(k));
      expected[k] = "legacy-" + std::to_string(k);
    }
    ASSERT_TRUE(db.Flush());
    std::vector<uint64_t> doomed;
    for (uint64_t k = 0; k < 500; k += 5) doomed.push_back(k);
    ASSERT_TRUE(db.DeleteBatch(doomed));
    for (uint64_t k : doomed) expected.erase(k);
    ASSERT_TRUE(db.Flush());
  }
  // Strip the MANIFEST: next open must import raw *.sst files — value
  // SST and tombstone SST both — preserving newest-wins.
  std::filesystem::remove(CurrentFileName(dir_));
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().filename().string().rfind("MANIFEST-", 0) == 0) {
      std::filesystem::remove(entry.path());
    }
  }
  {
    Db db(options);
    ASSERT_TRUE(db.recovery_stats().legacy_import);
    EXPECT_GE(db.stats().tombstones_live.load(), 100u);
    ExpectExactly(db, expected);
    std::string value;
    for (uint64_t k = 0; k < 500; k += 5) {
      ASSERT_FALSE(db.Get(k, &value)) << "import resurrected " << k;
    }
    // Full merge over the imported tree: tombstones meet their legacy
    // values and both disappear — but the keys must NOT come back.
    ASSERT_TRUE(db.CompactAll());
    EXPECT_EQ(db.stats().tombstones_live.load(), 0u);
    ExpectExactly(db, expected);
  }
  Db db(options);
  ExpectExactly(db, expected);
}

TEST_F(CompactionTest, ShardedDbCompactsEveryShard) {
  ShardedDbOptions options;
  options.dir = dir_;
  options.num_shards = 2;
  options.filter_policy = NewBloomPolicy(10.0);
  options.memtable_bytes = 8 << 10;
  options.compaction = true;
  options.l0_compaction_trigger = 2;
  options.level_base_bytes = 16 << 10;
  options.level_size_multiplier = 2;
  ShardedDb db(options);
  std::map<uint64_t, std::string> expected;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t k = 0; k < 2000; ++k) {
      std::string v = "s" + std::to_string(round) + "." + std::to_string(k);
      ASSERT_TRUE(db.Put(k * 11, v));
      expected[k * 11] = v;
    }
    ASSERT_TRUE(db.Flush());
  }
  ASSERT_TRUE(db.WaitForCompaction());
  std::string value;
  for (const auto& [k, v] : expected) {
    ASSERT_TRUE(db.Get(k, &value)) << k;
    EXPECT_EQ(value, v);
  }
}

}  // namespace
}  // namespace bloomrf

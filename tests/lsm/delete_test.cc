// First-class deletes: tombstone semantics through the memtable, the
// WAL, SST v3 encoding, every read path, and the compaction drop rule
// (TombstoneShadow) — plus backward compatibility with v1/v2 tables
// that predate tombstones.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "lsm/compaction.h"
#include "lsm/db.h"
#include "lsm/table_builder.h"
#include "lsm/table_reader.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace bloomrf {
namespace {

class DeleteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_delete_test_" + std::string(::testing::UnitTest::
        GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DbOptions Options() {
    DbOptions options;
    options.dir = dir_;
    options.filter_policy = NewBloomPolicy(10.0);
    options.memtable_bytes = 1 << 20;
    return options;
  }

  std::string dir_;
};

TEST_F(DeleteTest, DeleteInMemtableHidesTheKeyEverywhere) {
  Db db(Options());
  ASSERT_TRUE(db.Put(1, "one"));
  ASSERT_TRUE(db.Put(2, "two"));
  ASSERT_TRUE(db.Delete(1));
  std::string value;
  EXPECT_FALSE(db.Get(1, &value));
  EXPECT_TRUE(db.Get(2, &value));
  std::vector<uint64_t> keys = {1, 2};
  auto answers = db.MultiGet(keys);
  EXPECT_FALSE(answers[0].has_value());
  ASSERT_TRUE(answers[1].has_value());
  EXPECT_EQ(*answers[1], "two");
  auto rows = db.RangeScan(0, 10, 16);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, 2u);
  // Deleting a key that never existed is legal: still a miss after.
  ASSERT_TRUE(db.Delete(99));
  EXPECT_FALSE(db.Get(99, &value));
}

TEST_F(DeleteTest, TombstoneInNewerSstShadowsOlderSst) {
  Db db(Options());
  for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(db.Put(k, "old"));
  ASSERT_TRUE(db.Flush());
  ASSERT_TRUE(db.Delete(25));
  ASSERT_TRUE(db.Flush());  // tombstone now lives in its own SST
  EXPECT_EQ(db.stats().tombstones_written.load(), 1u);
  EXPECT_EQ(db.stats().tombstones_live.load(), 1u);
  std::string value;
  EXPECT_FALSE(db.Get(25, &value)) << "older SST leaked through tombstone";
  auto rows = db.RangeScan(20, 30, 16);
  EXPECT_EQ(rows.size(), 10u);  // 21..24, 26..30 plus 20
  for (const auto& [k, v] : rows) EXPECT_NE(k, 25u);
  // Re-put resurrects ON PURPOSE (a newer live value outranks the
  // tombstone) — the only sanctioned way back.
  ASSERT_TRUE(db.Put(25, "reborn"));
  ASSERT_TRUE(db.Get(25, &value));
  EXPECT_EQ(value, "reborn");
}

TEST_F(DeleteTest, WriteBatchAppliesOpsInOrder) {
  Db db(Options());
  ASSERT_TRUE(db.Put(7, "start"));
  // put 7 then delete 7 in ONE batch: the delete is later, so it wins.
  std::vector<WriteOp> batch1 = {{7, "mid", false},
                                 {7, std::string_view(), true}};
  ASSERT_TRUE(db.WriteBatch(batch1));
  std::string value;
  EXPECT_FALSE(db.Get(7, &value));
  // delete 7 then put 7: the put is later, so the key lives.
  std::vector<WriteOp> batch2 = {{7, std::string_view(), true},
                                 {7, "end", false}};
  ASSERT_TRUE(db.WriteBatch(batch2));
  ASSERT_TRUE(db.Get(7, &value));
  EXPECT_EQ(value, "end");
  // Empty batches are a no-op success.
  EXPECT_TRUE(db.WriteBatch({}));
  EXPECT_TRUE(db.DeleteBatch({}));
}

TEST_F(DeleteTest, TombstonedKeysStayInTheFilter) {
  // While a tombstone is live its key MUST stay in the rebuilt filter:
  // a lookup has to reach the tombstone (and stop) instead of being
  // filtered straight through to a stale value in an older table.
  auto policy = NewBloomPolicy(10.0);
  TableBuilder builder(policy.get(), 4096);
  for (uint64_t k = 0; k < 1000; ++k) {
    if (k % 5 == 0) {
      builder.Add(k, std::string_view(), /*tombstone=*/true);
    } else {
      builder.Add(k, "live");
    }
  }
  TableBuildStats build_stats;
  ASSERT_TRUE(builder.WriteTo(dir_ + "/t.sst", &build_stats));
  EXPECT_EQ(build_stats.num_entries, 1000u);
  EXPECT_EQ(build_stats.num_tombstones, 200u);

  LsmStats stats;
  auto reader = TableReader::Open(dir_ + "/t.sst", policy.get(), &stats);
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->num_tombstones(), 200u);
  std::string value;
  stats.Reset();
  for (uint64_t k = 0; k < 1000; k += 5) {
    EXPECT_EQ(reader->Find(k, &value, &stats), Lookup::kTombstone)
        << k;
  }
  // Every tombstoned key passed the filter (zero negatives), and a
  // tombstone hit is a CONFIRMED answer — not a false positive.
  EXPECT_EQ(stats.filter_negatives, 0u);
  EXPECT_EQ(reader->filter_outcomes().point_false, 0u);
}

TEST_F(DeleteTest, TableReaderSurfacesTombstonesOnEveryReadPath) {
  TableBuilder builder(nullptr, 512);  // small blocks: span several
  for (uint64_t k = 0; k < 300; ++k) {
    if (k % 3 == 1) {
      builder.Add(k, std::string_view(), true);
    } else {
      builder.Add(k, "v" + std::to_string(k));
    }
  }
  ASSERT_TRUE(builder.WriteTo(dir_ + "/t.sst", nullptr));
  LsmStats stats;
  auto reader = TableReader::Open(dir_ + "/t.sst", nullptr, &stats);
  ASSERT_NE(reader, nullptr);

  // Find: tri-state.
  std::string value;
  EXPECT_EQ(reader->Find(0, &value, &stats), Lookup::kHit);
  EXPECT_EQ(reader->Find(1, &value, &stats), Lookup::kTombstone);
  EXPECT_EQ(reader->Find(1000, &value, &stats), Lookup::kMiss);

  // MultiGet: per-key states.
  std::vector<uint64_t> keys = {0, 1, 2, 1000};
  std::vector<Lookup> states(keys.size(),
                                          Lookup::kMiss);
  std::vector<std::string> values(keys.size());
  reader->MultiGet(keys, states.data(), values.data(), &stats);
  EXPECT_EQ(states[0], Lookup::kHit);
  EXPECT_EQ(states[1], Lookup::kTombstone);
  EXPECT_EQ(states[2], Lookup::kHit);
  EXPECT_EQ(states[3], Lookup::kMiss);

  // ScanEntry RangeScan reports tombstones; the legacy pair overload
  // hides them.
  std::vector<ScanEntry> entries;
  ASSERT_TRUE(reader->RangeScan(0, 8, 100, &entries, &stats));
  ASSERT_EQ(entries.size(), 9u);  // every key, tombstoned or not
  for (const auto& e : entries) {
    EXPECT_EQ(e.tombstone, e.key % 3 == 1) << e.key;
    if (e.tombstone) EXPECT_TRUE(e.value.empty());
  }
  std::vector<std::pair<uint64_t, std::string>> rows;
  ASSERT_TRUE(reader->RangeScan(0, 8, 100, &rows, &stats));
  ASSERT_EQ(rows.size(), 6u);  // live rows only
  for (const auto& [k, v] : rows) EXPECT_NE(k % 3, 1u) << k;
}

// ---------------------------------------------------------------------
// Backward compatibility: pre-tombstone tables still load and answer
// identically. The fixtures below write v1/v2 bytes by hand, matching
// the formats documented in table_builder.h.

std::string BuildLegacyTable(int version) {
  // One data block with keys {5, 10, 15}; no filter block.
  BlockBuilder block;
  block.Add(5, "five");
  block.Add(10, "ten");
  block.Add(15, "fifteen");
  std::string payload = block.Finish();

  std::string file;
  file += payload;
  if (version >= 2) PutFixed32(&file, Crc32c(payload));

  std::string index;
  PutFixed64(&index, 15);              // last key
  PutFixed64(&index, 0);               // block offset
  PutFixed64(&index, payload.size());  // payload size (CRC excluded)
  uint64_t index_off = file.size();
  file += index;

  PutFixed64(&file, index_off);
  PutFixed64(&file, index.size());
  PutFixed64(&file, file.size());  // filter_off (degenerate: empty)
  PutFixed64(&file, 0);            // filter_size
  if (version >= 2) {
    PutFixed32(&file, Crc32c(index));
    PutFixed32(&file, Crc32c(std::string_view()));
    PutFixed64(&file, TableBuilder::kMagicV2);
  } else {
    PutFixed64(&file, TableBuilder::kMagicV1);
  }
  return file;
}

TEST_F(DeleteTest, PreTombstoneTablesStillLoadAndAnswerIdentically) {
  for (int version : {1, 2}) {
    SCOPED_TRACE("format v" + std::to_string(version));
    const std::string path =
        dir_ + "/v" + std::to_string(version) + ".sst";
    {
      std::ofstream f(path, std::ios::binary);
      std::string bytes = BuildLegacyTable(version);
      f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    LsmStats stats;
    auto reader = TableReader::Open(path, nullptr, &stats);
    ASSERT_NE(reader, nullptr) << "v" << version << " no longer loads";
    EXPECT_EQ(reader->num_tombstones(), 0u);
    EXPECT_EQ(reader->min_key(), 5u);
    EXPECT_EQ(reader->max_key(), 15u);
    std::string value;
    EXPECT_EQ(reader->Find(5, &value, &stats), Lookup::kHit);
    EXPECT_EQ(value, "five");
    EXPECT_EQ(reader->Find(10, &value, &stats), Lookup::kHit);
    EXPECT_EQ(value, "ten");
    EXPECT_EQ(reader->Find(15, &value, &stats), Lookup::kHit);
    EXPECT_EQ(value, "fifteen");
    // No key in a pre-tombstone table can read as deleted: the high
    // meta bit was never written by old builders.
    EXPECT_EQ(reader->Find(7, &value, &stats), Lookup::kMiss);
    std::vector<ScanEntry> entries;
    ASSERT_TRUE(reader->RangeScan(0, 100, 16, &entries, &stats));
    ASSERT_EQ(entries.size(), 3u);
    for (const auto& e : entries) EXPECT_FALSE(e.tombstone);
  }
}

TEST_F(DeleteTest, LegacySstImportMixesWithTombstones) {
  // A pre-tombstone table imported via the legacy path must still be
  // shadowed by newer deletes.
  {
    std::ofstream f(dir_ + "/000001.sst", std::ios::binary);
    std::string bytes = BuildLegacyTable(2);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Db db(Options());
  ASSERT_TRUE(db.recovery_stats().legacy_import);
  std::string value;
  ASSERT_TRUE(db.Get(10, &value));
  EXPECT_EQ(value, "ten");
  ASSERT_TRUE(db.Delete(10));
  EXPECT_FALSE(db.Get(10, &value)) << "legacy value outlived its delete";
  ASSERT_TRUE(db.Flush());
  EXPECT_FALSE(db.Get(10, &value));
  auto rows = db.RangeScan(0, 100, 16);
  ASSERT_EQ(rows.size(), 2u);  // 5 and 15 survive
  EXPECT_EQ(rows[0].first, 5u);
  EXPECT_EQ(rows[1].first, 15u);
}

// ---------------------------------------------------------------------
// TombstoneShadow: the drop rule itself.

TEST_F(DeleteTest, TombstoneShadowCoversAndCoalesces) {
  // Overlapping + adjacent bounds coalesce; Covers is inclusive.
  auto shadow = TombstoneShadow::FromBounds(
      {{10, 20}, {15, 25}, {40, 50}, {50, 60}, {100, 100}});
  EXPECT_EQ(shadow.num_ranges(), 3u);  // [10,25] [40,60] [100,100]
  EXPECT_FALSE(shadow.Covers(9));
  EXPECT_TRUE(shadow.Covers(10));
  EXPECT_TRUE(shadow.Covers(20));
  EXPECT_TRUE(shadow.Covers(25));
  EXPECT_FALSE(shadow.Covers(26));
  EXPECT_TRUE(shadow.Covers(45));
  EXPECT_TRUE(shadow.Covers(60));
  EXPECT_FALSE(shadow.Covers(61));
  EXPECT_TRUE(shadow.Covers(100));
  EXPECT_FALSE(shadow.Covers(99));

  // Empty shadow (bottom level, or CompactAll where the whole tree is
  // input): nothing is covered, every tombstone may drop.
  auto empty = TombstoneShadow::FromBounds({});
  EXPECT_EQ(empty.num_ranges(), 0u);
  EXPECT_FALSE(empty.Covers(0));
  EXPECT_FALSE(empty.Covers(~0ull));
}

TEST_F(DeleteTest, TombstoneShadowMustKeepCounterexample) {
  // The counterexample that makes eager dropping WRONG: a tombstone
  // for key 42 compacting into level N while some level deeper than N
  // has a file whose bounds [40, 45] can hold key 42. Dropping the
  // tombstone would resurrect the deep value; the shadow must say
  // "covered" so the merge keeps it.
  auto shadow = TombstoneShadow::FromBounds({{40, 45}});
  EXPECT_TRUE(shadow.Covers(42)) << "tombstone would be dropped early, "
                                    "resurrecting the deeper value";
  // A key outside every deeper file's bounds is safe to drop.
  EXPECT_FALSE(shadow.Covers(39));
  EXPECT_FALSE(shadow.Covers(46));
}

TEST_F(DeleteTest, StatsTrackTombstoneLifecycle) {
  DbOptions options = Options();
  options.compaction = false;
  Db db(options);
  for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(db.Put(k, "v"));
  ASSERT_TRUE(db.Flush());
  std::vector<uint64_t> doomed = {3, 5, 8};
  ASSERT_TRUE(db.DeleteBatch(doomed));
  ASSERT_TRUE(db.Flush());
  EXPECT_EQ(db.stats().tombstones_written.load(), 3u);
  EXPECT_EQ(db.stats().tombstones_live.load(), 3u);
  EXPECT_EQ(db.stats().tombstones_dropped.load(), 0u);
  ASSERT_TRUE(db.CompactAll());
  EXPECT_EQ(db.stats().tombstones_dropped.load(), 3u);
  EXPECT_EQ(db.stats().tombstones_live.load(), 0u);
  std::string value;
  for (uint64_t k : doomed) EXPECT_FALSE(db.Get(k, &value)) << k;
}

}  // namespace
}  // namespace bloomrf

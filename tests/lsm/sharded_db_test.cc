#include "lsm/sharded_db.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tests/test_util.h"
#include "workload/key_generator.h"

namespace bloomrf {
namespace {

class ShardedDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_sharded_db_test_" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ShardedDb MakeDb(std::shared_ptr<FilterPolicy> policy, size_t shards,
                   uint64_t memtable_bytes = 64 << 10) {
    ShardedDbOptions options;
    options.dir = dir_;
    options.filter_policy = std::move(policy);
    options.num_shards = shards;
    options.memtable_bytes = memtable_bytes;
    return ShardedDb(options);
  }

  std::string dir_;
};

TEST_F(ShardedDbTest, PutGetRoundTrip) {
  ShardedDb db = MakeDb(NewBloomRFPolicy(18.0, 1e6), 4);
  Dataset data = MakeDataset(5000, Distribution::kUniform, 81);
  for (uint64_t k : data.keys) db.Put(k, MakeValue(k, 32));
  std::string value;
  for (uint64_t k : data.keys) {
    ASSERT_TRUE(db.Get(k, &value)) << k;
    EXPECT_EQ(value, MakeValue(k, 32));
  }
  EXPECT_FALSE(db.Get(0xdeadbeefdeadbeefULL, &value));
}

TEST_F(ShardedDbTest, KeysSpreadOverShards) {
  ShardedDb db = MakeDb(NewBloomPolicy(10.0), 8);
  Dataset data = MakeDataset(20000, Distribution::kUniform, 82);
  for (uint64_t k : data.keys) db.Put(k, "v");
  ASSERT_TRUE(db.Flush());
  // Hash routing: every shard should own a meaningful share.
  for (size_t s = 0; s < db.num_shards(); ++s) {
    EXPECT_GE(db.shard(s).num_tables(), 1u) << "shard " << s;
  }
}

TEST_F(ShardedDbTest, MultiGetMatchesGet) {
  ShardedDb db = MakeDb(NewBloomRFPolicy(18.0, 1e6), 4, 16 << 10);
  Dataset data = MakeDataset(8000, Distribution::kUniform, 83);
  for (uint64_t k : data.keys) db.Put(k, MakeValue(k, 24));
  ASSERT_TRUE(db.Flush());

  std::vector<uint64_t> probe;
  for (size_t i = 0; i < 2000; ++i) probe.push_back(data.keys[i]);
  for (size_t i = 0; i < 500; ++i) probe.push_back(data.keys[i] ^ 0x5555);
  auto batch = db.MultiGet(probe);
  ASSERT_EQ(batch.size(), probe.size());
  std::string value;
  for (size_t i = 0; i < probe.size(); ++i) {
    bool hit = db.Get(probe[i], &value);
    ASSERT_EQ(batch[i].has_value(), hit) << i;
    if (hit) EXPECT_EQ(*batch[i], value);
  }
}

TEST_F(ShardedDbTest, RangeScanMergesAcrossShards) {
  ShardedDb db = MakeDb(NewBloomRFPolicy(20.0, 1e6), 8, 16 << 10);
  for (uint64_t k = 0; k < 3000; ++k) db.Put(k * 3, MakeValue(k, 16));
  ASSERT_TRUE(db.Flush());
  // [0, 299] holds multiples of 3: 0..297 → 100 rows, in key order,
  // assembled from all 8 shards.
  auto rows = db.RangeScan(0, 299);
  ASSERT_EQ(rows.size(), 100u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].first, i * 3);
    EXPECT_EQ(rows[i].second, MakeValue(i, 16));
  }
}

TEST_F(ShardedDbTest, RangeScanLimitTakesSmallestKeys) {
  ShardedDb db = MakeDb(nullptr, 4);
  for (uint64_t k = 0; k < 1000; ++k) db.Put(k, "v");
  ASSERT_TRUE(db.Flush());
  auto rows = db.RangeScan(0, 999, 17);
  ASSERT_EQ(rows.size(), 17u);
  // The global lowest 17 keys, not 17-per-shard leftovers.
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(rows[i].first, i);
}

TEST_F(ShardedDbTest, ScanRangeBatchMatchesSingleScans) {
  ShardedDb db = MakeDb(NewBloomRFPolicy(20.0, 1e6), 4, 16 << 10);
  Dataset data = MakeDataset(6000, Distribution::kUniform, 84);
  for (uint64_t k : data.keys) db.Put(k, MakeValue(k, 16));
  ASSERT_TRUE(db.Flush());

  std::vector<uint64_t> los, his;
  for (size_t q = 0; q < 64; ++q) {
    uint64_t lo = data.sorted_keys[q * 80];
    los.push_back(lo);
    his.push_back(data.sorted_keys[q * 80 + 25]);
  }
  // Plus some empty ranges.
  for (int i = 0; i < 16; ++i) {
    uint64_t anchor = 0x9000000000000000ULL + static_cast<uint64_t>(i) * 977;
    los.push_back(anchor);
    his.push_back(anchor + 100);
  }
  auto batches = db.ScanRange(los, his, 64);
  ASSERT_EQ(batches.size(), los.size());
  for (size_t i = 0; i < los.size(); ++i) {
    auto single = db.RangeScan(los[i], his[i], 64);
    ASSERT_EQ(batches[i], single) << "range " << i;
  }
}

TEST_F(ShardedDbTest, NewestValueWinsAcrossFlushes) {
  ShardedDb db = MakeDb(NewBloomPolicy(10.0), 4);
  db.Put(1, "old");
  ASSERT_TRUE(db.Flush());
  db.Put(1, "new");
  std::string value;
  ASSERT_TRUE(db.Get(1, &value));
  EXPECT_EQ(value, "new");
  ASSERT_TRUE(db.Flush());
  auto rows = db.RangeScan(0, 10);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].second, "new");
}

TEST_F(ShardedDbTest, SharedBlockCacheAndStatsRollUp) {
  ShardedDb db = MakeDb(NewBloomRFPolicy(18.0, 1e6), 4, 16 << 10);
  Dataset data = MakeDataset(4000, Distribution::kUniform, 85);
  for (uint64_t k : data.keys) db.Put(k, MakeValue(k, 32));
  ASSERT_TRUE(db.Flush());
  // All shards share one cache instance.
  for (size_t s = 0; s < db.num_shards(); ++s) {
    EXPECT_EQ(db.shard(s).block_cache().get(), db.block_cache().get());
  }
  db.ResetStats();
  std::vector<uint64_t> probe(data.keys.begin(), data.keys.begin() + 1000);
  (void)db.MultiGet(probe);
  (void)db.MultiGet(probe);  // warm pass: cache hits
  LsmStats total = db.TotalStats();
  EXPECT_GT(total.filter_probes, 0u);
  EXPECT_GT(total.block_cache_hits, 0u);
  db.ResetStats();
  LsmStats cleared = db.TotalStats();
  EXPECT_EQ(cleared.filter_probes, 0u);
}

TEST_F(ShardedDbTest, SingleShardBehavesLikeDb) {
  ShardedDb sharded = MakeDb(NewBloomRFPolicy(18.0, 1e6), 1, 32 << 10);
  DbOptions options;
  options.dir = dir_ + "/plain";
  options.filter_policy = NewBloomRFPolicy(18.0, 1e6);
  options.memtable_bytes = 32 << 10;
  Db plain(options);

  Dataset data = MakeDataset(5000, Distribution::kUniform, 86);
  for (uint64_t k : data.keys) {
    sharded.Put(k, MakeValue(k, 16));
    plain.Put(k, MakeValue(k, 16));
  }
  ASSERT_TRUE(sharded.Flush());
  ASSERT_TRUE(plain.Flush());

  std::vector<uint64_t> probe(data.keys.begin(), data.keys.begin() + 1500);
  EXPECT_EQ(sharded.MultiGet(probe), plain.MultiGet(probe));
  EXPECT_EQ(sharded.RangeScan(data.sorted_keys[100], data.sorted_keys[400]),
            plain.RangeScan(data.sorted_keys[100], data.sorted_keys[400]));
}

}  // namespace
}  // namespace bloomrf

// Db::ScanRange is the batched equivalent of N RangeScan calls: same
// rows for every range (memtable overlays, multi-SST merges, empty
// ranges, duplicates, inverted bounds, empty batches), with each
// table's filter probed once per batch through the planned
// MayContainRangeBatch and block reads served by the shared cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "filters/registry.h"
#include "lsm/db.h"
#include "workload/key_generator.h"

namespace bloomrf {
namespace {

class ScanRangeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_scan_range_test_" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Db MakeDb(std::shared_ptr<FilterPolicy> policy) {
    DbOptions options;
    options.dir = dir_;
    options.filter_policy = std::move(policy);
    options.memtable_bytes = 64 << 10;  // several SSTs
    options.block_cache_bytes = 4 << 20;
    return Db(options);
  }

  /// Asserts ScanRange(los, his) returns exactly the rows of N
  /// RangeScan calls.
  static void ExpectMatchesRangeScan(Db& db,
                                     const std::vector<uint64_t>& los,
                                     const std::vector<uint64_t>& his,
                                     size_t limit = 1024) {
    auto batched = db.ScanRange(los, his, limit);
    ASSERT_EQ(batched.size(), los.size());
    for (size_t i = 0; i < los.size(); ++i) {
      auto rows = db.RangeScan(los[i], his[i], limit);
      ASSERT_EQ(batched[i].size(), rows.size())
          << "range " << i << " [" << los[i] << ", " << his[i] << "]";
      for (size_t k = 0; k < rows.size(); ++k) {
        EXPECT_EQ(batched[i][k].first, rows[k].first);
        EXPECT_EQ(batched[i][k].second, rows[k].second);
      }
    }
  }

  std::string dir_;
};

TEST_F(ScanRangeTest, MatchesRangeScanAcrossMemtableAndSsts) {
  FilterBuildParams params;
  params.bits_per_key = 18.0;
  params.max_range = 1e6;
  Db db = MakeDb(NewRegistryPolicy("bloomrf", params));
  Dataset data = MakeDataset(20000, Distribution::kUniform, 82);
  // Most keys spread over several SSTs, the tail left in the memtable;
  // overwrite some keys so newest-wins merging is exercised.
  for (size_t i = 0; i < data.keys.size(); ++i) {
    db.Put(data.keys[i], MakeValue(data.keys[i], 16));
  }
  db.Flush();
  for (size_t i = 0; i < 500; ++i) {
    db.Put(data.keys[i], "overwritten");
  }
  ASSERT_GT(db.num_tables(), 2u);

  std::vector<uint64_t> los, his;
  for (size_t i = 0; i < data.sorted_keys.size(); i += 997) {
    uint64_t lo = data.sorted_keys[i];
    los.push_back(lo);
    his.push_back(data.sorted_keys[std::min(i + 25, data.sorted_keys.size() - 1)]);
    // Empty range right below a present key.
    if (lo >= 2) {
      los.push_back(lo - 2);
      his.push_back(lo - 1);
    }
  }
  // Inverted bounds and a duplicate of the first range.
  los.push_back(100);
  his.push_back(5);
  los.push_back(los[0]);
  his.push_back(his[0]);
  ExpectMatchesRangeScan(db, los, his);

  // Limits are honored per range.
  ExpectMatchesRangeScan(db, los, his, 7);

  // Empty batch.
  auto empty = db.ScanRange({}, {});
  EXPECT_TRUE(empty.empty());
}

TEST_F(ScanRangeTest, MatchesRangeScanForEveryRangeBackend) {
  Dataset data = MakeDataset(5000, Distribution::kUniform, 83);
  for (const std::string& name : FilterRegistry::Instance().Names()) {
    SCOPED_TRACE(name);
    std::filesystem::remove_all(dir_);
    FilterBuildParams params;
    params.bits_per_key = 18.0;
    params.max_range = 1 << 16;
    Db db = MakeDb(NewRegistryPolicy(name, params));
    for (uint64_t k : data.keys) db.Put(k, MakeValue(k, 8));
    db.Flush();
    std::vector<uint64_t> los, his;
    for (size_t i = 0; i < data.sorted_keys.size(); i += 501) {
      los.push_back(data.sorted_keys[i]);
      his.push_back(
          data.sorted_keys[std::min(i + 10, data.sorted_keys.size() - 1)]);
      los.push_back(data.sorted_keys[i] + 1);
      his.push_back(data.sorted_keys[i] + 2);
    }
    ExpectMatchesRangeScan(db, los, his);
  }
}

TEST_F(ScanRangeTest, RepeatedBatchIsServedByBlockCache) {
  FilterBuildParams params;
  params.bits_per_key = 18.0;
  params.max_range = 1e6;
  Db db = MakeDb(NewRegistryPolicy("bloomrf", params));
  Dataset data = MakeDataset(10000, Distribution::kUniform, 84);
  for (uint64_t k : data.keys) db.Put(k, MakeValue(k, 16));
  db.Flush();

  std::vector<uint64_t> los, his;
  for (size_t i = 0; i < data.sorted_keys.size(); i += 701) {
    los.push_back(data.sorted_keys[i]);
    his.push_back(
        data.sorted_keys[std::min(i + 40, data.sorted_keys.size() - 1)]);
  }
  (void)db.ScanRange(los, his);
  db.ResetStats();
  (void)db.ScanRange(los, his);
  const LsmStats& stats = db.stats();
  EXPECT_GT(stats.block_cache_hits, 0u);
  EXPECT_EQ(stats.block_cache_misses, 0u);
  EXPECT_EQ(stats.blocks_read, 0u);
}

}  // namespace
}  // namespace bloomrf

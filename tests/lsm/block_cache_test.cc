// Unit tests of the shared LRU block cache: hit/miss accounting, LRU
// ordering, capacity-driven eviction, and replacement.

#include <gtest/gtest.h>

#include "lsm/block_cache.h"

namespace bloomrf {
namespace {

std::shared_ptr<const CachedBlock> MakeBlock(size_t raw_bytes) {
  auto block = std::make_shared<CachedBlock>();
  block->raw.assign(raw_bytes, 'x');
  return block;
}

TEST(BlockCacheTest, MissThenHit) {
  BlockCache cache(1 << 20);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  auto block = MakeBlock(100);
  cache.Insert(1, 0, block);
  auto found = cache.Lookup(1, 0);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found.get(), block.get());
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(BlockCacheTest, KeysAreNamespacedByTable) {
  BlockCache cache(1 << 20);
  cache.Insert(1, 7, MakeBlock(10));
  EXPECT_EQ(cache.Lookup(2, 7), nullptr);
  EXPECT_EQ(cache.Lookup(7, 1), nullptr);
  EXPECT_NE(cache.Lookup(1, 7), nullptr);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsed) {
  // Three ~4 KiB blocks in a cache that holds only two.
  BlockCache cache(10 << 10);
  cache.Insert(1, 0, MakeBlock(4 << 10));
  cache.Insert(1, 1, MakeBlock(4 << 10));
  ASSERT_NE(cache.Lookup(1, 0), nullptr);  // touch 0: 1 becomes LRU
  cache.Insert(1, 2, MakeBlock(4 << 10));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_NE(cache.Lookup(1, 2), nullptr);
}

TEST(BlockCacheTest, NeverEvictsTheOnlyBlock) {
  // A block bigger than the whole budget stays resident (evicting it
  // would make the cache useless rather than small).
  BlockCache cache(64);
  cache.Insert(1, 0, MakeBlock(4 << 10));
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  // A second oversized block replaces it as the sole resident.
  cache.Insert(1, 1, MakeBlock(4 << 10));
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_NE(cache.Lookup(1, 1), nullptr);
}

TEST(BlockCacheTest, ReplaceUpdatesCharge) {
  BlockCache cache(1 << 20);
  cache.Insert(1, 0, MakeBlock(1000));
  size_t charge_small = cache.charge_bytes();
  cache.Insert(1, 0, MakeBlock(10000));
  EXPECT_GT(cache.charge_bytes(), charge_small);
  auto found = cache.Lookup(1, 0);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->raw.size(), 10000u);
}

TEST(BlockCacheTest, EvictedBlockSurvivesViaSharedPtr) {
  BlockCache cache(1 << 10);
  auto pinned = MakeBlock(512);
  cache.Insert(1, 0, pinned);
  cache.Insert(1, 1, MakeBlock(2 << 10));  // evicts block 0
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(pinned->raw.size(), 512u);  // still valid for the holder
}

TEST(BlockCacheTest, NullInsertIsIgnored) {
  BlockCache cache(1 << 10);
  cache.Insert(1, 0, nullptr);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.charge_bytes(), 0u);
}

}  // namespace
}  // namespace bloomrf

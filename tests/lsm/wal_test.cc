#include "lsm/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "lsm/table_reader.h"  // LsmStats
#include "util/random.h"

namespace bloomrf {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_wal_test_" + std::string(::testing::UnitTest::
        GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/wal-1.log";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<std::pair<uint64_t, std::string>> Replay(
      WalReplayResult* result = nullptr) {
    std::vector<std::pair<uint64_t, std::string>> entries;
    WalReplayResult r = WalReplay(
        path_, [&](uint64_t key, std::string_view value, bool is_delete) {
          entries.emplace_back(key, is_delete ? "<del>" : std::string(value));
        });
    if (result != nullptr) *result = r;
    return entries;
  }

  struct Op {
    uint64_t key;
    std::string value;
    bool is_delete;
  };
  std::vector<Op> ReplayOps(WalReplayResult* result = nullptr) {
    std::vector<Op> ops;
    WalReplayResult r = WalReplay(
        path_, [&](uint64_t key, std::string_view value, bool is_delete) {
          ops.push_back({key, std::string(value), is_delete});
        });
    if (result != nullptr) *result = r;
    return ops;
  }

  void Truncate(uint64_t size) {
    std::filesystem::resize_file(path_, size);
  }

  void AppendRaw(std::string_view bytes) {
    std::ofstream f(path_, std::ios::binary | std::ios::app);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, RoundTripSingleRecords) {
  {
    WalWriter writer(path_, /*fsync_on_commit=*/false, nullptr);
    ASSERT_FALSE(writer.broken());
    for (uint64_t k = 0; k < 100; ++k) {
      std::string value = "value-" + std::to_string(k);
      KV kv{k, value};
      ASSERT_TRUE(writer.Append(WalEncodeRecord({&kv, 1})));
    }
    ASSERT_TRUE(writer.Sync());
  }
  WalReplayResult result;
  auto entries = Replay(&result);
  EXPECT_TRUE(result.clean);
  EXPECT_EQ(result.records, 100u);
  EXPECT_EQ(result.entries, 100u);
  ASSERT_EQ(entries.size(), 100u);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(entries[k].first, k);
    EXPECT_EQ(entries[k].second, "value-" + std::to_string(k));
  }
}

TEST_F(WalTest, RoundTripBatchRecordIncludingEmptyValues) {
  std::vector<KV> batch = {
      {7, "seven"}, {8, ""}, {9, std::string_view("\0\xff\0", 3)}};
  {
    WalWriter writer(path_, false, nullptr);
    ASSERT_TRUE(writer.Append(WalEncodeRecord(batch)));
  }
  WalReplayResult result;
  auto entries = Replay(&result);
  EXPECT_TRUE(result.clean);
  EXPECT_EQ(result.records, 1u);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[1].second, "");
  EXPECT_EQ(entries[2].second, std::string("\0\xff\0", 3));
}

TEST_F(WalTest, RoundTripOpsBatchMixedPutsAndDeletes) {
  std::vector<WriteOp> ops = {{1, "one", false},
                              {2, std::string_view(), true},
                              {3, "", false},
                              {4, std::string_view(), true}};
  {
    WalWriter writer(path_, false, nullptr);
    std::string record;
    WalEncodeOpsTo(ops, &record);
    ASSERT_TRUE(writer.Append(record));
  }
  WalReplayResult result;
  auto replayed = ReplayOps(&result);
  EXPECT_TRUE(result.clean);
  EXPECT_EQ(result.records, 1u);
  EXPECT_EQ(result.entries, 4u);
  ASSERT_EQ(replayed.size(), 4u);
  EXPECT_FALSE(replayed[0].is_delete);
  EXPECT_EQ(replayed[0].value, "one");
  EXPECT_TRUE(replayed[1].is_delete);
  EXPECT_TRUE(replayed[1].value.empty());
  EXPECT_FALSE(replayed[2].is_delete);  // empty put is not a delete
  EXPECT_TRUE(replayed[3].is_delete);
}

TEST_F(WalTest, RoundTripPureDeleteRecord) {
  std::vector<uint64_t> keys = {10, 20, 30};
  {
    WalWriter writer(path_, false, nullptr);
    std::string record;
    WalEncodeDeletesTo(keys, &record);
    ASSERT_TRUE(writer.Append(record));
  }
  WalReplayResult result;
  auto replayed = ReplayOps(&result);
  EXPECT_TRUE(result.clean);
  ASSERT_EQ(replayed.size(), 3u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(replayed[i].key, keys[i]);
    EXPECT_TRUE(replayed[i].is_delete);
  }
}

TEST_F(WalTest, EveryTruncationPointIsSafeOverDeleteRecords) {
  // Same boundary fuzz as the put-record variant, over records that
  // interleave puts and deletes: any cut must replay an intact prefix
  // of WHOLE records (ops batches are all-or-nothing) and never
  // misparse a delete as a put or vice versa.
  const int kRecords = 4;
  const std::string put_value(7, 'p');  // outlives the WriteOp views
  {
    WalWriter writer(path_, false, nullptr);
    for (uint64_t k = 0; k < kRecords; ++k) {
      std::vector<WriteOp> ops = {{2 * k, put_value, false},
                                  {2 * k + 1, std::string_view(), true}};
      std::string record;
      WalEncodeOpsTo(ops, &record);
      ASSERT_TRUE(writer.Append(record));
    }
  }
  const uint64_t full = std::filesystem::file_size(path_);
  const uint64_t record = full / kRecords;
  std::string original;
  {
    std::ifstream f(path_, std::ios::binary);
    original.assign(std::istreambuf_iterator<char>(f),
                    std::istreambuf_iterator<char>());
  }
  for (uint64_t cut = 0; cut <= full; ++cut) {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f.write(original.data(), static_cast<std::streamsize>(cut));
    f.close();
    WalReplayResult result;
    auto ops = ReplayOps(&result);
    ASSERT_EQ(ops.size(), 2 * (cut / record)) << "cut at " << cut;
    EXPECT_EQ(result.clean, cut % record == 0) << "cut at " << cut;
    for (size_t i = 0; i < ops.size(); ++i) {
      EXPECT_EQ(ops[i].key, i);
      EXPECT_EQ(ops[i].is_delete, i % 2 == 1);
      if (!ops[i].is_delete) EXPECT_EQ(ops[i].value, std::string(7, 'p'));
    }
  }
}

TEST_F(WalTest, UnknownOpFlagBitsStopReplay) {
  // A structurally valid ops record whose flags byte uses an undefined
  // bit must stop replay (future format, not silently misread).
  std::string payload;
  payload.append("\x01\x00\x00\x00", 4);                  // count = 1
  payload.append("\x2a\x00\x00\x00\x00\x00\x00\x00", 8);  // key = 42
  payload.push_back(0x02);                                // unknown flag bit
  std::string record;
  AppendFramedRecord(/*type=*/3, payload, &record);
  AppendRaw(record);
  WalReplayResult result;
  auto replayed = ReplayOps(&result);
  EXPECT_FALSE(result.clean);
  EXPECT_TRUE(replayed.empty());
}

TEST_F(WalTest, MissingFileRepliesCleanEmpty) {
  WalReplayResult result;
  auto entries = Replay(&result);
  EXPECT_TRUE(result.clean);
  EXPECT_EQ(result.records, 0u);
  EXPECT_TRUE(entries.empty());
}

TEST_F(WalTest, TruncatedTailKeepsPrefix) {
  {
    WalWriter writer(path_, false, nullptr);
    for (uint64_t k = 0; k < 10; ++k) {
      KV kv{k, "0123456789abcdef"};
      ASSERT_TRUE(writer.Append(WalEncodeRecord({&kv, 1})));
    }
  }
  const uint64_t full = std::filesystem::file_size(path_);
  const uint64_t record = full / 10;
  // Chop mid-way through the last record: a torn final write().
  Truncate(full - record / 2);
  WalReplayResult result;
  auto entries = Replay(&result);
  EXPECT_FALSE(result.clean);
  EXPECT_EQ(result.records, 9u);
  ASSERT_EQ(entries.size(), 9u);
  EXPECT_EQ(entries.back().first, 8u);
}

TEST_F(WalTest, EveryTruncationPointIsSafe) {
  // Fuzz the boundary: whatever byte the crash cut at, replay must
  // yield an intact prefix and never crash or misparse.
  {
    WalWriter writer(path_, false, nullptr);
    for (uint64_t k = 0; k < 4; ++k) {
      std::string value(7, static_cast<char>('a' + k));
      KV kv{k, value};
      ASSERT_TRUE(writer.Append(WalEncodeRecord({&kv, 1})));
    }
  }
  const uint64_t full = std::filesystem::file_size(path_);
  const uint64_t record = full / 4;
  std::string original;
  {
    std::ifstream f(path_, std::ios::binary);
    original.assign(std::istreambuf_iterator<char>(f),
                    std::istreambuf_iterator<char>());
  }
  for (uint64_t cut = 0; cut <= full; ++cut) {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f.write(original.data(), static_cast<std::streamsize>(cut));
    f.close();
    WalReplayResult result;
    auto entries = Replay(&result);
    EXPECT_EQ(entries.size(), cut / record) << "cut at " << cut;
    EXPECT_EQ(result.clean, cut % record == 0) << "cut at " << cut;
    for (size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(entries[i].first, i);
      EXPECT_EQ(entries[i].second, std::string(7, static_cast<char>('a' + i)));
    }
  }
}

TEST_F(WalTest, CorruptByteStopsAtBadRecord) {
  {
    WalWriter writer(path_, false, nullptr);
    for (uint64_t k = 0; k < 5; ++k) {
      KV kv{k, "payload-payload"};
      ASSERT_TRUE(writer.Append(WalEncodeRecord({&kv, 1})));
    }
  }
  // Flip one payload byte inside the 4th record.
  const uint64_t record = std::filesystem::file_size(path_) / 5;
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(3 * record + record / 2));
    char byte;
    f.seekg(f.tellp());
    f.read(&byte, 1);
    byte ^= 0x40;
    f.seekp(static_cast<std::streamoff>(3 * record + record / 2));
    f.write(&byte, 1);
  }
  WalReplayResult result;
  auto entries = Replay(&result);
  EXPECT_FALSE(result.clean);
  EXPECT_EQ(entries.size(), 3u);  // everything before the corrupt record
}

TEST_F(WalTest, GarbageTailIsRejected) {
  {
    WalWriter writer(path_, false, nullptr);
    KV kv{1, "real"};
    ASSERT_TRUE(writer.Append(WalEncodeRecord({&kv, 1})));
  }
  Rng rng(404);
  std::string garbage(256, '\0');
  for (char& c : garbage) c = static_cast<char>(rng.Next());
  AppendRaw(garbage);
  WalReplayResult result;
  auto entries = Replay(&result);
  EXPECT_FALSE(result.clean);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].second, "real");
}

TEST_F(WalTest, HugeLengthHeaderDoesNotAllocate) {
  // A garbage header claiming a gigabyte payload must be rejected by
  // the bounds check, not trusted.
  std::string header;
  header.append("\x00\x00\x00\x00", 4);      // crc (wrong, unchecked first)
  header.append("\xff\xff\xff\x7f", 4);      // length ~2GB
  header.push_back(1);                       // valid type
  AppendRaw(header);
  WalReplayResult result;
  auto entries = Replay(&result);
  EXPECT_FALSE(result.clean);
  EXPECT_TRUE(entries.empty());
}

TEST_F(WalTest, BrokenDirectoryFailsAppendAndSetsLastError) {
  LsmStats stats;
  WalWriter writer("/proc/definitely/not/writable/wal-1.log", false, &stats);
  EXPECT_TRUE(writer.broken());
  KV kv{1, "x"};
  EXPECT_FALSE(writer.Append(WalEncodeRecord({&kv, 1})));
  EXPECT_NE(stats.last_error().find("wal"), std::string::npos);
}

TEST_F(WalTest, GroupCommitBatchesConcurrentAppends) {
  LsmStats stats;
  const int kThreads = 8;
  const int kPerThread = 200;
  {
    WalWriter writer(path_, /*fsync_on_commit=*/false, &stats);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
          std::string value = "v" + std::to_string(key);
          KV kv{key, value};
          ASSERT_TRUE(writer.Append(WalEncodeRecord({&kv, 1})));
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const uint64_t appends = stats.wal_appends.load();
  const uint64_t batches = stats.group_commit_batches.load();
  EXPECT_EQ(appends, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(batches, 0u);
  EXPECT_LE(batches, appends);
  EXPECT_EQ(stats.wal_synced_bytes.load(), std::filesystem::file_size(path_));

  // Every record must replay intact regardless of how the groups
  // interleaved.
  WalReplayResult result;
  auto entries = Replay(&result);
  EXPECT_TRUE(result.clean);
  ASSERT_EQ(entries.size(), static_cast<size_t>(kThreads) * kPerThread);
  std::vector<bool> seen(kThreads * kPerThread, false);
  for (const auto& [key, value] : entries) {
    ASSERT_LT(key, seen.size());
    EXPECT_FALSE(seen[key]) << "duplicate key " << key;
    seen[key] = true;
    EXPECT_EQ(value, "v" + std::to_string(key));
  }
}

}  // namespace
}  // namespace bloomrf

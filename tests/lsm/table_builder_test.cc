// TableBuilder/SST-format boundary tests: block-size edges, oversized
// values, single-entry tables, and index integrity.

#include <gtest/gtest.h>

#include <filesystem>

#include "lsm/table_builder.h"
#include "lsm/table_reader.h"

namespace bloomrf {
namespace {

class TableBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_tb_test_" + std::string(::testing::UnitTest::
        GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(TableBuilderTest, SingleEntryTable) {
  TableBuilder builder(nullptr, 4096);
  builder.Add(42, "answer");
  ASSERT_TRUE(builder.WriteTo(dir_ + "/t.sst", nullptr));
  LsmStats stats;
  auto reader = TableReader::Open(dir_ + "/t.sst", nullptr, &stats);
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->min_key(), 42u);
  EXPECT_EQ(reader->max_key(), 42u);
  std::string value;
  EXPECT_TRUE(reader->Get(42, &value, &stats));
  EXPECT_EQ(value, "answer");
}

TEST_F(TableBuilderTest, EmptyTableReadable) {
  TableBuilder builder(nullptr, 4096);
  ASSERT_TRUE(builder.WriteTo(dir_ + "/t.sst", nullptr));
  LsmStats stats;
  auto reader = TableReader::Open(dir_ + "/t.sst", nullptr, &stats);
  ASSERT_NE(reader, nullptr);
  std::string value;
  EXPECT_FALSE(reader->Get(42, &value, &stats));
  std::vector<std::pair<uint64_t, std::string>> out;
  reader->RangeScan(0, UINT64_MAX, 10, &out, &stats);
  EXPECT_TRUE(out.empty());
}

TEST_F(TableBuilderTest, ValueLargerThanBlockSize) {
  TableBuilder builder(nullptr, 512);
  std::string big(10000, 'B');
  builder.Add(1, "small");
  builder.Add(2, big);
  builder.Add(3, "after");
  ASSERT_TRUE(builder.WriteTo(dir_ + "/t.sst", nullptr));
  LsmStats stats;
  auto reader = TableReader::Open(dir_ + "/t.sst", nullptr, &stats);
  ASSERT_NE(reader, nullptr);
  std::string value;
  ASSERT_TRUE(reader->Get(2, &value, &stats));
  EXPECT_EQ(value, big);
  ASSERT_TRUE(reader->Get(3, &value, &stats));
  EXPECT_EQ(value, "after");
}

TEST_F(TableBuilderTest, ManySmallBlocks) {
  TableBuilder builder(nullptr, 64);  // ~2-3 entries per block
  for (uint64_t k = 0; k < 1000; ++k) builder.Add(k * 2, "v");
  TableBuildStats build_stats;
  ASSERT_TRUE(builder.WriteTo(dir_ + "/t.sst", &build_stats));
  EXPECT_EQ(build_stats.num_entries, 1000u);

  LsmStats stats;
  auto reader = TableReader::Open(dir_ + "/t.sst", nullptr, &stats);
  ASSERT_NE(reader, nullptr);
  std::string value;
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(reader->Get(k * 2, &value, &stats)) << k;
    ASSERT_FALSE(reader->Get(k * 2 + 1, &value, &stats)) << k;
  }
  // Scan across many block boundaries.
  std::vector<std::pair<uint64_t, std::string>> out;
  reader->RangeScan(500, 700, 1000, &out, &stats);
  EXPECT_EQ(out.size(), 101u);  // 500,502,...,700
}

TEST_F(TableBuilderTest, BoundaryKeysAtBlockEdges) {
  TableBuilder builder(nullptr, 64);
  std::vector<uint64_t> keys = {0, 1, UINT64_MAX - 1, UINT64_MAX};
  for (uint64_t k : keys) builder.Add(k, "x");
  ASSERT_TRUE(builder.WriteTo(dir_ + "/t.sst", nullptr));
  LsmStats stats;
  auto reader = TableReader::Open(dir_ + "/t.sst", nullptr, &stats);
  ASSERT_NE(reader, nullptr);
  std::string value;
  for (uint64_t k : keys) EXPECT_TRUE(reader->Get(k, &value, &stats)) << k;
  EXPECT_EQ(reader->min_key(), 0u);
  EXPECT_EQ(reader->max_key(), UINT64_MAX);
}

TEST_F(TableBuilderTest, WriteToUnwritablePathFails) {
  TableBuilder builder(nullptr, 4096);
  builder.Add(1, "x");
  EXPECT_FALSE(builder.WriteTo("/proc/nope/t.sst", nullptr));
}

TEST_F(TableBuilderTest, FilterStatsPopulated) {
  auto policy = NewBloomRFPolicy(16.0, 1e4);
  TableBuilder builder(policy.get(), 4096);
  for (uint64_t k = 0; k < 5000; ++k) builder.Add(k * 31, "v");
  TableBuildStats build_stats;
  ASSERT_TRUE(builder.WriteTo(dir_ + "/t.sst", &build_stats));
  EXPECT_GT(build_stats.filter_block_bytes, 5000u * 14 / 8);
  EXPECT_GT(build_stats.data_bytes, 0u);
  EXPECT_GE(build_stats.filter_create_seconds, 0.0);
}

}  // namespace
}  // namespace bloomrf

#include "lsm/block.h"

#include <gtest/gtest.h>

namespace bloomrf {
namespace {

TEST(BlockTest, RoundTrip) {
  BlockBuilder builder;
  builder.Add(1, "one");
  builder.Add(2, "");
  builder.Add(300, std::string(1000, 'x'));
  EXPECT_EQ(builder.NumEntries(), 3u);
  EXPECT_EQ(builder.last_key(), 300u);

  std::string data = builder.Finish();
  std::vector<BlockEntry> entries;
  ASSERT_TRUE(ParseBlock(data, &entries));
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, 1u);
  EXPECT_EQ(entries[0].value, "one");
  EXPECT_EQ(entries[1].value, "");
  EXPECT_EQ(entries[2].value.size(), 1000u);
}

TEST(BlockTest, FinishResets) {
  BlockBuilder builder;
  builder.Add(1, "a");
  builder.Finish();
  EXPECT_TRUE(builder.empty());
  EXPECT_EQ(builder.SizeBytes(), 0u);
}

TEST(BlockTest, ParseRejectsCorruption) {
  std::vector<BlockEntry> entries;
  EXPECT_FALSE(ParseBlock("tooshort", &entries));
  BlockBuilder builder;
  builder.Add(1, "value");
  std::string data = builder.Finish();
  EXPECT_FALSE(ParseBlock(std::string_view(data).substr(0, data.size() - 2),
                          &entries));
}

TEST(BlockTest, EmptyBlockParses) {
  std::vector<BlockEntry> entries;
  EXPECT_TRUE(ParseBlock("", &entries));
  EXPECT_TRUE(entries.empty());
}

}  // namespace
}  // namespace bloomrf

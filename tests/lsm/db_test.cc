#include "lsm/db.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "tests/test_util.h"
#include "workload/key_generator.h"
#include "workload/query_generator.h"

namespace bloomrf {
namespace {

class DbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_db_test_" + std::string(::testing::UnitTest::
        GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Db MakeDb(std::shared_ptr<FilterPolicy> policy,
            uint64_t memtable_bytes = 1 << 20) {
    DbOptions options;
    options.dir = dir_;
    options.filter_policy = std::move(policy);
    options.memtable_bytes = memtable_bytes;
    return Db(options);
  }

  std::string dir_;
};

TEST_F(DbTest, PutGetThroughMemtable) {
  Db db = MakeDb(NewBloomRFPolicy(18.0, 1e6));
  ASSERT_TRUE(db.Put(42, "answer"));
  std::string value;
  ASSERT_TRUE(db.Get(42, &value));
  EXPECT_EQ(value, "answer");
  EXPECT_FALSE(db.Get(43, &value));
  EXPECT_EQ(db.num_tables(), 0u);  // still in memtable
}

TEST_F(DbTest, FlushAndGetFromSst) {
  Db db = MakeDb(NewBloomRFPolicy(18.0, 1e6));
  for (uint64_t k = 0; k < 1000; ++k) db.Put(k * 7, MakeValue(k, 32));
  ASSERT_TRUE(db.Flush());
  EXPECT_EQ(db.num_tables(), 1u);
  std::string value;
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(db.Get(k * 7, &value)) << k;
    EXPECT_EQ(value, MakeValue(k, 32));
  }
  EXPECT_FALSE(db.Get(3, &value));
}

TEST_F(DbTest, AutoFlushCreatesMultipleSsts) {
  Db db = MakeDb(NewBloomPolicy(10.0), /*memtable_bytes=*/32 << 10);
  Dataset data = MakeDataset(20000, Distribution::kUniform, 71);
  for (uint64_t k : data.keys) db.Put(k, "0123456789abcdef");
  db.Flush();
  EXPECT_GT(db.num_tables(), 3u);
  std::string value;
  for (size_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(db.Get(data.keys[i], &value)) << i;
  }
}

TEST_F(DbTest, NewestValueWins) {
  Db db = MakeDb(NewBloomPolicy(10.0));
  db.Put(1, "old");
  db.Flush();
  db.Put(1, "new");
  std::string value;
  ASSERT_TRUE(db.Get(1, &value));
  EXPECT_EQ(value, "new");
  db.Flush();
  ASSERT_TRUE(db.Get(1, &value));
  EXPECT_EQ(value, "new");
  auto rows = db.RangeScan(0, 10);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].second, "new");
}

TEST_F(DbTest, RangeScanMergesMemtableAndSsts) {
  Db db = MakeDb(NewBloomRFPolicy(18.0, 1e6));
  for (uint64_t k = 0; k < 100; ++k) db.Put(k * 10, "sst");
  db.Flush();
  for (uint64_t k = 0; k < 100; ++k) db.Put(k * 10 + 5, "mem");
  auto rows = db.RangeScan(0, 99);
  ASSERT_EQ(rows.size(), 20u);  // 0,5,10,...,95
  EXPECT_EQ(rows[0].first, 0u);
  EXPECT_EQ(rows[1].first, 5u);
  EXPECT_EQ(rows[1].second, "mem");
}

TEST_F(DbTest, RangeScanLimit) {
  Db db = MakeDb(nullptr);
  for (uint64_t k = 0; k < 1000; ++k) db.Put(k, "v");
  db.Flush();
  auto rows = db.RangeScan(0, 999, 17);
  EXPECT_EQ(rows.size(), 17u);
  EXPECT_EQ(rows.back().first, 16u);
}

TEST_F(DbTest, FiltersEliminateIoOnEmptyQueries) {
  Db db = MakeDb(NewBloomRFPolicy(20.0, 1e6), 64 << 10);
  Dataset data = MakeDataset(30000, Distribution::kUniform, 72);
  for (uint64_t k : data.keys) db.Put(k, MakeValue(k, 64));
  db.Flush();
  ASSERT_GT(db.num_tables(), 1u);

  QueryWorkload workload =
      MakeQueryWorkload(data, 2000, 1000, Distribution::kUniform, 73);
  db.ResetStats();
  uint64_t fp = 0, empties = 0;
  for (const RangeQuery& q : workload.range_queries) {
    bool answer = db.RangeMayMatch(q.lo, q.hi);
    if (q.empty) {
      ++empties;
      if (answer) ++fp;
    } else {
      EXPECT_TRUE(answer);  // no false negatives end to end
    }
  }
  ASSERT_GT(empties, 0u);
  EXPECT_LT(static_cast<double>(fp) / static_cast<double>(empties), 0.08);
  const LsmStats& stats = db.stats();
  EXPECT_GT(stats.filter_negatives, 0u);
  // Block reads only on (rare) positives.
  EXPECT_LT(stats.blocks_read, stats.filter_probes / 4);
}

TEST_F(DbTest, PointQueriesNoFalseNegativesAcrossManySsts) {
  Db db = MakeDb(NewBloomPolicy(12.0), 16 << 10);
  Dataset data = MakeDataset(10000, Distribution::kNormal, 74);
  for (uint64_t k : data.keys) db.Put(k, "x");
  db.Flush();
  std::string value;
  for (uint64_t k : data.keys) ASSERT_TRUE(db.Get(k, &value));
}

TEST_F(DbTest, FlushStatsAccumulate) {
  Db db = MakeDb(NewSurfPolicy(/*suffix_type=*/1, 8), 8 << 10);
  Dataset data = MakeDataset(5000, Distribution::kUniform, 75);
  for (uint64_t k : data.keys) db.Put(k, "0123456789");
  db.Flush();
  EXPECT_EQ(db.flush_stats().sst_files, db.num_tables());
  EXPECT_GT(db.flush_stats().filter_create_seconds, 0.0);
  EXPECT_GT(db.flush_stats().filter_block_bytes, 0u);
}

TEST_F(DbTest, FlushFailureKeepsDataQueryable) {
  // Failure injection: an unwritable directory makes every flush fail;
  // the memtable must keep serving all data (no silent loss).
  DbOptions options;
  options.dir = "/proc/definitely/not/writable/db";
  options.filter_policy = NewBloomPolicy(10.0);
  options.memtable_bytes = 1 << 20;
  Db db(options);
  for (uint64_t k = 0; k < 500; ++k) db.Put(k, "payload");
  EXPECT_FALSE(db.Flush());
  EXPECT_EQ(db.num_tables(), 0u);
  std::string value;
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(db.Get(k, &value)) << k;
    EXPECT_EQ(value, "payload");
  }
  auto rows = db.RangeScan(0, 499);
  EXPECT_EQ(rows.size(), 500u);
}

TEST_F(DbTest, FailedFlushRetriesInSealOrder) {
  // Regression: a sealed memtable whose flush failed must not be
  // overtaken by a later seal's SST — tables must install in seal
  // order even across failures, or the stuck (older) sealed memtable
  // would shadow the newer table's values on reads. Each drain call
  // retries the failed flush until the "disk" heals.
  FaultInjectionEnv fenv;
  fenv.FailAlways("sst");
  DbOptions options;
  options.dir = dir_;
  options.filter_policy = NewBloomPolicy(10.0);
  options.memtable_bytes = 16 << 10;
  options.env = &fenv;
  Db db(options);

  ASSERT_TRUE(db.Put(7, "v1"));
  EXPECT_FALSE(db.Flush());  // seal #1 fails, stays queued + readable
  EXPECT_EQ(db.num_tables(), 0u);
  std::string value;
  ASSERT_TRUE(db.Get(7, &value));
  EXPECT_EQ(value, "v1");

  // A Put-only writer must hear about the pending failure: the next
  // Put that seals (crosses the budget) reports false.
  ASSERT_TRUE(db.Put(7, "v2"));  // newer value, below budget: fine
  bool sealing_put_failed = false;
  for (uint64_t k = 100; k < 1000 && !sealing_put_failed; ++k) {
    sealing_put_failed = !db.Put(k, std::string(64, 'p'));
  }
  EXPECT_TRUE(sealing_put_failed);

  EXPECT_FALSE(db.Flush());  // still failing; both seals queued
  ASSERT_TRUE(db.Get(7, &value));
  EXPECT_EQ(value, "v2");  // newest sealed memtable wins

  fenv.HealAll();  // disk heals: next drain flushes both, oldest first
  EXPECT_TRUE(db.Flush());
  EXPECT_GE(db.num_tables(), 2u);
  ASSERT_TRUE(db.Get(7, &value));
  EXPECT_EQ(value, "v2");  // newer SST still wins after install
  auto rows = db.RangeScan(0, 99);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].second, "v2");
}

TEST_F(DbTest, FailedFlushRetriesInSealOrderSynchronous) {
  // Same ordering guarantee with background_flush off: the sealing
  // Put/Flush drains inline and keeps the failed memtable at the
  // queue front.
  FaultInjectionEnv fenv;
  fenv.FailAlways("sst");
  DbOptions options;
  options.dir = dir_;
  options.filter_policy = NewBloomPolicy(10.0);
  options.memtable_bytes = 1 << 20;
  options.background_flush = false;
  options.env = &fenv;
  Db db(options);

  ASSERT_TRUE(db.Put(7, "v1"));
  EXPECT_FALSE(db.Flush());
  ASSERT_TRUE(db.Put(7, "v2"));
  EXPECT_FALSE(db.Flush());
  fenv.HealAll();
  EXPECT_TRUE(db.Flush());
  EXPECT_EQ(db.num_tables(), 2u);
  std::string value;
  ASSERT_TRUE(db.Get(7, &value));
  EXPECT_EQ(value, "v2");
}

TEST_F(DbTest, WorksWithEveryPolicy) {
  // Every registered backend runs through the same generic registry
  // policy; one legacy shim covers the parameter-carrying spellings.
  std::vector<std::shared_ptr<FilterPolicy>> policies;
  policies.push_back(NewBloomRFPolicy(18.0, 1e4));
  for (const std::string& name : FilterRegistry::Instance().Names()) {
    policies.push_back(NewRegistryPolicy(name));
  }
  policies.push_back(nullptr);
  int idx = 0;
  for (auto& policy : policies) {
    std::string subdir = dir_ + "/p" + std::to_string(idx++);
    DbOptions options;
    options.dir = subdir;
    options.filter_policy = policy;
    options.memtable_bytes = 1 << 20;
    Db db(options);
    Dataset data = MakeDataset(3000, Distribution::kUniform, 76);
    for (uint64_t k : data.keys) db.Put(k, "v");
    db.Flush();
    std::string value;
    for (uint64_t k : data.keys) {
      ASSERT_TRUE(db.Get(k, &value)) << "policy " << idx;
    }
    for (uint64_t k : data.sorted_keys) {
      ASSERT_TRUE(db.RangeMayMatch(k, k + 100 > k ? k + 100 : k))
          << "policy " << idx;
    }
  }
}

}  // namespace
}  // namespace bloomrf

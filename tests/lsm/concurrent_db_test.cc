// Concurrency equivalence suite for the snapshot-read / background-
// flush engine: readers run Get/MultiGet/ScanRange against a Db (and
// ShardedDb) while a writer Puts through many background flushes.
// Invariants checked from the reader side:
//  - a key published before the read started is always found, with one
//    of its legal values (never a torn/partial value, never "lost"
//    while its memtable moves active -> sealed -> SST);
//  - range scans return exactly the written keys in the range (no
//    phantoms, no gaps below the publication watermark);
// and afterwards the concurrent-written store must match a
// single-threaded replay of the same operations row for row.
// A reader observing a partially published Version would trip these
// (missing sealed data or duplicated/absent tables).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "filters/registry.h"
#include "lsm/db.h"
#include "lsm/sharded_db.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "workload/key_generator.h"

namespace bloomrf {
namespace {

std::string ValueFor(uint64_t key, int pass) {
  return "p" + std::to_string(pass) + ":" + std::to_string(key);
}

class ConcurrentDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_concurrent_db_test_" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// Shared scenario: one writer inserts `keys` in two passes (insert,
// then overwrite with the pass-2 value), sealing through many
// background flushes; `num_readers` threads continuously Get/MultiGet/
// ScanRange and check the invariants above. Returns after both passes
// completed and every reader ran to the end.
template <typename Engine>
void RunWriterReaderScenario(Engine* db, const std::vector<uint64_t>& keys,
                             int num_readers) {
  std::vector<uint64_t> sorted(keys);
  std::sort(sorted.begin(), sorted.end());

  // written[0..watermark) are guaranteed present (release/acquire pairs
  // with the reader's load). pass2_watermark likewise for overwrites.
  std::atomic<size_t> watermark{0};
  std::atomic<size_t> pass2_watermark{0};
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(db->Put(keys[i], ValueFor(keys[i], 1)));
      watermark.store(i + 1, std::memory_order_release);
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(db->Put(keys[i], ValueFor(keys[i], 2)));
      pass2_watermark.store(i + 1, std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < num_readers; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(0xc0ffee + static_cast<uint64_t>(t));
      std::string value;
      int rounds = 0;
      while (!done.load(std::memory_order_acquire) || rounds < 3) {
        ++rounds;
        size_t w = watermark.load(std::memory_order_acquire);
        size_t w2 = pass2_watermark.load(std::memory_order_acquire);
        if (w == 0) continue;

        // Point reads: published keys must be found with a legal value.
        for (int q = 0; q < 32; ++q) {
          size_t i = rng.Uniform(w);
          ASSERT_TRUE(db->Get(keys[i], &value)) << "lost key " << keys[i];
          if (i < w2) {
            ASSERT_EQ(value, ValueFor(keys[i], 2));
          } else {
            ASSERT_TRUE(value == ValueFor(keys[i], 1) ||
                        value == ValueFor(keys[i], 2))
                << "torn value " << value;
          }
        }

        // Batched point reads, mixing published keys and misses.
        std::vector<uint64_t> probe;
        for (int q = 0; q < 48; ++q) {
          probe.push_back((q % 3 == 2) ? rng.Next()
                                       : keys[rng.Uniform(w)]);
        }
        auto batch = db->MultiGet(probe);
        ASSERT_EQ(batch.size(), probe.size());
        for (size_t j = 0; j < probe.size(); ++j) {
          if (j % 3 == 2) continue;  // random probe: either answer ok
          ASSERT_TRUE(batch[j].has_value()) << "lost key " << probe[j];
          ASSERT_TRUE(*batch[j] == ValueFor(probe[j], 1) ||
                      *batch[j] == ValueFor(probe[j], 2));
        }

        // Range scans: rows are exactly written keys, no phantoms; and
        // every key published before the scan that falls inside the
        // range must appear (limit set beyond the range population).
        size_t at = rng.Uniform(sorted.size() - 64);
        uint64_t lo = sorted[at], hi = sorted[at + 63];
        std::vector<uint64_t> los{lo}, his{hi};
        auto scans = db->ScanRange(los, his, sorted.size());
        ASSERT_EQ(scans.size(), 1u);
        const auto& rows = scans[0];
        for (size_t j = 0; j < rows.size(); ++j) {
          ASSERT_GE(rows[j].first, lo);
          ASSERT_LE(rows[j].first, hi);
          if (j > 0) ASSERT_LT(rows[j - 1].first, rows[j].first);
          ASSERT_TRUE(rows[j].second == ValueFor(rows[j].first, 1) ||
                      rows[j].second == ValueFor(rows[j].first, 2))
              << "phantom row " << rows[j].first;
        }
        // Keys published before the scan started and inside [lo, hi]
        // must all be present.
        size_t found = 0;
        for (size_t i = 0; i < w; ++i) {
          if (keys[i] < lo || keys[i] > hi) continue;
          bool present = false;
          for (const auto& row : rows) {
            if (row.first == keys[i]) { present = true; break; }
          }
          ASSERT_TRUE(present) << "scan missed published key " << keys[i];
          ++found;
        }
        (void)found;
      }
    });
  }

  writer.join();
  for (auto& r : readers) r.join();
}

// Replays the same two write passes single-threaded (no background
// flush) and demands row-for-row equality with the concurrent engine.
void ExpectMatchesReplay(Db* concurrent, const std::vector<uint64_t>& keys,
                         const std::string& replay_dir,
                         std::shared_ptr<FilterPolicy> policy,
                         uint64_t memtable_bytes) {
  DbOptions options;
  options.dir = replay_dir;
  options.filter_policy = std::move(policy);
  options.memtable_bytes = memtable_bytes;
  options.background_flush = false;
  Db replay(options);
  for (uint64_t k : keys) ASSERT_TRUE(replay.Put(k, ValueFor(k, 1)));
  for (uint64_t k : keys) ASSERT_TRUE(replay.Put(k, ValueFor(k, 2)));
  ASSERT_TRUE(replay.Flush());

  std::vector<uint64_t> sorted(keys);
  std::sort(sorted.begin(), sorted.end());
  uint64_t lo = sorted.front(), hi = sorted.back();
  auto expect = replay.RangeScan(lo, hi, sorted.size() + 10);
  auto got = concurrent->RangeScan(lo, hi, sorted.size() + 10);
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(got[i].first, expect[i].first) << i;
    ASSERT_EQ(got[i].second, expect[i].second) << i;
  }
  EXPECT_EQ(concurrent->MultiGet(keys), replay.MultiGet(keys));
}

TEST_F(ConcurrentDbTest, ReadersSeeConsistentStateThroughManyFlushes) {
  DbOptions options;
  options.dir = dir_ + "/db";
  options.filter_policy = NewBloomRFPolicy(18.0, 1e6);
  options.memtable_bytes = 8 << 10;  // many seals/flushes per pass
  Db db(options);

  Dataset data = MakeDataset(6000, Distribution::kUniform, 91);
  RunWriterReaderScenario(&db, data.keys, /*num_readers=*/4);
  ASSERT_TRUE(db.Flush());
  EXPECT_GT(db.num_tables(), 4u);  // the scenario really flushed a lot

  ExpectMatchesReplay(&db, data.keys, dir_ + "/replay",
                      NewBloomRFPolicy(18.0, 1e6), 8 << 10);
}

TEST_F(ConcurrentDbTest, ShardedReadersSeeConsistentState) {
  ShardedDbOptions options;
  options.dir = dir_ + "/sharded";
  options.filter_policy = NewBloomRFPolicy(18.0, 1e6);
  options.num_shards = 4;
  options.memtable_bytes = 4 << 10;
  ShardedDb db(options);

  Dataset data = MakeDataset(5000, Distribution::kUniform, 92);
  RunWriterReaderScenario(&db, data.keys, /*num_readers=*/4);
  ASSERT_TRUE(db.Flush());
  EXPECT_GT(db.num_tables(), 4u);
}

TEST_F(ConcurrentDbTest, ConcurrentWritersThroughPut) {
  // Multiple writer threads over disjoint key stripes; Put serializes
  // internally and no write may be lost across the seal handoff.
  DbOptions options;
  options.dir = dir_ + "/db";
  options.filter_policy = NewBloomPolicy(12.0);
  options.memtable_bytes = 8 << 10;
  Db db(options);

  Dataset data = MakeDataset(8000, Distribution::kUniform, 93);
  const int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < data.keys.size();
           i += kWriters) {
        ASSERT_TRUE(db.Put(data.keys[i], ValueFor(data.keys[i], 1)));
      }
    });
  }
  for (auto& w : writers) w.join();
  ASSERT_TRUE(db.Flush());
  std::string value;
  for (uint64_t k : data.keys) {
    ASSERT_TRUE(db.Get(k, &value)) << k;
    EXPECT_EQ(value, ValueFor(k, 1));
  }
}

TEST_F(ConcurrentDbTest, WaitForFlushDrainsQueuedSeals) {
  DbOptions options;
  options.dir = dir_ + "/db";
  options.filter_policy = NewBloomPolicy(10.0);
  options.memtable_bytes = 4 << 10;
  Db db(options);
  for (uint64_t k = 0; k < 5000; ++k) {
    ASSERT_TRUE(db.Put(k, "0123456789abcdef"));
  }
  ASSERT_TRUE(db.Flush());
  // After the drain every sealed memtable became an SST: a fresh
  // snapshot must hold tables only.
  EXPECT_GT(db.num_tables(), 2u);
  EXPECT_EQ(db.flush_stats().sst_files, db.num_tables());
  std::string value;
  for (uint64_t k = 0; k < 5000; ++k) ASSERT_TRUE(db.Get(k, &value));
}

// ShardedDb and Db must answer identically for every registered filter
// backend (the whole registry, plus no filter at all).
TEST_F(ConcurrentDbTest, ShardedMatchesPlainDbAcrossAllBackends) {
  Dataset data = MakeDataset(2500, Distribution::kUniform, 94);
  std::vector<uint64_t> probe;
  for (size_t i = 0; i < 600; ++i) probe.push_back(data.keys[i]);
  for (size_t i = 0; i < 200; ++i) probe.push_back(data.keys[i] + 1);
  std::vector<uint64_t> los, his;
  for (size_t q = 0; q < 24; ++q) {
    los.push_back(data.sorted_keys[q * 100]);
    his.push_back(data.sorted_keys[q * 100 + 30]);
  }

  std::vector<std::string> backends = FilterRegistry::Instance().Names();
  backends.push_back("");  // no filter
  int idx = 0;
  for (const std::string& name : backends) {
    std::string subdir = dir_ + "/b" + std::to_string(idx++);
    auto policy = name.empty()
                      ? nullptr
                      : std::shared_ptr<FilterPolicy>(NewRegistryPolicy(name));

    DbOptions plain_options;
    plain_options.dir = subdir + "/plain";
    plain_options.filter_policy = policy;
    plain_options.memtable_bytes = 16 << 10;
    Db plain(plain_options);

    ShardedDbOptions sharded_options;
    sharded_options.dir = subdir + "/sharded";
    sharded_options.filter_policy = policy;
    sharded_options.num_shards = 4;
    sharded_options.memtable_bytes = 8 << 10;
    ShardedDb sharded(sharded_options);

    for (uint64_t k : data.keys) {
      ASSERT_TRUE(plain.Put(k, MakeValue(k, 20)));
      ASSERT_TRUE(sharded.Put(k, MakeValue(k, 20)));
    }
    ASSERT_TRUE(plain.Flush());
    ASSERT_TRUE(sharded.Flush());

    EXPECT_EQ(sharded.MultiGet(probe), plain.MultiGet(probe))
        << "backend '" << name << "'";
    auto sharded_scans = sharded.ScanRange(los, his, 128);
    auto plain_scans = plain.ScanRange(los, his, 128);
    ASSERT_EQ(sharded_scans.size(), plain_scans.size());
    for (size_t i = 0; i < plain_scans.size(); ++i) {
      EXPECT_EQ(sharded_scans[i], plain_scans[i])
          << "backend '" << name << "' range " << i;
    }
  }
}

}  // namespace
}  // namespace bloomrf

// The adaptive-filter loop, end to end: mixed-backend trees stay
// readable (every filter block is self-describing), compaction merges
// tables across any backend pair, the AdaptiveFilterPolicy actually
// switches backends when the workload shifts, and the new per-level
// FP/TN counters measure a believable FPR.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "tests/test_util.h"

namespace bloomrf {
namespace {

std::string MakeValue(uint64_t k) {
  return "v" + std::to_string(k * 2654435761u % 100000);
}

/// Builds each successive filter with the next backend from `names`
/// (the last name repeats once the list is exhausted) — a deterministic
/// way to manufacture mixed-backend trees.
class RotatingPolicy : public FilterPolicy {
 public:
  explicit RotatingPolicy(std::vector<std::string> names)
      : names_(std::move(names)) {}

  std::string Name() const override { return "rotating"; }

  std::string CreateFilter(
      const std::vector<uint64_t>& sorted_keys) const override {
    size_t turn = turn_.fetch_add(1, std::memory_order_relaxed);
    const std::string& name =
        names_[std::min(turn, names_.size() - 1)];
    const FilterRegistry::Entry* entry = FilterRegistry::Instance().Find(name);
    if (entry == nullptr) return "";
    FilterBuildParams params;
    params.bits_per_key = 14.0;
    params.max_range = 1 << 16;
    auto filter = entry->build_from_sorted_keys(sorted_keys, params);
    if (filter == nullptr) return "";
    return FilterRegistry::Frame(entry->name, filter->Serialize());
  }

  std::unique_ptr<PointRangeFilter> LoadFilter(
      std::string_view data) const override {
    return FilterRegistry::Instance().Deserialize(data);
  }

 private:
  std::vector<std::string> names_;
  mutable std::atomic<size_t> turn_{0};
};

class AdaptiveFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_adaptive_test_" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DbOptions BaseOptions(std::shared_ptr<FilterPolicy> policy) {
    DbOptions options;
    options.dir = dir_;
    options.filter_policy = std::move(policy);
    options.memtable_bytes = 1 << 20;
    options.background_flush = false;
    options.wal = false;
    return options;
  }

  std::string dir_;
};

TEST_F(AdaptiveFilterTest, MixedBackendTreeRoundTripsThroughReopen) {
  std::vector<std::string> names = FilterRegistry::Instance().Names();
  ASSERT_GE(names.size(), 4u);
  auto policy = std::make_shared<RotatingPolicy>(names);
  {
    Db db(BaseOptions(policy));
    for (size_t t = 0; t < names.size(); ++t) {
      for (uint64_t k = 0; k < 200; ++k) {
        uint64_t key = t * 100'000 + k * 17;
        ASSERT_TRUE(db.Put(key, MakeValue(key)));
      }
      ASSERT_TRUE(db.Flush());
    }
    ASSERT_EQ(db.num_tables(), names.size());
    std::string value;
    for (size_t t = 0; t < names.size(); ++t) {
      for (uint64_t k = 0; k < 200; ++k) {
        uint64_t key = t * 100'000 + k * 17;
        ASSERT_TRUE(db.Get(key, &value)) << key;
        EXPECT_EQ(value, MakeValue(key));
      }
    }
  }
  // Reopen: every block announces its own backend, so one generic
  // policy instance loads the whole mixed tree.
  Db db(BaseOptions(policy));
  ASSERT_EQ(db.num_tables(), names.size());
  FilterFeedback feedback = db.CollectFilterFeedback();
  EXPECT_GE(feedback.backends.size(), 4u);  // the mix survived reopen
  std::string value;
  for (size_t t = 0; t < names.size(); ++t) {
    for (uint64_t k = 0; k < 200; ++k) {
      uint64_t key = t * 100'000 + k * 17;
      ASSERT_TRUE(db.Get(key, &value)) << key;
    }
  }
}

TEST_F(AdaptiveFilterTest, CompactionMergesEveryBackendPair) {
  std::vector<std::string> names = FilterRegistry::Instance().Names();
  for (const std::string& a : names) {
    for (const std::string& b : names) {
      std::string pair_dir = dir_ + "/" + a + "-" + b;
      // Flush 1 carries `a`, flush 2 carries `b`, the compaction
      // output is rebuilt under `a` again.
      auto policy = std::make_shared<RotatingPolicy>(
          std::vector<std::string>{a, b, a});
      DbOptions options = BaseOptions(policy);
      options.dir = pair_dir;
      Db db(options);
      for (uint64_t k = 0; k < 150; ++k) {
        ASSERT_TRUE(db.Put(k * 3, MakeValue(k)));
      }
      ASSERT_TRUE(db.Flush());
      for (uint64_t k = 100; k < 250; ++k) {
        ASSERT_TRUE(db.Put(k * 3, MakeValue(k + 1'000'000)));
      }
      ASSERT_TRUE(db.Flush());
      ASSERT_EQ(db.num_tables(), 2u);
      ASSERT_TRUE(db.CompactAll()) << a << " + " << b;
      ASSERT_EQ(db.num_tables(), 1u);
      std::string value;
      for (uint64_t k = 0; k < 250; ++k) {
        ASSERT_TRUE(db.Get(k * 3, &value)) << a << "+" << b << " key " << k;
        // Newer flush wins the overlap.
        EXPECT_EQ(value,
                  k >= 100 ? MakeValue(k + 1'000'000) : MakeValue(k));
      }
      EXPECT_FALSE(db.Get(1, &value));
      std::filesystem::remove_all(pair_dir);
    }
  }
}

TEST_F(AdaptiveFilterTest, MixedBackendTreeHonoursTombstones) {
  // Tombstones must shadow across SSTs whose filters use DIFFERENT
  // backends: the tombstone-carrying table's filter (whatever backend
  // it rotated onto) has to admit the deleted key so the lookup stops
  // at the tombstone instead of reaching the older table.
  std::vector<std::string> names = FilterRegistry::Instance().Names();
  ASSERT_GE(names.size(), 4u);
  auto policy = std::make_shared<RotatingPolicy>(names);
  {
    Db db(BaseOptions(policy));
    // SST 1 (backend names[0]): keys 0..599.
    for (uint64_t k = 0; k < 600; ++k) {
      ASSERT_TRUE(db.Put(k, MakeValue(k)));
    }
    ASSERT_TRUE(db.Flush());
    // SST 2 (backend names[1]): tombstones for every 4th key, plus a
    // few re-puts layered on top within the same table.
    for (uint64_t k = 0; k < 600; k += 4) ASSERT_TRUE(db.Delete(k));
    for (uint64_t k = 0; k < 600; k += 16) {
      ASSERT_TRUE(db.Put(k, "reborn"));
    }
    ASSERT_TRUE(db.Flush());
    // SST 3 (backend names[2]): delete some of the reborn keys again.
    for (uint64_t k = 0; k < 600; k += 32) ASSERT_TRUE(db.Delete(k));
    ASSERT_TRUE(db.Flush());
    ASSERT_EQ(db.num_tables(), 3u);
    EXPECT_GT(db.stats().tombstones_live.load(), 0u);
  }
  auto expect_state = [](Db& db) {
    std::string value;
    std::vector<uint64_t> keys;
    for (uint64_t k = 0; k < 600; ++k) keys.push_back(k);
    auto answers = db.MultiGet(keys);
    for (uint64_t k = 0; k < 600; ++k) {
      bool alive;
      std::string expected_value;
      if (k % 32 == 0) {
        alive = false;  // deleted, reborn, deleted again
      } else if (k % 16 == 0) {
        alive = true;  // deleted then reborn
        expected_value = "reborn";
      } else if (k % 4 == 0) {
        alive = false;  // deleted
      } else {
        alive = true;
        expected_value = MakeValue(k);
      }
      ASSERT_EQ(db.Get(k, &value), alive) << "key " << k;
      ASSERT_EQ(answers[k].has_value(), alive) << "MultiGet key " << k;
      if (alive) {
        ASSERT_EQ(value, expected_value) << "key " << k;
        ASSERT_EQ(*answers[k], expected_value) << "MultiGet key " << k;
      }
    }
    auto rows = db.RangeScan(0, 599, 1000);
    size_t expected_rows = 0;
    for (uint64_t k = 0; k < 600; ++k) {
      expected_rows += (k % 32 != 0 && (k % 16 == 0 || k % 4 != 0)) ? 1 : 0;
    }
    ASSERT_EQ(rows.size(), expected_rows);
  };
  // The mixed tree answers correctly, survives a reopen, and a full
  // merge (filters rebuilt once more, under yet another backend) drops
  // every tombstone without resurrecting anything.
  Db db(BaseOptions(policy));
  ASSERT_EQ(db.num_tables(), 3u);
  expect_state(db);
  ASSERT_TRUE(db.CompactAll());
  EXPECT_EQ(db.stats().tombstones_live.load(), 0u);
  expect_state(db);
}

TEST_F(AdaptiveFilterTest, AdaptivePolicySwitchesBackendOnWorkloadShift) {
  auto policy = NewAdaptiveFilterPolicy(
      {.bits_per_key = 16.0, .min_samples = 64});
  AdaptiveFilterPolicy* adaptive = policy.get();
  DbOptions options = BaseOptions(std::move(policy));
  Db db(options);
  ASSERT_NE(db.workload_sampler(), nullptr);  // implied by the policy

  for (uint64_t k = 0; k < 4000; ++k) {
    ASSERT_TRUE(db.Put(k * 31, MakeValue(k)));
  }

  // Phase 1: point-only traffic, then flush. The planner must choose a
  // point-optimal backend.
  std::string value;
  for (uint64_t q = 0; q < 20'000; ++q) db.Get(q * 13, &value);
  ASSERT_TRUE(db.Flush());
  FilterPlan plan = adaptive->LastPlan();
  EXPECT_FALSE(plan.used_fallback);
  EXPECT_EQ(plan.backend, "blocked_bloom") << plan.rationale;
  EXPECT_GE(adaptive->planned_builds(), 1u);

  // Phase 2: the workload shifts to wide ranges; compaction rewrites
  // the table and the planner must follow.
  db.workload_sampler()->Reset();
  for (uint64_t q = 0; q < 20'000; ++q) {
    uint64_t lo = q * 97;
    db.RangeMayMatch(lo, lo + (uint64_t{1} << 30));
  }
  ASSERT_TRUE(db.CompactAll());
  plan = adaptive->LastPlan();
  EXPECT_FALSE(plan.used_fallback);
  EXPECT_NE(plan.backend, "blocked_bloom") << plan.rationale;
  EXPECT_NE(plan.backend, "bloom") << plan.rationale;
  EXPECT_LT(plan.predicted_range_fpr, 1.0);

  // The tree now physically carries the re-tuned backend.
  FilterFeedback feedback = db.CollectFilterFeedback();
  ASSERT_EQ(feedback.backends.size(), 1u);
  EXPECT_EQ(feedback.backends[0].backend, plan.backend);

  // And the data still reads back exactly.
  for (uint64_t k = 0; k < 4000; ++k) {
    ASSERT_TRUE(db.Get(k * 31, &value)) << k;
    EXPECT_EQ(value, MakeValue(k));
  }
}

TEST_F(AdaptiveFilterTest, AdaptivePolicyWithoutSamplerFallsBack) {
  AdaptiveFilterOptions opts;
  opts.fallback_backend = "bloomrf";
  auto policy = NewAdaptiveFilterPolicy(opts);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 500; ++k) keys.push_back(k * 11);
  std::string block = policy->CreateFilter(keys);  // no context at all
  ASSERT_FALSE(block.empty());
  EXPECT_EQ(policy->fallback_builds(), 1u);
  EXPECT_TRUE(policy->LastPlan().used_fallback);
  auto filter = policy->LoadFilter(block);
  ASSERT_NE(filter, nullptr);
  for (uint64_t k = 0; k < 500; ++k) {
    EXPECT_TRUE(filter->MayContain(k * 11));
  }
}

TEST_F(AdaptiveFilterTest, FalsePositiveCountersMeasureRealFpr) {
  // A deliberately weak Bloom filter (4 bits/key): absent-key Gets
  // must split into per-level true negatives and false positives whose
  // ratio lands near the analytic ~15% FPR.
  Db db(BaseOptions(NewBloomPolicy(4.0)));
  // Even keys only; one past the probe range so every odd probe below
  // falls inside the table's [min,max] and reaches the filter.
  for (uint64_t k = 0; k <= 20'000; ++k) {
    ASSERT_TRUE(db.Put(k * 2, "x"));
  }
  ASSERT_TRUE(db.Flush());
  db.ResetStats();

  const uint64_t kQueries = 20'000;
  std::string value;
  for (uint64_t q = 0; q < kQueries; ++q) {
    EXPECT_FALSE(db.Get(q * 2 + 1, &value));  // odd: always absent
  }
  const LsmStats& stats = db.stats();
  uint64_t fp = stats.total_filter_false_positives();
  uint64_t tn = stats.total_filter_true_negatives();
  // Every absent-key probe has a definite outcome.
  EXPECT_EQ(fp + tn, kQueries);
  // L0 is stats level 0; no deeper level saw traffic.
  EXPECT_EQ(stats.filter_false_positives[0].load(), fp);
  EXPECT_EQ(stats.filter_true_negatives[0].load(), tn);
  double measured = stats.measured_fpr();
  EXPECT_GT(measured, 0.05);
  EXPECT_LT(measured, 0.35);

  // The same outcomes are visible per backend for the planner.
  FilterFeedback feedback = db.CollectFilterFeedback();
  const BackendObservation* obs = feedback.Find("bloom");
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->point_false, fp);
  EXPECT_EQ(obs->point_negatives, tn);
  EXPECT_GT(obs->MeasuredPointFpr(512), 0.05);
}

TEST_F(AdaptiveFilterTest, RangeOutcomesAreAccounted) {
  Db db(BaseOptions(NewBloomRFPolicy(16.0, 1 << 20)));
  for (uint64_t k = 0; k < 10'000; ++k) {
    ASSERT_TRUE(db.Put(k * 1000, "x"));
  }
  ASSERT_TRUE(db.Flush());
  db.ResetStats();

  // Batched empty ranges between the stored keys: every probe either
  // excludes (TN) or scans empty blocks (FP) — both definite.
  std::vector<uint64_t> los, his;
  for (uint64_t q = 0; q < 2000; ++q) {
    uint64_t lo = q * 1000 + 200;
    los.push_back(lo);
    his.push_back(lo + 50);
  }
  auto results = db.ScanRange(los, his, 16);
  for (const auto& rows : results) EXPECT_TRUE(rows.empty());
  const LsmStats& stats = db.stats();
  EXPECT_EQ(stats.total_filter_false_positives() +
                stats.total_filter_true_negatives(),
            los.size());
}

}  // namespace
}  // namespace bloomrf

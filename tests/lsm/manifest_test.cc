// MANIFEST robustness: VersionEdit encode/decode strictness, replay of
// torn/corrupt manifests (mirroring tests/lsm/wal_test.cc for the
// shared frame format), CURRENT-pointer handling, and Db-level
// recovery when the manifest chain is damaged.

#include "lsm/manifest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "lsm/wal.h"
#include "util/random.h"

namespace bloomrf {
namespace {

FileMeta MakeMeta(uint64_t file, uint64_t smallest, uint64_t largest) {
  FileMeta meta;
  meta.file_number = file;
  meta.smallest = smallest;
  meta.largest = largest;
  meta.entries = 10;
  meta.file_bytes = 1000;
  return meta;
}

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_manifest_test_" + std::string(::testing::UnitTest::
        GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string ReadFile(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(f),
                       std::istreambuf_iterator<char>());
  }

  void WriteFile(const std::string& path, std::string_view bytes) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  void AppendRaw(const std::string& path, std::string_view bytes) {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

TEST_F(ManifestTest, VersionEditRoundTrip) {
  VersionEdit edit;
  edit.SetLogNumber(7);
  edit.SetNextFileNumber(42);
  edit.added.emplace_back(0, MakeMeta(3, 100, 200));
  edit.added.emplace_back(2, MakeMeta(4, 0, ~0ull));
  edit.deleted.emplace_back(1, 9);

  VersionEdit out;
  ASSERT_TRUE(VersionEdit::Decode(edit.Encode(), &out));
  EXPECT_TRUE(out.has_log_number);
  EXPECT_EQ(out.log_number, 7u);
  EXPECT_TRUE(out.has_next_file_number);
  EXPECT_EQ(out.next_file_number, 42u);
  ASSERT_EQ(out.added.size(), 2u);
  EXPECT_EQ(out.added[0].first, 0u);
  EXPECT_EQ(out.added[0].second.file_number, 3u);
  EXPECT_EQ(out.added[0].second.smallest, 100u);
  EXPECT_EQ(out.added[0].second.largest, 200u);
  EXPECT_EQ(out.added[0].second.entries, 10u);
  EXPECT_EQ(out.added[0].second.file_bytes, 1000u);
  EXPECT_EQ(out.added[1].first, 2u);
  EXPECT_EQ(out.added[1].second.largest, ~0ull);
  ASSERT_EQ(out.deleted.size(), 1u);
  EXPECT_EQ(out.deleted[0], (std::pair<uint32_t, uint64_t>{1, 9}));
}

TEST_F(ManifestTest, DecodeAcceptsOnlyFieldBoundaryPrefixes) {
  // Fuzz every truncation point of a payload holding all four tags.
  // A cut at a field boundary is a (shorter) valid edit; a cut inside
  // a field must be rejected, never crash or misparse.
  VersionEdit edit;
  edit.SetLogNumber(5);          // 1 + 8 bytes  -> boundary at 9
  edit.SetNextFileNumber(6);     // 1 + 8 bytes  -> boundary at 18
  edit.deleted.emplace_back(0, 1);              // 1 + 4 + 8 -> at 31
  edit.added.emplace_back(0, MakeMeta(2, 0, 1));  // 1 + 4 + 40 -> at 76
  const std::string payload = edit.Encode();
  ASSERT_EQ(payload.size(), 76u);
  const std::vector<size_t> boundaries = {0, 9, 18, 31, 76};
  for (size_t cut = 0; cut <= payload.size(); ++cut) {
    VersionEdit out;
    bool ok = VersionEdit::Decode(payload.substr(0, cut), &out);
    bool at_boundary = std::find(boundaries.begin(), boundaries.end(), cut) !=
                       boundaries.end();
    EXPECT_EQ(ok, at_boundary) << "cut at " << cut;
  }
}

TEST_F(ManifestTest, DecodeRejectsMalformedPayloads) {
  VersionEdit valid;
  valid.SetLogNumber(1);
  VersionEdit out;

  // Unknown tag byte after a valid field.
  std::string unknown_tag = valid.Encode();
  unknown_tag.push_back(0x7f);
  EXPECT_FALSE(VersionEdit::Decode(unknown_tag, &out));

  // Inverted key bounds: an add-file record with smallest > largest is
  // corruption, not a table.
  VersionEdit inverted;
  inverted.added.emplace_back(0, MakeMeta(1, 10, 5));
  EXPECT_FALSE(VersionEdit::Decode(inverted.Encode(), &out));

  // A level index beyond any real tree.
  VersionEdit deep_add;
  deep_add.added.emplace_back(1000, MakeMeta(1, 0, 1));
  EXPECT_FALSE(VersionEdit::Decode(deep_add.Encode(), &out));
  VersionEdit deep_delete;
  deep_delete.deleted.emplace_back(1000, 1);
  EXPECT_FALSE(VersionEdit::Decode(deep_delete.Encode(), &out));
}

TEST_F(ManifestTest, ApplyIsStrictAboutDeletes) {
  ManifestState state;
  VersionEdit add;
  add.added.emplace_back(0, MakeMeta(7, 0, 10));
  ASSERT_TRUE(state.Apply(add));
  ASSERT_EQ(state.levels.size(), 1u);
  EXPECT_EQ(state.levels[0].size(), 1u);

  VersionEdit wrong_file;
  wrong_file.deleted.emplace_back(0, 8);
  EXPECT_FALSE(state.Apply(wrong_file));  // absent file
  VersionEdit wrong_level;
  wrong_level.deleted.emplace_back(3, 7);
  EXPECT_FALSE(state.Apply(wrong_level));  // absent level

  VersionEdit right;
  right.deleted.emplace_back(0, 7);
  EXPECT_TRUE(state.Apply(right));
  EXPECT_TRUE(state.levels[0].empty());
}

TEST_F(ManifestTest, ApplyKeepsMaxOfNumberFields) {
  // Out-of-order numbers (a snapshot edit carrying older coverage than
  // a later live edit) must never move the recovered floor backwards.
  ManifestState state;
  VersionEdit a;
  a.SetLogNumber(9);
  a.SetNextFileNumber(20);
  ASSERT_TRUE(state.Apply(a));
  VersionEdit b;
  b.SetLogNumber(3);
  b.SetNextFileNumber(11);
  ASSERT_TRUE(state.Apply(b));
  EXPECT_EQ(state.log_number, 9u);
  EXPECT_EQ(state.next_file_number, 20u);
  EXPECT_EQ(state.edits, 2u);
}

TEST_F(ManifestTest, WriterReplayRoundTrip) {
  {
    ManifestWriter writer(Env::Default(), dir_, 1);
    ASSERT_TRUE(writer.ok());
    VersionEdit add1;
    add1.SetLogNumber(2);
    add1.SetNextFileNumber(3);
    add1.added.emplace_back(0, MakeMeta(1, 0, 100));
    ASSERT_TRUE(writer.Append(add1));
    VersionEdit add2;
    add2.added.emplace_back(0, MakeMeta(2, 50, 150));
    ASSERT_TRUE(writer.Append(add2));
    VersionEdit compact;
    compact.deleted.emplace_back(0, 1);
    compact.deleted.emplace_back(0, 2);
    compact.added.emplace_back(1, MakeMeta(3, 0, 150));
    ASSERT_TRUE(writer.Append(compact));
    EXPECT_GT(writer.bytes_written(), 0u);
  }
  ManifestState state;
  ManifestReplay(ManifestFileName(dir_, 1), &state);
  EXPECT_TRUE(state.clean);
  EXPECT_EQ(state.edits, 3u);
  EXPECT_EQ(state.log_number, 2u);
  EXPECT_EQ(state.next_file_number, 3u);
  ASSERT_EQ(state.levels.size(), 2u);
  EXPECT_TRUE(state.levels[0].empty());
  ASSERT_EQ(state.levels[1].size(), 1u);
  EXPECT_EQ(state.levels[1][0].file_number, 3u);
}

TEST_F(ManifestTest, MissingManifestRepliesCleanEmpty) {
  ManifestState state;
  ManifestReplay(ManifestFileName(dir_, 99), &state);
  EXPECT_TRUE(state.clean);
  EXPECT_EQ(state.edits, 0u);
  EXPECT_TRUE(state.levels.empty());
}

TEST_F(ManifestTest, EveryTruncationPointKeepsPrefix) {
  // Same-shape edits give fixed-size records, so every record boundary
  // is known; whatever byte a crash cut the manifest at, replay must
  // recover exactly the intact prefix.
  const int kEdits = 6;
  const std::string path = ManifestFileName(dir_, 1);
  {
    ManifestWriter writer(Env::Default(), dir_, 1);
    for (int i = 0; i < kEdits; ++i) {
      VersionEdit edit;
      edit.added.emplace_back(
          0, MakeMeta(static_cast<uint64_t>(i + 1), 0, 10));
      ASSERT_TRUE(writer.Append(edit));
    }
  }
  const std::string original = ReadFile(path);
  const size_t record = original.size() / kEdits;
  ASSERT_EQ(original.size() % kEdits, 0u);
  for (size_t cut = 0; cut <= original.size(); ++cut) {
    WriteFile(path, std::string_view(original).substr(0, cut));
    ManifestState state;
    ManifestReplay(path, &state);
    EXPECT_EQ(state.edits, cut / record) << "cut at " << cut;
    EXPECT_EQ(state.clean, cut % record == 0) << "cut at " << cut;
    if (!state.levels.empty()) {
      ASSERT_EQ(state.levels[0].size(), cut / record);
      for (size_t i = 0; i < state.levels[0].size(); ++i) {
        EXPECT_EQ(state.levels[0][i].file_number, i + 1);
      }
    }
  }
}

TEST_F(ManifestTest, FlippedByteStopsAtBadRecord) {
  const int kEdits = 5;
  const std::string path = ManifestFileName(dir_, 1);
  {
    ManifestWriter writer(Env::Default(), dir_, 1);
    for (int i = 0; i < kEdits; ++i) {
      VersionEdit edit;
      edit.added.emplace_back(
          0, MakeMeta(static_cast<uint64_t>(i + 1), 0, 10));
      ASSERT_TRUE(writer.Append(edit));
    }
  }
  std::string original = ReadFile(path);
  const size_t record = original.size() / kEdits;
  // Flip one byte in the middle of the 4th record: replay keeps the
  // three records before it and reports the tail dirty.
  std::string bent = original;
  bent[3 * record + record / 2] ^= 0x40;
  WriteFile(path, bent);
  ManifestState state;
  ManifestReplay(path, &state);
  EXPECT_FALSE(state.clean);
  EXPECT_EQ(state.edits, 3u);
}

TEST_F(ManifestTest, GarbageTailAndForeignRecordsAreRejected) {
  const std::string path = ManifestFileName(dir_, 1);
  {
    ManifestWriter writer(Env::Default(), dir_, 1);
    VersionEdit edit;
    edit.added.emplace_back(0, MakeMeta(1, 0, 10));
    ASSERT_TRUE(writer.Append(edit));
  }
  // Random garbage after the real record.
  Rng rng(505);
  std::string garbage(128, '\0');
  for (char& c : garbage) c = static_cast<char>(rng.Next());
  AppendRaw(path, garbage);
  ManifestState state;
  ManifestReplay(path, &state);
  EXPECT_FALSE(state.clean);
  EXPECT_EQ(state.edits, 1u);

  // A well-framed record of the wrong type (a WAL batch spliced into a
  // manifest) is corruption too, even though its CRC is valid.
  WriteFile(path, ReadFile(path).substr(
      0, ReadFile(path).size() - garbage.size()));
  KV kv{1, "x"};
  AppendRaw(path, WalEncodeRecord({&kv, 1}));
  ManifestReplay(path, &state);
  EXPECT_FALSE(state.clean);
  EXPECT_EQ(state.edits, 1u);
}

TEST_F(ManifestTest, CurrentFileRoundTripAndMalformedContents) {
  EXPECT_EQ(ReadCurrentManifestNumber(dir_), 0u);  // missing
  ASSERT_TRUE(SetCurrentFile(Env::Default(), dir_, 12));
  EXPECT_EQ(ReadCurrentManifestNumber(dir_), 12u);
  ASSERT_TRUE(SetCurrentFile(Env::Default(), dir_, 13));  // atomic swap
  EXPECT_EQ(ReadCurrentManifestNumber(dir_), 13u);
  EXPECT_FALSE(std::filesystem::exists(CurrentFileName(dir_) + ".tmp"));

  WriteFile(CurrentFileName(dir_), "garbage\n");
  EXPECT_EQ(ReadCurrentManifestNumber(dir_), 0u);
  WriteFile(CurrentFileName(dir_), "MANIFEST-\n");
  EXPECT_EQ(ReadCurrentManifestNumber(dir_), 0u);
  WriteFile(CurrentFileName(dir_), "MANIFEST-12x34\n");
  EXPECT_EQ(ReadCurrentManifestNumber(dir_), 0u);
}

// ---------------------------------------------------------------------
// Db-level recovery when the manifest chain is damaged.
// ---------------------------------------------------------------------

class ManifestDbTest : public ManifestTest {
 protected:
  DbOptions Options() {
    DbOptions options;
    options.dir = dir_;
    options.filter_policy = NewBloomPolicy(10.0);
    options.memtable_bytes = 1 << 20;
    return options;
  }
};

TEST_F(ManifestDbTest, MissingCurrentFallsBackToNewestManifest) {
  {
    Db db(Options());
    for (uint64_t k = 0; k < 500; ++k) db.Put(k, "v" + std::to_string(k));
    ASSERT_TRUE(db.Flush());
    for (uint64_t k = 500; k < 1000; ++k) db.Put(k, "v" + std::to_string(k));
    ASSERT_TRUE(db.Flush());
  }
  ASSERT_TRUE(std::filesystem::remove(CurrentFileName(dir_)));
  Db db(Options());
  EXPECT_FALSE(db.recovery_stats().legacy_import);
  EXPECT_GE(db.recovery_stats().tables_loaded, 2u);
  EXPECT_GT(db.recovery_stats().manifest_edits_replayed, 0u);
  std::string value;
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(db.Get(k, &value)) << k;
    EXPECT_EQ(value, "v" + std::to_string(k));
  }
  // The reopen wrote a fresh snapshot manifest and re-pointed CURRENT.
  EXPECT_GT(ReadCurrentManifestNumber(dir_), 0u);
}

TEST_F(ManifestDbTest, TornManifestTailIsToleratedOnReopen) {
  {
    Db db(Options());
    for (uint64_t k = 0; k < 400; ++k) db.Put(k, "stable");
    ASSERT_TRUE(db.Flush());
  }
  const uint64_t live = ReadCurrentManifestNumber(dir_);
  ASSERT_GT(live, 0u);
  // A crash mid-append leaves a torn record at the tail; everything
  // before it must be trusted.
  AppendRaw(ManifestFileName(dir_, live), std::string(13, '\x5a'));
  Db db(Options());
  EXPECT_FALSE(db.recovery_stats().manifest_clean);
  EXPECT_GE(db.recovery_stats().tables_loaded, 1u);
  std::string value;
  for (uint64_t k = 0; k < 400; ++k) {
    ASSERT_TRUE(db.Get(k, &value)) << k;
    EXPECT_EQ(value, "stable");
  }
}

TEST_F(ManifestDbTest, StaleManifestsAreReplacedOnReopen) {
  {
    Db db(Options());
    db.Put(1, "one");
    ASSERT_TRUE(db.Flush());
  }
  { Db db(Options()); }  // a second life: snapshot + cleanup
  size_t manifests = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().filename().string().rfind("MANIFEST-", 0) == 0) {
      ++manifests;
    }
  }
  EXPECT_EQ(manifests, 1u);  // old generations deleted, one live
  Db db(Options());
  std::string value;
  ASSERT_TRUE(db.Get(1, &value));
  EXPECT_EQ(value, "one");
}

}  // namespace
}  // namespace bloomrf

// Parallel compaction: the multi-job scheduler, range-partitioned
// subcompactions, and CompactRange.
//
// The core bar is equivalence: a compaction split into N
// subcompactions must leave the store logically identical to the same
// compaction run serially — same rows, same tombstone drops — across
// every registered filter backend and across trees that mix backends
// per SST. On top of that: CompactRange semantics against a reference
// map, the scheduler under write pressure with several workers, and
// the ShardedDb fan-out.

#include "lsm/compaction.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "lsm/sharded_db.h"
#include "workload/key_generator.h"

namespace bloomrf {
namespace {

/// Cycles filter backends per build so a compacted tree mixes filter
/// block formats (the adaptive policy's steady state).
class CyclingPolicy : public FilterPolicy {
 public:
  std::string Name() const override { return "cycling"; }

  std::string CreateFilter(
      const std::vector<uint64_t>& sorted_keys) const override {
    static const std::vector<std::string> kCycle = {
        "bloomrf", "blocked_bloom", "rosetta", "prefix_bloom"};
    size_t turn = turn_.fetch_add(1, std::memory_order_relaxed);
    const FilterRegistry::Entry* entry =
        FilterRegistry::Instance().Find(kCycle[turn % kCycle.size()]);
    FilterBuildParams params;
    params.bits_per_key = 12.0;
    auto filter = entry->build_from_sorted_keys(sorted_keys, params);
    if (filter == nullptr) return "";
    return FilterRegistry::Frame(entry->name, filter->Serialize());
  }

  std::unique_ptr<PointRangeFilter> LoadFilter(
      std::string_view data) const override {
    return FilterRegistry::Instance().Deserialize(data);
  }

 private:
  mutable std::atomic<size_t> turn_{0};
};

class ParallelCompactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_parallel_compaction_" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Manual-compaction options: background compaction off so the test
  /// owns the tree; `split` forces every job into subcompactions.
  DbOptions ManualOptions(std::shared_ptr<FilterPolicy> policy,
                          const std::string& subdir, bool split) {
    DbOptions options;
    options.dir = subdir;
    options.filter_policy = std::move(policy);
    options.memtable_bytes = 8 << 10;
    options.compaction = false;
    options.level_base_bytes = 16 << 10;
    options.level_size_multiplier = 2;
    options.max_levels = 5;
    if (split) {
      options.max_subcompactions = 4;
      options.subcompaction_min_bytes = 0;  // split even tiny jobs
    }
    return options;
  }

  /// Loads the same workload into `db`: three overwrite rounds plus a
  /// delete sweep, flushed often so CompactAll sees many inputs.
  static void LoadWorkload(Db& db, std::map<uint64_t, std::string>* expected) {
    Dataset data = MakeDataset(3000, Distribution::kUniform, 901);
    for (int round = 0; round < 3; ++round) {
      for (size_t i = 0; i < data.keys.size(); i += (round + 1)) {
        uint64_t k = data.keys[i];
        std::string v = "r" + std::to_string(round) + "-" + std::to_string(k);
        ASSERT_TRUE(db.Put(k, v));
        (*expected)[k] = v;
      }
      ASSERT_TRUE(db.Flush());
    }
    std::vector<uint64_t> doomed;
    for (size_t i = 0; i < data.keys.size(); i += 7) {
      doomed.push_back(data.keys[i]);
    }
    ASSERT_TRUE(db.DeleteBatch(doomed));
    for (uint64_t k : doomed) expected->erase(k);
    ASSERT_TRUE(db.Flush());
  }

  /// Exact-contents sweep: every expected key by Get, the whole
  /// keyspace by RangeScan row for row (no extra, missing, or
  /// resurrected rows).
  static void ExpectExactly(Db& db,
                            const std::map<uint64_t, std::string>& expected) {
    std::string value;
    for (const auto& [k, v] : expected) {
      ASSERT_TRUE(db.Get(k, &value)) << "missing key " << k;
      ASSERT_EQ(value, v) << "wrong value for key " << k;
    }
    auto rows = db.RangeScan(0, ~0ull, expected.size() + 100);
    ASSERT_EQ(rows.size(), expected.size());
    auto it = expected.begin();
    for (size_t i = 0; i < rows.size(); ++i, ++it) {
      ASSERT_EQ(rows[i].first, it->first) << "row " << i;
      ASSERT_EQ(rows[i].second, it->second) << "row " << i;
    }
  }

  std::string dir_;
};

TEST_F(ParallelCompactionTest, SubcompactionsMatchSerialAcrossEveryBackend) {
  // The equivalence bar, per registered backend (and filterless): the
  // same workload compacted serially and split into subcompactions
  // must yield identical logical contents and identical tombstone
  // accounting — the split only changes who does the merging.
  std::vector<std::shared_ptr<FilterPolicy>> policies;
  for (const std::string& name : FilterRegistry::Instance().Names()) {
    policies.push_back(NewRegistryPolicy(name));
  }
  policies.push_back(nullptr);
  ASSERT_GT(policies.size(), 1u);

  int idx = 0;
  for (auto& policy : policies) {
    SCOPED_TRACE("policy " + std::to_string(idx));
    std::map<uint64_t, std::string> expected;
    Db serial(ManualOptions(policy, dir_ + "/s" + std::to_string(idx),
                            /*split=*/false));
    Db split(ManualOptions(policy, dir_ + "/p" + std::to_string(idx),
                           /*split=*/true));
    ++idx;
    LoadWorkload(serial, &expected);
    std::map<uint64_t, std::string> expected2;
    LoadWorkload(split, &expected2);
    ASSERT_EQ(expected, expected2);

    ASSERT_TRUE(serial.CompactAll());
    ASSERT_TRUE(split.CompactAll());
    EXPECT_EQ(serial.stats().subcompactions_run.load(), 0u);
    EXPECT_GT(split.stats().subcompactions_run.load(), 1u)
        << "forced split never split";

    // Same drops: the full merge has nothing below its output, so
    // every tombstone dies in both — and nobody's subcompaction may
    // drop a value another range still needed.
    EXPECT_EQ(split.stats().tombstones_dropped.load(),
              serial.stats().tombstones_dropped.load());
    EXPECT_GT(split.stats().tombstones_dropped.load(), 0u);
    EXPECT_EQ(split.stats().tombstones_live.load(), 0u);

    ExpectExactly(serial, expected);
    ExpectExactly(split, expected);

    // Row-for-row across the two stores: identical logical bytes.
    auto rows_serial = serial.RangeScan(0, ~0ull, expected.size() + 10);
    auto rows_split = split.RangeScan(0, ~0ull, expected.size() + 10);
    ASSERT_EQ(rows_serial, rows_split);
  }
}

TEST_F(ParallelCompactionTest, MixedBackendTreeSplitsAndRecovers) {
  // A tree whose SSTs carry different filter backends compacts through
  // subcompactions (each output rebuilt through the cycling policy)
  // and the result survives a MANIFEST reopen.
  auto policy = std::make_shared<CyclingPolicy>();
  std::map<uint64_t, std::string> expected;
  DbOptions options = ManualOptions(policy, dir_, /*split=*/true);
  {
    Db db(options);
    LoadWorkload(db, &expected);
    ASSERT_TRUE(db.CompactAll());
    EXPECT_GT(db.stats().subcompactions_run.load(), 1u);
    ExpectExactly(db, expected);
  }
  Db db(options);
  EXPECT_EQ(db.stats().tombstones_live.load(), 0u);
  ExpectExactly(db, expected);
}

TEST_F(ParallelCompactionTest, CompactRangeCompactsOnlyTheRequestedRange) {
  std::map<uint64_t, std::string> expected;
  DbOptions options = ManualOptions(NewBloomPolicy(10.0), dir_,
                                    /*split=*/true);
  Db db(options);
  // Dense keyspace, pushed to L1 so the level is key-partitioned and a
  // partial range maps to a strict subset of files.
  for (uint64_t k = 0; k < 2000; ++k) {
    std::string v = "v" + std::to_string(k);
    ASSERT_TRUE(db.Put(k, v));
    expected[k] = v;
    if (k % 400 == 399) ASSERT_TRUE(db.Flush());
  }
  ASSERT_TRUE(db.Flush());
  ASSERT_TRUE(db.CompactAll());
  const uint64_t jobs_before = db.stats().compactions.load();

  // Delete a band in the middle; the tombstones land in one L0 file.
  std::vector<uint64_t> doomed;
  for (uint64_t k = 500; k < 800; ++k) doomed.push_back(k);
  ASSERT_TRUE(db.DeleteBatch(doomed));
  for (uint64_t k : doomed) expected.erase(k);
  ASSERT_TRUE(db.Flush());
  EXPECT_EQ(db.stats().tombstones_live.load(), doomed.size());

  // Compacting a sub-band expands to whole files (the tombstone L0
  // file spans [500, 799]) and digs to the deepest input level, so
  // nothing remains below the output and the tombstones all drop.
  ASSERT_TRUE(db.CompactRange(600, 700));
  EXPECT_EQ(db.stats().compactions.load(), jobs_before + 1);
  EXPECT_EQ(db.stats().tombstones_live.load(), 0u);
  ExpectExactly(db, expected);
  std::string value;
  for (uint64_t k : doomed) {
    ASSERT_FALSE(db.Get(k, &value)) << "resurrected " << k;
  }

  // Degenerate calls are cheap no-ops.
  ASSERT_TRUE(db.CompactRange(7, 3));  // inverted
  EXPECT_EQ(db.stats().compactions.load(), jobs_before + 1);
}

TEST_F(ParallelCompactionTest, CompactRangeWorksUnderBackgroundCompaction) {
  // The manual slot: CompactRange pauses the scheduler workers, waits
  // out their in-flight jobs, runs on the caller thread, and hands the
  // tree back — under live write pressure the whole time.
  DbOptions options = ManualOptions(NewBloomPolicy(10.0), dir_,
                                    /*split=*/true);
  options.compaction = true;
  options.compaction_threads = 2;
  options.l0_compaction_trigger = 2;
  Db db(options);
  std::map<uint64_t, std::string> expected;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t k = 0; k < 1500; ++k) {
      std::string v = "r" + std::to_string(round) + "." + std::to_string(k);
      ASSERT_TRUE(db.Put(k * 3, v));
      expected[k * 3] = v;
    }
    ASSERT_TRUE(db.CompactRange(0, 2000));  // racing the background jobs
  }
  ASSERT_TRUE(db.WaitForCompaction());
  EXPECT_EQ(db.stats().compactions_inflight.load(), 0u);
  ExpectExactly(db, expected);
}

TEST_F(ParallelCompactionTest, SchedulerDrainsUnderWritePressure) {
  // Several workers, forced subcompactions, tiny levels: heavy churn
  // with overwrites and deletes, then one WaitForCompaction must drain
  // queued work, in-flight jobs, and subcompaction workers.
  DbOptions options = ManualOptions(NewBloomPolicy(10.0), dir_,
                                    /*split=*/true);
  options.compaction = true;
  options.compaction_threads = 4;
  options.max_subcompactions = 2;
  options.l0_compaction_trigger = 2;
  Db db(options);
  std::map<uint64_t, std::string> expected;
  for (int round = 0; round < 5; ++round) {
    for (uint64_t k = 0; k < 2000; ++k) {
      std::string v = "r" + std::to_string(round) + "." + std::to_string(k);
      ASSERT_TRUE(db.Put(k, v));
      expected[k] = v;
    }
    std::vector<uint64_t> doomed;
    for (uint64_t k = static_cast<uint64_t>(round); k < 2000; k += 5) {
      doomed.push_back(k);
    }
    ASSERT_TRUE(db.DeleteBatch(doomed));
    for (uint64_t k : doomed) expected.erase(k);
    ASSERT_TRUE(db.Flush());
  }
  ASSERT_TRUE(db.WaitForCompaction());
  EXPECT_GT(db.stats().compactions.load(), 0u);
  EXPECT_EQ(db.stats().compactions_inflight.load(), 0u);
  // Per-level observability: the bytes the jobs moved are attributed
  // to their output levels.
  uint64_t level_bytes = 0;
  for (size_t l = 0; l < LsmStats::kStatsLevels; ++l) {
    level_bytes += db.stats().compaction_bytes_written_level[l].load();
  }
  EXPECT_EQ(level_bytes, db.stats().compaction_bytes_written.load());
  ExpectExactly(db, expected);
  std::string value;
  for (uint64_t k = 0; k < 2000; ++k) {
    if (expected.count(k)) continue;
    ASSERT_FALSE(db.Get(k, &value)) << "resurrected " << k;
  }
}

TEST_F(ParallelCompactionTest, DestructorJoinsInFlightWork) {
  // Closing the store with jobs queued and possibly running must never
  // leak a worker (ASan/TSan in CI make this a hard failure).
  DbOptions options = ManualOptions(NewBloomPolicy(10.0), dir_,
                                    /*split=*/true);
  options.compaction = true;
  options.compaction_threads = 4;
  options.l0_compaction_trigger = 2;
  std::map<uint64_t, std::string> expected;
  {
    Db db(options);
    for (uint64_t k = 0; k < 3000; ++k) {
      std::string v = "v" + std::to_string(k);
      ASSERT_TRUE(db.Put(k, v));
      expected[k] = v;
      if (k % 300 == 299) ASSERT_TRUE(db.Flush());
    }
    // No WaitForCompaction: the destructor races the scheduler.
  }
  Db db(options);
  ExpectExactly(db, expected);
}

TEST_F(ParallelCompactionTest, ShardedDbCompactRangeFansOut) {
  ShardedDbOptions options;
  options.dir = dir_;
  options.num_shards = 2;
  options.filter_policy = NewBloomPolicy(10.0);
  options.memtable_bytes = 8 << 10;
  options.compaction = true;
  options.compaction_threads = 2;
  options.max_subcompactions = 2;
  options.subcompaction_min_bytes = 0;
  options.l0_compaction_trigger = 2;
  options.level_base_bytes = 16 << 10;
  options.level_size_multiplier = 2;
  ShardedDb db(options);
  std::map<uint64_t, std::string> expected;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t k = 0; k < 2000; ++k) {
      std::string v = "s" + std::to_string(round) + "." + std::to_string(k);
      ASSERT_TRUE(db.Put(k * 7, v));
      expected[k * 7] = v;
    }
    ASSERT_TRUE(db.Flush());
  }
  std::vector<uint64_t> doomed;
  for (uint64_t k = 0; k < 2000; k += 3) doomed.push_back(k * 7);
  ASSERT_TRUE(db.DeleteBatch(doomed));
  for (uint64_t k : doomed) expected.erase(k);
  ASSERT_TRUE(db.Flush());

  // The range is hash-scattered, so every shard compacts; a full-range
  // call digs everything to the bottom and the tombstones all drop.
  ASSERT_TRUE(db.CompactRange(0, ~0ull));
  LsmStats total = db.TotalStats();
  EXPECT_EQ(total.tombstones_live.load(), 0u);
  EXPECT_EQ(total.compactions_inflight.load(), 0u);
  std::string value;
  for (const auto& [k, v] : expected) {
    ASSERT_TRUE(db.Get(k, &value)) << k;
    ASSERT_EQ(value, v);
  }
  for (uint64_t k : doomed) {
    ASSERT_FALSE(db.Get(k, &value)) << "resurrected " << k;
  }
  ASSERT_TRUE(db.WaitForCompaction());
}

}  // namespace
}  // namespace bloomrf

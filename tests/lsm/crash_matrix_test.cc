// Kill-point recovery matrix: simulate a crash at EVERY durable
// filesystem operation the engine performs during a write-heavy
// workload (flushes, compactions, MANIFEST appends and rewrites,
// CURRENT swaps, file deletions — with and without a torn final
// write), reopen the store, and require it to equal the
// single-threaded reference map row for row.
//
// Why exact equality is the right bar: the crash model is kill -9 —
// the process dies but the page cache survives — so every acknowledged
// Put is in the WAL (WAL sites are crash-exempt, see lsm/env.h) and
// recovery must reconstruct ALL of it from the manifest prefix plus
// surviving logs. Anything less is lost data; anything more is
// resurrected data.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "lsm/env.h"

namespace bloomrf {
namespace {

/// Every successive filter build uses the next backend in the cycle, so
/// a crashed-and-recovered tree mixes filter block formats — recovery
/// must not care which backend each surviving SST carries.
class CyclingPolicy : public FilterPolicy {
 public:
  std::string Name() const override { return "cycling"; }

  std::string CreateFilter(
      const std::vector<uint64_t>& sorted_keys) const override {
    static const std::vector<std::string> kCycle = {
        "bloomrf", "blocked_bloom", "rosetta", "prefix_bloom"};
    size_t turn = turn_.fetch_add(1, std::memory_order_relaxed);
    const FilterRegistry::Entry* entry =
        FilterRegistry::Instance().Find(kCycle[turn % kCycle.size()]);
    FilterBuildParams params;
    params.bits_per_key = 12.0;
    auto filter = entry->build_from_sorted_keys(sorted_keys, params);
    if (filter == nullptr) return "";
    return FilterRegistry::Frame(entry->name, filter->Serialize());
  }

  std::unique_ptr<PointRangeFilter> LoadFilter(
      std::string_view data) const override {
    return FilterRegistry::Instance().Deserialize(data);
  }

 private:
  mutable std::atomic<size_t> turn_{0};
};

using PolicyFactory = std::shared_ptr<FilterPolicy> (*)();

std::shared_ptr<FilterPolicy> BloomFactory() { return NewBloomPolicy(10.0); }
std::shared_ptr<FilterPolicy> MixedFactory() {
  return std::make_shared<CyclingPolicy>();
}

class CrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_crash_matrix_" + std::string(::testing::UnitTest::
        GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static DbOptions WorkloadOptions(const std::string& dir, Env* env,
                                   PolicyFactory policy = BloomFactory) {
    DbOptions options;
    options.dir = dir;
    options.filter_policy = policy();
    options.memtable_bytes = 1 << 20;  // sealed only by explicit Flush
    options.background_flush = false;  // inline: deterministic op order
    options.env = env;
    options.compaction = true;
    options.l0_compaction_trigger = 2;
    options.level_base_bytes = 4 << 10;
    options.level_size_multiplier = 2;
    options.max_levels = 4;
    return options;
  }

  /// The fixed workload: four rounds of overlapping puts, each sealed
  /// into an SST, with compaction churning the tree between rounds.
  /// Failure returns are deliberately ignored — after the kill point
  /// everything fails, but every Put still reached the WAL+memtable.
  static void RunWorkload(const std::string& dir, Env* env,
                          std::map<uint64_t, std::string>* expected,
                          PolicyFactory policy = BloomFactory) {
    Db db(WorkloadOptions(dir, env, policy));
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 40; ++i) {
        uint64_t key = static_cast<uint64_t>((i * 13 + round * 5) % 97);
        std::string value =
            "r" + std::to_string(round) + "i" + std::to_string(i);
        db.Put(key, value);
        (*expected)[key] = value;
      }
      db.Flush();
      db.WaitForCompaction();
    }
  }

  /// Reopens `dir` with a healthy filesystem and requires the store to
  /// hold exactly `expected`: every key by Get, and the full keyspace
  /// by RangeScan with no missing, extra, or stale rows.
  static void VerifyExactly(const std::string& dir,
                            const std::map<uint64_t, std::string>& expected,
                            PolicyFactory policy = BloomFactory) {
    DbOptions options;
    options.dir = dir;
    options.filter_policy = policy();
    Db db(options);
    std::string value;
    for (const auto& [k, v] : expected) {
      ASSERT_TRUE(db.Get(k, &value)) << "lost key " << k;
      ASSERT_EQ(value, v) << "stale value for key " << k;
    }
    auto rows = db.RangeScan(0, ~0ull, expected.size() + 16);
    ASSERT_EQ(rows.size(), expected.size()) << "row count diverged";
    auto it = expected.begin();
    for (size_t i = 0; i < rows.size(); ++i, ++it) {
      ASSERT_EQ(rows[i].first, it->first) << "row " << i;
      ASSERT_EQ(rows[i].second, it->second) << "row " << i;
    }
  }

  std::string dir_;
};

TEST_F(CrashMatrixTest, EveryKillPointRecoversExactly) {
  // Counting run: the same workload against an un-armed injection env
  // measures how many durable ops the engine performs end to end.
  std::map<uint64_t, std::string> reference;
  FaultInjectionEnv counter;
  const std::string count_dir = dir_ + "/count";
  RunWorkload(count_dir, &counter, &reference);
  const uint64_t total_ops = counter.op_count();
  ASSERT_GT(total_ops, 20u) << "workload too small to exercise crashes";
  ASSERT_GT(reference.size(), 50u);
  VerifyExactly(count_dir, reference);  // baseline: no crash, no loss
  std::filesystem::remove_all(count_dir);

  // The matrix: crash at every op index; torn final writes on every
  // other index (a torn variant only differs when the dying op is an
  // append, and halving the runs keeps the matrix fast under ASan).
  uint64_t fired = 0;
  for (uint64_t op = 0; op < total_ops; ++op) {
    for (bool torn : {false, true}) {
      if (torn && op % 2 != 0) continue;
      SCOPED_TRACE("kill at op " + std::to_string(op) +
                   (torn ? " (torn write)" : " (clean cut)"));
      const std::string run_dir = dir_ + "/op" + std::to_string(op) +
                                  (torn ? "t" : "c");
      std::map<uint64_t, std::string> expected;
      FaultInjectionEnv fenv;
      fenv.CrashAtOp(op, torn);
      RunWorkload(run_dir, &fenv, &expected);
      // The workload is deterministic up to background-compaction
      // timing, so the crash fires in (nearly) every run; when a run
      // finishes under the kill point it still must verify.
      if (fenv.crashed()) ++fired;
      ASSERT_EQ(expected.size(), reference.size());
      VerifyExactly(run_dir, expected);
      std::filesystem::remove_all(run_dir);
    }
  }
  EXPECT_GT(fired, total_ops / 2) << "matrix barely exercised any crash";
}

TEST_F(CrashMatrixTest, MixedBackendTreeRecoversAtEveryThirdKillPoint) {
  // Same recovery bar, but the tree under the crash carries a
  // different filter backend per SST (the adaptive policy's steady
  // state). A sparser sweep — every third op, torn every sixth —
  // keeps the variant cheap; the dense sweep above already covers the
  // op-ordering space with a single backend.
  std::map<uint64_t, std::string> reference;
  FaultInjectionEnv counter;
  const std::string count_dir = dir_ + "/count";
  RunWorkload(count_dir, &counter, &reference, MixedFactory);
  const uint64_t total_ops = counter.op_count();
  ASSERT_GT(total_ops, 20u);
  VerifyExactly(count_dir, reference, MixedFactory);
  std::filesystem::remove_all(count_dir);

  uint64_t fired = 0;
  for (uint64_t op = 0; op < total_ops; op += 3) {
    for (bool torn : {false, true}) {
      if (torn && op % 6 != 0) continue;
      SCOPED_TRACE("kill at op " + std::to_string(op) +
                   (torn ? " (torn write)" : " (clean cut)"));
      const std::string run_dir = dir_ + "/op" + std::to_string(op) +
                                  (torn ? "t" : "c");
      std::map<uint64_t, std::string> expected;
      FaultInjectionEnv fenv;
      fenv.CrashAtOp(op, torn);
      RunWorkload(run_dir, &fenv, &expected, MixedFactory);
      if (fenv.crashed()) ++fired;
      ASSERT_EQ(expected.size(), reference.size());
      // Verify under the single-backend policy on purpose: filter
      // blocks are self-describing, so recovery of a mixed tree must
      // not depend on reopening with the policy that built it.
      VerifyExactly(run_dir, expected, BloomFactory);
      std::filesystem::remove_all(run_dir);
    }
  }
  EXPECT_GT(fired, total_ops / 6) << "matrix barely exercised any crash";
}

TEST_F(CrashMatrixTest, CrashedStoreSurvivesASecondCrashDuringRecovery) {
  // Double fault: crash mid-workload, then crash again during the
  // recovery that follows — the third open must still see everything.
  std::map<uint64_t, std::string> expected;
  {
    FaultInjectionEnv fenv;
    fenv.CrashAtOp(25, /*torn=*/true);
    RunWorkload(dir_ + "/db", &fenv, &expected);
    EXPECT_TRUE(fenv.crashed());
  }
  {
    // Recovery itself writes (snapshot manifest, CURRENT swap, tmp
    // cleanup): kill it a few ops in.
    FaultInjectionEnv fenv;
    fenv.CrashAtOp(3, /*torn=*/false);
    DbOptions options = WorkloadOptions(dir_ + "/db", &fenv);
    Db db(options);
  }
  VerifyExactly(dir_ + "/db", expected);
}

}  // namespace
}  // namespace bloomrf

// Kill-point recovery matrix: simulate a crash at EVERY durable
// filesystem operation the engine performs during a write-heavy
// workload (flushes, compactions, MANIFEST appends and rewrites,
// CURRENT swaps, file deletions — with and without a torn final
// write), reopen the store, and require it to equal the
// single-threaded reference map row for row.
//
// The workload interleaves Put, Delete, and re-Put of the same keys
// (singly, batched, and mixed in one WriteBatch), so every kill point
// also proves the anti-resurrection invariant: a deleted key must not
// come back via Get, MultiGet, or a full scan no matter where the
// crash landed — not from a replayed WAL, not from an SST whose
// shadowing tombstone was mid-compaction, not from a half-installed
// MANIFEST edit. Each kill point additionally survives a SECOND crash
// during the recovery itself before the healthy verify.
//
// Why exact equality is the right bar: the crash model is kill -9 —
// the process dies but the page cache survives — so every acknowledged
// write is in the WAL (WAL sites are crash-exempt, see lsm/env.h) and
// recovery must reconstruct ALL of it from the manifest prefix plus
// surviving logs. Anything less is lost data; anything more is
// resurrected data.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "lsm/env.h"

namespace bloomrf {
namespace {

/// Every key the workload ever touches lives in [0, kKeySpace): the
/// verifier can sweep the whole space and demand Get/MultiGet misses
/// for every key the reference map does not hold — which is exactly
/// the set of deleted (or never-written) keys.
constexpr uint64_t kKeySpace = 97;

/// Every successive filter build uses the next backend in the cycle, so
/// a crashed-and-recovered tree mixes filter block formats — recovery
/// must not care which backend each surviving SST carries.
class CyclingPolicy : public FilterPolicy {
 public:
  std::string Name() const override { return "cycling"; }

  std::string CreateFilter(
      const std::vector<uint64_t>& sorted_keys) const override {
    static const std::vector<std::string> kCycle = {
        "bloomrf", "blocked_bloom", "rosetta", "prefix_bloom"};
    size_t turn = turn_.fetch_add(1, std::memory_order_relaxed);
    const FilterRegistry::Entry* entry =
        FilterRegistry::Instance().Find(kCycle[turn % kCycle.size()]);
    FilterBuildParams params;
    params.bits_per_key = 12.0;
    auto filter = entry->build_from_sorted_keys(sorted_keys, params);
    if (filter == nullptr) return "";
    return FilterRegistry::Frame(entry->name, filter->Serialize());
  }

  std::unique_ptr<PointRangeFilter> LoadFilter(
      std::string_view data) const override {
    return FilterRegistry::Instance().Deserialize(data);
  }

 private:
  mutable std::atomic<size_t> turn_{0};
};

using PolicyFactory = std::shared_ptr<FilterPolicy> (*)();

std::shared_ptr<FilterPolicy> BloomFactory() { return NewBloomPolicy(10.0); }
std::shared_ptr<FilterPolicy> MixedFactory() {
  return std::make_shared<CyclingPolicy>();
}

class CrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_crash_matrix_" + std::string(::testing::UnitTest::
        GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static DbOptions WorkloadOptions(const std::string& dir, Env* env,
                                   PolicyFactory policy = BloomFactory,
                                   bool parallel = false) {
    DbOptions options;
    options.dir = dir;
    options.filter_policy = policy();
    options.memtable_bytes = 1 << 20;  // sealed only by explicit Flush
    options.background_flush = false;  // inline: deterministic op order
    options.env = env;
    options.compaction = true;
    options.l0_compaction_trigger = 2;
    options.level_base_bytes = 4 << 10;
    options.level_size_multiplier = 2;
    options.max_levels = 4;
    if (parallel) {
      // Two scheduler workers on disjoint level pairs, every job split
      // into range-partitioned subcompactions: the crash now lands
      // while TWO manifest-edit producers race for the commit lock.
      options.compaction_threads = 2;
      options.max_subcompactions = 2;
      options.subcompaction_min_bytes = 0;
    }
    return options;
  }

  /// The fixed workload: four rounds over one overlapping keyspace,
  /// each round putting, deleting (singly, as a DeleteBatch, and mixed
  /// into a WriteBatch), and re-putting some of what it just deleted,
  /// then sealing into an SST with compaction churning the tree
  /// between rounds. Because rounds overlap, a key deleted in round r
  /// usually has live versions in older SSTs — the exact data a buggy
  /// recovery or compaction would resurrect. Failure returns are
  /// deliberately ignored — after the kill point everything fails, but
  /// every acknowledged write still reached the WAL+memtable.
  static void RunWorkload(const std::string& dir, Env* env,
                          std::map<uint64_t, std::string>* expected,
                          PolicyFactory policy = BloomFactory,
                          bool parallel = false) {
    Db db(WorkloadOptions(dir, env, policy, parallel));
    auto put = [&](uint64_t key, std::string value) {
      db.Put(key, value);
      (*expected)[key] = std::move(value);
    };
    auto del = [&](uint64_t key) {
      db.Delete(key);
      expected->erase(key);
    };
    for (uint64_t round = 0; round < 4; ++round) {
      for (uint64_t i = 0; i < 40; ++i) {
        uint64_t key = (i * 13 + round * 5) % kKeySpace;
        put(key, "r" + std::to_string(round) + "i" + std::to_string(i));
      }
      // Single deletes over keys the earlier rounds likely still hold.
      for (uint64_t i = 0; i < 10; ++i) del((i * 11 + round * 7) % kKeySpace);
      // A batched delete: one WAL record, all-or-nothing in recovery.
      std::vector<uint64_t> batch;
      for (uint64_t i = 0; i < 6; ++i) {
        batch.push_back((i * 17 + round * 13) % kKeySpace);
      }
      db.DeleteBatch(batch);
      for (uint64_t key : batch) expected->erase(key);
      // A mixed batch: puts and deletes framed as ONE record.
      std::vector<std::string> held;  // keeps WriteOp views alive
      held.reserve(6);
      std::vector<WriteOp> ops;
      for (uint64_t i = 0; i < 6; ++i) {
        if (i % 2 == 0) {
          uint64_t key = (i * 19 + round) % kKeySpace;
          held.push_back("wb" + std::to_string(round) + "i" +
                         std::to_string(i));
          ops.push_back({key, held.back(), false});
        } else {
          ops.push_back({(i * 23 + round * 3) % kKeySpace,
                         std::string_view(), true});
        }
      }
      db.WriteBatch(ops);
      for (const WriteOp& op : ops) {
        if (op.is_delete) {
          expected->erase(op.key);
        } else {
          (*expected)[op.key] = std::string(op.value);
        }
      }
      // Re-put half of the singly-deleted keys: the tombstone is now
      // shadowed by a NEWER live value — recovery must keep the re-put
      // and compaction must not let the stale tombstone eat it.
      for (uint64_t i = 0; i < 5; ++i) {
        uint64_t key = (i * 11 + round * 7) % kKeySpace;
        put(key, "rp" + std::to_string(round) + "i" + std::to_string(i));
      }
      db.Flush();
      db.WaitForCompaction();
    }
  }

  /// Reopens `dir` with a healthy filesystem and requires the store to
  /// hold exactly `expected` over the whole keyspace: every key by Get
  /// (deleted keys MUST miss), the full space in one MultiGet (deleted
  /// keys MUST be nullopt), and the full keyspace by RangeScan with no
  /// missing, extra, or resurrected rows.
  static void VerifyExactly(const std::string& dir,
                            const std::map<uint64_t, std::string>& expected,
                            PolicyFactory policy = BloomFactory) {
    DbOptions options;
    options.dir = dir;
    options.filter_policy = policy();
    Db db(options);
    std::string value;
    std::vector<uint64_t> all_keys;
    for (uint64_t k = 0; k < kKeySpace; ++k) {
      all_keys.push_back(k);
      auto it = expected.find(k);
      if (it != expected.end()) {
        ASSERT_TRUE(db.Get(k, &value)) << "lost key " << k;
        ASSERT_EQ(value, it->second) << "stale value for key " << k;
      } else {
        ASSERT_FALSE(db.Get(k, &value)) << "key " << k << " resurrected";
      }
    }
    auto answers = db.MultiGet(all_keys);
    ASSERT_EQ(answers.size(), kKeySpace);
    for (uint64_t k = 0; k < kKeySpace; ++k) {
      auto it = expected.find(k);
      if (it != expected.end()) {
        ASSERT_TRUE(answers[k].has_value()) << "MultiGet lost key " << k;
        ASSERT_EQ(*answers[k], it->second) << "MultiGet stale key " << k;
      } else {
        ASSERT_FALSE(answers[k].has_value())
            << "key " << k << " resurrected via MultiGet";
      }
    }
    auto rows = db.RangeScan(0, ~0ull, expected.size() + 16);
    ASSERT_EQ(rows.size(), expected.size()) << "row count diverged";
    auto it = expected.begin();
    for (size_t i = 0; i < rows.size(); ++i, ++it) {
      ASSERT_EQ(rows[i].first, it->first) << "row " << i;
      ASSERT_EQ(rows[i].second, it->second) << "row " << i;
    }
  }

  std::string dir_;
};

TEST_F(CrashMatrixTest, EveryKillPointRecoversExactlyWithNoResurrection) {
  // Counting run: the same workload against an un-armed injection env
  // measures how many durable ops the engine performs end to end.
  std::map<uint64_t, std::string> reference;
  FaultInjectionEnv counter;
  const std::string count_dir = dir_ + "/count";
  RunWorkload(count_dir, &counter, &reference);
  const uint64_t total_ops = counter.op_count();
  ASSERT_GT(total_ops, 20u) << "workload too small to exercise crashes";
  ASSERT_GT(reference.size(), 30u);
  ASSERT_LT(reference.size(), kKeySpace) << "workload deleted nothing";
  VerifyExactly(count_dir, reference);  // baseline: no crash, no loss
  std::filesystem::remove_all(count_dir);

  // The matrix: crash at every op index; torn final writes on every
  // other index (a torn variant only differs when the dying op is an
  // append, and halving the runs keeps the matrix fast under ASan).
  // Every run is then crashed a SECOND time during its own recovery
  // (at a kill point that varies with the op index, so different
  // recovery stages — manifest snapshot, CURRENT swap, log cleanup —
  // get hit across the sweep) before the final healthy verify.
  uint64_t fired = 0;
  for (uint64_t op = 0; op < total_ops; ++op) {
    for (bool torn : {false, true}) {
      if (torn && op % 2 != 0) continue;
      SCOPED_TRACE("kill at op " + std::to_string(op) +
                   (torn ? " (torn write)" : " (clean cut)"));
      const std::string run_dir = dir_ + "/op" + std::to_string(op) +
                                  (torn ? "t" : "c");
      std::map<uint64_t, std::string> expected;
      FaultInjectionEnv fenv;
      fenv.CrashAtOp(op, torn);
      RunWorkload(run_dir, &fenv, &expected);
      // The workload is deterministic up to background-compaction
      // timing, so the crash fires in (nearly) every run; when a run
      // finishes under the kill point it still must verify.
      if (fenv.crashed()) ++fired;
      ASSERT_EQ(expected.size(), reference.size());
      {
        // Double fault: recovery itself writes (snapshot manifest,
        // CURRENT swap, tmp cleanup) — kill it partway through.
        FaultInjectionEnv fenv2;
        fenv2.CrashAtOp(op % 5 + 1, /*torn=*/op % 4 == 2);
        Db db(WorkloadOptions(run_dir, &fenv2));
      }
      VerifyExactly(run_dir, expected);
      std::filesystem::remove_all(run_dir);
    }
  }
  EXPECT_GT(fired, total_ops / 2) << "matrix barely exercised any crash";
}

TEST_F(CrashMatrixTest, MixedBackendTreeRecoversAtEveryThirdKillPoint) {
  // Same recovery bar (deletes included), but the tree under the crash
  // carries a different filter backend per SST (the adaptive policy's
  // steady state). A sparser sweep — every third op, torn every sixth
  // — keeps the variant cheap; the dense sweep above already covers
  // the op-ordering space with a single backend.
  std::map<uint64_t, std::string> reference;
  FaultInjectionEnv counter;
  const std::string count_dir = dir_ + "/count";
  RunWorkload(count_dir, &counter, &reference, MixedFactory);
  const uint64_t total_ops = counter.op_count();
  ASSERT_GT(total_ops, 20u);
  VerifyExactly(count_dir, reference, MixedFactory);
  std::filesystem::remove_all(count_dir);

  uint64_t fired = 0;
  for (uint64_t op = 0; op < total_ops; op += 3) {
    for (bool torn : {false, true}) {
      if (torn && op % 6 != 0) continue;
      SCOPED_TRACE("kill at op " + std::to_string(op) +
                   (torn ? " (torn write)" : " (clean cut)"));
      const std::string run_dir = dir_ + "/op" + std::to_string(op) +
                                  (torn ? "t" : "c");
      std::map<uint64_t, std::string> expected;
      FaultInjectionEnv fenv;
      fenv.CrashAtOp(op, torn);
      RunWorkload(run_dir, &fenv, &expected, MixedFactory);
      if (fenv.crashed()) ++fired;
      ASSERT_EQ(expected.size(), reference.size());
      // Verify under the single-backend policy on purpose: filter
      // blocks are self-describing, so recovery of a mixed tree must
      // not depend on reopening with the policy that built it.
      VerifyExactly(run_dir, expected, BloomFactory);
      std::filesystem::remove_all(run_dir);
    }
  }
  EXPECT_GT(fired, total_ops / 6) << "matrix barely exercised any crash";
}

TEST_F(CrashMatrixTest, ConcurrentJobsRecoverAtEveryOtherKillPoint) {
  // The parallel-scheduler matrix: the workload runs with two
  // compaction workers and forced subcompactions, so the crash can
  // land between one job's committed manifest edit and a concurrent
  // job's in-flight one, or mid-way through a job whose outputs came
  // from several subcompaction workers. The recovery bar is unchanged:
  // the manifest prefix plus surviving WAL must equal the reference
  // map exactly — a job whose edit never committed leaves only
  // orphaned SSTs, never visible state. Every other op (torn every
  // fourth) keeps the sweep affordable; the dense single-worker matrix
  // above covers the op-ordering space.
  std::map<uint64_t, std::string> reference;
  FaultInjectionEnv counter;
  const std::string count_dir = dir_ + "/count";
  RunWorkload(count_dir, &counter, &reference, BloomFactory,
              /*parallel=*/true);
  const uint64_t total_ops = counter.op_count();
  ASSERT_GT(total_ops, 20u);
  VerifyExactly(count_dir, reference);
  std::filesystem::remove_all(count_dir);

  uint64_t fired = 0;
  for (uint64_t op = 0; op < total_ops; op += 2) {
    for (bool torn : {false, true}) {
      if (torn && op % 4 != 0) continue;
      SCOPED_TRACE("kill at op " + std::to_string(op) +
                   (torn ? " (torn write)" : " (clean cut)"));
      const std::string run_dir = dir_ + "/op" + std::to_string(op) +
                                  (torn ? "t" : "c");
      std::map<uint64_t, std::string> expected;
      FaultInjectionEnv fenv;
      fenv.CrashAtOp(op, torn);
      RunWorkload(run_dir, &fenv, &expected, BloomFactory,
                  /*parallel=*/true);
      if (fenv.crashed()) ++fired;
      ASSERT_EQ(expected.size(), reference.size());
      {
        // Double fault: kill the recovery too, like the dense matrix.
        FaultInjectionEnv fenv2;
        fenv2.CrashAtOp(op % 5 + 1, /*torn=*/op % 4 == 2);
        Db db(WorkloadOptions(run_dir, &fenv2, BloomFactory,
                              /*parallel=*/true));
      }
      VerifyExactly(run_dir, expected);
      std::filesystem::remove_all(run_dir);
    }
  }
  EXPECT_GT(fired, total_ops / 4) << "matrix barely exercised any crash";
}

TEST_F(CrashMatrixTest, CrashedStoreSurvivesASecondCrashDuringRecovery) {
  // Double fault at a fixed, deep kill point (the dense matrix above
  // varies the recovery kill per op; this pins one reproducible case):
  // crash mid-workload with a torn write, crash again during the
  // recovery that follows — the third open must still see everything,
  // with every tombstone still in force.
  std::map<uint64_t, std::string> expected;
  {
    FaultInjectionEnv fenv;
    fenv.CrashAtOp(25, /*torn=*/true);
    RunWorkload(dir_ + "/db", &fenv, &expected);
    EXPECT_TRUE(fenv.crashed());
  }
  {
    // Recovery itself writes (snapshot manifest, CURRENT swap, tmp
    // cleanup): kill it a few ops in.
    FaultInjectionEnv fenv;
    fenv.CrashAtOp(3, /*torn=*/false);
    DbOptions options = WorkloadOptions(dir_ + "/db", &fenv);
    Db db(options);
  }
  VerifyExactly(dir_ + "/db", expected);
}

}  // namespace
}  // namespace bloomrf

// MultiGet is the batched equivalent of N Get calls: same answers for
// every key (memtable hits, SST hits across many tables, misses,
// duplicates, empty batches), with the filter consulted once per batch
// and repeated block reads served by the shared LRU cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "lsm/db.h"
#include "tests/test_util.h"
#include "workload/key_generator.h"

namespace bloomrf {
namespace {

class MultiGetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/bloomrf_multiget_test_" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Db MakeDb(std::shared_ptr<FilterPolicy> policy,
            uint64_t memtable_bytes = 64 << 10,
            size_t block_cache_bytes = 4 << 20) {
    DbOptions options;
    options.dir = dir_;
    options.filter_policy = std::move(policy);
    options.memtable_bytes = memtable_bytes;
    options.block_cache_bytes = block_cache_bytes;
    return Db(options);
  }

  /// Asserts MultiGet(keys) gives exactly the same answers as N Get
  /// calls.
  static void ExpectMatchesGet(Db& db, const std::vector<uint64_t>& keys) {
    auto batched = db.MultiGet(keys);
    ASSERT_EQ(batched.size(), keys.size());
    std::string value;
    for (size_t i = 0; i < keys.size(); ++i) {
      bool found = db.Get(keys[i], &value);
      ASSERT_EQ(batched[i].has_value(), found) << "key " << keys[i];
      if (found) EXPECT_EQ(*batched[i], value) << "key " << keys[i];
    }
  }

  std::string dir_;
};

TEST_F(MultiGetTest, MatchesGetAcrossMemtableAndSsts) {
  Db db = MakeDb(NewBloomRFPolicy(18.0, 1e6));
  Dataset data = MakeDataset(20000, Distribution::kUniform, 81);
  // Most keys spread over several SSTs, the tail left in the memtable.
  for (size_t i = 0; i < data.keys.size(); ++i) {
    if (i == data.keys.size() / 10 * 9) db.Flush();
    db.Put(data.keys[i], MakeValue(data.keys[i], 24));
  }
  ASSERT_GT(db.num_tables(), 2u);

  // Present keys, absent keys, near misses, and in-batch duplicates.
  Rng rng(82);
  std::vector<uint64_t> probes;
  for (size_t i = 0; i < 4000; ++i) {
    switch (i % 4) {
      case 0: probes.push_back(data.keys[rng.Uniform(data.keys.size())]); break;
      case 1: probes.push_back(rng.Next()); break;
      case 2: probes.push_back(data.keys[rng.Uniform(data.keys.size())] + 1); break;
      default: probes.push_back(probes[rng.Uniform(probes.size())]); break;
    }
  }
  ExpectMatchesGet(db, probes);
}

TEST_F(MultiGetTest, EmptyAndSingletonBatches) {
  Db db = MakeDb(NewBloomPolicy(12.0));
  db.Put(7, "seven");
  db.Flush();
  EXPECT_TRUE(db.MultiGet({}).empty());
  std::vector<uint64_t> one{7};
  auto result = db.MultiGet(one);
  ASSERT_EQ(result.size(), 1u);
  ASSERT_TRUE(result[0].has_value());
  EXPECT_EQ(*result[0], "seven");
}

TEST_F(MultiGetTest, NewestValueWinsAcrossTables) {
  Db db = MakeDb(NewBloomPolicy(12.0));
  db.Put(1, "v1");
  db.Flush();
  db.Put(1, "v2");
  db.Flush();
  db.Put(2, "memtable");
  std::vector<uint64_t> probes{1, 2, 3};
  auto result = db.MultiGet(probes);
  ASSERT_TRUE(result[0].has_value());
  EXPECT_EQ(*result[0], "v2");
  ASSERT_TRUE(result[1].has_value());
  EXPECT_EQ(*result[1], "memtable");
  EXPECT_FALSE(result[2].has_value());
}

TEST_F(MultiGetTest, RepeatedBatchesServeFromBlockCache) {
  Db db = MakeDb(NewBloomRFPolicy(18.0, 1e6), /*memtable_bytes=*/32 << 10,
                 /*block_cache_bytes=*/32 << 20);
  Dataset data = MakeDataset(5000, Distribution::kUniform, 83);
  for (uint64_t k : data.keys) db.Put(k, MakeValue(k, 16));
  db.Flush();

  std::vector<uint64_t> probes(data.keys.begin(), data.keys.begin() + 1000);
  (void)db.MultiGet(probes);  // warm the cache
  db.ResetStats();
  auto result = db.MultiGet(probes);
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_TRUE(result[i].has_value()) << i;
  }
  const LsmStats& stats = db.stats();
  EXPECT_GT(stats.block_cache_hits, 0u);
  EXPECT_EQ(stats.block_cache_misses, 0u);
  EXPECT_EQ(stats.blocks_read, 0u);  // no physical I/O on the warm pass
}

TEST_F(MultiGetTest, WorksWithoutBlockCache) {
  Db db = MakeDb(NewBloomPolicy(12.0), /*memtable_bytes=*/64 << 10,
                 /*block_cache_bytes=*/0);
  ASSERT_EQ(db.block_cache(), nullptr);
  Dataset data = MakeDataset(3000, Distribution::kUniform, 84);
  for (uint64_t k : data.keys) db.Put(k, "v");
  db.Flush();
  std::vector<uint64_t> probes(data.keys.begin(), data.keys.begin() + 500);
  probes.push_back(0xdeadbeef);  // likely absent
  ExpectMatchesGet(db, probes);
  EXPECT_EQ(db.stats().block_cache_hits, 0u);
}

TEST_F(MultiGetTest, WorksWithoutFilterPolicy) {
  Db db = MakeDb(nullptr);
  for (uint64_t k = 0; k < 2000; ++k) db.Put(k * 3, "x");
  db.Flush();
  std::vector<uint64_t> probes;
  for (uint64_t k = 0; k < 300; ++k) probes.push_back(k);
  ExpectMatchesGet(db, probes);
}

TEST_F(MultiGetTest, SharedCacheAcrossDbs) {
  // Two Db instances can share one BlockCache (RocksDB-style).
  auto cache = std::make_shared<BlockCache>(8 << 20);
  DbOptions options;
  options.dir = dir_ + "/a";
  options.filter_policy = NewBloomPolicy(12.0);
  options.block_cache = cache;
  Db a(options);
  options.dir = dir_ + "/b";
  Db b(options);
  a.Put(1, "from-a");
  a.Flush();
  b.Put(2, "from-b");
  b.Flush();
  std::vector<uint64_t> probes{1, 2};
  auto ra = a.MultiGet(probes);
  auto rb = b.MultiGet(probes);
  ASSERT_TRUE(ra[0].has_value());
  EXPECT_EQ(*ra[0], "from-a");
  EXPECT_FALSE(ra[1].has_value());
  ASSERT_TRUE(rb[1].has_value());
  EXPECT_EQ(*rb[1], "from-b");
  EXPECT_FALSE(rb[0].has_value());
  EXPECT_GT(cache->charge_bytes(), 0u);
}

}  // namespace
}  // namespace bloomrf

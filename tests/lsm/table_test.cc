#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "lsm/table_builder.h"
#include "lsm/table_reader.h"
#include "tests/test_util.h"
#include "workload/key_generator.h"

namespace bloomrf {
namespace {

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::UnitTest::GetInstance()->current_test_info()->name();
    dir_ = "/tmp/bloomrf_table_test_" + dir_;
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(TableTest, BuildAndReadBack) {
  auto policy = NewBloomPolicy(10.0);
  TableBuilder builder(policy.get(), 4096);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 10000; k += 3) {
    builder.Add(k, MakeValue(k, 64));
    keys.push_back(k);
  }
  TableBuildStats build_stats;
  ASSERT_TRUE(builder.WriteTo(dir_ + "/t.sst", &build_stats));
  EXPECT_EQ(build_stats.num_entries, keys.size());
  EXPECT_GT(build_stats.filter_block_bytes, 0u);

  LsmStats stats;
  auto reader = TableReader::Open(dir_ + "/t.sst", policy.get(), &stats);
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->min_key(), 0u);
  EXPECT_EQ(reader->max_key(), keys.back());

  std::string value;
  for (uint64_t k : keys) {
    ASSERT_TRUE(reader->Get(k, &value, &stats)) << k;
    EXPECT_EQ(value, MakeValue(k, 64));
  }
  // Absent keys (between the stride) are mostly filtered.
  stats.Reset();
  for (uint64_t k = 1; k < 10000; k += 3) {
    EXPECT_FALSE(reader->Get(k, &value, &stats));
  }
  EXPECT_GT(stats.filter_negatives, stats.filter_probes / 2);
}

TEST_F(TableTest, RangeScanHonoursFilter) {
  auto policy = NewBloomRFPolicy(18.0, 1e6);
  TableBuilder builder(policy.get(), 1024);
  // Keys clustered in [1e9, 1e9 + 1e6].
  for (uint64_t k = 0; k < 5000; ++k) {
    builder.Add(1000000000 + k * 200, "v");
  }
  ASSERT_TRUE(builder.WriteTo(dir_ + "/t.sst", nullptr));
  LsmStats stats;
  auto reader = TableReader::Open(dir_ + "/t.sst", policy.get(), &stats);
  ASSERT_NE(reader, nullptr);

  std::vector<std::pair<uint64_t, std::string>> out;
  // In-cluster range finds entries.
  ASSERT_TRUE(reader->RangeScan(1000000000, 1000002000, 100, &out, &stats));
  EXPECT_EQ(out.size(), 11u);  // keys 0..2000 step 200
  // Far-away ranges (distant prefix paths): the filter excludes the
  // vast majority without I/O. Probes land near 2^60, far from the
  // cluster at ~2^30, so even upper layers discriminate.
  stats.Reset();
  uint64_t excluded = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    out.clear();
    uint64_t lo = (uint64_t{1} << 60) + i * 1000000000ULL;
    if (!reader->RangeScan(lo, lo + 995, 100, &out, &stats)) {
      ++excluded;
      EXPECT_TRUE(out.empty());
    }
  }
  EXPECT_GE(excluded, 15u);
  EXPECT_EQ(stats.filter_negatives, excluded);
  // Negative probes read no blocks; only the (rare) positives may.
  EXPECT_LE(stats.blocks_read, 20u - excluded);
}

TEST_F(TableTest, NullPolicyMeansNoFilter) {
  TableBuilder builder(nullptr, 4096);
  builder.Add(1, "a");
  ASSERT_TRUE(builder.WriteTo(dir_ + "/t.sst", nullptr));
  LsmStats stats;
  auto reader = TableReader::Open(dir_ + "/t.sst", nullptr, &stats);
  ASSERT_NE(reader, nullptr);
  std::string value;
  EXPECT_TRUE(reader->Get(1, &value, &stats));
  EXPECT_EQ(stats.filter_probes, 0u);
}

TEST_F(TableTest, OpenRejectsCorruptFile) {
  std::FILE* f = std::fopen((dir_ + "/bad.sst").c_str(), "wb");
  std::fputs("this is not an sst file at all, way too short-ish", f);
  std::fclose(f);
  LsmStats stats;
  EXPECT_EQ(TableReader::Open(dir_ + "/bad.sst", nullptr, &stats), nullptr);
  EXPECT_EQ(TableReader::Open(dir_ + "/missing.sst", nullptr, &stats),
            nullptr);
}

TEST_F(TableTest, DeserializationTimeTracked) {
  auto policy = NewBloomRFPolicy(14.0, 1e4);
  TableBuilder builder(policy.get(), 4096);
  for (uint64_t k = 0; k < 50000; ++k) builder.Add(k * 977, "v");
  ASSERT_TRUE(builder.WriteTo(dir_ + "/t.sst", nullptr));
  LsmStats stats;
  auto reader = TableReader::Open(dir_ + "/t.sst", policy.get(), &stats);
  ASSERT_NE(reader, nullptr);
  EXPECT_GT(stats.deser_nanos, 0u);
  EXPECT_GT(reader->filter_memory_bits(), 0u);
}

}  // namespace
}  // namespace bloomrf

// Direct FilterPolicy-level tests: serialization round trips through
// the registry-framed filter-block format, corruption rejection, and
// per-backend semantics outside the full DB. Every policy is an
// instance of the one generic RegistryFilterPolicy adapter.

#include "lsm/filter_policy.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "tests/test_util.h"

namespace bloomrf {
namespace {

using ::bloomrf::testing::RandomKeySet;

std::vector<uint64_t> SortedKeys(size_t n, uint64_t seed) {
  auto keyset = RandomKeySet(n, seed);
  return {keyset.begin(), keyset.end()};
}

struct PolicyCase {
  const char* label;
  std::unique_ptr<FilterPolicy> policy;
  bool supports_ranges;
};

std::vector<PolicyCase> AllPolicies() {
  std::vector<PolicyCase> cases;
  cases.push_back({"bloomRF", NewBloomRFPolicy(18.0, 1e6), true});
  cases.push_back({"Bloom", NewBloomPolicy(10.0), false});
  cases.push_back({"PrefixBloom", NewPrefixBloomPolicy(14.0, 16), true});
  cases.push_back({"Rosetta", NewRosettaPolicy(18.0, 1 << 10), true});
  cases.push_back({"SuRF", NewSurfPolicy(2, 8), true});
  cases.push_back({"Fence", NewFencePointerPolicy(4.0), true});
  cases.push_back({"Cuckoo", NewCuckooPolicy(12), false});
  return cases;
}

TEST(FilterPolicyTest, RoundTripNoFalseNegatives) {
  auto keys = SortedKeys(20000, 201);
  for (auto& pc : AllPolicies()) {
    std::string blob = pc.policy->CreateFilter(keys);
    auto probe = pc.policy->LoadFilter(blob);
    ASSERT_NE(probe, nullptr) << pc.label;
    for (uint64_t k : keys) {
      ASSERT_TRUE(probe->MayContain(k)) << pc.label << " " << k;
      ASSERT_TRUE(probe->MayContainRange(k, k + 100 > k ? k + 100 : k))
          << pc.label;
    }
    EXPECT_GT(probe->MemoryBits(), 0u) << pc.label;
  }
}

TEST(FilterPolicyTest, CorruptBlocksRejectedOrSafe) {
  auto keys = SortedKeys(1000, 202);
  for (auto& pc : AllPolicies()) {
    std::string blob = pc.policy->CreateFilter(keys);
    // Truncations must never crash; either nullptr or a safe probe.
    for (size_t cut : {size_t{0}, size_t{1}, blob.size() / 2,
                       blob.size() - 1}) {
      auto probe = pc.policy->LoadFilter(blob.substr(0, cut));
      if (probe != nullptr) {
        probe->MayContain(42);  // must be safe to call
      }
    }
  }
}

TEST(FilterPolicyTest, EmptyKeySetProducesWorkingFilter) {
  std::vector<uint64_t> empty;
  for (auto& pc : AllPolicies()) {
    std::string blob = pc.policy->CreateFilter(empty);
    auto probe = pc.policy->LoadFilter(blob);
    if (probe != nullptr) {
      // An empty filter may answer anything, but must not crash.
      probe->MayContain(42);
      probe->MayContainRange(1, 100);
    }
  }
}

TEST(FilterPolicyTest, BlocksSelfDescribeAcrossPolicies) {
  // Registry framing makes any block loadable through any policy
  // instance: the frame's name, not the loading policy, selects the
  // backend.
  auto keys = SortedKeys(2000, 206);
  std::string blob = NewBloomRFPolicy(18.0, 1e6)->CreateFilter(keys);
  auto probe = NewBloomPolicy(10.0)->LoadFilter(blob);
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->Name(), "bloomRF");
  for (uint64_t k : keys) ASSERT_TRUE(probe->MayContain(k));
}

TEST(FilterPolicyTest, UnknownBackendYieldsNoFilter) {
  auto policy = NewRegistryPolicy("definitely_not_registered");
  EXPECT_EQ(policy->Name(), "definitely_not_registered");
  EXPECT_EQ(policy->CreateFilter(SortedKeys(10, 207)), "");
  EXPECT_EQ(policy->LoadFilter("garbage"), nullptr);
}

TEST(FilterPolicyTest, BloomRFPolicyExcludesEmptyRanges) {
  auto keys = SortedKeys(50000, 203);
  auto policy = NewBloomRFPolicy(20.0, 1e6);
  auto probe = policy->LoadFilter(policy->CreateFilter(keys));
  ASSERT_NE(probe, nullptr);
  Rng rng(204);
  uint64_t excluded = 0, empties = 0;
  std::set<uint64_t> keyset(keys.begin(), keys.end());
  for (int i = 0; i < 5000; ++i) {
    uint64_t lo = rng.Next();
    uint64_t hi = lo + 999999 > lo ? lo + 999999 : lo;
    auto it = keyset.lower_bound(lo);
    if (it != keyset.end() && *it <= hi) continue;
    ++empties;
    if (!probe->MayContainRange(lo, hi)) ++excluded;
  }
  ASSERT_GT(empties, 1000u);
  EXPECT_GT(excluded, empties * 9 / 10);
}

TEST(FilterPolicyTest, NamesAreStable) {
  EXPECT_EQ(NewBloomRFPolicy(10, 10)->Name(), "bloomRF");
  EXPECT_EQ(NewBloomPolicy(10)->Name(), "Bloom");
  EXPECT_EQ(NewRosettaPolicy(10, 16)->Name(), "Rosetta");
  EXPECT_EQ(NewSurfPolicy(1, 8)->Name(), "SuRF");
  EXPECT_EQ(NewPrefixBloomPolicy(10, 8)->Name(), "PrefixBloom");
  EXPECT_EQ(NewFencePointerPolicy(4)->Name(), "FencePointers");
  EXPECT_EQ(NewCuckooPolicy(12)->Name(), "Cuckoo");
  // Registry keys and display names both resolve.
  EXPECT_EQ(NewRegistryPolicy("bloomrf")->Name(), "bloomRF");
  EXPECT_EQ(NewRegistryPolicy("bloomRF")->Name(), "bloomRF");
}

TEST(FilterPolicyTest, MemoryBitsTrackBudget) {
  auto keys = SortedKeys(50000, 205);
  auto policy = NewBloomRFPolicy(18.0, 1e6);
  auto probe = policy->LoadFilter(policy->CreateFilter(keys));
  ASSERT_NE(probe, nullptr);
  double bpk = static_cast<double>(probe->MemoryBits()) /
               static_cast<double>(keys.size());
  EXPECT_GT(bpk, 16.0);
  EXPECT_LT(bpk, 19.0);
}

}  // namespace
}  // namespace bloomrf

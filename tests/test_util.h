// Shared helpers for the test suite: deterministic key sets and
// ground-truth range emptiness.

#ifndef BLOOMRF_TESTS_TEST_UTIL_H_
#define BLOOMRF_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "util/random.h"

namespace bloomrf::testing {

inline std::set<uint64_t> RandomKeySet(size_t n, uint64_t seed,
                                       uint64_t domain = 0) {
  Rng rng(seed);
  std::set<uint64_t> keys;
  while (keys.size() < n) {
    keys.insert(domain == 0 ? rng.Next() : rng.Uniform(domain));
  }
  return keys;
}

inline bool GroundTruthRange(const std::set<uint64_t>& keys, uint64_t lo,
                             uint64_t hi) {
  if (lo > hi) return false;
  auto it = keys.lower_bound(lo);
  return it != keys.end() && *it <= hi;
}

/// Saturating interval of `size` elements starting at lo.
inline uint64_t RangeEnd(uint64_t lo, uint64_t size) {
  if (size == 0) size = 1;
  return lo > UINT64_MAX - (size - 1) ? UINT64_MAX : lo + (size - 1);
}

}  // namespace bloomrf::testing

#endif  // BLOOMRF_TESTS_TEST_UTIL_H_

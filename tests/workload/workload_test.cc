#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workload/key_generator.h"
#include "workload/query_generator.h"
#include "workload/synthetic_kepler.h"
#include "workload/synthetic_sdss.h"

namespace bloomrf {
namespace {

TEST(DatasetTest, SortedAndDistinct) {
  Dataset data = MakeDataset(10000, Distribution::kUniform, 1);
  EXPECT_EQ(data.keys.size(), 10000u);
  EXPECT_TRUE(std::is_sorted(data.sorted_keys.begin(),
                             data.sorted_keys.end()));
  EXPECT_EQ(std::adjacent_find(data.sorted_keys.begin(),
                               data.sorted_keys.end()),
            data.sorted_keys.end());
}

TEST(DatasetTest, GroundTruthQueries) {
  Dataset data = MakeDataset(1000, Distribution::kUniform, 2);
  for (uint64_t k : data.sorted_keys) {
    EXPECT_TRUE(data.Contains(k));
    EXPECT_TRUE(data.RangeNonEmpty(k, k));
  }
  EXPECT_FALSE(data.RangeNonEmpty(5, 4));
}

TEST(MakeValueTest, DeterministicAndSized) {
  EXPECT_EQ(MakeValue(42, 512).size(), 512u);
  EXPECT_EQ(MakeValue(42, 512), MakeValue(42, 512));
  EXPECT_NE(MakeValue(42, 512), MakeValue(43, 512));
}

TEST(QueryWorkloadTest, PointQueriesAreMisses) {
  Dataset data = MakeDataset(50000, Distribution::kUniform, 3);
  QueryWorkload workload =
      MakeQueryWorkload(data, 5000, 100, Distribution::kUniform, 4);
  EXPECT_EQ(workload.point_queries.size(), 5000u);
  uint64_t hits = 0;
  for (uint64_t y : workload.point_queries) hits += data.Contains(y);
  EXPECT_EQ(hits, 0u);  // uniform over 2^64: redraws always succeed
}

TEST(QueryWorkloadTest, RangesHaveExactSize) {
  Dataset data = MakeDataset(10000, Distribution::kUniform, 5);
  QueryWorkload workload =
      MakeQueryWorkload(data, 1000, 4096, Distribution::kNormal, 6);
  for (const RangeQuery& q : workload.range_queries) {
    EXPECT_EQ(q.hi - q.lo + 1, 4096u);
  }
}

TEST(QueryWorkloadTest, EmptinessFlagMatchesGroundTruth) {
  Dataset data = MakeDataset(30000, Distribution::kNormal, 7);
  QueryWorkload workload =
      MakeQueryWorkload(data, 2000, 1 << 20, Distribution::kNormal, 8);
  for (const RangeQuery& q : workload.range_queries) {
    EXPECT_EQ(q.empty, !data.RangeNonEmpty(q.lo, q.hi));
  }
}

TEST(QueryWorkloadTest, HugeRangesMayStayNonEmpty) {
  // Mirrors the paper's note: ~1% non-empty ranges at |R|=1e11 because
  // redraws cannot find empty space.
  Dataset data = MakeDataset(50000, Distribution::kUniform, 9);
  QueryWorkload workload = MakeQueryWorkload(
      data, 500, uint64_t{1} << 50, Distribution::kUniform, 10);
  EXPECT_GT(workload.non_empty_ranges, 0u);
}

TEST(SyntheticKeplerTest, ShapeMatchesFluxSeries) {
  KeplerOptions options;
  options.num_stars = 8;
  options.samples_per_star = 1000;
  auto flux = GenerateKeplerFlux(options);
  ASSERT_EQ(flux.size(), 8000u);
  // Both signs occur (mean-shifted flux).
  bool has_positive = false, has_negative = false;
  for (double f : flux) {
    has_positive |= f > 0;
    has_negative |= f < 0;
  }
  EXPECT_TRUE(has_positive);
  EXPECT_TRUE(has_negative);
  // Values are clustered (std of diffs << std of values across stars).
  double mean = 0;
  for (double f : flux) mean += f;
  mean /= static_cast<double>(flux.size());
  double var = 0;
  for (double f : flux) var += (f - mean) * (f - mean);
  var /= static_cast<double>(flux.size());
  double diff_var = 0;
  for (size_t i = 1; i < 1000; ++i) {
    double d = flux[i] - flux[i - 1];
    diff_var += d * d;
  }
  diff_var /= 999.0;
  EXPECT_LT(diff_var, var);  // autocorrelation
}

TEST(SyntheticKeplerTest, DeterministicBySeed) {
  KeplerOptions options;
  options.num_stars = 2;
  options.samples_per_star = 100;
  EXPECT_EQ(GenerateKeplerFlux(options), GenerateKeplerFlux(options));
}

TEST(SyntheticSdssTest, RoughlyNormalRuns) {
  SdssOptions options;
  options.num_rows = 50000;
  auto rows = GenerateSdssRows(options);
  ASSERT_EQ(rows.size(), 50000u);
  double mean = 0;
  for (const auto& row : rows) mean += static_cast<double>(row.run);
  mean /= static_cast<double>(rows.size());
  EXPECT_NEAR(mean, static_cast<double>(options.mean_run), 60.0);
  // Run < 300 selects a minority but non-trivial slice.
  uint64_t below = 0;
  for (const auto& row : rows) below += row.run < 300;
  EXPECT_GT(below, rows.size() / 50);
  EXPECT_LT(below, rows.size() / 2);
}

TEST(SyntheticSdssTest, ObjectIdsClusterByRun) {
  SdssOptions options;
  options.num_rows = 20000;
  auto rows = GenerateSdssRows(options);
  // Same-run rows have closer object ids than cross-run rows on
  // average: verify correlation sign via covariance.
  double mean_run = 0, mean_id = 0;
  for (const auto& row : rows) {
    mean_run += static_cast<double>(row.run);
    mean_id += static_cast<double>(row.object_id);
  }
  mean_run /= static_cast<double>(rows.size());
  mean_id /= static_cast<double>(rows.size());
  double cov = 0;
  for (const auto& row : rows) {
    cov += (static_cast<double>(row.run) - mean_run) *
           (static_cast<double>(row.object_id) - mean_id);
  }
  EXPECT_GT(cov, 0.0);
}

}  // namespace
}  // namespace bloomrf

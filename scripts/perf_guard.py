#!/usr/bin/env python3
"""CI perf guard for the planned/SIMD batch-probe engine.

Compares a fresh `bench_batch_probe --smoke` run against the guard
floors committed in BENCH_batch_probe.json and fails (exit 1) if the
bloomRF point-batch or range-batch speedup drops below `ratio` (default
0.9) of the committed floor.

The committed `guard` floors are intentionally conservative (the bench
writes them as 0.8x of its measured speedups) so the check catches real
regressions — a batch path sliding back toward scalar speed — rather
than scheduler noise on shared CI runners.

Usage: perf_guard.py CURRENT.json COMMITTED.json [ratio]
"""

import json
import sys


def speedup(doc, section, name):
    for row in doc[section]:
        if row["filter"] == name:
            return row["speedup"]
    raise SystemExit(f"perf_guard: no '{name}' row in '{section}' section")


def main():
    if len(sys.argv) < 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as f:
        current = json.load(f)
    with open(sys.argv[2]) as f:
        committed = json.load(f)
    ratio = float(sys.argv[3]) if len(sys.argv) > 3 else 0.9
    guard = committed["guard"]

    checks = [
        ("point", "bloomrf", guard["bloomrf_point_speedup"]),
        ("range", "bloomrf", guard["bloomrf_range_speedup"]),
    ]
    failed = False
    for section, name, floor in checks:
        got = speedup(current, section, name)
        need = floor * ratio
        ok = got >= need
        print(
            f"{'OK  ' if ok else 'FAIL'} {name} {section}-batch speedup "
            f"{got:.3f} vs floor {floor:.3f} * {ratio} = {need:.3f}"
        )
        failed |= not ok
    if failed:
        print("perf_guard: batch-probe speedup regressed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
